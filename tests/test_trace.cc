/**
 * @file
 * Tests for the Chrome-trace writer and its training-session hookup.
 */

#include <gtest/gtest.h>

#include "sim/trace.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

namespace tb {
namespace {

TEST(Trace, EmitsValidShapedJson)
{
    TraceWriter trace;
    trace.complete("track_a", "span1", 0.001, 0.002);
    trace.complete("track_b", "span2", 0.004, 0.001, "cat");
    trace.instant("track_a", "marker", 0.005);
    EXPECT_EQ(trace.numEvents(), 3u);

    const std::string json = trace.toJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"span1\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    // Track names present as thread_name metadata.
    EXPECT_NE(json.find("\"track_a\""), std::string::npos);
    // 1 ms -> 1000 us.
    EXPECT_NE(json.find("\"ts\":1000.000"), std::string::npos);

    // Balanced braces/brackets (cheap well-formedness check).
    int braces = 0, brackets = 0;
    for (char c : json) {
        braces += c == '{';
        braces -= c == '}';
        brackets += c == '[';
        brackets -= c == ']';
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST(Trace, EscapesAndClears)
{
    TraceWriter trace;
    trace.complete("t", "with\"quote", 0.0, 1.0);
    EXPECT_NE(trace.toJson().find("with\\\"quote"), std::string::npos);
    trace.clear();
    EXPECT_EQ(trace.numEvents(), 0u);
    EXPECT_EQ(trace.toJson(), "{\"traceEvents\":[]}");
}

TEST(Trace, CounterEventsCarryValues)
{
    TraceWriter trace;
    trace.counter("checkpoint", "durable_step", 0.002, 7.0);
    const std::string json = trace.toJson();
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"durable_step\""), std::string::npos);
    EXPECT_NE(json.find("\"value\":7"), std::string::npos);
}

TEST(Trace, WritesFile)
{
    TraceWriter trace;
    trace.complete("t", "s", 0.0, 1.0);
    const std::string path = "/tmp/tb_trace_test.json";
    ASSERT_TRUE(trace.writeFile(path));
    std::FILE *f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[16] = {0};
    ASSERT_GT(std::fread(buf, 1, sizeof(buf) - 1, f), 0u);
    std::fclose(f);
    EXPECT_EQ(buf[0], '{');
    std::remove(path.c_str());
}

TEST(Trace, SessionRecordsPrepComputeAndSync)
{
    ServerConfig cfg;
    cfg.preset = ArchPreset::TrainBox;
    cfg.model = workload::ModelId::TfSr; // has an offload chain
    cfg.numAccelerators = 16;
    auto server = buildServer(cfg);

    TraceWriter trace;
    TrainingSession session(*server);
    session.setTrace(&trace);
    session.run(2, 4);

    EXPECT_GT(trace.numEvents(), 20u);
    const std::string json = trace.toJson();
    EXPECT_NE(json.find("\"formatting\""), std::string::npos);
    EXPECT_NE(json.find("\"compute\""), std::string::npos);
    EXPECT_NE(json.find("\"ring_allreduce\""), std::string::npos);
    EXPECT_NE(json.find("\"ssd_read\""), std::string::npos);
    // Offload chains get their own tracks.
    EXPECT_NE(json.find(".offload"), std::string::npos);
}

TEST(Trace, SessionWithoutTraceStillWorks)
{
    ServerConfig cfg;
    cfg.preset = ArchPreset::Baseline;
    cfg.model = workload::ModelId::Resnet50;
    cfg.numAccelerators = 8;
    auto server = buildServer(cfg);
    TrainingSession session(*server);
    EXPECT_GT(session.run(2, 4).throughput, 0.0);
}

} // namespace
} // namespace tb
