/**
 * @file
 * Corruption robustness for the JPEG decoder: truncated prefixes and
 * random bit-flips of valid streams must come back as clean decode
 * failures (or valid images), never crashes, hangs, or out-of-bounds
 * accesses. Run under ASan/UBSan via tools/check.sh to make the
 * memory-safety claim machine-checked.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "prep/jpeg/jpeg_decoder.hh"
#include "prep/pipeline.hh"

namespace tb {
namespace jpeg {
namespace {

/** Decode must return a verdict; failures must carry a message. */
void
expectGraceful(const std::vector<std::uint8_t> &bytes)
{
    const DecodeResult res = decodeJpeg(bytes);
    if (!res.ok)
        EXPECT_FALSE(res.error.empty());
}

TEST(JpegCorrupt, EveryTruncatedPrefixFailsCleanly)
{
    Rng rng(21);
    const auto bytes = prep::makeSyntheticJpeg(48, 48, rng);
    ASSERT_GT(bytes.size(), 16u);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + len);
        const DecodeResult res = decodeJpeg(prefix);
        // A strict prefix is missing at least the EOI scan tail; it may
        // decode only if the full scan happens to fit, and must
        // otherwise fail with a message.
        if (!res.ok)
            EXPECT_FALSE(res.error.empty()) << "prefix length " << len;
    }
}

TEST(JpegCorrupt, SingleBitFlipsNeverCrash)
{
    Rng rng(22);
    const auto base = prep::makeSyntheticJpeg(32, 32, rng);
    // Flip each of 2000 randomly chosen bits, one at a time.
    Rng flip_rng(23);
    for (int i = 0; i < 2000; ++i) {
        auto bytes = base;
        const std::size_t byte = static_cast<std::size_t>(
            flip_rng.uniformInt(
                0, static_cast<std::int64_t>(bytes.size()) - 1));
        const int bit = static_cast<int>(flip_rng.uniformInt(0, 7));
        bytes[byte] ^= static_cast<std::uint8_t>(1u << bit);
        expectGraceful(bytes);
    }
}

TEST(JpegCorrupt, MultiBitFlipsNeverCrash)
{
    Rng rng(24);
    const auto base = prep::makeSyntheticJpeg(64, 64, rng);
    Rng flip_rng(25);
    for (int trial = 0; trial < 200; ++trial) {
        auto bytes = base;
        const int flips = static_cast<int>(flip_rng.uniformInt(1, 32));
        for (int i = 0; i < flips; ++i) {
            const std::size_t byte = static_cast<std::size_t>(
                flip_rng.uniformInt(
                    0, static_cast<std::int64_t>(bytes.size()) - 1));
            bytes[byte] ^= static_cast<std::uint8_t>(
                1u << flip_rng.uniformInt(0, 7));
        }
        expectGraceful(bytes);
    }
}

TEST(JpegCorrupt, RandomGarbageNeverCrashes)
{
    Rng rng(26);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::uint8_t> bytes(
            static_cast<std::size_t>(rng.uniformInt(0, 511)));
        for (auto &b : bytes)
            b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
        // Half the trials get a valid SOI so the marker loop engages.
        if (trial % 2 == 0 && bytes.size() >= 2) {
            bytes[0] = 0xFF;
            bytes[1] = 0xD8;
        }
        expectGraceful(bytes);
    }
}

TEST(JpegCorrupt, UndersizedSegmentLengthRejected)
{
    // SOI + DQT whose length field (1) is smaller than the field
    // itself — previously this rewound the cursor.
    const std::vector<std::uint8_t> bytes = {0xFF, 0xD8, 0xFF, 0xDB,
                                             0x00, 0x01, 0xFF, 0xD9};
    const DecodeResult res = decodeJpeg(bytes);
    EXPECT_FALSE(res.ok);
    EXPECT_FALSE(res.error.empty());
}

TEST(JpegCorrupt, TruncatedDriRejected)
{
    // SOI + DRI claiming 2 payload bytes that the file does not have.
    const std::vector<std::uint8_t> bytes = {0xFF, 0xD8, 0xFF, 0xDD,
                                             0x00, 0x04};
    const DecodeResult res = decodeJpeg(bytes);
    EXPECT_FALSE(res.ok);
    EXPECT_FALSE(res.error.empty());
}

TEST(JpegCorrupt, HugeFrameDimensionsRejected)
{
    // SOI + SOF0 declaring a 65535 x 65535 frame: must be rejected
    // before any plane allocation, not after ~50 GB of requests.
    const std::vector<std::uint8_t> bytes = {
        0xFF, 0xD8,             // SOI
        0xFF, 0xC0, 0x00, 0x0B, // SOF0, len 11
        0x08,                   // precision
        0xFF, 0xFF,             // height 65535
        0xFF, 0xFF,             // width 65535
        0x01,                   // 1 component
        0x01, 0x11, 0x00,       // id 1, 1x1, quant 0
        0xFF, 0xD9,             // EOI
    };
    const DecodeResult res = decodeJpeg(bytes);
    EXPECT_FALSE(res.ok);
    EXPECT_FALSE(res.error.empty());
}

TEST(JpegCorrupt, SubsampledLumaDoesNotReadOutOfBounds)
{
    // Y at 1x1 with chroma at 2x2 is syntactically legal; the
    // assembler must index the (quarter-size) Y plane through its
    // sampling factors. Build the header by hand and borrow the scan
    // bytes from a real encode so Huffman decode has data to chew on.
    Rng rng(27);
    const auto donor = prep::makeSyntheticJpeg(16, 16, rng);
    std::vector<std::uint8_t> bytes(donor.begin(), donor.end());
    // Patch the SOF0 sampling factors: find the SOF0 marker.
    for (std::size_t i = 0; i + 9 < bytes.size(); ++i) {
        if (bytes[i] == 0xFF && bytes[i + 1] == 0xC0) {
            // comps start at i+11: id, hv, tq triplets
            bytes[i + 11 + 1] = 0x11; // Y: 1x1
            bytes[i + 11 + 4] = 0x22; // Cb: 2x2
            bytes[i + 11 + 7] = 0x22; // Cr: 2x2
            break;
        }
    }
    expectGraceful(bytes); // must not crash under ASan
}

} // namespace
} // namespace jpeg
} // namespace tb
