/**
 * @file
 * Tests for the discrete-event core.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace tb {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(3.0, [&] { order.push_back(3); });
    eq.schedule(1.0, [&] { order.push_back(1); });
    eq.schedule(2.0, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(eq.now(), 3.0);
}

TEST(EventQueue, TieBrokenByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(1.0, [&] { order.push_back(0); }, 50);
    eq.schedule(1.0, [&] { order.push_back(1); }, 10);
    eq.schedule(1.0, [&] { order.push_back(2); }, 50);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 0, 2}));
}

TEST(EventQueue, ScheduleInUsesRelativeTime)
{
    EventQueue eq;
    double fired_at = -1.0;
    eq.schedule(2.0, [&] {
        eq.scheduleIn(1.5, [&] { fired_at = eq.now(); });
    });
    eq.run();
    EXPECT_DOUBLE_EQ(fired_at, 3.5);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool fired = false;
    EventId id = eq.schedule(1.0, [&] { fired = true; });
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id)); // second cancel is a no-op
    eq.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireFails)
{
    EventQueue eq;
    EventId id = eq.schedule(1.0, [] {});
    eq.run();
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, RunUntilStopsBeforeLaterEvents)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1.0, [&] { ++count; });
    eq.schedule(5.0, [&] { ++count; });
    eq.run(2.0);
    EXPECT_EQ(count, 1);
    EXPECT_DOUBLE_EQ(eq.now(), 2.0);
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1.0, [&] { ++count; });
    eq.schedule(2.0, [&] { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, EventsMayScheduleEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            eq.scheduleIn(0.5, chain);
    };
    eq.scheduleIn(0.5, chain);
    eq.run();
    EXPECT_EQ(depth, 10);
    EXPECT_DOUBLE_EQ(eq.now(), 5.0);
    EXPECT_EQ(eq.numExecuted(), 10u);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(5.0, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(1.0, [] {}), "past");
}

TEST(EventQueueDeath, NextTimeOnEmptyPanics)
{
    EventQueue eq;
    EXPECT_DEATH(eq.nextTime(), "empty");
}

} // namespace
} // namespace tb
