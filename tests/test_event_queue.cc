/**
 * @file
 * Tests for the discrete-event core.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace tb {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(3.0, [&] { order.push_back(3); });
    eq.schedule(1.0, [&] { order.push_back(1); });
    eq.schedule(2.0, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(eq.now(), 3.0);
}

TEST(EventQueue, TieBrokenByPriorityThenInsertion)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(1.0, [&] { order.push_back(0); }, 50);
    eq.schedule(1.0, [&] { order.push_back(1); }, 10);
    eq.schedule(1.0, [&] { order.push_back(2); }, 50);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 0, 2}));
}

TEST(EventQueue, ScheduleInUsesRelativeTime)
{
    EventQueue eq;
    double fired_at = -1.0;
    eq.schedule(2.0, [&] {
        eq.scheduleIn(1.5, [&] { fired_at = eq.now(); });
    });
    eq.run();
    EXPECT_DOUBLE_EQ(fired_at, 3.5);
}

TEST(EventQueue, CancelPreventsExecution)
{
    EventQueue eq;
    bool fired = false;
    EventId id = eq.schedule(1.0, [&] { fired = true; });
    EXPECT_TRUE(eq.cancel(id));
    EXPECT_FALSE(eq.cancel(id)); // second cancel is a no-op
    eq.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireFails)
{
    EventQueue eq;
    EventId id = eq.schedule(1.0, [] {});
    eq.run();
    EXPECT_FALSE(eq.cancel(id));
}

TEST(EventQueue, RunUntilStopsBeforeLaterEvents)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1.0, [&] { ++count; });
    eq.schedule(5.0, [&] { ++count; });
    eq.run(2.0);
    EXPECT_EQ(count, 1);
    EXPECT_DOUBLE_EQ(eq.now(), 2.0);
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, StepExecutesExactlyOne)
{
    EventQueue eq;
    int count = 0;
    eq.schedule(1.0, [&] { ++count; });
    eq.schedule(2.0, [&] { ++count; });
    EXPECT_TRUE(eq.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(count, 2);
}

TEST(EventQueue, EventsMayScheduleEvents)
{
    EventQueue eq;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            eq.scheduleIn(0.5, chain);
    };
    eq.scheduleIn(0.5, chain);
    eq.run();
    EXPECT_EQ(depth, 10);
    EXPECT_DOUBLE_EQ(eq.now(), 5.0);
    EXPECT_EQ(eq.numExecuted(), 10u);
}

TEST(EventQueue, CancelUnderLoad)
{
    // Regression for the O(n)-per-cancel removal path: thousands of
    // cancels against a large pending set, interleaved with execution.
    // With lazy tombstones this is O(1) amortized per cancel; the test
    // asserts the survivors run in exactly the right order and count.
    EventQueue eq;
    constexpr int kEvents = 20000;
    std::vector<EventId> ids;
    ids.reserve(kEvents);
    std::vector<int> fired;
    for (int i = 0; i < kEvents; ++i) {
        ids.push_back(eq.schedule(static_cast<Time>(i) * 0.001,
                                  [&fired, i] { fired.push_back(i); }));
    }
    EXPECT_EQ(eq.size(), static_cast<std::size_t>(kEvents));

    // Cancel every odd event (half the set, forcing compaction sweeps).
    for (int i = 1; i < kEvents; i += 2)
        EXPECT_TRUE(eq.cancel(ids[i]));
    EXPECT_EQ(eq.size(), static_cast<std::size_t>(kEvents / 2));

    // A second cancel of an already-tombstoned event reports false.
    for (int i = 1; i < 100; i += 2)
        EXPECT_FALSE(eq.cancel(ids[i]));

    eq.run();
    ASSERT_EQ(fired.size(), static_cast<std::size_t>(kEvents / 2));
    for (int i = 0; i < kEvents / 2; ++i)
        EXPECT_EQ(fired[i], 2 * i) << "at " << i;
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, CancelRescheduleChurn)
{
    // The fluid network's pattern: one pending completion event that is
    // cancelled and rescheduled on every mutation.
    EventQueue eq;
    int fired = 0;
    EventId pending{};
    for (int i = 0; i < 10000; ++i) {
        eq.cancel(pending);
        pending = eq.scheduleIn(1.0 + i * 1e-6, [&fired] { ++fired; });
    }
    // Tombstone sweeps must have bounded the heap: the live set is 1.
    EXPECT_EQ(eq.size(), 1u);
    eq.run();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, ScheduleBatchOrderingSmall)
{
    // Small batch (sift-in path): ties between batch members keep input
    // order, interleaved correctly with individually scheduled events.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(2.0, [&] { order.push_back(100); });
    std::vector<std::pair<Time, EventQueue::Callback>> items;
    items.emplace_back(2.0, [&] { order.push_back(0); });
    items.emplace_back(1.0, [&] { order.push_back(1); });
    items.emplace_back(2.0, [&] { order.push_back(2); });
    auto ids = eq.scheduleBatch(std::move(items));
    ASSERT_EQ(ids.size(), 3u);
    eq.run();
    // t=1: event 1; t=2: individual (earlier seq), then 0, then 2.
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 1);
    EXPECT_EQ(order[1], 100);
    EXPECT_EQ(order[2], 0);
    EXPECT_EQ(order[3], 2);
}

TEST(EventQueue, ScheduleBatchRebuildPath)
{
    // Batch larger than the live heap takes the make_heap rebuild path;
    // execution order must still be (when, priority, seq).
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(0.5, [&] { order.push_back(-1); });
    std::vector<std::pair<Time, EventQueue::Callback>> items;
    constexpr int kBatch = 500;
    for (int i = 0; i < kBatch; ++i) {
        const Time when = static_cast<Time>((i * 7919) % kBatch);
        items.emplace_back(when, [&order, i] { order.push_back(i); });
    }
    auto ids = eq.scheduleBatch(std::move(items));
    ASSERT_EQ(ids.size(), static_cast<std::size_t>(kBatch));
    // Cancel a slice of the batch through the returned handles.
    for (int i = 0; i < kBatch; i += 10)
        EXPECT_TRUE(eq.cancel(ids[i]));
    eq.run();
    ASSERT_EQ(order.size(), static_cast<std::size_t>(kBatch - kBatch / 10 + 1));
    // Survivors must come out sorted by (when, seq): reconstruct keys.
    Time prev = -1.0;
    for (std::size_t k = 0; k < order.size(); ++k) {
        const int i = order[k];
        const Time when =
            i < 0 ? 0.5 : static_cast<Time>((i * 7919) % kBatch);
        EXPECT_GE(when, prev) << "out of order at " << k;
        prev = when;
    }
}

TEST(EventQueue, SizeAndEmptyIgnoreTombstones)
{
    EventQueue eq;
    EventId a = eq.schedule(1.0, [] {});
    EventId b = eq.schedule(2.0, [] {});
    EXPECT_EQ(eq.size(), 2u);
    eq.cancel(a);
    EXPECT_EQ(eq.size(), 1u);
    EXPECT_FALSE(eq.empty());
    eq.cancel(b);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.size(), 0u);
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, NextTimeSkipsCancelledTop)
{
    EventQueue eq;
    EventId early = eq.schedule(1.0, [] {});
    eq.schedule(3.0, [] {});
    EXPECT_DOUBLE_EQ(eq.nextTime(), 1.0);
    eq.cancel(early);
    EXPECT_DOUBLE_EQ(eq.nextTime(), 3.0);
}

TEST(EventQueueDeath, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.schedule(5.0, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(1.0, [] {}), "past");
}

TEST(EventQueueDeath, NextTimeOnEmptyPanics)
{
    EventQueue eq;
    EXPECT_DEATH(eq.nextTime(), "empty");
}

} // namespace
} // namespace tb
