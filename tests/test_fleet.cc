/**
 * @file
 * Fleet-scale multi-job simulation tests (src/trainbox/fleet.hh):
 *
 *  - exactness: a one-job fleet replays the bare TrainingSession run
 *    bit-for-bit — the chaos-harness preset goldens and a full
 *    SessionResult comparison, all EXPECT_DOUBLE_EQ;
 *  - determinism: a two-job interleaved fleet replays an identical
 *    FleetReport when run twice;
 *  - conservation: the per-job sample/ingest/integrity ledgers hold
 *    for every job of a chaos fleet (faults + elasticity + ingest);
 *  - queueing: an oversubscribed host produces nonzero, correctly
 *    attributed queueing delay;
 *  - pool arbitration: oversubscribed grants sum exactly to the shared
 *    pool, the constrained job is flagged, and the Jain fairness index
 *    reflects the split.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "trainbox/fleet.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"
#include "workload/model_zoo.hh"

namespace tb {
namespace {

/** A one-host fleet big enough that placement never interferes. */
FleetConfig
singleJobFleet(const ServerConfig &cfg, const std::string &name)
{
    FleetConfig fleet;
    fleet.hosts.push_back({"host0", 64});
    FleetJobSpec job;
    job.name = name;
    job.arrival = 0.0;
    job.config = cfg;
    job.warmupSteps = 4;
    job.measureSteps = 8;
    fleet.jobs.push_back(job);
    return fleet;
}

/** The chaos harness's disturbed scenario, fixed knobs, 16 accs. */
ServerConfig
disturbedConfig(std::uint64_t seed)
{
    ServerConfig cfg;
    cfg.preset = ArchPreset::TrainBox;
    cfg.model = workload::ModelId::Resnet50;
    cfg.numAccelerators = 16;
    cfg.prepPoolFpgas = 4;

    cfg.faults.enabled = true;
    cfg.faults.seed = seed;
    cfg.faults.ssdReadFailureProb = 0.01;
    cfg.faults.stragglerProb = 0.05;
    cfg.faults.prepCrash.ratePerSec = 0.03;
    cfg.faults.prepCrash.duration = 0.8;
    cfg.faults.ssdDegrade.ratePerSec = 0.03;
    cfg.faults.ssdDegrade.duration = 0.8;
    cfg.faults.corruption.ssdBitFlipProb = 0.005;
    cfg.faults.corruption.fpgaUpsetProb = 0.002;
    cfg.faults.integrityChecks = true;

    cfg.elasticity.enabled = true;
    cfg.elasticity.seed = seed;
    cfg.elasticity.graceWindow = 0.5;
    cfg.elasticity.rejoinLatency = 0.2;
    cfg.elasticity.groupDrain.ratePerSec = 0.05;
    cfg.elasticity.groupDrain.absence = 0.8;
    cfg.elasticity.groupPreempt.ratePerSec = 0.05;
    cfg.elasticity.groupPreempt.absence = 0.8;
    cfg.elasticity.prepDrain.ratePerSec = 0.05;
    cfg.elasticity.prepDrain.absence = 0.8;

    cfg.ingest.enabled = true;
    cfg.ingest.seed = seed;
    cfg.ingest.steady = {15000.0, 256.0, 2};
    cfg.ingest.burst = {5000.0, 512.0, 0};
    cfg.ingest.bufferCapacity = 8192.0;
    cfg.ingest.highWatermark = 6144.0;
    cfg.ingest.lowWatermark = 2048.0;
    cfg.ingest.policyChain = {IngestPolicy::Throttle, IngestPolicy::Shed,
                              IngestPolicy::Echo};
    cfg.ingest.echoFactor = 2.0;
    cfg.ingest.writeFailureProb = 0.05;
    return cfg;
}

void
expectLedgersHold(const SessionResult &res)
{
    const auto &e = res.elasticity;
    EXPECT_NEAR(e.samplesPrepared,
                e.samplesConsumed + e.samplesCachedAtEnd +
                    e.samplesDiscarded,
                1e-6 * std::max(1.0, e.samplesPrepared));
    const auto &in = res.ingest;
    EXPECT_NEAR(in.samplesArrived,
                in.samplesAdmitted + in.samplesShed +
                    in.samplesInFlightAtEnd,
                1e-6 * std::max(1.0, in.samplesArrived));
    EXPECT_EQ(res.integrity.injected,
              res.integrity.detected + res.integrity.escaped);
}

// A one-job fleet must reproduce the bare-session numbers to the
// double: the pinned pre-robustness goldens (ResNet-50, 32
// accelerators, run(4, 8), default config) through the whole fleet
// stack — arrival event, placement, shared-core build, prefixed
// resources, report snapshot.
TEST(FleetSingleJob, PresetGoldensBitIdentical)
{
    const struct
    {
        ArchPreset preset;
        double throughput;
    } golden[] = {
        { ArchPreset::Baseline, 30412.537359822836 },
        { ArchPreset::BaselineAccFpga, 44099.421789334992 },
        { ArchPreset::BaselineAccP2p, 52726.559174010392 },
        { ArchPreset::BaselineAccP2pGen4, 105706.38456337905 },
        { ArchPreset::TrainBoxNoPool, 237516.29284407894 },
        { ArchPreset::TrainBox, 237516.29284407894 },
        { ArchPreset::BaselineAccGpu, 31966.593052101314 },
    };
    for (const auto &g : golden) {
        ServerConfig cfg;
        cfg.preset = g.preset;
        cfg.model = workload::ModelId::Resnet50;
        cfg.numAccelerators = 32;
        const FleetReport r = runFleet(singleJobFleet(cfg, "solo"));
        ASSERT_EQ(r.jobsCompleted, 1u) << presetName(g.preset);
        EXPECT_DOUBLE_EQ(r.jobs[0].report.throughput(), g.throughput)
            << presetName(g.preset);
        EXPECT_DOUBLE_EQ(r.jobs[0].queueingDelay, 0.0);
        EXPECT_FALSE(r.jobs[0].poolConstrained);
    }
}

// The full SessionResult of a disturbed run (faults + elasticity +
// ingest), bare vs one-job fleet: every double matches exactly.
TEST(FleetSingleJob, DisturbedResultMatchesBareRun)
{
    const ServerConfig cfg = disturbedConfig(7);

    auto server = buildServer(cfg);
    TrainingSession session(*server);
    const SessionResult bare = session.run(4, 8);

    const FleetReport r = runFleet(singleJobFleet(cfg, "solo"));
    ASSERT_EQ(r.jobsCompleted, 1u);
    const SessionResult &res = r.jobs[0].report.result;

    EXPECT_DOUBLE_EQ(res.throughput, bare.throughput);
    EXPECT_DOUBLE_EQ(res.wallTime, bare.wallTime);
    EXPECT_DOUBLE_EQ(res.stepTime, bare.stepTime);
    EXPECT_EQ(res.faults.faultsInjected, bare.faults.faultsInjected);
    EXPECT_EQ(res.faults.readFailures, bare.faults.readFailures);
    EXPECT_DOUBLE_EQ(res.faults.degradedTime, bare.faults.degradedTime);
    EXPECT_EQ(res.integrity.injected, bare.integrity.injected);
    EXPECT_EQ(res.integrity.detected, bare.integrity.detected);
    EXPECT_EQ(res.elasticity.events, bare.elasticity.events);
    EXPECT_EQ(res.elasticity.preemptions, bare.elasticity.preemptions);
    EXPECT_DOUBLE_EQ(res.elasticity.samplesPrepared,
                     bare.elasticity.samplesPrepared);
    EXPECT_DOUBLE_EQ(res.elasticity.samplesConsumed,
                     bare.elasticity.samplesConsumed);
    EXPECT_DOUBLE_EQ(res.elasticity.samplesDiscarded,
                     bare.elasticity.samplesDiscarded);
    EXPECT_DOUBLE_EQ(res.ingest.samplesArrived,
                     bare.ingest.samplesArrived);
    EXPECT_DOUBLE_EQ(res.ingest.samplesAdmitted,
                     bare.ingest.samplesAdmitted);
    EXPECT_DOUBLE_EQ(res.ingest.samplesShed, bare.ingest.samplesShed);
    EXPECT_DOUBLE_EQ(res.ingest.stalenessSum, bare.ingest.stalenessSum);
}

/** A mixed vision + audio two-job trace on one shared core. */
FleetConfig
twoJobFleet(bool disturbed)
{
    FleetConfig fleet;
    fleet.hosts.push_back({"hostA", 4});
    fleet.hosts.push_back({"hostB", 4});
    fleet.policy = PlacementPolicy::Packed;
    fleet.sharedPoolFpgas = 6;

    FleetJobSpec vision;
    vision.name = "vision0";
    vision.config = disturbed ? disturbedConfig(3) : ServerConfig{};
    vision.config.preset = ArchPreset::TrainBox;
    vision.config.model = workload::ModelId::Resnet50;
    vision.config.numAccelerators = 16;
    vision.config.prepPoolFpgas = 4;
    vision.arrival = 0.0;
    vision.warmupSteps = 2;
    vision.measureSteps = 4;
    fleet.jobs.push_back(vision);

    FleetJobSpec audio;
    audio.name = "audio0";
    audio.config = disturbed ? disturbedConfig(11) : ServerConfig{};
    audio.config.preset = ArchPreset::TrainBox;
    audio.config.model = workload::ModelId::TfSr;
    audio.config.numAccelerators = 16;
    audio.config.prepPoolFpgas = 4;
    audio.arrival = 0.05;
    audio.warmupSteps = 2;
    audio.measureSteps = 4;
    fleet.jobs.push_back(audio);
    return fleet;
}

// Interleaved two-job execution on one timeline must replay
// identically: every per-job double, twice.
TEST(FleetTwoJobs, DeterministicReplay)
{
    const FleetReport a = runFleet(twoJobFleet(/*disturbed=*/true));
    const FleetReport b = runFleet(twoJobFleet(/*disturbed=*/true));
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    for (std::size_t i = 0; i < a.jobs.size(); ++i) {
        EXPECT_EQ(a.jobs[i].host, b.jobs[i].host);
        EXPECT_DOUBLE_EQ(a.jobs[i].started, b.jobs[i].started);
        EXPECT_DOUBLE_EQ(a.jobs[i].finished, b.jobs[i].finished);
        EXPECT_DOUBLE_EQ(a.jobs[i].report.throughput(),
                         b.jobs[i].report.throughput());
        EXPECT_DOUBLE_EQ(
            a.jobs[i].report.result.elasticity.samplesPrepared,
            b.jobs[i].report.result.elasticity.samplesPrepared);
    }
    EXPECT_EQ(a.toJson(), b.toJson());
}

// Conservation ledgers hold per job when two disturbed jobs share the
// core (the sessions also panic-check them internally — reaching the
// EXPECTs at all means no cross-job state leaked).
TEST(FleetTwoJobs, LedgersHoldUnderChaos)
{
    const FleetReport r = runFleet(twoJobFleet(/*disturbed=*/true));
    ASSERT_EQ(r.jobsCompleted, 2u);
    for (const FleetJobResult &j : r.jobs) {
        SCOPED_TRACE(j.job);
        expectLedgersHold(j.report.result);
        EXPECT_GT(j.report.result.elasticity.samplesPrepared, 0.0);
        EXPECT_GT(j.report.result.ingest.samplesArrived, 0.0);
    }
    EXPECT_EQ(r.faultsInjected,
              r.jobs[0].report.faults().faultsInjected +
                  r.jobs[1].report.faults().faultsInjected);
}

// One two-box host, two two-box jobs: the second waits for the first
// to finish and its wait is reported as queueing delay.
TEST(FleetQueueing, OversubscribedHostReportsDelay)
{
    FleetConfig fleet;
    fleet.hosts.push_back({"host0", 2});

    for (int i = 0; i < 2; ++i) {
        FleetJobSpec job;
        job.name = i == 0 ? "first" : "second";
        job.config.preset = ArchPreset::TrainBox;
        job.config.model = workload::ModelId::Resnet50;
        job.config.numAccelerators = 16; // 2 boxes
        job.arrival = 0.0;
        job.warmupSteps = 1;
        job.measureSteps = 2;
        fleet.jobs.push_back(job);
    }

    const FleetReport r = runFleet(fleet);
    ASSERT_EQ(r.jobsCompleted, 2u);
    EXPECT_EQ(r.jobsQueued, 1u);
    EXPECT_DOUBLE_EQ(r.jobs[0].queueingDelay, 0.0);
    EXPECT_GT(r.jobs[1].queueingDelay, 0.0);
    // The second job started exactly when the first finished.
    EXPECT_DOUBLE_EQ(r.jobs[1].started, r.jobs[0].finished);
    EXPECT_DOUBLE_EQ(r.maxQueueingDelay, r.jobs[1].queueingDelay);
    EXPECT_DOUBLE_EQ(r.avgQueueingDelay,
                     r.jobs[1].queueingDelay / 2.0);
}

// Two jobs requesting 4 pool FPGAs each against a 6-FPGA shared pool:
// grants sum exactly to the pool, the latecomer is constrained, and
// the fairness index matches the closed-form Jain value.
TEST(FleetPool, OversubscribedGrantsSumToPool)
{
    FleetConfig fleet = twoJobFleet(/*disturbed=*/false);
    fleet.sharedPoolFpgas = 6;

    const FleetReport r = runFleet(fleet);
    ASSERT_EQ(r.jobsCompleted, 2u);
    EXPECT_EQ(r.poolFpgasRequestedTotal, 8u);
    EXPECT_EQ(r.poolFpgasGrantedTotal, 6u); // == the pool, exactly
    EXPECT_EQ(r.jobsPoolConstrained, 1u);
    EXPECT_EQ(r.jobs[0].poolFpgasGranted, 4u);
    EXPECT_EQ(r.jobs[1].poolFpgasGranted, 2u);
    EXPECT_TRUE(r.jobs[1].poolConstrained);
    // Jain over ratios {1.0, 0.5}: (1.5)^2 / (2 * 1.25) = 0.9.
    EXPECT_DOUBLE_EQ(r.poolFairness, 0.9);
    // The constrained job still completes and reports throughput.
    EXPECT_GT(r.jobs[1].report.throughput(), 0.0);
    EXPECT_GT(r.aggregateThroughput,
              r.jobs[0].report.throughput());
}

// Uncapped pool (the exactness-contract setting): configs are never
// rewritten and every request is echoed as its own grant.
TEST(FleetPool, UncappedPoolNeverConstrains)
{
    FleetConfig fleet = twoJobFleet(/*disturbed=*/false);
    fleet.sharedPoolFpgas = -1;

    const FleetReport r = runFleet(fleet);
    ASSERT_EQ(r.jobsCompleted, 2u);
    EXPECT_EQ(r.jobsPoolConstrained, 0u);
    EXPECT_DOUBLE_EQ(r.poolFairness, 1.0);
    for (const FleetJobResult &j : r.jobs)
        EXPECT_EQ(j.poolFpgasGranted, j.poolFpgasRequested);
}

// --- grant reclamation (docs/ROBUSTNESS.md, "Fleet fault tolerance") -----

/** Two 2-box jobs, 4-FPGA requests each, scripted fleet faults. */
FleetConfig
reclamationFleet()
{
    FleetConfig fleet;
    fleet.hosts.push_back({"hostA", 4});
    fleet.sharedPoolFpgas = 6;
    fleet.faults.enabled = true;
    fleet.faults.maxRetries = 3;
    fleet.faults.retryBackoffBase = 0.05;

    for (int i = 0; i < 2; ++i) {
        FleetJobSpec job;
        job.name = i == 0 ? "victim" : "lucky";
        job.arrival = i == 0 ? 0.0 : 0.01;
        job.config.preset = ArchPreset::TrainBox;
        job.config.model = workload::ModelId::Resnet50;
        job.config.numAccelerators = 16; // 2 boxes
        job.config.prepPoolFpgas = 4;
        job.warmupSteps = 1;
        job.measureSteps = 2;
        fleet.jobs.push_back(job);
    }
    return fleet;
}

// A scripted outage kills "victim" the instant it is admitted (t = 0,
// the outage event was scheduled at arm time so it fires after the
// arrival's admission but before any session progress). Its 4-FPGA
// grant must return to the pool as integers immediately — panic-checked
// at every grant mutation — so "lucky", queued during the outage,
// is admitted at repair time with the *full* freed grant (only 2 of 6
// FPGAs would be free had the dead grant leaked). The victim's retry
// then co-resides on the host and completes with the 2-FPGA residue.
TEST(FleetFaults, HostDeathReclaimsGrantForQueuedJob)
{
    FleetConfig fleet = reclamationFleet();
    fleet.faults.schedule.push_back({FleetFaultKind::HostOutage,
                                     /*host=*/0, /*start=*/0.0,
                                     /*duration=*/0.03});

    const FleetReport r = runFleet(fleet);
    ASSERT_EQ(r.jobsCompleted, 2u);
    EXPECT_EQ(r.jobsAbandoned, 0u);
    EXPECT_EQ(r.restartsTotal, 1u);
    EXPECT_EQ(r.fleetFaultsInjected, 1u);
    EXPECT_DOUBLE_EQ(r.hostDownTime, 0.03);

    const FleetJobResult &victim = r.jobs[0];
    EXPECT_EQ(victim.state, FleetJobState::Completed);
    EXPECT_EQ(victim.restarts, 1u);
    // Killed at t = 0 before any work: nothing synced, nothing lost.
    EXPECT_EQ(victim.stepsLost, 0u);
    EXPECT_DOUBLE_EQ(victim.workLost, 0.0);
    // The retry found only the 2 FPGAs lucky left over.
    EXPECT_EQ(victim.poolFpgasGranted, 2u);
    EXPECT_TRUE(victim.poolConstrained);

    const FleetJobResult &lucky = r.jobs[1];
    EXPECT_EQ(lucky.state, FleetJobState::Completed);
    EXPECT_EQ(lucky.restarts, 0u);
    // Queued while the host was down (arrived 0.01, repair 0.03)...
    EXPECT_DOUBLE_EQ(lucky.queueingDelay, 0.02);
    // ...then admitted with the reclaimed grant, uncut.
    EXPECT_EQ(lucky.poolFpgasGranted, 4u);
    EXPECT_FALSE(lucky.poolConstrained);

    // The retry was gated by its backoff only (the host repaired at
    // 0.03, the backoff timer fired at 0.05): the failure-to-
    // re-admission latency is exactly the backoff base.
    EXPECT_GT(victim.finished, lucky.finished);
    EXPECT_DOUBLE_EQ(victim.replacementLatency, 0.05);
    EXPECT_DOUBLE_EQ(r.maxReplacementLatency, victim.replacementLatency);

    // Rollups see the final grants: 2 + 4, Jain over {0.5, 1.0}.
    EXPECT_EQ(r.poolFpgasGrantedTotal, 6u);
    EXPECT_DOUBLE_EQ(r.poolFairness, 0.9);
    ASSERT_EQ(r.retryHistogram.size(), 2u);
    EXPECT_EQ(r.retryHistogram[0], 1u);
    EXPECT_EQ(r.retryHistogram[1], 1u);
}

// Same scenario run twice: the fault path replays bit-identically
// (kills, requeues, backoff timers, and re-admissions are all on the
// deterministic event queue).
TEST(FleetFaults, ScriptedFaultReplayIsDeterministic)
{
    FleetConfig fleet = reclamationFleet();
    fleet.faults.schedule.push_back({FleetFaultKind::HostOutage,
                                     /*host=*/0, /*start=*/0.0,
                                     /*duration=*/0.03});
    const FleetReport a = runFleet(fleet);
    const FleetReport b = runFleet(fleet);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.toJson(), b.toJson());
}

} // namespace
} // namespace tb
