/**
 * @file
 * Checkpoint/restore subsystem tests: the disabled path must be
 * bit-identical to a build without the subsystem, the enabled path must
 * show the modeled costs (sync pause > async pause, nonzero prep
 * contention on central presets), crash rollback must be deterministic,
 * and the Young–Daly helpers must match their closed forms.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "trainbox/checkpoint.hh"
#include "trainbox/report.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"
#include "workload/model_zoo.hh"

namespace tb {
namespace {

SessionResult
runSession(const ServerConfig &cfg, std::size_t warmup = 4,
           std::size_t measure = 8)
{
    auto server = buildServer(cfg);
    TrainingSession session(*server);
    return session.run(warmup, measure);
}

/** VGG-19 scenario shared by the overhead/crash tests. */
ServerConfig
vggConfig(ArchPreset preset)
{
    ServerConfig cfg;
    cfg.preset = preset;
    cfg.model = workload::ModelId::Vgg19;
    cfg.numAccelerators = 32;
    cfg.prepPoolFpgas = 8;
    return cfg;
}

// --- disabled => bit-identical --------------------------------------

TEST(CheckpointDisabled, PresetThroughputsBitIdentical)
{
    // Golden throughputs recorded before the checkpoint subsystem
    // existed (ResNet-50, 32 accelerators, run(4, 8), default config).
    // With checkpointing disabled no new resource, flow, or event may
    // perturb the simulation, so these must match to the last bit.
    const struct
    {
        ArchPreset preset;
        double throughput;
    } golden[] = {
        { ArchPreset::Baseline, 30412.537359822836 },
        { ArchPreset::BaselineAccFpga, 44099.421789334992 },
        { ArchPreset::BaselineAccP2p, 52726.559174010392 },
        { ArchPreset::BaselineAccP2pGen4, 105706.38456337905 },
        { ArchPreset::TrainBoxNoPool, 237516.29284407894 },
        { ArchPreset::TrainBox, 237516.29284407894 },
        { ArchPreset::BaselineAccGpu, 31966.593052101314 },
    };
    for (const auto &g : golden) {
        ServerConfig cfg;
        cfg.preset = g.preset;
        cfg.model = workload::ModelId::Resnet50;
        cfg.numAccelerators = 32;
        const SessionResult res = runSession(cfg);
        EXPECT_DOUBLE_EQ(res.throughput, g.throughput)
            << presetName(g.preset);
        EXPECT_EQ(res.checkpoint.committed, 0u) << presetName(g.preset);
        EXPECT_EQ(res.checkpoint.bytesWritten, 0.0)
            << presetName(g.preset);
        EXPECT_DOUBLE_EQ(
            SessionReport::computeEfficiency(res.checkpoint, res.wallTime),
            1.0)
            << presetName(g.preset);
    }
}

// --- checkpoint size -------------------------------------------------

TEST(CheckpointSize, ScalesWithModelAndOptimizer)
{
    const auto &vgg = workload::model(workload::ModelId::Vgg19);
    EXPECT_DOUBLE_EQ(workload::checkpointBytes(vgg, 0.0),
                     vgg.modelBytes);
    EXPECT_DOUBLE_EQ(workload::checkpointBytes(vgg, 2.0),
                     3.0 * vgg.modelBytes);

    ServerConfig cfg = vggConfig(ArchPreset::TrainBox);
    cfg.checkpoint.enabled = true;
    auto server = buildServer(cfg);
    Checkpointer ckpt(*server, nullptr);
    EXPECT_DOUBLE_EQ(ckpt.totalBytes(),
                     workload::checkpointBytes(
                         vgg, cfg.checkpoint.optimizerSlots));
}

// --- sync / async overhead ------------------------------------------

TEST(CheckpointOverhead, SyncPausesTraining)
{
    ServerConfig cfg = vggConfig(ArchPreset::TrainBox);
    const SessionResult healthy = runSession(cfg, 4, 40);

    cfg.checkpoint.enabled = true;
    cfg.checkpoint.mode = CheckpointMode::Sync;
    cfg.checkpoint.interval = 3.0;
    const SessionResult ckpt = runSession(cfg, 4, 40);

    EXPECT_GT(ckpt.checkpoint.committed, 0u);
    EXPECT_GT(ckpt.checkpoint.pauseTime, 0.0);
    EXPECT_GT(ckpt.checkpoint.avgCost, 0.0);
    EXPECT_GT(ckpt.checkpoint.bytesWritten, 0.0);
    EXPECT_LT(ckpt.throughput, healthy.throughput);
    EXPECT_LT(SessionReport::computeEfficiency(ckpt.checkpoint,
                                               ckpt.wallTime),
              1.0);
    EXPECT_EQ(ckpt.checkpoint.fatalCrashes, 0u);

    // The run is a deterministic simulation: repeating it must
    // reproduce every counter exactly.
    const SessionResult again = runSession(cfg, 4, 40);
    EXPECT_DOUBLE_EQ(again.throughput, ckpt.throughput);
    EXPECT_DOUBLE_EQ(again.checkpoint.pauseTime,
                     ckpt.checkpoint.pauseTime);
    EXPECT_EQ(again.checkpoint.committed, ckpt.checkpoint.committed);
}

TEST(CheckpointOverhead, AsyncPausesLessThanSync)
{
    ServerConfig cfg = vggConfig(ArchPreset::TrainBox);
    cfg.checkpoint.enabled = true;
    cfg.checkpoint.interval = 3.0;

    cfg.checkpoint.mode = CheckpointMode::Sync;
    const SessionResult sync = runSession(cfg, 4, 40);
    cfg.checkpoint.mode = CheckpointMode::Async;
    const SessionResult async = runSession(cfg, 4, 40);

    ASSERT_GT(sync.checkpoint.committed, 0u);
    ASSERT_GT(async.checkpoint.committed, 0u);
    // Async pauses only for the buffer snapshot; sync pauses for the
    // whole SSD drain.
    EXPECT_LT(async.checkpoint.pauseTime, sync.checkpoint.pauseTime);
    EXPECT_GE(async.throughput, sync.throughput);
    // ...but durability costs the same bytes either way.
    EXPECT_GT(async.checkpoint.bytesWritten, 0.0);
}

TEST(CheckpointContention, ClusteringShieldsPrepFromDrains)
{
    // The paper's balance argument, applied to checkpoint traffic:
    // central presets push drains through host DRAM, CPU serialization,
    // and the RC, so prep throughput drops; clustered train boxes write
    // over in-box links only. Snapshot bandwidth is set high so the
    // pause is negligible and the penalty isolates drain contention.
    auto penalty = [](ArchPreset p) {
        ServerConfig cfg = vggConfig(p);
        const double healthy = runSession(cfg, 4, 40).throughput;
        cfg.checkpoint.enabled = true;
        cfg.checkpoint.mode = CheckpointMode::Async;
        cfg.checkpoint.interval = 0.5;
        cfg.checkpoint.snapshotBandwidth = 2.0e12;
        const double ckpt = runSession(cfg, 4, 40).throughput;
        return 1.0 - ckpt / healthy;
    };
    const double base = penalty(ArchPreset::Baseline);
    const double clustered = penalty(ArchPreset::TrainBox);
    EXPECT_GT(base, 0.005);
    EXPECT_LT(clustered, base);
}

// --- crash rollback --------------------------------------------------

TEST(CheckpointCrash, RollbackIsDeterministicAndBounded)
{
    ServerConfig cfg = vggConfig(ArchPreset::TrainBox);
    cfg.checkpoint.enabled = true;
    cfg.checkpoint.mode = CheckpointMode::Sync;
    cfg.checkpoint.interval = 3.0;
    cfg.checkpoint.restartLatency = 5.0;
    cfg.faults.enabled = true;
    cfg.faults.fatalCrash.ratePerSec = 0.02;

    const SessionResult a = runSession(cfg, 4, 40);
    ASSERT_GT(a.checkpoint.fatalCrashes, 0u)
        << "crash rate too low to exercise rollback";
    // The interrupted run still completes every step (replay), and the
    // downtime/lost-work ledger adds up to less than the wall time.
    EXPECT_EQ(a.stepsMeasured, 40u);
    EXPECT_GT(a.checkpoint.restartTime, 0.0);
    EXPECT_GE(a.checkpoint.lostWorkTime, 0.0);
    EXPECT_LT(a.checkpoint.pauseTime + a.checkpoint.lostWorkTime +
                  a.checkpoint.restartTime,
              a.wallTime);
    const double a_eff =
        SessionReport::computeEfficiency(a.checkpoint, a.wallTime);
    EXPECT_GT(a_eff, 0.0);
    EXPECT_LT(a_eff, 1.0);

    // Determinism: an identical config replays the identical history.
    const SessionResult b = runSession(cfg, 4, 40);
    EXPECT_DOUBLE_EQ(b.throughput, a.throughput);
    EXPECT_DOUBLE_EQ(b.wallTime, a.wallTime);
    EXPECT_EQ(b.checkpoint.fatalCrashes, a.checkpoint.fatalCrashes);
    EXPECT_EQ(b.checkpoint.stepsLost, a.checkpoint.stepsLost);
    EXPECT_DOUBLE_EQ(b.checkpoint.lostWorkTime,
                     a.checkpoint.lostWorkTime);
}

TEST(CheckpointCrash, CheckpointingBeatsRestartFromScratch)
{
    ServerConfig cfg = vggConfig(ArchPreset::TrainBox);
    cfg.checkpoint.restartLatency = 5.0;
    cfg.faults.enabled = true;
    cfg.faults.fatalCrash.ratePerSec = 0.02;

    // Without periodic checkpoints every crash rolls back to step 0.
    const SessionResult scratch = runSession(cfg, 4, 40);
    ASSERT_GT(scratch.checkpoint.fatalCrashes, 0u);
    EXPECT_EQ(scratch.checkpoint.committed, 0u);

    cfg.checkpoint.enabled = true;
    cfg.checkpoint.mode = CheckpointMode::Sync;
    cfg.checkpoint.interval = 3.0;
    const SessionResult ckpt = runSession(cfg, 4, 40);
    ASSERT_GT(ckpt.checkpoint.fatalCrashes, 0u);

    EXPECT_LT(ckpt.checkpoint.stepsLost, scratch.checkpoint.stepsLost);
    EXPECT_LT(ckpt.checkpoint.lostWorkTime,
              scratch.checkpoint.lostWorkTime);
    EXPECT_GT(SessionReport::computeEfficiency(ckpt.checkpoint,
                                               ckpt.wallTime),
              SessionReport::computeEfficiency(scratch.checkpoint,
                                               scratch.wallTime));
    EXPECT_GT(ckpt.throughput, scratch.throughput);
}

// --- ratio guards ----------------------------------------------------

TEST(SessionRatios, DegenerateDenominatorsReturnZero)
{
    SessionResult r;
    r.throughput = 100.0;
    EXPECT_DOUBLE_EQ(SessionReport::computeGoodput(r.throughput, 0.0),
                     0.0);
    EXPECT_DOUBLE_EQ(SessionReport::computeGoodput(r.throughput, -1.0),
                     0.0);
    EXPECT_DOUBLE_EQ(SessionReport::computeGoodput(r.throughput, 200.0),
                     0.5);
    r.wallTime = 0.0; // never ran: no useful-time claim
    EXPECT_DOUBLE_EQ(
        SessionReport::computeEfficiency(r.checkpoint, r.wallTime), 0.0);
    r.wallTime = 10.0;
    r.checkpoint.pauseTime = 1.0;
    r.checkpoint.restartTime = 1.0;
    EXPECT_DOUBLE_EQ(
        SessionReport::computeEfficiency(r.checkpoint, r.wallTime), 0.8);
    r.checkpoint.lostWorkTime = 1e9; // ledger noise can't go negative
    EXPECT_DOUBLE_EQ(
        SessionReport::computeEfficiency(r.checkpoint, r.wallTime), 0.0);
}

// --- Young–Daly helpers ---------------------------------------------

TEST(YoungDaly, FirstOrderOptimum)
{
    EXPECT_DOUBLE_EQ(youngDalyInterval(2.0, 3600.0),
                     std::sqrt(2.0 * 2.0 * 3600.0));
    EXPECT_DOUBLE_EQ(youngDalyInterval(0.0, 3600.0), 0.0);
    EXPECT_DOUBLE_EQ(youngDalyInterval(2.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(youngDalyInterval(-1.0, -1.0), 0.0);
}

TEST(YoungDaly, DalyRefinement)
{
    const double c = 2.0, m = 3600.0;
    const double x = c / (2.0 * m);
    const double expect =
        std::sqrt(2.0 * c * m) * (1.0 + std::sqrt(x) / 3.0 + x) - c;
    EXPECT_DOUBLE_EQ(dalyInterval(c, m), expect);
    // Refinement is a small correction when C << M...
    EXPECT_NEAR(dalyInterval(c, m), youngDalyInterval(c, m),
                0.1 * youngDalyInterval(c, m));
    // ...and falls back to first order when C >= 2M.
    EXPECT_DOUBLE_EQ(dalyInterval(10.0, 4.0),
                     youngDalyInterval(10.0, 4.0));
}

TEST(YoungDaly, EfficiencyModelPeaksAtOptimum)
{
    const double c = 2.0, m = 3600.0, r = 10.0;
    const double w = youngDalyInterval(c, m);
    const double at_opt = checkpointEfficiencyModel(w, c, m, r);
    // The analytic optimum beats intervals well off to either side.
    EXPECT_GT(at_opt, checkpointEfficiencyModel(w / 4.0, c, m, r));
    EXPECT_GT(at_opt, checkpointEfficiencyModel(w * 4.0, c, m, r));
    EXPECT_GT(at_opt, 0.9);
    EXPECT_LT(at_opt, 1.0);
    // Degenerate inputs clamp to zero.
    EXPECT_DOUBLE_EQ(checkpointEfficiencyModel(0.0, c, m, r), 0.0);
    EXPECT_DOUBLE_EQ(checkpointEfficiencyModel(w, c, 0.0, r), 0.0);
}

} // namespace
} // namespace tb
