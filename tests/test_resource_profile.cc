/**
 * @file
 * Tests for the analytic host-resource demand model (Figs 10/11/22).
 */

#include <gtest/gtest.h>

#include "trainbox/resource_profile.hh"

namespace tb {
namespace {

using workload::ModelId;

TEST(Profile, BaselineCpuMatchesClosedForm)
{
    sync::SyncConfig sync_cfg;
    const auto &m = workload::model(ModelId::Resnet50);
    const HostDemandBreakdown d =
        requiredHostDemand(m, ArchPreset::Baseline, 256, sync_cfg);
    const double target = workload::targetThroughput(m, 256, sync_cfg);
    EXPECT_NEAR(d.cpuCores, target * 1.572e-3, 1.0);
}

TEST(Profile, CategoriesSumToTotals)
{
    sync::SyncConfig sync_cfg;
    for (const auto &m : workload::modelZoo()) {
        for (ArchPreset p : allPresets()) {
            const HostDemandBreakdown d =
                requiredHostDemand(m, p, 64, sync_cfg);
            double cpu = 0.0, mem = 0.0, rc = 0.0;
            for (const auto &[c, v] : d.cpuByCategory)
                cpu += v;
            for (const auto &[c, v] : d.memByCategory)
                mem += v;
            for (const auto &[c, v] : d.rcByCategory)
                rc += v;
            EXPECT_NEAR(cpu, d.cpuCores, 1e-6);
            EXPECT_NEAR(mem, d.memBw, 1.0);
            EXPECT_NEAR(rc, d.rcBw, 1.0);
        }
    }
}

TEST(Profile, PeakCoreDemandNearPaper)
{
    // Fig 10a: up to ~100.7x DGX-2's 48 cores at 256 accelerators.
    sync::SyncConfig sync_cfg;
    const Dgx2Reference ref;
    double peak = 0.0;
    for (const auto &m : workload::modelZoo()) {
        const HostDemandBreakdown d =
            requiredHostDemand(m, ArchPreset::Baseline, 256, sync_cfg);
        peak = std::max(peak, d.cpuCores / ref.cpuCores);
    }
    EXPECT_NEAR(peak, 100.7, 5.0);
}

TEST(Profile, AccDoublesRcPressure)
{
    // §IV-D: the staged-offload datapath doubles RC bytes vs baseline.
    sync::SyncConfig sync_cfg;
    const auto &m = workload::model(ModelId::Resnet50);
    const auto base =
        requiredHostDemand(m, ArchPreset::Baseline, 256, sync_cfg);
    const auto acc =
        requiredHostDemand(m, ArchPreset::BaselineAccFpga, 256, sync_cfg);
    EXPECT_NEAR(acc.rcBw / base.rcBw, 2.0, 1e-9);
}

TEST(Profile, P2pMatchesAccOnRcButFreesMemory)
{
    sync::SyncConfig sync_cfg;
    const auto &m = workload::model(ModelId::Resnet50);
    const auto acc =
        requiredHostDemand(m, ArchPreset::BaselineAccFpga, 256, sync_cfg);
    const auto p2p =
        requiredHostDemand(m, ArchPreset::BaselineAccP2p, 256, sync_cfg);
    EXPECT_NEAR(p2p.rcBw, acc.rcBw, 1.0);
    EXPECT_DOUBLE_EQ(p2p.memBw, 0.0);
    // P2P removes the NVMe-driver and DMA-staging work (§VI-E); only
    // control-plane cycles remain.
    EXPECT_LT(p2p.cpuCores, 0.2 * acc.cpuCores);
}

TEST(Profile, ClusteringRemovesHostDemand)
{
    sync::SyncConfig sync_cfg;
    for (const auto &m : workload::modelZoo()) {
        const auto d =
            requiredHostDemand(m, ArchPreset::TrainBox, 256, sync_cfg);
        EXPECT_DOUBLE_EQ(d.memBw, 0.0);
        EXPECT_DOUBLE_EQ(d.rcBw, 0.0);
        EXPECT_LT(d.cpuCores, 48.0); // only control-plane work
    }
}

TEST(Profile, ImageDataLoadExceedsSsdRead)
{
    // Fig 11 insight: decode + casting amplify the loaded data beyond
    // the stored size.
    sync::SyncConfig sync_cfg;
    const auto &m = workload::model(ModelId::Resnet50);
    const auto d =
        requiredHostDemand(m, ArchPreset::Baseline, 256, sync_cfg);
    EXPECT_GT(d.rcByCategory.at("data_load"),
              d.rcByCategory.at("ssd_read"));
}

TEST(Profile, CalibrationRescalesPrepCpuOnly)
{
    sync::SyncConfig sync_cfg;
    const auto &m = workload::model(ModelId::Resnet50);
    const auto modeled =
        requiredHostDemand(m, ArchPreset::Baseline, 64, sync_cfg);

    // A machine whose measured formatting+augmentation cost is double
    // the Table I constant should need proportionally more cores for
    // those stages — and identical bandwidth.
    const double modeled_prep =
        modeled.cpuByCategory.at("formatting") +
        modeled.cpuByCategory.at("augmentation");
    const double target = workload::targetThroughput(m, 64, sync_cfg);

    PrepCostCalibration calib;
    calib.imageCoreSecPerSample = 2.0 * modeled_prep / target;
    const auto measured =
        requiredHostDemand(m, ArchPreset::Baseline, 64, sync_cfg, calib);

    EXPECT_NEAR(measured.cpuByCategory.at("formatting"),
                2.0 * modeled.cpuByCategory.at("formatting"), 1e-6);
    EXPECT_NEAR(measured.cpuByCategory.at("augmentation"),
                2.0 * modeled.cpuByCategory.at("augmentation"), 1e-6);
    EXPECT_NEAR(measured.cpuCores - modeled.cpuCores, modeled_prep, 1e-6);
    EXPECT_DOUBLE_EQ(measured.memBw, modeled.memBw);
    EXPECT_DOUBLE_EQ(measured.rcBw, modeled.rcBw);

    // Audio calibration must not perturb an image workload.
    PrepCostCalibration audio_only;
    audio_only.audioCoreSecPerSample = 1.0;
    const auto unchanged = requiredHostDemand(m, ArchPreset::Baseline, 64,
                                              sync_cfg, audio_only);
    EXPECT_DOUBLE_EQ(unchanged.cpuCores, modeled.cpuCores);
}

TEST(Profile, DemandScalesLinearlyWithN)
{
    sync::SyncConfig sync_cfg;
    const auto &m = workload::model(ModelId::TfAa);
    const auto d64 =
        requiredHostDemand(m, ArchPreset::Baseline, 64, sync_cfg);
    const auto d256 =
        requiredHostDemand(m, ArchPreset::Baseline, 256, sync_cfg);
    EXPECT_NEAR(d256.cpuCores / d64.cpuCores, 4.0, 0.05);
    EXPECT_NEAR(d256.memBw / d64.memBw, 4.0, 0.05);
}

} // namespace
} // namespace tb
