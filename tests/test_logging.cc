/**
 * @file
 * Tests for the logging helpers (error semantics per the gem5 style).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace tb {
namespace {

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("broken invariant %d", 42), "broken invariant 42");
}

TEST(LoggingDeath, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "bad config x");
}

TEST(LoggingDeath, PanicIfFiresOnlyWhenTrue)
{
    panic_if(false, "must not fire");
    EXPECT_DEATH(panic_if(true, "fired"), "fired");
}

TEST(LoggingDeath, FatalIfFiresOnlyWhenTrue)
{
    fatal_if(false, "must not fire");
    EXPECT_EXIT(fatal_if(true, "fired"),
                ::testing::ExitedWithCode(1), "fired");
}

TEST(Logging, QuietSuppressesInform)
{
    setQuiet(true);
    EXPECT_TRUE(quiet());
    inform("this must be suppressed");
    setQuiet(false);
    EXPECT_FALSE(quiet());
}

TEST(Logging, WarnAlwaysEmits)
{
    // warn() is not gated by quiet(); just exercise the path.
    setQuiet(true);
    warn("a survivable condition %d", 1);
    setQuiet(false);
}

} // namespace
} // namespace tb
