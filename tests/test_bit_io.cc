/**
 * @file
 * Tests for the JPEG bit-level I/O (MSB-first order, byte stuffing).
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "prep/jpeg/bit_io.hh"

namespace tb {
namespace jpeg {
namespace {

TEST(BitIo, SingleByteRoundTrip)
{
    std::vector<std::uint8_t> out;
    BitWriter bw(out);
    bw.put(0xA5, 8);
    bw.flush();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0xA5);

    BitReader br(out.data(), out.size());
    EXPECT_EQ(br.get(8), 0xA5);
}

TEST(BitIo, MsbFirstOrdering)
{
    std::vector<std::uint8_t> out;
    BitWriter bw(out);
    bw.put(1, 1); // 1
    bw.put(0, 1); // 10
    bw.put(3, 2); // 1011
    bw.put(0x0, 4);
    bw.flush();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0xB0);
}

TEST(BitIo, FlushPadsWithOnes)
{
    std::vector<std::uint8_t> out;
    BitWriter bw(out);
    bw.put(0, 2);
    bw.flush();
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], 0x3F); // 00 followed by six 1-bits
}

TEST(BitIo, FfIsStuffed)
{
    std::vector<std::uint8_t> out;
    BitWriter bw(out);
    bw.put(0xFF, 8);
    bw.put(0x12, 8);
    bw.flush();
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 0xFF);
    EXPECT_EQ(out[1], 0x00);
    EXPECT_EQ(out[2], 0x12);

    BitReader br(out.data(), out.size());
    EXPECT_EQ(br.get(8), 0xFF);
    EXPECT_EQ(br.get(8), 0x12);
}

TEST(BitIo, ReaderStopsAtMarker)
{
    const std::uint8_t data[] = {0xAB, 0xFF, 0xD9}; // EOI marker
    BitReader br(data, sizeof(data));
    EXPECT_EQ(br.get(8), 0xAB);
    EXPECT_EQ(br.get(8), -1); // marker is not scan data
}

TEST(BitIo, ReaderReportsEndOfData)
{
    const std::uint8_t data[] = {0x80};
    BitReader br(data, sizeof(data));
    EXPECT_EQ(br.get(8), 0x80);
    EXPECT_EQ(br.getBit(), -1);
    EXPECT_TRUE(br.atEnd());
}

class BitIoRoundTrip : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(BitIoRoundTrip, RandomFieldsSurvive)
{
    Rng rng(GetParam());
    std::vector<std::pair<std::uint32_t, int>> fields;
    for (int i = 0; i < 500; ++i) {
        const int len = static_cast<int>(rng.uniformInt(1, 16));
        const std::uint32_t bits =
            static_cast<std::uint32_t>(rng()) & ((1u << len) - 1);
        fields.emplace_back(bits, len);
    }
    std::vector<std::uint8_t> out;
    BitWriter bw(out);
    for (const auto &[bits, len] : fields)
        bw.put(bits, len);
    bw.flush();

    BitReader br(out.data(), out.size());
    for (const auto &[bits, len] : fields)
        ASSERT_EQ(br.get(len), static_cast<std::int32_t>(bits));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BitIoRoundTrip,
                         ::testing::Values(1, 2, 3, 99, 12345));

} // namespace
} // namespace jpeg
} // namespace tb
