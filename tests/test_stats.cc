/**
 * @file
 * Tests for the statistics package.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "sim/stats.hh"

namespace tb {
namespace {

TEST(Stats, ScalarAccumulates)
{
    stats::Scalar s;
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    s += 2.5;
    ++s;
    s++;
    EXPECT_DOUBLE_EQ(s.value(), 4.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    s.set(7.0);
    EXPECT_DOUBLE_EQ(s.value(), 7.0);
}

TEST(Stats, DistributionMoments)
{
    stats::Distribution d;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.sum(), 10.0);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.minimum(), 1.0);
    EXPECT_DOUBLE_EQ(d.maximum(), 4.0);
    EXPECT_NEAR(d.stddev(), std::sqrt(1.25), 1e-12);
}

TEST(Stats, EmptyDistributionIsZero)
{
    stats::Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    EXPECT_DOUBLE_EQ(d.minimum(), 0.0);
    EXPECT_DOUBLE_EQ(d.maximum(), 0.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(Stats, DistributionReset)
{
    stats::Distribution d;
    d.sample(5.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    d.sample(1.0);
    EXPECT_DOUBLE_EQ(d.mean(), 1.0);
}

TEST(Stats, GroupDumpContainsEntries)
{
    stats::Scalar s;
    s.set(42.0);
    stats::Distribution d;
    d.sample(3.0);

    stats::StatGroup group("cpu");
    group.registerScalar("busy", &s, "busy cycles");
    group.registerDistribution("latency", &d);

    char buf[512] = {0};
    std::FILE *mem = fmemopen(buf, sizeof(buf), "w");
    group.dump(mem);
    std::fclose(mem);
    const std::string out(buf);
    EXPECT_NE(out.find("cpu.busy 42"), std::string::npos);
    EXPECT_NE(out.find("busy cycles"), std::string::npos);
    EXPECT_NE(out.find("cpu.latency"), std::string::npos);
}

TEST(Stats, GroupResetAll)
{
    stats::Scalar s;
    s.set(1.0);
    stats::Distribution d;
    d.sample(1.0);
    stats::StatGroup group("g");
    group.registerScalar("s", &s);
    group.registerDistribution("d", &d);
    group.resetAll();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
    EXPECT_EQ(d.count(), 0u);
}

} // namespace
} // namespace tb
