/**
 * @file
 * Fault injection + recovery: deterministic schedules, the zero-cost
 * disabled path, reproducible degradation, and failover effectiveness.
 */

#include <gtest/gtest.h>

#include "sim/fault_injector.hh"
#include "trainbox/report.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

namespace tb {
namespace {

FaultConfig
windowScenario()
{
    FaultConfig fc;
    fc.enabled = true;
    fc.ssdDegrade = {0.5, 2.0, 0.05};
    fc.prepCrash = {0.2, 5.0, 0.0};
    fc.ethDegrade = {0.3, 1.0, 0.2};
    fc.routeLoss = {0.1, 4.0, 0.0};
    return fc;
}

TEST(FaultSchedule, DeterministicAndNonOverlapping)
{
    const FaultConfig fc = windowScenario();
    FaultTargets targets;
    targets.numSsds = 8;
    targets.numGroups = 4;

    const auto a = FaultInjector::schedule(fc, targets, 100.0);
    const auto b = FaultInjector::schedule(fc, targets, 100.0);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].target, b[i].target);
        EXPECT_DOUBLE_EQ(a[i].start, b[i].start);
        EXPECT_DOUBLE_EQ(a[i].duration, b[i].duration);
    }

    // Windows of one class never overlap, and targets stay in range.
    std::map<FaultKind, Time> prev_end;
    for (const auto &ev : a) {
        EXPECT_GE(ev.start, prev_end[ev.kind]);
        prev_end[ev.kind] = ev.start + ev.duration;
        const std::size_t space = ev.kind == FaultKind::SsdDegrade
            ? targets.numSsds
            : (ev.kind == FaultKind::EthDegrade ? 1 : targets.numGroups);
        EXPECT_LT(ev.target, space);
    }
}

TEST(FaultSchedule, NewSeedNewSchedule)
{
    FaultConfig fc = windowScenario();
    FaultTargets targets;
    targets.numSsds = 8;
    targets.numGroups = 4;
    const auto a = FaultInjector::schedule(fc, targets, 100.0);
    fc.seed ^= 0x1;
    const auto b = FaultInjector::schedule(fc, targets, 100.0);
    ASSERT_FALSE(a.empty());
    ASSERT_FALSE(b.empty());
    EXPECT_NE(a.front().start, b.front().start);
}

TEST(FaultSchedule, DisabledClassesProduceNothing)
{
    const FaultConfig fc; // all rates zero
    FaultTargets targets;
    targets.numSsds = 4;
    targets.numGroups = 2;
    EXPECT_TRUE(FaultInjector::schedule(fc, targets, 1000.0).empty());
}

SessionResult
runSession(const ServerConfig &cfg, std::size_t warmup = 4,
           std::size_t measure = 8)
{
    auto server = buildServer(cfg);
    TrainingSession session(*server);
    return session.run(warmup, measure);
}

ServerConfig
trainBoxConfig(std::size_t n_acc)
{
    ServerConfig cfg;
    cfg.preset = ArchPreset::TrainBox;
    cfg.model = workload::ModelId::Resnet50;
    cfg.numAccelerators = n_acc;
    cfg.prepPoolFpgas = 8; // force a pool so failover has a target
    return cfg;
}

TEST(FaultSession, DisabledPathIsBitIdentical)
{
    const ServerConfig base = trainBoxConfig(32);

    // A config full of armed-but-disabled fault knobs must produce the
    // exact same result as one that never mentions faults.
    ServerConfig knobs = base;
    knobs.faults = windowScenario();
    knobs.faults.enabled = false;
    knobs.faults.ssdReadFailureProb = 0.3;
    knobs.faults.stragglerProb = 0.5;

    const SessionResult a = runSession(base);
    const SessionResult b = runSession(knobs);
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
    EXPECT_DOUBLE_EQ(a.stepTime, b.stepTime);
    EXPECT_DOUBLE_EQ(a.prepLatency, b.prepLatency);
    EXPECT_EQ(b.faults.faultsInjected, 0u);
    EXPECT_EQ(b.faults.ssdRetries, 0u);
    EXPECT_DOUBLE_EQ(b.faults.degradedTime, 0.0);
}

TEST(FaultSession, SsdDegradationReproducesExactly)
{
    ServerConfig cfg = trainBoxConfig(32);
    const SessionResult healthy = runSession(cfg);

    // Scale windows to the run: several arrivals, step-length outages
    // that throttle one SSD to 1% — reads stripe over the box's SSDs,
    // so the whole group's fetch is capped while the window is open.
    cfg.faults.enabled = true;
    cfg.faults.ssdDegrade.ratePerSec = 2.0 / healthy.stepTime;
    cfg.faults.ssdDegrade.duration = healthy.stepTime;
    cfg.faults.ssdDegrade.magnitude = 0.01;
    cfg.faults.ssdReadFailureProb = 0.1;

    const SessionResult a = runSession(cfg);
    const SessionResult b = runSession(cfg);

    EXPECT_GT(a.faults.faultsInjected, 0u);
    EXPECT_GT(a.faults.readFailures, 0u);
    EXPECT_GT(a.faults.ssdRetries, 0u);
    EXPECT_GT(a.faults.degradedTime, 0.0);
    EXPECT_LE(a.throughput, healthy.throughput);

    // Same seed, same config => bit-identical degraded run.
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.faults.faultsInjected, b.faults.faultsInjected);
    EXPECT_EQ(a.faults.ssdRetries, b.faults.ssdRetries);
    EXPECT_DOUBLE_EQ(a.faults.degradedTime, b.faults.degradedTime);
}

TEST(FaultSession, PrepCrashFailoverBeatsNoFailover)
{
    ServerConfig cfg = trainBoxConfig(32);
    const SessionResult healthy = runSession(cfg);

    // One long crash early in the run that outlives the whole session:
    // the failover policy must keep goodput clearly above the collapsed
    // no-failover baseline.
    cfg.faults.enabled = true;
    cfg.faults.prepCrash.ratePerSec = 4.0 / healthy.stepTime;
    cfg.faults.prepCrash.duration = 1000.0 * healthy.stepTime;

    ServerConfig no_failover = cfg;
    no_failover.faults.poolFailover = false;

    const SessionResult with = runSession(cfg);
    const SessionResult without = runSession(no_failover);

    EXPECT_GT(with.faults.prepFailovers, 0u);
    EXPECT_EQ(without.faults.prepFailovers, 0u);
    const double with_goodput =
        SessionReport::computeGoodput(with.throughput, healthy.throughput);
    const double without_goodput = SessionReport::computeGoodput(
        without.throughput, healthy.throughput);
    EXPECT_GT(with_goodput, 2.0 * without_goodput);
    // Failover keeps the machine productive through the outage.
    EXPECT_GT(with_goodput, 0.5);
}

TEST(FaultSession, StragglerTimeoutBoundsStepTime)
{
    ServerConfig cfg = trainBoxConfig(16);
    cfg.faults.enabled = true;
    cfg.faults.stragglerProb = 0.4;
    cfg.faults.stragglerFactor = 8.0;

    ServerConfig wait_out = cfg;
    wait_out.faults.stepTimeoutFactor = 0.0; // barrier waits stragglers

    cfg.faults.stepTimeoutFactor = 1.5; // abort + re-dispatch at 1.5x

    const SessionResult bounded = runSession(cfg);
    const SessionResult unbounded = runSession(wait_out);

    EXPECT_GT(bounded.faults.stragglerSteps, 0u);
    EXPECT_GT(bounded.faults.computeRedispatches, 0u);
    EXPECT_EQ(unbounded.faults.computeRedispatches, 0u);
    EXPECT_EQ(bounded.faults.stragglerSteps,
              unbounded.faults.stragglerSteps);
    // Re-dispatching caps a straggling step at (1.5 + 1)x nominal
    // compute instead of 8x, so average step time must be lower.
    EXPECT_LT(bounded.stepTime, unbounded.stepTime);
}

TEST(FaultSession, AllClassesTogetherCompleteAndReproduce)
{
    ServerConfig cfg = trainBoxConfig(32);
    const SessionResult healthy = runSession(cfg);

    cfg.faults = windowScenario();
    const Time step = healthy.stepTime;
    cfg.faults.ssdDegrade = {1.0 / step, 0.5 * step, 0.05};
    cfg.faults.prepCrash = {0.5 / step, 2.0 * step, 0.0};
    cfg.faults.ethDegrade = {0.5 / step, step, 0.2};
    cfg.faults.routeLoss = {0.5 / step, step, 0.0};
    cfg.faults.ssdReadFailureProb = 0.05;
    cfg.faults.stragglerProb = 0.1;

    const SessionResult a = runSession(cfg);
    const SessionResult b = runSession(cfg);
    EXPECT_GT(a.faults.faultsInjected, 0u);
    EXPECT_GT(a.faults.degradedTime, 0.0);
    EXPECT_GT(a.throughput, 0.0);
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
    EXPECT_EQ(a.faults.faultsInjected, b.faults.faultsInjected);
}

} // namespace
} // namespace tb
