/**
 * @file
 * Fleet-level fault tolerance tests (docs/ROBUSTNESS.md, "Fleet fault
 * tolerance"):
 *
 *  - bit-identity: an *enabled* fault config whose classes are all off
 *    schedules zero events, so the pinned goldens and whole-report JSON
 *    match the disabled path exactly;
 *  - validation: FleetConfig::validate() rejects bad retry policies,
 *    negative MTBF/MTTR, unsorted schedules, and out-of-range hosts
 *    with the documented messages;
 *  - retry/backoff: scripted outages exercise the Queued → Running →
 *    Failed → Requeued → Completed/Abandoned machine deterministically,
 *    including exponential backoff and the checkpoint-restart bank;
 *  - fault kinds: box losses evict the newest co-resident job, pool
 *    partitions fence free FPGAs only;
 *  - chaos: >= 20 random seeds mix fleet faults with the per-job
 *    fault/elasticity/ingest injectors; every conservation ledger is
 *    panic-checked inside the simulator, so completing a run at all is
 *    the assertion, and same-seed runs replay identically.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>

#include "trainbox/fleet.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"
#include "workload/model_zoo.hh"

namespace tb {
namespace {

/** The undisturbed 16-accelerator TrainBox job used as a fixture. */
ServerConfig
plainConfig()
{
    ServerConfig cfg;
    cfg.preset = ArchPreset::TrainBox;
    cfg.model = workload::ModelId::Resnet50;
    cfg.numAccelerators = 16; // 2 boxes
    cfg.prepPoolFpgas = 4;
    return cfg;
}

/** The chaos harness's disturbed scenario (mirrors test_fleet.cc). */
ServerConfig
disturbedConfig(std::uint64_t seed)
{
    ServerConfig cfg = plainConfig();

    cfg.faults.enabled = true;
    cfg.faults.seed = seed;
    cfg.faults.ssdReadFailureProb = 0.01;
    cfg.faults.stragglerProb = 0.05;
    cfg.faults.prepCrash.ratePerSec = 0.03;
    cfg.faults.prepCrash.duration = 0.8;
    cfg.faults.ssdDegrade.ratePerSec = 0.03;
    cfg.faults.ssdDegrade.duration = 0.8;
    cfg.faults.corruption.ssdBitFlipProb = 0.005;
    cfg.faults.corruption.fpgaUpsetProb = 0.002;
    cfg.faults.integrityChecks = true;

    cfg.elasticity.enabled = true;
    cfg.elasticity.seed = seed;
    cfg.elasticity.graceWindow = 0.5;
    cfg.elasticity.rejoinLatency = 0.2;
    cfg.elasticity.groupDrain.ratePerSec = 0.05;
    cfg.elasticity.groupDrain.absence = 0.8;
    cfg.elasticity.groupPreempt.ratePerSec = 0.05;
    cfg.elasticity.groupPreempt.absence = 0.8;
    cfg.elasticity.prepDrain.ratePerSec = 0.05;
    cfg.elasticity.prepDrain.absence = 0.8;

    cfg.ingest.enabled = true;
    cfg.ingest.seed = seed;
    cfg.ingest.steady = {15000.0, 256.0, 2};
    cfg.ingest.burst = {5000.0, 512.0, 0};
    cfg.ingest.bufferCapacity = 8192.0;
    cfg.ingest.highWatermark = 6144.0;
    cfg.ingest.lowWatermark = 2048.0;
    cfg.ingest.policyChain = {IngestPolicy::Throttle, IngestPolicy::Shed,
                              IngestPolicy::Echo};
    cfg.ingest.echoFactor = 2.0;
    cfg.ingest.writeFailureProb = 0.05;
    return cfg;
}

/** Bare-session wall time: the yardstick for scripting fault times. */
Time
bareWall(const ServerConfig &cfg, std::size_t warmup, std::size_t measure)
{
    auto server = buildServer(cfg);
    TrainingSession session(*server);
    return session.run(warmup, measure).wallTime;
}

/** One plainConfig() job on a one-host fleet, fleet faults enabled. */
FleetConfig
oneJobFaultFleet(const ServerConfig &cfg)
{
    FleetConfig fleet;
    fleet.hosts.push_back({"host0", 2});
    fleet.faults.enabled = true;
    FleetJobSpec job;
    job.name = "solo";
    job.config = cfg;
    job.warmupSteps = 2;
    job.measureSteps = 4;
    fleet.jobs.push_back(job);
    return fleet;
}

void
expectLedgersHold(const SessionResult &res)
{
    const auto &e = res.elasticity;
    EXPECT_NEAR(e.samplesPrepared,
                e.samplesConsumed + e.samplesCachedAtEnd +
                    e.samplesDiscarded,
                1e-6 * std::max(1.0, e.samplesPrepared));
    const auto &in = res.ingest;
    EXPECT_NEAR(in.samplesArrived,
                in.samplesAdmitted + in.samplesShed +
                    in.samplesInFlightAtEnd,
                1e-6 * std::max(1.0, in.samplesArrived));
    EXPECT_EQ(res.integrity.injected,
              res.integrity.detected + res.integrity.escaped);
}

// --- bit-identity ---------------------------------------------------------

// faults.enabled with every class off and no scripted windows schedules
// zero events: the golden throughput and the entire report must match
// the disabled path byte for byte.
TEST(FleetFaultIdentity, EmptyFaultConfigIsBitIdentical)
{
    FleetConfig enabled = oneJobFaultFleet(plainConfig());
    FleetConfig disabled = enabled;
    disabled.faults.enabled = false;

    const FleetReport a = runFleet(enabled);
    const FleetReport b = runFleet(disabled);
    ASSERT_EQ(a.jobsCompleted, 1u);
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.toJson(), b.toJson());
    EXPECT_DOUBLE_EQ(a.jobs[0].report.throughput(),
                     b.jobs[0].report.throughput());
}

// The chaos-harness golden through the enabled-but-empty fault path:
// the 32-accelerator pinned TrainBox number, to the double.
TEST(FleetFaultIdentity, PinnedGoldenSurvivesEnabledFaultPath)
{
    ServerConfig cfg;
    cfg.preset = ArchPreset::TrainBox;
    cfg.model = workload::ModelId::Resnet50;
    cfg.numAccelerators = 32;

    FleetConfig fleet;
    fleet.hosts.push_back({"host0", 64});
    fleet.faults.enabled = true;
    FleetJobSpec job;
    job.name = "solo";
    job.config = cfg;
    job.warmupSteps = 4;
    job.measureSteps = 8;
    fleet.jobs.push_back(job);

    const FleetReport r = runFleet(fleet);
    ASSERT_EQ(r.jobsCompleted, 1u);
    EXPECT_DOUBLE_EQ(r.jobs[0].report.throughput(), 237516.29284407894);
    EXPECT_EQ(r.fleetFaultsInjected, 0u);
    EXPECT_EQ(r.restartsTotal, 0u);
}

// --- validation -----------------------------------------------------------

void
expectInvalid(const FleetConfig &fleet, const std::string &needle)
{
    const std::string err = fleet.validate();
    EXPECT_NE(err.find(needle), std::string::npos)
        << "wanted \"" << needle << "\" in \"" << err << "\"";
}

TEST(FleetFaultValidate, AcceptsAdmissibleScenario)
{
    FleetConfig fleet = oneJobFaultFleet(plainConfig());
    fleet.horizon = 10.0;
    fleet.faults.hostOutage = {5.0, 0.5};
    fleet.faults.boxLoss = {8.0, 0.5};
    fleet.faults.poolPartition = {6.0, 0.5};
    fleet.faults.schedule.push_back(
        {FleetFaultKind::HostOutage, 0, 1.0, 0.25});
    EXPECT_EQ(fleet.validate(), "");
}

TEST(FleetFaultValidate, RejectsBadRetryPolicy)
{
    FleetConfig base = oneJobFaultFleet(plainConfig());

    FleetConfig f = base;
    f.faults.maxRetries = 65;
    expectInvalid(f, "faults.maxRetries 65 exceeds the cap 64");

    f = base;
    f.faults.retryBackoffBase = -0.1;
    expectInvalid(f, "faults.retryBackoffBase must be >= 0");

    f = base;
    f.faults.retryBackoffFactor = 0.5;
    expectInvalid(f, "faults.retryBackoffFactor must be >= 1");
}

TEST(FleetFaultValidate, RejectsBadClassRates)
{
    FleetConfig base = oneJobFaultFleet(plainConfig());

    FleetConfig f = base;
    f.faults.hostOutage.mtbf = -1.0;
    expectInvalid(f, "faults.hostOutage.mtbf must be >= 0");

    f = base;
    f.faults.boxLoss.mttr = -2.0;
    expectInvalid(f, "faults.boxLoss.mttr must be >= 0");

    // Seeded streams are enumerated over the horizon: rate without
    // horizon is a config error, not a silent no-op.
    f = base;
    f.faults.poolPartition.mtbf = 5.0;
    expectInvalid(f, "needs a positive horizon");

    f = base;
    f.horizon = 10.0;
    f.faults.boxLoss.mtbf = 1.0;
    f.faults.boxLossUnits = 0;
    expectInvalid(f, "faults.boxLossUnits must be >= 1");
}

TEST(FleetFaultValidate, RejectsBadScriptedSchedule)
{
    FleetConfig base = oneJobFaultFleet(plainConfig());

    FleetConfig f = base;
    f.faults.schedule.push_back(
        {FleetFaultKind::HostOutage, 0, -1.0, 0.1});
    expectInvalid(f, "starts at -1 < 0");

    f = base;
    f.faults.schedule.push_back(
        {FleetFaultKind::HostOutage, 0, 1.0, -0.5});
    expectInvalid(f, "negative duration");

    f = base;
    f.faults.schedule.push_back(
        {FleetFaultKind::HostOutage, 0, 2.0, 0.1});
    f.faults.schedule.push_back(
        {FleetFaultKind::HostOutage, 0, 1.0, 0.1});
    expectInvalid(f, "must be sorted");

    f = base;
    f.faults.schedule.push_back(
        {FleetFaultKind::HostOutage, 5, 1.0, 0.1});
    expectInvalid(f, "targets host 5 but the fleet has only 1 hosts");

    f = base;
    f.faults.schedule.push_back(
        {FleetFaultKind::BoxLoss, 0, 1.0, 0.1, /*units=*/0});
    expectInvalid(f, "has zero units");
}

// --- retry / backoff / abandonment ---------------------------------------

// Two scripted outages against maxRetries = 1: the first kill requeues
// (exponential backoff, host repaired in time), the second exhausts the
// budget and abandons the job. All times are scripted as fractions of
// the measured bare wall time, so the kills land mid-attempt
// deterministically.
TEST(FleetRetry, RetryExhaustionAbandons)
{
    const ServerConfig cfg = plainConfig();
    const Time w = bareWall(cfg, 2, 4);
    ASSERT_GT(w, 0.0);

    FleetConfig fleet = oneJobFaultFleet(cfg);
    fleet.faults.maxRetries = 1;
    fleet.faults.retryBackoffBase = 0.2 * w;
    fleet.faults.retryBackoffFactor = 2.0;
    // The prep pipeline fills for ~60% of the wall before the first
    // sync, so the kills land at 75% of each attempt — two steps
    // synced, none durable. Attempt 1 spans [0, w): killed at 0.75w,
    // retried at 0.95w. Attempt 2 spans [0.95w, 1.95w): killed at
    // 1.7w -> abandoned.
    fleet.faults.schedule.push_back(
        {FleetFaultKind::HostOutage, 0, 0.75 * w, 0.1 * w});
    fleet.faults.schedule.push_back(
        {FleetFaultKind::HostOutage, 0, 1.7 * w, 0.1 * w});

    const FleetReport r = runFleet(fleet);
    EXPECT_EQ(r.jobsCompleted, 0u);
    EXPECT_EQ(r.jobsAbandoned, 1u);
    EXPECT_EQ(r.restartsTotal, 2u);
    EXPECT_EQ(r.fleetFaultsInjected, 2u);

    const FleetJobResult &j = r.jobs[0];
    EXPECT_EQ(j.state, FleetJobState::Abandoned);
    EXPECT_FALSE(j.completed);
    EXPECT_EQ(j.restarts, 2u);
    // Each attempt lost its three-quarter run of wall time; no
    // checkpointing, so every synced step was lost work.
    EXPECT_NEAR(j.workLost, 1.5 * w, 1e-9 * w);
    EXPECT_EQ(j.stepsLost, 4u); // two synced steps per killed attempt
    // One re-admission, exactly one backoff (base * factor^0).
    EXPECT_NEAR(j.replacementLatency, 0.2 * w, 1e-9 * w);
    ASSERT_EQ(r.retryHistogram.size(), 3u);
    EXPECT_EQ(r.retryHistogram[2], 1u);
}

// With periodic checkpointing the retry restarts from the last durable
// step: the replacement attempt measures strictly fewer steps than the
// job's budget, and its re-admission latency includes the configured
// checkpoint restart (restore) latency on top of the backoff.
TEST(FleetRetry, CheckpointRestartBanksDurableProgress)
{
    ServerConfig cfg = plainConfig();
    const Time w0 = bareWall(cfg, 2, 4);
    cfg.checkpoint.enabled = true;
    cfg.checkpoint.mode = CheckpointMode::Sync;
    cfg.checkpoint.interval = w0 / 8.0; // capture roughly every step
    cfg.checkpoint.restartLatency = 0.05 * w0;
    const Time w = bareWall(cfg, 2, 4);
    ASSERT_GT(w, 0.0);

    FleetConfig fleet = oneJobFaultFleet(cfg);
    fleet.faults.maxRetries = 3;
    fleet.faults.retryBackoffBase = 0.01 * w;
    // At 0.88w the job has synced step 4 but the last durable capture
    // was at step 3: the kill loses exactly one step and banks one
    // measured step (durable 3 - warmup 2) for the retry.
    fleet.faults.schedule.push_back(
        {FleetFaultKind::HostOutage, 0, 0.88 * w, 0.02 * w});

    const FleetReport r = runFleet(fleet);
    ASSERT_EQ(r.jobsCompleted, 1u);
    const FleetJobResult &j = r.jobs[0];
    EXPECT_EQ(j.state, FleetJobState::Completed);
    EXPECT_EQ(j.restarts, 1u);
    // Banked durable progress: the final (retry) report measured only
    // the un-checkpointed tail of the 4-step budget.
    EXPECT_GT(j.report.stepsMeasured(), 0u);
    EXPECT_LT(j.report.stepsMeasured(), 4u);
    // Backoff + checkpoint restore, with the host already repaired.
    EXPECT_NEAR(j.replacementLatency, 0.01 * w + 0.05 * w0, 1e-9 * w);
    // Only the tail past the durable capture was lost (synced 4,
    // durable 3) — versus 4 steps without checkpointing.
    EXPECT_EQ(j.stepsLost, 1u);
}

// --- box loss and pool partition ------------------------------------------

// A 2-slot box loss on a full host evicts the most recently admitted
// co-resident job (minimizing lost work); the elder job rides the
// window out untouched and the victim re-admits at repair time.
TEST(FleetFaultKinds, BoxLossEvictsNewestJob)
{
    const ServerConfig cfg = plainConfig();
    const Time w = bareWall(cfg, 2, 4);
    ASSERT_GT(w, 0.0);

    FleetConfig fleet;
    fleet.hosts.push_back({"host0", 4});
    fleet.faults.enabled = true;
    fleet.faults.maxRetries = 2;
    fleet.faults.retryBackoffBase = 0.05 * w;
    fleet.faults.schedule.push_back(
        {FleetFaultKind::BoxLoss, 0, 0.5 * w, 0.2 * w, /*units=*/2});

    for (int i = 0; i < 2; ++i) {
        FleetJobSpec job;
        job.name = i == 0 ? "elder" : "newbie";
        job.arrival = i == 0 ? 0.0 : 0.2 * w;
        job.config = cfg;
        job.warmupSteps = 2;
        job.measureSteps = 4;
        fleet.jobs.push_back(job);
    }

    const FleetReport r = runFleet(fleet);
    ASSERT_EQ(r.jobsCompleted, 2u);
    EXPECT_EQ(r.fleetFaultsInjected, 1u);
    EXPECT_EQ(r.restartsTotal, 1u);
    // A box loss is not an outage: no host-down time accrues.
    EXPECT_DOUBLE_EQ(r.hostDownTime, 0.0);

    const FleetJobResult &elder = r.jobs[0];
    EXPECT_EQ(elder.restarts, 0u);
    EXPECT_EQ(elder.state, FleetJobState::Completed);

    const FleetJobResult &newbie = r.jobs[1];
    EXPECT_EQ(newbie.restarts, 1u);
    EXPECT_EQ(newbie.state, FleetJobState::Completed);
    // Failed at the loss (0.5w), re-admitted at the repair (0.7w):
    // the fenced slots gated the retry past its 0.05w backoff.
    EXPECT_NEAR(newbie.replacementLatency, 0.2 * w, 1e-9 * w);
}

// A pool partition fences *free* FPGAs only: the grant already held
// rides the window out, while a job admitted during the window gets
// the depleted residue and is flagged constrained.
TEST(FleetFaultKinds, PoolPartitionFencesOnlyFreeFpgas)
{
    const ServerConfig cfg = plainConfig();
    const Time w = bareWall(cfg, 2, 4);
    ASSERT_GT(w, 0.0);

    FleetConfig fleet;
    fleet.hosts.push_back({"hostA", 2});
    fleet.hosts.push_back({"hostB", 2});
    fleet.sharedPoolFpgas = 8;
    fleet.faults.enabled = true;
    fleet.faults.schedule.push_back(
        {FleetFaultKind::PoolPartition, 0, 0.2 * w, 0.6 * w,
         /*units=*/3});

    for (int i = 0; i < 2; ++i) {
        FleetJobSpec job;
        job.name = i == 0 ? "early" : "late";
        job.arrival = i == 0 ? 0.0 : 0.4 * w;
        job.config = cfg;
        job.warmupSteps = 2;
        job.measureSteps = 4;
        fleet.jobs.push_back(job);
    }

    const FleetReport r = runFleet(fleet);
    ASSERT_EQ(r.jobsCompleted, 2u);
    EXPECT_EQ(r.fleetFaultsInjected, 1u);
    EXPECT_EQ(r.restartsTotal, 0u);

    // early held 4 of 8 before the window; the partition fenced 3 of
    // the 4 free, leaving exactly 1 for the latecomer.
    EXPECT_EQ(r.jobs[0].poolFpgasGranted, 4u);
    EXPECT_FALSE(r.jobs[0].poolConstrained);
    EXPECT_EQ(r.jobs[1].poolFpgasGranted, 1u);
    EXPECT_TRUE(r.jobs[1].poolConstrained);
}

// --- randomized chaos -----------------------------------------------------

/** Two disturbed jobs + all three seeded fleet-fault classes. */
FleetConfig
chaosFleet(std::uint64_t seed, Time w)
{
    FleetConfig fleet;
    fleet.hosts.push_back({"hostA", 4});
    fleet.hosts.push_back({"hostB", 4});
    fleet.policy = PlacementPolicy::Packed;
    fleet.sharedPoolFpgas = 6;
    fleet.horizon = 8.0 * w;

    fleet.faults.enabled = true;
    fleet.faults.seed = seed;
    fleet.faults.hostOutage = {1.5 * w, 0.15 * w};
    fleet.faults.boxLoss = {2.0 * w, 0.2 * w};
    fleet.faults.boxLossUnits = 1;
    fleet.faults.poolPartition = {1.5 * w, 0.15 * w};
    fleet.faults.poolPartitionFpgas = 2;
    fleet.faults.maxRetries = 2;
    fleet.faults.retryBackoffBase = 0.05 * w;

    FleetJobSpec vision;
    vision.name = "vision0";
    vision.config = disturbedConfig(3);
    vision.arrival = 0.0;
    vision.warmupSteps = 2;
    vision.measureSteps = 4;
    fleet.jobs.push_back(vision);

    FleetJobSpec audio;
    audio.name = "audio0";
    audio.config = disturbedConfig(11);
    audio.config.model = workload::ModelId::TfSr;
    audio.arrival = 0.05 * w;
    audio.warmupSteps = 2;
    audio.measureSteps = 4;
    fleet.jobs.push_back(audio);
    return fleet;
}

// 20 seeds of fleet faults on top of the per-job fault + elasticity +
// ingest injectors. Every conservation ledger — per-session samples,
// ingest, integrity, the pool-grant ledger at each mutation, and the
// fleet job ledger — is panic-checked inside the simulator, so
// completing each run is itself the assertion; the EXPECTs re-state
// the job ledger and spot-check the per-job ones at the gtest level.
TEST(FleetChaos, LedgersHoldAcrossSeeds)
{
    const Time w = bareWall(plainConfig(), 2, 4);
    ASSERT_GT(w, 0.0);

    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const FleetReport r = runFleet(chaosFleet(seed, w));
        EXPECT_EQ(r.jobsCompleted + r.jobsAbandoned +
                      r.jobsRunningAtHorizon + r.jobsQueuedAtHorizon,
                  r.jobsTotal);
        for (const FleetJobResult &j : r.jobs) {
            SCOPED_TRACE(j.job);
            // The integrity ledger holds at every instant, partial
            // reports included; the sample/ingest ledgers are asserted
            // on completed runs (and panic-checked on partial ones).
            EXPECT_EQ(j.report.result.integrity.injected,
                      j.report.result.integrity.detected +
                          j.report.result.integrity.escaped);
            if (j.completed)
                expectLedgersHold(j.report.result);
            EXPECT_LE(j.restarts, 3u); // maxRetries + the final failure
        }
    }
}

// Same seed, same chaos: the full report replays byte-identically.
TEST(FleetChaos, SameSeedSameReport)
{
    const Time w = bareWall(plainConfig(), 2, 4);
    const FleetReport a = runFleet(chaosFleet(7, w));
    const FleetReport b = runFleet(chaosFleet(7, w));
    EXPECT_EQ(a.eventsExecuted, b.eventsExecuted);
    EXPECT_EQ(a.toJson(), b.toJson());
    EXPECT_EQ(a.toCsv(), b.toCsv());
}

} // namespace
} // namespace tb
