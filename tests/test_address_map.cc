/**
 * @file
 * Tests for the PCIe address map and switch forwarding (§IV-C), and
 * its consistency with the tree routing the performance model uses.
 */

#include <gtest/gtest.h>

#include "pcie/address_map.hh"

namespace tb {
namespace pcie {
namespace {

struct AddressMapTest : public ::testing::Test
{
    EventQueue eq;
    FluidNetwork net{eq};
    Topology topo{net, "rc", 64e9};

    NodeId sw0, sw1, a, b, c;

    void
    SetUp() override
    {
        sw0 = topo.addSwitch("sw0", topo.root(), 16e9);
        sw1 = topo.addSwitch("sw1", topo.root(), 16e9);
        a = topo.addDevice("a", sw0, 16e9);
        b = topo.addDevice("b", sw0, 16e9);
        c = topo.addDevice("c", sw1, 16e9);
    }
};

TEST_F(AddressMapTest, BarsAreDisjointAndSized)
{
    const AddressMap map(topo, 1 << 20);
    const AddressRange ra = map.deviceBar(a);
    const AddressRange rb = map.deviceBar(b);
    const AddressRange rc_ = map.deviceBar(c);
    EXPECT_EQ(ra.size, 1u << 20);
    EXPECT_EQ(rb.size, 1u << 20);
    // Disjoint and ordered by enumeration.
    EXPECT_LE(ra.end(), rb.base);
    EXPECT_LE(rb.end(), rc_.base);
}

TEST_F(AddressMapTest, SwitchWindowsCoverSubtrees)
{
    const AddressMap map(topo);
    const AddressRange w0 = map.subtreeWindow(sw0);
    EXPECT_TRUE(w0.contains(map.deviceBar(a).base));
    EXPECT_TRUE(w0.contains(map.deviceBar(b).end() - 1));
    EXPECT_FALSE(w0.contains(map.deviceBar(c).base));
    const AddressRange root_w = map.subtreeWindow(topo.root());
    EXPECT_TRUE(root_w.contains(map.deviceBar(c).base));
}

TEST_F(AddressMapTest, ResolveFindsOwningDevice)
{
    const AddressMap map(topo);
    EXPECT_EQ(map.resolve(map.deviceBar(a).base), a);
    EXPECT_EQ(map.resolve(map.deviceBar(c).base + 100), c);
    EXPECT_EQ(map.resolve(0x10), kInvalidNode); // below every BAR
}

TEST_F(AddressMapTest, PeerRouteStaysUnderCommonSwitch)
{
    // The §IV-C mechanism behind clustering: a -> b never leaves sw0.
    const AddressMap map(topo);
    const auto path = map.route(a, map.deviceBar(b).base);
    ASSERT_EQ(path.size(), 2u);
    EXPECT_EQ(path[0], sw0);
    EXPECT_EQ(path[1], b);
}

TEST_F(AddressMapTest, CrossSwitchRouteClimbsThroughRoot)
{
    const AddressMap map(topo);
    const auto path = map.route(a, map.deviceBar(c).base);
    ASSERT_EQ(path.size(), 4u);
    EXPECT_EQ(path[0], sw0);
    EXPECT_EQ(path[1], topo.root());
    EXPECT_EQ(path[2], sw1);
    EXPECT_EQ(path[3], c);
}

TEST_F(AddressMapTest, ForwardingMatchesTreeRoutingEverywhere)
{
    // Property: for every (src, dst) device pair, hop count via address
    // forwarding equals the performance model's routeHops.
    const AddressMap map(topo);
    for (NodeId src : {a, b, c}) {
        for (NodeId dst : {a, b, c}) {
            if (src == dst)
                continue;
            const auto path = map.route(src, map.deviceBar(dst).base);
            EXPECT_EQ(path.size(), topo.routeHops(src, dst))
                << src << "->" << dst;
            EXPECT_EQ(path.back(), dst);
        }
    }
}

TEST_F(AddressMapTest, RouteToUnmappedAddressIsEmpty)
{
    const AddressMap map(topo);
    EXPECT_TRUE(map.route(a, 0x10).empty());
}

TEST_F(AddressMapTest, DeepTreeForwarding)
{
    const NodeId mid = topo.addSwitch("mid", sw1, 16e9);
    const NodeId leaf = topo.addDevice("leaf", mid, 16e9);
    const AddressMap map(topo);
    const auto path = map.route(a, map.deviceBar(leaf).base);
    ASSERT_EQ(path.size(), 5u);
    EXPECT_EQ(path[0], sw0);
    EXPECT_EQ(path[1], topo.root());
    EXPECT_EQ(path[2], sw1);
    EXPECT_EQ(path[3], mid);
    EXPECT_EQ(path[4], leaf);
}

TEST(AddressMapDeath, BarOfSwitchIsFatal)
{
    EventQueue eq;
    FluidNetwork net(eq);
    Topology topo(net, "rc", 1e9);
    const NodeId sw = topo.addSwitch("sw", topo.root(), 1e9);
    const AddressMap map(topo);
    EXPECT_DEATH(map.deviceBar(sw), "not a device");
}

} // namespace
} // namespace pcie
} // namespace tb
