/**
 * @file
 * Parameterized sweep over (architecture preset x workload x scale):
 * every combination must simulate to completion and satisfy the basic
 * physics — positive throughput, never above the ideal target, step
 * time no shorter than compute + sync.
 */

#include <tuple>

#include <gtest/gtest.h>

#include "trainbox/report.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

namespace tb {
namespace {

using SweepParam = std::tuple<ArchPreset, workload::ModelId, std::size_t>;

class SessionSweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(SessionSweep, SimulatesWithinPhysicalBounds)
{
    const auto [preset, model_id, n] = GetParam();

    ServerConfig cfg;
    cfg.preset = preset;
    cfg.model = model_id;
    cfg.numAccelerators = n;
    auto server = buildServer(cfg);
    TrainingSession session(*server);
    const SessionResult res = session.run(4, 8);

    const workload::ModelInfo &m = workload::model(model_id);
    const double target = workload::targetThroughput(m, n, cfg.sync);

    EXPECT_GT(res.throughput, 0.0);
    // Prefetch-buffer drain can inflate short measurement windows by at
    // most depth/measure; allow that slack but no more.
    EXPECT_LE(res.throughput, 1.6 * target);
    EXPECT_GE(res.stepTime * 1.0001, res.computeTime + res.syncTime);
    EXPECT_GT(res.prepLatency, 0.0);
    EXPECT_LE(SessionReport::sumCategories(res.cpuCoresByCategory),
              cfg.host.cpuCores * 1.0001);
    EXPECT_LE(SessionReport::sumCategories(res.memBwByCategory),
              cfg.host.memBandwidth * 1.0001);
    EXPECT_LE(SessionReport::sumCategories(res.rcBwByCategory),
              cfg.host.rcBandwidth *
                  (preset == ArchPreset::BaselineAccP2pGen4 ? 2.0001
                                                            : 1.0001));
}

INSTANTIATE_TEST_SUITE_P(
    AllPresets, SessionSweep,
    ::testing::Combine(
        ::testing::ValuesIn(allPresets()),
        ::testing::Values(workload::ModelId::InceptionV4,
                          workload::ModelId::TfSr),
        ::testing::Values<std::size_t>(1, 8, 32)),
    [](const ::testing::TestParamInfo<SweepParam> &info) {
        std::string name = presetName(std::get<0>(info.param));
        for (auto &c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        name += std::get<1>(info.param) ==
                        workload::ModelId::InceptionV4
            ? "_img" : "_aud";
        name += "_n" + std::to_string(std::get<2>(info.param));
        return name;
    });

TEST(SessionSweepExtra, ThroughputMonotoneInScaleForTrainBox)
{
    double prev = 0.0;
    for (std::size_t n : {1u, 4u, 16u, 64u}) {
        ServerConfig cfg;
        cfg.preset = ArchPreset::TrainBox;
        cfg.model = workload::ModelId::Resnet50;
        cfg.numAccelerators = n;
        auto server = buildServer(cfg);
        TrainingSession session(*server);
        const double thpt = session.run(4, 8).throughput;
        EXPECT_GT(thpt, prev);
        prev = thpt;
    }
}

TEST(SessionSweepExtra, RepeatedRunsAreDeterministic)
{
    auto once = [] {
        ServerConfig cfg;
        cfg.preset = ArchPreset::TrainBox;
        cfg.model = workload::ModelId::TfAa;
        cfg.numAccelerators = 32;
        auto server = buildServer(cfg);
        TrainingSession session(*server);
        return session.run(4, 8).throughput;
    };
    EXPECT_DOUBLE_EQ(once(), once());
}

} // namespace
} // namespace tb
