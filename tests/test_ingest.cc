/**
 * @file
 * Streaming ingest under overload: the IngestScheduler arrival streams
 * (determinism, diurnal modulation, explicit-schedule merging) and the
 * TrainingSession admission machinery (watermark trips, policy
 * shedding, overflow drops, write retries, the conservation ledger,
 * and bit-determinism of full overload runs). The degenerate report
 * ratios (nothing arrived, zero-length windows) are pinned here too.
 *
 * Companion suites: tests/test_server_config.cc checks the validation
 * messages, tests/test_chaos.cc mixes ingest with faults and
 * elasticity, bench/ingest_sweep.cc --smoke asserts the policy-chain
 * goodput ordering.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/ingest.hh"
#include "trainbox/report.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"
#include "workload/model_zoo.hh"

namespace tb {
namespace {

/** Two-group scenario, small enough for repeated session runs. */
ServerConfig
baseConfig()
{
    ServerConfig cfg;
    cfg.preset = ArchPreset::TrainBox;
    cfg.model = workload::ModelId::Resnet50;
    cfg.numAccelerators = 16; // two groups at accPerBox = 8
    cfg.prepPoolFpgas = 4;
    return cfg;
}

SessionResult
runSession(const ServerConfig &cfg, std::size_t warmup = 2,
           std::size_t measure = 4)
{
    const std::string problem = cfg.validate();
    EXPECT_EQ(problem, "") << problem;
    auto server = buildServer(cfg);
    TrainingSession session(*server);
    return session.run(warmup, measure);
}

/** The arrived == admitted + shed + in-flight ledger, from the stats. */
void
expectLedgerHolds(const SessionResult::IngestStats &s)
{
    const double gap =
        s.samplesArrived -
        (s.samplesAdmitted + s.samplesShed + s.samplesInFlightAtEnd);
    EXPECT_LE(std::fabs(gap), 1e-6 * std::max(1.0, s.samplesArrived));
    EXPECT_GE(s.samplesArrived, 0.0);
    EXPECT_GE(s.samplesAdmitted, 0.0);
    EXPECT_GE(s.samplesShed, 0.0);
    EXPECT_GE(s.samplesInFlightAtEnd, 0.0);
    // The shed side decomposes exactly into its causes.
    EXPECT_NEAR(s.samplesShed,
                s.samplesThrottled + s.samplesShedPolicy +
                    s.samplesOverflowDropped + s.samplesAbandonedWrites,
                1e-6 * std::max(1.0, s.samplesShed));
}

// --- scheduler unit behavior -----------------------------------------

TEST(IngestSchedulerUnit, PreviewIsDeterministicAndOrdered)
{
    IngestConfig cfg;
    cfg.enabled = true;
    cfg.seed = 7;
    cfg.steady = {500.0, 64.0, 2};
    cfg.burst = {200.0, 256.0, 0};

    const auto a = IngestScheduler::schedule(cfg, 50.0);
    const auto b = IngestScheduler::schedule(cfg, 50.0);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_GT(a.size(), 10u);
    Time prev = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(static_cast<int>(a[i].kind),
                  static_cast<int>(b[i].kind));
        EXPECT_DOUBLE_EQ(a[i].at, b[i].at);
        EXPECT_DOUBLE_EQ(a[i].samples, b[i].samples);
        EXPECT_GE(a[i].at, prev);
        EXPECT_LT(a[i].at, 50.0);
        EXPECT_GT(a[i].samples, 0.0);
        // Priority travels with the class.
        const int want =
            a[i].kind == IngestTrafficKind::Steady ? 2 : 0;
        EXPECT_EQ(a[i].priority, want);
        prev = a[i].at;
    }

    // A different seed draws a different timeline.
    cfg.seed = 8;
    const auto c = IngestScheduler::schedule(cfg, 50.0);
    bool differs = c.size() != a.size();
    for (std::size_t i = 0; !differs && i < c.size(); ++i)
        differs = c[i].at != a[i].at;
    EXPECT_TRUE(differs);
}

TEST(IngestSchedulerUnit, DiurnalModulatesBatchVolume)
{
    IngestConfig cfg;
    cfg.enabled = true;
    cfg.diurnal = {1000.0, 64.0, 1};
    cfg.diurnalAmplitude = 1.0;
    cfg.diurnalPeriod = 20.0;
    EXPECT_TRUE(cfg.anyArrivals());

    const auto events = IngestScheduler::schedule(cfg, 40.0);
    ASSERT_GT(events.size(), 20u);
    constexpr double kTwoPi = 6.283185307179586476925286766559;
    for (const IngestArrival &ev : events) {
        // rate(t) = mean * (1 + A sin(2 pi t / T)), clamped at zero.
        const double scale = std::max(
            0.0, 1.0 + std::sin(kTwoPi * ev.at / cfg.diurnalPeriod));
        EXPECT_NEAR(ev.samples, 64.0 * scale, 1e-9);
        EXPECT_EQ(static_cast<int>(ev.kind),
                  static_cast<int>(IngestTrafficKind::Diurnal));
    }
}

TEST(IngestSchedulerUnit, ExplicitScheduleMergedInTimeOrder)
{
    IngestConfig cfg;
    cfg.enabled = true;
    cfg.schedule = {
        {IngestTrafficKind::Burst, 100.0, 0, 1.0},
        {IngestTrafficKind::Burst, 200.0, 0, 2.0},
        {IngestTrafficKind::Burst, 300.0, 0, 99.0}, // past horizon
    };
    EXPECT_TRUE(cfg.anyArrivals());

    const auto events = IngestScheduler::schedule(cfg, 10.0);
    ASSERT_EQ(events.size(), 2u);
    EXPECT_DOUBLE_EQ(events[0].samples, 100.0);
    EXPECT_DOUBLE_EQ(events[1].samples, 200.0);

    IngestConfig off;
    EXPECT_FALSE(off.anyArrivals());
}

TEST(IngestSchedulerUnit, WriteFailureDrawsAreAReplayableStream)
{
    IngestConfig cfg;
    cfg.enabled = true;
    cfg.writeFailureProb = 0.5;
    IngestScheduler a(cfg), b(cfg);
    std::size_t failures = 0;
    for (int i = 0; i < 256; ++i) {
        const bool fa = a.writeAttemptFails();
        EXPECT_EQ(fa, b.writeAttemptFails());
        failures += fa;
    }
    EXPECT_GT(failures, 64u);
    EXPECT_LT(failures, 192u);

    // Probability zero never consults (or fails) the stream.
    cfg.writeFailureProb = 0.0;
    IngestScheduler never(cfg);
    for (int i = 0; i < 16; ++i)
        EXPECT_FALSE(never.writeAttemptFails());
}

// --- zero-capacity and tiny buffers ----------------------------------

TEST(IngestSession, ZeroCapacityBufferIsRejectedByValidation)
{
    ServerConfig cfg = baseConfig();
    cfg.ingest.enabled = true;
    cfg.ingest.bufferCapacity = 0.0;
    const std::string err = cfg.validate();
    EXPECT_NE(err.find("ingest.bufferCapacity"), std::string::npos);
    EXPECT_NE(err.find("> 0 samples"), std::string::npos);
}

TEST(IngestSession, TinyBufferShedsAlmostEverythingButCompletes)
{
    // A 64-sample buffer against a 5000 samples/s feed: nearly every
    // arrival overflows or is rejected, yet the run must finish every
    // step and balance the ledger exactly.
    ServerConfig cfg = baseConfig();
    cfg.ingest.enabled = true;
    cfg.ingest.steady = {5000.0, 64.0, 2};
    cfg.ingest.bufferCapacity = 64.0;
    cfg.ingest.lowWatermark = 16.0;
    cfg.ingest.highWatermark = 32.0;
    cfg.ingest.writeChunkSamples = 64.0;
    cfg.ingest.policyChain = {IngestPolicy::Throttle, IngestPolicy::Shed};

    const SessionResult res = runSession(cfg);
    EXPECT_EQ(res.stepsMeasured, 4u);
    EXPECT_TRUE(std::isfinite(res.throughput));
    EXPECT_GT(res.throughput, 0.0);

    const auto &s = res.ingest;
    expectLedgerHolds(s);
    EXPECT_GT(s.arrivalEvents, 0u);
    EXPECT_GT(s.overloadTrips, 0u);
    EXPECT_GT(s.samplesOverflowDropped, 0.0);
    EXPECT_GT(s.samplesThrottled, 0.0);
    EXPECT_GT(s.samplesAdmitted, 0.0);
    // The buffer can never hold more than its capacity.
    EXPECT_LE(s.peakBufferLevel, 64.0 + 1e-9);
    EXPECT_LT(s.samplesAdmitted, s.samplesArrived);
}

// --- watermark semantics ---------------------------------------------

TEST(IngestSession, BurstExactlyAtHighWatermarkTripsOverload)
{
    // One arrival of exactly highWatermark samples: the >= comparison
    // must trip the first policy (a burst *at* the watermark is an
    // overload, not almost-one), and the buffer must drain back to the
    // low watermark and disengage.
    ServerConfig cfg = baseConfig();
    cfg.ingest.enabled = true;
    cfg.ingest.policyChain = {IngestPolicy::Throttle};
    cfg.ingest.schedule = {{IngestTrafficKind::Burst, 6144.0, 0, 0.5}};

    const SessionResult res = runSession(cfg);
    EXPECT_EQ(res.stepsMeasured, 4u);
    const auto &s = res.ingest;
    expectLedgerHolds(s);
    EXPECT_EQ(s.arrivalEvents, 1u);
    EXPECT_EQ(s.overloadTrips, 1u);
    EXPECT_GT(s.overloadTime, 0.0);
    EXPECT_GE(s.peakBufferLevel, 6144.0);
    // The whole burst lands on shards eventually: nothing shed.
    EXPECT_DOUBLE_EQ(s.samplesShed, 0.0);
    EXPECT_NEAR(s.samplesAdmitted + s.samplesInFlightAtEnd, 6144.0,
                1e-9);

    // One sample below the watermark must NOT trip.
    cfg.ingest.schedule = {{IngestTrafficKind::Burst, 6143.0, 0, 0.5}};
    const SessionResult below = runSession(cfg);
    EXPECT_EQ(below.ingest.overloadTrips, 0u);
    EXPECT_DOUBLE_EQ(below.ingest.overloadTime, 0.0);
}

// --- policy semantics ------------------------------------------------

TEST(IngestSession, ShedEverythingPolicyDropsWhileEngaged)
{
    // Shed with a cutoff above every priority: once the watermark
    // trips, every arrival is refused until the buffer drains.
    ServerConfig cfg = baseConfig();
    cfg.ingest.enabled = true;
    cfg.ingest.policyChain = {IngestPolicy::Shed};
    cfg.ingest.shedPriorityCutoff = 10;
    cfg.ingest.schedule = {{IngestTrafficKind::Burst, 6144.0, 0, 0.5}};
    // Follow-on arrivals land while the burst is still draining
    // (draining back to the low watermark takes tens of ms here).
    for (int i = 1; i <= 10; ++i)
        cfg.ingest.schedule.push_back(
            {IngestTrafficKind::Steady, 64.0, 2, 0.5 + 5e-4 * i});

    const SessionResult res = runSession(cfg);
    const auto &s = res.ingest;
    expectLedgerHolds(s);
    EXPECT_GE(s.overloadTrips, 1u);
    EXPECT_DOUBLE_EQ(s.samplesShedPolicy, 640.0);
    EXPECT_DOUBLE_EQ(s.samplesThrottled, 0.0);
    EXPECT_NEAR(s.samplesAdmitted + s.samplesInFlightAtEnd, 6144.0,
                1e-9);
}

TEST(IngestSession, WriteRetriesBackOffThenAbandon)
{
    ServerConfig cfg = baseConfig();
    cfg.ingest.enabled = true;
    cfg.ingest.steady = {4000.0, 256.0, 2};
    cfg.ingest.writeFailureProb = 0.6;
    cfg.ingest.maxWriteRetries = 1;

    const SessionResult res = runSession(cfg);
    const auto &s = res.ingest;
    expectLedgerHolds(s);
    EXPECT_GT(s.writeFlows, 0u);
    EXPECT_GT(s.writeRetries, 0u);
    EXPECT_GT(s.writeFailures, 0u);
    EXPECT_GT(s.samplesAbandonedWrites, 0.0);
    // Abandoned chunks count as shed, never as admitted.
    EXPECT_LE(s.samplesAbandonedWrites, s.samplesShed + 1e-9);
}

// --- echo-mode determinism -------------------------------------------

TEST(IngestSession, EchoOverloadRunsAreBitDeterministic)
{
    // Sustained ~2x overload with Echo in the chain: training reuses
    // prepped batches, echoed samples accumulate, and two runs of the
    // identical config must agree bit-for-bit on every ledger entry.
    ServerConfig cfg = baseConfig();
    cfg.ingest.enabled = true;
    cfg.ingest.steady = {120000.0, 512.0, 2};
    cfg.ingest.policyChain = {IngestPolicy::Throttle, IngestPolicy::Shed,
                              IngestPolicy::Echo};
    cfg.ingest.stalenessSlo = 0.05;

    const SessionResult a = runSession(cfg);
    const SessionResult b = runSession(cfg);

    EXPECT_EQ(a.stepsMeasured, 4u);
    expectLedgerHolds(a.ingest);
    EXPECT_GT(a.ingest.overloadTrips, 0u);
    EXPECT_GT(a.ingest.samplesEchoed, 0.0);

    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
    EXPECT_DOUBLE_EQ(a.wallTime, b.wallTime);
    EXPECT_EQ(a.ingest.arrivalEvents, b.ingest.arrivalEvents);
    EXPECT_EQ(a.ingest.overloadTrips, b.ingest.overloadTrips);
    EXPECT_EQ(a.ingest.writeFlows, b.ingest.writeFlows);
    EXPECT_DOUBLE_EQ(a.ingest.samplesArrived, b.ingest.samplesArrived);
    EXPECT_DOUBLE_EQ(a.ingest.samplesAdmitted, b.ingest.samplesAdmitted);
    EXPECT_DOUBLE_EQ(a.ingest.samplesShed, b.ingest.samplesShed);
    EXPECT_DOUBLE_EQ(a.ingest.samplesEchoed, b.ingest.samplesEchoed);
    EXPECT_DOUBLE_EQ(a.ingest.stalenessSum, b.ingest.stalenessSum);
    EXPECT_DOUBLE_EQ(a.ingest.stalenessMax, b.ingest.stalenessMax);
    EXPECT_DOUBLE_EQ(a.ingest.peakBufferLevel,
                     b.ingest.peakBufferLevel);
}

// --- report ratios ---------------------------------------------------

TEST(IngestReport, DisabledRunRatiosAreDegenerateNotNan)
{
    // With ingest off nothing arrives: every ratio accessor must fall
    // back to its documented degenerate value instead of dividing by
    // zero (the div-by-zero audit regression).
    ServerConfig cfg = baseConfig();
    auto server = buildServer(cfg);
    TrainingSession session(*server);
    const SessionReport report = session.runReport(2, 4);

    EXPECT_EQ(report.ingest().arrivalEvents, 0u);
    EXPECT_DOUBLE_EQ(report.ingest().samplesArrived, 0.0);
    EXPECT_DOUBLE_EQ(report.ingestAdmitRate(), 1.0);
    EXPECT_DOUBLE_EQ(report.ingestShedRate(), 0.0);
    EXPECT_DOUBLE_EQ(report.avgIngestStaleness(), 0.0);
    EXPECT_DOUBLE_EQ(report.freshnessSloAttainment(), 1.0);
    EXPECT_DOUBLE_EQ(report.echoEffectiveFactor(), 1.0);

    // The sibling ratio accessors stay clamped on the same run.
    EXPECT_GE(report.efficiency(), 0.0);
    EXPECT_LE(report.efficiency(), 1.0);
    EXPECT_GE(report.capacityAvailability(), 0.0);
    EXPECT_LE(report.capacityAvailability(), 1.0);
    EXPECT_DOUBLE_EQ(report.goodput(0.0), 0.0); // degenerate reference
    EXPECT_LE(report.goodput(report.throughput() / 2.0), 1.0);
}

TEST(IngestReport, OverloadRunRatiosStayInUnitInterval)
{
    ServerConfig cfg = baseConfig();
    cfg.ingest.enabled = true;
    cfg.ingest.steady = {120000.0, 512.0, 2};
    cfg.ingest.stalenessSlo = 1e-6; // almost nothing can meet this
    cfg.ingest.writeFailureProb = 0.3;
    auto server = buildServer(cfg);
    TrainingSession session(*server);
    const SessionReport report = session.runReport(2, 4);

    EXPECT_GT(report.ingest().samplesArrived, 0.0);
    const double ratios[] = {
        report.ingestAdmitRate(),
        report.ingestShedRate(),
        report.freshnessSloAttainment(),
        report.echoEffectiveFactor(),
    };
    for (double r : ratios) {
        EXPECT_GE(r, 0.0);
        EXPECT_LE(r, 1.0);
    }
    EXPECT_GE(report.avgIngestStaleness(), 0.0);
    EXPECT_LE(report.avgIngestStaleness(),
              report.ingest().stalenessMax + 1e-12);
    // Admit + shed covers everything but the tail still in flight.
    EXPECT_GE(report.ingestAdmitRate() + report.ingestShedRate() + 1e-9,
              1.0 - report.ingest().samplesInFlightAtEnd /
                        std::max(1.0, report.ingest().samplesArrived));
}

} // namespace
} // namespace tb
