/**
 * @file
 * End-to-end data integrity: CRC32C envelopes and validators on the
 * functional path, corruption injection and detection accounting on the
 * simulated path, and the exact conservation law the subsystem is built
 * around — every injected flip is detected or escaped, never lost:
 *
 *     injected == detected + escaped
 *
 * See docs/ROBUSTNESS.md ("Data integrity & silent corruption").
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "common/crc32c.hh"
#include "common/random.hh"
#include "prep/executor/prep_executor.hh"
#include "prep/integrity.hh"
#include "prep/pipeline.hh"
#include "sim/fault_injector.hh"
#include "trainbox/report.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

namespace tb {
namespace {

// --- CRC32C ----------------------------------------------------------

TEST(Crc32c, StandardCheckValue)
{
    // The canonical CRC32C check value (RFC 3720 appendix / every
    // published implementation).
    const char digits[] = "123456789";
    EXPECT_EQ(crc32c(digits, 9), 0xE3069283u);
}

TEST(Crc32c, IncrementalMatchesOneShot)
{
    std::vector<std::uint8_t> data(1024);
    Rng rng(7);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));

    const std::uint32_t whole = crc32c(data.data(), data.size());
    std::uint32_t inc = 0;
    inc = crc32c(data.data(), 100, inc);
    inc = crc32c(data.data() + 100, 500, inc);
    inc = crc32c(data.data() + 600, data.size() - 600, inc);
    EXPECT_EQ(inc, whole);
}

TEST(Crc32c, EmptyInputIsZero)
{
    EXPECT_EQ(crc32c(nullptr, 0), 0u);
}

// --- envelope --------------------------------------------------------

TEST(Envelope, SealOpenRoundTrip)
{
    std::vector<std::uint8_t> bytes = {1, 2, 3, 4, 5};
    const std::vector<std::uint8_t> original = bytes;
    prep::sealItem(bytes);
    EXPECT_EQ(bytes.size(), original.size() + prep::kEnvelopeBytes);

    std::string error;
    EXPECT_TRUE(prep::openItem(bytes, &error)) << error;
    EXPECT_EQ(bytes, original);
}

TEST(Envelope, EmptyPayloadRoundTrips)
{
    std::vector<std::uint8_t> bytes;
    prep::sealItem(bytes);
    EXPECT_EQ(bytes.size(), prep::kEnvelopeBytes);
    std::string error;
    EXPECT_TRUE(prep::openItem(bytes, &error)) << error;
    EXPECT_TRUE(bytes.empty());
}

TEST(Envelope, EverySingleBitFlipIsDetected)
{
    // Exhaustive: flipping any single bit of a sealed item — payload or
    // footer — must fail verification. This is the whole point of the
    // envelope; a CRC detects all 1-bit errors by construction.
    std::vector<std::uint8_t> sealed = {10, 20, 30, 40, 50, 60, 70};
    prep::sealItem(sealed);
    for (std::size_t bit = 0; bit < sealed.size() * 8; ++bit) {
        auto corrupt = sealed;
        corrupt[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        std::string error;
        EXPECT_FALSE(prep::openItem(corrupt, &error))
            << "bit " << bit << " not detected";
        EXPECT_EQ(prep::quarantineReason(error), "checksum_mismatch");
    }
}

TEST(Envelope, TruncatedAndUnsealedItemsRejected)
{
    std::vector<std::uint8_t> tiny = {1, 2, 3};
    std::string error;
    EXPECT_FALSE(prep::openItem(tiny, &error));
    EXPECT_EQ(tiny.size(), 3u); // left unchanged on failure

    // A plausible-size buffer without the magic.
    std::vector<std::uint8_t> unsealed(64, 0xAB);
    EXPECT_FALSE(prep::openItem(unsealed, &error));
    EXPECT_EQ(prep::quarantineReason(error), "checksum_mismatch");
}

// --- validators ------------------------------------------------------

TEST(Validators, ImageTensorScreens)
{
    std::string error;
    EXPECT_TRUE(prep::validateImageTensor({0.0f, 128.5f, 255.0f}, &error));

    EXPECT_FALSE(prep::validateImageTensor({}, &error));
    EXPECT_FALSE(prep::validateImageTensor(
        {1.0f, std::numeric_limits<float>::quiet_NaN()}, &error));
    EXPECT_EQ(prep::quarantineReason(error), "tensor_invalid");
    EXPECT_FALSE(prep::validateImageTensor(
        {std::numeric_limits<float>::infinity()}, &error));
    EXPECT_FALSE(prep::validateImageTensor({-1.0f}, &error));
    EXPECT_FALSE(prep::validateImageTensor({256.0f}, &error));
}

TEST(Validators, AudioFeatureScreens)
{
    std::string error;
    EXPECT_TRUE(prep::validateAudioFeatures({-12.5, 0.0, 3.25}, &error));
    EXPECT_FALSE(prep::validateAudioFeatures({}, &error));
    EXPECT_FALSE(prep::validateAudioFeatures(
        {0.0, std::numeric_limits<double>::quiet_NaN()}, &error));
    EXPECT_EQ(prep::quarantineReason(error), "tensor_invalid");
}

TEST(Validators, FlipRandomBitChangesExactlyOneBit)
{
    Rng rng(11);
    std::vector<std::uint8_t> bytes(32, 0);
    auto flipped = bytes;
    prep::flipRandomBit(flipped, rng);
    int diff_bits = 0;
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        std::uint8_t x = bytes[i] ^ flipped[i];
        while (x) {
            diff_bits += x & 1;
            x >>= 1;
        }
    }
    EXPECT_EQ(diff_bits, 1);

    // Double flavour: the bit pattern must change (value may even become
    // NaN — that is the point).
    std::vector<double> wave(16, 0.25);
    auto wave2 = wave;
    prep::flipRandomBit(wave2, rng);
    bool changed = false;
    for (std::size_t i = 0; i < wave.size(); ++i) {
        std::uint64_t a, b;
        std::memcpy(&a, &wave[i], 8);
        std::memcpy(&b, &wave2[i], 8);
        if (a != b)
            changed = true;
    }
    EXPECT_TRUE(changed);
}

// --- executor: checksummed items and output validation ---------------

TEST(ExecutorIntegrity, FlippedSealedItemsQuarantineAsChecksum)
{
    Rng gen(31);
    const auto jpeg = prep::makeSyntheticJpeg(64, 64, gen);

    constexpr std::size_t kItems = 12;
    std::vector<std::vector<std::uint8_t>> items;
    Rng flip(32);
    for (std::size_t i = 0; i < kItems; ++i) {
        auto bytes = jpeg;
        prep::sealItem(bytes);
        if (i % 3 == 0) // corrupt every third item
            prep::flipRandomBit(bytes, flip);
        items.push_back(std::move(bytes));
    }

    prep::ExecutorConfig cfg;
    cfg.numWorkers = 2;
    cfg.checksummedItems = true;
    cfg.validateOutputs = true;
    cfg.maxItemRetries = 2;
    cfg.image.cropWidth = 32;
    cfg.image.cropHeight = 32;
    prep::PrepExecutor exec(cfg);

    auto futures = exec.submitImageBatch(items);
    std::size_t ok = 0, failed = 0;
    for (auto &f : futures) {
        const prep::PreparedImage out = f.get();
        if (out.ok)
            ++ok;
        else
            ++failed;
    }
    exec.shutdown();

    EXPECT_EQ(ok, kItems - kItems / 3);
    EXPECT_EQ(failed, kItems / 3);

    const auto quarantined = exec.quarantined();
    ASSERT_EQ(quarantined.size(), kItems / 3);
    const auto by_reason = prep::quarantineByReason(quarantined);
    EXPECT_EQ(by_reason.at("checksum_mismatch"), kItems / 3);

    // Checksum failures are deterministic: no retry attempts burned.
    EXPECT_EQ(exec.statsSnapshot().itemsRetried, 0.0);
}

TEST(ExecutorIntegrity, CleanSealedItemsPrepareIdenticallyToUnsealed)
{
    Rng gen(33);
    const auto jpeg = prep::makeSyntheticJpeg(48, 48, gen);

    prep::ExecutorConfig plain;
    plain.numWorkers = 1;
    plain.image.cropWidth = 32;
    plain.image.cropHeight = 32;

    prep::ExecutorConfig sealed_cfg = plain;
    sealed_cfg.checksummedItems = true;
    sealed_cfg.validateOutputs = true;

    std::vector<float> plain_tensor, sealed_tensor;
    {
        prep::PrepExecutor exec(plain);
        auto f = exec.submitImageBatch({jpeg});
        auto out = f[0].get();
        ASSERT_TRUE(out.ok) << out.error;
        plain_tensor = out.tensor;
    }
    {
        auto bytes = jpeg;
        prep::sealItem(bytes);
        prep::PrepExecutor exec(sealed_cfg);
        auto f = exec.submitImageBatch({std::move(bytes)});
        auto out = f[0].get();
        ASSERT_TRUE(out.ok) << out.error;
        sealed_tensor = out.tensor;
    }
    // Envelope verification strips the footer before decode, so the
    // prepared tensor is bit-identical to the unchecked path.
    EXPECT_EQ(plain_tensor, sealed_tensor);
}

TEST(ExecutorIntegrity, CorruptAudioQuarantinesWithReason)
{
    std::vector<std::vector<double>> waves;
    // A clean waveform, one with a NaN, one empty.
    std::vector<double> clean(4000);
    for (std::size_t i = 0; i < clean.size(); ++i)
        clean[i] = 0.1 * std::sin(0.01 * static_cast<double>(i));
    std::vector<double> poisoned = clean;
    poisoned[123] = std::numeric_limits<double>::quiet_NaN();
    waves.push_back(clean);
    waves.push_back(poisoned);
    waves.push_back({});

    prep::ExecutorConfig cfg;
    cfg.numWorkers = 2;
    cfg.validateOutputs = true;
    prep::PrepExecutor exec(cfg);

    auto futures = exec.submitAudioBatch(std::move(waves));
    EXPECT_TRUE(futures[0].get().ok);
    const auto bad = futures[1].get();
    EXPECT_FALSE(bad.ok);
    EXPECT_EQ(prep::quarantineReason(bad.error), "audio_malformed");
    EXPECT_FALSE(futures[2].get().ok);
    exec.shutdown();

    const auto by_reason = prep::quarantineByReason(exec.quarantined());
    EXPECT_EQ(by_reason.at("audio_malformed"), 2u);
}

// --- simulator: injection, detection, and the conservation law -------

SessionResult
runSession(const ServerConfig &cfg, std::size_t warmup = 4,
           std::size_t measure = 8)
{
    auto server = buildServer(cfg);
    TrainingSession session(*server);
    return session.run(warmup, measure);
}

ServerConfig
corruptedConfig(ArchPreset preset, bool checks)
{
    ServerConfig cfg;
    cfg.preset = preset;
    cfg.model = workload::ModelId::Resnet50;
    cfg.numAccelerators = 16;
    if (preset == ArchPreset::TrainBox)
        cfg.prepPoolFpgas = 8;
    cfg.faults.enabled = true;
    cfg.faults.integrityChecks = checks;
    cfg.faults.corruption.ssdBitFlipProb = 0.02;
    cfg.faults.corruption.pcieErrorProb = 0.01;
    cfg.faults.corruption.fpgaUpsetProb = 0.02;
    cfg.faults.corruption.hostDramFlipProb = 0.01;
    return cfg;
}

TEST(SimIntegrity, ConservationLawHoldsExactly)
{
    for (const bool checks : {false, true}) {
        const SessionResult res =
            runSession(corruptedConfig(ArchPreset::TrainBox, checks));
        const auto &in = res.integrity;
        ASSERT_GT(in.injected, 0u);
        // The invariant the subsystem is named for: nothing vanishes.
        EXPECT_EQ(in.detected + in.escaped, in.injected)
            << "checks=" << checks;
        std::size_t by_kind = 0;
        for (std::size_t k = 0; k < kNumCorruptionKinds; ++k)
            by_kind += in.injectedByKind[k];
        EXPECT_EQ(by_kind, in.injected);
    }
}

TEST(SimIntegrity, ChecksOffP2pEscapes_ChecksOnCatchesEverything)
{
    const SessionResult off =
        runSession(corruptedConfig(ArchPreset::TrainBox, false));
    const SessionResult on =
        runSession(corruptedConfig(ArchPreset::TrainBox, true));

    // The P2P path skips the host's validated staging copy: silent SSD
    // flips and FPGA upsets sail through when no checksum stage exists.
    EXPECT_GT(off.integrity.escaped, 0u);
    EXPECT_GT(off.integrity.escapeRate(), 0.0);

    // With end-to-end checks every flip is caught.
    EXPECT_GT(on.integrity.injected, 0u);
    EXPECT_EQ(on.integrity.escaped, 0u);
    EXPECT_EQ(on.integrity.detected, on.integrity.injected);
    EXPECT_GT(on.integrity.recoveries, 0u);

    // PCIe link errors are always detected (LCRC + replay), with or
    // without our checks.
    EXPECT_GT(off.integrity.pcieReplays, 0u);
}

TEST(SimIntegrity, BaselineCpuPathCatchesSilentFlipsWithoutChecks)
{
    // The Baseline stages through host DRAM and decodes on the CPU —
    // software touches every byte, so a corrupted sample fails decode
    // rather than escaping. That is exactly the protection the P2P path
    // gives up.
    const SessionResult res =
        runSession(corruptedConfig(ArchPreset::Baseline, false));
    ASSERT_GT(res.integrity.injected, 0u);
    EXPECT_EQ(res.integrity.escaped, 0u);
    EXPECT_EQ(res.integrity.detected, res.integrity.injected);
}

TEST(SimIntegrity, RecoveryBudgetExhaustionQuarantinesChunk)
{
    ServerConfig cfg = corruptedConfig(ArchPreset::TrainBox, true);
    cfg.faults.corruption.ssdBitFlipProb = 0.9;
    cfg.faults.corruption.fpgaUpsetProb = 0.9;
    cfg.faults.maxIntegrityRecoveries = 1;

    const SessionResult res = runSession(cfg);
    EXPECT_GT(res.integrity.chunksQuarantined, 0u);
    EXPECT_EQ(res.integrity.detected + res.integrity.escaped,
              res.integrity.injected);
    // Quarantine keeps the session running to completion.
    EXPECT_GT(res.throughput, 0.0);
}

TEST(SimIntegrity, IntegrityTaxReducesCpuBoundThroughput)
{
    // At zero flip probability the checks are pure overhead. Baseline is
    // CPU-bound, so the CRC stage's cycles must cost throughput.
    ServerConfig clean;
    clean.preset = ArchPreset::Baseline;
    clean.model = workload::ModelId::Resnet50;
    clean.numAccelerators = 16;

    ServerConfig taxed = clean;
    taxed.faults.enabled = true;
    taxed.faults.integrityChecks = true; // all probs zero

    const SessionResult a = runSession(clean);
    const SessionResult b = runSession(taxed);
    EXPECT_EQ(b.integrity.injected, 0u);
    EXPECT_LT(b.throughput, a.throughput);
    // ...but the tax is a few percent, not a collapse.
    EXPECT_GT(b.throughput, 0.8 * a.throughput);
}

TEST(SimIntegrity, DisabledCorruptionKnobsAreBitIdentical)
{
    // Armed-but-disabled corruption knobs must not perturb the run at
    // all — same invariant the availability faults already keep.
    ServerConfig base;
    base.preset = ArchPreset::TrainBox;
    base.model = workload::ModelId::Resnet50;
    base.numAccelerators = 16;
    base.prepPoolFpgas = 8;

    ServerConfig knobs = base;
    knobs.faults.corruption.ssdBitFlipProb = 0.5;
    knobs.faults.corruption.pcieErrorProb = 0.5;
    knobs.faults.corruption.fpgaUpsetProb = 0.5;
    knobs.faults.corruption.hostDramFlipProb = 0.5;
    knobs.faults.integrityChecks = true;
    knobs.faults.enabled = false; // master switch off

    const SessionResult a = runSession(base);
    const SessionResult b = runSession(knobs);
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
    EXPECT_DOUBLE_EQ(a.stepTime, b.stepTime);
    EXPECT_DOUBLE_EQ(a.prepLatency, b.prepLatency);
    EXPECT_EQ(b.integrity.injected, 0u);
    EXPECT_EQ(b.integrity.detected, 0u);
    EXPECT_EQ(b.integrity.escaped, 0u);
}

// --- determinism pins (same seed => same schedule) -------------------

TEST(SimIntegrity, SameSeedSameCorruptionSchedule)
{
    const ServerConfig cfg = corruptedConfig(ArchPreset::TrainBox, true);
    const SessionResult a = runSession(cfg);
    const SessionResult b = runSession(cfg);

    EXPECT_EQ(a.integrity.injected, b.integrity.injected);
    EXPECT_EQ(a.integrity.detected, b.integrity.detected);
    EXPECT_EQ(a.integrity.escaped, b.integrity.escaped);
    EXPECT_EQ(a.integrity.recoveries, b.integrity.recoveries);
    EXPECT_EQ(a.integrity.pcieReplays, b.integrity.pcieReplays);
    for (std::size_t k = 0; k < kNumCorruptionKinds; ++k)
        EXPECT_EQ(a.integrity.injectedByKind[k],
                  b.integrity.injectedByKind[k]);
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);

    // A different seed draws a different corruption schedule.
    ServerConfig reseeded = cfg;
    reseeded.faults.seed ^= 0x1;
    const SessionResult c = runSession(reseeded);
    EXPECT_EQ(c.integrity.detected + c.integrity.escaped,
              c.integrity.injected);
    bool any_diff = c.integrity.injected != a.integrity.injected;
    for (std::size_t k = 0; k < kNumCorruptionKinds; ++k)
        any_diff = any_diff || c.integrity.injectedByKind[k] !=
                                   a.integrity.injectedByKind[k];
    EXPECT_TRUE(any_diff);
}

TEST(SimIntegrity, MetricsOnOffDoesNotPerturbFaultSchedule)
{
    // The metrics layer observes; it must never consume fault or
    // corruption randomness. Identical schedules either way.
    ServerConfig cfg = corruptedConfig(ArchPreset::TrainBox, true);
    cfg.faults.ssdReadFailureProb = 0.05;

    ServerConfig with_metrics = cfg;
    with_metrics.metricsEnabled = true;

    const SessionResult a = runSession(cfg);
    const SessionResult b = runSession(with_metrics);
    EXPECT_EQ(a.integrity.injected, b.integrity.injected);
    EXPECT_EQ(a.integrity.detected, b.integrity.detected);
    EXPECT_EQ(a.integrity.escaped, b.integrity.escaped);
    EXPECT_EQ(a.faults.readFailures, b.faults.readFailures);
    for (std::size_t k = 0; k < kNumCorruptionKinds; ++k)
        EXPECT_EQ(a.integrity.injectedByKind[k],
                  b.integrity.injectedByKind[k]);
    EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
}

// --- report plumbing -------------------------------------------------

TEST(SimIntegrity, ReportCarriesIntegrityAndPrepQuarantine)
{
    const ServerConfig cfg = corruptedConfig(ArchPreset::TrainBox, true);
    auto server = buildServer(cfg);
    TrainingSession session(*server);
    SessionReport report = session.runReport(4, 8);

    EXPECT_GT(report.integrity().injected, 0u);
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"integrity\""), std::string::npos);
    EXPECT_NE(json.find("\"escape_rate\""), std::string::npos);
    EXPECT_NE(json.find("\"ssd_bit_flip\""), std::string::npos);

    report.attachPrepQuarantine(100, {{"checksum_mismatch", 3},
                                      {"audio_malformed", 2}});
    EXPECT_EQ(report.prepItemsQuarantined(), 5u);
    const std::string json2 = report.toJson();
    EXPECT_NE(json2.find("\"prep_quarantine\""), std::string::npos);
    EXPECT_NE(json2.find("\"checksum_mismatch\": 3"), std::string::npos);

    const std::string csv = report.toCsv();
    EXPECT_NE(csv.find("integrity,injected,"), std::string::npos);
    EXPECT_NE(csv.find("prep_quarantine_by_reason,audio_malformed,2"),
              std::string::npos);
}

} // namespace
} // namespace tb
