/**
 * @file
 * Tests for the image formatting/augmentation operators.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "prep/image/image_ops.hh"
#include "prep/pipeline.hh"

namespace tb {
namespace imageops {
namespace {

Image
gradientImage(int w, int h, int c)
{
    Image img(w, h, c);
    for (int y = 0; y < h; ++y)
        for (int x = 0; x < w; ++x)
            for (int ch = 0; ch < c; ++ch)
                img.at(x, y, ch) =
                    static_cast<std::uint8_t>((x + y * 2 + ch * 7) % 256);
    return img;
}

TEST(ImageOps, CropExtractsWindow)
{
    const Image src = gradientImage(32, 24, 3);
    const Image out = crop(src, 5, 7, 10, 8);
    EXPECT_EQ(out.width, 10);
    EXPECT_EQ(out.height, 8);
    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 10; ++x)
            for (int c = 0; c < 3; ++c)
                ASSERT_EQ(out.at(x, y, c), src.at(5 + x, 7 + y, c));
}

TEST(ImageOps, CenterCropIsCentered)
{
    const Image src = gradientImage(32, 32, 1);
    const Image out = centerCrop(src, 16, 16);
    EXPECT_EQ(out.at(0, 0, 0), src.at(8, 8, 0));
}

TEST(ImageOps, RandomCropStaysInBounds)
{
    Rng rng(3);
    const Image src = gradientImage(40, 30, 3);
    for (int i = 0; i < 50; ++i) {
        const Image out = randomCrop(src, 24, 24, rng);
        EXPECT_EQ(out.width, 24);
        EXPECT_EQ(out.height, 24);
    }
}

TEST(ImageOps, RandomCropVaries)
{
    Rng rng(5);
    const Image src = gradientImage(256, 256, 3);
    const Image a = randomCrop(src, 224, 224, rng);
    const Image b = randomCrop(src, 224, 224, rng);
    // With a 32x32 offset space, two crops almost surely differ.
    EXPECT_NE(a.pixels, b.pixels);
}

TEST(ImageOps, MirrorIsInvolution)
{
    const Image src = gradientImage(31, 17, 3);
    EXPECT_EQ(mirrorHorizontal(mirrorHorizontal(src)), src);
}

TEST(ImageOps, MirrorFlipsColumns)
{
    const Image src = gradientImage(8, 4, 1);
    const Image out = mirrorHorizontal(src);
    for (int y = 0; y < 4; ++y)
        for (int x = 0; x < 8; ++x)
            ASSERT_EQ(out.at(x, y, 0), src.at(7 - x, y, 0));
}

TEST(ImageOps, NoiseHasRequestedSpread)
{
    Rng rng(7);
    Image flat(64, 64, 1);
    for (auto &p : flat.pixels)
        p = 128;
    const Image noisy = addGaussianNoise(flat, 5.0, rng);
    const double mad = meanAbsDifference(flat, noisy);
    // E|N(0,5)| = 5 * sqrt(2/pi) ~ 3.99.
    EXPECT_NEAR(mad, 3.99, 0.4);
}

TEST(ImageOps, ZeroNoiseIsIdentity)
{
    Rng rng(9);
    const Image src = gradientImage(16, 16, 3);
    EXPECT_EQ(addGaussianNoise(src, 0.0, rng), src);
}

TEST(ImageOps, ResizeIdentity)
{
    const Image src = gradientImage(20, 20, 3);
    const Image out = resizeBilinear(src, 20, 20);
    EXPECT_LT(meanAbsDifference(src, out), 0.5);
}

TEST(ImageOps, ResizeDownAndUp)
{
    const Image src = gradientImage(32, 32, 3);
    const Image small = resizeBilinear(src, 16, 16);
    EXPECT_EQ(small.width, 16);
    const Image back = resizeBilinear(small, 32, 32);
    // Smooth gradient survives a down/up cycle approximately.
    EXPECT_LT(meanAbsDifference(src, back), 8.0);
}

TEST(ImageOps, CastTensorShapeAndRange)
{
    const Image src = gradientImage(8, 6, 3);
    const std::vector<float> t = castToFloatTensor(src);
    EXPECT_EQ(t.size(), 8u * 6u * 3u);
    for (float v : t) {
        EXPECT_GE(v, 0.0f);
        EXPECT_LE(v, 1.0f);
    }
    // CHW layout: first plane is channel 0.
    EXPECT_NEAR(t[0], toBf16(src.at(0, 0, 0) / 255.0f), 1e-6);
    EXPECT_NEAR(t[8 * 6], toBf16(src.at(0, 0, 1) / 255.0f), 1e-6);
}

TEST(ImageOps, Bf16RoundingLosesLowMantissa)
{
    EXPECT_EQ(toBf16(1.0f), 1.0f);
    EXPECT_EQ(toBf16(0.0f), 0.0f);
    const float v = 0.1234567f;
    const float r = toBf16(v);
    EXPECT_NEAR(r, v, 0.001f);
    EXPECT_EQ(toBf16(r), r); // idempotent
}

TEST(ImageOpsDeath, OutOfBoundsCropIsFatal)
{
    const Image src = gradientImage(16, 16, 3);
    EXPECT_DEATH(crop(src, 10, 10, 10, 10), "crop");
}

TEST(ImagePipeline, PreparesTensorFromJpeg)
{
    Rng rng(21);
    const auto bytes = prep::makeSyntheticJpeg(256, 256, rng);
    prep::ImagePrepPipeline pipe;
    const prep::PreparedImage out = pipe.prepare(bytes, rng);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.width, 224);
    EXPECT_EQ(out.height, 224);
    EXPECT_EQ(out.channels, 3);
    EXPECT_EQ(out.tensor.size(), 224u * 224u * 3u);
}

TEST(ImagePipeline, AugmentationVariesOutput)
{
    Rng item_rng(23);
    const auto bytes = prep::makeSyntheticJpeg(256, 256, item_rng);
    prep::ImagePrepPipeline pipe;
    Rng rng_a(1), rng_b(2);
    const auto a = pipe.prepare(bytes, rng_a);
    const auto b = pipe.prepare(bytes, rng_b);
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_NE(a.tensor, b.tensor);
}

TEST(ImagePipeline, NoAugmentIsDeterministic)
{
    Rng item_rng(25);
    const auto bytes = prep::makeSyntheticJpeg(256, 256, item_rng);
    prep::ImagePrepConfig cfg;
    cfg.augment = false;
    prep::ImagePrepPipeline pipe(cfg);
    Rng rng_a(1), rng_b(2);
    const auto a = pipe.prepare(bytes, rng_a);
    const auto b = pipe.prepare(bytes, rng_b);
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_EQ(a.tensor, b.tensor);
}

TEST(ImagePipeline, RejectsTooSmallImages)
{
    Rng rng(27);
    const auto bytes = prep::makeSyntheticJpeg(64, 64, rng);
    prep::ImagePrepPipeline pipe;
    const auto out = pipe.prepare(bytes, rng);
    EXPECT_FALSE(out.ok);
    EXPECT_NE(out.error.find("smaller"), std::string::npos);
}

TEST(ImagePipeline, RejectsCorruptItems)
{
    prep::ImagePrepPipeline pipe;
    Rng rng(29);
    const std::vector<std::uint8_t> junk(100, 0x42);
    const auto out = pipe.prepare(junk, rng);
    EXPECT_FALSE(out.ok);
    EXPECT_NE(out.error.find("decode"), std::string::npos);
}

} // namespace
} // namespace imageops
} // namespace tb
