/**
 * @file
 * Randomized property tests for the fluid allocator: on arbitrary
 * flow/resource topologies the allocation must be feasible (no resource
 * over capacity) and max-min optimal (every flow is rate-capped or
 * bottlenecked on a saturated resource), and work must be conserved.
 */

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "fluid/fluid.hh"

namespace tb {
namespace {

struct Scenario
{
    EventQueue eq;
    FluidNetwork net{eq};
    std::vector<FluidResource *> resources;

    struct FlowInfo
    {
        FlowId id;
        double rateCap;
        double fairWeight;
        std::vector<FlowDemand> demands;
        double size;
        bool completed = false;
        Time completedAt = -1.0;
    };
    std::vector<FlowInfo> flows;
};

void
buildRandomScenario(Scenario &s, Rng &rng, std::size_t n_resources,
                    std::size_t n_flows)
{
    for (std::size_t r = 0; r < n_resources; ++r)
        s.resources.push_back(s.net.addResource(
            "r" + std::to_string(r), rng.uniform(50.0, 500.0)));

    for (std::size_t f = 0; f < n_flows; ++f) {
        Scenario::FlowInfo info;
        info.size = rng.uniform(100.0, 2000.0);
        info.rateCap =
            rng.uniform() < 0.3 ? rng.uniform(5.0, 50.0) : 0.0;
        info.fairWeight = rng.uniform() < 0.3
            ? rng.uniform(0.25, 4.0) : 1.0;
        const std::size_t n_demands =
            static_cast<std::size_t>(rng.uniformInt(1, 3));
        std::vector<std::size_t> used;
        for (std::size_t d = 0; d < n_demands; ++d) {
            const std::size_t r = static_cast<std::size_t>(
                rng.uniformInt(0,
                               static_cast<std::int64_t>(n_resources) -
                                   1));
            bool dup = false;
            for (auto u : used)
                dup |= u == r;
            if (dup)
                continue;
            used.push_back(r);
            info.demands.push_back(
                {s.resources[r], rng.uniform(0.5, 3.0)});
        }
        if (info.demands.empty())
            info.demands.push_back({s.resources[0], 1.0});

        FlowSpec spec;
        spec.category = "flow" + std::to_string(f);
        spec.size = info.size;
        spec.rateCap = info.rateCap;
        spec.fairWeight = info.fairWeight;
        spec.demands = info.demands;
        const std::size_t idx = s.flows.size();
        spec.onComplete = [&s, idx](Time t) {
            s.flows[idx].completed = true;
            s.flows[idx].completedAt = t;
        };
        s.flows.push_back(info);
        s.flows.back().id = s.net.startFlow(std::move(spec));
    }
}

class FluidProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FluidProperty, AllocationIsFeasibleAndMaxMin)
{
    Rng rng(GetParam());
    Scenario s;
    buildRandomScenario(s, rng, 5, 20);

    // Inspect the instantaneous allocation before anything finishes.
    std::map<FluidResource *, double> load;
    bool any_active = false;
    for (const auto &f : s.flows) {
        const double rate = s.net.flowRate(f.id);
        ASSERT_GE(rate, 0.0);
        if (f.rateCap > 0.0)
            ASSERT_LE(rate, f.rateCap * (1.0 + 1e-9));
        for (const auto &d : f.demands)
            load[d.resource] += d.weight * rate;
        any_active = true;
    }
    ASSERT_TRUE(any_active);

    for (const auto &[res, used] : load)
        ASSERT_LE(used, res->capacity() * (1.0 + 1e-9))
            << res->name() << " over capacity";

    // Max-min optimality: every flow is either at its cap or touches a
    // saturated resource (otherwise progressive filling would have
    // raised it further).
    for (const auto &f : s.flows) {
        const double rate = s.net.flowRate(f.id);
        const bool capped =
            f.rateCap > 0.0 && rate >= f.rateCap * (1.0 - 1e-9);
        bool bottlenecked = false;
        for (const auto &d : f.demands)
            if (load[d.resource] >=
                d.resource->capacity() * (1.0 - 1e-9))
                bottlenecked = true;
        EXPECT_TRUE(capped || bottlenecked)
            << "flow with rate " << rate << " is neither capped nor "
            << "bottlenecked";
    }
}

TEST_P(FluidProperty, AllFlowsEventuallyCompleteAndConserveWork)
{
    Rng rng(GetParam() + 1000);
    Scenario s;
    buildRandomScenario(s, rng, 4, 15);

    s.eq.run();

    std::map<FluidResource *, double> expected;
    double total_size = 0.0;
    for (const auto &f : s.flows) {
        EXPECT_TRUE(f.completed);
        EXPECT_GE(f.completedAt, 0.0);
        total_size += f.size;
        for (const auto &d : f.demands)
            expected[d.resource] += d.weight * f.size;
    }
    EXPECT_GT(total_size, 0.0);
    // Work conservation: every resource served exactly the weighted
    // bytes of the flows that crossed it.
    for (const auto &[res, units] : expected)
        EXPECT_NEAR(res->totalServed(), units, 1e-6 * units)
            << res->name();
}

TEST_P(FluidProperty, CompletionTimesRespectCapacityBounds)
{
    Rng rng(GetParam() + 2000);
    Scenario s;
    buildRandomScenario(s, rng, 3, 10);
    s.eq.run();

    // Lower bound: no flow can finish faster than its size over its
    // best-case rate (min over resources of capacity/weight, and cap).
    for (const auto &f : s.flows) {
        double best_rate = f.rateCap > 0.0
            ? f.rateCap : std::numeric_limits<double>::infinity();
        for (const auto &d : f.demands)
            best_rate = std::min(best_rate,
                                 d.resource->capacity() / d.weight);
        EXPECT_GE(f.completedAt * (1.0 + 1e-9), f.size / best_rate);
    }
    // Upper bound: the whole workload fits within the time the most
    // loaded resource needs to serve everything (plus scheduling slack).
    double worst = 0.0;
    std::map<FluidResource *, double> load;
    for (const auto &f : s.flows)
        for (const auto &d : f.demands)
            load[d.resource] += d.weight * f.size;
    for (const auto &[res, units] : load)
        worst = std::max(worst, units / res->capacity());
    for (const auto &f : s.flows)
        EXPECT_LE(f.completedAt, 50.0 * worst + 100.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidProperty,
                         ::testing::Values(1, 7, 42, 99, 1234, 5678,
                                           31337, 271828));

} // namespace
} // namespace tb
