/**
 * @file
 * Tests for the fluid-flow contention engine — the analytical heart of
 * the simulator, so these check exact rate allocations and completion
 * times, not just plumbing.
 */

#include <gtest/gtest.h>

#include "fluid/fluid.hh"

namespace tb {
namespace {

struct FluidTest : public ::testing::Test
{
    EventQueue eq;
    FluidNetwork net{eq};
};

TEST_F(FluidTest, SingleFlowRunsAtCapacity)
{
    FluidResource *link = net.addResource("link", 100.0);
    double done_at = -1.0;
    FlowSpec spec;
    spec.category = "x";
    spec.size = 500.0;
    spec.demands = {{link, 1.0}};
    spec.onComplete = [&](Time t) { done_at = t; };
    net.startFlow(std::move(spec));
    eq.run();
    EXPECT_DOUBLE_EQ(done_at, 5.0);
    EXPECT_DOUBLE_EQ(link->totalServed(), 500.0);
}

TEST_F(FluidTest, TwoEqualFlowsShareFairly)
{
    FluidResource *link = net.addResource("link", 100.0);
    std::vector<double> done;
    for (int i = 0; i < 2; ++i) {
        FlowSpec spec;
        spec.category = "x";
        spec.size = 100.0;
        spec.demands = {{link, 1.0}};
        spec.onComplete = [&](Time t) { done.push_back(t); };
        net.startFlow(std::move(spec));
    }
    eq.run();
    // Both at 50 units/s -> both finish at t = 2.
    ASSERT_EQ(done.size(), 2u);
    EXPECT_DOUBLE_EQ(done[0], 2.0);
    EXPECT_DOUBLE_EQ(done[1], 2.0);
}

TEST_F(FluidTest, ShortFlowReleasesBandwidth)
{
    FluidResource *link = net.addResource("link", 100.0);
    double long_done = -1.0, short_done = -1.0;
    FlowSpec long_flow;
    long_flow.category = "long";
    long_flow.size = 150.0;
    long_flow.demands = {{link, 1.0}};
    long_flow.onComplete = [&](Time t) { long_done = t; };
    net.startFlow(std::move(long_flow));

    FlowSpec short_flow;
    short_flow.category = "short";
    short_flow.size = 50.0;
    short_flow.demands = {{link, 1.0}};
    short_flow.onComplete = [&](Time t) { short_done = t; };
    net.startFlow(std::move(short_flow));

    eq.run();
    // Shared at 50/s until the short one finishes at t=1 (50 each);
    // the long one then runs at 100/s for its remaining 100 -> t=2.
    EXPECT_DOUBLE_EQ(short_done, 1.0);
    EXPECT_DOUBLE_EQ(long_done, 2.0);
}

TEST_F(FluidTest, RateCapLimitsFlow)
{
    FluidResource *link = net.addResource("link", 100.0);
    double done = -1.0;
    FlowSpec spec;
    spec.category = "x";
    spec.size = 100.0;
    spec.rateCap = 20.0;
    spec.demands = {{link, 1.0}};
    spec.onComplete = [&](Time t) { done = t; };
    net.startFlow(std::move(spec));
    eq.run();
    EXPECT_DOUBLE_EQ(done, 5.0);
}

TEST_F(FluidTest, CappedFlowLeavesBandwidthToOthers)
{
    FluidResource *link = net.addResource("link", 100.0);
    double capped_done = -1.0, open_done = -1.0;
    FlowSpec capped;
    capped.category = "capped";
    capped.size = 100.0;
    capped.rateCap = 25.0;
    capped.demands = {{link, 1.0}};
    capped.onComplete = [&](Time t) { capped_done = t; };
    net.startFlow(std::move(capped));

    FlowSpec open;
    open.category = "open";
    open.size = 150.0;
    open.demands = {{link, 1.0}};
    open.onComplete = [&](Time t) { open_done = t; };
    net.startFlow(std::move(open));

    eq.run();
    // Capped runs at 25, open takes the remaining 75: open finishes at
    // t=2, capped at t=4.
    EXPECT_DOUBLE_EQ(open_done, 2.0);
    EXPECT_DOUBLE_EQ(capped_done, 4.0);
}

TEST_F(FluidTest, WeightedDemandConsumesProportionally)
{
    FluidResource *link = net.addResource("link", 100.0);
    double done = -1.0;
    FlowSpec spec;
    spec.category = "x";
    spec.size = 10.0; // base units (e.g., samples)
    spec.demands = {{link, 20.0}}; // 20 bytes per sample
    spec.onComplete = [&](Time t) { done = t; };
    net.startFlow(std::move(spec));
    eq.run();
    // 200 bytes at 100 B/s.
    EXPECT_DOUBLE_EQ(done, 2.0);
    EXPECT_DOUBLE_EQ(link->totalServed(), 200.0);
}

TEST_F(FluidTest, MultiResourceFlowLimitedByTightest)
{
    FluidResource *fast = net.addResource("fast", 1000.0);
    FluidResource *slow = net.addResource("slow", 10.0);
    double done = -1.0;
    FlowSpec spec;
    spec.category = "x";
    spec.size = 100.0;
    spec.demands = {{fast, 1.0}, {slow, 1.0}};
    spec.onComplete = [&](Time t) { done = t; };
    net.startFlow(std::move(spec));
    eq.run();
    EXPECT_DOUBLE_EQ(done, 10.0);
    EXPECT_DOUBLE_EQ(fast->totalServed(), 100.0);
    EXPECT_DOUBLE_EQ(slow->totalServed(), 100.0);
}

TEST_F(FluidTest, MaxMinFairnessAcrossTwoLinks)
{
    // Classic: flow A uses link1, flow B uses link2, flow C uses both.
    // link1 cap 100, link2 cap 50. Max-min: C and B split link2 at 25
    // each; A gets link1's remainder, 75.
    FluidResource *l1 = net.addResource("l1", 100.0);
    FluidResource *l2 = net.addResource("l2", 50.0);

    auto start = [&](std::vector<FlowDemand> demands) {
        FlowSpec spec;
        spec.category = "x";
        spec.size = 1e9; // effectively infinite
        spec.demands = std::move(demands);
        return net.startFlow(std::move(spec));
    };
    const FlowId a = start({{l1, 1.0}});
    const FlowId b = start({{l2, 1.0}});
    const FlowId c = start({{l1, 1.0}, {l2, 1.0}});

    EXPECT_DOUBLE_EQ(net.flowRate(b), 25.0);
    EXPECT_DOUBLE_EQ(net.flowRate(c), 25.0);
    EXPECT_DOUBLE_EQ(net.flowRate(a), 75.0);
}

TEST_F(FluidTest, FairWeightSplitsProportionally)
{
    FluidResource *link = net.addResource("link", 90.0);
    auto start = [&](double weight) {
        FlowSpec spec;
        spec.category = "x";
        spec.size = 1e9;
        spec.fairWeight = weight;
        spec.demands = {{link, 1.0}};
        return net.startFlow(std::move(spec));
    };
    const FlowId light = start(1.0);
    const FlowId heavy = start(2.0);
    EXPECT_DOUBLE_EQ(net.flowRate(light), 30.0);
    EXPECT_DOUBLE_EQ(net.flowRate(heavy), 60.0);
}

TEST_F(FluidTest, PerCategoryAccounting)
{
    FluidResource *link = net.addResource("link", 100.0);
    for (const char *cat : {"a", "b"}) {
        FlowSpec spec;
        spec.category = cat;
        spec.size = 100.0;
        spec.demands = {{link, 1.0}};
        net.startFlow(std::move(spec));
    }
    eq.run();
    EXPECT_DOUBLE_EQ(link->served("a"), 100.0);
    EXPECT_DOUBLE_EQ(link->served("b"), 100.0);
    EXPECT_DOUBLE_EQ(link->served("missing"), 0.0);
    EXPECT_DOUBLE_EQ(link->totalServed(), 200.0);
}

TEST_F(FluidTest, UtilizationWindow)
{
    FluidResource *link = net.addResource("link", 100.0);
    FlowSpec spec;
    spec.category = "x";
    spec.size = 100.0;
    spec.demands = {{link, 1.0}};
    net.startFlow(std::move(spec));
    eq.run();
    // Busy 1 s; idle until t=2.
    eq.schedule(2.0, [] {});
    eq.run();
    EXPECT_NEAR(link->utilization(eq.now()), 0.5, 1e-12);

    net.resetAccounting();
    EXPECT_DOUBLE_EQ(link->totalServed(), 0.0);
}

TEST_F(FluidTest, ZeroSizeFlowCompletesImmediately)
{
    FluidResource *link = net.addResource("link", 100.0);
    double done = -1.0;
    FlowSpec spec;
    spec.category = "x";
    spec.size = 0.0;
    spec.demands = {{link, 1.0}};
    spec.onComplete = [&](Time t) { done = t; };
    net.startFlow(std::move(spec));
    eq.run();
    EXPECT_DOUBLE_EQ(done, 0.0);
}

TEST_F(FluidTest, CancelSuppressesCompletion)
{
    FluidResource *link = net.addResource("link", 100.0);
    bool fired = false;
    FlowSpec spec;
    spec.category = "x";
    spec.size = 100.0;
    spec.demands = {{link, 1.0}};
    spec.onComplete = [&](Time) { fired = true; };
    const FlowId id = net.startFlow(std::move(spec));
    eq.schedule(0.5, [&] { net.cancelFlow(id); });
    eq.run();
    EXPECT_FALSE(fired);
    // Half the flow was served before cancellation.
    EXPECT_DOUBLE_EQ(link->totalServed(), 50.0);
}

TEST_F(FluidTest, FlowRemainingTracksProgress)
{
    FluidResource *link = net.addResource("link", 100.0);
    FlowSpec spec;
    spec.category = "x";
    spec.size = 100.0;
    spec.demands = {{link, 1.0}};
    const FlowId id = net.startFlow(std::move(spec));
    double remaining_at_half = -1.0;
    eq.schedule(0.5, [&] { remaining_at_half = net.flowRemaining(id); });
    eq.run();
    EXPECT_DOUBLE_EQ(remaining_at_half, 50.0);
    EXPECT_DOUBLE_EQ(net.flowRemaining(id), 0.0);
}

TEST_F(FluidTest, CapacityChangeTakesEffect)
{
    FluidResource *link = net.addResource("link", 100.0);
    double done = -1.0;
    FlowSpec spec;
    spec.category = "x";
    spec.size = 100.0;
    spec.demands = {{link, 1.0}};
    spec.onComplete = [&](Time t) { done = t; };
    net.startFlow(std::move(spec));
    eq.schedule(0.5, [&] {
        link->setCapacity(200.0); // double speed halfway through
        net.capacityChanged();
    });
    eq.run();
    // 50 served in 0.5 s, remaining 50 at 200/s -> 0.25 s more.
    EXPECT_DOUBLE_EQ(done, 0.75);
}

TEST_F(FluidTest, ZeroCapacityParksFlowUntilRestored)
{
    // Elastic detach drops a resource to zero capacity while a flow is
    // mid-transfer: the flow must park at rate 0 (no panic, no
    // spurious completion) and resume when capacity returns.
    FluidResource *link = net.addResource("link", 100.0);
    double done = -1.0;
    FlowSpec spec;
    spec.category = "x";
    spec.size = 100.0;
    spec.demands = {{link, 1.0}};
    spec.onComplete = [&](Time t) { done = t; };
    const FlowId id = net.startFlow(std::move(spec));

    eq.schedule(0.5, [&] {
        link->setCapacity(0.0);
        net.capacityChanged(link);
    });
    double remaining_while_parked = -1.0;
    eq.schedule(3.0, [&] {
        EXPECT_DOUBLE_EQ(net.flowRate(id), 0.0);
        remaining_while_parked = net.flowRemaining(id);
    });
    eq.schedule(4.0, [&] {
        link->setCapacity(100.0);
        net.capacityChanged(link);
    });
    eq.run();
    // 50 served by t=0.5, frozen through [0.5, 4.0], the remaining 50
    // at 100/s -> completes at t=4.5.
    EXPECT_DOUBLE_EQ(remaining_while_parked, 50.0);
    EXPECT_DOUBLE_EQ(done, 4.5);
    EXPECT_DOUBLE_EQ(link->totalServed(), 100.0);
}

TEST_F(FluidTest, ZeroCapacityNewFlowWaitsForCapacity)
{
    // A flow started against an already-parked resource stays pending
    // (rate 0) and completes once capacity appears.
    FluidResource *link = net.addResource("link", 100.0);
    link->setCapacity(0.0);
    net.capacityChanged(link);

    double done = -1.0;
    FlowSpec spec;
    spec.category = "x";
    spec.size = 50.0;
    spec.demands = {{link, 1.0}};
    spec.onComplete = [&](Time t) { done = t; };
    const FlowId id = net.startFlow(std::move(spec));
    EXPECT_DOUBLE_EQ(net.flowRate(id), 0.0);

    eq.schedule(2.0, [&] {
        link->setCapacity(50.0);
        net.capacityChanged(link);
    });
    eq.run();
    EXPECT_DOUBLE_EQ(done, 3.0);
}

TEST(FluidDeath, NegativeCapacityPanics)
{
    EventQueue eq;
    FluidNetwork net(eq);
    FluidResource *link = net.addResource("l", 1.0);
    EXPECT_DEATH(link->setCapacity(-1.0), "capacity");
}

TEST_F(FluidTest, ManyFlowsAggregateCapacity)
{
    FluidResource *link = net.addResource("link", 100.0);
    int completed = 0;
    for (int i = 0; i < 10; ++i) {
        FlowSpec spec;
        spec.category = "x";
        spec.size = 10.0;
        spec.demands = {{link, 1.0}};
        spec.onComplete = [&](Time) { ++completed; };
        net.startFlow(std::move(spec));
    }
    eq.run();
    EXPECT_EQ(completed, 10);
    EXPECT_DOUBLE_EQ(eq.now(), 1.0); // 100 units at 100/s total
}

TEST_F(FluidTest, FindResourceByName)
{
    FluidResource *link = net.addResource("pcie.rc", 1.0);
    EXPECT_EQ(net.findResource("pcie.rc"), link);
    EXPECT_EQ(net.findResource("nope"), nullptr);
}

TEST_F(FluidTest, DemandSetMergesDuplicates)
{
    FluidResource *a = net.addResource("a", 1.0);
    FluidResource *b = net.addResource("b", 1.0);
    DemandSet ds;
    ds.add(a, 1.0);
    ds.add(b, 2.0);
    ds.add(a, 3.0);
    ds.add({{b, 1.0}}, 2.0);
    const auto demands = ds.build();
    ASSERT_EQ(demands.size(), 2u);
    for (const auto &d : demands) {
        if (d.resource == a)
            EXPECT_DOUBLE_EQ(d.weight, 4.0);
        else
            EXPECT_DOUBLE_EQ(d.weight, 4.0);
    }
}

TEST_F(FluidTest, ChainedFlowsViaCompletions)
{
    // A three-stage chain driven by onComplete, as the training session
    // does: total time = sum of stage times.
    FluidResource *link = net.addResource("link", 100.0);
    double final_done = -1.0;
    std::function<void(int)> stage = [&](int idx) {
        FlowSpec spec;
        spec.category = "stage" + std::to_string(idx);
        spec.size = 100.0;
        spec.demands = {{link, 1.0}};
        spec.onComplete = [&, idx](Time t) {
            if (idx == 2)
                final_done = t;
            else
                stage(idx + 1);
        };
        net.startFlow(std::move(spec));
    };
    stage(0);
    eq.run();
    EXPECT_DOUBLE_EQ(final_done, 3.0);
}

TEST(FluidDeath, UnconstrainedFlowPanics)
{
    EventQueue eq;
    FluidNetwork net(eq);
    FlowSpec spec;
    spec.category = "bad";
    spec.size = 1.0;
    EXPECT_DEATH(net.startFlow(std::move(spec)), "neither demands");
}

TEST(FluidDeath, NegativeWeightPanics)
{
    EventQueue eq;
    FluidNetwork net(eq);
    FluidResource *link = net.addResource("l", 1.0);
    FlowSpec spec;
    spec.category = "bad";
    spec.size = 1.0;
    spec.demands = {{link, -1.0}};
    EXPECT_DEATH(net.startFlow(std::move(spec)), "weight");
}

} // namespace
} // namespace tb
