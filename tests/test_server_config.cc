/**
 * @file
 * ServerConfig::validate() rejects nonsensical configurations with a
 * message naming the offending field; buildServer() refuses to build
 * them (fatal). A default config of every preset must validate clean.
 */

#include <gtest/gtest.h>

#include "trainbox/server_builder.hh"
#include "trainbox/server_config.hh"

namespace tb {
namespace {

ServerConfig
valid()
{
    ServerConfig cfg;
    cfg.numAccelerators = 8;
    return cfg;
}

TEST(ServerConfigValidate, DefaultsAreValid)
{
    for (ArchPreset p : allPresets()) {
        ServerConfig cfg = valid();
        cfg.preset = p;
        EXPECT_EQ(cfg.validate(), "") << presetName(p);
    }
}

TEST(ServerConfigValidate, EnabledSubsystemsStillValid)
{
    ServerConfig cfg = valid();
    cfg.faults.enabled = true;
    cfg.checkpoint.enabled = true;
    EXPECT_EQ(cfg.validate(), "");
}

TEST(ServerConfigValidate, RejectsZeroAccelerators)
{
    ServerConfig cfg = valid();
    cfg.numAccelerators = 0;
    EXPECT_NE(cfg.validate().find("at least one"), std::string::npos);
}

TEST(ServerConfigValidate, RejectsBadPrepShape)
{
    ServerConfig cfg = valid();
    cfg.prefetchDepth = 1;
    EXPECT_NE(cfg.validate().find("prefetchDepth"), std::string::npos);

    cfg = valid();
    cfg.prepChunks = 0;
    EXPECT_NE(cfg.validate().find("prepChunks"), std::string::npos);

    cfg = valid();
    cfg.maxPrepParallelism = 0.0;
    EXPECT_NE(cfg.validate().find("maxPrepParallelism"),
              std::string::npos);
}

TEST(ServerConfigValidate, RejectsEmptyBoxes)
{
    const auto check = [](void (*mutate)(ServerConfig &),
                          const char *field) {
        ServerConfig cfg;
        cfg.numAccelerators = 8;
        mutate(cfg);
        EXPECT_NE(cfg.validate().find(field), std::string::npos)
            << field;
    };
    check([](ServerConfig &c) { c.box.accPerBox = 0; }, "accPerBox");
    check([](ServerConfig &c) { c.box.prepPerBox = 0; }, "prepPerBox");
    check([](ServerConfig &c) { c.box.ssdsPerBox = 0; }, "ssdsPerBox");
    check([](ServerConfig &c) { c.box.ssdsPerSsdBox = 0; },
          "ssdsPerSsdBox");
}

TEST(ServerConfigValidate, RejectsNonPositiveHostResources)
{
    ServerConfig cfg = valid();
    cfg.host.cpuCores = 0.0;
    EXPECT_NE(cfg.validate().find("cpuCores"), std::string::npos);

    cfg = valid();
    cfg.host.memBandwidth = -1.0;
    EXPECT_NE(cfg.validate().find("memBandwidth"), std::string::npos);

    cfg = valid();
    cfg.host.rcBandwidth = 0.0;
    EXPECT_NE(cfg.validate().find("rcBandwidth"), std::string::npos);
}

TEST(ServerConfigValidate, RejectsBadFaultProbabilities)
{
    ServerConfig cfg = valid();
    cfg.faults.ssdReadFailureProb = 1.0; // certain failure never ends
    EXPECT_NE(cfg.validate().find("ssdReadFailureProb"),
              std::string::npos);

    cfg = valid();
    cfg.faults.stragglerProb = 1.5;
    EXPECT_NE(cfg.validate().find("stragglerProb"), std::string::npos);

    cfg = valid();
    cfg.faults.stragglerFactor = 0.5; // a speedup is not a straggler
    EXPECT_NE(cfg.validate().find("stragglerFactor"),
              std::string::npos);
}

TEST(ServerConfigValidate, RejectsFaultWindowEndingBeforeStart)
{
    ServerConfig cfg = valid();
    cfg.faults.ssdDegrade.ratePerSec = 0.1;
    cfg.faults.ssdDegrade.duration = 0.0;
    const std::string err = cfg.validate();
    EXPECT_NE(err.find("ssdDegrade"), std::string::npos);
    EXPECT_NE(err.find("ends at or before it starts"),
              std::string::npos);

    cfg = valid();
    cfg.faults.prepCrash.ratePerSec = -0.1;
    EXPECT_NE(cfg.validate().find("prepCrash"), std::string::npos);

    cfg = valid();
    cfg.faults.ethDegrade.magnitude = -1.0;
    EXPECT_NE(cfg.validate().find("ethDegrade"), std::string::npos);

    cfg = valid();
    cfg.faults.fatalCrash.ratePerSec = -1.0;
    EXPECT_NE(cfg.validate().find("fatalCrash"), std::string::npos);
    // fatalCrash is a point event: no duration requirement.
    cfg = valid();
    cfg.faults.fatalCrash.ratePerSec = 0.1;
    cfg.faults.fatalCrash.duration = 0.0;
    EXPECT_EQ(cfg.validate(), "");
}

TEST(ServerConfigValidate, RejectsBadCheckpointScenario)
{
    ServerConfig cfg = valid();
    cfg.checkpoint.restartLatency = -1.0;
    EXPECT_NE(cfg.validate().find("restartLatency"), std::string::npos);

    // Checkpoint knobs are only checked once the subsystem is on...
    cfg = valid();
    cfg.checkpoint.interval = -5.0;
    EXPECT_EQ(cfg.validate(), "");
    cfg.checkpoint.enabled = true;
    EXPECT_NE(cfg.validate().find("interval"), std::string::npos);

    cfg = valid();
    cfg.checkpoint.enabled = true;
    cfg.checkpoint.optimizerSlots = -1.0;
    EXPECT_NE(cfg.validate().find("optimizerSlots"), std::string::npos);

    cfg = valid();
    cfg.checkpoint.enabled = true;
    cfg.checkpoint.snapshotBandwidth = 0.0;
    EXPECT_NE(cfg.validate().find("snapshotBandwidth"),
              std::string::npos);
}

TEST(ServerConfigValidate, RejectsBadElasticityKnobs)
{
    ServerConfig cfg = valid();
    cfg.elasticity.graceWindow = -1.0;
    EXPECT_NE(cfg.validate().find("elasticity.graceWindow"),
              std::string::npos);

    cfg = valid();
    cfg.elasticity.rejoinLatency = -0.5;
    EXPECT_NE(cfg.validate().find("elasticity.rejoinLatency"),
              std::string::npos);

    cfg = valid();
    cfg.elasticity.sloTargetSamplesPerSec = -100.0;
    EXPECT_NE(cfg.validate().find("sloTargetSamplesPerSec"),
              std::string::npos);

    cfg = valid();
    cfg.elasticity.groupDrain.ratePerSec = -0.1;
    EXPECT_NE(cfg.validate().find("elasticity.groupDrain.ratePerSec"),
              std::string::npos);

    cfg = valid();
    cfg.elasticity.prepPreempt.ratePerSec = 0.1;
    cfg.elasticity.prepPreempt.absence = -2.0;
    EXPECT_NE(cfg.validate().find("elasticity.prepPreempt.absence"),
              std::string::npos);
}

TEST(ServerConfigValidate, RejectsOverlargeDeferredJoin)
{
    ServerConfig cfg = valid();
    cfg.numAccelerators = 16; // two groups at accPerBox = 8
    cfg.elasticity.deferredJoinGroups = 2;
    const std::string err = cfg.validate();
    EXPECT_NE(err.find("deferredJoinGroups"), std::string::npos);
    EXPECT_NE(err.find("at least one"), std::string::npos);

    // One deferred group out of two is fine.
    cfg.elasticity.deferredJoinGroups = 1;
    EXPECT_EQ(cfg.validate(), "");
}

TEST(ServerConfigValidate, RejectsBadExplicitSchedule)
{
    ServerConfig cfg = valid();
    cfg.elasticity.schedule = {
        {ElasticTargetKind::Group, ElasticAction::Drain, 0, -1.0}};
    EXPECT_NE(cfg.validate().find("schedule[0].at"), std::string::npos);

    cfg = valid();
    cfg.elasticity.schedule = {
        {ElasticTargetKind::Group, ElasticAction::Drain, 0, 5.0},
        {ElasticTargetKind::Group, ElasticAction::Join, 0, 2.0}};
    EXPECT_NE(cfg.validate().find("ordered by time"), std::string::npos);

    cfg = valid();
    cfg.elasticity.schedule = {
        {ElasticTargetKind::Prep, ElasticAction::Preempt, 3, 1.0}};
    const std::string err = cfg.validate();
    EXPECT_NE(err.find("targets prep 3"), std::string::npos);
    EXPECT_NE(err.find("only 1 groups"), std::string::npos);

    // A well-formed schedule passes.
    cfg = valid();
    cfg.elasticity.schedule = {
        {ElasticTargetKind::Group, ElasticAction::Drain, 0, 1.0},
        {ElasticTargetKind::Group, ElasticAction::Join, 0, 8.0}};
    EXPECT_EQ(cfg.validate(), "");
}

TEST(ServerConfigValidate, IngestKnobsOnlyCheckedWhenEnabled)
{
    // Like checkpoint: a nonsense ingest block is ignored until the
    // subsystem is switched on.
    ServerConfig cfg = valid();
    cfg.ingest.bufferCapacity = 0.0;
    EXPECT_EQ(cfg.validate(), "");
    cfg.ingest.enabled = true;
    EXPECT_NE(cfg.validate().find("ingest.bufferCapacity"),
              std::string::npos);

    // A fully armed ingest scenario passes clean.
    cfg = valid();
    cfg.ingest.enabled = true;
    cfg.ingest.steady.ratePerSec = 1000.0;
    cfg.ingest.diurnal.ratePerSec = 500.0;
    cfg.ingest.burst.ratePerSec = 200.0;
    cfg.ingest.stalenessSlo = 0.1;
    cfg.ingest.writeFailureProb = 0.1;
    EXPECT_EQ(cfg.validate(), "");
}

TEST(ServerConfigValidate, RejectsBadIngestTrafficClasses)
{
    const auto armed = [] {
        ServerConfig cfg = valid();
        cfg.ingest.enabled = true;
        return cfg;
    };

    ServerConfig cfg = armed();
    cfg.ingest.steady.ratePerSec = -1.0;
    EXPECT_NE(cfg.validate().find("ingest.steady.ratePerSec must be "
                                  ">= 0"),
              std::string::npos);

    // Batch size only matters once the class is live.
    cfg = armed();
    cfg.ingest.burst.samplesPerEvent = 0.0;
    EXPECT_EQ(cfg.validate(), "");
    cfg.ingest.burst.ratePerSec = 100.0;
    EXPECT_NE(cfg.validate().find("ingest.burst.samplesPerEvent must "
                                  "be > 0"),
              std::string::npos);

    cfg = armed();
    cfg.ingest.diurnalAmplitude = 1.5;
    EXPECT_NE(cfg.validate().find("ingest.diurnalAmplitude"),
              std::string::npos);

    // The period only matters once the diurnal class is live.
    cfg = armed();
    cfg.ingest.diurnalPeriod = 0.0;
    EXPECT_EQ(cfg.validate(), "");
    cfg.ingest.diurnal.ratePerSec = 100.0;
    EXPECT_NE(cfg.validate().find("ingest.diurnalPeriod"),
              std::string::npos);
}

TEST(ServerConfigValidate, RejectsBadIngestWatermarks)
{
    ServerConfig cfg = valid();
    cfg.ingest.enabled = true;
    cfg.ingest.lowWatermark = -1.0;
    EXPECT_NE(cfg.validate().find("ingest.lowWatermark"),
              std::string::npos);

    cfg = valid();
    cfg.ingest.enabled = true;
    cfg.ingest.lowWatermark = 6144.0;
    cfg.ingest.highWatermark = 2048.0;
    const std::string err = cfg.validate();
    EXPECT_NE(err.find("ordered low < high <= capacity"),
              std::string::npos);
    EXPECT_NE(err.find("low 6144"), std::string::npos);

    cfg = valid();
    cfg.ingest.enabled = true;
    cfg.ingest.highWatermark = cfg.ingest.bufferCapacity + 1.0;
    EXPECT_NE(cfg.validate().find("ordered low < high <= capacity"),
              std::string::npos);
}

TEST(ServerConfigValidate, RejectsBadIngestPolicyChain)
{
    ServerConfig cfg = valid();
    cfg.ingest.enabled = true;
    cfg.ingest.policyChain.clear();
    EXPECT_NE(cfg.validate().find("at least one overload policy"),
              std::string::npos);

    cfg = valid();
    cfg.ingest.enabled = true;
    cfg.ingest.policyChain = {IngestPolicy::Throttle, IngestPolicy::Shed,
                              IngestPolicy::Throttle};
    const std::string err = cfg.validate();
    EXPECT_NE(err.find("lists throttle twice"), std::string::npos);
    EXPECT_NE(err.find("positions 0 and 2"), std::string::npos);

    cfg = valid();
    cfg.ingest.enabled = true;
    cfg.ingest.throttleFactor = 1.0; // admits everything: no throttle
    EXPECT_NE(cfg.validate().find("ingest.throttleFactor"),
              std::string::npos);

    cfg = valid();
    cfg.ingest.enabled = true;
    cfg.ingest.echoFactor = 0.5; // would consume MORE fresh samples
    EXPECT_NE(cfg.validate().find("ingest.echoFactor"),
              std::string::npos);

    cfg = valid();
    cfg.ingest.enabled = true;
    cfg.ingest.echoEfficiency = -0.1;
    EXPECT_NE(cfg.validate().find("ingest.echoEfficiency"),
              std::string::npos);
}

TEST(ServerConfigValidate, RejectsBadIngestWriteAndSloKnobs)
{
    ServerConfig cfg = valid();
    cfg.ingest.enabled = true;
    cfg.ingest.stalenessSlo = -0.5;
    EXPECT_NE(cfg.validate().find("ingest.stalenessSlo"),
              std::string::npos);

    cfg = valid();
    cfg.ingest.enabled = true;
    cfg.ingest.writeChunkSamples = 0.0;
    EXPECT_NE(cfg.validate().find("ingest.writeChunkSamples"),
              std::string::npos);

    cfg = valid();
    cfg.ingest.enabled = true;
    cfg.ingest.writeFailureProb = 1.0; // certain failure never lands
    EXPECT_NE(cfg.validate().find("ingest.writeFailureProb"),
              std::string::npos);

    cfg = valid();
    cfg.ingest.enabled = true;
    cfg.ingest.writeRetryBackoff = -1e-3;
    EXPECT_NE(cfg.validate().find("ingest.writeRetryBackoff"),
              std::string::npos);
}

TEST(ServerConfigValidate, RejectsBadIngestSchedule)
{
    ServerConfig cfg = valid();
    cfg.ingest.enabled = true;
    cfg.ingest.schedule = {{IngestTrafficKind::Burst, 64.0, 0, -1.0}};
    EXPECT_NE(cfg.validate().find("ingest.schedule[0].at"),
              std::string::npos);

    cfg = valid();
    cfg.ingest.enabled = true;
    cfg.ingest.schedule = {{IngestTrafficKind::Burst, 64.0, 0, 5.0},
                           {IngestTrafficKind::Burst, 64.0, 0, 2.0}};
    EXPECT_NE(cfg.validate().find("ordered by time"), std::string::npos);

    cfg = valid();
    cfg.ingest.enabled = true;
    cfg.ingest.schedule = {{IngestTrafficKind::Burst, -64.0, 0, 1.0}};
    EXPECT_NE(cfg.validate().find("ingest.schedule[0].samples"),
              std::string::npos);

    // A well-formed schedule passes.
    cfg = valid();
    cfg.ingest.enabled = true;
    cfg.ingest.schedule = {{IngestTrafficKind::Burst, 64.0, 0, 1.0},
                           {IngestTrafficKind::Steady, 32.0, 2, 4.0}};
    EXPECT_EQ(cfg.validate(), "");
}

TEST(ServerConfigValidate, BuilderRefusesInvalidConfig)
{
    ServerConfig cfg = valid();
    cfg.checkpoint.enabled = true;
    cfg.checkpoint.interval = 0.0;
    EXPECT_DEATH(buildServer(cfg), "invalid server config");
}

} // namespace
} // namespace tb
