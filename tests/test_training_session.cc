/**
 * @file
 * Integration tests for the training session: the paper's headline
 * behaviours must hold in simulation.
 */

#include <gtest/gtest.h>

#include "trainbox/report.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

namespace tb {
namespace {

double
runThroughput(ArchPreset preset, workload::ModelId model, std::size_t n,
              std::size_t warmup = 6, std::size_t measure = 12)
{
    ServerConfig cfg;
    cfg.preset = preset;
    cfg.model = model;
    cfg.numAccelerators = n;
    auto server = buildServer(cfg);
    TrainingSession session(*server);
    return session.run(warmup, measure).throughput;
}

TEST(Session, BaselineIsCpuBound)
{
    // 48 cores / 1.572 ms per sample = ~30.5k samples/s regardless of
    // accelerator count once saturated.
    const double thpt =
        runThroughput(ArchPreset::Baseline, workload::ModelId::Resnet50,
                      256);
    EXPECT_NEAR(thpt, 48.0 / 1.572e-3, 0.05 * (48.0 / 1.572e-3));
}

TEST(Session, BaselineAudioIsCpuBound)
{
    const double thpt = runThroughput(ArchPreset::Baseline,
                                      workload::ModelId::TfSr, 256);
    EXPECT_NEAR(thpt, 48.0 / 5.45e-3, 0.05 * (48.0 / 5.45e-3));
}

TEST(Session, SmallBaselineDeliversTarget)
{
    // One accelerator's demand is far below prep capacity.
    const double thpt = runThroughput(ArchPreset::Baseline,
                                      workload::ModelId::InceptionV4, 1);
    EXPECT_NEAR(thpt, 1669.0, 60.0);
}

TEST(Session, TrainBoxReachesTargetForInception)
{
    sync::SyncConfig sync_cfg;
    const double target = workload::targetThroughput(
        workload::model(workload::ModelId::InceptionV4), 256, sync_cfg);
    const double thpt = runThroughput(ArchPreset::TrainBox,
                                      workload::ModelId::InceptionV4, 256);
    EXPECT_NEAR(thpt, target, 0.02 * target);
}

TEST(Session, TrainBoxReachesTargetForAudioWithPool)
{
    sync::SyncConfig sync_cfg;
    const double target = workload::targetThroughput(
        workload::model(workload::ModelId::TfSr), 256, sync_cfg);
    const double thpt = runThroughput(ArchPreset::TrainBox,
                                      workload::ModelId::TfSr, 256);
    EXPECT_NEAR(thpt, target, 0.03 * target);
}

TEST(Session, PoolIsRequiredForAudioAtScale)
{
    // Fig 21b: without the prep-pool TF-SR is capped by in-box FPGAs at
    // 10.4k samples/s per box (vs a ~16k demand).
    const double with_pool = runThroughput(
        ArchPreset::TrainBox, workload::ModelId::TfSr, 256);
    const double without = runThroughput(
        ArchPreset::TrainBoxNoPool, workload::ModelId::TfSr, 256);
    EXPECT_LT(without, 0.72 * with_pool);
    EXPECT_GT(without, 0.55 * with_pool);
}

TEST(Session, P2pAloneDoesNotHelp)
{
    // Fig 19: B+Acc+P2P ~ B+Acc (the RC is still crossed twice).
    const double acc = runThroughput(ArchPreset::BaselineAccFpga,
                                     workload::ModelId::Resnet50, 256);
    const double p2p = runThroughput(ArchPreset::BaselineAccP2p,
                                     workload::ModelId::Resnet50, 256);
    EXPECT_NEAR(p2p / acc, 1.0, 0.1);
}

TEST(Session, Gen4DoublesPcieBoundThroughput)
{
    const double p2p = runThroughput(ArchPreset::BaselineAccP2p,
                                     workload::ModelId::Resnet50, 256);
    const double gen4 = runThroughput(ArchPreset::BaselineAccP2pGen4,
                                      workload::ModelId::Resnet50, 256);
    EXPECT_NEAR(gen4 / p2p, 2.0, 0.15);
}

TEST(Session, ClusteringBeatsGen4)
{
    // Fig 19: "TrainBox without Gen4 shows even higher improvement" —
    // the bottleneck is the datapath, not the link speed.
    const double gen4 = runThroughput(ArchPreset::BaselineAccP2pGen4,
                                      workload::ModelId::Resnet50, 256);
    const double trainbox = runThroughput(
        ArchPreset::TrainBox, workload::ModelId::Resnet50, 256);
    EXPECT_GT(trainbox, 2.0 * gen4);
}

TEST(Session, GpuPrepLosesToFpgaPrep)
{
    const double gpu = runThroughput(ArchPreset::BaselineAccGpu,
                                     workload::ModelId::InceptionV4, 64);
    const double fpga = runThroughput(ArchPreset::BaselineAccFpga,
                                      workload::ModelId::InceptionV4, 64);
    EXPECT_LT(gpu, fpga);
}

TEST(Session, TrainBoxScalesLinearly)
{
    double prev = 0.0;
    for (std::size_t n : {8u, 32u, 128u}) {
        const double thpt = runThroughput(
            ArchPreset::TrainBox, workload::ModelId::InceptionV4, n, 4, 8);
        EXPECT_GT(thpt, prev * 3.5); // ~4x per step
        prev = thpt;
    }
}

TEST(Session, ResultFieldsConsistent)
{
    ServerConfig cfg;
    cfg.preset = ArchPreset::Baseline;
    cfg.model = workload::ModelId::Resnet50;
    cfg.numAccelerators = 16;
    auto server = buildServer(cfg);
    TrainingSession session(*server);
    const SessionResult res = session.run(4, 8);

    EXPECT_EQ(res.stepsMeasured, 8u);
    EXPECT_GT(res.throughput, 0.0);
    EXPECT_GT(res.stepTime, 0.0);
    EXPECT_NEAR(res.throughput,
                16.0 * 8192.0 / res.stepTime, 1.0);
    EXPECT_DOUBLE_EQ(res.computeTime, server->computeTime());
    EXPECT_DOUBLE_EQ(res.syncTime, server->syncTime());
    EXPECT_GT(res.prepLatency, 0.0);

    // Baseline prep must report the CPU stage times.
    EXPECT_TRUE(res.prepStageTime.count("formatting"));
    EXPECT_TRUE(res.prepStageTime.count("augmentation"));
    EXPECT_TRUE(res.prepStageTime.count("ssd_read"));
    EXPECT_TRUE(res.prepStageTime.count("data_load"));

    // Accounting sanity: can't use more CPU than exists.
    const double cpu =
        SessionReport::sumCategories(res.cpuCoresByCategory);
    EXPECT_LE(cpu, 48.0 * 1.0001);
    EXPECT_GT(cpu, 0.0);
    EXPECT_GT(SessionReport::sumCategories(res.memBwByCategory), 0.0);
    EXPECT_GT(SessionReport::sumCategories(res.rcBwByCategory), 0.0);
}

TEST(Session, TrainBoxFreesHostResources)
{
    auto run = [](ArchPreset p) {
        ServerConfig cfg;
        cfg.preset = p;
        cfg.model = workload::ModelId::Resnet50;
        cfg.numAccelerators = 64;
        auto server = buildServer(cfg);
        TrainingSession session(*server);
        return session.run(4, 8);
    };
    const SessionResult base = run(ArchPreset::Baseline);
    const SessionResult tbox = run(ArchPreset::TrainBox);
    // Per unit of throughput, TrainBox uses orders of magnitude less of
    // every host resource (Fig 22).
    const auto sum = SessionReport::sumCategories;
    EXPECT_LT(sum(tbox.cpuCoresByCategory) / tbox.throughput,
              0.02 * sum(base.cpuCoresByCategory) / base.throughput);
    EXPECT_LT(sum(tbox.memBwByCategory),
              0.01 * sum(base.memBwByCategory));
    EXPECT_LT(sum(tbox.rcBwByCategory), 0.01 * sum(base.rcBwByCategory));
}

TEST(Session, P2pFreesHostMemory)
{
    auto run = [](ArchPreset p) {
        ServerConfig cfg;
        cfg.preset = p;
        cfg.model = workload::ModelId::Resnet50;
        cfg.numAccelerators = 64;
        auto server = buildServer(cfg);
        TrainingSession session(*server);
        return session.run(4, 8);
    };
    const SessionResult acc = run(ArchPreset::BaselineAccFpga);
    const SessionResult p2p = run(ArchPreset::BaselineAccP2p);
    EXPECT_LT(SessionReport::sumCategories(p2p.memBwByCategory),
              0.01 * SessionReport::sumCategories(acc.memBwByCategory));
}

TEST(Session, ChunkingDoesNotChangeSteadyThroughput)
{
    // Ablation: sub-batch pipelining granularity must not change the
    // capacity-bound result.
    double results[2];
    int i = 0;
    for (std::size_t chunks : {1u, 4u}) {
        ServerConfig cfg;
        cfg.preset = ArchPreset::TrainBox;
        cfg.model = workload::ModelId::Resnet50;
        cfg.numAccelerators = 32;
        cfg.prepChunks = chunks;
        auto server = buildServer(cfg);
        TrainingSession session(*server);
        results[i++] = session.run(4, 8).throughput;
    }
    EXPECT_NEAR(results[0], results[1], 0.02 * results[0]);
}

TEST(Session, BatchSizeSweepFavorsTrainBox)
{
    // Fig 20: at 256 accelerators TrainBox wins at small and large
    // batches, and the gap widens with batch size.
    auto run = [](ArchPreset p, std::size_t batch) {
        ServerConfig cfg;
        cfg.preset = p;
        cfg.model = workload::ModelId::Resnet50;
        cfg.numAccelerators = 256;
        cfg.batchSize = batch;
        auto server = buildServer(cfg);
        TrainingSession session(*server);
        return session.run(4, 8).throughput;
    };
    const double gap_small = run(ArchPreset::TrainBox, 128) /
                             run(ArchPreset::Baseline, 128);
    const double gap_large = run(ArchPreset::TrainBox, 8192) /
                             run(ArchPreset::Baseline, 8192);
    EXPECT_GT(gap_small, 1.5);
    EXPECT_GT(gap_large, gap_small);
}

} // namespace
} // namespace tb
