/**
 * @file
 * Tests for STFT, Mel filterbank, SpecAugment masking, normalization,
 * and the waveform generator.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "prep/audio/audio_ops.hh"
#include "prep/audio/mel.hh"
#include "prep/audio/stft.hh"
#include "prep/audio/wave_gen.hh"
#include "prep/pipeline.hh"

namespace tb {
namespace audio {
namespace {

TEST(Stft, FrameCountFormula)
{
    StftConfig cfg;
    EXPECT_EQ(numFrames(0, cfg), 0u);
    EXPECT_EQ(numFrames(cfg.windowSize - 1, cfg), 0u);
    EXPECT_EQ(numFrames(cfg.windowSize, cfg), 1u);
    EXPECT_EQ(numFrames(cfg.windowSize + cfg.hopSize, cfg), 2u);
    // LibriSpeech mean: 6.96 s at 16 kHz -> ~694 frames.
    EXPECT_EQ(numFrames(static_cast<std::size_t>(6.96 * 16000), cfg),
              694u);
}

TEST(Stft, HannWindowProperties)
{
    const auto w = hannWindow(400);
    EXPECT_NEAR(w.front(), 0.0, 1e-12);
    EXPECT_NEAR(w.back(), 0.0, 1e-12);
    EXPECT_NEAR(w[200], 1.0, 1e-4); // midpoint
    for (std::size_t i = 0; i < w.size() / 2; ++i)
        ASSERT_NEAR(w[i], w[w.size() - 1 - i], 1e-12); // symmetric
}

TEST(Stft, PureTonePeaksAtItsBin)
{
    StftConfig cfg;
    const double sr = 16000.0;
    const double freq = 1000.0;
    std::vector<double> signal(8000);
    for (std::size_t t = 0; t < signal.size(); ++t)
        signal[t] = std::sin(2.0 * M_PI * freq * t / sr);

    const Spectrogram spec = stft(signal, cfg);
    ASSERT_GT(spec.frames, 0u);
    EXPECT_EQ(spec.bins, cfg.fftSize / 2 + 1);

    const std::size_t expected_bin = static_cast<std::size_t>(
        std::lround(freq * cfg.fftSize / sr));
    for (std::size_t f = 0; f < spec.frames; ++f) {
        std::size_t best = 0;
        for (std::size_t b = 1; b < spec.bins; ++b)
            if (spec.at(f, b) > spec.at(f, best))
                best = b;
        ASSERT_NEAR(static_cast<double>(best),
                    static_cast<double>(expected_bin), 1.0);
    }
}

TEST(Stft, SilenceIsZero)
{
    const std::vector<double> silence(4000, 0.0);
    const Spectrogram spec = stft(silence);
    for (double p : spec.power)
        EXPECT_DOUBLE_EQ(p, 0.0);
}

TEST(Mel, HzMelRoundTrip)
{
    for (double hz : {0.0, 100.0, 440.0, 1000.0, 4000.0, 8000.0})
        EXPECT_NEAR(melToHz(hzToMel(hz)), hz, 1e-6);
    // Mel scale is monotone and compressive at high frequencies.
    EXPECT_LT(hzToMel(8000.0) - hzToMel(7000.0),
              hzToMel(2000.0) - hzToMel(1000.0));
}

TEST(Mel, FilterbankCoversSpectrum)
{
    MelConfig mel;
    const std::size_t bins = 257;
    const auto fb = melFilterbank(mel, bins, 512);
    ASSERT_EQ(fb.size(), mel.numMels * bins);
    // Every filter has nonzero area; weights are in [0, 1].
    for (std::size_t m = 0; m < mel.numMels; ++m) {
        double area = 0.0;
        for (std::size_t b = 0; b < bins; ++b) {
            const double w = fb[m * bins + b];
            ASSERT_GE(w, 0.0);
            ASSERT_LE(w, 1.0);
            area += w;
        }
        EXPECT_GT(area, 0.0) << "mel band " << m;
    }
}

TEST(Mel, ToneLandsInTheRightBand)
{
    // A 1 kHz tone's energy must concentrate near the band whose center
    // is 1 kHz.
    StftConfig scfg;
    MelConfig mcfg;
    std::vector<double> signal(8000);
    for (std::size_t t = 0; t < signal.size(); ++t)
        signal[t] = std::sin(2.0 * M_PI * 1000.0 * t / 16000.0);
    const Spectrogram mel_out =
        logMel(stft(signal, scfg), mcfg, scfg.fftSize);
    ASSERT_GT(mel_out.frames, 0u);
    EXPECT_EQ(mel_out.bins, mcfg.numMels);

    std::size_t best = 0;
    for (std::size_t b = 1; b < mel_out.bins; ++b)
        if (mel_out.at(0, b) > mel_out.at(0, best))
            best = b;
    // Band centers are mel-spaced between 0 and 8 kHz: 1 kHz sits near
    // mel(1000)/mel(8000) of the range.
    const double frac = hzToMel(1000.0) / hzToMel(8000.0);
    EXPECT_NEAR(static_cast<double>(best),
                frac * static_cast<double>(mcfg.numMels), 6.0);
}

TEST(AudioOps, TimeMaskZeroesWholeFrames)
{
    Spectrogram s;
    s.frames = 100;
    s.bins = 20;
    s.power.assign(s.frames * s.bins, 1.0);
    MaskConfig cfg;
    cfg.numTimeMasks = 1;
    cfg.maxTimeMaskFrames = 30;
    cfg.numFreqMasks = 0;
    Rng rng(3);
    applyMasks(s, cfg, rng);

    // Each frame is either fully 1 or fully 0.
    std::size_t masked = 0;
    for (std::size_t f = 0; f < s.frames; ++f) {
        const double v = s.at(f, 0);
        for (std::size_t b = 1; b < s.bins; ++b)
            ASSERT_DOUBLE_EQ(s.at(f, b), v);
        if (v == 0.0)
            ++masked;
    }
    EXPECT_LE(masked, 30u);
}

TEST(AudioOps, FreqMaskZeroesWholeBands)
{
    Spectrogram s;
    s.frames = 50;
    s.bins = 40;
    s.power.assign(s.frames * s.bins, 2.0);
    MaskConfig cfg;
    cfg.numTimeMasks = 0;
    cfg.numFreqMasks = 1;
    cfg.maxFreqMaskBins = 10;
    Rng rng(5);
    applyMasks(s, cfg, rng);

    std::size_t masked = 0;
    for (std::size_t b = 0; b < s.bins; ++b) {
        const double v = s.at(0, b);
        for (std::size_t f = 1; f < s.frames; ++f)
            ASSERT_DOUBLE_EQ(s.at(f, b), v);
        if (v == 0.0)
            ++masked;
    }
    EXPECT_LE(masked, 10u);
}

TEST(AudioOps, NormalizeGivesZeroMeanUnitVariance)
{
    Rng rng(7);
    Spectrogram s;
    s.frames = 200;
    s.bins = 16;
    s.power.resize(s.frames * s.bins);
    for (auto &v : s.power)
        v = rng.gaussian(5.0, 3.0);
    normalize(s);
    const auto means = columnMeans(s);
    const auto sds = columnStddevs(s);
    for (std::size_t b = 0; b < s.bins; ++b) {
        EXPECT_NEAR(means[b], 0.0, 1e-9);
        EXPECT_NEAR(sds[b], 1.0, 1e-9);
    }
}

TEST(AudioOps, NormalizeHandlesConstantColumns)
{
    Spectrogram s;
    s.frames = 10;
    s.bins = 2;
    s.power.assign(20, 4.0);
    normalize(s); // must not divide by zero
    for (double v : s.power)
        EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(AudioOps, AddNoiseChangesSignal)
{
    Rng rng(9);
    std::vector<double> signal(1000, 0.0);
    addNoise(signal, 0.1, rng);
    double energy = 0.0;
    for (double s : signal)
        energy += s * s;
    EXPECT_NEAR(energy / 1000.0, 0.01, 0.002);
}

TEST(WaveGen, ProducesBoundedSignalOfRightLength)
{
    Rng rng(11);
    WaveGenConfig cfg;
    const auto wave = generateUtterance(cfg, rng);
    EXPECT_EQ(wave.size(),
              static_cast<std::size_t>(cfg.sampleRate * cfg.durationSec));
    double energy = 0.0;
    for (double s : wave) {
        ASSERT_GE(s, -1.0);
        ASSERT_LE(s, 1.0);
        energy += s * s;
    }
    EXPECT_GT(energy / static_cast<double>(wave.size()), 1e-4);
}

TEST(WaveGen, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    WaveGenConfig cfg;
    cfg.durationSec = 0.5;
    const auto wa = generateUtterance(cfg, a);
    const auto wb = generateUtterance(cfg, b);
    EXPECT_NE(wa, wb);
}

TEST(AudioPipeline, EndToEndShape)
{
    Rng rng(13);
    WaveGenConfig wcfg;
    const auto wave = generateUtterance(wcfg, rng);
    prep::AudioPrepPipeline pipe;
    const prep::PreparedAudio out = pipe.prepare(wave, rng);
    ASSERT_TRUE(out.ok);
    EXPECT_EQ(out.features.frames, 694u);
    EXPECT_EQ(out.features.bins, 80u);
}

TEST(AudioPipeline, TooShortSignalFails)
{
    prep::AudioPrepPipeline pipe;
    Rng rng(15);
    const prep::PreparedAudio out =
        pipe.prepare(std::vector<double>(10, 0.0), rng);
    EXPECT_FALSE(out.ok);
}

} // namespace
} // namespace audio
} // namespace tb
