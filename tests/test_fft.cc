/**
 * @file
 * Tests for the FFT against the naive-DFT oracle and analytic identities.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "prep/audio/fft.hh"

namespace tb {
namespace audio {
namespace {

class FftSize : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(FftSize, MatchesNaiveDft)
{
    const std::size_t n = GetParam();
    Rng rng(n);
    std::vector<Complex> data(n);
    for (auto &c : data)
        c = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};

    const std::vector<Complex> expected = dftReference(data);
    std::vector<Complex> actual = data;
    fft(actual);

    for (std::size_t k = 0; k < n; ++k) {
        ASSERT_NEAR(actual[k].real(), expected[k].real(), 1e-8 * n);
        ASSERT_NEAR(actual[k].imag(), expected[k].imag(), 1e-8 * n);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSize,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 512));

TEST(Fft, InverseRoundTrip)
{
    Rng rng(7);
    std::vector<Complex> data(256);
    for (auto &c : data)
        c = {rng.gaussian(), rng.gaussian()};
    std::vector<Complex> copy = data;
    fft(copy);
    ifft(copy);
    for (std::size_t i = 0; i < data.size(); ++i) {
        ASSERT_NEAR(copy[i].real(), data[i].real(), 1e-10);
        ASSERT_NEAR(copy[i].imag(), data[i].imag(), 1e-10);
    }
}

TEST(Fft, ParsevalHolds)
{
    Rng rng(11);
    const std::size_t n = 512;
    std::vector<Complex> data(n);
    double time_energy = 0.0;
    for (auto &c : data) {
        c = {rng.gaussian(), 0.0};
        time_energy += std::norm(c);
    }
    fft(data);
    double freq_energy = 0.0;
    for (const auto &c : data)
        freq_energy += std::norm(c);
    EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
                1e-8 * time_energy);
}

TEST(Fft, ImpulseIsFlat)
{
    std::vector<Complex> data(64, Complex(0.0, 0.0));
    data[0] = Complex(1.0, 0.0);
    fft(data);
    for (const auto &c : data) {
        EXPECT_NEAR(c.real(), 1.0, 1e-12);
        EXPECT_NEAR(c.imag(), 0.0, 1e-12);
    }
}

TEST(Fft, PureToneHitsOneBin)
{
    const std::size_t n = 128;
    const std::size_t k0 = 5;
    std::vector<Complex> data(n);
    for (std::size_t t = 0; t < n; ++t)
        data[t] = Complex(
            std::cos(2.0 * M_PI * static_cast<double>(k0 * t) /
                     static_cast<double>(n)),
            0.0);
    fft(data);
    for (std::size_t k = 0; k < n; ++k) {
        const double mag = std::abs(data[k]);
        if (k == k0 || k == n - k0)
            EXPECT_NEAR(mag, static_cast<double>(n) / 2.0, 1e-9);
        else
            EXPECT_NEAR(mag, 0.0, 1e-9);
    }
}

TEST(Fft, RealFftZeroPadsToPow2)
{
    std::vector<double> signal(300, 1.0);
    const auto spec = rfft(signal);
    EXPECT_EQ(spec.size(), 512u);
    // DC bin holds the sum.
    EXPECT_NEAR(spec[0].real(), 300.0, 1e-9);
}

TEST(Fft, RealInputHasConjugateSymmetry)
{
    Rng rng(13);
    std::vector<double> signal(256);
    for (auto &s : signal)
        s = rng.gaussian();
    const auto spec = rfft(signal);
    const std::size_t n = spec.size();
    for (std::size_t k = 1; k < n / 2; ++k) {
        ASSERT_NEAR(spec[k].real(), spec[n - k].real(), 1e-9);
        ASSERT_NEAR(spec[k].imag(), -spec[n - k].imag(), 1e-9);
    }
}

TEST(FftDeath, NonPow2IsFatal)
{
    std::vector<Complex> data(100);
    EXPECT_DEATH(fft(data), "power of two");
}

} // namespace
} // namespace audio
} // namespace tb
