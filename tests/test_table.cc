/**
 * @file
 * Tests for the table formatter.
 */

#include <gtest/gtest.h>

#include "common/table.hh"

namespace tb {
namespace {

TEST(Table, CellsRoundTrip)
{
    Table t({"a", "b", "c"});
    t.row().add("x").add(1.5, 2).add(static_cast<long long>(7));
    t.row().add("y").add(2.25, 1).add(static_cast<long long>(-3));
    EXPECT_EQ(t.numRows(), 2u);
    EXPECT_EQ(t.cell(0, 0), "x");
    EXPECT_EQ(t.cell(0, 1), "1.50");
    EXPECT_EQ(t.cell(0, 2), "7");
    EXPECT_EQ(t.cell(1, 1), "2.2");
    EXPECT_EQ(t.cell(1, 2), "-3");
}

TEST(Table, FormatDouble)
{
    EXPECT_EQ(formatDouble(3.14159, 2), "3.14");
    EXPECT_EQ(formatDouble(3.0, 0), "3");
    EXPECT_EQ(formatDouble(-0.5, 1), "-0.5");
}

TEST(Table, PrintsAlignedOutput)
{
    Table t({"name", "value"});
    t.row().add("alpha").add(static_cast<long long>(1));
    char buf[256] = {0};
    std::FILE *mem = fmemopen(buf, sizeof(buf), "w");
    t.print(mem);
    std::fclose(mem);
    const std::string out(buf);
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, PrintsCsv)
{
    Table t({"a", "b"});
    t.row().add("1").add("2");
    char buf[128] = {0};
    std::FILE *mem = fmemopen(buf, sizeof(buf), "w");
    t.printCsv(mem);
    std::fclose(mem);
    EXPECT_EQ(std::string(buf), "a,b\n1,2\n");
}

} // namespace
} // namespace tb
