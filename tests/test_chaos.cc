/**
 * @file
 * Chaos harness: randomized, seeded schedules mixing faults, silent
 * corruption, checkpoints, and elasticity events, checked against the
 * global invariants the subsystems promise *in combination*:
 *
 *  - sample conservation: prepared == consumed + cachedAtEnd +
 *    discarded (the session also panic-checks this internally);
 *  - corruption accounting: injected == detected + escaped;
 *  - liveness: every run completes all measured steps, even through
 *    windows of zero attached capacity (park, don't deadlock);
 *  - determinism: identical configs replay identical histories;
 *  - with every knob off, throughput is bit-identical to the goldens
 *    pinned before any robustness subsystem existed.
 *
 * bench/elastic_sweep.cc reuses the same invariants in its --smoke
 * mode; docs/ROBUSTNESS.md documents the membership state machine.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/elastic_schedule.hh"
#include "trainbox/report.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"
#include "workload/model_zoo.hh"

namespace tb {
namespace {

SessionResult
runSession(const ServerConfig &cfg, std::size_t warmup = 3,
           std::size_t measure = 6)
{
    const std::string problem = cfg.validate();
    EXPECT_EQ(problem, "");
    auto server = buildServer(cfg);
    TrainingSession session(*server);
    return session.run(warmup, measure);
}

/** Two-group scenario small enough for dozens of runs. */
ServerConfig
chaosConfig()
{
    ServerConfig cfg;
    cfg.preset = ArchPreset::TrainBox;
    cfg.model = workload::ModelId::Resnet50;
    cfg.numAccelerators = 16; // two groups at accPerBox = 8
    cfg.prepPoolFpgas = 4;
    return cfg;
}

/** splitmix64: the same generator the injection streams build on. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Uniform [0, 1) draw from a seed and stream index. */
double
u01(std::uint64_t seed, std::uint64_t stream)
{
    return static_cast<double>(mix64(seed * 1315423911ull + stream) >>
                               11) /
           9007199254740992.0;
}

/**
 * One randomized chaos scenario: every robustness subsystem armed with
 * seed-derived knobs, so the sweep covers fault-only, elastic-only,
 * and everything-at-once corners as the seed varies.
 */
ServerConfig
chaosScenario(std::uint64_t seed)
{
    ServerConfig cfg = chaosConfig();

    cfg.faults.enabled = u01(seed, 0) < 0.75;
    cfg.faults.seed = seed;
    if (cfg.faults.enabled) {
        cfg.faults.ssdReadFailureProb = 0.02 * u01(seed, 1);
        cfg.faults.stragglerProb = 0.1 * u01(seed, 2);
        cfg.faults.prepCrash.ratePerSec = 0.05 * u01(seed, 3);
        cfg.faults.prepCrash.duration = 0.5 + u01(seed, 4);
        cfg.faults.ssdDegrade.ratePerSec = 0.05 * u01(seed, 5);
        cfg.faults.ssdDegrade.duration = 0.5 + u01(seed, 6);
        if (u01(seed, 7) < 0.3)
            cfg.faults.fatalCrash.ratePerSec = 0.01;
        const double corrupt = 0.01 * u01(seed, 8);
        cfg.faults.corruption.ssdBitFlipProb = corrupt;
        cfg.faults.corruption.fpgaUpsetProb = corrupt / 2.0;
        cfg.faults.integrityChecks = u01(seed, 9) < 0.5;
    }

    cfg.checkpoint.enabled = u01(seed, 10) < 0.5;
    if (cfg.checkpoint.enabled) {
        cfg.checkpoint.mode = u01(seed, 11) < 0.5 ? CheckpointMode::Sync
                                                  : CheckpointMode::Async;
        cfg.checkpoint.interval = 1.0 + 3.0 * u01(seed, 12);
    }

    cfg.elasticity.enabled = true;
    cfg.elasticity.seed = seed;
    cfg.elasticity.graceWindow = 0.2 + 0.8 * u01(seed, 13);
    cfg.elasticity.rejoinLatency = 0.1 + 0.4 * u01(seed, 14);
    cfg.elasticity.groupDrain.ratePerSec = 0.1 * u01(seed, 15);
    cfg.elasticity.groupDrain.absence = 0.5 + u01(seed, 16);
    cfg.elasticity.groupPreempt.ratePerSec = 0.1 * u01(seed, 17);
    cfg.elasticity.groupPreempt.absence = 0.5 + u01(seed, 18);
    cfg.elasticity.prepDrain.ratePerSec = 0.1 * u01(seed, 19);
    cfg.elasticity.prepDrain.absence = 0.5 + u01(seed, 20);
    cfg.elasticity.prepPreempt.ratePerSec = 0.1 * u01(seed, 21);
    cfg.elasticity.prepPreempt.absence = 0.5 + u01(seed, 22);
    if (u01(seed, 23) < 0.25) {
        cfg.elasticity.deferredJoinGroups = 1;
        cfg.elasticity.scaleUpTime = u01(seed, 24);
    }

    // Streaming ingest joins the mix on streams >= 25 (the earlier
    // streams are spoken for above; reusing one would correlate the
    // subsystems' knobs). Sustained rates stay below the ~58k
    // samples/s shard-write drain capacity at this scale, and the
    // randomized chains never end in Stall: a sustained-overload trace
    // that stalls training forever is a livelock by construction, not
    // a chaos finding (docs/ROBUSTNESS.md). The directed tests below
    // cover Stall with finite bursts.
    cfg.ingest.enabled = u01(seed, 25) < 0.5;
    cfg.ingest.seed = seed;
    if (cfg.ingest.enabled) {
        cfg.ingest.steady = {30000.0 * u01(seed, 26), 256.0, 2};
        cfg.ingest.diurnal = {15000.0 * u01(seed, 27), 128.0, 1};
        cfg.ingest.burst = {10000.0 * u01(seed, 28), 512.0, 0};
        cfg.ingest.diurnalAmplitude = u01(seed, 29);
        cfg.ingest.diurnalPeriod = 5.0 + 10.0 * u01(seed, 30);
        cfg.ingest.bufferCapacity = 4096.0 + 28672.0 * u01(seed, 31);
        cfg.ingest.highWatermark = 0.75 * cfg.ingest.bufferCapacity;
        cfg.ingest.lowWatermark = 0.25 * cfg.ingest.bufferCapacity;
        if (u01(seed, 32) < 0.5)
            cfg.ingest.policyChain = {IngestPolicy::Throttle,
                                      IngestPolicy::Shed,
                                      IngestPolicy::Echo};
        else
            cfg.ingest.policyChain = {IngestPolicy::Shed,
                                      IngestPolicy::Echo};
        cfg.ingest.echoFactor = 1.5 + u01(seed, 33);
        cfg.ingest.writeFailureProb = 0.2 * u01(seed, 34);
        cfg.ingest.stalenessSlo = u01(seed, 35) < 0.5 ? 0.1 : 0.0;
    }
    return cfg;
}

/** The invariant block every chaos run must satisfy. */
void
checkInvariants(const SessionResult &res, std::size_t measure,
                const char *what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(res.stepsMeasured, measure);
    EXPECT_TRUE(std::isfinite(res.throughput));
    EXPECT_GE(res.throughput, 0.0);
    EXPECT_GT(res.wallTime, 0.0);

    // Sample conservation (also panic-checked inside the session).
    const auto &e = res.elasticity;
    const double ledger_gap = e.samplesPrepared -
                              (e.samplesConsumed + e.samplesCachedAtEnd +
                               e.samplesDiscarded);
    EXPECT_LE(std::fabs(ledger_gap),
              1e-6 * std::max(1.0, e.samplesPrepared));
    EXPECT_GT(e.samplesPrepared, 0.0);
    EXPECT_GE(e.samplesConsumed, 0.0);
    EXPECT_GE(e.samplesCachedAtEnd, 0.0);
    EXPECT_GE(e.samplesDiscarded, 0.0);

    // Corruption accounting is exact.
    EXPECT_EQ(res.integrity.injected,
              res.integrity.detected + res.integrity.escaped);

    // Capacity clocks nest inside the wall clock.
    EXPECT_GE(e.degradedCapacityTime, 0.0);
    EXPECT_LE(e.degradedCapacityTime, res.wallTime * (1.0 + 1e-9));
    EXPECT_GE(e.zeroCapacityTime, 0.0);
    EXPECT_LE(e.zeroCapacityTime,
              e.degradedCapacityTime * (1.0 + 1e-9));
    EXPECT_GE(e.avgActiveFraction, 0.0);
    EXPECT_LE(e.avgActiveFraction, 1.0 + 1e-9);

    // Leave bookkeeping: every applied leave is a drain or preemption.
    EXPECT_GE(e.events, e.drains + e.preemptions + e.joins);
    EXPECT_GE(e.samplesLostToPreemption, 0.0);
    EXPECT_GE(e.samplesSavedByDrain, 0.0);
    EXPECT_GE(e.samplesDroppedAtDrain, 0.0);

    // Ingest conservation: arrived == admitted + shed + in-flight
    // (also panic-checked inside the session), and the shed side
    // decomposes exactly into its causes.
    const auto &in = res.ingest;
    const double ingest_gap =
        in.samplesArrived -
        (in.samplesAdmitted + in.samplesShed + in.samplesInFlightAtEnd);
    EXPECT_LE(std::fabs(ingest_gap),
              1e-6 * std::max(1.0, in.samplesArrived));
    EXPECT_NEAR(in.samplesShed,
                in.samplesThrottled + in.samplesShedPolicy +
                    in.samplesOverflowDropped + in.samplesAbandonedWrites,
                1e-6 * std::max(1.0, in.samplesShed));
    EXPECT_GE(in.samplesArrived, 0.0);
    EXPECT_GE(in.samplesAdmitted, 0.0);
    EXPECT_GE(in.samplesInFlightAtEnd, 0.0);
    EXPECT_GE(in.overloadTime, 0.0);
    EXPECT_LE(in.overloadTime, res.wallTime * (1.0 + 1e-9));
    // A stall only exists inside an overload window.
    EXPECT_GE(in.stallTime, 0.0);
    EXPECT_LE(in.stallTime, in.overloadTime * (1.0 + 1e-9));
}

// --- everything off => bit-identical goldens -------------------------

TEST(ChaosDisabled, PresetThroughputsBitIdentical)
{
    // The pinned pre-robustness goldens (ResNet-50, 32 accelerators,
    // run(4, 8), default config). With faults, checkpoints, corruption,
    // AND elasticity all disabled, no new resource, flow, or event may
    // perturb the simulation.
    const struct
    {
        ArchPreset preset;
        double throughput;
    } golden[] = {
        { ArchPreset::Baseline, 30412.537359822836 },
        { ArchPreset::BaselineAccFpga, 44099.421789334992 },
        { ArchPreset::BaselineAccP2p, 52726.559174010392 },
        { ArchPreset::BaselineAccP2pGen4, 105706.38456337905 },
        { ArchPreset::TrainBoxNoPool, 237516.29284407894 },
        { ArchPreset::TrainBox, 237516.29284407894 },
        { ArchPreset::BaselineAccGpu, 31966.593052101314 },
    };
    for (const auto &g : golden) {
        ServerConfig cfg;
        cfg.preset = g.preset;
        cfg.model = workload::ModelId::Resnet50;
        cfg.numAccelerators = 32;
        const SessionResult res = runSession(cfg, 4, 8);
        EXPECT_DOUBLE_EQ(res.throughput, g.throughput)
            << presetName(g.preset);
        EXPECT_EQ(res.elasticity.events, 0u) << presetName(g.preset);
        EXPECT_EQ(res.elasticity.joins, 0u) << presetName(g.preset);
        EXPECT_DOUBLE_EQ(res.elasticity.degradedCapacityTime, 0.0)
            << presetName(g.preset);
        EXPECT_DOUBLE_EQ(res.elasticity.avgActiveFraction, 1.0)
            << presetName(g.preset);
        // The ledger is live even with everything off.
        EXPECT_GT(res.elasticity.samplesPrepared, 0.0)
            << presetName(g.preset);
        EXPECT_DOUBLE_EQ(res.elasticity.samplesDiscarded, 0.0)
            << presetName(g.preset);
        // Disabled ingest is a true zero: no arrivals, no writes, no
        // overload accounting may exist on the golden path.
        EXPECT_EQ(res.ingest.arrivalEvents, 0u) << presetName(g.preset);
        EXPECT_EQ(res.ingest.writeFlows, 0u) << presetName(g.preset);
        EXPECT_DOUBLE_EQ(res.ingest.samplesArrived, 0.0)
            << presetName(g.preset);
        EXPECT_DOUBLE_EQ(res.ingest.overloadTime, 0.0)
            << presetName(g.preset);
    }
}

TEST(ChaosDisabled, EnabledButEventFreeMatchesBaseline)
{
    // elasticity.enabled switches throughput to the measured-samples
    // ledger; with no events that must agree with the closed form to
    // float rounding.
    ServerConfig cfg = chaosConfig();
    const SessionResult base = runSession(cfg, 4, 8);

    cfg.elasticity.enabled = true;
    const SessionResult elastic = runSession(cfg, 4, 8);
    EXPECT_EQ(elastic.elasticity.events, 0u);
    EXPECT_NEAR(elastic.throughput, base.throughput,
                1e-9 * base.throughput);
    EXPECT_DOUBLE_EQ(elastic.wallTime, base.wallTime);
}

// --- randomized chaos sweep ------------------------------------------

TEST(ChaosSweep, RandomizedSchedulesHoldInvariants)
{
    constexpr std::size_t kSchedules = 24;
    constexpr std::size_t kMeasure = 6;
    std::size_t elastic_events = 0;
    std::size_t fault_windows = 0;
    std::size_t ingest_arrivals = 0;
    std::size_t overload_trips = 0;
    for (std::uint64_t seed = 1; seed <= kSchedules; ++seed) {
        const ServerConfig cfg = chaosScenario(seed);
        const SessionResult res = runSession(cfg, 3, kMeasure);
        checkInvariants(res, kMeasure,
                        ("seed " + std::to_string(seed)).c_str());
        elastic_events += res.elasticity.events;
        fault_windows += res.faults.faultsInjected;
        ingest_arrivals += res.ingest.arrivalEvents;
        overload_trips += res.ingest.overloadTrips;

        // Determinism: replay a subset bit-exactly (each replay doubles
        // the cost of one schedule, so sample rather than replay all).
        if (seed % 6 == 0) {
            const SessionResult again = runSession(cfg, 3, kMeasure);
            EXPECT_DOUBLE_EQ(again.throughput, res.throughput);
            EXPECT_DOUBLE_EQ(again.wallTime, res.wallTime);
            EXPECT_EQ(again.elasticity.events, res.elasticity.events);
            EXPECT_EQ(again.elasticity.preemptions,
                      res.elasticity.preemptions);
            EXPECT_DOUBLE_EQ(again.elasticity.samplesPrepared,
                             res.elasticity.samplesPrepared);
            EXPECT_DOUBLE_EQ(again.elasticity.samplesDiscarded,
                             res.elasticity.samplesDiscarded);
            EXPECT_EQ(again.ingest.arrivalEvents,
                      res.ingest.arrivalEvents);
            EXPECT_DOUBLE_EQ(again.ingest.samplesArrived,
                             res.ingest.samplesArrived);
            EXPECT_DOUBLE_EQ(again.ingest.samplesShed,
                             res.ingest.samplesShed);
            EXPECT_DOUBLE_EQ(again.ingest.stalenessSum,
                             res.ingest.stalenessSum);
        }
    }
    // The sweep must actually exercise the machinery it claims to.
    EXPECT_GT(elastic_events, kSchedules);
    EXPECT_GT(fault_windows, 0u);
    EXPECT_GT(ingest_arrivals, 0u);
    EXPECT_GT(overload_trips, 0u);
}

// --- zero-capacity liveness ------------------------------------------

TEST(ChaosZeroCapacity, AllGroupsPreemptedParksAndResumes)
{
    // Preempt both groups almost immediately; rejoin them later. The
    // session must park at zero attached capacity (no deadlock, no
    // sync with zero members) and finish every step after the rejoin.
    ServerConfig cfg = chaosConfig();
    cfg.elasticity.enabled = true;
    cfg.elasticity.rejoinLatency = 0.1;
    cfg.elasticity.schedule = {
        {ElasticTargetKind::Group, ElasticAction::Preempt, 0, 0.002},
        {ElasticTargetKind::Group, ElasticAction::Preempt, 1, 0.003},
        {ElasticTargetKind::Group, ElasticAction::Join, 0, 0.5},
        {ElasticTargetKind::Group, ElasticAction::Join, 1, 0.6},
    };
    const SessionResult res = runSession(cfg, 3, 6);
    checkInvariants(res, 6, "zero-capacity");
    EXPECT_EQ(res.elasticity.preemptions, 2u);
    EXPECT_EQ(res.elasticity.joins, 2u);
    EXPECT_GT(res.elasticity.zeroCapacityTime, 0.0);
    EXPECT_GT(res.throughput, 0.0);
}

// --- drain vs preempt semantics --------------------------------------

TEST(ChaosSemantics, DrainsSaveSamplesPreemptionsLoseThem)
{
    ServerConfig drain_cfg = chaosConfig();
    drain_cfg.elasticity.enabled = true;
    drain_cfg.elasticity.graceWindow = 0.5;
    drain_cfg.elasticity.groupDrain.ratePerSec = 0.5;
    drain_cfg.elasticity.groupDrain.absence = 1.0;
    const SessionResult drained = runSession(drain_cfg, 3, 10);
    checkInvariants(drained, 10, "drain-only");
    ASSERT_GT(drained.elasticity.drains, 0u);
    EXPECT_EQ(drained.elasticity.samplesLostToPreemption, 0.0);

    ServerConfig preempt_cfg = chaosConfig();
    preempt_cfg.elasticity.enabled = true;
    preempt_cfg.elasticity.groupPreempt.ratePerSec = 0.5;
    preempt_cfg.elasticity.groupPreempt.absence = 1.0;
    const SessionResult preempted = runSession(preempt_cfg, 3, 10);
    checkInvariants(preempted, 10, "preempt-only");
    ASSERT_GT(preempted.elasticity.preemptions, 0u);
    EXPECT_EQ(preempted.elasticity.samplesSavedByDrain, 0.0);
    EXPECT_EQ(preempted.elasticity.samplesDroppedAtDrain, 0.0);
}

TEST(ChaosSemantics, DrainCoordinatesACheckpoint)
{
    // A drain notice requests an immediate capture even when the
    // periodic interval has not elapsed.
    ServerConfig cfg = chaosConfig();
    cfg.checkpoint.enabled = true;
    cfg.checkpoint.interval = 1e6; // periodic capture never fires
    cfg.elasticity.enabled = true;
    cfg.elasticity.graceWindow = 0.3;
    cfg.elasticity.schedule = {
        {ElasticTargetKind::Group, ElasticAction::Drain, 0, 0.01},
        {ElasticTargetKind::Group, ElasticAction::Join, 0, 1.0},
    };
    const SessionResult res = runSession(cfg, 3, 8);
    checkInvariants(res, 8, "drain-checkpoint");
    EXPECT_EQ(res.elasticity.drains, 1u);
    EXPECT_GT(res.checkpoint.committed, 0u);

    cfg.elasticity.schedule.clear();
    const SessionResult quiet = runSession(cfg, 3, 8);
    EXPECT_EQ(quiet.checkpoint.committed, 0u);
}

// --- mid-session scale-up --------------------------------------------

TEST(ChaosScaleUp, DeferredGroupJoinsAndLiftsThroughput)
{
    ServerConfig cfg = chaosConfig();
    cfg.elasticity.enabled = true;
    cfg.elasticity.rejoinLatency = 0.05;
    cfg.elasticity.deferredJoinGroups = 1;
    cfg.elasticity.scaleUpTime = 0.05;
    const SessionResult res = runSession(cfg, 3, 8);
    checkInvariants(res, 8, "scale-up");
    EXPECT_EQ(res.elasticity.joins, 1u);
    EXPECT_GT(res.elasticity.degradedCapacityTime, 0.0);
    EXPECT_LT(res.elasticity.avgActiveFraction, 1.0);

    // Starting at half capacity must not beat the full-capacity run.
    ServerConfig full = chaosConfig();
    const SessionResult base = runSession(full, 3, 8);
    EXPECT_LE(res.throughput, base.throughput * (1.0 + 1e-9));
}

// --- prep-FPGA elasticity --------------------------------------------

TEST(ChaosPrep, PrepLeavesRebalanceAndRecover)
{
    ServerConfig cfg = chaosConfig();
    cfg.elasticity.enabled = true;
    cfg.elasticity.graceWindow = 0.2;
    cfg.elasticity.prepDrain.ratePerSec = 0.4;
    cfg.elasticity.prepDrain.absence = 0.5;
    cfg.elasticity.prepPreempt.ratePerSec = 0.4;
    cfg.elasticity.prepPreempt.absence = 0.5;
    const SessionResult res = runSession(cfg, 3, 10);
    checkInvariants(res, 10, "prep-elastic");
    EXPECT_GT(res.elasticity.events, 0u);
    // Whole-group membership never changed.
    EXPECT_DOUBLE_EQ(res.elasticity.degradedCapacityTime, 0.0);
}

// --- ingest in the mix ------------------------------------------------

TEST(ChaosIngest, StallDuringDrainStaysLive)
{
    // The nastiest liveness corner: an overload burst escalates the
    // full chain up to Stall (training parked on backpressure) while a
    // group drain removes half the attached capacity. The shard-write
    // pump runs independently of training, so the buffer must drain,
    // the stall must lift, and every step must still complete.
    ServerConfig cfg = chaosConfig();
    cfg.ingest.enabled = true;
    cfg.ingest.policyChain = {IngestPolicy::Throttle, IngestPolicy::Shed,
                              IngestPolicy::Echo, IngestPolicy::Stall};
    cfg.ingest.bufferCapacity = 65536.0;
    cfg.ingest.highWatermark = 8192.0;
    cfg.ingest.lowWatermark = 4096.0;
    cfg.ingest.throttleFactor = 0.9;
    // A finite burst (4x capacity offered) at priority 3 so the Shed
    // stage passes it through and the level climbs into Stall range.
    for (int i = 0; i < 24; ++i)
        cfg.ingest.schedule.push_back(
            {IngestTrafficKind::Burst, 4096.0, 3, 1.0 + 2e-4 * i});
    cfg.elasticity.enabled = true;
    cfg.elasticity.graceWindow = 0.3;
    cfg.elasticity.schedule = {
        {ElasticTargetKind::Group, ElasticAction::Drain, 0, 1.0},
        {ElasticTargetKind::Group, ElasticAction::Join, 0, 4.0},
    };
    const SessionResult res = runSession(cfg, 3, 6);
    checkInvariants(res, 6, "stall-during-drain");
    EXPECT_GE(res.ingest.overloadTrips, 1u);
    EXPECT_GE(res.ingest.stalls, 1u);
    EXPECT_GT(res.ingest.stallTime, 0.0);
    EXPECT_EQ(res.elasticity.drains, 1u);
    EXPECT_EQ(res.elasticity.joins, 1u);
    EXPECT_GT(res.ingest.samplesAdmitted, 0.0);
    EXPECT_GT(res.throughput, 0.0);
}

TEST(ChaosIngest, OverloadBurstUnderFaultsAndElasticityIsDeterministic)
{
    // Everything at once: flaky shard writes, SSD faults, a fatal
    // crash rate, spot preemptions, AND a sustained overload feed. The
    // ledgers must hold and a replay must be bit-identical.
    ServerConfig cfg = chaosConfig();
    cfg.faults.enabled = true;
    cfg.faults.seed = 1234;
    cfg.faults.ssdReadFailureProb = 0.01;
    cfg.faults.ssdDegrade.ratePerSec = 0.05;
    cfg.faults.ssdDegrade.duration = 1.0;
    cfg.faults.fatalCrash.ratePerSec = 0.01;
    cfg.elasticity.enabled = true;
    cfg.elasticity.seed = 1234;
    cfg.elasticity.groupPreempt.ratePerSec = 0.1;
    cfg.elasticity.groupPreempt.absence = 1.0;
    cfg.ingest.enabled = true;
    cfg.ingest.seed = 1234;
    cfg.ingest.steady = {40000.0, 256.0, 2};
    cfg.ingest.burst = {20000.0, 512.0, 0};
    cfg.ingest.writeFailureProb = 0.2;
    cfg.ingest.stalenessSlo = 0.1;
    const SessionResult res = runSession(cfg, 3, 6);
    checkInvariants(res, 6, "overload-under-chaos");
    EXPECT_GT(res.ingest.arrivalEvents, 0u);
    EXPECT_GT(res.ingest.samplesAdmitted, 0.0);

    const SessionResult again = runSession(cfg, 3, 6);
    EXPECT_DOUBLE_EQ(again.throughput, res.throughput);
    EXPECT_DOUBLE_EQ(again.wallTime, res.wallTime);
    EXPECT_EQ(again.ingest.arrivalEvents, res.ingest.arrivalEvents);
    EXPECT_EQ(again.ingest.writeRetries, res.ingest.writeRetries);
    EXPECT_DOUBLE_EQ(again.ingest.samplesArrived,
                     res.ingest.samplesArrived);
    EXPECT_DOUBLE_EQ(again.ingest.samplesAdmitted,
                     res.ingest.samplesAdmitted);
    EXPECT_DOUBLE_EQ(again.ingest.samplesShed, res.ingest.samplesShed);
    EXPECT_DOUBLE_EQ(again.ingest.stalenessMax,
                     res.ingest.stalenessMax);
}

// --- report ratio properties -----------------------------------------

TEST(ChaosProperties, ReportRatiosStayInUnitInterval)
{
    constexpr std::size_t kSeeds = 50;
    for (std::uint64_t seed = 100; seed < 100 + kSeeds; ++seed) {
        const ServerConfig cfg = chaosScenario(seed);
        auto server = buildServer(cfg);
        TrainingSession session(*server);
        const SessionReport report = session.runReport(2, 4);
        SCOPED_TRACE("seed " + std::to_string(seed));

        const double refs[] = {0.0, report.throughput() / 2.0,
                               report.throughput(),
                               2.0 * report.throughput() + 1.0};
        for (double ref : refs) {
            const double g = report.goodput(ref);
            EXPECT_GE(g, 0.0);
            EXPECT_LE(g, 1.0);
        }
        EXPECT_GE(report.efficiency(), 0.0);
        EXPECT_LE(report.efficiency(), 1.0);
        EXPECT_GE(report.availability(), 0.0);
        EXPECT_LE(report.availability(), 1.0);
        EXPECT_GE(report.capacityAvailability(), 0.0);
        EXPECT_LE(report.capacityAvailability(), 1.0);
        EXPECT_GE(report.sloAttainment(), 0.0);
        EXPECT_LE(report.sloAttainment(), 1.0);
        EXPECT_GE(report.ingestAdmitRate(), 0.0);
        EXPECT_LE(report.ingestAdmitRate(), 1.0);
        EXPECT_GE(report.ingestShedRate(), 0.0);
        EXPECT_LE(report.ingestShedRate(), 1.0);
        EXPECT_GE(report.freshnessSloAttainment(), 0.0);
        EXPECT_LE(report.freshnessSloAttainment(), 1.0);
        EXPECT_GE(report.echoEffectiveFactor(), 0.0);
        EXPECT_LE(report.echoEffectiveFactor(), 1.0);
        EXPECT_GE(report.avgIngestStaleness(), 0.0);

        // The report identities hold under chaos too.
        const auto &res = report.result;
        EXPECT_EQ(res.integrity.injected,
                  res.integrity.detected + res.integrity.escaped);
        const auto &e = res.elasticity;
        EXPECT_NEAR(e.samplesPrepared,
                    e.samplesConsumed + e.samplesCachedAtEnd +
                        e.samplesDiscarded,
                    1e-6 * std::max(1.0, e.samplesPrepared));
    }
}

// --- scheduler unit behavior -----------------------------------------

TEST(ElasticSchedulerUnit, PreviewIsDeterministicAndPaired)
{
    ElasticityConfig cfg;
    cfg.enabled = true;
    cfg.seed = 42;
    cfg.graceWindow = 1.0;
    cfg.groupDrain.ratePerSec = 0.2;
    cfg.groupDrain.absence = 2.0;
    cfg.groupPreempt.ratePerSec = 0.2;
    cfg.groupPreempt.absence = 2.0;
    ElasticTargets targets;
    targets.numGroups = 4;

    const auto a = ElasticScheduler::schedule(cfg, targets, 100.0);
    const auto b = ElasticScheduler::schedule(cfg, targets, 100.0);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_GT(a.size(), 4u);
    Time prev = 0.0;
    std::size_t leaves = 0, joins = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(static_cast<int>(a[i].action),
                  static_cast<int>(b[i].action));
        EXPECT_EQ(a[i].index, b[i].index);
        EXPECT_DOUBLE_EQ(a[i].at, b[i].at);
        EXPECT_GE(a[i].at, prev);
        EXPECT_LT(a[i].at, 100.0);
        EXPECT_LT(a[i].index, targets.numGroups);
        prev = a[i].at;
        if (a[i].action == ElasticAction::Join)
            ++joins;
        else
            ++leaves;
    }
    // Leaves and their paired joins interleave; at most the final
    // leave per class can have its join past the horizon.
    EXPECT_GE(joins + 2, leaves);

    // A different seed draws a different timeline.
    cfg.seed = 43;
    const auto c = ElasticScheduler::schedule(cfg, targets, 100.0);
    bool differs = c.size() != a.size();
    for (std::size_t i = 0; !differs && i < c.size(); ++i)
        differs = c[i].at != a[i].at || c[i].index != a[i].index;
    EXPECT_TRUE(differs);
}

} // namespace
} // namespace tb
