/**
 * @file
 * Tests for the FPGA resource model against the paper's Tables II/III.
 */

#include <gtest/gtest.h>

#include "fpga/engine_library.hh"

namespace tb {
namespace fpga {
namespace {

TEST(Fpga, DeviceCapacity)
{
    const Device &dev = xcvu9p();
    EXPECT_EQ(dev.name, "XCVU9P");
    EXPECT_DOUBLE_EQ(dev.capacity.lut, 1'182'240.0);
    EXPECT_DOUBLE_EQ(dev.capacity.dsp, 6'840.0);
}

TEST(Fpga, ResourcesAdd)
{
    Resources a{1, 2, 3, 4};
    const Resources b{10, 20, 30, 40};
    const Resources c = a + b;
    EXPECT_DOUBLE_EQ(c.lut, 11);
    EXPECT_DOUBLE_EQ(c.dsp, 44);
    a += b;
    EXPECT_DOUBLE_EQ(a.ff, 22);
}

TEST(Fpga, ImagePlanMatchesTableII)
{
    const Floorplan plan = imageFloorplan();
    EXPECT_EQ(plan.engines().size(), 7u);
    const Utilization u = plan.utilization();
    // Paper totals: 78.7% LUT, 38.1% FF, 30.5% DSP.
    EXPECT_NEAR(u.lutPct, 78.7, 0.5);
    EXPECT_NEAR(u.ffPct, 38.1, 0.5);
    EXPECT_NEAR(u.dspPct, 30.5, 0.5);
    EXPECT_TRUE(plan.fits());
}

TEST(Fpga, AudioPlanMatchesTableIII)
{
    const Floorplan plan = audioFloorplan();
    const Utilization u = plan.utilization();
    // Paper totals: 80.2% LUT, 46.3% FF, 77.1% BRAM, 12.2% DSP.
    EXPECT_NEAR(u.lutPct, 80.2, 0.5);
    EXPECT_NEAR(u.ffPct, 46.3, 0.5);
    EXPECT_NEAR(u.bramPct, 77.1, 0.5);
    EXPECT_NEAR(u.dspPct, 12.2, 0.5);
    EXPECT_TRUE(plan.fits());
}

TEST(Fpga, JpegDecoderDominatesImagePlan)
{
    // §VI-B: "the JPEG decoder takes most of the resources".
    const Floorplan plan = imageFloorplan();
    const Utilization u = plan.utilizationOf(jpegDecoderEngine());
    EXPECT_NEAR(u.lutPct, 59.5, 0.3);
    for (const auto &e : plan.engines())
        EXPECT_LE(e.cost.lut, jpegDecoderEngine().cost.lut);
}

TEST(Fpga, SpectrogramDominatesAudioPlan)
{
    const Floorplan plan = audioFloorplan();
    for (const auto &e : plan.engines())
        EXPECT_LE(e.cost.lut, spectrogramEngine().cost.lut);
}

TEST(Fpga, OverfilledPlanDoesNotFit)
{
    Floorplan plan(xcvu9p());
    for (int i = 0; i < 3; ++i)
        plan.add(jpegDecoderEngine()); // 3 x 704k LUTs > 1.18M
    EXPECT_FALSE(plan.fits());
    EXPECT_GT(plan.utilization().lutPct, 100.0);
}

TEST(Fpga, BothPipelinesCannotShareOneDevice)
{
    // Rationale for partial reconfiguration (§V-C): image + audio
    // engines together exceed the part.
    Floorplan plan = imageFloorplan();
    plan.add(spectrogramEngine());
    plan.add(melFilterBankEngine());
    EXPECT_FALSE(plan.fits());
}

} // namespace
} // namespace fpga
} // namespace tb
