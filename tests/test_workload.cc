/**
 * @file
 * Tests for the workload model: Table I values, the calibrated prep cost
 * model and its paper anchors, dataset statistics, and the derated
 * batch-throughput model.
 */

#include <gtest/gtest.h>

#include "workload/cost_model.hh"

namespace tb {
namespace {

using namespace workload;

TEST(ModelZoo, HasSevenTableIModels)
{
    EXPECT_EQ(modelZoo().size(), 7u);
}

TEST(ModelZoo, TableIValues)
{
    const ModelInfo &resnet = model(ModelId::Resnet50);
    EXPECT_EQ(resnet.batchSize, 8192u);
    EXPECT_DOUBLE_EQ(resnet.modelBytes, 97.5e6);
    EXPECT_DOUBLE_EQ(resnet.deviceThroughput, 7431.0);
    EXPECT_EQ(resnet.input, InputType::Image);
    EXPECT_EQ(resnet.type, NnType::Cnn);

    const ModelInfo &tfsr = model(ModelId::TfSr);
    EXPECT_EQ(tfsr.batchSize, 512u);
    EXPECT_DOUBLE_EQ(tfsr.deviceThroughput, 2001.0);
    EXPECT_EQ(tfsr.input, InputType::Audio);
    EXPECT_EQ(tfsr.type, NnType::Transformer);
}

TEST(ModelZoo, LookupByName)
{
    EXPECT_EQ(modelByName("VGG-19").id, ModelId::Vgg19);
    EXPECT_EQ(modelByName("Transformer-AA").id, ModelId::TfAa);
}

TEST(ModelZoo, ComputeLatencyMatchesThroughput)
{
    for (const auto &m : modelZoo()) {
        EXPECT_NEAR(computeLatency(m),
                    static_cast<double>(m.batchSize) / m.deviceThroughput,
                    1e-12);
        // Default batch through the derated model is exact by design.
        EXPECT_NEAR(deviceThroughputAtBatch(m, m.batchSize),
                    m.deviceThroughput, 1e-6);
    }
}

TEST(ModelZoo, SmallBatchesLoseEfficiency)
{
    const ModelInfo &m = model(ModelId::Resnet50);
    const Rate full = deviceThroughputAtBatch(m, m.batchSize);
    const Rate small = deviceThroughputAtBatch(m, m.batchSize / 64);
    EXPECT_LT(small, full);
    EXPECT_GT(small, 0.0);
    // Monotone in batch size.
    Rate prev = 0.0;
    for (std::size_t b = 8; b <= m.batchSize; b *= 4) {
        const Rate t = deviceThroughputAtBatch(m, b);
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(PrepDemand, ImageCpuAnchorIs1572Microseconds)
{
    // Calibration anchor (DESIGN.md §4): Inception-v4 saturates the
    // 48-core host at 18.3 accelerators.
    const PrepDemand d = prepDemand(InputType::Image);
    EXPECT_NEAR(d.cpuCoreSec, 1.572e-3, 1e-6);
    EXPECT_NEAR(48.0 / (d.cpuCoreSec * 1669.0), 18.3, 0.1);
}

TEST(PrepDemand, AudioCpuAnchorIs5450Microseconds)
{
    // TF-SR saturates at 4.4 accelerators.
    const PrepDemand d = prepDemand(InputType::Audio);
    EXPECT_NEAR(d.cpuCoreSec, 5.45e-3, 1e-6);
    EXPECT_NEAR(48.0 / (d.cpuCoreSec * 2001.0), 4.4, 0.05);
}

TEST(PrepDemand, MaxCoreDemandMatchesPaper)
{
    // "up to 4,833 cores = 100.7x DGX-2" at 256 accelerators (§III-C).
    double max_cores = 0.0;
    sync::SyncConfig sync_cfg;
    for (const auto &m : modelZoo()) {
        const PrepDemand d = prepDemand(m.input);
        max_cores = std::max(
            max_cores, targetThroughput(m, 256, sync_cfg) * d.cpuCoreSec);
    }
    EXPECT_NEAR(max_cores / 48.0, 100.7, 3.0);
}

TEST(PrepDemand, StagesSumToTotals)
{
    for (InputType input : {InputType::Image, InputType::Audio}) {
        const PrepDemand d = prepDemand(input);
        double cpu = 0.0, mem = 0.0;
        for (const auto &[stage, v] : d.cpuByStage)
            cpu += v;
        for (const auto &[stage, v] : d.memByStage)
            mem += v;
        EXPECT_NEAR(cpu, d.cpuCoreSec, 1e-12);
        EXPECT_NEAR(mem, d.memBytes, 1e-6);
    }
}

TEST(PrepDemand, FormattingDominatesCpu)
{
    // Fig 11: formatting + augmentation dominate the CPU cost.
    for (InputType input : {InputType::Image, InputType::Audio}) {
        const PrepDemand d = prepDemand(input);
        const double fmt_aug = d.cpuByStage.at(PrepStage::Formatting) +
                               d.cpuByStage.at(PrepStage::Augmentation);
        EXPECT_GT(fmt_aug / d.cpuCoreSec, 0.75);
    }
}

TEST(PrepDemand, ChainRates)
{
    EXPECT_DOUBLE_EQ(prepDemand(InputType::Image).fpgaChainRate, 45000.0);
    EXPECT_DOUBLE_EQ(prepDemand(InputType::Audio).fpgaChainRate, 5200.0);
    // GPUs lose badly on JPEG decode (Huffman) — §V-B.
    EXPECT_LT(prepDemand(InputType::Image).gpuChainRate,
              prepDemand(InputType::Image).fpgaChainRate / 3.0);
}

TEST(Dataset, ImageSizes)
{
    const DatasetInfo &ds = datasetFor(InputType::Image);
    EXPECT_DOUBLE_EQ(ds.itemDecodedBytes, 256.0 * 256.0 * 3.0);
    EXPECT_DOUBLE_EQ(ds.itemPreparedBytes, 224.0 * 224.0 * 3.0 * 2.0);
    EXPECT_EQ(ds.numItems, 14'000'000u);
}

TEST(Dataset, AudioSizesMatchStftGeometry)
{
    const DatasetInfo &ds = datasetFor(InputType::Audio);
    // 6.96 s at 16 kHz, 16-bit.
    EXPECT_NEAR(ds.itemStoredBytes, 6.96 * 16000.0 * 2.0, 100.0);
    // ~694 frames x 80 mels x 4 B.
    EXPECT_NEAR(ds.itemPreparedBytes, 694.0 * 80.0 * 4.0, 2000.0);
}

TEST(Dataset, StaticPreparationIsPetabytes)
{
    // §III-D: 32x32 crops x 0.15 MB x 14 M items ~ 2.2 PB.
    const DatasetInfo &ds = datasetFor(InputType::Image);
    const Bytes pb = staticPreparationBytes(ds, 32 * 32, 150528.0);
    EXPECT_NEAR(pb / 1e15, 2.2, 0.1);
}

TEST(CostModel, SyncShrinksEffectiveThroughput)
{
    sync::SyncConfig sync_cfg;
    const ModelInfo &m = model(ModelId::Vgg19); // largest model: 548 MB
    const Rate solo = effectiveDeviceThroughput(m, 1, sync_cfg);
    const Rate at256 = effectiveDeviceThroughput(m, 256, sync_cfg);
    EXPECT_LT(at256, solo);
    EXPECT_GT(at256, 0.9 * solo); // ring keeps the cost small
    EXPECT_NEAR(solo, m.deviceThroughput, 1e-6);
}

TEST(CostModel, TargetThroughputScalesWithN)
{
    sync::SyncConfig sync_cfg;
    const ModelInfo &m = model(ModelId::Resnet50);
    const Rate t64 = targetThroughput(m, 64, sync_cfg);
    const Rate t256 = targetThroughput(m, 256, sync_cfg);
    EXPECT_NEAR(t256 / t64, 4.0, 0.05);
}

TEST(Workload, StageCategoriesAreStable)
{
    EXPECT_STREQ(stageCategory(PrepStage::SsdRead), "ssd_read");
    EXPECT_STREQ(stageCategory(PrepStage::Formatting), "formatting");
    EXPECT_STREQ(stageCategory(PrepStage::Augmentation), "augmentation");
    EXPECT_STREQ(stageCategory(PrepStage::DataLoad), "data_load");
    EXPECT_STREQ(stageCategory(PrepStage::Others), "others");
}

} // namespace
} // namespace tb
