/**
 * @file
 * Tests for server assembly and the train initializer (§V-A).
 */

#include <gtest/gtest.h>

#include "trainbox/server_builder.hh"

namespace tb {
namespace {

ServerConfig
baseConfig(ArchPreset preset, workload::ModelId model, std::size_t n)
{
    ServerConfig cfg;
    cfg.preset = preset;
    cfg.model = model;
    cfg.numAccelerators = n;
    return cfg;
}

TEST(Builder, BaselineDeviceCounts)
{
    auto server = buildServer(baseConfig(ArchPreset::Baseline,
                                         workload::ModelId::Resnet50, 256));
    EXPECT_EQ(server->accs.size(), 256u);
    EXPECT_TRUE(server->preps.empty());
    EXPECT_EQ(server->ssds.size(), 64u); // same array as TrainBox
    EXPECT_EQ(server->groups.size(), 32u);
    EXPECT_FALSE(server->pool);
    for (const auto &g : server->groups)
        EXPECT_EQ(g.numAccelerators, 8u);
}

TEST(Builder, AccPresetAddsOneEnginePerFourAccelerators)
{
    for (ArchPreset p : {ArchPreset::BaselineAccFpga,
                         ArchPreset::BaselineAccGpu,
                         ArchPreset::BaselineAccP2p}) {
        auto server = buildServer(
            baseConfig(p, workload::ModelId::Resnet50, 64));
        EXPECT_EQ(server->preps.size(), 16u) << presetName(p);
    }
}

TEST(Builder, GpuPresetUsesGpuEngineRate)
{
    auto fpga = buildServer(baseConfig(ArchPreset::BaselineAccFpga,
                                       workload::ModelId::Resnet50, 64));
    auto gpu = buildServer(baseConfig(ArchPreset::BaselineAccGpu,
                                      workload::ModelId::Resnet50, 64));
    EXPECT_DOUBLE_EQ(fpga->preps[0]->engine()->capacity(), 45000.0);
    EXPECT_DOUBLE_EQ(gpu->preps[0]->engine()->capacity(), 11000.0);
    EXPECT_EQ(gpu->preps[0]->kind(), PrepEngineKind::Gpu);
}

TEST(Builder, TrainBoxStructure)
{
    auto server = buildServer(baseConfig(ArchPreset::TrainBox,
                                         workload::ModelId::Resnet50, 256));
    EXPECT_EQ(server->accs.size(), 256u);
    EXPECT_EQ(server->preps.size(), 64u); // 2 FPGAs per box
    EXPECT_EQ(server->ssds.size(), 64u);  // 2 SSDs per box
    EXPECT_EQ(server->groups.size(), 32u);
    // Clustered FPGAs carry prep-pool Ethernet ports.
    for (const auto &p : server->preps)
        EXPECT_NE(p->ethernetPort(), nullptr);
}

TEST(Builder, TrainBoxRoutesAreLocal)
{
    auto server = buildServer(baseConfig(ArchPreset::TrainBox,
                                         workload::ModelId::Resnet50, 32));
    // No local prep stage may touch the root complex.
    FluidResource *rc = server->topo->rcResource();
    for (const auto &g : server->groups)
        for (const auto &st : g.stages)
            for (const auto &d : st.demandsPerSample)
                EXPECT_NE(d.resource, rc)
                    << g.name << "/" << st.name;
}

TEST(Builder, CentralizedRoutesCrossTheRootComplex)
{
    auto server = buildServer(baseConfig(ArchPreset::BaselineAccP2p,
                                         workload::ModelId::Resnet50, 32));
    FluidResource *rc = server->topo->rcResource();
    bool touches_rc = false;
    for (const auto &g : server->groups)
        for (const auto &st : g.stages)
            for (const auto &d : st.demandsPerSample)
                touches_rc |= d.resource == rc;
    EXPECT_TRUE(touches_rc);
}

TEST(Builder, Gen4DoublesFabricBandwidth)
{
    auto gen3 = buildServer(baseConfig(ArchPreset::BaselineAccP2p,
                                       workload::ModelId::Resnet50, 32));
    auto gen4 = buildServer(baseConfig(ArchPreset::BaselineAccP2pGen4,
                                       workload::ModelId::Resnet50, 32));
    EXPECT_DOUBLE_EQ(gen4->topo->rcResource()->capacity(),
                     2.0 * gen3->topo->rcResource()->capacity());
}

TEST(Builder, SmallScaleSingleGroup)
{
    for (ArchPreset p : {ArchPreset::Baseline, ArchPreset::TrainBox,
                         ArchPreset::BaselineAccFpga}) {
        auto server =
            buildServer(baseConfig(p, workload::ModelId::InceptionV4, 1));
        EXPECT_EQ(server->groups.size(), 1u) << presetName(p);
        EXPECT_EQ(server->accs.size(), 1u);
        EXPECT_GE(server->groups[0].stages.size(), 3u);
    }
}

TEST(Builder, StagesHaveDemands)
{
    for (ArchPreset p : allPresets()) {
        auto server =
            buildServer(baseConfig(p, workload::ModelId::TfSr, 16));
        for (const auto &g : server->groups) {
            EXPECT_FALSE(g.stages.empty());
            for (const auto &st : g.stages) {
                EXPECT_FALSE(st.demandsPerSample.empty() &&
                             st.rateCap == 0.0)
                    << presetName(p) << " stage " << st.name;
                EXPECT_FALSE(st.category.empty());
            }
        }
    }
}

TEST(Initializer, InceptionNeedsNoPool)
{
    const PrepPlan plan = planPreparation(
        baseConfig(ArchPreset::TrainBox, workload::ModelId::InceptionV4,
                   256));
    EXPECT_DOUBLE_EQ(plan.offloadFraction, 0.0);
    EXPECT_EQ(plan.poolFpgas, 0u);
    EXPECT_GT(plan.perBoxLocalCapacity, plan.perBoxDemand);
}

TEST(Initializer, TfSrNeeds54PercentExtraCapacity)
{
    // Fig 21: TF-SR reaches the target with ~54% more FPGA resources.
    const PrepPlan plan = planPreparation(
        baseConfig(ArchPreset::TrainBox, workload::ModelId::TfSr, 256));
    EXPECT_GT(plan.offloadFraction, 0.0);
    EXPECT_NEAR(plan.poolOvercapacityRatio, 0.54, 0.03);
    EXPECT_GT(plan.poolFpgas, 0u);
    EXPECT_TRUE(plan.ethernetFeasible);
}

TEST(Initializer, PoolSizedForPortLimits)
{
    // Image offload is port-limited (35.6k samples/s per 100G port vs
    // 45k engine rate), so the pool must be sized by the port rate.
    const PrepPlan plan = planPreparation(
        baseConfig(ArchPreset::TrainBox, workload::ModelId::RnnS, 256));
    ASSERT_GT(plan.poolFpgas, 0u);
    const double port_rate =
        PrepAccelerator::defaultEthernetBw /
        (workload::prepDemand(workload::InputType::Image).ssdBytes +
         workload::prepDemand(workload::InputType::Image).preparedBytes);
    EXPECT_GE(static_cast<double>(plan.poolFpgas) * port_rate,
              plan.poolCapacityNeeded * 0.999);
}

TEST(Initializer, PoolMatchesBuilder)
{
    const ServerConfig cfg =
        baseConfig(ArchPreset::TrainBox, workload::ModelId::TfSr, 256);
    const PrepPlan plan = planPreparation(cfg);
    auto server = buildServer(cfg);
    ASSERT_TRUE(server->pool);
    EXPECT_EQ(server->pool->size(), plan.poolFpgas);
    for (const auto &g : server->groups) {
        EXPECT_DOUBLE_EQ(g.offloadFraction, plan.offloadFraction);
        EXPECT_FALSE(g.offloadStages.empty());
    }
}

TEST(Initializer, NoPoolPresetHasNoOffload)
{
    auto server = buildServer(
        baseConfig(ArchPreset::TrainBoxNoPool, workload::ModelId::TfSr,
                   256));
    EXPECT_FALSE(server->pool);
    for (const auto &g : server->groups)
        EXPECT_DOUBLE_EQ(g.offloadFraction, 0.0);
}

TEST(Initializer, ExplicitPoolSizeOverride)
{
    ServerConfig cfg =
        baseConfig(ArchPreset::TrainBox, workload::ModelId::TfSr, 256);
    cfg.prepPoolFpgas = 100;
    auto server = buildServer(cfg);
    ASSERT_TRUE(server->pool);
    EXPECT_EQ(server->pool->size(), 100u);
}

TEST(ServerConfig, PresetPredicates)
{
    EXPECT_FALSE(presetUsesPrepAccelerators(ArchPreset::Baseline));
    EXPECT_TRUE(presetUsesPrepAccelerators(ArchPreset::TrainBox));
    EXPECT_FALSE(presetUsesP2p(ArchPreset::BaselineAccFpga));
    EXPECT_TRUE(presetUsesP2p(ArchPreset::BaselineAccP2p));
    EXPECT_TRUE(presetUsesClustering(ArchPreset::TrainBoxNoPool));
    EXPECT_FALSE(presetUsesClustering(ArchPreset::BaselineAccP2pGen4));
    EXPECT_EQ(allPresets().size(), 7u);
}

TEST(ServerConfig, EffectiveBatchSize)
{
    ServerConfig cfg;
    cfg.model = workload::ModelId::Resnet50;
    EXPECT_EQ(cfg.effectiveBatchSize(), 8192u);
    cfg.batchSize = 128;
    EXPECT_EQ(cfg.effectiveBatchSize(), 128u);
}

TEST(ServerDeath, ZeroAcceleratorsIsFatal)
{
    ServerConfig cfg;
    cfg.numAccelerators = 0;
    EXPECT_DEATH(buildServer(cfg), "at least one");
}

} // namespace
} // namespace tb
