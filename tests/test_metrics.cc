/**
 * @file
 * Tests for the metrics layer: registry semantics (find-or-create,
 * disabled => nullptr and zero allocations), time-weighted histogram
 * math, and the fluid network's utilization instrumentation.
 */

#include <gtest/gtest.h>

#include "fluid/fluid.hh"
#include "sim/metrics.hh"

namespace tb {
namespace {

TEST(MetricCounter, AddIncValueReset)
{
    MetricCounter c;
    EXPECT_DOUBLE_EQ(c.value(), 0.0);
    c.inc();
    c.add(2.5);
    EXPECT_DOUBLE_EQ(c.value(), 3.5);
    c.reset();
    EXPECT_DOUBLE_EQ(c.value(), 0.0);
}

TEST(MetricGauge, LastValueWins)
{
    MetricGauge g;
    g.set(4.0);
    g.set(1.5);
    EXPECT_DOUBLE_EQ(g.value(), 1.5);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(TimeWeightedHistogram, ExactTimeAverageAndPeak)
{
    TimeWeightedHistogram h;
    h.record(0.25, 2.0); // 0.25 for 2 s
    h.record(0.75, 2.0); // 0.75 for 2 s
    EXPECT_DOUBLE_EQ(h.totalTime(), 4.0);
    EXPECT_DOUBLE_EQ(h.timeAverage(), 0.5);
    EXPECT_DOUBLE_EQ(h.peak(), 0.75);
    EXPECT_DOUBLE_EQ(h.saturatedTime(), 0.0);
    EXPECT_DOUBLE_EQ(h.saturatedFraction(), 0.0);
}

TEST(TimeWeightedHistogram, SaturationThreshold)
{
    TimeWeightedHistogram h;
    h.record(1.0, 3.0);  // saturated
    h.record(0.999, 1.0); // exactly at threshold counts as saturated
    h.record(0.5, 4.0);
    EXPECT_DOUBLE_EQ(h.saturatedTime(), 4.0);
    EXPECT_DOUBLE_EQ(h.saturatedFraction(), 0.5);
}

TEST(TimeWeightedHistogram, BucketsAndClamping)
{
    TimeWeightedHistogram h(/*numBuckets=*/4, /*lo=*/0.0, /*hi=*/1.0);
    ASSERT_EQ(h.numBuckets(), 4u);
    EXPECT_DOUBLE_EQ(h.bucketLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketHigh(3), 1.0);
    h.record(0.1, 1.0);  // bucket 0
    h.record(0.9, 2.0);  // bucket 3
    h.record(-5.0, 3.0); // clamps into bucket 0
    h.record(7.0, 4.0);  // clamps into bucket 3
    EXPECT_DOUBLE_EQ(h.bucketTime(0), 4.0);
    EXPECT_DOUBLE_EQ(h.bucketTime(1), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketTime(2), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketTime(3), 6.0);
    h.reset();
    EXPECT_DOUBLE_EQ(h.totalTime(), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketTime(3), 0.0);
    EXPECT_DOUBLE_EQ(h.peak(), 0.0);
}

TEST(TimeWeightedHistogram, ZeroDurationIsIgnoredInAverages)
{
    TimeWeightedHistogram h;
    h.record(1.0, 0.0);
    EXPECT_DOUBLE_EQ(h.totalTime(), 0.0);
    EXPECT_DOUBLE_EQ(h.timeAverage(), 0.0);
}

TEST(MetricsRegistry, DisabledAllocatesNothing)
{
    MetricsRegistry m;
    EXPECT_FALSE(m.enabled());
    EXPECT_EQ(m.counter("a"), nullptr);
    EXPECT_EQ(m.gauge("b"), nullptr);
    EXPECT_EQ(m.histogram("c"), nullptr);
    EXPECT_EQ(m.findCounter("a"), nullptr);
    EXPECT_EQ(m.size(), 0u);
    EXPECT_TRUE(m.counters().empty());
    EXPECT_TRUE(m.gauges().empty());
    EXPECT_TRUE(m.histograms().empty());
}

TEST(MetricsRegistry, FindOrCreateIsIdempotent)
{
    MetricsRegistry m;
    m.enable();
    MetricCounter *c1 = m.counter("steps", "global steps");
    MetricCounter *c2 = m.counter("steps");
    ASSERT_NE(c1, nullptr);
    EXPECT_EQ(c1, c2); // same name -> same instrument
    EXPECT_EQ(m.findCounter("steps"), c1);
    EXPECT_EQ(m.findCounter("absent"), nullptr);
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(m.counters()[0].name, "steps");
    EXPECT_EQ(m.counters()[0].desc, "global steps");

    // Counters, gauges, and histograms live in separate namespaces.
    EXPECT_NE(m.gauge("steps"), nullptr);
    EXPECT_NE(m.histogram("steps"), nullptr);
    EXPECT_EQ(m.size(), 3u);
}

TEST(MetricsRegistry, ResetAllClearsEveryInstrument)
{
    MetricsRegistry m;
    m.enable();
    m.counter("c")->add(5.0);
    m.gauge("g")->set(2.0);
    m.histogram("h")->record(0.5, 1.0);
    m.resetAll();
    EXPECT_DOUBLE_EQ(m.findCounter("c")->value(), 0.0);
    EXPECT_DOUBLE_EQ(m.findGauge("g")->value(), 0.0);
    EXPECT_DOUBLE_EQ(m.findHistogram("h")->totalTime(), 0.0);
}

struct FluidMetricsTest : public ::testing::Test
{
    EventQueue eq;
    FluidNetwork net{eq};
    MetricsRegistry metrics;
};

TEST_F(FluidMetricsTest, UtilizationHistoryIsExact)
{
    metrics.enable();
    net.attachMetrics(&metrics);
    FluidResource *link = net.addResource("link", 100.0);

    // Rate-capped at half capacity: utilization is exactly 0.5 for the
    // flow's 10-second lifetime.
    FlowSpec spec;
    spec.category = "x";
    spec.size = 500.0;
    spec.rateCap = 50.0;
    spec.demands = {{link, 1.0}};
    spec.onComplete = [](Time) {};
    net.startFlow(std::move(spec));
    eq.run();

    const TimeWeightedHistogram *h = link->utilizationHistory();
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h, metrics.findHistogram("util.link"));
    EXPECT_DOUBLE_EQ(h->totalTime(), 10.0);
    EXPECT_DOUBLE_EQ(h->timeAverage(), 0.5);
    EXPECT_DOUBLE_EQ(h->peak(), 0.5);
    EXPECT_DOUBLE_EQ(h->saturatedFraction(), 0.0);

    EXPECT_DOUBLE_EQ(metrics.findCounter("fluid.flows_started")->value(),
                     1.0);
    EXPECT_DOUBLE_EQ(
        metrics.findCounter("fluid.flows_completed")->value(), 1.0);
    EXPECT_DOUBLE_EQ(metrics.findGauge("fluid.active_flows")->value(),
                     0.0);
}

TEST_F(FluidMetricsTest, SaturatedResourceIsDetected)
{
    metrics.enable();
    net.attachMetrics(&metrics);
    FluidResource *link = net.addResource("link", 100.0);

    FlowSpec spec;
    spec.category = "x";
    spec.size = 300.0; // uncapped: runs at full capacity for 3 s
    spec.demands = {{link, 1.0}};
    spec.onComplete = [](Time) {};
    net.startFlow(std::move(spec));
    eq.run();

    const TimeWeightedHistogram *h = link->utilizationHistory();
    ASSERT_NE(h, nullptr);
    EXPECT_DOUBLE_EQ(h->timeAverage(), 1.0);
    EXPECT_DOUBLE_EQ(h->saturatedFraction(), 1.0);
}

TEST_F(FluidMetricsTest, ResourcesAddedBeforeAttachAreInstrumented)
{
    FluidResource *early = net.addResource("early", 10.0);
    metrics.enable();
    net.attachMetrics(&metrics);
    FluidResource *late = net.addResource("late", 10.0);
    EXPECT_NE(early->utilizationHistory(), nullptr);
    EXPECT_NE(late->utilizationHistory(), nullptr);
}

TEST_F(FluidMetricsTest, DisabledRegistryLeavesNetworkUninstrumented)
{
    net.attachMetrics(&metrics); // still disabled: attach is a no-op
    FluidResource *link = net.addResource("link", 100.0);

    FlowSpec spec;
    spec.category = "x";
    spec.size = 100.0;
    spec.demands = {{link, 1.0}};
    spec.onComplete = [](Time) {};
    net.startFlow(std::move(spec));
    eq.run();

    EXPECT_EQ(link->utilizationHistory(), nullptr);
    EXPECT_EQ(metrics.size(), 0u);
    // flushMetrics without metrics attached must be a pure no-op: the
    // accounting stays exactly what the uninstrumented path produced.
    const double served = link->totalServed();
    net.flushMetrics();
    EXPECT_DOUBLE_EQ(link->totalServed(), served);
}

TEST_F(FluidMetricsTest, ResetAccountingRestartsHistories)
{
    metrics.enable();
    net.attachMetrics(&metrics);
    FluidResource *link = net.addResource("link", 100.0);

    FlowSpec spec;
    spec.category = "x";
    spec.size = 100.0;
    spec.demands = {{link, 1.0}};
    spec.onComplete = [](Time) {};
    net.startFlow(std::move(spec));
    eq.run();
    ASSERT_GT(link->utilizationHistory()->totalTime(), 0.0);

    net.resetAccounting();
    EXPECT_DOUBLE_EQ(link->utilizationHistory()->totalTime(), 0.0);
    EXPECT_DOUBLE_EQ(link->totalServed(), 0.0);
}

} // namespace
} // namespace tb
