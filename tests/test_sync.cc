/**
 * @file
 * Tests for ring/tree all-reduce (functional) and the sync latency model.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "sync/ring_allreduce.hh"
#include "sync/sync_model.hh"
#include "workload/model_zoo.hh"

namespace tb {
namespace {

std::vector<std::vector<float>>
randomBuffers(std::size_t n, std::size_t len, Rng &rng)
{
    std::vector<std::vector<float>> buffers(n);
    for (auto &b : buffers) {
        b.resize(len);
        for (auto &v : b)
            v = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    return buffers;
}

std::vector<float>
directSum(const std::vector<std::vector<float>> &buffers)
{
    std::vector<float> sum(buffers[0].size(), 0.0f);
    for (const auto &b : buffers)
        for (std::size_t i = 0; i < b.size(); ++i)
            sum[i] += b[i];
    return sum;
}

class AllReduceShape
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{
};

TEST_P(AllReduceShape, RingMatchesDirectSum)
{
    const auto [n, len] = GetParam();
    Rng rng(n * 1000 + len);
    auto buffers = randomBuffers(n, len, rng);
    const std::vector<float> expected = directSum(buffers);

    const sync::AllReduceStats stats = sync::ringAllReduce(buffers);
    for (std::size_t d = 0; d < n; ++d)
        for (std::size_t i = 0; i < len; ++i)
            ASSERT_NEAR(buffers[d][i], expected[i], 1e-4)
                << "device " << d << " element " << i;
    if (n > 1)
        EXPECT_EQ(stats.steps, 2 * (n - 1));
}

TEST_P(AllReduceShape, TreeMatchesDirectSum)
{
    const auto [n, len] = GetParam();
    Rng rng(n * 2000 + len);
    auto buffers = randomBuffers(n, len, rng);
    const std::vector<float> expected = directSum(buffers);
    sync::treeAllReduce(buffers);
    for (std::size_t d = 0; d < n; ++d)
        for (std::size_t i = 0; i < len; ++i)
            ASSERT_NEAR(buffers[d][i], expected[i], 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AllReduceShape,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 16},
                      std::pair<std::size_t, std::size_t>{2, 64},
                      std::pair<std::size_t, std::size_t>{3, 17},
                      std::pair<std::size_t, std::size_t>{4, 64},
                      std::pair<std::size_t, std::size_t>{7, 53},
                      std::pair<std::size_t, std::size_t>{8, 256},
                      std::pair<std::size_t, std::size_t>{16, 100},
                      std::pair<std::size_t, std::size_t>{5, 3}));

TEST(RingAllReduce, CommunicationVolumeIsTwoNMinusOneOverN)
{
    // The key property behind Fig 2b: each device sends 2(n-1)/n of the
    // buffer regardless of n.
    Rng rng(5);
    for (std::size_t n : {2u, 4u, 8u, 16u}) {
        const std::size_t len = 640;
        auto buffers = randomBuffers(n, len, rng);
        const sync::AllReduceStats stats = sync::ringAllReduce(buffers);
        const double expected =
            2.0 * static_cast<double>(n - 1) / static_cast<double>(n) *
            static_cast<double>(len);
        EXPECT_NEAR(static_cast<double>(stats.elementsSentPerDevice),
                    expected, 1.0)
            << "n=" << n;
    }
}

TEST(SyncModel, ZeroForOneDeviceOrNoData)
{
    sync::SyncConfig cfg;
    EXPECT_DOUBLE_EQ(sync::syncLatency(cfg, 1, 1e6), 0.0);
    EXPECT_DOUBLE_EQ(sync::syncLatency(cfg, 16, 0.0), 0.0);
}

TEST(SyncModel, RingSaturatesNearTwo)
{
    sync::SyncConfig cfg;
    const Bytes model = 97.5e6; // Resnet-50
    const double norm256 = sync::normalizedSyncLatency(cfg, 256, model);
    EXPECT_GT(norm256, 1.8);
    EXPECT_LT(norm256, 2.6); // Fig 2b: flat around 2x
}

TEST(SyncModel, RingMonotonicInN)
{
    sync::SyncConfig cfg;
    double prev = 0.0;
    for (std::size_t n : {2u, 4u, 8u, 32u, 128u, 256u}) {
        const double lat = sync::syncLatency(cfg, n, 100e6);
        EXPECT_GT(lat, prev);
        prev = lat;
    }
}

TEST(SyncModel, ParameterServerScalesLinearly)
{
    sync::SyncConfig cfg;
    cfg.algorithm = sync::Algorithm::ParameterServer;
    const double l64 = sync::syncLatency(cfg, 64, 100e6);
    const double l128 = sync::syncLatency(cfg, 128, 100e6);
    EXPECT_NEAR(l128 / l64, 2.0, 0.01);
}

TEST(SyncModel, TreeScalesLogarithmically)
{
    sync::SyncConfig cfg;
    cfg.algorithm = sync::Algorithm::Tree;
    const double l16 = sync::syncLatency(cfg, 16, 100e6);
    const double l256 = sync::syncLatency(cfg, 256, 100e6);
    // log2(256)/log2(16) = 2.
    EXPECT_NEAR(l256 / l16, 2.0, 0.05);
}

TEST(SyncModel, RingBeatsAlternativesAtScale)
{
    sync::SyncConfig ring;
    sync::SyncConfig tree;
    tree.algorithm = sync::Algorithm::Tree;
    sync::SyncConfig ps;
    ps.algorithm = sync::Algorithm::ParameterServer;
    const Bytes model = 100e6;
    EXPECT_LT(sync::syncLatency(ring, 256, model),
              sync::syncLatency(tree, 256, model));
    EXPECT_LT(sync::syncLatency(tree, 256, model),
              sync::syncLatency(ps, 256, model));
}

TEST(SyncModel, SmallerChunksReduceLatencyAtScale)
{
    sync::SyncConfig small;
    small.chunkBytes = 1024.0;
    sync::SyncConfig large;
    large.chunkBytes = 1 << 20;
    EXPECT_LT(sync::syncLatency(small, 256, 100e6),
              sync::syncLatency(large, 256, 100e6));
}

TEST(SyncModel, BandwidthScalesInversely)
{
    sync::SyncConfig fast;
    fast.linkBandwidth = 300e9;
    fast.hopLatency = 0.0;
    fast.chunkBytes = 0.0;
    sync::SyncConfig slow = fast;
    slow.linkBandwidth = 150e9;
    EXPECT_NEAR(sync::syncLatency(slow, 8, 100e6) /
                    sync::syncLatency(fast, 8, 100e6),
                2.0, 1e-9);
}

} // namespace
} // namespace tb
