/**
 * @file
 * Tests for the host-memory/CPU-pool wrappers and the device models.
 */

#include <gtest/gtest.h>

#include "devices/ethernet.hh"
#include "devices/nn_accelerator.hh"
#include "devices/prep_accelerator.hh"
#include "devices/ssd.hh"
#include "memsys/cpu_pool.hh"
#include "memsys/host_memory.hh"

namespace tb {
namespace {

struct MemsysTest : public ::testing::Test
{
    EventQueue eq;
    FluidNetwork net{eq};
};

TEST_F(MemsysTest, HostMemoryIsABandwidthServer)
{
    HostMemory mem(net, 239e9);
    EXPECT_DOUBLE_EQ(mem.bandwidth(), 239e9);
    EXPECT_EQ(net.findResource("host.dram"), mem.resource());

    double done = -1.0;
    FlowSpec spec;
    spec.category = "copy";
    spec.size = 239e9; // one second of traffic
    spec.demands = {mem.demand(1.0)};
    spec.onComplete = [&](Time t) { done = t; };
    net.startFlow(std::move(spec));
    eq.run();
    EXPECT_DOUBLE_EQ(done, 1.0);
}

TEST_F(MemsysTest, CpuPoolParallelismCap)
{
    CpuPool cpu(net, 48.0);
    EXPECT_DOUBLE_EQ(cpu.cores(), 48.0);
    // A task costing 1 ms/sample limited to 4 cores runs at 4000/s.
    EXPECT_DOUBLE_EQ(CpuPool::parallelismCap(4.0, 1e-3), 4000.0);
    EXPECT_DOUBLE_EQ(CpuPool::parallelismCap(4.0, 0.0), 0.0);

    double done = -1.0;
    FlowSpec spec;
    spec.category = "prep";
    spec.size = 8000.0; // samples
    spec.rateCap = CpuPool::parallelismCap(4.0, 1e-3);
    spec.demands = {cpu.demand(1e-3)};
    spec.onComplete = [&](Time t) { done = t; };
    net.startFlow(std::move(spec));
    eq.run();
    // 8000 samples at 4000/s despite 48 cores available.
    EXPECT_DOUBLE_EQ(done, 2.0);
    EXPECT_DOUBLE_EQ(cpu.resource()->served("prep"), 8.0); // core-sec
}

TEST_F(MemsysTest, CpuPoolSharedByManyTasks)
{
    CpuPool cpu(net, 8.0);
    int completed = 0;
    for (int i = 0; i < 16; ++i) {
        FlowSpec spec;
        spec.category = "prep";
        spec.size = 1000.0;
        spec.demands = {cpu.demand(1e-3)};
        spec.onComplete = [&](Time) { ++completed; };
        net.startFlow(std::move(spec));
    }
    eq.run();
    EXPECT_EQ(completed, 16);
    // 16 core-seconds of work on 8 cores.
    EXPECT_DOUBLE_EQ(eq.now(), 2.0);
}

struct DevicesTest : public ::testing::Test
{
    EventQueue eq;
    FluidNetwork net{eq};
    pcie::Topology topo{net, "rc", 64e9};
};

TEST_F(DevicesTest, SsdHasFlashAndLink)
{
    const pcie::NodeId sw = topo.addSwitch("sw", topo.root(), 16e9);
    NvmeSsd ssd(net, topo, "ssd0", sw);
    EXPECT_EQ(ssd.name(), "ssd0");
    EXPECT_EQ(topo.node(ssd.node()).kind, pcie::NodeKind::Device);
    EXPECT_DOUBLE_EQ(ssd.readBandwidth()->capacity(),
                     NvmeSsd::defaultReadBandwidth);
    const FlowDemand d = ssd.readDemand(2.0);
    EXPECT_EQ(d.resource, ssd.readBandwidth());
    EXPECT_DOUBLE_EQ(d.weight, 2.0);
}

TEST_F(DevicesTest, SsdReadLimitedByFlashNotLink)
{
    const pcie::NodeId sw = topo.addSwitch("sw", topo.root(), 16e9);
    NvmeSsd ssd(net, topo, "ssd0", sw);
    double done = -1.0;
    DemandSet ds;
    ds.add(ssd.readDemand(1.0).resource, 1.0);
    ds.add(topo.hostRouteDemands(ssd.node(), false, 1.0));
    FlowSpec spec;
    spec.category = "read";
    spec.size = NvmeSsd::defaultReadBandwidth; // 1 s at flash speed
    spec.demands = ds.build();
    spec.onComplete = [&](Time t) { done = t; };
    net.startFlow(std::move(spec));
    eq.run();
    EXPECT_DOUBLE_EQ(done, 1.0); // 3.2 GB/s flash < 4 GB/s link
}

TEST_F(DevicesTest, AcceleratorComputeTime)
{
    const pcie::NodeId sw = topo.addSwitch("sw", topo.root(), 16e9);
    NnAccelerator acc(topo, "acc0", sw);
    const auto &m = workload::model(workload::ModelId::Resnet50);
    EXPECT_NEAR(acc.computeTime(m, 8192), 8192.0 / 7431.0, 1e-9);
}

TEST_F(DevicesTest, PrepAcceleratorEngineAndEthernet)
{
    const pcie::NodeId sw = topo.addSwitch("sw", topo.root(), 16e9);
    PrepAccelerator with_eth(net, topo, "fpga0", sw,
                             PrepEngineKind::Fpga, 45000.0, true);
    PrepAccelerator without(net, topo, "fpga1", sw,
                            PrepEngineKind::Fpga, 45000.0, false);
    EXPECT_DOUBLE_EQ(with_eth.engine()->capacity(), 45000.0);
    ASSERT_NE(with_eth.ethernetPort(), nullptr);
    EXPECT_DOUBLE_EQ(with_eth.ethernetPort()->capacity(),
                     PrepAccelerator::defaultEthernetBw);
    EXPECT_EQ(without.ethernetPort(), nullptr);
    EXPECT_DOUBLE_EQ(with_eth.engineDemand().weight, 1.0);
}

TEST_F(DevicesTest, PrepPoolAggregates)
{
    PrepPool pool(net, "pool");
    pool.addFpga(5200.0);
    pool.addFpga(5200.0);
    pool.addFpga(5200.0);
    EXPECT_EQ(pool.size(), 3u);
    EXPECT_DOUBLE_EQ(pool.totalEngineRate(), 15600.0);
    EXPECT_NE(pool.fabric(), nullptr);
    for (const auto &f : pool.fpgas()) {
        EXPECT_NE(f.port, nullptr);
        EXPECT_NE(f.engine, nullptr);
    }
}

TEST_F(DevicesTest, SsdWritePathAndReadInterference)
{
    const pcie::NodeId sw = topo.addSwitch("sw", topo.root(), 16e9);
    NvmeSsd ssd(net, topo, "ssd0", sw);
    EXPECT_DOUBLE_EQ(ssd.writeBandwidth()->capacity(),
                     NvmeSsd::defaultWriteBandwidth);
    const FlowDemand w = ssd.writeDemand(2.0);
    EXPECT_EQ(w.resource, ssd.writeBandwidth());
    EXPECT_DOUBLE_EQ(w.weight, 2.0);
    // Writing steals a fraction of the *read* channel (program/erase
    // interference), so prep reads slow down while a checkpoint drains.
    const FlowDemand i = ssd.writeReadInterference(2.0);
    EXPECT_EQ(i.resource, ssd.readBandwidth());
    EXPECT_DOUBLE_EQ(i.weight, 2.0 * NvmeSsd::kWriteReadInterference);
}

TEST_F(DevicesTest, SsdReadScaleClampsToUnitRange)
{
    const pcie::NodeId sw = topo.addSwitch("sw", topo.root(), 16e9);
    NvmeSsd ssd(net, topo, "ssd0", sw);
    ssd.setReadBandwidthScale(1.7); // clamped, warns
    EXPECT_DOUBLE_EQ(ssd.readBandwidth()->capacity(),
                     NvmeSsd::defaultReadBandwidth);
    ssd.setReadBandwidthScale(-0.3); // clamped to ~0 with a floor
    EXPECT_GT(ssd.readBandwidth()->capacity(), 0.0);
    EXPECT_LE(ssd.readBandwidth()->capacity(),
              1e-9 * NvmeSsd::defaultReadBandwidth * 1.0001);
    ssd.setReadBandwidthScale(1.0);
    EXPECT_DOUBLE_EQ(ssd.readBandwidth()->capacity(),
                     NvmeSsd::defaultReadBandwidth);
}

TEST_F(DevicesTest, PoolFabricScaleClampsToUnitRange)
{
    PrepPool pool(net, "pool");
    const double nominal = pool.fabric()->capacity();
    pool.setFabricBandwidthScale(2.0); // clamped, warns
    EXPECT_DOUBLE_EQ(pool.fabric()->capacity(), nominal);
    pool.setFabricBandwidthScale(-1.0); // clamped to ~0 with a floor
    EXPECT_GT(pool.fabric()->capacity(), 0.0);
    EXPECT_LE(pool.fabric()->capacity(), 1e-9 * nominal * 1.0001);
    pool.setFabricBandwidthScale(1.0);
    EXPECT_DOUBLE_EQ(pool.fabric()->capacity(), nominal);
}

} // namespace
} // namespace tb
