/**
 * @file
 * Cross-module integration tests: the paper's headline claims expressed
 * as invariants over whole-system simulations, plus functional-pipeline
 * to performance-model consistency checks.
 */

#include <gtest/gtest.h>

#include "prep/audio/wave_gen.hh"
#include "prep/jpeg/jpeg_decoder.hh"
#include "prep/pipeline.hh"
#include "trainbox/report.hh"
#include "trainbox/resource_profile.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

namespace tb {
namespace {

SessionResult
runSession(ArchPreset preset, workload::ModelId model, std::size_t n)
{
    ServerConfig cfg;
    cfg.preset = preset;
    cfg.model = model;
    cfg.numAccelerators = n;
    auto server = buildServer(cfg);
    TrainingSession session(*server);
    return session.run(6, 12);
}

TEST(Integration, Fig19OrderingHoldsForEveryModel)
{
    // Baseline <= B+Acc ~ B+Acc+P2P < Gen4 < TrainBox at the paper's
    // 256-accelerator scale. (At intermediate scales the prefetch-window
    // depth, not fabric capacity, can be the binding constraint, so the
    // equalities are only asserted where the paper evaluates them.)
    for (const auto &m : workload::modelZoo()) {
        const double base =
            runSession(ArchPreset::Baseline, m.id, 256).throughput;
        const double acc =
            runSession(ArchPreset::BaselineAccFpga, m.id, 256)
                .throughput;
        const double p2p =
            runSession(ArchPreset::BaselineAccP2p, m.id, 256).throughput;
        const double gen4 =
            runSession(ArchPreset::BaselineAccP2pGen4, m.id, 256)
                .throughput;
        const double tbox =
            runSession(ArchPreset::TrainBox, m.id, 256).throughput;

        EXPECT_GT(acc, 2.0 * base) << m.name;
        EXPECT_NEAR(p2p / acc, 1.0, 0.12) << m.name;
        EXPECT_GT(gen4, 1.6 * p2p) << m.name;
        EXPECT_GT(tbox, 1.5 * gen4) << m.name;
    }
}

TEST(Integration, TrainBoxHitsTargetForEveryModelAt64)
{
    sync::SyncConfig sync_cfg;
    for (const auto &m : workload::modelZoo()) {
        const double target = workload::targetThroughput(m, 64, sync_cfg);
        const double thpt =
            runSession(ArchPreset::TrainBox, m.id, 64).throughput;
        EXPECT_NEAR(thpt, target, 0.03 * target) << m.name;
    }
}

TEST(Integration, SessionAccountingMatchesAnalyticBaseline)
{
    // The DES resource accounting must agree with the closed-form
    // demand model when the baseline is *not* saturated.
    sync::SyncConfig sync_cfg;
    const auto &m = workload::model(workload::ModelId::InceptionV4);
    const SessionResult res = runSession(ArchPreset::Baseline, m.id, 8);
    const HostDemandBreakdown expected =
        requiredHostDemand(m, ArchPreset::Baseline, 8, sync_cfg);
    EXPECT_NEAR(SessionReport::sumCategories(res.cpuCoresByCategory),
                expected.cpuCores, 0.1 * expected.cpuCores);
    EXPECT_NEAR(SessionReport::sumCategories(res.memBwByCategory),
                expected.memBw, 0.1 * expected.memBw);
    EXPECT_NEAR(SessionReport::sumCategories(res.rcBwByCategory),
                expected.rcBw, 0.1 * expected.rcBw);
}

TEST(Integration, PrepLatencyHiddenWhenUnderProvisioned)
{
    // With prefetch, prep latency only surfaces in the step time when
    // prep is the bottleneck: for TrainBox the step time equals compute
    // plus sync.
    const SessionResult res =
        runSession(ArchPreset::TrainBox, workload::ModelId::Resnet50, 64);
    EXPECT_NEAR(res.stepTime, res.computeTime + res.syncTime,
                0.02 * res.stepTime);
}

TEST(Integration, BaselineStepTimeDominatedByPrep)
{
    // Fig 9: 256-accelerator baseline spends ~98% of its time waiting
    // for data preparation.
    const SessionResult res = runSession(
        ArchPreset::Baseline, workload::ModelId::Resnet50, 256);
    EXPECT_GT(res.stepTime, 20.0 * (res.computeTime + res.syncTime));
}

TEST(Integration, FunctionalImageChainMatchesModeledBytes)
{
    // The dataset descriptor's prepared size must equal what the
    // functional pipeline actually produces (bf16 tensor bytes).
    Rng rng(3);
    const auto jpeg_bytes = prep::makeSyntheticJpeg(256, 256, rng);
    prep::ImagePrepPipeline pipe;
    const prep::PreparedImage out = pipe.prepare(jpeg_bytes, rng);
    ASSERT_TRUE(out.ok);
    const workload::DatasetInfo &ds =
        workload::datasetFor(workload::InputType::Image);
    EXPECT_DOUBLE_EQ(ds.itemPreparedBytes,
                     static_cast<double>(out.tensor.size()) * 2.0);
    EXPECT_DOUBLE_EQ(
        ds.itemDecodedBytes,
        static_cast<double>(
            jpeg::decodeJpeg(jpeg_bytes).image.pixels.size()));
}

TEST(Integration, FunctionalAudioChainMatchesModeledBytes)
{
    Rng rng(5);
    const auto wave = audio::generateUtterance({}, rng);
    prep::AudioPrepPipeline pipe;
    const prep::PreparedAudio out = pipe.prepare(wave, rng);
    ASSERT_TRUE(out.ok);
    const workload::DatasetInfo &ds =
        workload::datasetFor(workload::InputType::Audio);
    EXPECT_DOUBLE_EQ(
        ds.itemPreparedBytes,
        static_cast<double>(out.features.frames * out.features.bins) *
            4.0);
    // Stored bytes: 16-bit PCM of the waveform.
    EXPECT_DOUBLE_EQ(ds.itemStoredBytes,
                     static_cast<double>(wave.size()) * 2.0);
}

TEST(Integration, EthernetPlanIsFeasibleForAllWorkloads)
{
    for (const auto &m : workload::modelZoo()) {
        ServerConfig cfg;
        cfg.preset = ArchPreset::TrainBox;
        cfg.model = m.id;
        cfg.numAccelerators = 256;
        const PrepPlan plan = planPreparation(cfg);
        EXPECT_TRUE(plan.ethernetFeasible) << m.name;
    }
}

TEST(Integration, DoublingBoxFpgasRemovesPoolNeed)
{
    // Design-space probe: four FPGAs per train box would cover TF-SR
    // locally (the static-provisioning tradeoff §IV-D discusses).
    ServerConfig cfg;
    cfg.preset = ArchPreset::TrainBox;
    cfg.model = workload::ModelId::TfSr;
    cfg.numAccelerators = 256;
    cfg.box.prepPerBox = 4;
    const PrepPlan plan = planPreparation(cfg);
    EXPECT_DOUBLE_EQ(plan.offloadFraction, 0.0);
    EXPECT_EQ(plan.poolFpgas, 0u);
}

TEST(Integration, SlowerHostOnlyHurtsBaseline)
{
    auto with_cores = [](ArchPreset p, double cores) {
        ServerConfig cfg;
        cfg.preset = p;
        cfg.model = workload::ModelId::Resnet50;
        cfg.numAccelerators = 64;
        cfg.host.cpuCores = cores;
        auto server = buildServer(cfg);
        TrainingSession session(*server);
        return session.run(4, 8).throughput;
    };
    // Halving the host cores halves the baseline...
    EXPECT_NEAR(with_cores(ArchPreset::Baseline, 24.0) /
                    with_cores(ArchPreset::Baseline, 48.0),
                0.5, 0.05);
    // ...but leaves TrainBox untouched (the paper's scalability thesis).
    EXPECT_NEAR(with_cores(ArchPreset::TrainBox, 24.0) /
                    with_cores(ArchPreset::TrainBox, 48.0),
                1.0, 0.01);
}

} // namespace
} // namespace tb
