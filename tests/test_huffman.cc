/**
 * @file
 * Tests for JPEG Huffman coding.
 */

#include <gtest/gtest.h>

#include "prep/jpeg/huffman.hh"

namespace tb {
namespace jpeg {
namespace {

const HuffmanSpec &
specFor(int idx)
{
    switch (idx) {
      case 0:
        return stdDcLuma();
      case 1:
        return stdAcLuma();
      case 2:
        return stdDcChroma();
      default:
        return stdAcChroma();
    }
}

TEST(Huffman, StandardTableSizes)
{
    EXPECT_EQ(stdDcLuma().values.size(), 12u);
    EXPECT_EQ(stdDcChroma().values.size(), 12u);
    EXPECT_EQ(stdAcLuma().values.size(), 162u);
    EXPECT_EQ(stdAcChroma().values.size(), 162u);
}

TEST(Huffman, BitsMatchValueCounts)
{
    for (int i = 0; i < 4; ++i) {
        const HuffmanSpec &spec = specFor(i);
        std::size_t total = 0;
        for (auto b : spec.bits)
            total += b;
        EXPECT_EQ(total, spec.values.size());
    }
}

class HuffmanRoundTrip : public ::testing::TestWithParam<int>
{
};

TEST_P(HuffmanRoundTrip, AllSymbolsSurvive)
{
    const HuffmanSpec &spec = specFor(GetParam());
    const HuffmanEncoder enc(spec);
    const HuffmanDecoder dec(spec);

    std::vector<std::uint8_t> out;
    BitWriter bw(out);
    for (auto sym : spec.values)
        enc.encode(bw, sym);
    bw.flush();

    BitReader br(out.data(), out.size());
    for (auto sym : spec.values)
        ASSERT_EQ(dec.decode(br), sym);
}

INSTANTIATE_TEST_SUITE_P(AllTables, HuffmanRoundTrip,
                         ::testing::Range(0, 4));

TEST(Huffman, CodeLengthsFollowSpecOrder)
{
    // Canonical construction: symbols listed earlier get codes no longer
    // than later symbols.
    const HuffmanSpec &spec = stdAcLuma();
    const HuffmanEncoder enc(spec);
    int prev = 0;
    for (auto sym : spec.values) {
        const int len = enc.codeLength(sym);
        EXPECT_GE(len, prev);
        EXPECT_GE(len, 1);
        EXPECT_LE(len, 16);
        prev = len;
    }
}

TEST(Huffman, EobAndZrlHaveCodes)
{
    const HuffmanEncoder enc(stdAcLuma());
    EXPECT_GT(enc.codeLength(0x00), 0); // EOB
    EXPECT_GT(enc.codeLength(0xF0), 0); // ZRL
}

TEST(Huffman, DecoderRejectsGarbage)
{
    // All-ones longer than any code must fail, not loop.
    const HuffmanDecoder dec(stdDcLuma());
    const std::uint8_t ones[] = {0xFF, 0x00, 0xFF, 0x00, 0xFF, 0x00};
    BitReader br(ones, sizeof(ones));
    const int first = dec.decode(br);
    // DC luma's deepest code is 9 bits of ones = symbol 11; repeated
    // decodes eventually exhaust the buffer and return -1.
    int last = first;
    for (int i = 0; i < 10; ++i)
        last = dec.decode(br);
    EXPECT_EQ(last, -1);
}

TEST(Huffman, MixedStreamRoundTrip)
{
    const HuffmanSpec &dc = stdDcLuma();
    const HuffmanSpec &ac = stdAcLuma();
    const HuffmanEncoder dc_enc(dc), ac_enc(ac);
    const HuffmanDecoder dc_dec(dc), ac_dec(ac);

    std::vector<std::uint8_t> out;
    BitWriter bw(out);
    dc_enc.encode(bw, 5);
    ac_enc.encode(bw, 0xF0);
    ac_enc.encode(bw, 0x21);
    dc_enc.encode(bw, 0);
    bw.flush();

    BitReader br(out.data(), out.size());
    EXPECT_EQ(dc_dec.decode(br), 5);
    EXPECT_EQ(ac_dec.decode(br), 0xF0);
    EXPECT_EQ(ac_dec.decode(br), 0x21);
    EXPECT_EQ(dc_dec.decode(br), 0);
}

} // namespace
} // namespace jpeg
} // namespace tb
