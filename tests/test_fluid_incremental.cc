/**
 * @file
 * Equivalence suite for the incremental fluid solver.
 *
 * The incremental solver (dirty-set tracking + per-component progressive
 * filling) is an optimization, not a model change: for any topology and
 * any arrival/cancel script it must produce the same rates, the same
 * completion times, and the same accounting as re-solving every
 * component on every event (FullResolve). These tests replay randomized
 * scripts — random topologies x random flow arrival/departure schedules
 * — under both modes and compare the full observable trace. The same
 * harness pins metrics-on/off, parallel-on/off, and FlowBatch-vs-
 * unbatched bit-identity, and sanity-checks the legacy coupled
 * GlobalResolve mode (equal up to floating-point reassociation).
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/random.hh"
#include "fluid/fluid.hh"
#include "sim/event_queue.hh"
#include "sim/metrics.hh"

namespace tb {
namespace {

using Mode = FluidNetwork::SolverMode;

// --- randomized script generation ----------------------------------------

struct ScriptDemand
{
    std::size_t res;
    double weight;
};

struct ScriptStart
{
    double at;
    double size;
    double cap;
    double fairWeight;
    std::vector<ScriptDemand> demands;
};

struct ScriptCancel
{
    double at;
    std::size_t startIdx;
};

struct Script
{
    std::vector<double> capacities;
    std::vector<ScriptStart> starts;
    std::vector<ScriptCancel> cancels;
};

Script
makeScript(std::uint64_t seed)
{
    Rng rng(seed);
    Script s;
    const std::size_t nres =
        static_cast<std::size_t>(rng.uniformInt(5, 14));
    for (std::size_t i = 0; i < nres; ++i)
        s.capacities.push_back(rng.uniform(20.0, 200.0));

    double t = 0.0;
    const std::size_t nstarts = 80;
    for (std::size_t i = 0; i < nstarts; ++i) {
        t += rng.uniform(0.0, 0.4);
        ScriptStart st;
        st.at = t;
        st.size = rng.uniform(1.0, 40.0);
        st.cap = rng.uniform() < 0.3 ? rng.uniform(2.0, 20.0) : 0.0;
        st.fairWeight = rng.uniform(0.5, 2.0);
        const std::size_t ndem =
            static_cast<std::size_t>(rng.uniformInt(0, 3));
        for (std::size_t d = 0; d < ndem; ++d) {
            const std::size_t r = static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<std::int64_t>(nres) - 1));
            bool dup = false;
            for (const auto &have : st.demands)
                dup = dup || have.res == r;
            if (!dup)
                st.demands.push_back({r, rng.uniform(0.2, 2.0)});
        }
        if (st.demands.empty() && st.cap <= 0.0)
            st.cap = rng.uniform(2.0, 20.0); // keep the flow constrained
        s.starts.push_back(std::move(st));
    }
    for (std::size_t c = 0; c < 15; ++c) {
        const std::size_t idx = static_cast<std::size_t>(
            rng.uniformInt(0, static_cast<std::int64_t>(nstarts) - 1));
        s.cancels.push_back(
            {s.starts[idx].at + rng.uniform(0.05, 1.5), idx});
    }
    return s;
}

// --- replay harness ------------------------------------------------------

struct RunTrace
{
    std::vector<double> completionTimes;
    std::vector<std::size_t> completionIdx; ///< script start index
    std::vector<double> rateSamples; ///< all flows' rates after each op
    std::vector<double> servedTotals;
    double endTime = 0.0;
};

struct RunConfig
{
    Mode mode = Mode::FullResolve;
    bool parallel = false;
    bool metrics = false;
    bool batchStarts = false; ///< wrap each start op in a FlowBatch
};

RunTrace
replay(const Script &s, const RunConfig &cfg)
{
    EventQueue eq;
    FluidNetwork net(eq);
    net.setSolverMode(cfg.mode);
    if (cfg.parallel) {
        // minFlows=1 forces the parallel path for every scan.
        EXPECT_TRUE(net.setParallelWorkers(4, 1));
    }
    MetricsRegistry reg;
    if (cfg.metrics) {
        reg.enable();
        net.attachMetrics(&reg);
    }

    std::vector<FluidResource *> res;
    for (std::size_t i = 0; i < s.capacities.size(); ++i)
        res.push_back(net.addResource("r" + std::to_string(i),
                                      s.capacities[i]));

    RunTrace trace;
    std::vector<FlowId> ids(s.starts.size(), 0);

    auto sampleRates = [&] {
        for (std::size_t i = 0; i < ids.size(); ++i)
            trace.rateSamples.push_back(
                ids[i] ? net.flowRate(ids[i]) : 0.0);
    };

    for (std::size_t i = 0; i < s.starts.size(); ++i) {
        const ScriptStart &st = s.starts[i];
        eq.schedule(st.at, [&, i] {
            const ScriptStart &start = s.starts[i];
            FlowSpec spec;
            spec.category = "cat" + std::to_string(i % 5);
            spec.size = start.size;
            spec.rateCap = start.cap;
            spec.fairWeight = start.fairWeight;
            for (const auto &d : start.demands)
                spec.demands.push_back({res[d.res], d.weight});
            spec.onComplete = [&trace, i](Time now) {
                trace.completionTimes.push_back(now);
                trace.completionIdx.push_back(i);
            };
            if (cfg.batchStarts) {
                FluidNetwork::FlowBatch batch(net);
                ids[i] = net.startFlow(std::move(spec));
            } else {
                ids[i] = net.startFlow(std::move(spec));
            }
            sampleRates();
        });
    }
    for (const ScriptCancel &c : s.cancels) {
        eq.schedule(c.at, [&, c] {
            if (ids[c.startIdx] != 0)
                net.cancelFlow(ids[c.startIdx]);
            sampleRates();
        });
    }

    eq.run();
    for (const auto &r : net.resources())
        trace.servedTotals.push_back(r->totalServed());
    trace.endTime = eq.now();
    return trace;
}

/** Assert two traces are element-for-element identical. */
void
expectTracesEqual(const RunTrace &a, const RunTrace &b,
                  const char *label)
{
    SCOPED_TRACE(label);
    ASSERT_EQ(a.completionTimes.size(), b.completionTimes.size());
    for (std::size_t i = 0; i < a.completionTimes.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.completionTimes[i], b.completionTimes[i]);
        EXPECT_EQ(a.completionIdx[i], b.completionIdx[i]);
    }
    ASSERT_EQ(a.rateSamples.size(), b.rateSamples.size());
    for (std::size_t i = 0; i < a.rateSamples.size(); ++i)
        EXPECT_DOUBLE_EQ(a.rateSamples[i], b.rateSamples[i]);
    ASSERT_EQ(a.servedTotals.size(), b.servedTotals.size());
    for (std::size_t i = 0; i < a.servedTotals.size(); ++i)
        EXPECT_DOUBLE_EQ(a.servedTotals[i], b.servedTotals[i]);
    EXPECT_DOUBLE_EQ(a.endTime, b.endTime);
}

// --- tests ---------------------------------------------------------------

TEST(FluidIncremental, RandomizedEquivalenceWithFullResolve)
{
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const Script s = makeScript(seed * 0x9e37);
        const RunTrace full = replay(s, {.mode = Mode::FullResolve});
        const RunTrace inc = replay(s, {.mode = Mode::Incremental});
        expectTracesEqual(full, inc, "incremental vs full");
    }
}

TEST(FluidIncremental, GlobalResolveMatchesWithinTolerance)
{
    // The legacy coupled loop reassociates floating-point sums across
    // components, so it is equal only up to tiny relative error.
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const Script s = makeScript(seed * 0xabcd);
        const RunTrace inc = replay(s, {.mode = Mode::Incremental});
        const RunTrace glob = replay(s, {.mode = Mode::GlobalResolve});
        ASSERT_EQ(inc.completionTimes.size(),
                  glob.completionTimes.size());
        for (std::size_t i = 0; i < inc.completionTimes.size(); ++i)
            EXPECT_NEAR(inc.completionTimes[i], glob.completionTimes[i],
                        1e-6 * (1.0 + inc.completionTimes[i]));
        ASSERT_EQ(inc.servedTotals.size(), glob.servedTotals.size());
        for (std::size_t i = 0; i < inc.servedTotals.size(); ++i)
            EXPECT_NEAR(inc.servedTotals[i], glob.servedTotals[i],
                        1e-6 * (1.0 + inc.servedTotals[i]));
    }
}

TEST(FluidIncremental, ParallelScanBitIdentity)
{
    EventQueue probeEq;
    FluidNetwork probe(probeEq);
    if (!probe.setParallelWorkers(0))
        GTEST_SKIP() << "built without TB_PARALLEL_SOLVER";
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const Script s = makeScript(seed * 0x51de);
        const RunTrace serial = replay(s, {.mode = Mode::Incremental});
        const RunTrace par =
            replay(s, {.mode = Mode::Incremental, .parallel = true});
        expectTracesEqual(serial, par, "parallel vs serial");
    }
}

TEST(FluidIncremental, MetricsOnOffBitIdentity)
{
    // Metrics instrumentation must not perturb the simulation.
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const Script s = makeScript(seed * 0x3e77);
        const RunTrace off = replay(s, {.mode = Mode::Incremental});
        const RunTrace on =
            replay(s, {.mode = Mode::Incremental, .metrics = true});
        expectTracesEqual(off, on, "metrics on vs off");
    }
}

TEST(FluidIncremental, FlowBatchBitIdentity)
{
    // Batching a start defers the solve to batch close; at one start
    // per batch the observable behavior is identical to unbatched.
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const Script s = makeScript(seed * 0xba7c);
        const RunTrace plain = replay(s, {.mode = Mode::Incremental});
        const RunTrace batched =
            replay(s, {.mode = Mode::Incremental, .batchStarts = true});
        expectTracesEqual(plain, batched, "batched vs unbatched");
    }
}

TEST(FluidIncremental, BatchedGroupLaunchMatchesSequential)
{
    // k flows launched at one timestamp inside one FlowBatch must get
    // exactly the rates of k sequential startFlow calls.
    auto run = [](bool batch) {
        EventQueue eq;
        FluidNetwork net(eq);
        FluidResource *a = net.addResource("a", 90.0);
        FluidResource *b = net.addResource("b", 60.0);
        std::vector<FlowId> ids;
        auto launchAll = [&] {
            for (int i = 0; i < 6; ++i) {
                FlowSpec spec;
                spec.category = "g";
                spec.size = 100.0 + i;
                spec.fairWeight = 1.0 + 0.25 * i;
                spec.demands = {{a, 1.0}};
                if (i % 2)
                    spec.demands.push_back({b, 0.5});
                ids.push_back(net.startFlow(std::move(spec)));
            }
        };
        if (batch) {
            FluidNetwork::FlowBatch fb(net);
            launchAll();
        } else {
            launchAll();
        }
        std::vector<double> rates;
        for (FlowId id : ids)
            rates.push_back(net.flowRate(id));
        return rates;
    };
    const auto seq = run(false);
    const auto bat = run(true);
    ASSERT_EQ(seq.size(), bat.size());
    for (std::size_t i = 0; i < seq.size(); ++i)
        EXPECT_DOUBLE_EQ(seq[i], bat[i]);
}

TEST(FluidIncremental, CleanComponentsAreSkipped)
{
    // Two disjoint components; mutating one must not re-solve the other.
    EventQueue eq;
    FluidNetwork net(eq);
    FluidResource *a = net.addResource("a", 100.0);
    FluidResource *b = net.addResource("b", 100.0);

    auto start = [&](FluidResource *r, double size) {
        FlowSpec spec;
        spec.category = "x";
        spec.size = size;
        spec.demands = {{r, 1.0}};
        return net.startFlow(std::move(spec));
    };

    start(a, 500.0);
    start(a, 500.0);
    const FlowId onB = start(b, 500.0);
    const auto before = net.solverStats();

    // A fourth flow on `a` dirties only component {a}: 3 flows solved.
    start(a, 500.0);
    const auto after = net.solverStats();
    EXPECT_EQ(after.solves, before.solves + 1);
    EXPECT_EQ(after.componentsSolved, before.componentsSolved + 1);
    EXPECT_EQ(after.flowsSolved, before.flowsSolved + 3);

    // The clean component kept its cached (correct) rate.
    EXPECT_DOUBLE_EQ(net.flowRate(onB), 100.0);
}

TEST(FluidIncremental, TargetedCapacityChangeResolvesOneComponent)
{
    EventQueue eq;
    FluidNetwork net(eq);
    FluidResource *a = net.addResource("a", 100.0);
    FluidResource *b = net.addResource("b", 100.0);

    FlowSpec fa;
    fa.category = "x";
    fa.size = 1000.0;
    fa.demands = {{a, 1.0}};
    const FlowId flowA = net.startFlow(std::move(fa));

    FlowSpec fb;
    fb.category = "x";
    fb.size = 1000.0;
    fb.demands = {{b, 1.0}};
    const FlowId flowB = net.startFlow(std::move(fb));

    const auto before = net.solverStats();
    a->setCapacity(40.0);
    net.capacityChanged(a);
    const auto after = net.solverStats();

    EXPECT_DOUBLE_EQ(net.flowRate(flowA), 40.0);
    EXPECT_DOUBLE_EQ(net.flowRate(flowB), 100.0);
    EXPECT_EQ(after.flowsSolved, before.flowsSolved + 1);

    // The global overload still re-solves everything.
    net.capacityChanged();
    EXPECT_DOUBLE_EQ(net.flowRate(flowA), 40.0);
    EXPECT_DOUBLE_EQ(net.flowRate(flowB), 100.0);
}

TEST(FluidIncremental, FullResolveModeStillSolvesEverything)
{
    EventQueue eq;
    FluidNetwork net(eq);
    net.setSolverMode(Mode::FullResolve);
    FluidResource *a = net.addResource("a", 100.0);
    FluidResource *b = net.addResource("b", 100.0);

    auto start = [&](FluidResource *r) {
        FlowSpec spec;
        spec.category = "x";
        spec.size = 500.0;
        spec.demands = {{r, 1.0}};
        return net.startFlow(std::move(spec));
    };
    start(a);
    const auto before = net.solverStats();
    start(b);
    const auto after = net.solverStats();
    EXPECT_EQ(after.fullSolves, before.fullSolves + 1);
    EXPECT_EQ(after.flowsSolved, before.flowsSolved + 2);
    EXPECT_EQ(after.componentsSolved, before.componentsSolved + 2);
}

} // namespace
} // namespace tb
