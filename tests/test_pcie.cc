/**
 * @file
 * Tests for the PCIe tree topology and routing.
 */

#include <gtest/gtest.h>

#include "pcie/topology.hh"

namespace tb {
namespace {

using pcie::NodeId;
using pcie::Topology;

struct PcieTest : public ::testing::Test
{
    EventQueue eq;
    FluidNetwork net{eq};
    Topology topo{net, "rc", 64e9};

    double
    weightOn(const std::vector<FlowDemand> &demands,
             const FluidResource *res)
    {
        double w = 0.0;
        for (const auto &d : demands)
            if (d.resource == res)
                w += d.weight;
        return w;
    }
};

TEST_F(PcieTest, RootExists)
{
    EXPECT_EQ(topo.root(), 0);
    EXPECT_EQ(topo.node(0).kind, pcie::NodeKind::RootComplex);
    EXPECT_EQ(topo.rcResource()->capacity(), 64e9);
}

TEST_F(PcieTest, TreeConstruction)
{
    const NodeId sw = topo.addSwitch("sw0", topo.root(),
                                     pcie::gen::gen3x16);
    const NodeId dev = topo.addDevice("dev0", sw, pcie::gen::gen3x16);
    EXPECT_EQ(topo.node(sw).parent, topo.root());
    EXPECT_EQ(topo.node(dev).parent, sw);
    EXPECT_EQ(topo.depth(dev), 2);
    EXPECT_EQ(topo.depth(sw), 1);
    EXPECT_EQ(topo.depth(topo.root()), 0);
    EXPECT_EQ(topo.numNodes(), 3u);
}

TEST_F(PcieTest, LcaAndRootCrossing)
{
    const NodeId sw0 = topo.addSwitch("sw0", topo.root(), 16e9);
    const NodeId sw1 = topo.addSwitch("sw1", topo.root(), 16e9);
    const NodeId a = topo.addDevice("a", sw0, 16e9);
    const NodeId b = topo.addDevice("b", sw0, 16e9);
    const NodeId c = topo.addDevice("c", sw1, 16e9);

    EXPECT_EQ(topo.lca(a, b), sw0);
    EXPECT_EQ(topo.lca(a, c), topo.root());
    EXPECT_EQ(topo.lca(a, a), a);
    EXPECT_FALSE(topo.routePassesRoot(a, b));
    EXPECT_TRUE(topo.routePassesRoot(a, c));
    EXPECT_EQ(topo.routeHops(a, b), 2u);
    EXPECT_EQ(topo.routeHops(a, c), 4u);
}

TEST_F(PcieTest, LocalRouteAvoidsRootComplex)
{
    const NodeId sw = topo.addSwitch("sw", topo.root(), 16e9);
    const NodeId a = topo.addDevice("a", sw, 16e9);
    const NodeId b = topo.addDevice("b", sw, 16e9);
    const auto demands = topo.routeDemands(a, b, 10.0);
    EXPECT_DOUBLE_EQ(weightOn(demands, topo.rcResource()), 0.0);
    EXPECT_DOUBLE_EQ(weightOn(demands, topo.node(a).up), 10.0);
    EXPECT_DOUBLE_EQ(weightOn(demands, topo.node(b).down), 10.0);
    // Switch links untouched: traffic turns around inside the switch.
    EXPECT_DOUBLE_EQ(weightOn(demands, topo.node(sw).up), 0.0);
    EXPECT_DOUBLE_EQ(weightOn(demands, topo.node(sw).down), 0.0);
}

TEST_F(PcieTest, CrossTreeP2pChargesRootComplexTwice)
{
    const NodeId sw0 = topo.addSwitch("sw0", topo.root(), 16e9);
    const NodeId sw1 = topo.addSwitch("sw1", topo.root(), 16e9);
    const NodeId a = topo.addDevice("a", sw0, 16e9);
    const NodeId c = topo.addDevice("c", sw1, 16e9);
    const auto demands = topo.routeDemands(a, c, 1.0);
    // Up-and-over: both root ports plus 2x RC (§IV-D).
    EXPECT_DOUBLE_EQ(weightOn(demands, topo.rcResource()), 2.0);
    EXPECT_DOUBLE_EQ(weightOn(demands, topo.node(a).up), 1.0);
    EXPECT_DOUBLE_EQ(weightOn(demands, topo.node(sw0).up), 1.0);
    EXPECT_DOUBLE_EQ(weightOn(demands, topo.node(sw1).down), 1.0);
    EXPECT_DOUBLE_EQ(weightOn(demands, topo.node(c).down), 1.0);
}

TEST_F(PcieTest, HostRouteChargesRootComplexOnce)
{
    const NodeId sw = topo.addSwitch("sw", topo.root(), 16e9);
    const NodeId a = topo.addDevice("a", sw, 16e9);
    const auto to_dev = topo.hostRouteDemands(a, true, 3.0);
    EXPECT_DOUBLE_EQ(weightOn(to_dev, topo.rcResource()), 3.0);
    EXPECT_DOUBLE_EQ(weightOn(to_dev, topo.node(a).down), 3.0);
    EXPECT_DOUBLE_EQ(weightOn(to_dev, topo.node(a).up), 0.0);

    const auto from_dev = topo.hostRouteDemands(a, false, 3.0);
    EXPECT_DOUBLE_EQ(weightOn(from_dev, topo.rcResource()), 3.0);
    EXPECT_DOUBLE_EQ(weightOn(from_dev, topo.node(a).up), 3.0);
    EXPECT_DOUBLE_EQ(weightOn(from_dev, topo.node(a).down), 0.0);
}

TEST_F(PcieTest, SelfRouteIsEmpty)
{
    const NodeId sw = topo.addSwitch("sw", topo.root(), 16e9);
    const NodeId a = topo.addDevice("a", sw, 16e9);
    EXPECT_TRUE(topo.routeDemands(a, a).empty());
}

TEST_F(PcieTest, LinkScalingDoublesEverything)
{
    const NodeId sw = topo.addSwitch("sw", topo.root(), 16e9);
    const NodeId a = topo.addDevice("a", sw, 16e9);
    const Rate rc_before = topo.rcResource()->capacity();
    topo.scaleLinkBandwidth(2.0);
    EXPECT_DOUBLE_EQ(topo.node(a).up->capacity(), 32e9);
    EXPECT_DOUBLE_EQ(topo.node(a).down->capacity(), 32e9);
    EXPECT_DOUBLE_EQ(topo.node(sw).up->capacity(), 32e9);
    EXPECT_DOUBLE_EQ(topo.rcResource()->capacity(), 2.0 * rc_before);
}

TEST_F(PcieTest, DeepRouteTraversesAllLevels)
{
    const NodeId top = topo.addSwitch("top", topo.root(), 16e9);
    const NodeId mid = topo.addSwitch("mid", top, 16e9);
    const NodeId dev = topo.addDevice("dev", mid, 16e9);
    const auto demands = topo.hostRouteDemands(dev, true, 1.0);
    EXPECT_DOUBLE_EQ(weightOn(demands, topo.node(top).down), 1.0);
    EXPECT_DOUBLE_EQ(weightOn(demands, topo.node(mid).down), 1.0);
    EXPECT_DOUBLE_EQ(weightOn(demands, topo.node(dev).down), 1.0);
    EXPECT_EQ(demands.size(), 4u); // 3 links + RC
}

// Malformed attachments are recoverable build errors, not aborts: the
// call returns pcie::kInvalidNode, records the reason, and leaves the tree
// untouched so a builder can reject the machine description cleanly.
TEST(PcieError, AttachUnderDeviceRejected)
{
    EventQueue eq;
    FluidNetwork net(eq);
    Topology topo(net, "rc", 1e9);
    const NodeId dev = topo.addDevice("d", topo.root(), 1e9);
    const std::size_t before = topo.numNodes();
    EXPECT_EQ(topo.addDevice("x", dev, 1e9), pcie::kInvalidNode);
    EXPECT_NE(topo.lastError().find("device"), std::string::npos);
    EXPECT_EQ(topo.numNodes(), before);
    EXPECT_TRUE(topo.node(dev).children.empty());
}

TEST(PcieError, InvalidParentRejected)
{
    EventQueue eq;
    FluidNetwork net(eq);
    Topology topo(net, "rc", 1e9);
    const std::size_t before = topo.numNodes();
    EXPECT_EQ(topo.addSwitch("s", 99, 1e9), pcie::kInvalidNode);
    EXPECT_NE(topo.lastError().find("invalid parent"), std::string::npos);
    EXPECT_EQ(topo.numNodes(), before);

    // A later valid attachment still works and clears nothing it
    // should not: the error string describes only the failed call.
    const NodeId sw = topo.addSwitch("s", topo.root(), 1e9);
    EXPECT_NE(sw, pcie::kInvalidNode);
}

} // namespace
} // namespace tb
