/**
 * @file
 * Tests for the parallel prep executor: determinism across worker
 * counts, graceful shutdown with pending work, empty batches, the
 * callback submission flavour, stats accounting, and an MPMC stress
 * run sized for -fsanitize=thread (see TB_SANITIZE in CMakeLists.txt).
 */

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "prep/audio/wave_gen.hh"
#include "prep/executor/calibration.hh"
#include "prep/executor/prep_executor.hh"
#include "prep/executor/work_queue.hh"

namespace tb {
namespace {

/** Small stored items so the suite stays fast under TSan. */
std::vector<std::vector<std::uint8_t>>
makeJpegs(std::size_t count, int size = 96)
{
    Rng gen(7);
    std::vector<std::vector<std::uint8_t>> jpegs;
    for (std::size_t i = 0; i < count; ++i)
        jpegs.push_back(prep::makeSyntheticJpeg(size, size, gen));
    return jpegs;
}

std::vector<std::vector<double>>
makeWaves(std::size_t count, double duration_sec = 0.3)
{
    Rng gen(11);
    audio::WaveGenConfig cfg;
    cfg.durationSec = duration_sec;
    std::vector<std::vector<double>> waves;
    for (std::size_t i = 0; i < count; ++i)
        waves.push_back(audio::generateUtterance(cfg, gen));
    return waves;
}

prep::ExecutorConfig
smallImageConfig(std::size_t workers)
{
    prep::ExecutorConfig cfg;
    cfg.numWorkers = workers;
    cfg.baseSeed = 99;
    cfg.image.cropWidth = 64;
    cfg.image.cropHeight = 64;
    return cfg;
}

/** Results of one full image+audio run at the given worker count. */
struct RunOutput
{
    std::vector<std::vector<float>> imageTensors;
    std::vector<std::vector<double>> audioFeatures;
};

RunOutput
runBoth(std::size_t workers)
{
    prep::PrepExecutor executor(smallImageConfig(workers));
    auto image_futures = executor.submitImageBatch(makeJpegs(12));
    auto audio_futures = executor.submitAudioBatch(makeWaves(6));

    RunOutput out;
    for (auto &f : image_futures) {
        prep::PreparedImage img = f.get();
        EXPECT_TRUE(img.ok) << img.error;
        out.imageTensors.push_back(std::move(img.tensor));
    }
    for (auto &f : audio_futures) {
        prep::PreparedAudio a = f.get();
        EXPECT_TRUE(a.ok);
        out.audioFeatures.push_back(std::move(a.features.power));
    }
    return out;
}

// The determinism guarantee: per-item RNG streams derived from
// (base seed, item index) make the output independent of worker count
// and scheduling. Futures come back in item order, so element-wise
// comparison is the "sorted by item index" check.
TEST(PrepExecutor, DeterministicAcrossWorkerCounts)
{
    const RunOutput ref = runBoth(1);
    ASSERT_EQ(ref.imageTensors.size(), 12u);
    ASSERT_EQ(ref.audioFeatures.size(), 6u);

    for (std::size_t workers : {2u, 8u}) {
        const RunOutput got = runBoth(workers);
        ASSERT_EQ(got.imageTensors.size(), ref.imageTensors.size());
        for (std::size_t i = 0; i < ref.imageTensors.size(); ++i)
            EXPECT_EQ(got.imageTensors[i], ref.imageTensors[i])
                << "image tensor " << i << " differs at " << workers
                << " workers";
        ASSERT_EQ(got.audioFeatures.size(), ref.audioFeatures.size());
        for (std::size_t i = 0; i < ref.audioFeatures.size(); ++i)
            EXPECT_EQ(got.audioFeatures[i], ref.audioFeatures[i])
                << "audio features " << i << " differ at " << workers
                << " workers";
    }
}

TEST(PrepExecutor, ShutdownDrainsPendingWork)
{
    prep::ExecutorConfig cfg = smallImageConfig(1);
    cfg.queueCapacity = 4; // force most of the batch to be pending
    prep::PrepExecutor executor(cfg);

    auto futures = executor.submitImageBatch(makeJpegs(16, 80));
    executor.shutdown();

    for (auto &f : futures) {
        prep::PreparedImage img = f.get();
        EXPECT_TRUE(img.ok) << img.error;
    }
    EXPECT_DOUBLE_EQ(executor.statsSnapshot().itemsPrepared, 16.0);
}

TEST(PrepExecutor, SubmitAfterShutdownFailsFast)
{
    prep::PrepExecutor executor(smallImageConfig(2));
    executor.shutdown();

    auto futures = executor.submitImageBatch(makeJpegs(2, 80));
    ASSERT_EQ(futures.size(), 2u);
    for (auto &f : futures) {
        prep::PreparedImage img = f.get();
        EXPECT_FALSE(img.ok);
        EXPECT_EQ(img.error, "executor shut down");
    }

    auto audio_futures = executor.submitAudioBatch(makeWaves(2));
    for (auto &f : audio_futures)
        EXPECT_FALSE(f.get().ok);
}

TEST(PrepExecutor, EmptyBatchesComplete)
{
    prep::PrepExecutor executor(smallImageConfig(2));
    EXPECT_TRUE(executor.submitImageBatch({}).empty());
    EXPECT_TRUE(executor.submitAudioBatch({}).empty());
    executor.shutdown();
    EXPECT_DOUBLE_EQ(executor.statsSnapshot().itemsPrepared, 0.0);
}

TEST(PrepExecutor, CallbackFlavourDeliversEveryIndex)
{
    prep::PrepExecutor executor(smallImageConfig(4));

    std::atomic<std::size_t> delivered{0};
    std::atomic<std::uint64_t> index_mask{0};
    executor.submitImageBatch(
        makeJpegs(8, 80),
        [&](std::size_t index, prep::PreparedImage &&img) {
            EXPECT_TRUE(img.ok) << img.error;
            index_mask.fetch_or(1ull << index);
            delivered.fetch_add(1);
        });
    executor.shutdown();
    EXPECT_EQ(delivered.load(), 8u);
    EXPECT_EQ(index_mask.load(), 0xffull);
}

TEST(PrepExecutor, StatsCountItemsAndBytes)
{
    prep::PrepExecutor executor(smallImageConfig(2));
    auto jpegs = makeJpegs(4, 80);
    double bytes_in = 0.0;
    for (const auto &j : jpegs)
        bytes_in += static_cast<double>(j.size());

    for (auto &f : executor.submitImageBatch(std::move(jpegs)))
        f.wait();
    for (auto &f : executor.submitAudioBatch(makeWaves(2)))
        f.wait();

    const prep::ExecutorStatsSnapshot s = executor.statsSnapshot();
    EXPECT_DOUBLE_EQ(s.itemsPrepared, 6.0);
    EXPECT_DOUBLE_EQ(s.imageItems, 4.0);
    EXPECT_DOUBLE_EQ(s.audioItems, 2.0);
    EXPECT_DOUBLE_EQ(s.itemsFailed, 0.0);
    EXPECT_GE(s.bytesIn, bytes_in); // images plus the audio PCM
    // 64x64x3 bf16 tensors: 4 items x 24576 B, plus audio features.
    EXPECT_GT(s.bytesOut, 4.0 * 64 * 64 * 3 * 2 - 1.0);
    EXPECT_GT(s.imagePrepSeconds, 0.0);
    EXPECT_GT(s.audioPrepSeconds, 0.0);
}

TEST(PrepExecutor, CorruptItemReportsFailureNotCrash)
{
    prep::PrepExecutor executor(smallImageConfig(2));
    std::vector<std::vector<std::uint8_t>> bogus;
    bogus.push_back({0x00, 0x01, 0x02, 0x03});
    auto futures = executor.submitImageBatch(std::move(bogus));
    prep::PreparedImage img = futures[0].get();
    EXPECT_FALSE(img.ok);
    EXPECT_FALSE(img.error.empty());
    executor.shutdown();
    EXPECT_DOUBLE_EQ(executor.statsSnapshot().itemsFailed, 1.0);
}

// A poison item is retried a bounded number of times in-task, then
// quarantined with its submission index and error — never re-enqueued.
TEST(PrepExecutor, PoisonItemQuarantinedAfterBoundedRetries)
{
    prep::ExecutorConfig cfg = smallImageConfig(2);
    cfg.maxItemRetries = 2;
    prep::PrepExecutor executor(cfg);

    auto jpegs = makeJpegs(3, 80);
    jpegs[1] = {0xDE, 0xAD, 0xBE, 0xEF}; // poison at index 1
    auto futures = executor.submitImageBatch(std::move(jpegs));
    EXPECT_TRUE(futures[0].get().ok);
    prep::PreparedImage poison = futures[1].get();
    EXPECT_FALSE(poison.ok);
    EXPECT_FALSE(poison.error.empty());
    EXPECT_TRUE(futures[2].get().ok);
    executor.shutdown();

    const prep::ExecutorStatsSnapshot s = executor.statsSnapshot();
    EXPECT_DOUBLE_EQ(s.itemsPrepared, 2.0);
    EXPECT_DOUBLE_EQ(s.itemsFailed, 1.0);
    // The deterministic decode fails on every attempt: the initial try
    // plus exactly maxItemRetries retries, no more.
    EXPECT_DOUBLE_EQ(s.itemsRetried, 2.0);
    EXPECT_DOUBLE_EQ(s.itemsQuarantined, 1.0);

    const auto quarantined = executor.quarantined();
    ASSERT_EQ(quarantined.size(), 1u);
    EXPECT_EQ(quarantined[0].itemIndex, 1u);
    EXPECT_EQ(quarantined[0].error, poison.error);
}

// Attempt 0 uses the same per-item stream whether or not retries are
// enabled, so turning the policy on cannot change healthy outputs.
TEST(PrepExecutor, RetryPolicyDoesNotPerturbHealthyItems)
{
    auto run = [](std::size_t retries) {
        prep::ExecutorConfig cfg = smallImageConfig(2);
        cfg.maxItemRetries = retries;
        prep::PrepExecutor executor(cfg);
        std::vector<std::vector<float>> tensors;
        for (auto &f : executor.submitImageBatch(makeJpegs(6, 80)))
            tensors.push_back(f.get().tensor);
        const prep::ExecutorStatsSnapshot s = executor.statsSnapshot();
        EXPECT_DOUBLE_EQ(s.itemsRetried, 0.0);
        EXPECT_DOUBLE_EQ(s.itemsQuarantined, 0.0);
        EXPECT_TRUE(executor.quarantined().empty());
        return tensors;
    };
    EXPECT_EQ(run(0), run(3));
}

// MPMC stress: >=1000 items through >=4 workers with a tight queue
// bound, plus a concurrent audio producer thread. Run under
// -DTB_SANITIZE=thread to validate the locking protocol.
TEST(PrepExecutor, StressManyItemsManyWorkers)
{
    prep::ExecutorConfig cfg = smallImageConfig(4);
    cfg.queueCapacity = 32;
    prep::PrepExecutor executor(cfg);

    // Cycle a few distinct stored items; each submission still gets its
    // own RNG stream so the prepared tensors differ.
    const auto base = makeJpegs(4, 64);
    std::vector<std::vector<std::uint8_t>> jpegs;
    constexpr std::size_t kImages = 1000;
    jpegs.reserve(kImages);
    for (std::size_t i = 0; i < kImages; ++i)
        jpegs.push_back(base[i % base.size()]);

    std::atomic<std::size_t> audio_ok{0};
    std::thread audio_producer([&] {
        auto futures = executor.submitAudioBatch(makeWaves(24, 0.2));
        for (auto &f : futures)
            if (f.get().ok)
                audio_ok.fetch_add(1);
    });

    std::size_t image_ok = 0;
    for (auto &f : executor.submitImageBatch(std::move(jpegs)))
        if (f.get().ok)
            ++image_ok;
    audio_producer.join();
    executor.shutdown();

    EXPECT_EQ(image_ok, kImages);
    EXPECT_EQ(audio_ok.load(), 24u);
    const prep::ExecutorStatsSnapshot s = executor.statsSnapshot();
    EXPECT_DOUBLE_EQ(s.itemsPrepared, static_cast<double>(kImages + 24));
}

TEST(BoundedWorkQueue, CloseUnblocksProducerAndPreservesItem)
{
    prep::BoundedWorkQueue<int> q(1);
    int a = 1;
    ASSERT_TRUE(q.push(a));

    std::atomic<bool> pushed{false};
    int b = 2;
    std::thread producer([&] {
        pushed.store(q.push(b)); // blocks: queue full
    });
    while (q.size() != 1)
        std::this_thread::yield();
    q.close();
    producer.join();
    EXPECT_FALSE(pushed.load());
    EXPECT_EQ(b, 2); // rejected item left intact

    int out = 0;
    EXPECT_TRUE(q.pop(out)); // drain what was queued before close
    EXPECT_EQ(out, 1);
    EXPECT_FALSE(q.pop(out)); // closed and empty
}

TEST(MeasurePrepThroughput, ReportsPositiveRates)
{
    prep::ThroughputMeasureConfig cfg;
    cfg.numWorkers = 2;
    cfg.imageItems = 4;
    cfg.audioItems = 2;
    const prep::PrepThroughputMeasurement m =
        prep::measurePrepThroughput(cfg);
    EXPECT_EQ(m.numWorkers, 2u);
    EXPECT_GT(m.imageSamplesPerSec, 0.0);
    EXPECT_GT(m.audioSamplesPerSec, 0.0);
    EXPECT_GT(m.imageCoreSecPerSample, 0.0);
    EXPECT_GT(m.audioCoreSecPerSample, 0.0);
}

} // namespace
} // namespace tb
