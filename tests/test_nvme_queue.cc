/**
 * @file
 * Tests for the NVMe queue-pair model and the SSD command executor,
 * including the full §V-C P2P path: an FPGA-side driver submits reads,
 * the SSD DMA-writes the data into a peer BAR resolved through the
 * address map — no host involvement.
 */

#include <map>

#include <gtest/gtest.h>

#include "devices/nvme_queue.hh"
#include "pcie/address_map.hh"

namespace tb {
namespace nvme {
namespace {

std::vector<std::uint8_t>
patternMedia(std::size_t blocks)
{
    std::vector<std::uint8_t> media(blocks * kBlockBytes);
    for (std::size_t i = 0; i < media.size(); ++i)
        media[i] = static_cast<std::uint8_t>((i * 7 + 13) & 0xFF);
    return media;
}

TEST(NvmeQueue, SubmitFetchRoundTrip)
{
    QueuePair qp(8);
    Command cmd;
    cmd.cid = 42;
    cmd.slba = 5;
    cmd.nlb = 3;
    cmd.prp = 0x1000;
    EXPECT_TRUE(qp.submit(cmd));
    EXPECT_EQ(qp.submissionsPending(), 1u);

    Command got;
    ASSERT_TRUE(qp.fetch(&got));
    EXPECT_EQ(got.cid, 42);
    EXPECT_EQ(got.slba, 5u);
    EXPECT_EQ(got.nlb, 3u);
    EXPECT_EQ(qp.submissionsPending(), 0u);
    EXPECT_FALSE(qp.fetch(&got));
}

TEST(NvmeQueue, SubmissionQueueFillsAtDepthMinusOne)
{
    QueuePair qp(4);
    Command cmd;
    EXPECT_TRUE(qp.submit(cmd));
    EXPECT_TRUE(qp.submit(cmd));
    EXPECT_TRUE(qp.submit(cmd));
    EXPECT_TRUE(qp.sqFull());
    EXPECT_FALSE(qp.submit(cmd)); // one slot kept empty
    Command got;
    ASSERT_TRUE(qp.fetch(&got));
    EXPECT_TRUE(qp.submit(cmd)); // space again
}

TEST(NvmeQueue, CompletionsCarryAlternatingPhasePerLap)
{
    QueuePair qp(4);
    Completion c;
    // First lap: phase 1.
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(qp.postCompletion(static_cast<std::uint16_t>(i), 0));
        ASSERT_TRUE(qp.poll(&c));
        EXPECT_TRUE(c.phase) << i;
    }
    // Second lap: phase 0.
    for (int i = 4; i < 8; ++i) {
        ASSERT_TRUE(qp.postCompletion(static_cast<std::uint16_t>(i), 0));
        ASSERT_TRUE(qp.poll(&c));
        EXPECT_FALSE(c.phase) << i;
    }
}

TEST(NvmeQueue, RingWrapsManyTimes)
{
    QueuePair qp(4);
    for (std::uint16_t i = 0; i < 100; ++i) {
        Command cmd;
        cmd.cid = i;
        ASSERT_TRUE(qp.submit(cmd));
        Command got;
        ASSERT_TRUE(qp.fetch(&got));
        ASSERT_EQ(got.cid, i);
    }
}

TEST(NvmeExecutor, ReadsDeliverMediaBytes)
{
    QueuePair qp(16);
    SsdCommandExecutor ssd(qp, patternMedia(64));

    Command cmd;
    cmd.cid = 1;
    cmd.slba = 2;
    cmd.nlb = 1; // 2 blocks
    cmd.prp = 0xABCD'0000;
    ASSERT_TRUE(qp.submit(cmd));

    std::map<std::uint64_t, std::vector<std::uint8_t>> received;
    EXPECT_EQ(ssd.processAll([&](std::uint64_t addr,
                                 const std::vector<std::uint8_t> &d) {
        received[addr] = d;
    }),
              1u);

    ASSERT_EQ(received.size(), 1u);
    const auto &data = received[0xABCD'0000];
    ASSERT_EQ(data.size(), 2u * kBlockBytes);
    for (std::size_t i = 0; i < data.size(); ++i)
        ASSERT_EQ(data[i], ssd.media()[2 * kBlockBytes + i]);

    Completion c;
    ASSERT_TRUE(qp.poll(&c));
    EXPECT_EQ(c.cid, 1);
    EXPECT_EQ(c.status, kStatusSuccess);
}

TEST(NvmeExecutor, OutOfRangeReadFailsCleanly)
{
    QueuePair qp(8);
    SsdCommandExecutor ssd(qp, patternMedia(8));
    Command cmd;
    cmd.cid = 9;
    cmd.slba = 7;
    cmd.nlb = 4; // blocks 7..11 of an 8-block drive
    ASSERT_TRUE(qp.submit(cmd));

    bool dma_called = false;
    ssd.processAll([&](std::uint64_t, const std::vector<std::uint8_t> &) {
        dma_called = true;
    });
    EXPECT_FALSE(dma_called);
    Completion c;
    ASSERT_TRUE(qp.poll(&c));
    EXPECT_EQ(c.status, kStatusLbaOutOfRange);
}

TEST(NvmeExecutor, BatchOfCommandsCompletesInOrder)
{
    QueuePair qp(32);
    SsdCommandExecutor ssd(qp, patternMedia(128));
    for (std::uint16_t i = 0; i < 10; ++i) {
        Command cmd;
        cmd.cid = i;
        cmd.slba = i;
        cmd.nlb = 0;
        ASSERT_TRUE(qp.submit(cmd));
    }
    EXPECT_EQ(ssd.processAll(
                  [](std::uint64_t, const std::vector<std::uint8_t> &) {
                  }),
              10u);
    Completion c;
    for (std::uint16_t i = 0; i < 10; ++i) {
        ASSERT_TRUE(qp.poll(&c));
        EXPECT_EQ(c.cid, i);
    }
    EXPECT_FALSE(qp.poll(&c));
}

TEST(NvmeP2p, SsdToFpgaPathAvoidsTheHost)
{
    // Full §V-C scenario: SSD and FPGA under one train-box switch; the
    // FPGA's queue pair drives a read whose destination is the FPGA's
    // own BAR. The DMA route, resolved through the address map, never
    // touches the root complex.
    EventQueue eq;
    FluidNetwork net(eq);
    pcie::Topology topo(net, "rc", 64e9);
    const pcie::NodeId box = topo.addSwitch("tbox", topo.root(), 16e9);
    const pcie::NodeId ssd_node = topo.addDevice("ssd", box, 4e9);
    const pcie::NodeId fpga_node = topo.addDevice("fpga", box, 16e9);
    const pcie::AddressMap map(topo);

    QueuePair qp(8); // lives in FPGA memory
    SsdCommandExecutor ssd(qp, patternMedia(32));

    Command cmd;
    cmd.cid = 7;
    cmd.slba = 0;
    cmd.nlb = 7; // 4 KiB, one JPEG-ish chunk
    cmd.prp = map.deviceBar(fpga_node).base + 0x100;
    ASSERT_TRUE(qp.submit(cmd));

    std::vector<pcie::NodeId> dma_path;
    std::size_t bytes = 0;
    ssd.processAll([&](std::uint64_t addr,
                       const std::vector<std::uint8_t> &data) {
        dma_path = map.route(ssd_node, addr);
        bytes = data.size();
    });

    EXPECT_EQ(bytes, 8u * kBlockBytes);
    ASSERT_FALSE(dma_path.empty());
    EXPECT_EQ(dma_path.back(), fpga_node);
    for (pcie::NodeId hop : dma_path)
        EXPECT_NE(hop, topo.root()) << "P2P DMA crossed the RC";

    Completion c;
    ASSERT_TRUE(qp.poll(&c));
    EXPECT_EQ(c.status, kStatusSuccess);
}

} // namespace
} // namespace nvme
} // namespace tb
