/**
 * @file
 * Tests for multi-job rack planning (§V-D) and partial reconfiguration
 * cost (§V-C).
 */

#include <gtest/gtest.h>

#include "fpga/engine_library.hh"
#include "trainbox/multi_job.hh"

namespace tb {
namespace {

using workload::ModelId;

TEST(MultiJob, SingleUnderloadedJobHasSurplus)
{
    const RackPlan plan =
        planRack({{ModelId::InceptionV4, 64}}, 8);
    ASSERT_EQ(plan.jobs.size(), 1u);
    const JobAllocation &j = plan.jobs[0];
    EXPECT_TRUE(plan.feasible);
    EXPECT_EQ(j.boxes, 8u);
    EXPECT_GT(j.surplusFpgas, 0u);
    EXPECT_EQ(j.deficitFpgas, 0u);
    EXPECT_EQ(plan.externalPoolFpgas, 0u);
}

TEST(MultiJob, SingleAudioJobNeedsExternalPoolWhenAlone)
{
    const RackPlan plan = planRack({{ModelId::TfSr, 64}}, 8);
    const JobAllocation &j = plan.jobs[0];
    EXPECT_GT(j.deficitFpgas, 0u);
    EXPECT_EQ(j.borrowedFpgas, 0u); // nobody to borrow from
    EXPECT_EQ(j.externalFpgas, j.deficitFpgas);
    EXPECT_EQ(plan.externalPoolFpgas, j.deficitFpgas);
}

TEST(MultiJob, ImageJobLendsToAudioJob)
{
    // The paper's §V-D scenario: underutilized image-job FPGAs serve as
    // the audio job's prep-pool.
    const RackPlan plan = planRack(
        {{ModelId::InceptionV4, 128}, {ModelId::TfSr, 128}}, 32);
    ASSERT_EQ(plan.jobs.size(), 2u);
    EXPECT_TRUE(plan.feasible);
    const JobAllocation &image = plan.jobs[0];
    const JobAllocation &audio = plan.jobs[1];
    EXPECT_GT(image.surplusFpgas, 0u);
    EXPECT_GT(audio.deficitFpgas, 0u);
    EXPECT_GT(audio.borrowedFpgas, 0u);
    EXPECT_EQ(audio.borrowedFpgas + audio.externalFpgas,
              audio.deficitFpgas);
    EXPECT_EQ(plan.fpgasLent, audio.borrowedFpgas);
    // The image job has plenty of idle decode capacity: no external
    // FPGAs should be needed here.
    EXPECT_EQ(plan.externalPoolFpgas, 0u);
}

TEST(MultiJob, RackCapacityIsChecked)
{
    const RackPlan ok = planRack({{ModelId::Resnet50, 128}}, 16);
    EXPECT_TRUE(ok.feasible);
    const RackPlan too_small = planRack({{ModelId::Resnet50, 256}}, 16);
    EXPECT_FALSE(too_small.feasible);
    EXPECT_EQ(too_small.boxesUsed, 32u);
    EXPECT_EQ(too_small.boxesAvailable, 16u);
}

TEST(MultiJob, SmallerJobsSeeLowerSyncOverhead)
{
    // §II footnote 2: each job syncs only its own accelerators.
    const RackPlan plan = planRack(
        {{ModelId::Vgg19, 8}, {ModelId::Vgg19, 248}}, 32);
    ASSERT_EQ(plan.jobs.size(), 2u);
    const double small_per_acc =
        plan.jobs[0].demand / 8.0;
    const double large_per_acc = plan.jobs[1].demand / 248.0;
    EXPECT_GT(small_per_acc, large_per_acc);
}

TEST(MultiJob, DeficitsServedLargestFirst)
{
    // One donor, two borrowers; the bigger deficit is served first.
    const RackPlan plan = planRack({{ModelId::InceptionV4, 16},
                                    {ModelId::TfSr, 64},
                                    {ModelId::TfAa, 64}},
                                   32);
    const JobAllocation &tfsr = plan.jobs[1];
    const JobAllocation &tfaa = plan.jobs[2];
    EXPECT_GT(tfaa.deficitFpgas, tfsr.deficitFpgas);
    if (plan.fpgasLent < tfaa.deficitFpgas + tfsr.deficitFpgas)
        EXPECT_GE(tfaa.borrowedFpgas, tfsr.borrowedFpgas);
}

TEST(Reconfig, ImageToAudioKeepsInterfacingBlocks)
{
    const fpga::ReconfigEstimate est = fpga::reconfigurationCost(
        fpga::imageFloorplan(), fpga::audioFloorplan());
    // Audio plan has 6 engines, 2 of which (ethernet, p2p) are resident.
    EXPECT_EQ(est.enginesChanged, 4u);
    EXPECT_GT(est.bitstreamBytes, 0.0);
    EXPECT_GT(est.seconds, 0.0);
    EXPECT_LT(est.seconds, 2.0); // sub-second-scale partial reconfig
}

TEST(Reconfig, IdenticalPlansAreFree)
{
    const fpga::ReconfigEstimate est = fpga::reconfigurationCost(
        fpga::imageFloorplan(), fpga::imageFloorplan());
    EXPECT_EQ(est.enginesChanged, 0u);
    EXPECT_DOUBLE_EQ(est.bitstreamBytes, 0.0);
    EXPECT_DOUBLE_EQ(est.seconds, 0.0);
}

TEST(Reconfig, CostScalesWithChangedLogic)
{
    // Audio -> image reprograms the huge JPEG decoder; image -> audio
    // reprograms the huge spectrogram. Both are large; swapping only a
    // small engine is much cheaper.
    fpga::Floorplan small_from(fpga::xcvu9p());
    small_from.add(fpga::ethernetProtocolEngine());
    small_from.add(fpga::cropEngine());
    fpga::Floorplan small_to(fpga::xcvu9p());
    small_to.add(fpga::ethernetProtocolEngine());
    small_to.add(fpga::mirrorEngine());

    const auto small_est =
        fpga::reconfigurationCost(small_from, small_to);
    const auto big_est = fpga::reconfigurationCost(
        fpga::imageFloorplan(), fpga::audioFloorplan());
    EXPECT_LT(small_est.bitstreamBytes, 0.05 * big_est.bitstreamBytes);
}

} // namespace
} // namespace tb
