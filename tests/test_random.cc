/**
 * @file
 * Tests for the xoshiro256** RNG wrapper.
 */

#include <gtest/gtest.h>

#include "common/random.hh"

namespace tb {
namespace {

TEST(Random, DeterministicForSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Random, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (a() == b())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Random, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Random, UniformMeanNearHalf)
{
    Rng rng(8);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Random, UniformRangeRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

class UniformIntRange
    : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>>
{
};

TEST_P(UniformIntRange, StaysInBoundsAndHitsEndpoints)
{
    const auto [lo, hi] = GetParam();
    Rng rng(11);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 20000; ++i) {
        const std::int64_t v = rng.uniformInt(lo, hi);
        ASSERT_GE(v, lo);
        ASSERT_LE(v, hi);
        hit_lo |= v == lo;
        hit_hi |= v == hi;
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, UniformIntRange,
    ::testing::Values(std::pair<std::int64_t, std::int64_t>{0, 0},
                      std::pair<std::int64_t, std::int64_t>{0, 1},
                      std::pair<std::int64_t, std::int64_t>{-5, 5},
                      std::pair<std::int64_t, std::int64_t>{-3, -1},
                      std::pair<std::int64_t, std::int64_t>{0, 255}));

TEST(Random, GaussianMoments)
{
    Rng rng(13);
    const int n = 200000;
    double sum = 0.0, sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.02);
}

TEST(Random, GaussianScaleAndShift)
{
    Rng rng(17);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Random, SplitStreamsAreIndependent)
{
    Rng parent(19);
    Rng child1 = parent.split();
    Rng child2 = parent.split();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        if (child1() == child2())
            ++same;
    EXPECT_LT(same, 2);
}

} // namespace
} // namespace tb
