/**
 * @file
 * End-to-end JPEG codec tests: round-trip fidelity across qualities and
 * shapes, restart markers, grayscale, and malformed-input handling.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "prep/jpeg/jpeg_decoder.hh"
#include "prep/jpeg/jpeg_encoder.hh"
#include "prep/pipeline.hh"

namespace tb {
namespace jpeg {
namespace {

class JpegQuality : public ::testing::TestWithParam<int>
{
};

TEST_P(JpegQuality, RoundTripPsnr)
{
    Rng rng(11);
    const Image img = prep::makeSyntheticImage(128, 128, rng);
    EncoderOptions opts;
    opts.quality = GetParam();
    const auto bytes = encodeJpeg(img, opts);
    const DecodeResult dec = decodeJpeg(bytes);
    ASSERT_TRUE(dec.ok) << dec.error;
    ASSERT_EQ(dec.image.width, img.width);
    ASSERT_EQ(dec.image.height, img.height);
    ASSERT_EQ(dec.image.channels, 3);
    const double quality_psnr = psnr(img, dec.image);
    EXPECT_GT(quality_psnr, GetParam() >= 85 ? 35.0 : 28.0)
        << "quality " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Qualities, JpegQuality,
                         ::testing::Values(30, 50, 75, 85, 95));

TEST(Jpeg, HigherQualityMeansBiggerAndBetter)
{
    Rng rng(13);
    const Image img = prep::makeSyntheticImage(128, 128, rng);
    EncoderOptions lo, hi;
    lo.quality = 40;
    hi.quality = 95;
    const auto lo_bytes = encodeJpeg(img, lo);
    const auto hi_bytes = encodeJpeg(img, hi);
    EXPECT_LT(lo_bytes.size(), hi_bytes.size());
    const double lo_psnr = psnr(img, decodeJpeg(lo_bytes).image);
    const double hi_psnr = psnr(img, decodeJpeg(hi_bytes).image);
    EXPECT_LT(lo_psnr, hi_psnr);
}

class JpegShape
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(JpegShape, OddDimensionsRoundTrip)
{
    const auto [w, h] = GetParam();
    Rng rng(17);
    const Image img = prep::makeSyntheticImage(w, h, rng);
    const auto bytes = encodeJpeg(img);
    const DecodeResult dec = decodeJpeg(bytes);
    ASSERT_TRUE(dec.ok) << dec.error;
    EXPECT_EQ(dec.image.width, w);
    EXPECT_EQ(dec.image.height, h);
    // The synthetic generator packs the same number of waves/blobs into
    // any canvas, so tiny images are genuinely high-frequency and
    // compress worse; smooth-content fidelity is covered separately.
    EXPECT_GT(psnr(img, dec.image), std::min(w, h) >= 64 ? 28.0 : 15.0);
}

TEST(Jpeg, SmoothContentIsHighFidelityAtAnySize)
{
    for (int sz : {16, 32, 64, 128}) {
        Image img(sz, sz, 3);
        for (int y = 0; y < sz; ++y)
            for (int x = 0; x < sz; ++x)
                for (int c = 0; c < 3; ++c)
                    img.at(x, y, c) =
                        static_cast<std::uint8_t>(64 + x * 2 + y);
        const DecodeResult dec = decodeJpeg(encodeJpeg(img));
        ASSERT_TRUE(dec.ok);
        EXPECT_GT(psnr(img, dec.image), 40.0) << "size " << sz;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, JpegShape,
    ::testing::Values(std::pair<int, int>{16, 16},
                      std::pair<int, int>{17, 16},
                      std::pair<int, int>{37, 23},
                      std::pair<int, int>{8, 64},
                      std::pair<int, int>{255, 33},
                      std::pair<int, int>{1, 1}));

TEST(Jpeg, GrayscaleRoundTrip)
{
    Image gray(64, 48, 1);
    for (int y = 0; y < 48; ++y)
        for (int x = 0; x < 64; ++x)
            gray.at(x, y, 0) =
                static_cast<std::uint8_t>((x * 3 + y * 2) % 256);
    const auto bytes = encodeJpeg(gray);
    const DecodeResult dec = decodeJpeg(bytes);
    ASSERT_TRUE(dec.ok) << dec.error;
    EXPECT_EQ(dec.image.channels, 1);
    EXPECT_GT(psnr(gray, dec.image), 30.0);
}

TEST(Jpeg, RestartMarkersRoundTrip)
{
    Rng rng(19);
    const Image img = prep::makeSyntheticImage(96, 96, rng);
    EncoderOptions opts;
    opts.restartInterval = 3;
    const auto bytes = encodeJpeg(img, opts);
    // The stream must actually contain RST markers.
    int rst_count = 0;
    for (std::size_t i = 0; i + 1 < bytes.size(); ++i)
        if (bytes[i] == 0xFF && bytes[i + 1] >= 0xD0 &&
            bytes[i + 1] <= 0xD7)
            ++rst_count;
    EXPECT_GT(rst_count, 0);

    const DecodeResult dec = decodeJpeg(bytes);
    ASSERT_TRUE(dec.ok) << dec.error;
    // Identical fidelity to the non-restart stream.
    const DecodeResult plain = decodeJpeg(encodeJpeg(img));
    EXPECT_NEAR(psnr(img, dec.image), psnr(img, plain.image), 0.2);
}

TEST(Jpeg, FlatImageCompressesExtremelyWell)
{
    Image flat(64, 64, 3);
    for (auto &p : flat.pixels)
        p = 128;
    const auto bytes = encodeJpeg(flat);
    EXPECT_LT(bytes.size(), 1200u);
    const DecodeResult dec = decodeJpeg(bytes);
    ASSERT_TRUE(dec.ok);
    EXPECT_LT(meanAbsDifference(flat, dec.image), 1.0);
}

TEST(Jpeg, RejectsNonJpeg)
{
    const std::vector<std::uint8_t> junk = {0x00, 0x01, 0x02, 0x03};
    const DecodeResult dec = decodeJpeg(junk);
    EXPECT_FALSE(dec.ok);
    EXPECT_NE(dec.error.find("SOI"), std::string::npos);
}

TEST(Jpeg, RejectsEmptyInput)
{
    EXPECT_FALSE(decodeJpeg(nullptr, 0).ok);
}

TEST(Jpeg, RejectsTruncatedStream)
{
    Rng rng(23);
    auto bytes = prep::makeSyntheticJpeg(64, 64, rng);
    bytes.resize(bytes.size() / 3);
    const DecodeResult dec = decodeJpeg(bytes);
    EXPECT_FALSE(dec.ok);
    EXPECT_FALSE(dec.error.empty());
}

TEST(Jpeg, RejectsProgressiveMarker)
{
    // Craft SOI + SOF2 (progressive) header.
    std::vector<std::uint8_t> data = {0xFF, 0xD8, 0xFF, 0xC2,
                                      0x00, 0x08, 8,    0,
                                      16,   0,    16,   1};
    const DecodeResult dec = decodeJpeg(data);
    EXPECT_FALSE(dec.ok);
    EXPECT_NE(dec.error.find("non-baseline"), std::string::npos);
}

TEST(Jpeg, CorruptScanFailsGracefully)
{
    Rng rng(29);
    auto bytes = prep::makeSyntheticJpeg(64, 64, rng);
    // Zero out a chunk in the middle of the scan.
    for (std::size_t i = bytes.size() / 2;
         i < bytes.size() / 2 + 40 && i < bytes.size(); ++i)
        bytes[i] = 0x55;
    const DecodeResult dec = decodeJpeg(bytes);
    // Either a clean error or a decoded (garbled) image — but no crash
    // and dimensions must be sane if it "succeeded".
    if (dec.ok) {
        EXPECT_EQ(dec.image.width, 64);
        EXPECT_EQ(dec.image.height, 64);
    } else {
        EXPECT_FALSE(dec.error.empty());
    }
}

TEST(Jpeg, FuzzRandomCorruptionNeverCrashes)
{
    Rng rng(31);
    const auto base = prep::makeSyntheticJpeg(48, 48, rng);
    for (int trial = 0; trial < 200; ++trial) {
        auto bytes = base;
        const int flips = static_cast<int>(rng.uniformInt(1, 8));
        for (int f = 0; f < flips; ++f) {
            const std::size_t pos = static_cast<std::size_t>(
                rng.uniformInt(0,
                               static_cast<std::int64_t>(bytes.size()) -
                                   1));
            bytes[pos] = static_cast<std::uint8_t>(rng());
        }
        const DecodeResult dec = decodeJpeg(bytes); // must not crash
        if (dec.ok) {
            EXPECT_GT(dec.image.width, 0);
            EXPECT_GT(dec.image.height, 0);
        }
    }
}

} // namespace
} // namespace jpeg
} // namespace tb
