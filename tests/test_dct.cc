/**
 * @file
 * Tests for the 8x8 DCT pair.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "prep/jpeg/dct.hh"
#include "prep/jpeg/jpeg_common.hh"

namespace tb {
namespace jpeg {
namespace {

TEST(Dct, RoundTripRandomBlocks)
{
    Rng rng(3);
    for (int trial = 0; trial < 20; ++trial) {
        float in[64], coeff[64], out[64];
        for (auto &v : in)
            v = static_cast<float>(rng.uniform(-128.0, 127.0));
        forwardDct8x8(in, coeff);
        inverseDct8x8(coeff, out);
        for (int i = 0; i < 64; ++i)
            ASSERT_NEAR(out[i], in[i], 1e-3);
    }
}

TEST(Dct, ConstantBlockHasOnlyDc)
{
    float in[64], coeff[64];
    for (auto &v : in)
        v = 100.0f;
    forwardDct8x8(in, coeff);
    // DC = 8 * value with orthonormal scaling.
    EXPECT_NEAR(coeff[0], 800.0f, 1e-3);
    for (int i = 1; i < 64; ++i)
        EXPECT_NEAR(coeff[i], 0.0f, 1e-3);
}

TEST(Dct, EnergyIsPreserved)
{
    // Orthonormal transform: Parseval holds.
    Rng rng(5);
    float in[64], coeff[64];
    for (auto &v : in)
        v = static_cast<float>(rng.uniform(-100.0, 100.0));
    forwardDct8x8(in, coeff);
    double e_in = 0.0, e_out = 0.0;
    for (int i = 0; i < 64; ++i) {
        e_in += in[i] * in[i];
        e_out += coeff[i] * coeff[i];
    }
    EXPECT_NEAR(e_out, e_in, 1e-2 * e_in);
}

TEST(Dct, Linearity)
{
    Rng rng(7);
    float a[64], b[64], sum[64], ca[64], cb[64], csum[64];
    for (int i = 0; i < 64; ++i) {
        a[i] = static_cast<float>(rng.uniform(-50.0, 50.0));
        b[i] = static_cast<float>(rng.uniform(-50.0, 50.0));
        sum[i] = a[i] + 2.0f * b[i];
    }
    forwardDct8x8(a, ca);
    forwardDct8x8(b, cb);
    forwardDct8x8(sum, csum);
    for (int i = 0; i < 64; ++i)
        ASSERT_NEAR(csum[i], ca[i] + 2.0f * cb[i], 1e-2);
}

TEST(Dct, HorizontalCosineHitsSingleCoefficient)
{
    // in(x,y) = cos((2x+1) * 3 * pi / 16) excites only (u=3, v=0).
    float in[64], coeff[64];
    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
            in[y * 8 + x] = std::cos((2.0f * x + 1.0f) * 3.0f *
                                     static_cast<float>(M_PI) / 16.0f);
    forwardDct8x8(in, coeff);
    for (int v = 0; v < 8; ++v)
        for (int u = 0; u < 8; ++u) {
            if (u == 3 && v == 0)
                EXPECT_GT(std::fabs(coeff[v * 8 + u]), 1.0f);
            else
                EXPECT_NEAR(coeff[v * 8 + u], 0.0f, 1e-3);
        }
}

TEST(ZigZag, IsAPermutation)
{
    std::array<bool, 64> seen{};
    for (int k = 0; k < 64; ++k) {
        ASSERT_GE(kZigZag[k], 0);
        ASSERT_LT(kZigZag[k], 64);
        EXPECT_FALSE(seen[kZigZag[k]]);
        seen[kZigZag[k]] = true;
    }
    EXPECT_EQ(kZigZag[0], 0);
    EXPECT_EQ(kZigZag[1], 1);
    EXPECT_EQ(kZigZag[2], 8);
    EXPECT_EQ(kZigZag[63], 63);
}

TEST(QuantTables, QualityScaling)
{
    const auto q50 = scaleQuantTable(kLumaQuant, 50);
    const auto q90 = scaleQuantTable(kLumaQuant, 90);
    const auto q10 = scaleQuantTable(kLumaQuant, 10);
    for (int i = 0; i < 64; ++i) {
        // Quality 50 reproduces the base table.
        EXPECT_EQ(q50[i], kLumaQuant[i]);
        EXPECT_LE(q90[i], q50[i]);
        EXPECT_GE(q10[i], q50[i]);
        EXPECT_GE(q90[i], 1);
        EXPECT_LE(q10[i], 255);
    }
}

TEST(QuantTables, Quality100IsNearLossless)
{
    const auto q = scaleQuantTable(kLumaQuant, 100);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(q[i], 1);
}

} // namespace
} // namespace jpeg
} // namespace tb
