/**
 * @file
 * Tests for the nn library: numeric gradient checks, training
 * convergence, and the Fig 5 augmentation claim as an invariant.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "nn/trainer.hh"

namespace tb {
namespace nn {
namespace {

TEST(Matrix, BasicOps)
{
    Matrix a(2, 3);
    a.at(0, 0) = 1;
    a.at(0, 1) = 2;
    a.at(0, 2) = 3;
    a.at(1, 0) = 4;
    a.at(1, 1) = 5;
    a.at(1, 2) = 6;
    Matrix b(3, 2);
    for (std::size_t i = 0; i < 6; ++i)
        b.data()[i] = static_cast<float>(i + 1);
    Matrix c;
    matmul(a, b, c);
    ASSERT_EQ(c.rows(), 2u);
    ASSERT_EQ(c.cols(), 2u);
    EXPECT_FLOAT_EQ(c.at(0, 0), 22.0f);
    EXPECT_FLOAT_EQ(c.at(0, 1), 28.0f);
    EXPECT_FLOAT_EQ(c.at(1, 0), 49.0f);
    EXPECT_FLOAT_EQ(c.at(1, 1), 64.0f);
}

TEST(Matrix, TransposedProductsAgreeWithExplicit)
{
    Rng rng(3);
    Matrix a(4, 3), b(4, 5);
    a.randomize(rng, 1.0);
    b.randomize(rng, 1.0);
    // a^T b via matmulTransA vs manual transpose.
    Matrix at(3, 4);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            at.at(c, r) = a.at(r, c);
    Matrix expected, actual;
    matmul(at, b, expected);
    matmulTransA(a, b, actual);
    for (std::size_t i = 0; i < expected.size(); ++i)
        ASSERT_NEAR(actual.data()[i], expected.data()[i], 1e-5);
}

TEST(Loss, SoftmaxRowsSumToOne)
{
    Rng rng(5);
    Matrix logits(4, 7);
    logits.randomize(rng, 3.0);
    const Matrix probs = softmax(logits);
    for (std::size_t r = 0; r < 4; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < 7; ++c) {
            EXPECT_GE(probs.at(r, c), 0.0f);
            sum += probs.at(r, c);
        }
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(Loss, CrossEntropyOfPerfectPredictionIsSmall)
{
    Matrix logits(1, 3);
    logits.at(0, 0) = 100.0f;
    const LossResult res = softmaxCrossEntropy(logits, {0});
    EXPECT_LT(res.loss, 1e-6);
}

TEST(Loss, GradientMatchesNumericDifference)
{
    // Numeric gradient check of softmax cross-entropy.
    Rng rng(7);
    Matrix logits(2, 5);
    logits.randomize(rng, 1.0);
    const std::vector<int> labels = {1, 3};
    const LossResult res = softmaxCrossEntropy(logits, labels);

    const float eps = 1e-3f;
    for (std::size_t r = 0; r < 2; ++r) {
        for (std::size_t c = 0; c < 5; ++c) {
            Matrix plus = logits, minus = logits;
            plus.at(r, c) += eps;
            minus.at(r, c) -= eps;
            const double num =
                (softmaxCrossEntropy(plus, labels).loss -
                 softmaxCrossEntropy(minus, labels).loss) /
                (2.0 * eps);
            ASSERT_NEAR(res.gradient.at(r, c), num, 1e-3);
        }
    }
}

TEST(Loss, TopKAccuracy)
{
    Matrix logits(2, 4);
    // Row 0: class 2 highest, label 2 -> top-1 hit.
    logits.at(0, 2) = 5.0f;
    logits.at(0, 1) = 4.0f;
    // Row 1: label 3 is second-best -> top-1 miss, top-2 hit.
    logits.at(1, 0) = 9.0f;
    logits.at(1, 3) = 8.0f;
    const std::vector<int> labels = {2, 3};
    EXPECT_DOUBLE_EQ(accuracy(logits, labels), 0.5);
    EXPECT_DOUBLE_EQ(topKAccuracy(logits, labels, 2), 1.0);
}

TEST(Dense, GradientCheck)
{
    // Check dW numerically through a scalar loss L = sum(y).
    Rng rng(9);
    DenseLayer layer(3, 2, rng);
    Matrix x(4, 3);
    x.randomize(rng, 1.0);

    layer.zeroGrad();
    Matrix y = layer.forward(x);
    Matrix dy(4, 2, 1.0f); // dL/dy = 1
    layer.backward(dy);

    const float eps = 1e-3f;
    for (std::size_t i = 0; i < layer.weights().size(); ++i) {
        const float orig = layer.weights().data()[i];
        auto loss_with = [&](float w) {
            layer.weights().data()[i] = w;
            Matrix out = layer.forward(x);
            double sum = 0.0;
            for (std::size_t k = 0; k < out.size(); ++k)
                sum += out.data()[k];
            layer.weights().data()[i] = orig;
            return sum;
        };
        const double num =
            (loss_with(orig + eps) - loss_with(orig - eps)) / (2.0 * eps);
        ASSERT_NEAR(layer.weightGrad().data()[i], num, 2e-2);
    }
}

TEST(Relu, ForwardAndBackward)
{
    ReluLayer relu;
    Matrix x(1, 4);
    x.at(0, 0) = -1.0f;
    x.at(0, 1) = 0.0f;
    x.at(0, 2) = 2.0f;
    x.at(0, 3) = -3.0f;
    const Matrix y = relu.forward(x);
    EXPECT_FLOAT_EQ(y.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(y.at(0, 2), 2.0f);

    Matrix dy(1, 4, 1.0f);
    const Matrix dx = relu.backward(dy);
    EXPECT_FLOAT_EQ(dx.at(0, 0), 0.0f);
    EXPECT_FLOAT_EQ(dx.at(0, 2), 1.0f);
}

TEST(Optimizer, MomentumAcceleratesDescent)
{
    Matrix p(1, 1);
    p.at(0, 0) = 1.0f;
    Matrix g(1, 1);
    g.at(0, 0) = 1.0f;
    SgdOptimizer opt({0.1, 0.9, 0.0});
    opt.attach(&p, &g);
    opt.step();
    EXPECT_NEAR(p.at(0, 0), 0.9f, 1e-6); // v = -0.1
    opt.step();
    EXPECT_NEAR(p.at(0, 0), 0.71f, 1e-6); // v = -0.19
}

TEST(Mlp, OverfitsTinyProblem)
{
    Rng rng(11);
    Mlp model({4, 16, 2}, rng, {0.1, 0.9, 0.0});
    Matrix x(4, 4);
    x.randomize(rng, 1.0);
    const std::vector<int> labels = {0, 1, 0, 1};
    double loss = 0.0;
    for (int i = 0; i < 200; ++i)
        loss = model.trainStep(x, labels);
    EXPECT_LT(loss, 0.05);
    EXPECT_DOUBLE_EQ(accuracy(model.forward(x), labels), 1.0);
}

TEST(Mlp, ParameterCount)
{
    Rng rng(13);
    Mlp model({256, 96, 8}, rng);
    EXPECT_EQ(model.numParameters(), 256u * 96u + 96u + 96u * 8u + 8u);
    EXPECT_EQ(model.inputSize(), 256u);
    EXPECT_EQ(model.numClasses(), 8u);
}

TEST(SynthData, ShapesAreDistinct)
{
    Rng rng(15);
    for (int a = 0; a < kNumShapeClasses; ++a)
        for (int b = a + 1; b < kNumShapeClasses; ++b) {
            const auto ia = renderShape(a, 0, 0, false, 0.0, rng);
            const auto ib = renderShape(b, 0, 0, false, 0.0, rng);
            EXPECT_NE(ia, ib) << shapeName(a) << " vs " << shapeName(b);
        }
}

TEST(SynthData, TranslationMovesPixels)
{
    Rng rng(17);
    const auto base = renderShape(1, 0, 0, false, 0.0, rng);
    const auto moved = renderShape(1, 3, 0, false, 0.0, rng);
    EXPECT_NE(base, moved);
    // Same number of lit pixels (shape fully inside canvas).
    double sum_base = 0.0, sum_moved = 0.0;
    for (std::size_t i = 0; i < base.size(); ++i) {
        sum_base += base[i];
        sum_moved += moved[i];
    }
    EXPECT_DOUBLE_EQ(sum_base, sum_moved);
}

TEST(SynthData, DatasetShapes)
{
    Rng rng(19);
    const ShapeDataset train = makeTrainSet(10, rng);
    EXPECT_EQ(train.size(), 80u);
    EXPECT_EQ(train.inputs.cols(), 256u);
    const ShapeDataset test = makeTestSet(5, 3, rng);
    EXPECT_EQ(test.size(), 40u);
}

TEST(Trainer, AugmentationImprovesGeneralization)
{
    // The Fig 5 claim as a regression test.
    TrainerConfig cfg;
    cfg.epochs = 15;
    cfg.augment = false;
    const double plain =
        trainShapeClassifier(cfg, 99).finalAccuracy();
    cfg.augment = true;
    const double augmented =
        trainShapeClassifier(cfg, 99).finalAccuracy();
    EXPECT_GT(augmented, plain + 0.2);
    EXPECT_GT(augmented, 0.9);
}

TEST(Trainer, LossDecreases)
{
    TrainerConfig cfg;
    cfg.epochs = 10;
    const TrainHistory h = trainShapeClassifier(cfg, 7);
    EXPECT_LT(h.trainLoss.back(), h.trainLoss.front());
}

TEST(Trainer, DeterministicForSeed)
{
    TrainerConfig cfg;
    cfg.epochs = 3;
    const TrainHistory a = trainShapeClassifier(cfg, 42);
    const TrainHistory b = trainShapeClassifier(cfg, 42);
    EXPECT_EQ(a.testAccuracy, b.testAccuracy);
}

} // namespace
} // namespace nn
} // namespace tb
