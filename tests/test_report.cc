/**
 * @file
 * Tests for the consolidated SessionReport: golden-JSON pin of the
 * Fig 9 latency breakdown (Resnet-50, 32 accelerators, baseline),
 * bit-identical throughput with metrics on vs off, bottleneck
 * attribution on the paper presets, exporter well-formedness, and the
 * deprecated SessionResult accessors' delegation.
 */

#include <gtest/gtest.h>

#include "sim/trace.hh"
#include "trainbox/report.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

namespace tb {
namespace {

SessionReport
runReport(ServerConfig cfg)
{
    auto server = buildServer(cfg);
    TrainingSession session(*server);
    return session.runReport(4, 8);
}

// Pinned by tests/test_checkpoint.cc for the metrics-off path; the
// instrumentation must not move it when enabled either.
constexpr double kBaseline32Throughput = 30412.537359822836;

TEST(SessionReport, MetricsDoNotPerturbThroughput)
{
    const SessionReport off = runReport(
        ServerConfig::baseline().withAccelerators(32));
    const SessionReport on = runReport(
        ServerConfig::baseline().withAccelerators(32).withMetrics());
    EXPECT_DOUBLE_EQ(off.throughput(), kBaseline32Throughput);
    EXPECT_DOUBLE_EQ(on.throughput(), kBaseline32Throughput);
    EXPECT_DOUBLE_EQ(on.stepTime(), off.stepTime());
    EXPECT_DOUBLE_EQ(on.prepLatency(), off.prepLatency());
    EXPECT_FALSE(off.hasMetrics);
    EXPECT_TRUE(on.hasMetrics);
}

TEST(SessionReport, GoldenFig9BreakdownResnet50At32)
{
    const SessionReport r = runReport(
        ServerConfig::baseline().withAccelerators(32).withMetrics());
    ASSERT_EQ(r.model, "Resnet-50");
    ASSERT_EQ(r.preset, "Baseline");

    // The Fig 9 decomposition, pinned at the JSON exporter's fixed
    // precision so any drift in the breakdown (or the exporter) fails.
    const std::string json = r.toJson();
    EXPECT_NE(json.find("\"latency_breakdown_pct\": "
                        "{\"transfer\": 11.6275, "
                        "\"formatting\": 56.4630, "
                        "\"augmentation\": 28.7516, "
                        "\"compute\": 3.1542, "
                        "\"sync\": 0.0037, "
                        "\"prep_total\": 96.8421}"),
              std::string::npos)
        << json;

    const SessionReport::LatencyBreakdown lat = r.latency();
    EXPECT_NEAR(lat.prepShare(), 0.968421, 1e-6);
    EXPECT_DOUBLE_EQ(lat.total(),
                     lat.transfer + lat.formatting + lat.augmentation +
                         lat.compute + lat.sync);
}

TEST(SessionReport, BaselineBottleneckIsHostCpu)
{
    const SessionReport r = runReport(
        ServerConfig::baseline().withAccelerators(32).withMetrics());
    const std::vector<Bottleneck> ranked = r.bottlenecks();
    ASSERT_FALSE(ranked.empty());
    EXPECT_EQ(ranked[0].kind, "cpu");
    EXPECT_EQ(ranked[0].resource, "host.cpu");
    EXPECT_GT(ranked[0].utilization, 0.99);
    EXPECT_GT(ranked[0].saturatedFraction, 0.9);
    // The baseline's CPU burns in formatting (Fig 11a).
    EXPECT_EQ(ranked[0].dominantCategory, "formatting");
}

TEST(SessionReport, TrainBoxBottleneckIsTheAccelerator)
{
    const SessionReport r = runReport(
        ServerConfig::trainBox().withAccelerators(32).withMetrics());
    const std::vector<Bottleneck> ranked = r.bottlenecks();
    ASSERT_FALSE(ranked.empty());
    // TrainBox reaches the target: compute itself is the bottleneck.
    EXPECT_EQ(ranked[0].kind, "accelerator");
    EXPECT_GT(ranked[0].utilization, 0.99);
    EXPECT_NEAR(r.targetFraction(), 1.0, 1e-3);

    // Host axes are nearly idle (the point of the design).
    for (const Bottleneck &b : ranked)
        if (b.kind == "cpu")
            EXPECT_LT(b.utilization, 0.2);
}

TEST(SessionReport, MetricsOffFallsBackToHostAxes)
{
    const SessionReport r =
        runReport(ServerConfig::baseline().withAccelerators(32));
    EXPECT_FALSE(r.hasMetrics);
    EXPECT_TRUE(r.resources.empty());
    const std::vector<Bottleneck> ranked = r.bottlenecks();
    ASSERT_EQ(ranked.size(), 3u);
    // Axes are normalized demand/capacity: the baseline's 48 CPU cores
    // run flat out, so the CPU leads the fallback ranking too.
    EXPECT_EQ(ranked[0].kind, "cpu");
    EXPECT_GT(ranked[0].utilization, 0.99);
    EXPECT_EQ(ranked[0].dominantCategory, "formatting");
}

TEST(SessionReport, UtilizationCoversEveryDeviceClass)
{
    const SessionReport r = runReport(
        ServerConfig::trainBox().withAccelerators(32).withMetrics());
    ASSERT_FALSE(r.resources.empty());

    auto has_kind = [&r](const std::string &kind) {
        for (const ResourceUsage &u : r.resources)
            if (u.kind == kind)
                return true;
        return false;
    };
    EXPECT_TRUE(has_kind("cpu"));
    EXPECT_TRUE(has_kind("dram"));
    EXPECT_TRUE(has_kind("root_complex"));
    EXPECT_TRUE(has_kind("ssd_read"));
    EXPECT_TRUE(has_kind("prep_engine"));
    EXPECT_TRUE(has_kind("pcie_link"));
    EXPECT_TRUE(has_kind("accelerator"));

    for (const ResourceUsage &u : r.resources) {
        EXPECT_GE(u.utilization, 0.0) << u.name;
        EXPECT_LE(u.utilization, 1.0 + 1e-9) << u.name;
        EXPECT_GE(u.peak, u.utilization - 1e-9) << u.name;
    }
}

TEST(SessionReport, ClassifyResourceNames)
{
    EXPECT_EQ(classifyResource("host.cpu"), "cpu");
    EXPECT_EQ(classifyResource("host.dram"), "dram");
    EXPECT_EQ(classifyResource("pcie.rc"), "root_complex");
    EXPECT_EQ(classifyResource("tbox0.ssd1.flash"), "ssd_read");
    EXPECT_EQ(classifyResource("tbox0.ssd1.write"), "ssd_write");
    EXPECT_EQ(classifyResource("tbox0.fpga0.engine"), "prep_engine");
    EXPECT_EQ(classifyResource("pool.fpga3.engine"), "pool_engine");
    EXPECT_EQ(classifyResource("tbox0.fpga0.eth"), "ethernet");
    EXPECT_EQ(classifyResource("accbox0.down"), "pcie_link");
    EXPECT_EQ(classifyResource("tbox0.fpga0.up"), "pcie_link");
    EXPECT_EQ(classifyResource("something.else"), "other");
}

TEST(SessionReport, ExportersAreWellFormed)
{
    const SessionReport r = runReport(
        ServerConfig::baseline().withAccelerators(32).withMetrics());

    const std::string json = r.toJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"bottlenecks\""), std::string::npos);
    EXPECT_NE(json.find("\"utilization\""), std::string::npos);
    EXPECT_NE(json.find("\"has_metrics\": true"), std::string::npos);

    const std::string csv = r.toCsv();
    EXPECT_EQ(csv.rfind("section,key,value\n", 0), 0u);
    EXPECT_NE(csv.find("config,preset,Baseline"), std::string::npos);
    EXPECT_NE(csv.find("latency_pct,prep_total,96.8421"),
              std::string::npos);

    TraceWriter trace;
    r.emitCounters(trace);
    EXPECT_GT(trace.numEvents(), 0u);
}

// The accessors below are deprecated in favour of the SessionReport
// API; this test deliberately exercises them to pin the delegation.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
#endif
TEST(SessionResult, DeprecatedAccessorsDelegate)
{
    const SessionReport r =
        runReport(ServerConfig::baseline().withAccelerators(32));
    const SessionResult &res = r.result;
    EXPECT_DOUBLE_EQ(res.cpuCoresUsed(), r.hostCpuCores());
    EXPECT_DOUBLE_EQ(res.memBwUsed(), r.hostMemBw());
    EXPECT_DOUBLE_EQ(res.rcBwUsed(), r.hostRcBw());
    EXPECT_DOUBLE_EQ(res.goodput(2.0 * res.throughput), 0.5);
    EXPECT_DOUBLE_EQ(res.goodput(0.0), 0.0);
    EXPECT_DOUBLE_EQ(res.efficiency(), r.efficiency());
    EXPECT_DOUBLE_EQ(res.efficiency(), 1.0); // no checkpoint overhead
}
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic pop
#endif

TEST(SessionReport, FluentConfigMatchesFieldAssignment)
{
    ServerConfig fields;
    fields.preset = ArchPreset::BaselineAccP2p;
    fields.model = workload::ModelId::Vgg19;
    fields.numAccelerators = 64;
    fields.batchSize = 128;
    fields.prefetchDepth = 3;
    fields.metricsEnabled = true;

    const ServerConfig fluent = ServerConfig::p2p()
                                    .withModel("VGG-19")
                                    .withAccelerators(64)
                                    .withBatchSize(128)
                                    .withPrefetchDepth(3)
                                    .withMetrics();
    EXPECT_EQ(fluent.preset, fields.preset);
    EXPECT_EQ(fluent.model, fields.model);
    EXPECT_EQ(fluent.numAccelerators, fields.numAccelerators);
    EXPECT_EQ(fluent.batchSize, fields.batchSize);
    EXPECT_EQ(fluent.prefetchDepth, fields.prefetchDepth);
    EXPECT_EQ(fluent.metricsEnabled, fields.metricsEnabled);
    EXPECT_TRUE(fluent.validate().empty());
}

} // namespace
} // namespace tb
