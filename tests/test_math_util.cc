/**
 * @file
 * Tests for the numeric helpers.
 */

#include <gtest/gtest.h>

#include "common/math_util.hh"

namespace tb {
namespace {

TEST(MathUtil, Clamp)
{
    EXPECT_EQ(clamp(5, 0, 10), 5);
    EXPECT_EQ(clamp(-1, 0, 10), 0);
    EXPECT_EQ(clamp(11, 0, 10), 10);
    EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(MathUtil, ApproxEqual)
{
    EXPECT_TRUE(approxEqual(1.0, 1.0));
    EXPECT_TRUE(approxEqual(1.0, 1.0 + 1e-12));
    EXPECT_FALSE(approxEqual(1.0, 1.001));
    EXPECT_TRUE(approxEqual(1e12, 1e12 + 1.0, 1e-9));
    EXPECT_TRUE(approxEqual(0.0, 0.0));
}

TEST(MathUtil, MeanAndGeomean)
{
    EXPECT_DOUBLE_EQ(mean({2.0, 4.0, 6.0}), 4.0);
    EXPECT_NEAR(geomean({1.0, 4.0, 16.0}), 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(mean({7.0}), 7.0);
}

class Pow2Case
    : public ::testing::TestWithParam<std::pair<std::uint64_t,
                                                std::uint64_t>>
{
};

TEST_P(Pow2Case, NextPow2)
{
    const auto [in, expected] = GetParam();
    EXPECT_EQ(nextPow2(in), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Values, Pow2Case,
    ::testing::Values(std::pair<std::uint64_t, std::uint64_t>{0, 1},
                      std::pair<std::uint64_t, std::uint64_t>{1, 1},
                      std::pair<std::uint64_t, std::uint64_t>{2, 2},
                      std::pair<std::uint64_t, std::uint64_t>{3, 4},
                      std::pair<std::uint64_t, std::uint64_t>{5, 8},
                      std::pair<std::uint64_t, std::uint64_t>{1023, 1024},
                      std::pair<std::uint64_t, std::uint64_t>{1024, 1024},
                      std::pair<std::uint64_t, std::uint64_t>{1025,
                                                              2048}));

TEST(MathUtil, IsPow2)
{
    EXPECT_FALSE(isPow2(0));
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_FALSE(isPow2(3));
    EXPECT_TRUE(isPow2(1ull << 40));
    EXPECT_FALSE(isPow2((1ull << 40) + 1));
}

TEST(MathUtil, DivCeil)
{
    EXPECT_EQ(divCeil(10, 3), 4);
    EXPECT_EQ(divCeil(9, 3), 3);
    EXPECT_EQ(divCeil(1, 8), 1);
    EXPECT_EQ(divCeil(std::size_t{256}, std::size_t{8}), 32u);
}

} // namespace
} // namespace tb
