/**
 * @file
 * Corruption robustness for the audio prep chain, mirroring
 * test_jpeg_corrupt.cc: malformed waveforms (NaN/Inf samples, empty or
 * too-short signals) and absurd configs (zero hops, non-power-of-two
 * FFTs, insane sample rates) must come back as clean "audio: ..."
 * failures — never crashes, aborts, division by zero, or NaN features.
 * Run under ASan/UBSan via tools/check.sh.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "common/random.hh"
#include "prep/integrity.hh"
#include "prep/pipeline.hh"

namespace tb {
namespace prep {
namespace {

std::vector<double>
toneWaveform(std::size_t n = 4000)
{
    std::vector<double> wave(n);
    for (std::size_t i = 0; i < n; ++i)
        wave[i] = 0.2 * std::sin(0.05 * static_cast<double>(i));
    return wave;
}

/** The chain must return a verdict; failures carry an audio: message. */
void
expectGraceful(const AudioPrepPipeline &pipe, std::vector<double> wave,
               Rng &rng)
{
    const PreparedAudio out = pipe.prepare(std::move(wave), rng);
    if (!out.ok) {
        EXPECT_FALSE(out.error.empty());
    } else {
        // Whatever comes out ok must actually be usable.
        std::string error;
        EXPECT_TRUE(validateAudioFeatures(out.features.power, &error))
            << error;
    }
}

TEST(AudioCorrupt, CleanWaveformPrepares)
{
    AudioPrepPipeline pipe;
    Rng rng(41);
    const PreparedAudio out = pipe.prepare(toneWaveform(), rng);
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_GT(out.features.frames, 0u);
    EXPECT_EQ(out.features.bins, pipe.config().mel.numMels);
}

TEST(AudioCorrupt, NanAndInfSamplesRejectedCleanly)
{
    AudioPrepPipeline pipe;
    Rng rng(42);

    auto nan_wave = toneWaveform();
    nan_wave[100] = std::numeric_limits<double>::quiet_NaN();
    PreparedAudio out = pipe.prepare(nan_wave, rng);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(quarantineReason(out.error), "audio_malformed");

    auto inf_wave = toneWaveform();
    inf_wave.back() = std::numeric_limits<double>::infinity();
    out = pipe.prepare(inf_wave, rng);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(quarantineReason(out.error), "audio_malformed");
}

TEST(AudioCorrupt, DegenerateWaveformsRejectedCleanly)
{
    AudioPrepPipeline pipe;
    Rng rng(43);

    PreparedAudio out = pipe.prepare({}, rng);
    EXPECT_FALSE(out.ok);
    EXPECT_FALSE(out.error.empty());

    // Shorter than one analysis window.
    out = pipe.prepare(std::vector<double>(10, 0.5), rng);
    EXPECT_FALSE(out.ok);
    EXPECT_EQ(quarantineReason(out.error), "audio_malformed");
}

TEST(AudioCorrupt, AbsurdStftConfigsRejectedCleanly)
{
    Rng rng(44);

    AudioPrepConfig zero_hop;
    zero_hop.stft.hopSize = 0; // naively: division by zero
    expectGraceful(AudioPrepPipeline(zero_hop), toneWaveform(), rng);
    EXPECT_FALSE(
        AudioPrepPipeline(zero_hop).prepare(toneWaveform(), rng).ok);

    AudioPrepConfig zero_window;
    zero_window.stft.windowSize = 0;
    EXPECT_FALSE(
        AudioPrepPipeline(zero_window).prepare(toneWaveform(), rng).ok);

    AudioPrepConfig small_fft;
    small_fft.stft.fftSize = 256; // < windowSize: would abort in stft()
    EXPECT_FALSE(
        AudioPrepPipeline(small_fft).prepare(toneWaveform(), rng).ok);

    AudioPrepConfig odd_fft;
    odd_fft.stft.windowSize = 400;
    odd_fft.stft.fftSize = 500; // not a power of two
    EXPECT_FALSE(
        AudioPrepPipeline(odd_fft).prepare(toneWaveform(), rng).ok);
}

TEST(AudioCorrupt, AbsurdSampleRatesAndMelConfigsRejectedCleanly)
{
    Rng rng(45);

    AudioPrepConfig zero_rate;
    zero_rate.mel.sampleRate = 0.0;
    EXPECT_FALSE(
        AudioPrepPipeline(zero_rate).prepare(toneWaveform(), rng).ok);

    AudioPrepConfig negative_rate;
    negative_rate.mel.sampleRate = -16000.0;
    EXPECT_FALSE(
        AudioPrepPipeline(negative_rate).prepare(toneWaveform(), rng).ok);

    AudioPrepConfig nan_rate;
    nan_rate.mel.sampleRate = std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(
        AudioPrepPipeline(nan_rate).prepare(toneWaveform(), rng).ok);

    // fMax above Nyquist: filterbank rows would alias off the spectrum.
    AudioPrepConfig high_fmax;
    high_fmax.mel.sampleRate = 8000.0;
    high_fmax.mel.fMax = 8000.0;
    EXPECT_FALSE(
        AudioPrepPipeline(high_fmax).prepare(toneWaveform(), rng).ok);

    AudioPrepConfig inverted;
    inverted.mel.fMin = 4000.0;
    inverted.mel.fMax = 100.0;
    EXPECT_FALSE(
        AudioPrepPipeline(inverted).prepare(toneWaveform(), rng).ok);

    AudioPrepConfig zero_mels;
    zero_mels.mel.numMels = 0;
    EXPECT_FALSE(
        AudioPrepPipeline(zero_mels).prepare(toneWaveform(), rng).ok);
}

TEST(AudioCorrupt, SingleBitFlipsNeverCrash)
{
    // The audio analogue of JpegCorrupt.SingleBitFlipsNeverCrash: flip
    // one bit of the raw double buffer per trial. Most flips perturb a
    // sample harmlessly; exponent/NaN-payload flips must be screened
    // out, and nothing may crash or emit non-finite features.
    AudioPrepPipeline pipe;
    const auto base = toneWaveform(2000);
    Rng flip_rng(46);
    Rng rng(47);
    for (int trial = 0; trial < 500; ++trial) {
        auto wave = base;
        flipRandomBit(wave, flip_rng);
        expectGraceful(pipe, std::move(wave), rng);
    }
}

TEST(AudioCorrupt, MultiBitFlipsNeverCrash)
{
    AudioPrepPipeline pipe;
    const auto base = toneWaveform(2000);
    Rng flip_rng(48);
    Rng rng(49);
    for (int trial = 0; trial < 100; ++trial) {
        auto wave = base;
        const int flips = static_cast<int>(flip_rng.uniformInt(1, 16));
        for (int i = 0; i < flips; ++i)
            flipRandomBit(wave, flip_rng);
        expectGraceful(pipe, std::move(wave), rng);
    }
}

} // namespace
} // namespace prep
} // namespace tb
