/**
 * @file
 * Functional data-preparation demo: runs the exact operator chains the
 * simulator models (Fig 4) on real data — synthetic JPEGs through
 * decode/crop/mirror/noise/cast, and synthetic utterances through
 * STFT/Mel/SpecAugment/normalize — and reports per-item timings and
 * sizes, i.e. the quantities the performance model's prep_ops table is
 * calibrated from.
 *
 * With `--threads N` the same batches additionally run through the
 * parallel prep executor (src/prep/executor/) and the aggregate
 * samples/s plus executor counters are reported — the measured
 * host-CPU prep ceiling the paper's Fig 3 is about.
 *
 *   ./prep_pipeline_demo [items-per-type] [--threads N]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/table.hh"
#include "prep/audio/wave_gen.hh"
#include "prep/executor/prep_executor.hh"
#include "prep/pipeline.hh"
#include "sim/stats.hh"

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** Run both chains through the executor and dump throughput + stats. */
void
runExecutorDemo(int items, std::size_t threads)
{
    using namespace tb;

    Rng gen(2026);
    std::vector<std::vector<std::uint8_t>> jpegs;
    for (int i = 0; i < items; ++i)
        jpegs.push_back(prep::makeSyntheticJpeg(256, 256, gen));
    audio::WaveGenConfig wcfg;
    std::vector<std::vector<double>> waves;
    for (int i = 0; i < items; ++i)
        waves.push_back(audio::generateUtterance(wcfg, gen));

    prep::ExecutorConfig cfg;
    cfg.numWorkers = threads;
    cfg.baseSeed = 2026;
    prep::PrepExecutor executor(cfg);

    std::printf("\nParallel executor: %zu worker(s), queue bound %zu\n",
                executor.numWorkers(), cfg.queueCapacity);

    const auto t0 = std::chrono::steady_clock::now();
    auto image_futures = executor.submitImageBatch(std::move(jpegs));
    for (auto &f : image_futures)
        f.wait();
    const double image_wall = secondsSince(t0);

    const auto t1 = std::chrono::steady_clock::now();
    auto audio_futures = executor.submitAudioBatch(std::move(waves));
    for (auto &f : audio_futures)
        f.wait();
    const double audio_wall = secondsSince(t1);

    std::printf("image batch: %d items in %.1f ms -> %.1f samples/s\n",
                items, image_wall * 1e3, items / image_wall);
    std::printf("audio batch: %d items in %.1f ms -> %.1f samples/s\n",
                items, audio_wall * 1e3, items / audio_wall);

    stats::StatGroup group("prep_executor");
    executor.registerStats(group);
    executor.shutdown();
    std::printf("\n");
    group.dump();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tb;
    int items = 8;
    std::size_t threads = 0; // 0 = serial-only demo
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc)
            threads = static_cast<std::size_t>(std::atoi(argv[++i]));
        else
            items = std::atoi(argv[i]);
    }

    Rng rng(2026);

    std::printf("Image chain: JPEG -> decode -> random crop 224 -> "
                "mirror -> gaussian noise -> bf16 tensor\n\n");
    {
        Table t({"item", "stored (B)", "decoded (B)", "tensor (B)",
                 "prep time (ms)"});
        prep::ImagePrepPipeline pipe;
        double total_ms = 0.0;
        for (int i = 0; i < items; ++i) {
            const auto jpeg_bytes =
                prep::makeSyntheticJpeg(256, 256, rng);
            const auto t0 = std::chrono::steady_clock::now();
            const prep::PreparedImage out = pipe.prepare(jpeg_bytes, rng);
            const double ms = secondsSince(t0) * 1e3;
            total_ms += ms;
            if (!out.ok) {
                std::fprintf(stderr, "prep failed: %s\n",
                             out.error.c_str());
                return 1;
            }
            t.row()
                .add(static_cast<long long>(i))
                .add(static_cast<long long>(jpeg_bytes.size()))
                .add(static_cast<long long>(256 * 256 * 3))
                .add(static_cast<long long>(out.tensor.size() * 2))
                .add(ms, 2);
        }
        t.print();
        std::printf("\nmean image prep: %.2f ms/item (simulator "
                    "calibration: 1.572 ms/core)\n\n",
                    total_ms / items);
    }

    std::printf("Audio chain: waveform -> STFT -> log-Mel -> SpecAugment "
                "-> normalize\n\n");
    {
        Table t({"item", "PCM (B)", "frames", "mels", "feature (B)",
                 "prep time (ms)"});
        prep::AudioPrepPipeline pipe;
        audio::WaveGenConfig wcfg;
        double total_ms = 0.0;
        for (int i = 0; i < items; ++i) {
            const auto wave = audio::generateUtterance(wcfg, rng);
            const auto t0 = std::chrono::steady_clock::now();
            const prep::PreparedAudio out = pipe.prepare(wave, rng);
            const double ms = secondsSince(t0) * 1e3;
            total_ms += ms;
            if (!out.ok) {
                std::fprintf(stderr, "audio prep failed\n");
                return 1;
            }
            t.row()
                .add(static_cast<long long>(i))
                .add(static_cast<long long>(wave.size() * 2))
                .add(static_cast<long long>(out.features.frames))
                .add(static_cast<long long>(out.features.bins))
                .add(static_cast<long long>(out.features.frames *
                                            out.features.bins * 4))
                .add(ms, 2);
        }
        t.print();
        std::printf("\nmean audio prep: %.2f ms/item (simulator "
                    "calibration: 5.45 ms/core)\n",
                    total_ms / items);
    }

    if (threads > 0)
        runExecutorDemo(items, threads);
    return 0;
}
