/**
 * @file
 * Functional data-preparation demo: runs the exact operator chains the
 * simulator models (Fig 4) on real data — synthetic JPEGs through
 * decode/crop/mirror/noise/cast, and synthetic utterances through
 * STFT/Mel/SpecAugment/normalize — and reports per-item timings and
 * sizes, i.e. the quantities the performance model's prep_ops table is
 * calibrated from.
 *
 *   ./prep_pipeline_demo [items-per-type]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "common/table.hh"
#include "prep/audio/wave_gen.hh"
#include "prep/pipeline.hh"

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tb;
    const int items = argc > 1 ? std::atoi(argv[1]) : 8;

    Rng rng(2026);

    std::printf("Image chain: JPEG -> decode -> random crop 224 -> "
                "mirror -> gaussian noise -> bf16 tensor\n\n");
    {
        Table t({"item", "stored (B)", "decoded (B)", "tensor (B)",
                 "prep time (ms)"});
        prep::ImagePrepPipeline pipe;
        double total_ms = 0.0;
        for (int i = 0; i < items; ++i) {
            const auto jpeg_bytes =
                prep::makeSyntheticJpeg(256, 256, rng);
            const auto t0 = std::chrono::steady_clock::now();
            const prep::PreparedImage out = pipe.prepare(jpeg_bytes, rng);
            const double ms = secondsSince(t0) * 1e3;
            total_ms += ms;
            if (!out.ok) {
                std::fprintf(stderr, "prep failed: %s\n",
                             out.error.c_str());
                return 1;
            }
            t.row()
                .add(static_cast<long long>(i))
                .add(static_cast<long long>(jpeg_bytes.size()))
                .add(static_cast<long long>(256 * 256 * 3))
                .add(static_cast<long long>(out.tensor.size() * 2))
                .add(ms, 2);
        }
        t.print();
        std::printf("\nmean image prep: %.2f ms/item (simulator "
                    "calibration: 1.572 ms/core)\n\n",
                    total_ms / items);
    }

    std::printf("Audio chain: waveform -> STFT -> log-Mel -> SpecAugment "
                "-> normalize\n\n");
    {
        Table t({"item", "PCM (B)", "frames", "mels", "feature (B)",
                 "prep time (ms)"});
        prep::AudioPrepPipeline pipe;
        audio::WaveGenConfig wcfg;
        double total_ms = 0.0;
        for (int i = 0; i < items; ++i) {
            const auto wave = audio::generateUtterance(wcfg, rng);
            const auto t0 = std::chrono::steady_clock::now();
            const prep::PreparedAudio out = pipe.prepare(wave, rng);
            const double ms = secondsSince(t0) * 1e3;
            total_ms += ms;
            if (!out.ok) {
                std::fprintf(stderr, "audio prep failed\n");
                return 1;
            }
            t.row()
                .add(static_cast<long long>(i))
                .add(static_cast<long long>(wave.size() * 2))
                .add(static_cast<long long>(out.features.frames))
                .add(static_cast<long long>(out.features.bins))
                .add(static_cast<long long>(out.features.frames *
                                            out.features.bins * 4))
                .add(ms, 2);
        }
        t.print();
        std::printf("\nmean audio prep: %.2f ms/item (simulator "
                    "calibration: 5.45 ms/core)\n",
                    total_ms / items);
    }
    return 0;
}
