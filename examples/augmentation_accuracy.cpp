/**
 * @file
 * The Fig 5 experiment as a standalone example: train the synthetic
 * shape classifier with and without run-time augmentation and plot the
 * per-epoch test accuracy as an ASCII chart. Demonstrates *why* the
 * paper insists on on-line data preparation: augmentation is a
 * hyperparameter worth a large accuracy margin, and it can't be
 * precomputed (§III-D).
 *
 *   ./augmentation_accuracy [epochs] [seed]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "nn/trainer.hh"

int
main(int argc, char **argv)
{
    using namespace tb::nn;

    TrainerConfig cfg;
    cfg.epochs = argc > 1 ? std::atoi(argv[1]) : 20;
    const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr,
                                                        10)
                                        : 1234;

    cfg.augment = true;
    const TrainHistory augmented = trainShapeClassifier(cfg, seed);
    cfg.augment = false;
    const TrainHistory plain = trainShapeClassifier(cfg, seed);

    std::printf("Test accuracy per epoch (# = with augmentation, "
                "o = without)\n\n");
    for (int e = 0; e < cfg.epochs; ++e) {
        const int bar_aug =
            static_cast<int>(augmented.testAccuracy[e] * 60.0);
        const int bar_plain =
            static_cast<int>(plain.testAccuracy[e] * 60.0);
        std::string line(61, ' ');
        for (int i = 0; i < bar_aug; ++i)
            line[i] = '#';
        if (bar_plain < 61)
            line[bar_plain] = 'o';
        std::printf("epoch %2d |%s| %.3f vs %.3f\n", e + 1, line.c_str(),
                    augmented.testAccuracy[e], plain.testAccuracy[e]);
    }

    std::printf("\nfinal: %.1f%% with augmentation vs %.1f%% without "
                "(gap %.1f points; paper reports 29.1 points on "
                "ImageNet/Resnet-50 top-5)\n",
                100.0 * augmented.finalAccuracy(),
                100.0 * plain.finalAccuracy(),
                100.0 * (augmented.finalAccuracy() -
                         plain.finalAccuracy()));
    return 0;
}
