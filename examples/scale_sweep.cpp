/**
 * @file
 * Architecture scale sweep: run a chosen workload on every architecture
 * preset across accelerator counts and print the throughput matrix —
 * the example version of the paper's Fig 21 methodology, usable for any
 * of the seven workloads.
 *
 *   ./scale_sweep [model-name] [max-accelerators]
 */

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/table.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

int
main(int argc, char **argv)
{
    using namespace tb;

    const std::string model_name = argc > 1 ? argv[1] : "Inception-v4";
    const std::size_t max_n =
        argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 256;

    const workload::ModelInfo &m = workload::modelByName(model_name);

    std::vector<std::size_t> scales;
    for (std::size_t n = 1; n <= max_n; n *= 4)
        scales.push_back(n);
    if (scales.back() != max_n)
        scales.push_back(max_n);

    std::printf("Scale sweep: %s (throughput in samples/s)\n\n",
                m.name.c_str());

    std::vector<std::string> headers = {"architecture"};
    for (auto n : scales)
        headers.push_back("n=" + std::to_string(n));
    Table t(headers);

    for (ArchPreset p : allPresets()) {
        t.row().add(presetName(p));
        for (std::size_t n : scales) {
            // Named constructor + fluent setters (the preferred API).
            const ServerConfig cfg = ServerConfig::forPreset(p)
                                         .withModel(m.id)
                                         .withAccelerators(n);
            auto server = buildServer(cfg);
            TrainingSession session(*server);
            t.add(session.run(6, 12).throughput, 0);
        }
    }
    t.print();

    std::printf("\nideal target at n=%zu: %.0f samples/s\n", max_n,
                workload::targetThroughput(m, max_n, sync::SyncConfig{}));
    return 0;
}
