/**
 * @file
 * Quickstart: build a 256-accelerator server, run a training session on
 * the baseline and on TrainBox, and compare throughput.
 *
 *   ./quickstart [model-name] [num-accelerators] [trace.json]
 *
 * Model names are the Table I names (default Resnet-50). When a third
 * argument is given, a Chrome-trace timeline of the TrainBox run is
 * written there (open in chrome://tracing or ui.perfetto.dev).
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.hh"
#include "sim/trace.hh"
#include "trainbox/report.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

int
main(int argc, char **argv)
{
    using namespace tb;

    const std::string model_name = argc > 1 ? argv[1] : "Resnet-50";
    const std::size_t n_acc =
        argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 256;
    const std::string trace_path = argc > 3 ? argv[3] : "";

    const workload::ModelInfo &m = workload::modelByName(model_name);

    std::printf("TrainBox quickstart: %s (%s, %s input), %zu "
                "accelerators\n\n",
                m.name.c_str(), workload::toString(m.type),
                workload::toString(m.input), n_acc);

    Table table({"architecture", "throughput (samples/s)",
                 "step time (ms)", "prep latency (ms)", "speedup"});

    double baseline_thpt = 0.0;
    for (ArchPreset preset :
         {ArchPreset::Baseline, ArchPreset::TrainBox}) {
        // Named constructor + fluent setters (the preferred config API).
        const ServerConfig cfg = ServerConfig::forPreset(preset)
                                     .withModel(m.id)
                                     .withAccelerators(n_acc);

        auto server = buildServer(cfg);
        TrainingSession session(*server);
        TraceWriter trace;
        if (!trace_path.empty() && preset == ArchPreset::TrainBox)
            session.setTrace(&trace);
        const SessionReport report = session.runReport();
        if (trace.numEvents() > 0 && trace.writeFile(trace_path))
            std::printf("wrote %zu trace events to %s\n",
                        trace.numEvents(), trace_path.c_str());

        if (preset == ArchPreset::Baseline)
            baseline_thpt = report.throughput();
        table.row()
            .add(presetName(preset))
            .add(report.throughput(), 1)
            .add(report.stepTime() * 1e3, 2)
            .add(report.prepLatency() * 1e3, 2)
            .add(report.throughput() / baseline_thpt, 2);
    }
    table.print();

    std::printf("\nThe ideal (prep-unconstrained) target is %.1f "
                "samples/s.\n",
                workload::targetThroughput(m, n_acc, sync::SyncConfig{}));
    return 0;
}
