/**
 * @file
 * Capacity planner built on the train initializer (§V-A): for a chosen
 * workload and scale, report the per-box preparation demand, the local
 * FPGA capacity, the prep-pool allocation, Ethernet feasibility, and the
 * host resources a baseline server would have needed instead.
 *
 * With `--calibrate`, the baseline host demand is additionally
 * recomputed from a live prep-throughput measurement on this machine
 * (parallel executor, src/prep/executor/) instead of the Table I
 * constants.
 *
 *   ./capacity_planner [model-name] [num-accelerators] [--calibrate]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/table.hh"
#include "fpga/engine_library.hh"
#include "prep/executor/calibration.hh"
#include "trainbox/resource_profile.hh"
#include "trainbox/train_initializer.hh"

int
main(int argc, char **argv)
{
    using namespace tb;

    std::string model_name = "Transformer-SR";
    std::size_t n = 256;
    bool calibrate = false;
    int positional = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--calibrate") == 0)
            calibrate = true;
        else if (positional++ == 0)
            model_name = argv[i];
        else
            n = static_cast<std::size_t>(std::atoll(argv[i]));
    }

    const workload::ModelInfo &m = workload::modelByName(model_name);
    ServerConfig cfg;
    cfg.preset = ArchPreset::TrainBox;
    cfg.model = m.id;
    cfg.numAccelerators = n;

    const PrepPlan plan = planPreparation(cfg);
    const std::size_t boxes =
        (n + cfg.box.accPerBox - 1) / cfg.box.accPerBox;

    std::printf("TrainBox capacity plan: %s on %zu accelerators "
                "(%zu train boxes)\n\n",
                m.name.c_str(), n, boxes);

    Table t({"quantity", "value"});
    t.row().add("prep demand per box (samples/s)")
        .add(plan.perBoxDemand, 0);
    t.row().add("local FPGA capacity per box (samples/s)")
        .add(plan.perBoxLocalCapacity, 0);
    t.row().add("offload fraction to prep-pool")
        .add(100.0 * plan.offloadFraction, 1);
    t.row().add("prep-pool FPGAs to allocate")
        .add(static_cast<long long>(plan.poolFpgas));
    t.row().add("pool capacity needed (samples/s)")
        .add(plan.poolCapacityNeeded, 0);
    t.row().add("extra capacity vs local (%)")
        .add(100.0 * plan.poolOvercapacityRatio, 1);
    t.row().add("Ethernet per 100G port (GB/s)")
        .add(plan.ethernetPerPort / 1e9, 2);
    t.row().add("Ethernet feasible")
        .add(plan.ethernetFeasible ? "yes" : "NO");
    t.print();

    // What the FPGA bitstream looks like for this input type.
    const fpga::Floorplan floorplan =
        m.input == workload::InputType::Image ? fpga::imageFloorplan()
                                              : fpga::audioFloorplan();
    const fpga::Utilization u = floorplan.utilization();
    std::printf("\nPer-FPGA floorplan (%s pipeline on %s): %.1f%% LUT, "
                "%.1f%% FF, %.1f%% BRAM, %.1f%% DSP — %s\n",
                workload::toString(m.input),
                floorplan.device().name.c_str(), u.lutPct, u.ffPct,
                u.bramPct, u.dspPct,
                floorplan.fits() ? "fits" : "DOES NOT FIT");

    // For contrast: what the host would have needed without TrainBox.
    const HostDemandBreakdown host =
        requiredHostDemand(m, ArchPreset::Baseline, n, cfg.sync);
    const Dgx2Reference ref;
    std::printf("\nBaseline host demand at the same throughput: "
                "%.0f CPU cores (%.1fx DGX-2), %.0f GB/s DRAM (%.1fx), "
                "%.0f GB/s PCIe RC (%.1fx)\n",
                host.cpuCores, host.cpuCores / ref.cpuCores,
                host.memBw / 1e9, host.memBw / ref.memBw,
                host.rcBw / 1e9, host.rcBw / ref.rcBw);

    if (calibrate) {
        // Replace the Table I prep-cost constants with a live
        // measurement of this machine's functional chains.
        prep::ThroughputMeasureConfig mcfg;
        mcfg.numWorkers = 0; // hardware concurrency
        const prep::PrepThroughputMeasurement meas =
            prep::measurePrepThroughput(mcfg);
        PrepCostCalibration calib;
        calib.imageCoreSecPerSample = meas.imageCoreSecPerSample;
        calib.audioCoreSecPerSample = meas.audioCoreSecPerSample;
        const HostDemandBreakdown live = requiredHostDemand(
            m, ArchPreset::Baseline, n, cfg.sync, calib);
        std::printf("\nCalibrated from live measurement (%zu workers: "
                    "image %.2f core-ms/sample, audio %.2f): "
                    "%.0f CPU cores (%.1fx DGX-2) — unoptimized scalar "
                    "kernels vs the paper's DALI-class constants\n",
                    meas.numWorkers,
                    meas.imageCoreSecPerSample * 1e3,
                    meas.audioCoreSecPerSample * 1e3, live.cpuCores,
                    live.cpuCores / ref.cpuCores);
    }
    return 0;
}
