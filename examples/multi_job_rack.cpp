/**
 * @file
 * Multi-job rack planning demo (§V-D): share one TrainBox rack between
 * an image job and an audio job and watch the idle image-side FPGAs act
 * as the audio job's prep-pool, including the partial-reconfiguration
 * cost of retargeting a lent FPGA.
 *
 *   ./multi_job_rack [boxes]
 */

#include <cstdio>
#include <cstdlib>

#include "common/table.hh"
#include "fpga/engine_library.hh"
#include "trainbox/multi_job.hh"

int
main(int argc, char **argv)
{
    using namespace tb;
    const std::size_t boxes =
        argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 32;

    const std::vector<JobRequest> jobs = {
        {workload::ModelId::InceptionV4, 128},
        {workload::ModelId::TfSr, 128},
    };
    const RackPlan plan = planRack(jobs, boxes);

    std::printf("Rack with %zu train boxes, %zu jobs (%s)\n\n", boxes,
                jobs.size(),
                plan.feasible ? "feasible" : "DOES NOT FIT");

    Table t({"job", "accs", "boxes", "demand (samples/s)",
             "local cap", "surplus FPGAs", "deficit", "borrowed",
             "external", "offload %"});
    for (const auto &j : plan.jobs) {
        t.row()
            .add(workload::model(j.request.model).name)
            .add(static_cast<long long>(j.request.numAccelerators))
            .add(static_cast<long long>(j.boxes))
            .add(j.demand, 0)
            .add(j.localCapacity, 0)
            .add(static_cast<long long>(j.surplusFpgas))
            .add(static_cast<long long>(j.deficitFpgas))
            .add(static_cast<long long>(j.borrowedFpgas))
            .add(static_cast<long long>(j.externalFpgas))
            .add(100.0 * j.offloadFraction, 1);
    }
    t.print();

    std::printf("\nboxes used: %zu/%zu, FPGAs lent between jobs: %zu, "
                "external pool FPGAs: %zu\n",
                plan.boxesUsed, plan.boxesAvailable, plan.fpgasLent,
                plan.externalPoolFpgas);

    // Cost of retargeting a lent image-pipeline FPGA to audio (§V-C).
    const fpga::ReconfigEstimate est = fpga::reconfigurationCost(
        fpga::imageFloorplan(), fpga::audioFloorplan());
    std::printf("\nretargeting a lent FPGA (image -> audio pipeline): "
                "%zu engines reprogrammed, %.1f MB partial bitstream, "
                "%.0f ms — amortized over the whole job, negligible\n",
                est.enginesChanged, est.bitstreamBytes / 1e6,
                est.seconds * 1e3);
    return 0;
}
