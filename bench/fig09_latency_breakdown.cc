/**
 * @file
 * Fig 9: latency decomposition of one batch on the 256-accelerator
 * baseline for all seven workloads. The paper reports that data
 * preparation accounts for 98.1% of total latency on average.
 *
 * The decomposition is SessionReport::latency() — the same breakdown
 * tb_report and the golden-JSON test consume.
 */

#include "bench/bench_util.hh"
#include "common/math_util.hh"

int
main(int argc, char **argv)
{
    using namespace tb;
    const bool csv = bench::wantCsv(argc, argv);

    bench::banner("Fig 9: baseline per-batch latency decomposition, "
                  "256 accelerators (% of total)");
    Table t({"model", "data transfer %", "formatting %", "augmentation %",
             "compute %", "sync %", "prep total %"});

    const auto reports = bench::sweepModels(
        [](const workload::ModelInfo &m) {
            return ServerConfig::baseline()
                .withModel(m.id)
                .withAccelerators(256);
        },
        /*warmup=*/6, /*measure=*/12);

    std::vector<double> prep_shares;
    for (const SessionReport &r : reports) {
        const SessionReport::LatencyBreakdown lat = r.latency();
        t.row()
            .add(r.model)
            .add(100.0 * lat.share(lat.transfer), 1)
            .add(100.0 * lat.share(lat.formatting), 1)
            .add(100.0 * lat.share(lat.augmentation), 1)
            .add(100.0 * lat.share(lat.compute), 1)
            .add(100.0 * lat.share(lat.sync), 1)
            .add(100.0 * lat.prepShare(), 1);
        prep_shares.push_back(100.0 * lat.prepShare());
    }
    bench::emit(t, csv);
    std::printf("\nmean preparation share: %.1f%% (paper: 98.1%%)\n",
                mean(prep_shares));
    return 0;
}
