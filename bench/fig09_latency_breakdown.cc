/**
 * @file
 * Fig 9: latency decomposition of one batch on the 256-accelerator
 * baseline for all seven workloads. The paper reports that data
 * preparation accounts for 98.1% of total latency on average.
 */

#include "bench/bench_util.hh"
#include "common/math_util.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

int
main(int argc, char **argv)
{
    using namespace tb;
    const bool csv = bench::wantCsv(argc, argv);

    bench::banner("Fig 9: baseline per-batch latency decomposition, "
                  "256 accelerators (% of total)");
    Table t({"model", "data transfer %", "formatting %", "augmentation %",
             "compute %", "sync %", "prep total %"});

    std::vector<double> prep_shares;
    for (const auto &m : workload::modelZoo()) {
        ServerConfig cfg;
        cfg.preset = ArchPreset::Baseline;
        cfg.model = m.id;
        cfg.numAccelerators = 256;
        auto server = buildServer(cfg);
        TrainingSession session(*server);
        const SessionResult res = session.run(6, 12);

        auto stage = [&](const char *name) {
            auto it = res.prepStageTime.find(name);
            return it == res.prepStageTime.end() ? 0.0 : it->second;
        };
        const double transfer =
            stage("ssd_read") + stage("data_load") + stage("others");
        const double fmt = stage("formatting");
        const double aug = stage("augmentation");
        const double prep = transfer + fmt + aug;
        const double total = prep + res.computeTime + res.syncTime;

        t.row()
            .add(m.name)
            .add(100.0 * transfer / total, 1)
            .add(100.0 * fmt / total, 1)
            .add(100.0 * aug / total, 1)
            .add(100.0 * res.computeTime / total, 1)
            .add(100.0 * res.syncTime / total, 1)
            .add(100.0 * prep / total, 1);
        prep_shares.push_back(100.0 * prep / total);
    }
    bench::emit(t, csv);
    std::printf("\nmean preparation share: %.1f%% (paper: 98.1%%)\n",
                mean(prep_shares));
    return 0;
}
