/**
 * @file
 * Fig 21: scalability of Inception-v4 and Transformer-SR, 1 -> 256
 * accelerators, across five architectures: CPU baseline, GPU prep,
 * FPGA prep (= B+Acc+P2P in the paper), TrainBox without the prep-pool,
 * and full TrainBox. Throughput is normalized to one accelerator's ideal
 * throughput so "256" means perfect scaling. Reproduces the paper's
 * observations: the CPU baseline saturates first, GPU prep loses to the
 * baseline at small scale (1:4 device ratio and poor decode throughput),
 * FPGA prep wins quickly, and only TrainBox keeps scaling; TF-SR needs
 * the prep-pool (~54% extra FPGA capacity) to reach the target.
 */

#include "bench/bench_util.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

int
main(int argc, char **argv)
{
    using namespace tb;
    const bool csv = bench::wantCsv(argc, argv);

    const std::vector<ArchPreset> presets = {
        ArchPreset::Baseline,        ArchPreset::BaselineAccGpu,
        ArchPreset::BaselineAccFpga, ArchPreset::TrainBoxNoPool,
        ArchPreset::TrainBox,
    };
    const std::vector<std::size_t> scales = {1, 4, 16, 64, 256};

    for (workload::ModelId id :
         {workload::ModelId::InceptionV4, workload::ModelId::TfSr}) {
        const workload::ModelInfo &m = workload::model(id);
        const double unit =
            workload::effectiveDeviceThroughput(m, 1, sync::SyncConfig{});

        bench::banner("Fig 21 (" + m.name +
                      "): throughput in ideal-accelerator units");
        std::vector<std::string> headers = {"architecture"};
        for (auto n : scales)
            headers.push_back("n=" + std::to_string(n));
        Table t(headers);

        for (ArchPreset p : presets) {
            t.row().add(presetName(p));
            for (std::size_t n : scales) {
                ServerConfig cfg;
                cfg.preset = p;
                cfg.model = id;
                cfg.numAccelerators = n;
                auto server = buildServer(cfg);
                TrainingSession session(*server);
                t.add(session.run(6, 12).throughput / unit, 1);
            }
        }
        bench::emit(t, csv);

        ServerConfig cfg;
        cfg.preset = ArchPreset::TrainBox;
        cfg.model = id;
        cfg.numAccelerators = 256;
        const PrepPlan plan = planPreparation(cfg);
        std::printf("\nprep-pool plan for %s @256: demand/box %.0f, local "
                    "capacity/box %.0f, offload %.1f%%, pool FPGAs %zu "
                    "(+%.0f%% capacity)\n",
                    m.name.c_str(), plan.perBoxDemand,
                    plan.perBoxLocalCapacity,
                    100.0 * plan.offloadFraction, plan.poolFpgas,
                    100.0 * plan.poolOvercapacityRatio);
    }
    std::printf("\n(paper: TF-SR reaches the target with 54%% extra FPGA "
                "resources from the prep-pool)\n");
    return 0;
}
