/**
 * @file
 * Streaming-ingest sweep: what continuous sample arrival costs and what
 * the overload policy chain buys back (docs/ROBUSTNESS.md, "Streaming
 * ingest & overload").
 *
 * Three experiments on 32-accelerator ResNet-50 TrainBox servers:
 *
 *  1. Arrival-rate sweep — steady ingest from well below to well above
 *     the shard-write drain capacity: admit/shed split, overload trips,
 *     staleness, and the training goodput lost to write→read
 *     interference.
 *  2. Buffer-size sweep — at fixed overload, how much buffer (and
 *     watermark headroom) converts drops into delayed admissions, and
 *     what that does to freshness.
 *  3. Policy comparison — the same 4x overload burst handled by each
 *     escalation prefix of throttle → shed → echo vs a hard stall.
 *
 * --smoke runs the CI assertion mode instead: disabled-ingest
 * bit-identity, per-seed conservation ledgers, and the policy-chain
 * comparison (adaptive chains must beat the hard stall in goodput
 * under a 4x overload burst). Exits non-zero on violation.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.hh"
#include "trainbox/report.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

namespace {

tb::ServerConfig
baseConfig(std::size_t n_acc = 32)
{
    tb::ServerConfig cfg;
    cfg.preset = tb::ArchPreset::TrainBox;
    cfg.model = tb::workload::ModelId::Resnet50;
    cfg.numAccelerators = n_acc;
    cfg.prepPoolFpgas = 8;
    return cfg;
}

tb::SessionResult
run(const tb::ServerConfig &cfg, std::size_t warmup = 4,
    std::size_t measure = 12)
{
    auto server = tb::buildServer(cfg);
    tb::TrainingSession session(*server);
    return session.run(warmup, measure);
}

/** A steady ingest scenario with mid-sized buffer and watermarks. */
tb::IngestConfig
steadyIngest(double rate_per_sec)
{
    tb::IngestConfig ic;
    ic.enabled = true;
    ic.steady.ratePerSec = rate_per_sec;
    ic.steady.samplesPerEvent = 256.0;
    ic.bufferCapacity = 8192.0;
    ic.lowWatermark = 1024.0;
    ic.highWatermark = 4096.0;
    ic.writeChunkSamples = 512.0;
    return ic;
}

bool
sampleLedgerHolds(const tb::SessionResult &res)
{
    const auto &e = res.elasticity;
    const double gap = e.samplesPrepared -
                       (e.samplesConsumed + e.samplesCachedAtEnd +
                        e.samplesDiscarded);
    return std::fabs(gap) <= 1e-6 * std::max(1.0, e.samplesPrepared);
}

bool
ingestLedgerHolds(const tb::SessionResult &res)
{
    const auto &in = res.ingest;
    const double gap =
        in.samplesArrived - (in.samplesAdmitted + in.samplesShed +
                             in.samplesInFlightAtEnd);
    return std::fabs(gap) <= 1e-6 * std::max(1.0, in.samplesArrived);
}

/**
 * Empirical shard-write drain capacity (samples/s) at @p n_acc: offer
 * far more than the writer can take (throttle keeps training alive)
 * and measure what actually lands. Scales all sweep rates so they stay
 * meaningful if the SSD or interference model changes.
 */
double
probeDrainRate(std::size_t n_acc)
{
    tb::ServerConfig cfg = baseConfig(n_acc);
    cfg.ingest = steadyIngest(5.0e5);
    cfg.ingest.policyChain = {tb::IngestPolicy::Throttle};
    cfg.ingest.throttleFactor = 0.5;
    const tb::SessionResult res = run(cfg, 3, 6);
    return res.ingest.samplesAdmitted / std::max(res.wallTime, 1e-9);
}

/**
 * A 4x overload burst riding on light steady traffic. The burst is
 * injected through the explicit arrival schedule so it is finite (a
 * sustained 4x overload under a stall-only policy would rightly never
 * let training resume); @p burst_at places it mid-measurement — steps
 * take on the order of a second at these scales, so the instant must
 * come from the run's own step time, not a hardcoded wall-clock guess.
 */
tb::IngestConfig
burstIngest(double drain_rate, double burst_at)
{
    tb::IngestConfig ic = steadyIngest(0.3 * drain_rate);
    // A buffer big enough that draining it back to the low watermark
    // outlasts a training step — a shorter hard stall hides entirely
    // inside the in-progress compute and the comparison degenerates.
    ic.bufferCapacity = 65536.0;
    ic.highWatermark = 8192.0;
    ic.lowWatermark = 4096.0;
    const double burst_total = 4.0 * ic.bufferCapacity;
    const int arrivals = 64;
    for (int i = 0; i < arrivals; ++i) {
        tb::IngestArrival a;
        a.kind = tb::IngestTrafficKind::Burst;
        a.samples = burst_total / arrivals;
        a.priority = 0;
        a.at = burst_at + 2.0e-4 * i;
        ic.schedule.push_back(a);
    }
    return ic;
}

/** CI mode: conservation, bit-identity, and the policy comparison. */
int
smoke()
{
    using namespace tb;
    int failures = 0;
    auto fail = [&](const char *what, std::uint64_t seed) {
        std::printf("FAIL: %s (seed %llu)\n", what,
                    static_cast<unsigned long long>(seed));
        ++failures;
    };

    // Disabled ingest must not perturb the simulation at all.
    const SessionResult base = run(baseConfig(16), 3, 6);
    {
        ServerConfig cfg = baseConfig(16);
        cfg.ingest = steadyIngest(1.0e5); // ignored when off
        cfg.ingest.enabled = false;
        const SessionResult again = run(cfg, 3, 6);
        if (again.throughput != base.throughput ||
            again.wallTime != base.wallTime)
            fail("disabled ingest perturbed the baseline", 0);
        if (again.ingest.arrivalEvents != 0 ||
            again.ingest.samplesArrived != 0.0)
            fail("disabled ingest reported nonzero stats", 0);
    }

    const double drain = probeDrainRate(16);
    if (!(drain > 0.0))
        fail("drain-capacity probe admitted nothing", 0);

    // Randomized steady/diurnal/bursty mixes: every run must complete
    // with both conservation ledgers intact and sane ratios.
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        ServerConfig cfg = baseConfig(16);
        cfg.ingest = steadyIngest(0.2 * drain * double(1 + seed % 3));
        cfg.ingest.seed = seed;
        cfg.ingest.diurnal.ratePerSec = 0.2 * drain;
        cfg.ingest.diurnalPeriod = 0.05;
        cfg.ingest.burst.ratePerSec = 0.1 * drain * double(seed % 2);
        cfg.ingest.writeFailureProb = (seed % 4 == 0) ? 0.2 : 0.0;
        cfg.ingest.stalenessSlo = 0.05;
        if (seed % 3 == 0)
            cfg.ingest.policyChain = {IngestPolicy::Shed,
                                      IngestPolicy::Echo};
        const SessionResult res = run(cfg, 3, 6);
        if (res.stepsMeasured != 6)
            fail("run did not complete all steps", seed);
        if (!sampleLedgerHolds(res))
            fail("sample conservation violated", seed);
        if (!ingestLedgerHolds(res))
            fail("ingest conservation violated", seed);
        if (!std::isfinite(res.throughput) || res.throughput <= 0.0)
            fail("degenerate throughput", seed);
        if (res.ingest.arrivalEvents == 0)
            fail("no ingest arrivals delivered", seed);

        // Determinism: the same config must replay bit-identically.
        if (seed % 4 == 1) {
            const SessionResult replay = run(cfg, 3, 6);
            if (replay.throughput != res.throughput ||
                replay.ingest.samplesArrived !=
                    res.ingest.samplesArrived ||
                replay.ingest.samplesAdmitted !=
                    res.ingest.samplesAdmitted)
                fail("ingest run not deterministic", seed);
        }
    }

    // The acceptance comparison: a 4x overload burst handled by each
    // escalation prefix of the adaptive chain must yield higher goodput
    // than hard-stalling training.
    const std::vector<std::vector<IngestPolicy>> chains = {
        {IngestPolicy::Stall},
        {IngestPolicy::Throttle},
        {IngestPolicy::Throttle, IngestPolicy::Shed},
        {IngestPolicy::Throttle, IngestPolicy::Shed, IngestPolicy::Echo},
    };
    // Mid-measurement-window instant for a (3 warmup, 6 measure) run:
    // anchored to the *end* of the healthy run, because the warmup
    // steps are pipeline-fill and take far longer than steady state.
    const double burst_at = base.wallTime - 4.0 * base.stepTime;
    std::vector<double> goodput;
    for (const auto &chain : chains) {
        ServerConfig cfg = baseConfig(16);
        cfg.ingest = burstIngest(drain, burst_at);
        cfg.ingest.policyChain = chain;
        const SessionResult res = run(cfg, 3, 6);
        if (!ingestLedgerHolds(res))
            fail("ingest conservation violated in burst run", 0);
        if (res.ingest.overloadTrips == 0)
            fail("burst did not trip the overload watermark", 0);
        goodput.push_back(SessionReport::computeGoodput(
            res.throughput, base.throughput));
    }
    std::printf("ingest smoke: drain %.0f samples/s | goodput stall "
                "%.4f, throttle %.4f, +shed %.4f, +echo %.4f\n",
                drain, goodput[0], goodput[1], goodput[2], goodput[3]);
    for (std::size_t i = 1; i < goodput.size(); ++i)
        if (goodput[i] <= goodput[0])
            fail("adaptive policy chain did not beat hard stall", i);

    std::printf(failures == 0 ? "PASS\n" : "%d failures\n", failures);
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tb;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            return smoke();
    const bool csv = bench::wantCsv(argc, argv);

    const SessionResult healthy = run(baseConfig());
    const double drain = probeDrainRate(32);

    // --- 1. arrival rate vs drain capacity ---------------------------
    bench::banner("Ingest sweep: arrival rate vs shard-write drain "
                  "capacity (ResNet-50, 32 accelerators)");
    Table rate_table({"rate_x_drain", "arrived", "admit_rate",
                      "shed_rate", "trips", "avg_stale_ms", "goodput"});
    for (double x : {0.25, 0.5, 1.0, 2.0, 4.0}) {
        ServerConfig cfg = baseConfig();
        cfg.ingest = steadyIngest(x * drain);
        auto server = buildServer(cfg);
        TrainingSession session(*server);
        const SessionReport rep = session.runReport(4, 12);
        rate_table.row()
            .add(x)
            .add(rep.ingest().samplesArrived, 0)
            .add(rep.ingestAdmitRate(), 4)
            .add(rep.ingestShedRate(), 4)
            .add(rep.ingest().overloadTrips)
            .add(1e3 * rep.avgIngestStaleness(), 2)
            .add(rep.goodput(healthy.throughput), 4);
    }
    bench::emit(rate_table, csv);

    // --- 2. buffer size at fixed 2x overload -------------------------
    bench::banner("Buffer size: drops vs delayed admissions at 2x "
                  "overload");
    Table buf_table({"capacity", "peak_level", "trips", "overflow",
                     "admit_rate", "avg_stale_ms", "slo_attain"});
    for (double cap : {1024.0, 4096.0, 16384.0, 65536.0}) {
        ServerConfig cfg = baseConfig();
        cfg.ingest = steadyIngest(2.0 * drain);
        cfg.ingest.bufferCapacity = cap;
        cfg.ingest.highWatermark = 0.5 * cap;
        cfg.ingest.lowWatermark = 0.125 * cap;
        cfg.ingest.stalenessSlo = 0.1;
        auto server = buildServer(cfg);
        TrainingSession session(*server);
        const SessionReport rep = session.runReport(4, 12);
        buf_table.row()
            .add(cap, 0)
            .add(rep.ingest().peakBufferLevel, 0)
            .add(rep.ingest().overloadTrips)
            .add(rep.ingest().samplesOverflowDropped, 0)
            .add(rep.ingestAdmitRate(), 4)
            .add(1e3 * rep.avgIngestStaleness(), 2)
            .add(rep.freshnessSloAttainment(), 4);
    }
    bench::emit(buf_table, csv);

    // --- 3. policy chain under a 4x overload burst -------------------
    bench::banner("Overload policies: 4x burst handled by each "
                  "escalation prefix vs hard stall");
    Table pol_table({"chain", "goodput", "admit_rate", "echoed",
                     "echo_factor", "stall_sec", "overload_sec"});
    const struct
    {
        const char *name;
        std::vector<IngestPolicy> chain;
    } variants[] = {
        {"stall", {IngestPolicy::Stall}},
        {"throttle", {IngestPolicy::Throttle}},
        {"throttle+shed", {IngestPolicy::Throttle, IngestPolicy::Shed}},
        {"throttle+shed+echo",
         {IngestPolicy::Throttle, IngestPolicy::Shed,
          IngestPolicy::Echo}},
    };
    // Mid-measurement-window instant for a (4 warmup, 12 measure) run,
    // end-anchored (warmup is pipeline-fill and much longer per step).
    const double burst_at = healthy.wallTime - 8.0 * healthy.stepTime;
    for (const auto &v : variants) {
        ServerConfig cfg = baseConfig();
        cfg.ingest = burstIngest(drain, burst_at);
        cfg.ingest.policyChain = v.chain;
        auto server = buildServer(cfg);
        TrainingSession session(*server);
        const SessionReport rep = session.runReport(4, 12);
        pol_table.row()
            .add(v.name)
            .add(rep.goodput(healthy.throughput), 4)
            .add(rep.ingestAdmitRate(), 4)
            .add(rep.ingest().samplesEchoed, 0)
            .add(rep.echoEffectiveFactor(), 4)
            .add(rep.ingest().stallTime, 3)
            .add(rep.ingest().overloadTime, 3);
    }
    bench::emit(pol_table, csv);

    return 0;
}
