/**
 * @file
 * Table I: workload summary — model family, task, batch size, model size,
 * per-accelerator throughput — plus the derived preparation demand used by
 * the calibration, and the static-preparation storage argument of §III-D
 * (the ~2.2 PB that rules out pre-augmenting the dataset).
 */

#include "bench/bench_util.hh"
#include "workload/cost_model.hh"

int
main(int argc, char **argv)
{
    using namespace tb;
    const bool csv = bench::wantCsv(argc, argv);

    bench::banner("Table I: workload summary");
    Table t({"type", "name", "task", "batch", "model (MB)",
             "throughput (samples/s)", "prep CPU (ms/sample)",
             "prep FPGA (samples/s/engine)"});
    for (const auto &m : workload::modelZoo()) {
        const workload::PrepDemand d = workload::prepDemand(m.input);
        t.row()
            .add(workload::toString(m.type))
            .add(m.name)
            .add(m.task)
            .add(static_cast<long long>(m.batchSize))
            .add(m.modelBytes / 1e6, 1)
            .add(m.deviceThroughput, 0)
            .add(d.cpuCoreSec * 1e3, 3)
            .add(d.fpgaChainRate, 0);
    }
    bench::emit(t, csv);

    // §III-D: static data preparation is infeasible. 32x32 random crops
    // of a 256x256 image at 224x224 (0.15 MB uint8 each) over 14M items.
    const workload::DatasetInfo &ds =
        workload::datasetFor(workload::InputType::Image);
    const Bytes pb =
        workload::staticPreparationBytes(ds, 32 * 32, 150528.0);
    std::printf("\n§III-D static-preparation storage for %s: %.1f PB "
                "(paper: ~2.2 PB)\n",
                ds.name.c_str(), pb / 1e15);
    return 0;
}
