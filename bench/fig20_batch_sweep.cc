/**
 * @file
 * Fig 20: TrainBox vs baseline across batch sizes (Resnet-50, 256
 * accelerators, throughput normalized to the baseline at batch 8).
 * The paper reports that TrainBox wins at every batch size and that the
 * gap widens with larger batches (better accelerator efficiency and
 * relatively smaller sync overhead).
 */

#include "bench/bench_util.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

int
main(int argc, char **argv)
{
    using namespace tb;
    const bool csv = bench::wantCsv(argc, argv);

    bench::banner("Fig 20: Resnet-50 throughput vs per-accelerator batch "
                  "size, 256 accelerators (normalized to baseline @ 8)");
    Table t({"batch size", "Baseline", "TrainBox", "TrainBox/Baseline"});

    double norm = 0.0;
    for (std::size_t batch : {8, 32, 128, 512, 2048, 8192}) {
        double thpt[2] = {0.0, 0.0};
        int i = 0;
        for (ArchPreset p :
             {ArchPreset::Baseline, ArchPreset::TrainBox}) {
            ServerConfig cfg;
            cfg.preset = p;
            cfg.model = workload::ModelId::Resnet50;
            cfg.numAccelerators = 256;
            cfg.batchSize = batch;
            auto server = buildServer(cfg);
            TrainingSession session(*server);
            thpt[i++] = session.run(6, 12).throughput;
        }
        if (norm == 0.0)
            norm = thpt[0];
        t.row()
            .add(static_cast<long long>(batch))
            .add(thpt[0] / norm, 2)
            .add(thpt[1] / norm, 2)
            .add(thpt[1] / thpt[0], 2);
    }
    bench::emit(t, csv);
    return 0;
}
