/**
 * @file
 * Simulator hot-path benchmark: solver events/sec and wall time.
 *
 * Scenarios, each run under every solver configuration (GlobalResolve —
 * the seed's coupled whole-network loop, the baseline — FullResolve,
 * Incremental, and Incremental + parallel scan):
 *
 *  - fig19_at_256: the paper's TrainBox preset at 256 accelerators — a
 *    real end-to-end session, the largest single-server configuration in
 *    the repo. All modes must produce bit-identical session throughput
 *    (the solver is an optimization, not a model change); the bench
 *    asserts this.
 *
 *  - fleet_10k: a synthetic fleet of disjoint *heterogeneous* jobs
 *    (~10k concurrent flows over 2500 jobs) with continuous churn —
 *    every completion launches a replacement flow. This is the ROADMAP
 *    item-1 shape: the sharing graph decomposes into thousands of small
 *    components with distinct bottleneck steps, which is exactly where
 *    the coupled global loop degrades (O(components) rounds of
 *    O(network) work per event) and the incremental solver wins (it
 *    touches ~one component per event).
 *
 *  - eq_churn: EventQueue schedule/cancel/step microbenchmark — the
 *    lazy-tombstone cancel path under load.
 *
 * Output: a table on stdout plus BENCH_sim_perf.json (see --out). The
 * JSON is the repo's perf trajectory artifact: CI re-runs this bench in
 * --smoke mode and compares *normalized* metrics (each mode's
 * events/sec over the global-resolve baseline, measured on the same
 * host in the same run) against the committed baseline, failing on a
 * >20% regression. Absolute events/sec is recorded for trend reading
 * but never gated — it varies with the host.
 *
 * Flags:
 *   --smoke            small sizes for CI (64 accs, 1k-flow fleet)
 *   --out <path>       JSON output path (default BENCH_sim_perf.json)
 *   --baseline <path>  compare speedups against a committed JSON
 *   --min-speedup <x>  fail unless fleet incremental speedup >= x
 *                      (default 5, the ISSUE acceptance floor)
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/random.hh"
#include "fluid/fluid.hh"
#include "sim/event_queue.hh"
#include "trainbox/fleet.hh"
#include "trainbox/report.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"
#include "workload/model_zoo.hh"

namespace {

using namespace tb;

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t0)
{
    return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct CaseResult
{
    std::string name;
    std::string mode;
    double wallS = 0.0;
    std::uint64_t events = 0;
    double eventsPerSec = 0.0;
    double speedupVsGlobal = 0.0; ///< 0 on the baseline row itself
    double metric = 0.0;          ///< scenario metric (throughput, ...)
};

constexpr unsigned kParallelWorkers = 4;

const char *
modeName(FluidNetwork::SolverMode mode, bool parallel)
{
    switch (mode) {
    case FluidNetwork::SolverMode::GlobalResolve:
        return "global_resolve";
    case FluidNetwork::SolverMode::FullResolve:
        return "full_resolve";
    case FluidNetwork::SolverMode::Incremental:
        return parallel ? "incremental_parallel" : "incremental";
    }
    return "?";
}

// --- fig19_at_256 --------------------------------------------------------

CaseResult
runSession(const char *caseName, std::size_t accs,
           FluidNetwork::SolverMode mode, bool parallel, std::size_t warmup,
           std::size_t measure, std::size_t reps)
{
    CaseResult r;
    r.name = caseName;
    r.mode = modeName(mode, parallel);
    for (std::size_t rep = 0; rep < reps; ++rep) {
        ServerConfig cfg;
        cfg.preset = ArchPreset::TrainBox;
        cfg.model = workload::ModelId::Resnet50;
        cfg.numAccelerators = accs;

        auto server = buildServer(cfg);
        server->core().fluid().setSolverMode(mode);
        if (parallel)
            server->core().fluid().setParallelWorkers(kParallelWorkers,
                                                      /*minFlows=*/64);

        TrainingSession session(*server);
        const auto t0 = Clock::now();
        const SessionReport report = session.runReport(warmup, measure);
        r.wallS += secondsSince(t0);
        r.events += server->core().events().numExecuted();
        r.metric = report.throughput(); // deterministic across reps
    }
    r.eventsPerSec =
        r.wallS > 0.0 ? static_cast<double>(r.events) / r.wallS : 0.0;
    return r;
}

// --- fleet_10k -----------------------------------------------------------

CaseResult
runFleet(const char *caseName, std::size_t jobs,
         std::uint64_t targetEvents, FluidNetwork::SolverMode mode,
         bool parallel)
{
    EventQueue eq;
    FluidNetwork net(eq);
    net.setSolverMode(mode);
    if (parallel)
        net.setParallelWorkers(kParallelWorkers, /*minFlows=*/64);

    // Per-job private resources with heterogeneous capacities: the
    // sharing graph is `jobs` disjoint components whose bottleneck
    // steps all differ, so the coupled global loop pays one freezing
    // round per job (the fleet-scale shape from ROADMAP item 1).
    struct Job
    {
        FluidResource *link;
        FluidResource *pool;
    };
    Rng rng(0x7fee7);
    std::vector<Job> jobRes;
    std::vector<std::size_t> jobFlows;
    jobRes.reserve(jobs);
    for (std::size_t j = 0; j < jobs; ++j) {
        jobRes.push_back({
            net.addResource("job" + std::to_string(j) + ".link",
                            rng.uniform(60.0, 140.0)),
            net.addResource("job" + std::to_string(j) + ".pool",
                            rng.uniform(50.0, 110.0)),
        });
        jobFlows.push_back(
            static_cast<std::size_t>(rng.uniformInt(2, 6)));
    }

    // Churn: every completion launches a replacement flow in its job,
    // so component membership changes on every event. Relaunching is
    // unconditional — the run simply stops stepping at the event budget.
    std::function<void(std::size_t)> launch = [&](std::size_t j) {
        FlowSpec spec;
        spec.category = "fleet";
        spec.size = rng.uniform(5.0, 15.0);
        if (rng.uniform() < 0.3)
            spec.rateCap = rng.uniform(3.0, 10.0); // extra filling round
        spec.demands = {{jobRes[j].link, 1.0}, {jobRes[j].pool, 0.8}};
        spec.onComplete = [&launch, j](Time) { launch(j); };
        net.startFlow(std::move(spec));
    };

    {
        FluidNetwork::FlowBatch batch(net);
        for (std::size_t j = 0; j < jobs; ++j)
            for (std::size_t k = 0; k < jobFlows[j]; ++k)
                launch(j);
    }

    // Measure steady-state churn only (setup + initial solve excluded).
    const std::uint64_t startEvents = eq.numExecuted();
    const auto t0 = Clock::now();
    while (eq.numExecuted() < startEvents + targetEvents && eq.step()) {
    }
    const double wall = secondsSince(t0);
    const std::uint64_t events = eq.numExecuted() - startEvents;

    CaseResult r;
    r.name = caseName;
    r.mode = modeName(mode, parallel);
    r.wallS = wall;
    r.events = events;
    r.eventsPerSec =
        wall > 0.0 ? static_cast<double>(events) / wall : 0.0;
    r.metric = static_cast<double>(net.numActive());
    return r;
}

// --- fleet_sessions ------------------------------------------------------

/**
 * End-to-end multi-job fleet on one shared core (trainbox/fleet.hh):
 * @p jobs co-resident mixed vision + audio TrainBox sessions, each a
 * full training run with its own prefixed fluid server — the realistic
 * fleet-scale solver shape (many mid-size disjoint components, all
 * live at once), where fleet_10k above is the synthetic raw-flow
 * stress. Metric is the fleet's aggregate throughput, which must be
 * bit-identical across solver modes.
 */
CaseResult
runFleetSessions(const char *caseName, std::size_t jobs,
                 FluidNetwork::SolverMode mode, bool parallel,
                 std::size_t warmup, std::size_t measure)
{
    FleetConfig cfg;
    for (std::size_t j = 0; j < jobs; ++j) {
        cfg.hosts.push_back({"host" + std::to_string(j), 2});
        FleetJobSpec job;
        const bool audio = j % 2 == 1;
        job.name =
            (audio ? "audio" : "vision") + std::to_string(j);
        job.arrival = 0.01 * static_cast<double>(j);
        job.config.preset = ArchPreset::TrainBox;
        job.config.model = audio ? workload::ModelId::TfSr
                                 : workload::ModelId::Resnet50;
        job.config.numAccelerators = 16;
        job.config.prepPoolFpgas = 4;
        job.warmupSteps = warmup;
        job.measureSteps = measure;
        cfg.jobs.push_back(job);
    }
    cfg.overrideSolverMode = true;
    cfg.solverMode = mode;
    cfg.parallelWorkers = parallel ? kParallelWorkers : 0;

    const auto t0 = Clock::now();
    const FleetReport report = runFleet(std::move(cfg));
    const double wall = secondsSince(t0);

    CaseResult r;
    r.name = caseName;
    r.mode = modeName(mode, parallel);
    r.wallS = wall;
    r.events = report.eventsExecuted;
    r.eventsPerSec =
        wall > 0.0 ? static_cast<double>(r.events) / wall : 0.0;
    r.metric = report.aggregateThroughput;
    return r;
}

// --- eq_churn ------------------------------------------------------------

CaseResult
runEqChurn(std::uint64_t ops)
{
    EventQueue eq;
    Rng rng(0xec0);
    std::vector<EventId> live;
    std::uint64_t fired = 0;

    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < ops; ++i) {
        const double r = rng.uniform();
        if (r < 0.5 || live.empty()) {
            live.push_back(eq.schedule(eq.now() + rng.uniform(0.0, 10.0),
                                       [&fired] { ++fired; }));
        } else if (r < 0.8) {
            // cancel a random pending event (the old O(n) hot spot)
            const std::size_t idx = static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<std::int64_t>(live.size()) -
                                      1));
            eq.cancel(live[idx]);
            live[idx] = live.back();
            live.pop_back();
        } else {
            eq.step();
        }
    }
    const double wall = secondsSince(t0);

    CaseResult r;
    r.name = "eq_churn";
    r.mode = "tombstone";
    r.wallS = wall;
    r.events = ops;
    r.eventsPerSec = wall > 0.0 ? static_cast<double>(ops) / wall : 0.0;
    r.metric = static_cast<double>(fired);
    return r;
}

// --- JSON emit / baseline compare ----------------------------------------

void
writeJson(const std::string &path, const std::vector<CaseResult> &results,
          bool smoke)
{
    std::ofstream out(path);
    out << "{\n";
    out << "  \"bench\": \"sim_perf\",\n";
    out << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
    out << "  \"cases\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const CaseResult &r = results[i];
        char line[512];
        // One case per line: the baseline comparator below is line-based.
        std::snprintf(line, sizeof(line),
                      "    {\"name\": \"%s\", \"mode\": \"%s\", "
                      "\"wall_s\": %.6f, \"events\": %llu, "
                      "\"events_per_sec\": %.1f, "
                      "\"speedup_vs_global\": %.3f, \"metric\": %.6f}%s",
                      r.name.c_str(), r.mode.c_str(), r.wallS,
                      static_cast<unsigned long long>(r.events),
                      r.eventsPerSec, r.speedupVsGlobal, r.metric,
                      i + 1 < results.size() ? "," : "");
        out << line << "\n";
    }
    out << "  ]\n";
    out << "}\n";
}

/** Extract `"key": <number>` from a one-case JSON line (-1 if absent). */
double
extractNumber(const std::string &line, const std::string &key)
{
    const std::string needle = "\"" + key + "\": ";
    const auto pos = line.find(needle);
    if (pos == std::string::npos)
        return -1.0;
    return std::atof(line.c_str() + pos + needle.size());
}

/**
 * Compare this run's speedup ratios against a committed baseline JSON.
 * Returns false (regression) when any case+mode present in both files
 * lost more than 20% of its speedup-over-global — a normalized
 * events/sec regression check that is robust to absolute host speed.
 */
bool
compareBaseline(const std::string &path,
                const std::vector<CaseResult> &results)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "sim_perf: cannot read baseline %s\n",
                     path.c_str());
        return false;
    }
    bool ok = true;
    std::string line;
    while (std::getline(in, line)) {
        if (line.find("\"name\"") == std::string::npos)
            continue;
        const double baseSpeedup =
            extractNumber(line, "speedup_vs_global");
        if (baseSpeedup <= 0.0)
            continue; // baseline-mode rows carry no ratio
        for (const CaseResult &r : results) {
            if (r.speedupVsGlobal <= 0.0)
                continue;
            if (line.find("\"name\": \"" + r.name + "\"") ==
                    std::string::npos ||
                line.find("\"mode\": \"" + r.mode + "\"") ==
                    std::string::npos)
                continue;
            if (r.speedupVsGlobal < 0.8 * baseSpeedup) {
                std::fprintf(stderr,
                             "sim_perf: REGRESSION %s/%s speedup %.2fx < "
                             "80%% of baseline %.2fx\n",
                             r.name.c_str(), r.mode.c_str(),
                             r.speedupVsGlobal, baseSpeedup);
                ok = false;
            }
        }
    }
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string outPath = "BENCH_sim_perf.json";
    std::string baselinePath;
    double minSpeedup = 5.0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            outPath = argv[++i];
        } else if (std::strcmp(argv[i], "--baseline") == 0 &&
                   i + 1 < argc) {
            baselinePath = argv[++i];
        } else if (std::strcmp(argv[i], "--min-speedup") == 0 &&
                   i + 1 < argc) {
            minSpeedup = std::atof(argv[++i]);
        } else {
            std::fprintf(stderr, "sim_perf: unknown arg %s\n", argv[i]);
            return 1;
        }
    }

    bool haveParallel = false;
    {
        EventQueue probeEq;
        FluidNetwork probeNet(probeEq);
        haveParallel = probeNet.setParallelWorkers(0);
    }

    using Mode = FluidNetwork::SolverMode;

    // fig19-at-256: a real session at the repo's largest single-server
    // scale. Smoke shrinks to 64 accelerators for CI.
    const std::size_t accs = smoke ? 64 : 256;
    const std::size_t warmup = smoke ? 1 : 2;
    const std::size_t measure = smoke ? 2 : 4;
    const std::size_t reps = smoke ? 2 : 5;
    const char *sessName = smoke ? "fig19_at_64" : "fig19_at_256";

    std::vector<CaseResult> results;
    results.push_back(runSession(sessName, accs, Mode::GlobalResolve,
                                 false, warmup, measure, reps));
    results.push_back(runSession(sessName, accs, Mode::FullResolve, false,
                                 warmup, measure, reps));
    results.push_back(runSession(sessName, accs, Mode::Incremental, false,
                                 warmup, measure, reps));
    if (haveParallel)
        results.push_back(runSession(sessName, accs, Mode::Incremental,
                                     true, warmup, measure, reps));
    for (std::size_t i = 1; i < results.size(); ++i)
        results[i].speedupVsGlobal =
            results[0].eventsPerSec > 0.0
                ? results[i].eventsPerSec / results[0].eventsPerSec
                : 0.0;

    // Bit-identity guardrail: every mode must reproduce the same session
    // throughput, to the last bit. (The session's components are
    // symmetric, so even the coupled global loop matches exactly.)
    for (std::size_t i = 1; i < results.size(); ++i) {
        if (results[i].metric != results[0].metric) {
            std::fprintf(stderr,
                         "sim_perf: BIT-IDENTITY VIOLATION: %s throughput "
                         "%.17g != global_resolve %.17g\n",
                         results[i].mode.c_str(), results[i].metric,
                         results[0].metric);
            return 1;
        }
    }

    // fleet_10k: disjoint heterogeneous-job churn. The global baseline
    // re-solves the whole network on every event, so it gets a smaller
    // event budget; the comparison is events/sec, which normalizes.
    const std::size_t jobs = smoke ? 250 : 2500;
    const char *fleetName = smoke ? "fleet_1k" : "fleet_10k";
    // The coupled loop costs seconds per event at 10k flows — a tiny
    // budget keeps the baseline measurable without dominating the run.
    const std::uint64_t globalEvents = smoke ? 60 : 15;
    const std::uint64_t fullEvents = smoke ? 600 : 2000;
    const std::uint64_t incEvents = smoke ? 4000 : 20000;

    const CaseResult fleetGlobal = runFleet(
        fleetName, jobs, globalEvents, Mode::GlobalResolve, false);
    results.push_back(fleetGlobal);
    auto addFleet = [&](std::uint64_t budget, Mode mode, bool parallel) {
        CaseResult r = runFleet(fleetName, jobs, budget, mode, parallel);
        r.speedupVsGlobal = fleetGlobal.eventsPerSec > 0.0
                                ? r.eventsPerSec /
                                      fleetGlobal.eventsPerSec
                                : 0.0;
        results.push_back(r);
        return r;
    };
    addFleet(fullEvents, Mode::FullResolve, false);
    const CaseResult fleetInc =
        addFleet(incEvents, Mode::Incremental, false);
    if (haveParallel)
        addFleet(incEvents, Mode::Incremental, true);

    // fleet_sessions: the real multi-job fleet (trainbox/fleet.hh) end
    // to end — co-resident full sessions on one shared core, run to
    // completion under each mode. Aggregate throughput must be
    // bit-identical across modes (same guardrail as fig19).
    const std::size_t fleetJobs = smoke ? 4 : 12;
    const char *fsName = smoke ? "fleet_sessions_4" : "fleet_sessions_12";
    const std::size_t fsWarmup = smoke ? 1 : 2;
    const std::size_t fsMeasure = smoke ? 2 : 4;
    const CaseResult fsGlobal = runFleetSessions(
        fsName, fleetJobs, Mode::GlobalResolve, false, fsWarmup,
        fsMeasure);
    results.push_back(fsGlobal);
    auto addFleetSessions = [&](Mode mode, bool parallel) {
        CaseResult r = runFleetSessions(fsName, fleetJobs, mode, parallel,
                                        fsWarmup, fsMeasure);
        r.speedupVsGlobal =
            fsGlobal.eventsPerSec > 0.0
                ? r.eventsPerSec / fsGlobal.eventsPerSec
                : 0.0;
        results.push_back(r);
    };
    addFleetSessions(Mode::FullResolve, false);
    addFleetSessions(Mode::Incremental, false);
    if (haveParallel)
        addFleetSessions(Mode::Incremental, true);
    for (std::size_t i = results.size() - (haveParallel ? 3 : 2);
         i < results.size(); ++i) {
        if (results[i].metric != fsGlobal.metric) {
            std::fprintf(stderr,
                         "sim_perf: BIT-IDENTITY VIOLATION: %s/%s "
                         "aggregate throughput %.17g != global_resolve "
                         "%.17g\n",
                         results[i].name.c_str(), results[i].mode.c_str(),
                         results[i].metric, fsGlobal.metric);
            return 1;
        }
    }

    results.push_back(runEqChurn(smoke ? 200000 : 2000000));

    std::printf("%-14s %-20s %10s %10s %14s %10s\n", "case", "mode",
                "wall_s", "events", "events/sec", "speedup");
    for (const CaseResult &r : results) {
        char speedup[32] = "-";
        if (r.speedupVsGlobal > 0.0)
            std::snprintf(speedup, sizeof(speedup), "%.2fx",
                          r.speedupVsGlobal);
        std::printf("%-14s %-20s %10.3f %10llu %14.1f %10s\n",
                    r.name.c_str(), r.mode.c_str(), r.wallS,
                    static_cast<unsigned long long>(r.events),
                    r.eventsPerSec, speedup);
    }

    writeJson(outPath, results, smoke);
    std::printf("\nwrote %s\n", outPath.c_str());

    if (fleetInc.speedupVsGlobal < minSpeedup) {
        std::fprintf(stderr,
                     "sim_perf: fleet incremental speedup %.2fx below "
                     "required %.2fx\n",
                     fleetInc.speedupVsGlobal, minSpeedup);
        return 2;
    }
    if (!baselinePath.empty() && !compareBaseline(baselinePath, results))
        return 3;
    return 0;
}
