/**
 * @file
 * Fig 2b: model-synchronization latency of a 4 KB-chunked ring vs the
 * number of accelerators, normalized to the two-accelerator latency.
 * The curve must saturate at ~2x (the reason more accelerators do not
 * raise sync cost). The tree and parameter-server series show what ring
 * reduction displaced; a chunk-size sweep is included as an ablation.
 */

#include <vector>

#include "bench/bench_util.hh"
#include "sync/sync_model.hh"
#include "workload/model_zoo.hh"

int
main(int argc, char **argv)
{
    using namespace tb;
    const bool csv = bench::wantCsv(argc, argv);

    const Bytes model_bytes = workload::model(
        workload::ModelId::Resnet50).modelBytes;

    bench::banner("Fig 2b: ring sync latency normalized to 2 accelerators"
                  " (Resnet-50 gradients, 4 KB chunks)");
    {
        Table t({"#accelerators", "ring", "tree", "parameter-server"});
        for (std::size_t n : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
            sync::SyncConfig cfg;
            t.row().add(static_cast<long long>(n));
            for (sync::Algorithm alg :
                 {sync::Algorithm::Ring, sync::Algorithm::Tree,
                  sync::Algorithm::ParameterServer}) {
                cfg.algorithm = alg;
                t.add(sync::normalizedSyncLatency(cfg, n, model_bytes), 3);
            }
        }
        bench::emit(t, csv);
    }

    bench::banner("Ablation: ring chunk-size sensitivity (n = 256, "
                  "normalized to 2 accelerators)");
    {
        Table t({"chunk bytes", "normalized latency", "latency (ms)"});
        for (double chunk : {512.0, 1024.0, 4096.0, 16384.0, 65536.0,
                             262144.0}) {
            sync::SyncConfig cfg;
            cfg.chunkBytes = chunk;
            t.row()
                .add(static_cast<long long>(chunk))
                .add(sync::normalizedSyncLatency(cfg, 256, model_bytes), 3)
                .add(sync::syncLatency(cfg, 256, model_bytes) * 1e3, 3);
        }
        bench::emit(t, csv);
    }
    return 0;
}
