/**
 * @file
 * Fleet fault-tolerance sweep (src/trainbox/fleet.hh,
 * docs/ROBUSTNESS.md "Fleet fault tolerance").
 *
 * Full mode sweeps host-outage MTBF × retry budget on a six-job
 * co-resident trace, reporting completion/abandonment counts, restarts,
 * steps and wall time lost, re-placement latency, and host down time —
 * the fleet-level availability/goodput tradeoff: a deeper retry budget
 * converts abandonments into restarts and buys completions at the cost
 * of replayed work, while checkpointing shrinks the replay itself.
 *
 * --smoke runs the CI assertion mode instead: the disabled path is
 * bit-identical to a fault-free fleet, a scripted host death returns
 * its integer pool grant for immediate re-lending (and the victim
 * retries to completion), and seeded chaos runs hold every
 * conservation ledger and replay deterministically. Exits non-zero on
 * any violation.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "trainbox/fleet.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

namespace {

using namespace tb;

/** One 16-accelerator (2-box) TrainBox job, vision or audio. */
FleetJobSpec
makeJob(std::size_t idx, bool disturbed)
{
    FleetJobSpec job;
    const bool audio = idx % 2 == 1;
    job.name = (audio ? "audio" : "vision") + std::to_string(idx);
    job.arrival = 0.05 * static_cast<double>(idx);
    job.config.preset = ArchPreset::TrainBox;
    job.config.model = audio ? workload::ModelId::TfSr
                             : workload::ModelId::Resnet50;
    job.config.numAccelerators = 16;
    job.config.prepPoolFpgas = 4;
    job.warmupSteps = 2;
    job.measureSteps = 4;
    if (disturbed) {
        job.config.faults.enabled = true;
        job.config.faults.seed = 17 + idx;
        job.config.faults.ssdReadFailureProb = 0.01;
        job.config.faults.prepCrash.ratePerSec = 0.03;
        job.config.faults.prepCrash.duration = 0.8;
        job.config.faults.corruption.ssdBitFlipProb = 0.004;
        job.config.faults.integrityChecks = true;
        job.config.elasticity.enabled = true;
        job.config.elasticity.seed = 31 + idx;
        job.config.elasticity.groupDrain.ratePerSec = 0.05;
        job.config.elasticity.groupDrain.absence = 0.8;
        job.config.ingest.enabled = true;
        job.config.ingest.seed = 47 + idx;
        job.config.ingest.steady = {12000.0, 256.0, 2};
        job.config.ingest.bufferCapacity = 8192.0;
        job.config.ingest.highWatermark = 6144.0;
        job.config.ingest.lowWatermark = 2048.0;
        job.config.ingest.policyChain = {IngestPolicy::Shed,
                                         IngestPolicy::Echo};
    }
    return job;
}

/** Bare-session wall time: the yardstick for MTBF and horizon knobs. */
Time
bareWall()
{
    FleetJobSpec ref = makeJob(0, /*disturbed=*/false);
    auto server = buildServer(ref.config);
    TrainingSession session(*server);
    return session.run(ref.warmupSteps, ref.measureSteps).wallTime;
}

/**
 * @p jobs two-box jobs on @p hostCount two-box hosts with seeded
 * host-outage/box-loss faults scaled to the bare wall time @p w.
 */
FleetConfig
makeFaultFleet(std::size_t jobs, std::size_t hostCount, Time w,
               double mtbfScale, std::size_t maxRetries,
               std::uint64_t seed, bool disturbed)
{
    FleetConfig fleet;
    for (std::size_t h = 0; h < hostCount; ++h)
        fleet.hosts.push_back({"host" + std::to_string(h), 2});
    fleet.policy = PlacementPolicy::Packed;
    fleet.sharedPoolFpgas =
        static_cast<int>(3 * std::max<std::size_t>(jobs, 2));
    for (std::size_t j = 0; j < jobs; ++j)
        fleet.jobs.push_back(makeJob(j, disturbed));
    fleet.horizon = 10.0 * w;
    fleet.faults.enabled = true;
    fleet.faults.seed = seed;
    fleet.faults.hostOutage = {mtbfScale * w, 0.1 * w};
    fleet.faults.boxLoss = {2.0 * mtbfScale * w, 0.1 * w};
    fleet.faults.maxRetries = maxRetries;
    fleet.faults.retryBackoffBase = 0.02 * w;
    return fleet;
}

// --- full sweep ----------------------------------------------------------

int
sweep(bool csv)
{
    const Time w = bareWall();
    const double mtbfScales[] = {1.0, 2.0, 4.0};
    const std::size_t retryBudgets[] = {0, 2, 4};

    if (csv)
        std::printf("mtbf_x,max_retries,completed,abandoned,at_horizon,"
                    "restarts,steps_lost,work_lost_s,avg_replace_s,"
                    "host_down_s,fleet_faults\n");
    else
        std::printf("%6s %7s %9s %9s %10s %8s %10s %11s %13s %11s %12s\n",
                    "mtbf_x", "retries", "completed", "abandoned",
                    "at_horizon", "restarts", "steps_lost",
                    "work_lost_s", "avg_replace_s", "host_down_s",
                    "fleet_faults");

    for (double scale : mtbfScales) {
        for (std::size_t retries : retryBudgets) {
            const FleetReport r = runFleet(makeFaultFleet(
                6, 3, w, scale, retries, /*seed=*/0x5eed + retries,
                /*disturbed=*/false));
            const std::size_t atHorizon =
                r.jobsRunningAtHorizon + r.jobsQueuedAtHorizon;
            if (csv)
                std::printf(
                    "%.1f,%zu,%zu,%zu,%zu,%zu,%zu,%.4f,%.4f,%.4f,%zu\n",
                    scale, retries, r.jobsCompleted, r.jobsAbandoned,
                    atHorizon, r.restartsTotal, r.stepsLostTotal,
                    r.workLostTime, r.avgReplacementLatency,
                    r.hostDownTime, r.fleetFaultsInjected);
            else
                std::printf("%6.1f %7zu %9zu %9zu %10zu %8zu %10zu "
                            "%11.3f %13.3f %11.3f %12zu\n",
                            scale, retries, r.jobsCompleted,
                            r.jobsAbandoned, atHorizon, r.restartsTotal,
                            r.stepsLostTotal, r.workLostTime,
                            r.avgReplacementLatency, r.hostDownTime,
                            r.fleetFaultsInjected);
        }
    }
    return 0;
}

// --- CI smoke assertions -------------------------------------------------

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::printf("FAIL: %s\n", what);
        ++failures;
    }
}

int
smoke()
{
    // 1. Fault tolerance enabled with every class off schedules zero
    // events: the report is bit-identical to the disabled path.
    {
        FleetConfig enabled;
        enabled.hosts.push_back({"host0", 2});
        enabled.jobs.push_back(makeJob(0, /*disturbed=*/false));
        enabled.faults.enabled = true;
        FleetConfig disabled = enabled;
        disabled.faults.enabled = false;
        const FleetReport a = runFleet(enabled);
        const FleetReport b = runFleet(disabled);
        check(a.jobsCompleted == 1, "empty-fault fleet completes");
        check(a.toJson() == b.toJson(),
              "empty fault config is bit-identical to disabled");
        check(a.eventsExecuted == b.eventsExecuted,
              "empty fault config adds zero events");
    }

    // 2. A scripted host death at admission time kills the victim,
    // returns its 4-FPGA grant for immediate re-lending (the job
    // arriving during the outage gets the full grant from a 6-FPGA
    // pool), and the victim retries to completion with the residue.
    {
        FleetConfig fleet;
        fleet.hosts.push_back({"host0", 4});
        fleet.sharedPoolFpgas = 6;
        fleet.faults.enabled = true;
        fleet.faults.maxRetries = 3;
        fleet.faults.retryBackoffBase = 0.05;
        fleet.faults.schedule.push_back({FleetFaultKind::HostOutage,
                                         /*host=*/0, /*start=*/0.0,
                                         /*duration=*/0.03});
        FleetJobSpec victim = makeJob(0, /*disturbed=*/false);
        victim.arrival = 0.0;
        FleetJobSpec lucky = makeJob(1, /*disturbed=*/false);
        lucky.arrival = 0.01;
        fleet.jobs.push_back(victim);
        fleet.jobs.push_back(lucky);

        const FleetReport r = runFleet(fleet);
        check(r.jobsCompleted == 2, "killed fleet recovers fully");
        check(r.restartsTotal == 1, "exactly one restart");
        check(r.jobs[0].state == FleetJobState::Completed &&
                  r.jobs[0].restarts == 1,
              "victim retried to completion");
        check(r.jobs[1].poolFpgasGranted == 4 &&
                  !r.jobs[1].poolConstrained,
              "freed grant re-lent whole to the queued job");
        check(r.jobs[0].poolFpgasGranted == 2 &&
                  r.jobs[0].poolConstrained,
              "victim's retry granted the 2-FPGA residue");
        check(r.fleetFaultsInjected == 1, "one fleet fault injected");
        check(r.hostDownTime > 0.0, "outage accrued host down time");
    }

    // 3. Seeded chaos (fleet faults over disturbed jobs): the fleet
    // job ledger holds for every seed — the per-session, pool-grant,
    // and sample ledgers are panic-checked inside the simulator, so
    // completing each run is itself an assertion — and a same-seed
    // replay is byte-identical.
    {
        const Time w = bareWall();
        std::string first;
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            const FleetReport r = runFleet(makeFaultFleet(
                2, 2, w, /*mtbfScale=*/1.5, /*maxRetries=*/2, seed,
                /*disturbed=*/true));
            check(r.jobsCompleted + r.jobsAbandoned +
                          r.jobsRunningAtHorizon + r.jobsQueuedAtHorizon ==
                      r.jobsTotal,
                  "fleet job conservation ledger");
            if (seed == 1)
                first = r.toJson();
        }
        const FleetReport again = runFleet(makeFaultFleet(
            2, 2, w, 1.5, 2, /*seed=*/1, /*disturbed=*/true));
        check(again.toJson() == first, "same-seed chaos replay");
    }

    std::printf(failures == 0
                    ? "fleet fault smoke: all checks passed\n"
                    : "fleet fault smoke: %d FAILURES\n",
                failures);
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            return smoke();
    return sweep(bench::wantCsv(argc, argv));
}
