/**
 * @file
 * Design-space ablations for the choices DESIGN.md calls out (not paper
 * figures, but the sensitivity analyses behind them):
 *
 *   A. FPGAs per train box: static provisioning vs the prep-pool
 *      (§IV-D's workload-adaptability argument).
 *   B. Root-complex bandwidth sweep: the non-clustered presets chase RC
 *      bandwidth; TrainBox is flat (clustering > faster links).
 *   C. Host core count: only the baseline cares (scale-up thesis).
 *   D. Prep-pool Ethernet port speed: when the pool link gets slow it
 *      becomes the new bottleneck for audio.
 */

#include "bench/bench_util.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

namespace {

using namespace tb;

double
run(ServerConfig cfg)
{
    auto server = buildServer(cfg);
    TrainingSession session(*server);
    return session.run(6, 12).throughput;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool csv = bench::wantCsv(argc, argv);

    bench::banner("A. FPGAs per train box (TF-SR, 256 accs, no pool) — "
                  "static provisioning vs prep-pool");
    {
        Table t({"FPGAs/box", "throughput (samples/s)", "of target %",
                 "pool FPGAs if enabled"});
        sync::SyncConfig sync_cfg;
        const double target = workload::targetThroughput(
            workload::model(workload::ModelId::TfSr), 256, sync_cfg);
        for (std::size_t fpgas : {1u, 2u, 3u, 4u}) {
            ServerConfig cfg;
            cfg.preset = ArchPreset::TrainBoxNoPool;
            cfg.model = workload::ModelId::TfSr;
            cfg.numAccelerators = 256;
            cfg.box.prepPerBox = fpgas;
            const double thpt = run(cfg);
            cfg.preset = ArchPreset::TrainBox;
            const PrepPlan plan = planPreparation(cfg);
            t.row()
                .add(static_cast<long long>(fpgas))
                .add(thpt, 0)
                .add(100.0 * thpt / target, 1)
                .add(static_cast<long long>(plan.poolFpgas));
        }
        bench::emit(t, csv);
        std::printf("\n(2 FPGAs/box + a shared pool covers audio without "
                    "re-provisioning every box for the worst case)\n");
    }

    bench::banner("B. Root-complex bandwidth (Resnet-50, 256 accs)");
    {
        Table t({"RC GB/s", "B+Acc+P2P", "TrainBox"});
        for (double rc : {32e9, 64e9, 128e9, 256e9}) {
            t.row().add(rc / 1e9, 0);
            for (ArchPreset p :
                 {ArchPreset::BaselineAccP2p, ArchPreset::TrainBox}) {
                ServerConfig cfg;
                cfg.preset = p;
                cfg.model = workload::ModelId::Resnet50;
                cfg.numAccelerators = 256;
                cfg.host.rcBandwidth = rc;
                t.add(run(cfg), 0);
            }
        }
        bench::emit(t, csv);
        std::printf("\n(non-clustered throughput tracks the RC; TrainBox "
                    "is flat — the datapath, not the link, was the "
                    "problem)\n");
    }

    bench::banner("C. Host cores (Resnet-50, 256 accs)");
    {
        Table t({"cores", "Baseline", "TrainBox"});
        for (double cores : {24.0, 48.0, 96.0, 192.0}) {
            t.row().add(cores, 0);
            for (ArchPreset p :
                 {ArchPreset::Baseline, ArchPreset::TrainBox}) {
                ServerConfig cfg;
                cfg.preset = p;
                cfg.model = workload::ModelId::Resnet50;
                cfg.numAccelerators = 256;
                cfg.host.cpuCores = cores;
                t.add(run(cfg), 0);
            }
        }
        bench::emit(t, csv);
        std::printf("\n(the baseline buys throughput with sockets; "
                    "TrainBox does not need them — §III-E guideline)\n");
    }

    bench::banner("D. Prep-pool port speed (TF-SR, 256 accs, pool "
                  "resized per plan)");
    {
        Table t({"port GB/s", "pool FPGAs", "throughput", "of target %"});
        sync::SyncConfig sync_cfg;
        const double target = workload::targetThroughput(
            workload::model(workload::ModelId::TfSr), 256, sync_cfg);
        // Sweep by scaling the ssd+prepared bytes per pool FPGA is
        // equivalent to scaling the port; emulate with pool size.
        for (int pool : {8, 16, 34, 64}) {
            ServerConfig cfg;
            cfg.preset = ArchPreset::TrainBox;
            cfg.model = workload::ModelId::TfSr;
            cfg.numAccelerators = 256;
            cfg.prepPoolFpgas = pool;
            const double thpt = run(cfg);
            t.row()
                .add(12.5, 1)
                .add(static_cast<long long>(pool))
                .add(thpt, 0)
                .add(100.0 * thpt / target, 1);
        }
        bench::emit(t, csv);
    }
    return 0;
}
