/**
 * @file
 * google-benchmark microbenches for the simulation core: event queue
 * throughput, fluid-network rate recomputation at various flow counts,
 * and a full 256-accelerator TrainBox session.
 */

#include <benchmark/benchmark.h>

#include "fluid/fluid.hh"
#include "sim/event_queue.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

namespace {

using namespace tb;

void
BM_EventQueue(benchmark::State &state)
{
    for (auto _ : state) {
        EventQueue eq;
        for (int i = 0; i < 1000; ++i)
            eq.scheduleIn(i * 1e-6, [] {});
        eq.run();
        benchmark::DoNotOptimize(eq.numExecuted());
    }
}
BENCHMARK(BM_EventQueue)->Unit(benchmark::kMicrosecond);

void
BM_FluidRecompute(benchmark::State &state)
{
    const int n_flows = static_cast<int>(state.range(0));
    for (auto _ : state) {
        EventQueue eq;
        FluidNetwork net(eq);
        FluidResource *shared = net.addResource("shared", 1e9);
        FluidResource *other = net.addResource("other", 1e9);
        for (int i = 0; i < n_flows; ++i) {
            FlowSpec spec;
            spec.category = "bench";
            spec.size = 1e6;
            spec.demands = {{shared, 1.0}, {other, 0.5}};
            net.startFlow(std::move(spec));
        }
        eq.run();
        benchmark::DoNotOptimize(shared->totalServed());
    }
}
BENCHMARK(BM_FluidRecompute)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

void
BM_TrainBoxSession(benchmark::State &state)
{
    for (auto _ : state) {
        ServerConfig cfg;
        cfg.preset = ArchPreset::TrainBox;
        cfg.model = workload::ModelId::Resnet50;
        cfg.numAccelerators = static_cast<std::size_t>(state.range(0));
        auto server = buildServer(cfg);
        TrainingSession session(*server);
        benchmark::DoNotOptimize(session.run(2, 4).throughput);
    }
}
BENCHMARK(BM_TrainBoxSession)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
