/**
 * @file
 * Fig 22: measured host-resource utilization (CPU / memory BW / PCIe BW)
 * of Baseline, B+Acc, B+Acc+P2P, and TrainBox, normalized to the
 * baseline's consumption, split by activity. Uses the DES accounting:
 * every fluid resource records per-category units served during the
 * measurement window, surfaced through the shared SessionReport sweep.
 */

#include "bench/bench_util.hh"

int
main(int argc, char **argv)
{
    using namespace tb;
    using workload::InputType;
    const bool csv = bench::wantCsv(argc, argv);

    const std::vector<ArchPreset> presets = {
        ArchPreset::Baseline, ArchPreset::BaselineAccFpga,
        ArchPreset::BaselineAccP2p, ArchPreset::TrainBox,
    };
    const std::vector<std::string> cats = {
        "ssd_read", "formatting", "augmentation", "data_copy",
        "data_load", "others"};

    for (InputType input : {InputType::Image, InputType::Audio}) {
        const workload::ModelInfo &m = workload::model(
            input == InputType::Image ? workload::ModelId::Resnet50
                                      : workload::ModelId::TfSr);

        bench::banner(std::string("Fig 22") +
                      (input == InputType::Image ? "a (image, " :
                                                   "b (audio, ") +
                      m.name +
                      "): host utilization normalized to baseline");
        std::vector<std::string> headers = {"resource", "category"};
        for (auto p : presets)
            headers.push_back(presetName(p));
        Table t(headers);

        // Collect per-preset reports first (shared sweep runner).
        const std::vector<SessionReport> reports = bench::sweepPresets(
            ServerConfig::baseline().withModel(m.id).withAccelerators(
                256),
            presets, /*warmup=*/6, /*measure=*/12);

        struct Axis
        {
            const char *name;
            const std::map<std::string, double> &(*get)(
                const SessionReport &);
            double (SessionReport::*total)() const;
        };
        const Axis axes[3] = {
            {"CPU",
             [](const SessionReport &r) -> const std::map<std::string,
                                                          double> & {
                 return r.result.cpuCoresByCategory;
             },
             &SessionReport::hostCpuCores},
            {"Memory BW",
             [](const SessionReport &r) -> const std::map<std::string,
                                                          double> & {
                 return r.result.memBwByCategory;
             },
             &SessionReport::hostMemBw},
            {"PCIe BW",
             [](const SessionReport &r) -> const std::map<std::string,
                                                          double> & {
                 return r.result.rcBwByCategory;
             },
             &SessionReport::hostRcBw},
        };

        for (const auto &axis : axes) {
            // Normalize to the baseline's total consumption, and report
            // consumption per unit of training throughput so that faster
            // presets are not penalized for doing more work.
            const double base = (reports[0].*(axis.total))() /
                                reports[0].throughput();
            for (const auto &cat : cats) {
                bool any = false;
                for (std::size_t i = 0; i < presets.size(); ++i) {
                    const auto &by = axis.get(reports[i]);
                    if (by.count(cat) && by.at(cat) > 0.0)
                        any = true;
                }
                if (!any)
                    continue;
                t.row().add(axis.name).add(cat);
                for (std::size_t i = 0; i < presets.size(); ++i) {
                    const auto &by = axis.get(reports[i]);
                    const double v = by.count(cat) ? by.at(cat) : 0.0;
                    t.add(v / reports[i].throughput() / base, 3);
                }
            }
            t.row().add(axis.name).add("TOTAL");
            for (std::size_t i = 0; i < presets.size(); ++i)
                t.add((reports[i].*(axis.total))() /
                          reports[i].throughput() / base,
                      3);
        }
        bench::emit(t, csv);
    }
    return 0;
}
