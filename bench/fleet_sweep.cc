/**
 * @file
 * Fleet sweep: multi-job scheduling on one shared simulation core
 * (src/trainbox/fleet.hh, docs/FLEET.md).
 *
 * Full mode sweeps job count × placement policy × shared-pool share
 * (the pool sized as a fraction of the trace's aggregate FPGA
 * request) on a mixed vision + audio arrival trace, reporting
 * makespan, queueing delay, pool fairness, and aggregate throughput —
 * the fleet-level view of the paper's §V-D multi-job sharing argument:
 * pool-aware placement holds fairness (and throughput) as the pool
 * share shrinks, where naive first-fit fragments the grants.
 *
 * --smoke runs the CI assertion mode instead: one-job fleet ==
 * bare-session bit-identity, two-job determinism, concurrent grants
 * summing exactly to the pool, nonzero queueing under an
 * oversubscribed host, and per-job conservation ledgers under a
 * chaos (faults + elasticity + ingest) trace. Exits non-zero on any
 * violation.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "trainbox/fleet.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

namespace {

using namespace tb;

/** One 16-accelerator (2-box) TrainBox job, vision or audio. */
FleetJobSpec
makeJob(std::size_t idx, bool disturbed)
{
    FleetJobSpec job;
    const bool audio = idx % 2 == 1;
    job.name = (audio ? "audio" : "vision") + std::to_string(idx);
    job.arrival = 0.05 * static_cast<double>(idx);
    job.config.preset = ArchPreset::TrainBox;
    job.config.model = audio ? workload::ModelId::TfSr
                             : workload::ModelId::Resnet50;
    job.config.numAccelerators = 16;
    job.config.prepPoolFpgas = 4;
    job.warmupSteps = 2;
    job.measureSteps = 4;
    if (disturbed) {
        job.config.faults.enabled = true;
        job.config.faults.seed = 17 + idx;
        job.config.faults.ssdReadFailureProb = 0.01;
        job.config.faults.prepCrash.ratePerSec = 0.03;
        job.config.faults.prepCrash.duration = 0.8;
        job.config.faults.corruption.ssdBitFlipProb = 0.004;
        job.config.faults.integrityChecks = true;
        job.config.elasticity.enabled = true;
        job.config.elasticity.seed = 31 + idx;
        job.config.elasticity.groupDrain.ratePerSec = 0.05;
        job.config.elasticity.groupDrain.absence = 0.8;
        job.config.elasticity.prepPreempt.ratePerSec = 0.05;
        job.config.elasticity.prepPreempt.absence = 0.8;
        job.config.ingest.enabled = true;
        job.config.ingest.seed = 47 + idx;
        job.config.ingest.steady = {12000.0, 256.0, 2};
        job.config.ingest.bufferCapacity = 8192.0;
        job.config.ingest.highWatermark = 6144.0;
        job.config.ingest.lowWatermark = 2048.0;
        job.config.ingest.policyChain = {IngestPolicy::Shed,
                                         IngestPolicy::Echo};
    }
    return job;
}

/**
 * @p hostCount two-box hosts; each job needs two boxes, so hostCount
 * == jobs means full co-residency and hostCount < jobs queues the
 * tail of the trace.
 */
FleetConfig
makeFleet(std::size_t jobs, std::size_t hostCount,
          PlacementPolicy policy, double poolShare, bool disturbed)
{
    FleetConfig fleet;
    for (std::size_t h = 0; h < hostCount; ++h)
        fleet.hosts.push_back({"host" + std::to_string(h), 2});
    fleet.policy = policy;
    for (std::size_t j = 0; j < jobs; ++j)
        fleet.jobs.push_back(makeJob(j, disturbed));
    // Pool share is relative to the trace's aggregate request
    // (4 FPGAs/job); negative share = uncapped.
    fleet.sharedPoolFpgas = poolShare < 0.0
        ? -1
        : static_cast<int>(std::ceil(poolShare * 4.0 *
                                     static_cast<double>(jobs)));
    return fleet;
}

// --- full sweep ----------------------------------------------------------

int
sweep(bool csv)
{
    const std::size_t jobCounts[] = {2, 4, 6};
    const PlacementPolicy policies[] = {PlacementPolicy::FirstFit,
                                        PlacementPolicy::Packed,
                                        PlacementPolicy::PrepPoolAware};
    const double poolShares[] = {0.25, 0.5, 1.0};

    if (csv)
        std::printf("jobs,policy,pool_fpgas,makespan_s,avg_queue_s,"
                    "fairness,constrained,agg_throughput\n");
    else
        std::printf("%4s %-10s %6s %11s %11s %9s %12s %15s\n", "jobs",
                    "policy", "pool", "makespan_s", "avg_queue_s",
                    "fairness", "constrained", "agg_samples/s");

    for (std::size_t jobs : jobCounts) {
        for (PlacementPolicy policy : policies) {
            for (double share : poolShares) {
                // Hosts for half the trace: overlapping arrivals queue.
                const FleetReport r = runFleet(
                    makeFleet(jobs, (jobs + 1) / 2, policy, share,
                              /*disturbed=*/false));
                if (csv)
                    std::printf("%zu,%s,%zu,%.4f,%.4f,%.4f,%zu,%.1f\n",
                                jobs, r.policy.c_str(), r.poolFpgasTotal,
                                r.makespan, r.avgQueueingDelay,
                                r.poolFairness, r.jobsPoolConstrained,
                                r.aggregateThroughput);
                else
                    std::printf(
                        "%4zu %-10s %6zu %11.3f %11.3f %9.3f %12zu "
                        "%15.1f\n",
                        jobs, r.policy.c_str(), r.poolFpgasTotal,
                        r.makespan, r.avgQueueingDelay, r.poolFairness,
                        r.jobsPoolConstrained, r.aggregateThroughput);
            }
        }
    }
    return 0;
}

// --- CI smoke assertions -------------------------------------------------

int failures = 0;

void
check(bool ok, const char *what)
{
    if (!ok) {
        std::printf("FAIL: %s\n", what);
        ++failures;
    }
}

int
smoke()
{
    // 1. One-job fleet reproduces the bare session to the double.
    {
        ServerConfig cfg;
        cfg.preset = ArchPreset::TrainBox;
        cfg.model = workload::ModelId::Resnet50;
        cfg.numAccelerators = 16;
        auto server = buildServer(cfg);
        TrainingSession session(*server);
        const SessionResult bare = session.run(2, 4);

        FleetConfig solo;
        solo.hosts.push_back({"host0", 2});
        FleetJobSpec job;
        job.name = "solo";
        job.config = cfg;
        job.warmupSteps = 2;
        job.measureSteps = 4;
        solo.jobs.push_back(job);
        const FleetReport r = runFleet(solo);
        check(r.jobsCompleted == 1, "solo fleet completes");
        check(r.jobs[0].report.result.throughput == bare.throughput,
              "solo fleet throughput bit-identical to bare session");
        check(r.jobs[0].report.result.wallTime == bare.wallTime,
              "solo fleet wall time bit-identical to bare session");
    }

    // 2. Two-job co-resident disturbed fleet replays identically.
    {
        const FleetReport a = runFleet(makeFleet(
            2, 2, PlacementPolicy::Packed, 0.75, /*disturbed=*/true));
        const FleetReport b = runFleet(makeFleet(
            2, 2, PlacementPolicy::Packed, 0.75, /*disturbed=*/true));
        check(a.toJson() == b.toJson(),
              "two-job disturbed fleet is deterministic");
        check(a.eventsExecuted == b.eventsExecuted,
              "deterministic event count");

        // 3. Conservation ledgers hold per job (the sessions also
        // panic-check internally — completing at all is the real test).
        check(a.jobsCompleted == 2, "disturbed fleet completes");
        for (const FleetJobResult &j : a.jobs) {
            const auto &e = j.report.result.elasticity;
            check(std::fabs(e.samplesPrepared -
                            (e.samplesConsumed + e.samplesCachedAtEnd +
                             e.samplesDiscarded)) <=
                      1e-6 * std::max(1.0, e.samplesPrepared),
                  "per-job sample ledger");
            const auto &in = j.report.result.ingest;
            check(std::fabs(in.samplesArrived -
                            (in.samplesAdmitted + in.samplesShed +
                             in.samplesInFlightAtEnd)) <=
                      1e-6 * std::max(1.0, in.samplesArrived),
                  "per-job ingest ledger");
            const auto &ig = j.report.result.integrity;
            check(ig.injected == ig.detected + ig.escaped,
                  "per-job integrity accounting");
        }
    }

    // 4. Concurrent grants sum exactly to an oversubscribed pool:
    // both jobs co-resident, pool = 6 vs 8 requested.
    {
        const FleetReport r = runFleet(makeFleet(
            2, 2, PlacementPolicy::Packed, 0.75, /*disturbed=*/false));
        check(r.poolFpgasGrantedTotal == r.poolFpgasTotal,
              "concurrent grants sum to the pool");
        check(r.jobsPoolConstrained == 1, "latecomer pool-constrained");
        check(r.poolFairness > 0.0 && r.poolFairness < 1.0,
              "fairness index reflects the uneven split");
    }

    // 5. An oversubscribed host produces queueing delay: one two-box
    // host serializes four two-box jobs.
    {
        const FleetReport r = runFleet(makeFleet(
            4, 1, PlacementPolicy::FirstFit, -1.0, /*disturbed=*/false));
        check(r.jobsCompleted == 4, "queued trace completes");
        check(r.jobsQueued >= 3, "tail jobs queued");
        check(r.maxQueueingDelay > 0.0, "nonzero queueing delay");
    }

    std::printf(failures == 0 ? "fleet smoke: all checks passed\n"
                              : "fleet smoke: %d FAILURES\n",
                failures);
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            return smoke();
    return sweep(bench::wantCsv(argc, argv));
}
