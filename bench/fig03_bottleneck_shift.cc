/**
 * @file
 * Fig 3: latency decomposition of Resnet-50 training while stacking
 * platform optimizations (data prep + others = 100%).
 *
 *   Current      — 8 Titan-XP-class GPUs, PCIe interconnect, PS sync
 *   +HW accel    — 256 TPU-v3-8-class accelerators, PCIe, PS sync
 *   +ICN         — NVLink-class interconnect, PS sync
 *   +Sync opt    — ring-based reduction
 *
 * Data preparation runs on the 48-core host in all four configurations;
 * as the other steps accelerate, preparation comes to dominate (the paper
 * reports 54.9x longer than the rest in the final configuration).
 */

#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "pcie/topology.hh"
#include "sync/sync_model.hh"
#include "workload/cost_model.hh"

int
main(int argc, char **argv)
{
    using namespace tb;
    const bool csv = bench::wantCsv(argc, argv);

    const workload::ModelInfo &resnet =
        workload::model(workload::ModelId::Resnet50);
    const workload::PrepDemand d = workload::prepDemand(resnet.input);
    constexpr double host_cores = 48.0;
    constexpr Rate titan_xp_throughput = 230.0; // samples/s per GPU

    struct Platform
    {
        std::string name;
        std::size_t n;
        Rate device_throughput;
        sync::SyncConfig sync;
    };

    sync::SyncConfig pcie_ps;
    pcie_ps.algorithm = sync::Algorithm::ParameterServer;
    pcie_ps.linkBandwidth = pcie::gen::gen3x16;

    sync::SyncConfig nvlink_ps = pcie_ps;
    nvlink_ps.linkBandwidth = 150.0e9;

    sync::SyncConfig nvlink_ring = nvlink_ps;
    nvlink_ring.algorithm = sync::Algorithm::Ring;

    const std::vector<Platform> platforms = {
        {"Current (8 Titan XP, PCIe)", 8, titan_xp_throughput, pcie_ps},
        {"+HW accelerator (256 TPU)", 256, resnet.deviceThroughput,
         pcie_ps},
        {"+ICN (NVLink-speed)", 256, resnet.deviceThroughput, nvlink_ps},
        {"+Sync optimization (ring)", 256, resnet.deviceThroughput,
         nvlink_ring},
    };

    bench::banner("Fig 3: Resnet-50 per-batch latency split "
                  "(prep vs compute+sync, normalized to 100%)");
    Table t({"platform", "prep %", "compute %", "sync %",
             "prep/others ratio"});
    for (const auto &p : platforms) {
        // Global batch = n per-device batches; preparation shares the
        // 48-core host.
        const double samples =
            static_cast<double>(p.n) *
            static_cast<double>(resnet.batchSize);
        const Time t_prep = samples * d.cpuCoreSec / host_cores;
        const Time t_comp =
            static_cast<double>(resnet.batchSize) / p.device_throughput;
        const Time t_sync =
            sync::syncLatency(p.sync, p.n, resnet.modelBytes);
        const Time total = t_prep + t_comp + t_sync;
        t.row()
            .add(p.name)
            .add(100.0 * t_prep / total, 1)
            .add(100.0 * t_comp / total, 1)
            .add(100.0 * t_sync / total, 1)
            .add(t_prep / (t_comp + t_sync), 1);
    }
    bench::emit(t, csv);
    std::printf("\n(paper: preparation reaches 54.9x the rest in the "
                "final configuration)\n");
    return 0;
}
