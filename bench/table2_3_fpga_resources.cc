/**
 * @file
 * Tables II and III: FPGA resource utilization of the image and audio
 * data-preparation accelerator configurations on the XCVU9P.
 */

#include "bench/bench_util.hh"
#include "fpga/engine_library.hh"

namespace {

void
printPlan(const char *title, const tb::fpga::Floorplan &plan, bool csv)
{
    using namespace tb;
    bench::banner(title);
    Table t({"engine", "LUTs", "LUT %", "FF", "FF %", "BRAM", "BRAM %",
             "DSP", "DSP %"});
    for (const auto &e : plan.engines()) {
        const fpga::Utilization u = plan.utilizationOf(e);
        t.row()
            .add(e.name)
            .add(static_cast<long long>(e.cost.lut))
            .add(u.lutPct, 1)
            .add(static_cast<long long>(e.cost.ff))
            .add(u.ffPct, 1)
            .add(static_cast<long long>(e.cost.bram))
            .add(u.bramPct, 1)
            .add(static_cast<long long>(e.cost.dsp))
            .add(u.dspPct, 1);
    }
    const fpga::Utilization total = plan.utilization();
    const fpga::Resources sum = plan.total();
    t.row()
        .add("TOTAL")
        .add(static_cast<long long>(sum.lut))
        .add(total.lutPct, 1)
        .add(static_cast<long long>(sum.ff))
        .add(total.ffPct, 1)
        .add(static_cast<long long>(sum.bram))
        .add(total.bramPct, 1)
        .add(static_cast<long long>(sum.dsp))
        .add(total.dspPct, 1);
    bench::emit(t, csv);
    std::printf("fits %s: %s\n", plan.device().name.c_str(),
                plan.fits() ? "yes" : "NO");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tb;
    const bool csv = bench::wantCsv(argc, argv);
    printPlan("Table II: FPGA resource utilization (image version)",
              fpga::imageFloorplan(), csv);
    printPlan("Table III: FPGA resource utilization (audio version)",
              fpga::audioFloorplan(), csv);
    std::printf("\n(paper totals — image: 78.7%% LUT / 38.1%% FF / "
                "51.5%% BRAM / 30.5%% DSP; audio: 80.2%% / 46.3%% / "
                "77.1%% / 12.2%%)\n");
    return 0;
}
