/**
 * @file
 * Fig 10: host resources the baseline would need to sustain the target
 * throughput of n accelerators, normalized to DGX-2 capacities
 * (48 cores / 239 GB/s DRAM / 64 GB/s effective root complex).
 * The paper reports maxima of 100.7x cores, 17.9x memory bandwidth, and
 * 18.0x PCIe bandwidth at 256 accelerators.
 *
 * A measured SessionReport at one accelerator (where the baseline host
 * is still unsaturated) cross-checks the analytic projection.
 */

#include <algorithm>
#include <vector>

#include "bench/bench_util.hh"
#include "trainbox/resource_profile.hh"

int
main(int argc, char **argv)
{
    using namespace tb;
    const bool csv = bench::wantCsv(argc, argv);

    const std::vector<std::size_t> scales = {1, 4, 16, 64, 256};
    const Dgx2Reference ref;
    const sync::SyncConfig sync_cfg;

    struct Axis
    {
        const char *title;
        double HostDemandBreakdown::*value;
        double norm;
        const char *paper;
    };
    const std::vector<Axis> axes = {
        {"Fig 10a: required CPU cores (normalized to DGX-2's 48)",
         &HostDemandBreakdown::cpuCores, ref.cpuCores, "100.7x"},
        {"Fig 10b: required memory bandwidth (normalized to 239 GB/s)",
         &HostDemandBreakdown::memBw, ref.memBw, "17.9x"},
        {"Fig 10c: required PCIe bandwidth at the root complex "
         "(normalized to DGX-2)",
         &HostDemandBreakdown::rcBw, ref.rcBw, "18.0x"},
    };

    for (const auto &axis : axes) {
        bench::banner(axis.title);
        std::vector<std::string> headers = {"model"};
        for (auto n : scales)
            headers.push_back("n=" + std::to_string(n));
        Table t(headers);

        double peak = 0.0;
        for (const auto &m : workload::modelZoo()) {
            t.row().add(m.name);
            for (std::size_t n : scales) {
                const HostDemandBreakdown demand = requiredHostDemand(
                    m, ArchPreset::Baseline, n, sync_cfg);
                const double normalized = demand.*(axis.value) / axis.norm;
                t.add(normalized, 2);
                peak = std::max(peak, normalized);
            }
        }
        bench::emit(t, csv);
        std::printf("\npeak at 256 accelerators: %.1fx (paper: up to %s)\n",
                    peak, axis.paper);
    }

    bench::banner("Cross-check: analytic projection vs measured "
                  "SessionReport (Resnet-50, 1 accelerator)");
    {
        const workload::ModelInfo &m =
            workload::model(workload::ModelId::Resnet50);
        const HostDemandBreakdown projected =
            requiredHostDemand(m, ArchPreset::Baseline, 1, sync_cfg);
        const SessionReport measured = bench::runReport(
            ServerConfig::baseline().withModel(m.id).withAccelerators(1));

        Table t({"axis", "projected", "measured"});
        t.row()
            .add("CPU cores")
            .add(projected.cpuCores, 2)
            .add(measured.hostCpuCores(), 2);
        t.row()
            .add("memory BW (GB/s)")
            .add(projected.memBw / 1e9, 2)
            .add(measured.hostMemBw() / 1e9, 2);
        t.row()
            .add("RC BW (GB/s)")
            .add(projected.rcBw / 1e9, 2)
            .add(measured.hostRcBw() / 1e9, 2);
        bench::emit(t, csv);
    }
    return 0;
}
