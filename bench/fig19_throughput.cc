/**
 * @file
 * Fig 19: impact of TrainBox's optimizations with 256 accelerators.
 *
 * For each of the seven Table I workloads, reports the training throughput
 * of Baseline, B+Acc, B+Acc+P2P, B+Acc+P2P+Gen4, and TrainBox, normalized
 * to the baseline (the paper's Fig 19 y-axis), plus the geometric/
 * arithmetic-mean speedups the paper quotes (44.4x average; 84.3x max for
 * TF-AA; Acc alone 3.32x; clustering adds 13.4x).
 *
 * Each cell is one SessionReport from the shared preset sweep.
 */

#include <algorithm>
#include <vector>

#include "bench/bench_util.hh"
#include "common/math_util.hh"

int
main(int argc, char **argv)
{
    using namespace tb;
    const bool csv = bench::wantCsv(argc, argv);

    const std::vector<ArchPreset> presets = {
        ArchPreset::Baseline,       ArchPreset::BaselineAccFpga,
        ArchPreset::BaselineAccP2p, ArchPreset::BaselineAccP2pGen4,
        ArchPreset::TrainBox,
    };

    bench::banner("Fig 19: throughput of server architectures, "
                  "256 NN accelerators (normalized to baseline)");

    std::vector<std::string> headers = {"model"};
    for (auto p : presets)
        headers.push_back(presetName(p));
    headers.push_back("TrainBox samples/s");
    Table table(headers);

    std::vector<double> trainbox_speedups;
    std::vector<double> acc_speedups;
    std::vector<double> clustering_gains;

    for (const auto &m : workload::modelZoo()) {
        const auto reports = bench::sweepPresets(
            ServerConfig::baseline().withModel(m.id).withAccelerators(
                256),
            presets);

        table.row().add(m.name);
        const double baseline = reports[0].throughput();
        for (const SessionReport &r : reports)
            table.add(r.throughput() / baseline, 2);
        const double trainbox = reports.back().throughput();
        table.add(trainbox, 0);

        trainbox_speedups.push_back(trainbox / baseline);
        acc_speedups.push_back(reports[1].throughput() / baseline);
        clustering_gains.push_back(trainbox / reports[3].throughput());
    }
    bench::emit(table, csv);

    std::printf("\nTrainBox speedup over baseline: mean %.1fx, max %.1fx "
                "(paper: 44.4x mean, 84.3x max)\n",
                mean(trainbox_speedups),
                *std::max_element(trainbox_speedups.begin(),
                                  trainbox_speedups.end()));
    std::printf("Acceleration (Step 1) alone:    mean %.2fx "
                "(paper: 3.32x)\n",
                mean(acc_speedups));
    std::printf("TrainBox over best non-clustered (Gen4): mean %.1fx\n",
                mean(clustering_gains));
    return 0;
}
