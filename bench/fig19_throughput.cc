/**
 * @file
 * Fig 19: impact of TrainBox's optimizations with 256 accelerators.
 *
 * For each of the seven Table I workloads, reports the training throughput
 * of Baseline, B+Acc, B+Acc+P2P, B+Acc+P2P+Gen4, and TrainBox, normalized
 * to the baseline (the paper's Fig 19 y-axis), plus the geometric/
 * arithmetic-mean speedups the paper quotes (44.4x average; 84.3x max for
 * TF-AA; Acc alone 3.32x; clustering adds 13.4x).
 */

#include <vector>

#include "bench/bench_util.hh"
#include "common/math_util.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

int
main(int argc, char **argv)
{
    using namespace tb;
    const bool csv = bench::wantCsv(argc, argv);

    const std::vector<ArchPreset> presets = {
        ArchPreset::Baseline,       ArchPreset::BaselineAccFpga,
        ArchPreset::BaselineAccP2p, ArchPreset::BaselineAccP2pGen4,
        ArchPreset::TrainBox,
    };

    bench::banner("Fig 19: throughput of server architectures, "
                  "256 NN accelerators (normalized to baseline)");

    std::vector<std::string> headers = {"model"};
    for (auto p : presets)
        headers.push_back(presetName(p));
    headers.push_back("TrainBox samples/s");
    Table table(headers);

    std::vector<double> trainbox_speedups;
    std::vector<double> acc_speedups;
    std::vector<double> clustering_gains;

    for (const auto &m : workload::modelZoo()) {
        table.row().add(m.name);
        double baseline = 0.0;
        double acc = 0.0;
        double gen4 = 0.0;
        double trainbox = 0.0;
        for (ArchPreset p : presets) {
            ServerConfig cfg;
            cfg.preset = p;
            cfg.model = m.id;
            cfg.numAccelerators = 256;
            auto server = buildServer(cfg);
            TrainingSession session(*server);
            const double thpt = session.run().throughput;
            if (p == ArchPreset::Baseline)
                baseline = thpt;
            if (p == ArchPreset::BaselineAccFpga)
                acc = thpt;
            if (p == ArchPreset::BaselineAccP2pGen4)
                gen4 = thpt;
            if (p == ArchPreset::TrainBox)
                trainbox = thpt;
            table.add(thpt / baseline, 2);
        }
        table.add(trainbox, 0);
        trainbox_speedups.push_back(trainbox / baseline);
        acc_speedups.push_back(acc / baseline);
        clustering_gains.push_back(trainbox / gen4);
    }
    bench::emit(table, csv);

    std::printf("\nTrainBox speedup over baseline: mean %.1fx, max %.1fx "
                "(paper: 44.4x mean, 84.3x max)\n",
                mean(trainbox_speedups),
                *std::max_element(trainbox_speedups.begin(),
                                  trainbox_speedups.end()));
    std::printf("Acceleration (Step 1) alone:    mean %.2fx "
                "(paper: 3.32x)\n",
                mean(acc_speedups));
    std::printf("TrainBox over best non-clustered (Gen4): mean %.1fx\n",
                mean(clustering_gains));
    return 0;
}
