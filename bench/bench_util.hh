/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries.
 *
 * Every figN_* / tableN_* binary prints the same rows/series the paper
 * reports, as an aligned table plus (with --csv) machine-readable CSV.
 */

#ifndef TRAINBOX_BENCH_BENCH_UTIL_HH
#define TRAINBOX_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstring>
#include <string>

#include "common/table.hh"

namespace tb {
namespace bench {

/** True when argv contains --csv. */
inline bool
wantCsv(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--csv") == 0)
            return true;
    return false;
}

/** Print a section header. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

/** Print a table in the requested format. */
inline void
emit(const Table &table, bool csv)
{
    if (csv)
        table.printCsv();
    else
        table.print();
}

} // namespace bench
} // namespace tb

#endif // TRAINBOX_BENCH_BENCH_UTIL_HH
