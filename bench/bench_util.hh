/**
 * @file
 * Shared helpers for the paper-reproduction benchmark binaries.
 *
 * Every figN_* / tableN_* binary prints the same rows/series the paper
 * reports, as an aligned table plus (with --csv) machine-readable CSV.
 * The session-driving benches share one runner: a ServerConfig (usually
 * from a preset named constructor) goes in, a SessionReport comes out,
 * and the sweep helpers iterate that over the paper's standard axes
 * (Table I models, the Fig 19 preset series, accelerator counts).
 */

#ifndef TRAINBOX_BENCH_BENCH_UTIL_HH
#define TRAINBOX_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/table.hh"
#include "trainbox/report.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"
#include "workload/model_zoo.hh"

namespace tb {
namespace bench {

/** True when argv contains --csv. */
inline bool
wantCsv(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--csv") == 0)
            return true;
    return false;
}

/** Print a section header. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

/** Print a table in the requested format. */
inline void
emit(const Table &table, bool csv)
{
    if (csv)
        table.printCsv();
    else
        table.print();
}

/** Build @p cfg, run one session, and return its SessionReport. */
inline SessionReport
runReport(const ServerConfig &cfg, std::size_t warmup = 4,
          std::size_t measure = 8)
{
    auto server = buildServer(cfg);
    TrainingSession session(*server);
    return session.runReport(warmup, measure);
}

/**
 * One report per Table I workload. @p configure maps a model to the
 * config to run (e.g. ServerConfig::baseline().withModel(m.id)).
 */
template <typename ConfigureFn>
std::vector<SessionReport>
sweepModels(ConfigureFn configure, std::size_t warmup = 4,
            std::size_t measure = 8)
{
    std::vector<SessionReport> reports;
    for (const auto &m : workload::modelZoo())
        reports.push_back(runReport(configure(m), warmup, measure));
    return reports;
}

/** One report per preset in @p presets, all else from @p base. */
inline std::vector<SessionReport>
sweepPresets(const ServerConfig &base,
             const std::vector<ArchPreset> &presets,
             std::size_t warmup = 4, std::size_t measure = 8)
{
    std::vector<SessionReport> reports;
    for (ArchPreset p : presets) {
        ServerConfig cfg = base;
        reports.push_back(runReport(cfg.withPreset(p), warmup, measure));
    }
    return reports;
}

/** One report per accelerator count, all else from @p base. */
inline std::vector<SessionReport>
sweepScales(const ServerConfig &base,
            const std::vector<std::size_t> &scales,
            std::size_t warmup = 4, std::size_t measure = 8)
{
    std::vector<SessionReport> reports;
    for (std::size_t n : scales) {
        ServerConfig cfg = base;
        reports.push_back(
            runReport(cfg.withAccelerators(n), warmup, measure));
    }
    return reports;
}

} // namespace bench
} // namespace tb

#endif // TRAINBOX_BENCH_BENCH_UTIL_HH
