/**
 * @file
 * Fig 11: decomposition of the baseline's host-resource consumption by
 * preparation activity (SSD read / formatting / augmentation / data load
 * / others), for image (a) and audio (b) inputs. The paper highlights
 * that formatting + augmentation dominate CPU, and that the data load is
 * larger than the SSD read because decode + type casting amplify data.
 *
 * Shares come from the shared categoryShare() helper; a measured
 * SessionReport at an unsaturated scale cross-checks the analytic
 * projection (the per-category shares are scale-invariant).
 */

#include "bench/bench_util.hh"
#include "trainbox/resource_profile.hh"

int
main(int argc, char **argv)
{
    using namespace tb;
    using workload::InputType;
    const bool csv = bench::wantCsv(argc, argv);

    const sync::SyncConfig sync_cfg;
    const std::vector<std::string> cats = {
        "ssd_read", "formatting", "augmentation", "data_load", "others"};

    for (InputType input : {InputType::Image, InputType::Audio}) {
        // A representative model per input type at the 256-acc target.
        const workload::ModelInfo &m = workload::model(
            input == InputType::Image ? workload::ModelId::Resnet50
                                      : workload::ModelId::TfSr);
        const HostDemandBreakdown d =
            requiredHostDemand(m, ArchPreset::Baseline, 256, sync_cfg);

        // Measured counterpart: one accelerator keeps the baseline's
        // host unsaturated, so the session reproduces the same shares.
        const SessionReport measured = bench::runReport(
            ServerConfig::baseline().withModel(m.id).withAccelerators(1));

        bench::banner(std::string("Fig 11") +
                      (input == InputType::Image ? "a (image, " :
                                                   "b (audio, ") +
                      m.name + "): share of host resource consumption");
        Table t({"category", "CPU %", "Memory BW %", "PCIe BW %",
                 "measured CPU %"});
        for (const auto &cat : cats) {
            t.row()
                .add(cat)
                .add(100.0 * categoryShare(d.cpuByCategory, cat,
                                           d.cpuCores), 1)
                .add(100.0 * categoryShare(d.memByCategory, cat, d.memBw),
                     1)
                .add(100.0 * categoryShare(d.rcByCategory, cat, d.rcBw),
                     1)
                .add(100.0 * measured.cpuShare(cat), 1);
        }
        bench::emit(t, csv);
    }
    std::printf("\n(paper: image data load takes 36.7%% of memory BW vs "
                "59.2%% for formatting+augmentation; audio 21.1%% vs "
                "71.9%%)\n");
    return 0;
}
