/**
 * @file
 * Fault sweep: throughput degradation of the TrainBox preset under
 * injected faults (docs/ROBUSTNESS.md).
 *
 * Three experiments on a 32-accelerator TrainBox (ResNet-50, forced
 * 8-FPGA prep-pool):
 *
 *  1. SSD failure-rate sweep — per-attempt read-failure probability from
 *     0 to 30%, reporting goodput (throughput / fault-free throughput),
 *     retries, and abandoned chunks. Printed twice from two independent
 *     runs to demonstrate that the seeded schedule reproduces the curve
 *     exactly.
 *  2. SSD outage-window sweep — windowed bandwidth collapses (to 1% of
 *     line rate) at increasing arrival rates.
 *  3. Prep-FPGA crash scenario — a crash outliving the run, with the
 *     failover policy on vs off, showing the survivors + prep-pool
 *     keeping goodput high while the no-failover machine collapses.
 */

#include <vector>

#include "bench/bench_util.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

namespace {

tb::ServerConfig
baseConfig()
{
    tb::ServerConfig cfg;
    cfg.preset = tb::ArchPreset::TrainBox;
    cfg.model = tb::workload::ModelId::Resnet50;
    cfg.numAccelerators = 32;
    cfg.prepPoolFpgas = 8;
    return cfg;
}

tb::SessionResult
run(const tb::ServerConfig &cfg)
{
    auto server = tb::buildServer(cfg);
    tb::TrainingSession session(*server);
    return session.run(4, 8);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tb;
    const bool csv = bench::wantCsv(argc, argv);

    const SessionResult healthy = run(baseConfig());

    // --- 1. SSD read-failure sweep -----------------------------------
    bench::banner("Fault sweep: SSD read-failure probability "
                  "(TrainBox, 32 accelerators, ResNet-50)");
    Table fail_table({"read_fail_prob", "goodput_run1", "goodput_run2",
                      "retries", "abandoned", "reproduced"});
    for (double p : {0.0, 0.01, 0.05, 0.1, 0.2, 0.3}) {
        ServerConfig cfg = baseConfig();
        cfg.faults.enabled = true;
        cfg.faults.ssdReadFailureProb = p;
        const SessionResult a = run(cfg);
        const SessionResult b = run(cfg);
        fail_table.row()
            .add(p)
            .add(SessionReport::computeGoodput(a.throughput,
                                               healthy.throughput),
                 4)
            .add(SessionReport::computeGoodput(b.throughput,
                                               healthy.throughput),
                 4)
            .add(a.faults.ssdRetries)
            .add(a.faults.chunksAbandoned)
            .add(a.throughput == b.throughput ? "yes" : "NO");
    }
    bench::emit(fail_table, csv);

    // --- 2. SSD outage-window sweep ----------------------------------
    bench::banner("Fault sweep: SSD outage windows (bandwidth -> 1%, "
                  "window length = 1 step)");
    Table win_table({"outages_per_step", "goodput", "degraded_s",
                     "windows"});
    for (double per_step : {0.0, 0.5, 1.0, 2.0, 4.0}) {
        ServerConfig cfg = baseConfig();
        cfg.faults.enabled = true;
        cfg.faults.ssdDegrade.ratePerSec = per_step / healthy.stepTime;
        cfg.faults.ssdDegrade.duration = healthy.stepTime;
        cfg.faults.ssdDegrade.magnitude = 0.01;
        const SessionResult r = run(cfg);
        win_table.row()
            .add(per_step)
            .add(SessionReport::computeGoodput(r.throughput,
                                               healthy.throughput),
                 4)
            .add(r.faults.degradedTime, 3)
            .add(r.faults.faultsInjected);
    }
    bench::emit(win_table, csv);

    // --- 3. Prep-FPGA crash: failover on vs off ----------------------
    bench::banner("Prep-FPGA crash outliving the run: pool failover "
                  "on vs off");
    Table crash_table({"policy", "goodput", "failovers", "degraded_s"});
    for (bool failover : {true, false}) {
        ServerConfig cfg = baseConfig();
        cfg.faults.enabled = true;
        cfg.faults.prepCrash.ratePerSec = 4.0 / healthy.stepTime;
        cfg.faults.prepCrash.duration = 1000.0 * healthy.stepTime;
        cfg.faults.poolFailover = failover;
        const SessionResult r = run(cfg);
        crash_table.row()
            .add(failover ? "failover" : "no_failover")
            .add(SessionReport::computeGoodput(r.throughput,
                                               healthy.throughput),
                 4)
            .add(r.faults.prepFailovers)
            .add(r.faults.degradedTime, 3);
    }
    bench::emit(crash_table, csv);

    return 0;
}
