/**
 * @file
 * Prep-throughput scaling microbenchmark: samples/s of the functional
 * image and audio chains as a function of worker count, measured with
 * the parallel prep executor (src/prep/executor/).
 *
 * This is the measured analogue of the paper's host-CPU prep ceiling
 * (Fig 3 / Fig 8): preparation throughput grows with cores until the
 * host saturates, which is exactly the curve the simulator's per-sample
 * CPU cost constants (DESIGN.md §4) describe analytically. The
 * *CoreSecPerSample columns are directly comparable with those
 * constants and can be fed back into the host-demand model via
 * tb::PrepCostCalibration (resource_profile.hh).
 *
 *   ./micro_prep_scaling [--csv] [--items N] [--max-workers N]
 */

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "bench/bench_util.hh"
#include "prep/executor/calibration.hh"

int
main(int argc, char **argv)
{
    using namespace tb;
    const bool csv = bench::wantCsv(argc, argv);

    std::size_t image_items = 24;
    std::size_t audio_items = 6;
    std::size_t max_workers = std::max(1u, std::thread::hardware_concurrency());
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--items") == 0 && i + 1 < argc) {
            image_items = static_cast<std::size_t>(std::atoi(argv[++i]));
            audio_items = std::max<std::size_t>(1, image_items / 4);
        } else if (std::strcmp(argv[i], "--max-workers") == 0 &&
                   i + 1 < argc) {
            max_workers = static_cast<std::size_t>(std::atoi(argv[++i]));
        }
    }

    if (!csv)
        bench::banner("prep throughput vs worker count "
                      "(parallel executor, functional kernels)");

    Table t({"workers", "img samples/s", "img speedup", "img core-ms",
             "audio samples/s", "audio speedup", "audio core-ms"});

    double img_base = 0.0;
    double audio_base = 0.0;
    for (std::size_t w = 1; w <= max_workers; w = w < 4 ? w + 1 : w * 2) {
        prep::ThroughputMeasureConfig cfg;
        cfg.numWorkers = w;
        cfg.imageItems = image_items;
        cfg.audioItems = audio_items;
        const prep::PrepThroughputMeasurement m =
            prep::measurePrepThroughput(cfg);
        if (w == 1) {
            img_base = m.imageSamplesPerSec;
            audio_base = m.audioSamplesPerSec;
        }
        t.row()
            .add(static_cast<long long>(w))
            .add(m.imageSamplesPerSec, 1)
            .add(img_base > 0.0 ? m.imageSamplesPerSec / img_base : 0.0, 2)
            .add(m.imageCoreSecPerSample * 1e3, 3)
            .add(m.audioSamplesPerSec, 1)
            .add(audio_base > 0.0 ? m.audioSamplesPerSec / audio_base : 0.0,
                 2)
            .add(m.audioCoreSecPerSample * 1e3, 3);
    }
    bench::emit(t, csv);

    if (!csv)
        std::printf("\nsimulator calibration constants: image 1.572 "
                    "core-ms/sample, audio 5.450 core-ms/sample "
                    "(DESIGN.md §4). Speedup saturates at the host's "
                    "physical core count — the paper's prep ceiling.\n");
    return 0;
}
