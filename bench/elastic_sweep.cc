/**
 * @file
 * Elasticity sweep: what leaving capacity costs and what graceful
 * degradation buys back (docs/ROBUSTNESS.md, "Elastic capacity &
 * graceful degradation").
 *
 * Three experiments on 32-accelerator ResNet-50 TrainBox servers:
 *
 *  1. Leave-rate sweep — planned drains vs spot preemptions at equal
 *     arrival rates. Drains keep the grace window's prepped samples
 *     and coordinate a checkpoint; preemptions discard buffered and
 *     in-compute work, so goodput and SLO attainment fall faster.
 *  2. Grace-window sweep — longer notice converts drop-at-detach
 *     samples into saved ones, at the price of a longer degraded tail.
 *  3. Scale-up — groups held back at start and joined mid-run: the
 *     rebalance cost and the throughput recovered per joined group.
 *
 * --smoke runs the CI chaos assertion instead: a batch of randomized
 * fault+elastic schedules checked against the global invariants
 * (sample conservation, corruption accounting, liveness, planned
 * drains >= preemptions in goodput, disabled == baseline
 * bit-identical). Exits non-zero on violation.
 */

#include <cmath>
#include <cstdio>
#include <cstring>

#include "bench/bench_util.hh"
#include "trainbox/report.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

namespace {

tb::ServerConfig
baseConfig(std::size_t n_acc = 32)
{
    tb::ServerConfig cfg;
    cfg.preset = tb::ArchPreset::TrainBox;
    cfg.model = tb::workload::ModelId::Resnet50;
    cfg.numAccelerators = n_acc;
    cfg.prepPoolFpgas = 8;
    return cfg;
}

tb::SessionResult
run(const tb::ServerConfig &cfg, std::size_t warmup = 4,
    std::size_t measure = 12)
{
    auto server = tb::buildServer(cfg);
    tb::TrainingSession session(*server);
    return session.run(warmup, measure);
}

bool
ledgerHolds(const tb::SessionResult &res)
{
    const auto &e = res.elasticity;
    const double gap = e.samplesPrepared -
                       (e.samplesConsumed + e.samplesCachedAtEnd +
                        e.samplesDiscarded);
    return std::fabs(gap) <= 1e-6 * std::max(1.0, e.samplesPrepared);
}

/** CI mode: randomized schedules against the global invariants. */
int
smoke()
{
    using namespace tb;
    int failures = 0;
    auto fail = [&](const char *what, std::uint64_t seed) {
        std::printf("FAIL: %s (seed %llu)\n", what,
                    static_cast<unsigned long long>(seed));
        ++failures;
    };

    // Disabled elasticity must not perturb the simulation at all.
    const SessionResult base = run(baseConfig(16), 3, 6);
    {
        ServerConfig cfg = baseConfig(16);
        cfg.elasticity.enabled = false;
        cfg.elasticity.groupDrain.ratePerSec = 10.0; // ignored when off
        const SessionResult again = run(cfg, 3, 6);
        if (again.throughput != base.throughput ||
            again.wallTime != base.wallTime)
            fail("disabled elasticity perturbed the baseline", 0);
    }

    double drain_goodput_sum = 0.0, preempt_goodput_sum = 0.0;
    std::size_t events = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        for (const bool planned : {true, false}) {
            ServerConfig cfg = baseConfig(16);
            cfg.faults.enabled = true;
            cfg.faults.seed = seed;
            cfg.faults.ssdReadFailureProb = 0.005;
            cfg.faults.corruption.ssdBitFlipProb = 0.002;
            cfg.faults.integrityChecks = (seed % 2) == 0;
            cfg.checkpoint.enabled = (seed % 2) == 1;
            cfg.checkpoint.interval = 2.0;
            cfg.elasticity.enabled = true;
            cfg.elasticity.seed = seed;
            cfg.elasticity.graceWindow = 0.4;
            cfg.elasticity.rejoinLatency = 0.2;
            auto &cls = planned ? cfg.elasticity.groupDrain
                                : cfg.elasticity.groupPreempt;
            cls.ratePerSec = 0.25;
            cls.absence = 1.0;

            const SessionResult res = run(cfg, 3, 6);
            events += res.elasticity.events;
            if (res.stepsMeasured != 6)
                fail("run did not complete all steps", seed);
            if (!ledgerHolds(res))
                fail("sample conservation violated", seed);
            if (res.integrity.detected + res.integrity.escaped !=
                res.integrity.injected)
                fail("corruption accounting violated", seed);
            if (!std::isfinite(res.throughput) || res.throughput <= 0.0)
                fail("degenerate throughput", seed);
            const double g = SessionReport::computeGoodput(
                res.throughput, base.throughput);
            (planned ? drain_goodput_sum : preempt_goodput_sum) += g;
        }
    }
    if (events == 0)
        fail("no elastic events delivered across the sweep", 0);
    std::printf("elastic smoke: %zu events, drain goodput %.4f, "
                "preempt goodput %.4f\n",
                events, drain_goodput_sum / 8.0,
                preempt_goodput_sum / 8.0);
    // Graceful degradation must not lose more work than spot kills.
    if (drain_goodput_sum < preempt_goodput_sum - 1e-9)
        fail("planned drains underperformed preemptions", 0);

    std::printf(failures == 0 ? "PASS\n" : "%d failures\n", failures);
    return failures == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tb;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            return smoke();
    const bool csv = bench::wantCsv(argc, argv);

    const SessionResult healthy = run(baseConfig());
    const double slo = 0.9 * healthy.throughput;

    // --- 1. planned drains vs spot preemptions -----------------------
    bench::banner("Elasticity sweep: planned drains vs spot preemptions "
                  "(ResNet-50, 32 accelerators, SLO = 90% of healthy)");
    Table leave_table({"leave_rate", "kind", "events", "goodput",
                       "slo_attain", "avail", "saved", "lost",
                       "dropped"});
    for (double rate : {0.05, 0.1, 0.2, 0.4}) {
        for (const bool planned : {true, false}) {
            ServerConfig cfg = baseConfig();
            cfg.elasticity.enabled = true;
            cfg.elasticity.sloTargetSamplesPerSec = slo;
            auto &cls = planned ? cfg.elasticity.groupDrain
                                : cfg.elasticity.groupPreempt;
            cls.ratePerSec = rate;
            cls.absence = 2.0;
            auto server = buildServer(cfg);
            TrainingSession session(*server);
            const SessionReport rep = session.runReport(4, 12);
            const auto &e = rep.result.elasticity;
            leave_table.row()
                .add(rate)
                .add(planned ? "drain" : "preempt")
                .add(e.events)
                .add(rep.goodput(healthy.throughput), 4)
                .add(rep.sloAttainment(), 4)
                .add(rep.capacityAvailability(), 4)
                .add(e.samplesSavedByDrain, 0)
                .add(e.samplesLostToPreemption, 0)
                .add(e.samplesDroppedAtDrain, 0);
        }
    }
    bench::emit(leave_table, csv);

    // --- 2. grace window ---------------------------------------------
    bench::banner("Grace window: notice time vs samples saved at drain");
    Table grace_table({"grace_sec", "drains", "saved", "dropped",
                       "goodput", "degraded_sec"});
    for (double grace : {0.0, 0.2, 0.5, 1.0, 2.0}) {
        ServerConfig cfg = baseConfig();
        cfg.elasticity.enabled = true;
        cfg.elasticity.graceWindow = grace;
        cfg.elasticity.groupDrain.ratePerSec = 0.2;
        cfg.elasticity.groupDrain.absence = 2.0;
        const SessionResult r = run(cfg);
        grace_table.row()
            .add(grace)
            .add(r.elasticity.drains)
            .add(r.elasticity.samplesSavedByDrain, 0)
            .add(r.elasticity.samplesDroppedAtDrain, 0)
            .add(SessionReport::computeGoodput(r.throughput,
                                               healthy.throughput),
                 4)
            .add(r.elasticity.degradedCapacityTime, 3);
    }
    bench::emit(grace_table, csv);

    // --- 3. mid-session scale-up -------------------------------------
    bench::banner("Scale-up: deferred groups joining mid-run");
    Table scale_table({"deferred", "join_at", "joins", "avg_active",
                       "throughput", "vs_full_pct"});
    for (std::size_t deferred : {std::size_t{0}, std::size_t{1},
                                 std::size_t{2}}) {
        ServerConfig cfg = baseConfig();
        cfg.elasticity.enabled = true;
        cfg.elasticity.deferredJoinGroups = deferred;
        cfg.elasticity.scaleUpTime = 0.2;
        cfg.elasticity.rejoinLatency = 0.1;
        const SessionResult r = run(cfg);
        scale_table.row()
            .add(deferred)
            .add(0.2)
            .add(r.elasticity.joins)
            .add(r.elasticity.avgActiveFraction, 4)
            .add(r.throughput, 1)
            .add(100.0 * r.throughput / healthy.throughput, 2);
    }
    bench::emit(scale_table, csv);

    return 0;
}
