/**
 * @file
 * Fig 5: model accuracy per epoch, with vs without data augmentation.
 *
 * The paper trains Resnet-50 on ImageNet and reports a 29.1-point top-5
 * accuracy gap. That workload is out of scope for a CPU reproduction, so
 * we substitute the synthetic shape-classification task (see DESIGN.md):
 * training items are near-canonical, test items are shifted/mirrored,
 * and run-time augmentation (random crop-shift + mirror + noise — the
 * paper's own examples) closes the gap. The claim being reproduced is
 * the *shape*: a large, persistent accuracy margin from augmentation.
 */

#include "bench/bench_util.hh"
#include "nn/trainer.hh"

int
main(int argc, char **argv)
{
    using namespace tb;
    const bool csv = bench::wantCsv(argc, argv);

    bench::banner("Fig 5: test accuracy per epoch, with vs without "
                  "augmentation (synthetic shape task)");

    nn::TrainerConfig cfg;
    cfg.augment = false;
    const nn::TrainHistory plain = nn::trainShapeClassifier(cfg, 1234);
    cfg.augment = true;
    const nn::TrainHistory augmented =
        nn::trainShapeClassifier(cfg, 1234);

    Table t({"epoch", "with augmentation", "w/o augmentation", "gap"});
    for (std::size_t e = 0; e < plain.testAccuracy.size(); ++e) {
        t.row()
            .add(static_cast<long long>(e + 1))
            .add(augmented.testAccuracy[e], 3)
            .add(plain.testAccuracy[e], 3)
            .add(augmented.testAccuracy[e] - plain.testAccuracy[e], 3);
    }
    bench::emit(t, csv);

    std::printf("\nfinal gap: %.1f points (paper: 29.1 points top-5 on "
                "ImageNet/Resnet-50)\n",
                100.0 * (augmented.finalAccuracy() -
                         plain.finalAccuracy()));
    return 0;
}
