/**
 * @file
 * google-benchmark microbenches for the functional preparation kernels:
 * JPEG encode/decode, the image operators, FFT/STFT/Mel, and the full
 * per-sample pipelines. These are the host-CPU costs the paper's
 * calibration is about (the per-sample core-seconds of prep_ops.cc).
 */

#include <benchmark/benchmark.h>

#include "prep/audio/audio_ops.hh"
#include "prep/audio/fft.hh"
#include "prep/audio/mel.hh"
#include "prep/audio/stft.hh"
#include "prep/audio/wave_gen.hh"
#include "prep/image/image_ops.hh"
#include "prep/jpeg/jpeg_decoder.hh"
#include "prep/jpeg/jpeg_encoder.hh"
#include "prep/pipeline.hh"

namespace {

using namespace tb;

const Image &
testImage()
{
    static Rng rng(7);
    static const Image img = prep::makeSyntheticImage(256, 256, rng);
    return img;
}

const std::vector<std::uint8_t> &
testJpeg()
{
    static const std::vector<std::uint8_t> bytes =
        jpeg::encodeJpeg(testImage());
    return bytes;
}

void
BM_JpegEncode(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(jpeg::encodeJpeg(testImage()));
}
BENCHMARK(BM_JpegEncode)->Unit(benchmark::kMillisecond);

void
BM_JpegDecode(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(jpeg::decodeJpeg(testJpeg()));
}
BENCHMARK(BM_JpegDecode)->Unit(benchmark::kMillisecond);

void
BM_RandomCrop(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            imageops::randomCrop(testImage(), 224, 224, rng));
}
BENCHMARK(BM_RandomCrop)->Unit(benchmark::kMicrosecond);

void
BM_Mirror(benchmark::State &state)
{
    const Image crop = imageops::centerCrop(testImage(), 224, 224);
    for (auto _ : state)
        benchmark::DoNotOptimize(imageops::mirrorHorizontal(crop));
}
BENCHMARK(BM_Mirror)->Unit(benchmark::kMicrosecond);

void
BM_GaussianNoise(benchmark::State &state)
{
    Rng rng(2);
    const Image crop = imageops::centerCrop(testImage(), 224, 224);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            imageops::addGaussianNoise(crop, 4.0, rng));
}
BENCHMARK(BM_GaussianNoise)->Unit(benchmark::kMicrosecond);

void
BM_CastTensor(benchmark::State &state)
{
    const Image crop = imageops::centerCrop(testImage(), 224, 224);
    for (auto _ : state)
        benchmark::DoNotOptimize(imageops::castToFloatTensor(crop));
}
BENCHMARK(BM_CastTensor)->Unit(benchmark::kMicrosecond);

void
BM_ImagePipeline(benchmark::State &state)
{
    Rng rng(3);
    prep::ImagePrepPipeline pipe;
    for (auto _ : state)
        benchmark::DoNotOptimize(pipe.prepare(testJpeg(), rng));
}
BENCHMARK(BM_ImagePipeline)->Unit(benchmark::kMillisecond);

void
BM_Fft(benchmark::State &state)
{
    Rng rng(4);
    std::vector<audio::Complex> data(state.range(0));
    for (auto &c : data)
        c = {rng.gaussian(), rng.gaussian()};
    for (auto _ : state) {
        auto copy = data;
        audio::fft(copy);
        benchmark::DoNotOptimize(copy);
    }
}
BENCHMARK(BM_Fft)->Arg(256)->Arg(512)->Arg(4096)
    ->Unit(benchmark::kMicrosecond);

const std::vector<double> &
testWave()
{
    static Rng rng(5);
    static const std::vector<double> wave =
        audio::generateUtterance({}, rng);
    return wave;
}

void
BM_Stft(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(audio::stft(testWave()));
}
BENCHMARK(BM_Stft)->Unit(benchmark::kMillisecond);

void
BM_LogMel(benchmark::State &state)
{
    const audio::Spectrogram power = audio::stft(testWave());
    for (auto _ : state)
        benchmark::DoNotOptimize(audio::logMel(power, {}, 512));
}
BENCHMARK(BM_LogMel)->Unit(benchmark::kMillisecond);

void
BM_AudioPipeline(benchmark::State &state)
{
    Rng rng(6);
    prep::AudioPrepPipeline pipe;
    for (auto _ : state)
        benchmark::DoNotOptimize(pipe.prepare(testWave(), rng));
}
BENCHMARK(BM_AudioPipeline)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
