/**
 * @file
 * Checkpoint sweep: interval tuning and drain contention
 * (docs/ROBUSTNESS.md, "Checkpoint & restore").
 *
 * Two experiments:
 *
 *  1. Young–Daly validation — a 32-accelerator TrainBox training VGG-19
 *     under Poisson fatal crashes (MTBF 100 s), sync checkpointing
 *     swept across intervals. The simulated efficiency (useful time /
 *     wall time, averaged over independent crash schedules) must peak
 *     within 20% of the analytic optimum W* = sqrt(2 C M), where C is
 *     the measured crash-free checkpoint cost.
 *
 *  2. Drain contention by architecture — async checkpointing with a
 *     negligible snapshot pause, so any throughput loss is the
 *     background drain contending with data preparation. Central
 *     presets (Baseline/B+Acc) pay a real penalty because checkpoint
 *     writes cross host DRAM, CPU serialization, and the PCIe root
 *     complex; clustered train boxes (TrainBox) write over in-box
 *     links only and are expected to shield prep almost entirely.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"
#include "trainbox/checkpoint.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

namespace {

tb::ServerConfig
baseConfig(tb::ArchPreset preset)
{
    tb::ServerConfig cfg;
    cfg.preset = preset;
    cfg.model = tb::workload::ModelId::Vgg19;
    cfg.numAccelerators = 32;
    cfg.prepPoolFpgas = 8;
    return cfg;
}

tb::SessionResult
run(const tb::ServerConfig &cfg, std::size_t measure)
{
    auto server = tb::buildServer(cfg);
    tb::TrainingSession session(*server);
    return session.run(4, measure);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tb;
    const bool csv = bench::wantCsv(argc, argv);

    // --- 1. Young–Daly interval validation ---------------------------
    const Time mtbf = 100.0;
    const Time restart = 5.0;
    const std::size_t steps = 2000;
    const int seeds = 8;

    // Measure the checkpoint cost C on a crash-free run (capture ->
    // durable latency of a sync drain).
    ServerConfig cfg = baseConfig(ArchPreset::TrainBox);
    cfg.checkpoint.enabled = true;
    cfg.checkpoint.mode = CheckpointMode::Sync;
    cfg.checkpoint.interval = 5.0;
    cfg.checkpoint.restartLatency = restart;
    const Time cost = run(cfg, 200).checkpoint.avgCost;
    const Time analytic = youngDalyInterval(cost, mtbf);

    bench::banner(
        "Checkpoint sweep: Young-Daly interval validation "
        "(TrainBox, 32 accelerators, VGG-19, sync mode, MTBF 100 s)");
    std::printf("measured checkpoint cost C = %.3f s\n", cost);
    std::printf("analytic optimum sqrt(2CM) = %.2f s  (Daly: %.2f s)\n\n",
                analytic, dalyInterval(cost, mtbf));

    Table t1({ "interval_s", "sim_efficiency", "model_efficiency",
               "crashes", "steps_lost" });
    const double factors[] = { 0.25, 0.35, 0.5, 0.71, 1.0,
                               1.41, 2.0,  2.83, 4.0 };
    Time best_interval = 0.0;
    double best_eff = -1.0;
    for (double f : factors) {
        const Time interval = f * analytic;
        double eff_sum = 0.0;
        std::size_t crashes = 0, lost = 0;
        for (int s = 0; s < seeds; ++s) {
            cfg.checkpoint.interval = interval;
            cfg.faults.enabled = true;
            cfg.faults.seed = 0x59440000u + s;
            cfg.faults.fatalCrash.ratePerSec = 1.0 / mtbf;
            const SessionResult res = run(cfg, steps);
            eff_sum += SessionReport::computeEfficiency(res.checkpoint,
                                                        res.wallTime);
            crashes += res.checkpoint.fatalCrashes;
            lost += res.checkpoint.stepsLost;
        }
        const double eff = eff_sum / seeds;
        if (eff > best_eff) {
            best_eff = eff;
            best_interval = interval;
        }
        t1.row()
            .add(interval, 2)
            .add(eff, 4)
            .add(checkpointEfficiencyModel(interval, cost, mtbf,
                                           restart),
                 4)
            .add(crashes)
            .add(lost);
    }
    bench::emit(t1, csv);

    const double deviation =
        std::fabs(best_interval - analytic) / analytic;
    std::printf("\nsimulated optimum %.2f s vs analytic %.2f s "
                "-> deviation %.0f%% [%s]\n",
                best_interval, analytic, 100.0 * deviation,
                deviation <= 0.20 ? "PASS" : "FAIL");

    // --- 2. Drain contention by architecture -------------------------
    bench::banner(
        "Checkpoint sweep: prep-throughput penalty of background "
        "drains (async, negligible snapshot pause, VGG-19)");

    Table t2({ "preset", "interval_s", "ckpt_gbps", "healthy_sps",
               "ckpt_sps", "penalty_pct" });
    double base_penalty = 0.0, clustered_penalty = 0.0;
    for (ArchPreset p :
         { ArchPreset::Baseline, ArchPreset::BaselineAccFpga,
           ArchPreset::BaselineAccP2p, ArchPreset::TrainBox }) {
        ServerConfig c = baseConfig(p);
        const double healthy = run(c, 60).throughput;
        for (Time interval : { 0.5, 1.0, 2.0 }) {
            c.checkpoint.enabled = true;
            c.checkpoint.mode = CheckpointMode::Async;
            c.checkpoint.interval = interval;
            c.checkpoint.snapshotBandwidth = 2.0e12;
            const SessionResult res = run(c, 60);
            const double ckpt = res.throughput;
            // Average checkpoint write bandwidth: the share of the
            // storage path the drains claim at this interval.
            const double gbps = res.wallTime > 0.0
                ? res.checkpoint.bytesWritten / res.wallTime / 1e9
                : 0.0;
            const double penalty = 1.0 - ckpt / healthy;
            if (interval == 0.5) {
                if (p == ArchPreset::Baseline)
                    base_penalty = penalty;
                if (p == ArchPreset::TrainBox)
                    clustered_penalty = penalty;
            }
            t2.row()
                .add(std::string(presetName(p)))
                .add(interval, 1)
                .add(gbps, 2)
                .add(healthy, 1)
                .add(ckpt, 1)
                .add(100.0 * penalty, 2);
        }
    }
    bench::emit(t2, csv);

    std::printf("\nBaseline penalty %.2f%%, clustered penalty %.2f%% "
                "[%s]\n",
                100.0 * base_penalty, 100.0 * clustered_penalty,
                base_penalty > 0.0 && clustered_penalty < base_penalty
                    ? "PASS"
                    : "FAIL");
    return 0;
}
