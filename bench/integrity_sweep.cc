/**
 * @file
 * Integrity sweep: silent-corruption escape rate and throughput cost of
 * end-to-end checksum verification (docs/ROBUSTNESS.md, "Data integrity
 * & silent corruption").
 *
 * Three experiments on 32-accelerator ResNet-50 servers:
 *
 *  1. Escape-rate sweep — per-hop flip probability from 0.1% to 10%,
 *     Baseline vs TrainBox, integrity checks off vs on. The Baseline's
 *     CPU formatting inherently validates every byte, so it never lets
 *     a flip escape; the TrainBox P2P path leaks every silent SSD/FPGA
 *     flip until the checksum stages are enabled, after which nothing
 *     escapes anywhere.
 *  2. Integrity tax — throughput at zero flip probability with checks
 *     on vs off. The Baseline is CPU-bound, so the CRC cycles cost
 *     throughput; the TrainBox is accelerator-bound and absorbs them.
 *  3. Recovery behaviour — detected flips re-run their prep chain under
 *     the bounded budget; the table reports recoveries, PCIe replays,
 *     and chunks quarantined as the flip rate climbs.
 *
 * --smoke runs a small CI assertion instead: with checks enabled every
 * injected flip must be detected (zero escapes) and the conservation
 * law detected + escaped == injected must hold. Exits non-zero on
 * violation.
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

namespace {

tb::ServerConfig
baseConfig(tb::ArchPreset preset, std::size_t n_acc = 32)
{
    tb::ServerConfig cfg;
    cfg.preset = preset;
    cfg.model = tb::workload::ModelId::Resnet50;
    cfg.numAccelerators = n_acc;
    if (preset == tb::ArchPreset::TrainBox)
        cfg.prepPoolFpgas = 8;
    return cfg;
}

void
armCorruption(tb::ServerConfig &cfg, double p, bool checks)
{
    cfg.faults.enabled = true;
    cfg.faults.integrityChecks = checks;
    cfg.faults.corruption.ssdBitFlipProb = p;
    cfg.faults.corruption.pcieErrorProb = p / 2.0;
    cfg.faults.corruption.fpgaUpsetProb = p;
    cfg.faults.corruption.hostDramFlipProb = p / 2.0;
}

tb::SessionResult
run(const tb::ServerConfig &cfg)
{
    auto server = tb::buildServer(cfg);
    tb::TrainingSession session(*server);
    return session.run(4, 8);
}

/** CI mode: assert zero escapes with checks enabled on a small box. */
int
smoke()
{
    tb::ServerConfig cfg = baseConfig(tb::ArchPreset::TrainBox, 16);
    armCorruption(cfg, 0.05, true);
    const tb::SessionResult res = run(cfg);
    const auto &in = res.integrity;
    std::printf("integrity smoke: injected %zu detected %zu escaped %zu "
                "recoveries %zu quarantined %zu\n",
                in.injected, in.detected, in.escaped, in.recoveries,
                in.chunksQuarantined);
    if (in.injected == 0) {
        std::printf("FAIL: no corruption injected\n");
        return 1;
    }
    if (in.detected + in.escaped != in.injected) {
        std::printf("FAIL: conservation law violated\n");
        return 1;
    }
    if (in.escaped != 0) {
        std::printf("FAIL: %zu flips escaped with checks enabled\n",
                    in.escaped);
        return 1;
    }
    std::printf("PASS\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tb;
    for (int i = 1; i < argc; ++i)
        if (std::strcmp(argv[i], "--smoke") == 0)
            return smoke();
    const bool csv = bench::wantCsv(argc, argv);

    const double healthy_baseline =
        run(baseConfig(ArchPreset::Baseline)).throughput;
    const double healthy_trainbox =
        run(baseConfig(ArchPreset::TrainBox)).throughput;

    // --- 1. escape rate vs flip probability --------------------------
    bench::banner("Integrity sweep: escape rate vs per-hop flip "
                  "probability (ResNet-50, 32 accelerators)");
    Table esc_table({"flip_prob", "arch", "checks", "injected",
                     "detected", "escaped", "escape_rate", "goodput"});
    for (double p : {0.001, 0.01, 0.05, 0.1}) {
        for (ArchPreset preset :
             {ArchPreset::Baseline, ArchPreset::TrainBox}) {
            for (bool checks : {false, true}) {
                ServerConfig cfg = baseConfig(preset);
                armCorruption(cfg, p, checks);
                const SessionResult r = run(cfg);
                const double healthy = preset == ArchPreset::Baseline
                    ? healthy_baseline
                    : healthy_trainbox;
                esc_table.row()
                    .add(p)
                    .add(presetName(preset))
                    .add(checks ? "on" : "off")
                    .add(r.integrity.injected)
                    .add(r.integrity.detected)
                    .add(r.integrity.escaped)
                    .add(r.integrity.escapeRate(), 4)
                    .add(SessionReport::computeGoodput(r.throughput,
                                                       healthy),
                         4);
            }
        }
    }
    bench::emit(esc_table, csv);

    // --- 2. integrity tax at zero flip probability --------------------
    bench::banner("Integrity tax: throughput with checks on, zero flips");
    Table tax_table({"arch", "checks", "throughput", "tax_pct"});
    for (ArchPreset preset :
         {ArchPreset::Baseline, ArchPreset::TrainBox}) {
        const double healthy = preset == ArchPreset::Baseline
            ? healthy_baseline
            : healthy_trainbox;
        for (bool checks : {false, true}) {
            ServerConfig cfg = baseConfig(preset);
            armCorruption(cfg, 0.0, checks);
            const SessionResult r = run(cfg);
            tax_table.row()
                .add(presetName(preset))
                .add(checks ? "on" : "off")
                .add(r.throughput, 1)
                .add(100.0 * (1.0 - r.throughput / healthy), 2);
        }
    }
    bench::emit(tax_table, csv);

    // --- 3. recovery behaviour under rising flip rates ----------------
    bench::banner("Recovery behaviour: TrainBox with checks on");
    Table rec_table({"flip_prob", "recoveries", "pcie_replays",
                     "quarantined", "goodput"});
    for (double p : {0.01, 0.05, 0.1, 0.2}) {
        ServerConfig cfg = baseConfig(ArchPreset::TrainBox);
        armCorruption(cfg, p, true);
        const SessionResult r = run(cfg);
        rec_table.row()
            .add(p)
            .add(r.integrity.recoveries)
            .add(r.integrity.pcieReplays)
            .add(r.integrity.chunksQuarantined)
            .add(SessionReport::computeGoodput(r.throughput,
                                               healthy_trainbox),
                 4);
    }
    bench::emit(rec_table, csv);

    return 0;
}
