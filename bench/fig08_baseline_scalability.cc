/**
 * @file
 * Fig 8: throughput scalability of the baseline server for all seven
 * workloads, 1 -> 256 accelerators, normalized to one accelerator.
 * The paper reports saturation after ~18 accelerators at best (data
 * preparation exhausts the 48-core host).
 */

#include <vector>

#include "bench/bench_util.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

int
main(int argc, char **argv)
{
    using namespace tb;
    const bool csv = bench::wantCsv(argc, argv);

    const std::vector<std::size_t> scales = {1, 4, 16, 64, 256};

    bench::banner("Fig 8: baseline throughput vs #accelerators "
                  "(normalized to 1 accelerator)");
    std::vector<std::string> headers = {"model"};
    for (auto n : scales)
        headers.push_back("n=" + std::to_string(n));
    headers.push_back("saturation point");
    Table t(headers);

    for (const auto &m : workload::modelZoo()) {
        t.row().add(m.name);
        double base = 0.0;
        for (std::size_t n : scales) {
            ServerConfig cfg;
            cfg.preset = ArchPreset::Baseline;
            cfg.model = m.id;
            cfg.numAccelerators = n;
            auto server = buildServer(cfg);
            TrainingSession session(*server);
            const double thpt = session.run(6, 12).throughput;
            if (n == 1)
                base = thpt;
            t.add(thpt / base, 2);
        }
        // Analytic saturation point: accelerators whose demand equals the
        // host's preparation capacity (Inception-v4: 18.3, TF-SR: 4.4).
        const workload::PrepDemand d = workload::prepDemand(m.input);
        t.add(48.0 / (d.cpuCoreSec * m.deviceThroughput), 1);
    }
    bench::emit(t, csv);
    std::printf("\n(paper: Inception-v4 saturates at 18.3 accelerators, "
                "Transformer-SR at 4.4)\n");
    return 0;
}
