#!/usr/bin/env bash
# Build the tier-1 test suite under a sanitizer and run it.
#
# The robustness suites (tests/test_jpeg_corrupt.cc in particular) claim
# "no out-of-bounds access on corrupt input"; that claim is only
# machine-checked when the decoder actually runs instrumented. This
# script is that check: a separate build tree configured with
# -DTB_SANITIZE=..., then the full ctest run.
#
# Usage: tools/check.sh [--tsan] [build-dir] [ctest-args...]
#   Default mode is ASan+UBSan in build-asan. With --tsan the suite is
#   built under ThreadSanitizer instead (build-tsan) — the data-race
#   check for the threaded prep executor (docs/CONCURRENCY.md).
#   build-dir defaults to build-asan / build-tsan (kept apart from the
#   plain build).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

sanitize="address+undefined"
default_dir="$repo_root/build-asan"
if [[ "${1:-}" == "--tsan" ]]; then
    sanitize="thread"
    default_dir="$repo_root/build-tsan"
    shift
fi

build_dir="${1:-$default_dir}"
shift || true

# Fail hard on any sanitizer report instead of continuing.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1:detect_leaks=0}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

cmake -B "$build_dir" -S "$repo_root" \
    -DTB_SANITIZE="$sanitize" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" "$@"

# Integrity smoke: with checksum stages enabled, no injected flip may
# escape (docs/ROBUSTNESS.md, "Data integrity & silent corruption").
# Run instrumented so the envelope/validator code is sanitizer-checked.
"$build_dir/bench/integrity_sweep" --smoke

# Simulator perf smoke: runs the incremental solver + parallel scan +
# event-queue batching under the sanitizer (the bit-identity assert and
# the solver hot path get instrumented coverage). The speedup floor is
# relaxed to 3x — sanitizer instrumentation skews relative costs — and
# the committed-baseline ratio gate is left to the uninstrumented CI
# job (docs/PERFORMANCE.md).
"$build_dir/bench/sim_perf" --smoke --min-speedup 3 \
    --out "$build_dir/BENCH_sim_perf.json"

# Chaos smoke: randomized fault+elastic schedules against the global
# invariants (sample conservation, corruption accounting, liveness,
# drains >= preemptions in goodput), instrumented so the membership
# state machine and zero-capacity parking run under the sanitizer
# (docs/ROBUSTNESS.md, "Elastic capacity & graceful degradation").
"$build_dir/bench/elastic_sweep" --smoke

# Ingest smoke: streaming arrivals under overload — disabled-path
# bit-identity, the arrived == admitted + shed + in-flight ledger over
# randomized traffic mixes, and the policy-chain goodput ordering
# (adaptive chains beat a hard stall under a 4x burst), instrumented so
# the admission state machine and write-retry paths run under the
# sanitizer (docs/ROBUSTNESS.md, "Streaming ingest & overload").
"$build_dir/bench/ingest_sweep" --smoke

# Fleet smoke: multi-job scheduling on one shared simulation core —
# one-job fleet == bare-session bit-identity, two-job determinism,
# concurrent pool grants summing exactly to the shared pool, and the
# per-job conservation ledgers under a chaos trace, instrumented so
# the admission/arbitration paths run under the sanitizer
# (docs/FLEET.md).
"$build_dir/bench/fleet_sweep" --smoke

# Fleet fault-tolerance smoke: disabled-path bit-identity, scripted
# host-death grant reclamation, and seeded chaos holding every
# conservation ledger with a byte-identical same-seed replay,
# instrumented so the kill/freeze/retry paths and the pool-ledger
# panic checks run under the sanitizer (docs/ROBUSTNESS.md, "Fleet
# fault tolerance").
"$build_dir/bench/fleet_fault_sweep" --smoke
