#!/usr/bin/env bash
# Build the tier-1 test suite under ASan+UBSan and run it.
#
# The robustness suites (tests/test_jpeg_corrupt.cc in particular) claim
# "no out-of-bounds access on corrupt input"; that claim is only
# machine-checked when the decoder actually runs instrumented. This
# script is that check: a separate build tree configured with
# -DTB_SANITIZE=address+undefined, then the full ctest run.
#
# Usage: tools/check.sh [build-dir] [ctest-args...]
#   build-dir defaults to build-asan (kept apart from the plain build).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build-asan}"
shift || true

# Fail hard on any sanitizer report instead of continuing.
export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1:detect_leaks=0}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

cmake -B "$build_dir" -S "$repo_root" \
    -DTB_SANITIZE=address+undefined \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)" "$@"
