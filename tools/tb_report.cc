/**
 * @file
 * tb_report: run one training-session config and print its
 * SessionReport — the consolidated view of throughput, the Fig 9
 * latency breakdown, host-resource demand, per-device utilization,
 * and the ranked bottleneck attribution.
 *
 * Examples:
 *   tb_report --preset trainbox --model Resnet-50 --accs 256
 *   tb_report --preset baseline --accs 32 --json report.json
 *   tb_report --preset p2p --csv - --trace trace.json
 *
 * Metrics are enabled by default here (this tool exists to look at
 * them); --no-metrics shows the host-axis fallback attribution.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "prep/executor/prep_executor.hh"
#include "prep/integrity.hh"
#include "prep/pipeline.hh"
#include "sim/trace.hh"
#include "trainbox/fleet.hh"
#include "trainbox/report.hh"
#include "trainbox/server_builder.hh"
#include "workload/cost_model.hh"
#include "trainbox/training_session.hh"
#include "workload/model_zoo.hh"

namespace {

struct Options
{
    tb::ArchPreset preset = tb::ArchPreset::TrainBox;
    std::string model = "Resnet-50";
    std::size_t accs = 256;
    std::size_t batch = 0;
    std::size_t warmup = 4;
    std::size_t measure = 8;
    bool metrics = true;
    double corrupt = 0.0;   // per-hop corruption flip probability
    bool checks = false;    // insert integrity-verify stages
    bool elastic = false;   // canned elasticity demo schedule
    bool ingest = false;    // canned streaming-ingest demo traffic
    std::size_t prepSmoke = 0; // real-executor items to run and attach
    std::string jsonPath;  // "-" = stdout
    std::string csvPath;   // "-" = stdout
    std::string tracePath; // Chrome trace with counter tracks

    bool fleet = false; // canned multi-job fleet instead of one session
    tb::PlacementPolicy policy = tb::PlacementPolicy::PrepPoolAware;
    int fleetPool = 6; // shared prep-pool FPGAs (negative = uncapped)
    bool fleetChaos = false; // scripted fleet faults on the canned fleet
};

void
usage(std::FILE *out)
{
    std::fprintf(out,
        "usage: tb_report [options]\n"
        "  --preset NAME    baseline | acc | acc-gpu | p2p | p2p-gen4 |\n"
        "                   no-pool | trainbox        (default trainbox)\n"
        "  --model NAME     Table I model name      (default Resnet-50)\n"
        "  --accs N         number of accelerators        (default 256)\n"
        "  --batch N        per-accelerator batch     (default Table I)\n"
        "  --warmup N       warmup steps                    (default 4)\n"
        "  --measure N      measured steps                  (default 8)\n"
        "  --json PATH      write the JSON report (PATH '-' = stdout)\n"
        "  --csv PATH       write the CSV report  (PATH '-' = stdout)\n"
        "  --trace PATH     write a Chrome trace with counter tracks\n"
        "  --no-metrics     run without instrumentation (host-axis\n"
        "                   bottleneck fallback only)\n"
        "  --corrupt P      inject silent corruption at per-hop flip\n"
        "                   probability P (docs/ROBUSTNESS.md)\n"
        "  --checks         insert the checksum-verify stages\n"
        "  --elastic        enable a demo elasticity schedule (group\n"
        "                   drains, spot preemptions, rejoins) and the\n"
        "                   SLO/elasticity report block\n"
        "  --ingest         enable a demo streaming-ingest feed (steady\n"
        "                   + diurnal + burst traffic near the shard-\n"
        "                   write drain capacity) and the ingest/\n"
        "                   freshness report block\n"
        "  --prep-smoke N   also run N items through the real prep\n"
        "                   executor (some deliberately bit-flipped)\n"
        "                   and attach its quarantine to the report\n"
        "  --fleet          run the canned mixed vision+audio multi-job\n"
        "                   fleet (arrival trace, shared prep pool) and\n"
        "                   print the FleetReport; --json/--csv export\n"
        "                   the fleet schema (docs/FLEET.md)\n"
        "  --policy NAME    fleet placement policy: first_fit | packed |\n"
        "                   pool_aware              (default pool_aware)\n"
        "  --pool N         fleet shared prep-pool FPGAs; negative =\n"
        "                   uncapped                        (default 6)\n"
        "  --fleet-chaos    --fleet plus a scripted fleet-fault script\n"
        "                   (host outage, pool partition, box loss):\n"
        "                   kills, checkpoint-restart retries, and the\n"
        "                   grant-reclamation path show up in the\n"
        "                   report (docs/ROBUSTNESS.md)\n"
        "  --list           list presets and models, then exit\n");
}

bool
parsePreset(const std::string &s, tb::ArchPreset &out)
{
    using tb::ArchPreset;
    static const struct
    {
        const char *name;
        ArchPreset preset;
    } kMap[] = {
        {"baseline", ArchPreset::Baseline},
        {"acc", ArchPreset::BaselineAccFpga},
        {"acc-gpu", ArchPreset::BaselineAccGpu},
        {"p2p", ArchPreset::BaselineAccP2p},
        {"p2p-gen4", ArchPreset::BaselineAccP2pGen4},
        {"no-pool", ArchPreset::TrainBoxNoPool},
        {"trainbox", ArchPreset::TrainBox},
    };
    for (const auto &e : kMap)
        if (s == e.name) {
            out = e.preset;
            return true;
        }
    return false;
}

void
listChoices()
{
    std::printf("presets:\n");
    static const char *const kNames[] = {"baseline", "acc",     "acc-gpu",
                                         "p2p",      "p2p-gen4", "no-pool",
                                         "trainbox"};
    std::size_t i = 0;
    for (tb::ArchPreset p : tb::allPresets())
        std::printf("  %-9s %s — %s\n", kNames[i++], tb::presetName(p),
                    tb::presetDescription(p));
    std::printf("models:\n");
    for (const auto &m : tb::workload::modelZoo())
        std::printf("  %-12s %s (batch %zu)\n", m.name.c_str(),
                    m.task.c_str(), m.batchSize);
}

void
writeOrPrint(const std::string &path, const std::string &content)
{
    if (path == "-") {
        std::fputs(content.c_str(), stdout);
        return;
    }
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "tb_report: cannot open %s\n", path.c_str());
        std::exit(1);
    }
    std::fputs(content.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
}

/**
 * Run @p items through a real PrepExecutor — sealed synthetic JPEGs
 * (every 4th bit-flipped) plus waveforms (every 5th NaN-poisoned) —
 * and attach the quarantine breakdown to @p report.
 */
void
runPrepSmoke(std::size_t items, tb::SessionReport &report)
{
    using namespace tb;
    Rng gen(2026);
    const auto jpeg = prep::makeSyntheticJpeg(64, 64, gen);

    const std::size_t n_images = items - items / 3;
    const std::size_t n_audio = items / 3;
    std::vector<std::vector<std::uint8_t>> jpegs;
    Rng flip(2027);
    for (std::size_t i = 0; i < n_images; ++i) {
        auto bytes = jpeg;
        prep::sealItem(bytes);
        if (i % 4 == 0)
            prep::flipRandomBit(bytes, flip);
        jpegs.push_back(std::move(bytes));
    }
    std::vector<std::vector<double>> waves;
    for (std::size_t i = 0; i < n_audio; ++i) {
        std::vector<double> wave(8000);
        for (std::size_t s = 0; s < wave.size(); ++s)
            wave[s] = 0.2 * std::sin(0.01 * static_cast<double>(s + i));
        if (i % 5 == 0)
            wave[i % wave.size()] =
                std::numeric_limits<double>::quiet_NaN();
        waves.push_back(std::move(wave));
    }

    prep::ExecutorConfig cfg;
    cfg.checksummedItems = true;
    cfg.validateOutputs = true;
    cfg.image.cropWidth = 32;
    cfg.image.cropHeight = 32;
    prep::PrepExecutor exec(cfg);
    for (auto &f : exec.submitImageBatch(std::move(jpegs)))
        f.get();
    for (auto &f : exec.submitAudioBatch(std::move(waves)))
        f.get();
    exec.shutdown();

    const auto by_reason = prep::quarantineByReason(exec.quarantined());
    report.attachPrepQuarantine(items, by_reason);
    std::fprintf(stderr,
                 "prep smoke: %zu items, %zu quarantined\n", items,
                 report.prepItemsQuarantined());
}

/**
 * The canned --fleet scenario: a mixed vision + audio trace on two
 * 2-box hosts. The first two jobs are co-resident (one host each) and
 * oversubscribe the shared prep pool, so admission arbitrates grants
 * across jobs; the third arrives while both hosts are full and queues
 * until the first completion frees its boxes — a nonzero queueing
 * delay by construction.
 */
tb::FleetConfig
cannedFleet(const Options &opt)
{
    using namespace tb;
    FleetConfig fleet;
    fleet.hosts.push_back({"hostA", 2});
    fleet.hosts.push_back({"hostB", 2});
    fleet.policy = opt.policy;
    fleet.sharedPoolFpgas = opt.fleetPool;

    auto job = [&](const char *name, workload::ModelId model,
                   Time arrival) {
        FleetJobSpec spec;
        spec.name = name;
        spec.arrival = arrival;
        spec.config.preset = ArchPreset::TrainBox;
        spec.config.model = model;
        spec.config.numAccelerators = 16; // 2 boxes
        spec.config.prepPoolFpgas = 4;
        spec.config.metricsEnabled = opt.metrics;
        spec.warmupSteps = opt.warmup;
        spec.measureSteps = opt.measure;
        fleet.jobs.push_back(spec);
    };
    job("vision0", workload::ModelId::Resnet50, 0.0);
    job("audio0", workload::ModelId::TfSr, 0.02);
    job("vision1", workload::ModelId::Resnet50, 0.05);

    if (opt.fleetChaos) {
        // A deterministic fault script exercising all three fleet
        // fault kinds: hostA dies mid-run (killing its job, which
        // retries from its last durable checkpoint after backoff), a
        // partition fences free pool FPGAs, and hostB loses a box
        // slot. Times sit well inside the default 12-step runs.
        fleet.faults.enabled = true;
        fleet.faults.maxRetries = 2;
        fleet.faults.retryBackoffBase = 0.5;
        fleet.faults.schedule.push_back(
            {FleetFaultKind::HostOutage, /*host=*/0, /*start=*/5.0,
             /*duration=*/1.0});
        fleet.faults.schedule.push_back(
            {FleetFaultKind::PoolPartition, /*host=*/0, /*start=*/6.5,
             /*duration=*/2.0, /*units=*/2});
        fleet.faults.schedule.push_back(
            {FleetFaultKind::BoxLoss, /*host=*/1, /*start=*/8.0,
             /*duration=*/1.5, /*units=*/1});
    }
    return fleet;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "tb_report: %s needs a value\n",
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (arg == "--list") {
            listChoices();
            return 0;
        } else if (arg == "--preset") {
            const std::string v = value();
            if (!parsePreset(v, opt.preset)) {
                std::fprintf(stderr, "tb_report: unknown preset '%s'\n",
                             v.c_str());
                return 2;
            }
        } else if (arg == "--model") {
            opt.model = value();
        } else if (arg == "--accs") {
            opt.accs = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--batch") {
            opt.batch = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--warmup") {
            opt.warmup = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--measure") {
            opt.measure = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--json") {
            opt.jsonPath = value();
        } else if (arg == "--csv") {
            opt.csvPath = value();
        } else if (arg == "--trace") {
            opt.tracePath = value();
        } else if (arg == "--no-metrics") {
            opt.metrics = false;
        } else if (arg == "--corrupt") {
            opt.corrupt = std::strtod(value().c_str(), nullptr);
        } else if (arg == "--checks") {
            opt.checks = true;
        } else if (arg == "--elastic") {
            opt.elastic = true;
        } else if (arg == "--ingest") {
            opt.ingest = true;
        } else if (arg == "--prep-smoke") {
            opt.prepSmoke = std::strtoull(value().c_str(), nullptr, 10);
        } else if (arg == "--fleet") {
            opt.fleet = true;
        } else if (arg == "--fleet-chaos") {
            opt.fleet = true;
            opt.fleetChaos = true;
        } else if (arg == "--policy") {
            const std::string v = value();
            if (!tb::parsePlacementPolicy(v, opt.policy)) {
                std::fprintf(stderr, "tb_report: unknown policy '%s'\n",
                             v.c_str());
                return 2;
            }
        } else if (arg == "--pool") {
            opt.fleetPool =
                static_cast<int>(std::strtol(value().c_str(), nullptr, 10));
        } else {
            std::fprintf(stderr, "tb_report: unknown option '%s'\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        }
    }

    if (opt.fleet) {
        const tb::FleetReport fleet = tb::runFleet(cannedFleet(opt));
        const bool quiet = opt.jsonPath == "-" || opt.csvPath == "-";
        if (!quiet)
            fleet.print(stdout);
        if (!opt.jsonPath.empty())
            writeOrPrint(opt.jsonPath, fleet.toJson());
        if (!opt.csvPath.empty())
            writeOrPrint(opt.csvPath, fleet.toCsv());
        return 0;
    }

    tb::ServerConfig cfg = tb::ServerConfig::forPreset(opt.preset)
                               .withModel(opt.model)
                               .withAccelerators(opt.accs)
                               .withBatchSize(opt.batch)
                               .withMetrics(opt.metrics);
    if (opt.corrupt > 0.0 || opt.checks) {
        cfg.faults.enabled = true;
        cfg.faults.integrityChecks = opt.checks;
        cfg.faults.corruption.ssdBitFlipProb = opt.corrupt;
        cfg.faults.corruption.pcieErrorProb = opt.corrupt / 2.0;
        cfg.faults.corruption.fpgaUpsetProb = opt.corrupt;
        cfg.faults.corruption.hostDramFlipProb = opt.corrupt / 2.0;
    }
    if (opt.elastic) {
        // Canned demo: planned drains and spot-style preemptions on
        // both NN-accelerator groups and prep FPGAs, all rejoining.
        tb::ElasticityConfig e;
        e.enabled = true;
        e.groupDrain.ratePerSec = 0.02;
        e.groupDrain.absence = 8.0;
        e.groupPreempt.ratePerSec = 0.01;
        e.groupPreempt.absence = 12.0;
        e.prepDrain.ratePerSec = 0.02;
        e.prepDrain.absence = 6.0;
        e.prepPreempt.ratePerSec = 0.01;
        e.prepPreempt.absence = 10.0;
        e.sloTargetSamplesPerSec = 0.9 * tb::workload::targetThroughput(
            tb::workload::model(cfg.model), cfg.numAccelerators,
            cfg.sync);
        cfg = cfg.withElasticity(e);
    }
    if (opt.ingest) {
        // Canned demo: three traffic classes sized off the box count
        // (shard-write drain capacity scales with the SSD population),
        // peaking a little above drain so the overload chain engages.
        tb::IngestConfig in;
        in.enabled = true;
        const double boxes = static_cast<double>(
            (cfg.numAccelerators + cfg.box.accPerBox - 1) /
            cfg.box.accPerBox);
        in.steady = {15000.0 * boxes, 256.0, 2};
        in.diurnal = {8000.0 * boxes, 128.0, 1};
        in.burst = {10000.0 * boxes, 512.0, 0};
        in.diurnalAmplitude = 0.8;
        in.bufferCapacity = 16384.0;
        in.highWatermark = 12288.0;
        in.lowWatermark = 4096.0;
        in.stalenessSlo = 0.1;
        cfg = cfg.withIngest(in);
    }
    const std::string problem = cfg.validate();
    if (!problem.empty()) {
        std::fprintf(stderr, "tb_report: invalid config: %s\n",
                     problem.c_str());
        return 2;
    }

    auto server = tb::buildServer(cfg);
    tb::TrainingSession session(*server);

    tb::TraceWriter trace;
    if (!opt.tracePath.empty())
        session.setTrace(&trace);

    tb::SessionReport report = session.runReport(opt.warmup, opt.measure);
    if (opt.prepSmoke > 0)
        runPrepSmoke(opt.prepSmoke, report);

    const bool quiet =
        opt.jsonPath == "-" || opt.csvPath == "-";
    if (!quiet)
        report.print(stdout);
    if (!opt.jsonPath.empty())
        writeOrPrint(opt.jsonPath, report.toJson());
    if (!opt.csvPath.empty())
        writeOrPrint(opt.csvPath, report.toCsv());
    if (!opt.tracePath.empty()) {
        report.emitCounters(trace);
        trace.writeFile(opt.tracePath);
        std::fprintf(stderr, "wrote %s\n", opt.tracePath.c_str());
    }
    return 0;
}
