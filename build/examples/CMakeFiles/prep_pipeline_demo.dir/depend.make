# Empty dependencies file for prep_pipeline_demo.
# This may be replaced when dependencies are built.
