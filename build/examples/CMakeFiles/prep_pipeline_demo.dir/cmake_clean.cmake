file(REMOVE_RECURSE
  "CMakeFiles/prep_pipeline_demo.dir/prep_pipeline_demo.cpp.o"
  "CMakeFiles/prep_pipeline_demo.dir/prep_pipeline_demo.cpp.o.d"
  "prep_pipeline_demo"
  "prep_pipeline_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prep_pipeline_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
