# Empty compiler generated dependencies file for augmentation_accuracy.
# This may be replaced when dependencies are built.
