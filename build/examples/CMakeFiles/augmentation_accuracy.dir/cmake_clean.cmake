file(REMOVE_RECURSE
  "CMakeFiles/augmentation_accuracy.dir/augmentation_accuracy.cpp.o"
  "CMakeFiles/augmentation_accuracy.dir/augmentation_accuracy.cpp.o.d"
  "augmentation_accuracy"
  "augmentation_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/augmentation_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
