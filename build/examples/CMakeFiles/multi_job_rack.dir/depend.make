# Empty dependencies file for multi_job_rack.
# This may be replaced when dependencies are built.
