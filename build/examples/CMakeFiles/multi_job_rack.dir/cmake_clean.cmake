file(REMOVE_RECURSE
  "CMakeFiles/multi_job_rack.dir/multi_job_rack.cpp.o"
  "CMakeFiles/multi_job_rack.dir/multi_job_rack.cpp.o.d"
  "multi_job_rack"
  "multi_job_rack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_job_rack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
