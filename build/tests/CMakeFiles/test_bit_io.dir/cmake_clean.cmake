file(REMOVE_RECURSE
  "CMakeFiles/test_bit_io.dir/test_bit_io.cc.o"
  "CMakeFiles/test_bit_io.dir/test_bit_io.cc.o.d"
  "test_bit_io"
  "test_bit_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bit_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
