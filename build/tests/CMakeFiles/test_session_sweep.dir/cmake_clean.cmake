file(REMOVE_RECURSE
  "CMakeFiles/test_session_sweep.dir/test_session_sweep.cc.o"
  "CMakeFiles/test_session_sweep.dir/test_session_sweep.cc.o.d"
  "test_session_sweep"
  "test_session_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_session_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
