# Empty dependencies file for test_session_sweep.
# This may be replaced when dependencies are built.
