file(REMOVE_RECURSE
  "CMakeFiles/test_image_ops.dir/test_image_ops.cc.o"
  "CMakeFiles/test_image_ops.dir/test_image_ops.cc.o.d"
  "test_image_ops"
  "test_image_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_image_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
