# Empty dependencies file for test_audio_features.
# This may be replaced when dependencies are built.
