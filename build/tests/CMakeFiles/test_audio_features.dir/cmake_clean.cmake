file(REMOVE_RECURSE
  "CMakeFiles/test_audio_features.dir/test_audio_features.cc.o"
  "CMakeFiles/test_audio_features.dir/test_audio_features.cc.o.d"
  "test_audio_features"
  "test_audio_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_audio_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
