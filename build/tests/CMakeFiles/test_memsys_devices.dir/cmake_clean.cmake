file(REMOVE_RECURSE
  "CMakeFiles/test_memsys_devices.dir/test_memsys_devices.cc.o"
  "CMakeFiles/test_memsys_devices.dir/test_memsys_devices.cc.o.d"
  "test_memsys_devices"
  "test_memsys_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memsys_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
