file(REMOVE_RECURSE
  "CMakeFiles/test_multi_job.dir/test_multi_job.cc.o"
  "CMakeFiles/test_multi_job.dir/test_multi_job.cc.o.d"
  "test_multi_job"
  "test_multi_job.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_job.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
