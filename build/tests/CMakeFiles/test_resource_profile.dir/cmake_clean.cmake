file(REMOVE_RECURSE
  "CMakeFiles/test_resource_profile.dir/test_resource_profile.cc.o"
  "CMakeFiles/test_resource_profile.dir/test_resource_profile.cc.o.d"
  "test_resource_profile"
  "test_resource_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_resource_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
