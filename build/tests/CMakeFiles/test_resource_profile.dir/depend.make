# Empty dependencies file for test_resource_profile.
# This may be replaced when dependencies are built.
