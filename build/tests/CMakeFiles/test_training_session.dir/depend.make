# Empty dependencies file for test_training_session.
# This may be replaced when dependencies are built.
