file(REMOVE_RECURSE
  "CMakeFiles/test_training_session.dir/test_training_session.cc.o"
  "CMakeFiles/test_training_session.dir/test_training_session.cc.o.d"
  "test_training_session"
  "test_training_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_training_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
