file(REMOVE_RECURSE
  "CMakeFiles/test_fluid_properties.dir/test_fluid_properties.cc.o"
  "CMakeFiles/test_fluid_properties.dir/test_fluid_properties.cc.o.d"
  "test_fluid_properties"
  "test_fluid_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fluid_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
