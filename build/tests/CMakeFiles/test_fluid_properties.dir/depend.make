# Empty dependencies file for test_fluid_properties.
# This may be replaced when dependencies are built.
