file(REMOVE_RECURSE
  "CMakeFiles/test_jpeg.dir/test_jpeg.cc.o"
  "CMakeFiles/test_jpeg.dir/test_jpeg.cc.o.d"
  "test_jpeg"
  "test_jpeg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jpeg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
