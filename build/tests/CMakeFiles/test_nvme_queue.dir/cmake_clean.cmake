file(REMOVE_RECURSE
  "CMakeFiles/test_nvme_queue.dir/test_nvme_queue.cc.o"
  "CMakeFiles/test_nvme_queue.dir/test_nvme_queue.cc.o.d"
  "test_nvme_queue"
  "test_nvme_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvme_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
