# Empty dependencies file for test_trainbox_builder.
# This may be replaced when dependencies are built.
