file(REMOVE_RECURSE
  "CMakeFiles/test_trainbox_builder.dir/test_trainbox_builder.cc.o"
  "CMakeFiles/test_trainbox_builder.dir/test_trainbox_builder.cc.o.d"
  "test_trainbox_builder"
  "test_trainbox_builder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trainbox_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
