file(REMOVE_RECURSE
  "libtb_fpga.a"
)
