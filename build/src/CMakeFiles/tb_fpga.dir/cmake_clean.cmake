file(REMOVE_RECURSE
  "CMakeFiles/tb_fpga.dir/fpga/engine_library.cc.o"
  "CMakeFiles/tb_fpga.dir/fpga/engine_library.cc.o.d"
  "CMakeFiles/tb_fpga.dir/fpga/resource_model.cc.o"
  "CMakeFiles/tb_fpga.dir/fpga/resource_model.cc.o.d"
  "libtb_fpga.a"
  "libtb_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
