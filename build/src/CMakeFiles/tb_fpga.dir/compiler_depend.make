# Empty compiler generated dependencies file for tb_fpga.
# This may be replaced when dependencies are built.
