file(REMOVE_RECURSE
  "CMakeFiles/tb_prep.dir/prep/audio/audio_ops.cc.o"
  "CMakeFiles/tb_prep.dir/prep/audio/audio_ops.cc.o.d"
  "CMakeFiles/tb_prep.dir/prep/audio/fft.cc.o"
  "CMakeFiles/tb_prep.dir/prep/audio/fft.cc.o.d"
  "CMakeFiles/tb_prep.dir/prep/audio/mel.cc.o"
  "CMakeFiles/tb_prep.dir/prep/audio/mel.cc.o.d"
  "CMakeFiles/tb_prep.dir/prep/audio/stft.cc.o"
  "CMakeFiles/tb_prep.dir/prep/audio/stft.cc.o.d"
  "CMakeFiles/tb_prep.dir/prep/audio/wave_gen.cc.o"
  "CMakeFiles/tb_prep.dir/prep/audio/wave_gen.cc.o.d"
  "CMakeFiles/tb_prep.dir/prep/image/image.cc.o"
  "CMakeFiles/tb_prep.dir/prep/image/image.cc.o.d"
  "CMakeFiles/tb_prep.dir/prep/image/image_ops.cc.o"
  "CMakeFiles/tb_prep.dir/prep/image/image_ops.cc.o.d"
  "CMakeFiles/tb_prep.dir/prep/jpeg/bit_io.cc.o"
  "CMakeFiles/tb_prep.dir/prep/jpeg/bit_io.cc.o.d"
  "CMakeFiles/tb_prep.dir/prep/jpeg/dct.cc.o"
  "CMakeFiles/tb_prep.dir/prep/jpeg/dct.cc.o.d"
  "CMakeFiles/tb_prep.dir/prep/jpeg/huffman.cc.o"
  "CMakeFiles/tb_prep.dir/prep/jpeg/huffman.cc.o.d"
  "CMakeFiles/tb_prep.dir/prep/jpeg/jpeg_common.cc.o"
  "CMakeFiles/tb_prep.dir/prep/jpeg/jpeg_common.cc.o.d"
  "CMakeFiles/tb_prep.dir/prep/jpeg/jpeg_decoder.cc.o"
  "CMakeFiles/tb_prep.dir/prep/jpeg/jpeg_decoder.cc.o.d"
  "CMakeFiles/tb_prep.dir/prep/jpeg/jpeg_encoder.cc.o"
  "CMakeFiles/tb_prep.dir/prep/jpeg/jpeg_encoder.cc.o.d"
  "CMakeFiles/tb_prep.dir/prep/pipeline.cc.o"
  "CMakeFiles/tb_prep.dir/prep/pipeline.cc.o.d"
  "libtb_prep.a"
  "libtb_prep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_prep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
