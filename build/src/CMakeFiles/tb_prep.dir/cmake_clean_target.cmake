file(REMOVE_RECURSE
  "libtb_prep.a"
)
