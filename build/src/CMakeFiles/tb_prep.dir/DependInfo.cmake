
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prep/audio/audio_ops.cc" "src/CMakeFiles/tb_prep.dir/prep/audio/audio_ops.cc.o" "gcc" "src/CMakeFiles/tb_prep.dir/prep/audio/audio_ops.cc.o.d"
  "/root/repo/src/prep/audio/fft.cc" "src/CMakeFiles/tb_prep.dir/prep/audio/fft.cc.o" "gcc" "src/CMakeFiles/tb_prep.dir/prep/audio/fft.cc.o.d"
  "/root/repo/src/prep/audio/mel.cc" "src/CMakeFiles/tb_prep.dir/prep/audio/mel.cc.o" "gcc" "src/CMakeFiles/tb_prep.dir/prep/audio/mel.cc.o.d"
  "/root/repo/src/prep/audio/stft.cc" "src/CMakeFiles/tb_prep.dir/prep/audio/stft.cc.o" "gcc" "src/CMakeFiles/tb_prep.dir/prep/audio/stft.cc.o.d"
  "/root/repo/src/prep/audio/wave_gen.cc" "src/CMakeFiles/tb_prep.dir/prep/audio/wave_gen.cc.o" "gcc" "src/CMakeFiles/tb_prep.dir/prep/audio/wave_gen.cc.o.d"
  "/root/repo/src/prep/image/image.cc" "src/CMakeFiles/tb_prep.dir/prep/image/image.cc.o" "gcc" "src/CMakeFiles/tb_prep.dir/prep/image/image.cc.o.d"
  "/root/repo/src/prep/image/image_ops.cc" "src/CMakeFiles/tb_prep.dir/prep/image/image_ops.cc.o" "gcc" "src/CMakeFiles/tb_prep.dir/prep/image/image_ops.cc.o.d"
  "/root/repo/src/prep/jpeg/bit_io.cc" "src/CMakeFiles/tb_prep.dir/prep/jpeg/bit_io.cc.o" "gcc" "src/CMakeFiles/tb_prep.dir/prep/jpeg/bit_io.cc.o.d"
  "/root/repo/src/prep/jpeg/dct.cc" "src/CMakeFiles/tb_prep.dir/prep/jpeg/dct.cc.o" "gcc" "src/CMakeFiles/tb_prep.dir/prep/jpeg/dct.cc.o.d"
  "/root/repo/src/prep/jpeg/huffman.cc" "src/CMakeFiles/tb_prep.dir/prep/jpeg/huffman.cc.o" "gcc" "src/CMakeFiles/tb_prep.dir/prep/jpeg/huffman.cc.o.d"
  "/root/repo/src/prep/jpeg/jpeg_common.cc" "src/CMakeFiles/tb_prep.dir/prep/jpeg/jpeg_common.cc.o" "gcc" "src/CMakeFiles/tb_prep.dir/prep/jpeg/jpeg_common.cc.o.d"
  "/root/repo/src/prep/jpeg/jpeg_decoder.cc" "src/CMakeFiles/tb_prep.dir/prep/jpeg/jpeg_decoder.cc.o" "gcc" "src/CMakeFiles/tb_prep.dir/prep/jpeg/jpeg_decoder.cc.o.d"
  "/root/repo/src/prep/jpeg/jpeg_encoder.cc" "src/CMakeFiles/tb_prep.dir/prep/jpeg/jpeg_encoder.cc.o" "gcc" "src/CMakeFiles/tb_prep.dir/prep/jpeg/jpeg_encoder.cc.o.d"
  "/root/repo/src/prep/pipeline.cc" "src/CMakeFiles/tb_prep.dir/prep/pipeline.cc.o" "gcc" "src/CMakeFiles/tb_prep.dir/prep/pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
