# Empty compiler generated dependencies file for tb_prep.
# This may be replaced when dependencies are built.
