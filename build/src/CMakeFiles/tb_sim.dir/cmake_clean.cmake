file(REMOVE_RECURSE
  "CMakeFiles/tb_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/tb_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/tb_sim.dir/sim/stats.cc.o"
  "CMakeFiles/tb_sim.dir/sim/stats.cc.o.d"
  "CMakeFiles/tb_sim.dir/sim/trace.cc.o"
  "CMakeFiles/tb_sim.dir/sim/trace.cc.o.d"
  "libtb_sim.a"
  "libtb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
