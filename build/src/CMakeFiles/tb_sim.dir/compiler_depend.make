# Empty compiler generated dependencies file for tb_sim.
# This may be replaced when dependencies are built.
