# Empty dependencies file for tb_pcie.
# This may be replaced when dependencies are built.
