file(REMOVE_RECURSE
  "libtb_pcie.a"
)
