file(REMOVE_RECURSE
  "CMakeFiles/tb_pcie.dir/pcie/address_map.cc.o"
  "CMakeFiles/tb_pcie.dir/pcie/address_map.cc.o.d"
  "CMakeFiles/tb_pcie.dir/pcie/topology.cc.o"
  "CMakeFiles/tb_pcie.dir/pcie/topology.cc.o.d"
  "libtb_pcie.a"
  "libtb_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
