
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pcie/address_map.cc" "src/CMakeFiles/tb_pcie.dir/pcie/address_map.cc.o" "gcc" "src/CMakeFiles/tb_pcie.dir/pcie/address_map.cc.o.d"
  "/root/repo/src/pcie/topology.cc" "src/CMakeFiles/tb_pcie.dir/pcie/topology.cc.o" "gcc" "src/CMakeFiles/tb_pcie.dir/pcie/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tb_fluid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
