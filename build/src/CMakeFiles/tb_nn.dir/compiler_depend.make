# Empty compiler generated dependencies file for tb_nn.
# This may be replaced when dependencies are built.
