file(REMOVE_RECURSE
  "libtb_nn.a"
)
