file(REMOVE_RECURSE
  "CMakeFiles/tb_nn.dir/nn/layers.cc.o"
  "CMakeFiles/tb_nn.dir/nn/layers.cc.o.d"
  "CMakeFiles/tb_nn.dir/nn/loss.cc.o"
  "CMakeFiles/tb_nn.dir/nn/loss.cc.o.d"
  "CMakeFiles/tb_nn.dir/nn/mlp.cc.o"
  "CMakeFiles/tb_nn.dir/nn/mlp.cc.o.d"
  "CMakeFiles/tb_nn.dir/nn/optimizer.cc.o"
  "CMakeFiles/tb_nn.dir/nn/optimizer.cc.o.d"
  "CMakeFiles/tb_nn.dir/nn/synth_data.cc.o"
  "CMakeFiles/tb_nn.dir/nn/synth_data.cc.o.d"
  "CMakeFiles/tb_nn.dir/nn/tensor.cc.o"
  "CMakeFiles/tb_nn.dir/nn/tensor.cc.o.d"
  "CMakeFiles/tb_nn.dir/nn/trainer.cc.o"
  "CMakeFiles/tb_nn.dir/nn/trainer.cc.o.d"
  "libtb_nn.a"
  "libtb_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
