
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/layers.cc" "src/CMakeFiles/tb_nn.dir/nn/layers.cc.o" "gcc" "src/CMakeFiles/tb_nn.dir/nn/layers.cc.o.d"
  "/root/repo/src/nn/loss.cc" "src/CMakeFiles/tb_nn.dir/nn/loss.cc.o" "gcc" "src/CMakeFiles/tb_nn.dir/nn/loss.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/CMakeFiles/tb_nn.dir/nn/mlp.cc.o" "gcc" "src/CMakeFiles/tb_nn.dir/nn/mlp.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/CMakeFiles/tb_nn.dir/nn/optimizer.cc.o" "gcc" "src/CMakeFiles/tb_nn.dir/nn/optimizer.cc.o.d"
  "/root/repo/src/nn/synth_data.cc" "src/CMakeFiles/tb_nn.dir/nn/synth_data.cc.o" "gcc" "src/CMakeFiles/tb_nn.dir/nn/synth_data.cc.o.d"
  "/root/repo/src/nn/tensor.cc" "src/CMakeFiles/tb_nn.dir/nn/tensor.cc.o" "gcc" "src/CMakeFiles/tb_nn.dir/nn/tensor.cc.o.d"
  "/root/repo/src/nn/trainer.cc" "src/CMakeFiles/tb_nn.dir/nn/trainer.cc.o" "gcc" "src/CMakeFiles/tb_nn.dir/nn/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tb_prep.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
