file(REMOVE_RECURSE
  "CMakeFiles/tb_sync.dir/sync/ring_allreduce.cc.o"
  "CMakeFiles/tb_sync.dir/sync/ring_allreduce.cc.o.d"
  "CMakeFiles/tb_sync.dir/sync/sync_model.cc.o"
  "CMakeFiles/tb_sync.dir/sync/sync_model.cc.o.d"
  "libtb_sync.a"
  "libtb_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
