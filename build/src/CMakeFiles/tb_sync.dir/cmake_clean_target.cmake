file(REMOVE_RECURSE
  "libtb_sync.a"
)
