# Empty compiler generated dependencies file for tb_sync.
# This may be replaced when dependencies are built.
