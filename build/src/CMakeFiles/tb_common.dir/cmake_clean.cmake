file(REMOVE_RECURSE
  "CMakeFiles/tb_common.dir/common/logging.cc.o"
  "CMakeFiles/tb_common.dir/common/logging.cc.o.d"
  "CMakeFiles/tb_common.dir/common/random.cc.o"
  "CMakeFiles/tb_common.dir/common/random.cc.o.d"
  "CMakeFiles/tb_common.dir/common/table.cc.o"
  "CMakeFiles/tb_common.dir/common/table.cc.o.d"
  "libtb_common.a"
  "libtb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
