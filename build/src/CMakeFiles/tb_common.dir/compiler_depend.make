# Empty compiler generated dependencies file for tb_common.
# This may be replaced when dependencies are built.
