# Empty dependencies file for tb_fluid.
# This may be replaced when dependencies are built.
