file(REMOVE_RECURSE
  "CMakeFiles/tb_fluid.dir/fluid/fluid.cc.o"
  "CMakeFiles/tb_fluid.dir/fluid/fluid.cc.o.d"
  "libtb_fluid.a"
  "libtb_fluid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_fluid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
