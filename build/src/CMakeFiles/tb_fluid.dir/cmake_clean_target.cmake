file(REMOVE_RECURSE
  "libtb_fluid.a"
)
