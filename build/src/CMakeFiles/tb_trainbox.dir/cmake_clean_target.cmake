file(REMOVE_RECURSE
  "libtb_trainbox.a"
)
