
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trainbox/multi_job.cc" "src/CMakeFiles/tb_trainbox.dir/trainbox/multi_job.cc.o" "gcc" "src/CMakeFiles/tb_trainbox.dir/trainbox/multi_job.cc.o.d"
  "/root/repo/src/trainbox/resource_profile.cc" "src/CMakeFiles/tb_trainbox.dir/trainbox/resource_profile.cc.o" "gcc" "src/CMakeFiles/tb_trainbox.dir/trainbox/resource_profile.cc.o.d"
  "/root/repo/src/trainbox/server_builder.cc" "src/CMakeFiles/tb_trainbox.dir/trainbox/server_builder.cc.o" "gcc" "src/CMakeFiles/tb_trainbox.dir/trainbox/server_builder.cc.o.d"
  "/root/repo/src/trainbox/server_config.cc" "src/CMakeFiles/tb_trainbox.dir/trainbox/server_config.cc.o" "gcc" "src/CMakeFiles/tb_trainbox.dir/trainbox/server_config.cc.o.d"
  "/root/repo/src/trainbox/train_initializer.cc" "src/CMakeFiles/tb_trainbox.dir/trainbox/train_initializer.cc.o" "gcc" "src/CMakeFiles/tb_trainbox.dir/trainbox/train_initializer.cc.o.d"
  "/root/repo/src/trainbox/training_session.cc" "src/CMakeFiles/tb_trainbox.dir/trainbox/training_session.cc.o" "gcc" "src/CMakeFiles/tb_trainbox.dir/trainbox/training_session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tb_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_fluid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
