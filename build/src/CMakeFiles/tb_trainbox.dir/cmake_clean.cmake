file(REMOVE_RECURSE
  "CMakeFiles/tb_trainbox.dir/trainbox/multi_job.cc.o"
  "CMakeFiles/tb_trainbox.dir/trainbox/multi_job.cc.o.d"
  "CMakeFiles/tb_trainbox.dir/trainbox/resource_profile.cc.o"
  "CMakeFiles/tb_trainbox.dir/trainbox/resource_profile.cc.o.d"
  "CMakeFiles/tb_trainbox.dir/trainbox/server_builder.cc.o"
  "CMakeFiles/tb_trainbox.dir/trainbox/server_builder.cc.o.d"
  "CMakeFiles/tb_trainbox.dir/trainbox/server_config.cc.o"
  "CMakeFiles/tb_trainbox.dir/trainbox/server_config.cc.o.d"
  "CMakeFiles/tb_trainbox.dir/trainbox/train_initializer.cc.o"
  "CMakeFiles/tb_trainbox.dir/trainbox/train_initializer.cc.o.d"
  "CMakeFiles/tb_trainbox.dir/trainbox/training_session.cc.o"
  "CMakeFiles/tb_trainbox.dir/trainbox/training_session.cc.o.d"
  "libtb_trainbox.a"
  "libtb_trainbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_trainbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
