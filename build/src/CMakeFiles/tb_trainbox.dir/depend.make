# Empty dependencies file for tb_trainbox.
# This may be replaced when dependencies are built.
