file(REMOVE_RECURSE
  "CMakeFiles/tb_workload.dir/workload/cost_model.cc.o"
  "CMakeFiles/tb_workload.dir/workload/cost_model.cc.o.d"
  "CMakeFiles/tb_workload.dir/workload/dataset.cc.o"
  "CMakeFiles/tb_workload.dir/workload/dataset.cc.o.d"
  "CMakeFiles/tb_workload.dir/workload/model_zoo.cc.o"
  "CMakeFiles/tb_workload.dir/workload/model_zoo.cc.o.d"
  "CMakeFiles/tb_workload.dir/workload/prep_ops.cc.o"
  "CMakeFiles/tb_workload.dir/workload/prep_ops.cc.o.d"
  "libtb_workload.a"
  "libtb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
