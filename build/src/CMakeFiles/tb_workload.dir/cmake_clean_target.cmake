file(REMOVE_RECURSE
  "libtb_workload.a"
)
