
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/cost_model.cc" "src/CMakeFiles/tb_workload.dir/workload/cost_model.cc.o" "gcc" "src/CMakeFiles/tb_workload.dir/workload/cost_model.cc.o.d"
  "/root/repo/src/workload/dataset.cc" "src/CMakeFiles/tb_workload.dir/workload/dataset.cc.o" "gcc" "src/CMakeFiles/tb_workload.dir/workload/dataset.cc.o.d"
  "/root/repo/src/workload/model_zoo.cc" "src/CMakeFiles/tb_workload.dir/workload/model_zoo.cc.o" "gcc" "src/CMakeFiles/tb_workload.dir/workload/model_zoo.cc.o.d"
  "/root/repo/src/workload/prep_ops.cc" "src/CMakeFiles/tb_workload.dir/workload/prep_ops.cc.o" "gcc" "src/CMakeFiles/tb_workload.dir/workload/prep_ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_sync.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
