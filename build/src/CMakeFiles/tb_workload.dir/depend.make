# Empty dependencies file for tb_workload.
# This may be replaced when dependencies are built.
