file(REMOVE_RECURSE
  "libtb_devices.a"
)
