file(REMOVE_RECURSE
  "CMakeFiles/tb_devices.dir/devices/ethernet.cc.o"
  "CMakeFiles/tb_devices.dir/devices/ethernet.cc.o.d"
  "CMakeFiles/tb_devices.dir/devices/nn_accelerator.cc.o"
  "CMakeFiles/tb_devices.dir/devices/nn_accelerator.cc.o.d"
  "CMakeFiles/tb_devices.dir/devices/nvme_queue.cc.o"
  "CMakeFiles/tb_devices.dir/devices/nvme_queue.cc.o.d"
  "CMakeFiles/tb_devices.dir/devices/prep_accelerator.cc.o"
  "CMakeFiles/tb_devices.dir/devices/prep_accelerator.cc.o.d"
  "CMakeFiles/tb_devices.dir/devices/ssd.cc.o"
  "CMakeFiles/tb_devices.dir/devices/ssd.cc.o.d"
  "libtb_devices.a"
  "libtb_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
