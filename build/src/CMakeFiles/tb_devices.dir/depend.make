# Empty dependencies file for tb_devices.
# This may be replaced when dependencies are built.
