
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/devices/ethernet.cc" "src/CMakeFiles/tb_devices.dir/devices/ethernet.cc.o" "gcc" "src/CMakeFiles/tb_devices.dir/devices/ethernet.cc.o.d"
  "/root/repo/src/devices/nn_accelerator.cc" "src/CMakeFiles/tb_devices.dir/devices/nn_accelerator.cc.o" "gcc" "src/CMakeFiles/tb_devices.dir/devices/nn_accelerator.cc.o.d"
  "/root/repo/src/devices/nvme_queue.cc" "src/CMakeFiles/tb_devices.dir/devices/nvme_queue.cc.o" "gcc" "src/CMakeFiles/tb_devices.dir/devices/nvme_queue.cc.o.d"
  "/root/repo/src/devices/prep_accelerator.cc" "src/CMakeFiles/tb_devices.dir/devices/prep_accelerator.cc.o" "gcc" "src/CMakeFiles/tb_devices.dir/devices/prep_accelerator.cc.o.d"
  "/root/repo/src/devices/ssd.cc" "src/CMakeFiles/tb_devices.dir/devices/ssd.cc.o" "gcc" "src/CMakeFiles/tb_devices.dir/devices/ssd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tb_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_fluid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
