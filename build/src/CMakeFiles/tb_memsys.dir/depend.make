# Empty dependencies file for tb_memsys.
# This may be replaced when dependencies are built.
