file(REMOVE_RECURSE
  "CMakeFiles/tb_memsys.dir/memsys/cpu_pool.cc.o"
  "CMakeFiles/tb_memsys.dir/memsys/cpu_pool.cc.o.d"
  "CMakeFiles/tb_memsys.dir/memsys/host_memory.cc.o"
  "CMakeFiles/tb_memsys.dir/memsys/host_memory.cc.o.d"
  "libtb_memsys.a"
  "libtb_memsys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tb_memsys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
