file(REMOVE_RECURSE
  "libtb_memsys.a"
)
