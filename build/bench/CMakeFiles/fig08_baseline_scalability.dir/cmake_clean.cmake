file(REMOVE_RECURSE
  "CMakeFiles/fig08_baseline_scalability.dir/fig08_baseline_scalability.cc.o"
  "CMakeFiles/fig08_baseline_scalability.dir/fig08_baseline_scalability.cc.o.d"
  "fig08_baseline_scalability"
  "fig08_baseline_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_baseline_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
