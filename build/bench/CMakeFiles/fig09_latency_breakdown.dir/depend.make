# Empty dependencies file for fig09_latency_breakdown.
# This may be replaced when dependencies are built.
