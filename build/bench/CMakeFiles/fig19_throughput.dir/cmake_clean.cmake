file(REMOVE_RECURSE
  "CMakeFiles/fig19_throughput.dir/fig19_throughput.cc.o"
  "CMakeFiles/fig19_throughput.dir/fig19_throughput.cc.o.d"
  "fig19_throughput"
  "fig19_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
