file(REMOVE_RECURSE
  "CMakeFiles/fig03_bottleneck_shift.dir/fig03_bottleneck_shift.cc.o"
  "CMakeFiles/fig03_bottleneck_shift.dir/fig03_bottleneck_shift.cc.o.d"
  "fig03_bottleneck_shift"
  "fig03_bottleneck_shift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_bottleneck_shift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
