
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig03_bottleneck_shift.cc" "bench/CMakeFiles/fig03_bottleneck_shift.dir/fig03_bottleneck_shift.cc.o" "gcc" "bench/CMakeFiles/fig03_bottleneck_shift.dir/fig03_bottleneck_shift.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tb_trainbox.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_memsys.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_devices.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_fluid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_sync.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_prep.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
