# Empty dependencies file for fig03_bottleneck_shift.
# This may be replaced when dependencies are built.
