file(REMOVE_RECURSE
  "CMakeFiles/fig21_scalability.dir/fig21_scalability.cc.o"
  "CMakeFiles/fig21_scalability.dir/fig21_scalability.cc.o.d"
  "fig21_scalability"
  "fig21_scalability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_scalability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
