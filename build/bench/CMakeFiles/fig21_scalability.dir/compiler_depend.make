# Empty compiler generated dependencies file for fig21_scalability.
# This may be replaced when dependencies are built.
