file(REMOVE_RECURSE
  "CMakeFiles/fig02b_sync_scaling.dir/fig02b_sync_scaling.cc.o"
  "CMakeFiles/fig02b_sync_scaling.dir/fig02b_sync_scaling.cc.o.d"
  "fig02b_sync_scaling"
  "fig02b_sync_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02b_sync_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
