# Empty dependencies file for fig02b_sync_scaling.
# This may be replaced when dependencies are built.
