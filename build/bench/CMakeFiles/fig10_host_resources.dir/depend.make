# Empty dependencies file for fig10_host_resources.
# This may be replaced when dependencies are built.
