file(REMOVE_RECURSE
  "CMakeFiles/fig10_host_resources.dir/fig10_host_resources.cc.o"
  "CMakeFiles/fig10_host_resources.dir/fig10_host_resources.cc.o.d"
  "fig10_host_resources"
  "fig10_host_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_host_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
