file(REMOVE_RECURSE
  "CMakeFiles/micro_sim_core.dir/micro_sim_core.cc.o"
  "CMakeFiles/micro_sim_core.dir/micro_sim_core.cc.o.d"
  "micro_sim_core"
  "micro_sim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
