# Empty compiler generated dependencies file for fig11_resource_decomposition.
# This may be replaced when dependencies are built.
