file(REMOVE_RECURSE
  "CMakeFiles/fig11_resource_decomposition.dir/fig11_resource_decomposition.cc.o"
  "CMakeFiles/fig11_resource_decomposition.dir/fig11_resource_decomposition.cc.o.d"
  "fig11_resource_decomposition"
  "fig11_resource_decomposition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_resource_decomposition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
