# Empty dependencies file for fig20_batch_sweep.
# This may be replaced when dependencies are built.
