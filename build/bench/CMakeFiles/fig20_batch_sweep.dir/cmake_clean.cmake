file(REMOVE_RECURSE
  "CMakeFiles/fig20_batch_sweep.dir/fig20_batch_sweep.cc.o"
  "CMakeFiles/fig20_batch_sweep.dir/fig20_batch_sweep.cc.o.d"
  "fig20_batch_sweep"
  "fig20_batch_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_batch_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
