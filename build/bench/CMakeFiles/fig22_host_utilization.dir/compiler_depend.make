# Empty compiler generated dependencies file for fig22_host_utilization.
# This may be replaced when dependencies are built.
