file(REMOVE_RECURSE
  "CMakeFiles/fig22_host_utilization.dir/fig22_host_utilization.cc.o"
  "CMakeFiles/fig22_host_utilization.dir/fig22_host_utilization.cc.o.d"
  "fig22_host_utilization"
  "fig22_host_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_host_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
