file(REMOVE_RECURSE
  "CMakeFiles/micro_prep_kernels.dir/micro_prep_kernels.cc.o"
  "CMakeFiles/micro_prep_kernels.dir/micro_prep_kernels.cc.o.d"
  "micro_prep_kernels"
  "micro_prep_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_prep_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
