# Empty dependencies file for micro_prep_kernels.
# This may be replaced when dependencies are built.
