# Empty dependencies file for fig05_augmentation.
# This may be replaced when dependencies are built.
