file(REMOVE_RECURSE
  "CMakeFiles/fig05_augmentation.dir/fig05_augmentation.cc.o"
  "CMakeFiles/fig05_augmentation.dir/fig05_augmentation.cc.o.d"
  "fig05_augmentation"
  "fig05_augmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_augmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
