#include "trainbox/server_builder.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/math_util.hh"

namespace tb {

using workload::PrepStage;
using workload::stageCategory;

namespace {

/** Host CPU cost of programming one staged DMA (core-sec/sample). */
constexpr double kDmaSetupCpu = 1.0e-5;

/** Host CPU cost per sample when devices run the datapath (P2P). */
constexpr double kP2pControlCpu = 5.0e-6;

/**
 * Host CPU cost of serializing + writing one checkpoint byte
 * (core-sec/byte, ~1 core per GB/s). Central presets only: there the
 * host process owns the checkpoint write path, whereas clustered boxes
 * drain FPGA-staged snapshots to their SSDs without host involvement.
 */
constexpr double kCkptSerializeCpu = 1.0e-9;

/**
 * Host CPU cost of one CRC32C-checked byte (core-sec/byte; ~10 GB/s
 * per core with the hardware CRC instruction). Charged by the inserted
 * integrity stages on host-staged chains.
 */
constexpr double kCrcCpuPerByte = 1.0e-10;

/**
 * Engine-time tax of an inline checksum generate/verify pass on a prep
 * engine, as a fraction of one sample's engine time. The FPGA streams
 * the CRC alongside the data, so the tax is small but not free.
 */
constexpr double kIntegrityEngineTax = 0.02;

/** Shared state while assembling one server. */
struct Builder
{
    Server &s;
    const ServerConfig &cfg;

    std::size_t nAcc;
    std::size_t accPerGroup;
    std::size_t nGroups;
    Rate engineRate;

    /** Per-group device assignments. */
    std::vector<std::vector<NnAccelerator *>> groupAccs;
    std::vector<std::vector<PrepAccelerator *>> groupPreps;
    std::vector<std::vector<NvmeSsd *>> groupSsds;

    explicit Builder(Server &server)
        : s(server), cfg(server.cfg)
    {
        nAcc = cfg.numAccelerators;
        accPerGroup = std::min<std::size_t>(cfg.box.accPerBox, nAcc);
        nGroups = divCeil(nAcc, accPerGroup);
        const workload::PrepDemand &d = s.demand;
        engineRate = cfg.preset == ArchPreset::BaselineAccGpu
            ? d.gpuChainRate : d.fpgaChainRate;
        groupAccs.resize(nGroups);
        groupPreps.resize(nGroups);
        groupSsds.resize(nGroups);
    }

    double stageCpu(PrepStage st) const
    {
        auto it = s.demand.cpuByStage.find(st);
        return it == s.demand.cpuByStage.end() ? 0.0 : it->second;
    }

    double stageMem(PrepStage st) const
    {
        auto it = s.demand.memByStage.find(st);
        return it == s.demand.memByStage.end() ? 0.0 : it->second;
    }

    double
    cpuCap(double core_sec) const
    {
        return core_sec > 0.0
            ? cfg.maxPrepParallelism / core_sec : 0.0;
    }

    /**
     * Fair-share weight for a CPU-bound stage: inversely proportional
     * to its per-sample cost, so concurrent stages split core *time*
     * equally (OS-scheduler semantics) and stage wall time scales with
     * stage work.
     */
    static double
    cpuFair(double core_sec)
    {
        return core_sec > 0.0 ? 1.0e-4 / core_sec : 1.0;
    }

    /** Insert checksum generate/verify stages into the chains? */
    bool integrityOn() const
    {
        return cfg.faults.enabled && cfg.faults.integrityChecks;
    }

    /** Checksum stage streamed through prep engines (P2P chains). */
    StageTemplate
    engineIntegrityStage(const char *name,
                         const std::vector<PrepAccelerator *> &preps) const
    {
        const double prep_share =
            1.0 / static_cast<double>(preps.size());
        StageTemplate st;
        st.name = name;
        st.category = "integrity";
        st.verifiesIntegrity = true;
        DemandSet ds;
        for (auto *prep : preps)
            ds.add(prep->engine(), prep_share * kIntegrityEngineTax);
        ds.add(s.cpu->resource(), kP2pControlCpu);
        st.demandsPerSample = ds.build();
        return st;
    }

    /** Checksum stage run by the host CPU over @p bytes per sample. */
    StageTemplate
    hostIntegrityStage(const char *name, double bytes,
                       bool fairCpu) const
    {
        StageTemplate st;
        st.name = name;
        st.category = "integrity";
        st.verifiesIntegrity = true;
        const double cpu = bytes * kCrcCpuPerByte;
        DemandSet ds;
        ds.add(s.cpu->resource(), cpu);
        ds.add(s.hostMem->resource(), bytes);
        st.demandsPerSample = ds.build();
        if (fairCpu) {
            st.rateCap = cpuCap(cpu);
            st.fairWeight = cpuFair(cpu);
        }
        return st;
    }

    /** Accelerator-ingest verify on P2P delivery (control CPU only). */
    StageTemplate
    p2pSinkIntegrityStage() const
    {
        StageTemplate st;
        st.name = "integrity_sink";
        st.category = "integrity";
        st.verifiesIntegrity = true;
        DemandSet ds;
        ds.add(s.cpu->resource(), kP2pControlCpu);
        st.demandsPerSample = ds.build();
        return st;
    }

    /** Build the non-clustered presets (Figs 12-14 + Gen4 + GPU). */
    void buildCentral();

    /** Build the clustered presets (Fig 15). */
    void buildClustered();

    void makeCentralStages(std::size_t g);
    void makeClusteredStages(std::size_t g);
};

void
Builder::buildCentral()
{
    auto &topo = *s.topo;

    // Accelerator boxes: one 8-accelerator box per group.
    for (std::size_t g = 0; g < nGroups; ++g) {
        const std::string box = "accbox" + std::to_string(g);
        const pcie::NodeId sw =
            topo.addSwitch(box, topo.root(), pcie::gen::gen3x16);
        const std::size_t count =
            std::min(accPerGroup, nAcc - g * accPerGroup);
        for (std::size_t i = 0; i < count; ++i) {
            s.accs.push_back(std::make_unique<NnAccelerator>(
                topo, box + ".acc" + std::to_string(i), sw));
            groupAccs[g].push_back(s.accs.back().get());
        }
    }

    // SSD boxes: same aggregate SSD count as the clustered design.
    const std::size_t n_ssd =
        std::max<std::size_t>(cfg.box.ssdsPerBox,
                              nGroups * cfg.box.ssdsPerBox);
    const std::size_t per_box = cfg.box.ssdsPerSsdBox;
    const std::size_t n_ssd_boxes = divCeil(n_ssd, per_box);
    for (std::size_t b = 0; b < n_ssd_boxes; ++b) {
        const std::string box = "ssdbox" + std::to_string(b);
        const pcie::NodeId sw =
            topo.addSwitch(box, topo.root(), pcie::gen::gen3x16);
        for (std::size_t i = 0;
             i < per_box && s.ssds.size() < n_ssd; ++i) {
            s.ssds.push_back(std::make_unique<NvmeSsd>(
                s.core().fluid(), topo, box + ".ssd" + std::to_string(i), sw));
        }
    }
    // Reads are striped across the whole SSD array for every group.
    for (std::size_t g = 0; g < nGroups; ++g)
        for (auto &ssd : s.ssds)
            groupSsds[g].push_back(ssd.get());

    // Prep boxes (all presets but Baseline): 1 engine per 4 accelerators,
    // eight engines per box (§III-A box structure).
    if (presetUsesPrepAccelerators(cfg.preset)) {
        const std::size_t n_prep = std::max<std::size_t>(1, nAcc / 4);
        const PrepEngineKind kind =
            cfg.preset == ArchPreset::BaselineAccGpu
                ? PrepEngineKind::Gpu : PrepEngineKind::Fpga;
        pcie::NodeId sw = pcie::kInvalidNode;
        for (std::size_t i = 0; i < n_prep; ++i) {
            if (i % 8 == 0) {
                const std::string box =
                    "prepbox" + std::to_string(i / 8);
                sw = topo.addSwitch(box, topo.root(),
                                    pcie::gen::gen3x16);
            }
            s.preps.push_back(std::make_unique<PrepAccelerator>(
                s.core().fluid(), topo, "prep" + std::to_string(i), sw, kind,
                engineRate, /*withEthernet=*/false));
        }
        // Assign engines to groups round-robin so every group has at
        // least one.
        for (std::size_t i = 0; i < std::max(n_prep, nGroups); ++i)
            groupPreps[i % nGroups].push_back(
                s.preps[i % n_prep].get());
    }

    for (std::size_t g = 0; g < nGroups; ++g)
        makeCentralStages(g);
}

void
Builder::makeCentralStages(std::size_t g)
{
    auto &topo = *s.topo;
    const workload::PrepDemand &d = s.demand;
    PrepGroup group;
    group.name = "group" + std::to_string(g);
    group.numAccelerators = groupAccs[g].size();
    group.preps = groupPreps[g];

    const auto &accs = groupAccs[g];
    const auto &preps = groupPreps[g];
    const auto &ssds = groupSsds[g];
    const double acc_share = 1.0 / static_cast<double>(accs.size());
    const double ssd_share = 1.0 / static_cast<double>(ssds.size());
    const double prep_share =
        preps.empty() ? 0.0 : 1.0 / static_cast<double>(preps.size());

    const bool p2p = presetUsesP2p(cfg.preset);

    // --- Stage: SSD read ---------------------------------------------
    {
        StageTemplate st;
        st.name = "ssd_read";
        st.category = stageCategory(PrepStage::SsdRead);
        DemandSet ds;
        for (auto *ssd : ssds) {
            ds.add(ssd->readDemand(d.ssdBytes * ssd_share).resource,
                   d.ssdBytes * ssd_share);
            if (p2p) {
                // Direct SSD -> prep-engine DMA (P2P handler on FPGA).
                for (auto *prep : preps)
                    ds.add(topo.routeDemands(
                               ssd->node(), prep->node(),
                               d.ssdBytes * ssd_share * prep_share));
            } else {
                ds.add(topo.hostRouteDemands(ssd->node(), false,
                                             d.ssdBytes * ssd_share));
            }
        }
        if (p2p) {
            ds.add(s.cpu->resource(), kP2pControlCpu);
        } else {
            ds.add(s.hostMem->resource(), d.ssdBytes);
            ds.add(s.cpu->resource(), stageCpu(PrepStage::SsdRead));
            if (preps.empty())
                st.fairWeight = cpuFair(stageCpu(PrepStage::SsdRead));
        }
        st.corruptionHops = corruptionBit(CorruptionKind::SsdBitFlip) |
                            corruptionBit(CorruptionKind::PcieLinkError);
        if (!p2p)
            st.corruptionHops |=
                corruptionBit(CorruptionKind::HostDramFlip);
        st.demandsPerSample = ds.build();
        group.stages.push_back(std::move(st));
    }

    // --- Checksum-generate stage at the source -----------------------
    if (integrityOn())
        group.stages.push_back(
            p2p ? engineIntegrityStage("integrity_src", preps)
                : hostIntegrityStage("integrity_src", d.ssdBytes,
                                     preps.empty()));

    if (preps.empty()) {
        // --- Baseline: CPU formatting --------------------------------
        {
            StageTemplate st;
            st.name = "formatting";
            st.category = stageCategory(PrepStage::Formatting);
            DemandSet ds;
            ds.add(s.cpu->resource(), stageCpu(PrepStage::Formatting));
            ds.add(s.hostMem->resource(), stageMem(PrepStage::Formatting));
            st.demandsPerSample = ds.build();
            st.rateCap = cpuCap(stageCpu(PrepStage::Formatting));
            st.fairWeight = cpuFair(stageCpu(PrepStage::Formatting));
            // CPU decode touches every byte: the framework loader's
            // software validation catches silent flips here (the
            // protection the P2P path gives up).
            st.corruptionHops =
                corruptionBit(CorruptionKind::HostDramFlip);
            st.verifiesIntegrity = true;
            group.stages.push_back(std::move(st));
        }
        // --- Baseline: CPU augmentation ------------------------------
        {
            StageTemplate st;
            st.name = "augmentation";
            st.category = stageCategory(PrepStage::Augmentation);
            DemandSet ds;
            ds.add(s.cpu->resource(), stageCpu(PrepStage::Augmentation));
            ds.add(s.hostMem->resource(),
                   stageMem(PrepStage::Augmentation));
            st.demandsPerSample = ds.build();
            st.rateCap = cpuCap(stageCpu(PrepStage::Augmentation));
            st.fairWeight = cpuFair(stageCpu(PrepStage::Augmentation));
            st.corruptionHops =
                corruptionBit(CorruptionKind::HostDramFlip);
            group.stages.push_back(std::move(st));
        }
    } else if (!p2p) {
        // --- Step 1 only: staged copy host -> prep engines -----------
        {
            StageTemplate st;
            st.name = "copy_to_prep";
            st.category = "data_copy";
            DemandSet ds;
            ds.add(s.hostMem->resource(), d.ssdBytes);
            ds.add(s.cpu->resource(), kDmaSetupCpu);
            for (auto *prep : preps)
                ds.add(topo.hostRouteDemands(prep->node(), true,
                                             d.ssdBytes * prep_share));
            st.corruptionHops =
                corruptionBit(CorruptionKind::PcieLinkError) |
                corruptionBit(CorruptionKind::HostDramFlip);
            st.demandsPerSample = ds.build();
            group.stages.push_back(std::move(st));
        }
    }

    if (!preps.empty()) {
        // --- Offloaded formatting + augmentation ---------------------
        StageTemplate st;
        st.name = "formatting";
        st.category = stageCategory(PrepStage::Formatting);
        DemandSet ds;
        for (auto *prep : preps)
            ds.add(prep->engine(), prep_share);
        st.demandsPerSample = ds.build();
        st.corruptionHops = corruptionBit(CorruptionKind::FpgaUpset);
        group.stages.push_back(std::move(st));

        if (!p2p) {
            // --- Staged copy prep engines -> host --------------------
            StageTemplate back;
            back.name = "copy_from_prep";
            back.category = "data_copy";
            DemandSet bs;
            bs.add(s.hostMem->resource(), d.preparedBytes);
            bs.add(s.cpu->resource(), kDmaSetupCpu);
            for (auto *prep : preps)
                bs.add(topo.hostRouteDemands(prep->node(), false,
                                             d.preparedBytes *
                                                 prep_share));
            back.corruptionHops =
                corruptionBit(CorruptionKind::PcieLinkError) |
                corruptionBit(CorruptionKind::HostDramFlip);
            back.demandsPerSample = bs.build();
            group.stages.push_back(std::move(back));
        }
    }

    // --- Stage: data load into the accelerators ----------------------
    {
        StageTemplate st;
        st.name = "data_load";
        st.category = stageCategory(PrepStage::DataLoad);
        DemandSet ds;
        if (p2p) {
            // Direct prep engine -> accelerator DMA.
            for (auto *prep : preps)
                for (auto *acc : accs)
                    ds.add(topo.routeDemands(prep->node(), acc->node(),
                                             d.preparedBytes *
                                                 prep_share * acc_share));
            ds.add(s.cpu->resource(), kP2pControlCpu);
        } else {
            ds.add(s.hostMem->resource(), d.preparedBytes);
            for (auto *acc : accs)
                ds.add(topo.hostRouteDemands(acc->node(), true,
                                             d.preparedBytes * acc_share));
            ds.add(s.cpu->resource(),
                   preps.empty() ? stageCpu(PrepStage::DataLoad)
                                 : kDmaSetupCpu);
        }
        st.corruptionHops = corruptionBit(CorruptionKind::PcieLinkError);
        if (!p2p)
            st.corruptionHops |=
                corruptionBit(CorruptionKind::HostDramFlip);
        st.demandsPerSample = ds.build();
        if (preps.empty()) {
            st.rateCap = cpuCap(stageCpu(PrepStage::DataLoad));
            st.fairWeight = cpuFair(stageCpu(PrepStage::DataLoad));
        }
        group.stages.push_back(std::move(st));
    }

    // --- Checksum-verify stage at the sink ---------------------------
    if (integrityOn())
        group.stages.push_back(
            p2p ? p2pSinkIntegrityStage()
                : hostIntegrityStage("integrity_sink", d.preparedBytes,
                                     preps.empty()));

    // --- Stage: framework overheads ----------------------------------
    {
        StageTemplate st;
        st.name = "others";
        st.category = stageCategory(PrepStage::Others);
        DemandSet ds;
        const double cpu = preps.empty()
            ? stageCpu(PrepStage::Others)
            : (p2p ? kP2pControlCpu : stageCpu(PrepStage::Others));
        ds.add(s.cpu->resource(), cpu);
        st.demandsPerSample = ds.build();
        st.rateCap = cpuCap(cpu);
        if (preps.empty())
            st.fairWeight = cpuFair(cpu);
        group.stages.push_back(std::move(st));
    }

    // --- Checkpoint drain path (base unit: one byte) -----------------
    // Central presets stage the snapshot through host DRAM and funnel
    // it through the RC to the shared SSD boxes — the same RC the prep
    // reads cross, so a drain directly steals prep bandwidth.
    {
        StageTemplate st;
        st.name = "ckpt_write";
        st.category = "checkpoint";
        // The drain flows in bytes while prep flows in samples; under
        // progressive filling a frozen flow's rate is level*weight, so
        // weight by one sample's bytes to give the drain the fair share
        // of one prep stream on every contended resource.
        st.fairWeight = d.ssdBytes;
        DemandSet ds;
        ds.add(s.hostMem->resource(), 1.0);
        ds.add(s.cpu->resource(), kCkptSerializeCpu);
        for (auto *ssd : ssds) {
            ds.add(ssd->writeDemand(ssd_share).resource, ssd_share);
            ds.add(ssd->writeReadInterference(ssd_share).resource,
                   ssd_share * NvmeSsd::kWriteReadInterference);
            ds.add(topo.hostRouteDemands(ssd->node(), true, ssd_share));
        }
        st.demandsPerSample = ds.build();
        group.checkpointWrite = std::move(st);
    }

    // --- Ingest shard-append path (base unit: one sample) ------------
    // Freshly arrived samples drain from the host-DRAM ingest buffer
    // through the RC to the shared SSD boxes: every appended byte pays
    // the shard write amplification plus the write->read interference
    // that slows the prep reads striped over the same SSDs.
    if (cfg.ingest.enabled) {
        StageTemplate st;
        st.name = "ingest_write";
        st.category = "ingest";
        DemandSet ds;
        ds.add(s.hostMem->resource(), d.ssdBytes);
        ds.add(s.cpu->resource(),
               kDmaSetupCpu + d.ssdBytes * kCrcCpuPerByte);
        for (auto *ssd : ssds) {
            const FlowDemand wr =
                ssd->shardWriteDemand(d.ssdBytes * ssd_share);
            const FlowDemand rd =
                ssd->shardWriteReadInterference(d.ssdBytes * ssd_share);
            ds.add(wr.resource, wr.weight);
            ds.add(rd.resource, rd.weight);
            ds.add(topo.hostRouteDemands(ssd->node(), true,
                                         d.ssdBytes * ssd_share));
        }
        st.demandsPerSample = ds.build();
        group.ingestWrite = std::move(st);
    }

    s.groups.push_back(std::move(group));
}

void
Builder::buildClustered()
{
    auto &topo = *s.topo;

    // Train boxes: top switch with two sub-switches (4 accs + 1 FPGA
    // each) and the box's SSDs (§V-D / Fig 18).
    for (std::size_t g = 0; g < nGroups; ++g) {
        const std::string box = "tbox" + std::to_string(g);
        const pcie::NodeId top =
            topo.addSwitch(box, topo.root(), pcie::gen::gen3x16);

        const std::size_t count =
            std::min(accPerGroup, nAcc - g * accPerGroup);
        const std::size_t n_sub = count > 4 ? 2 : 1;
        std::vector<pcie::NodeId> subs;
        for (std::size_t i = 0; i < n_sub; ++i)
            subs.push_back(topo.addSwitch(
                box + ".sw" + std::to_string(i), top,
                pcie::gen::gen3x16));

        for (std::size_t i = 0; i < count; ++i) {
            s.accs.push_back(std::make_unique<NnAccelerator>(
                topo, box + ".acc" + std::to_string(i),
                subs[i % n_sub]));
            groupAccs[g].push_back(s.accs.back().get());
        }
        for (std::size_t i = 0;
             i < std::max<std::size_t>(1, cfg.box.prepPerBox * n_sub / 2);
             ++i) {
            s.preps.push_back(std::make_unique<PrepAccelerator>(
                s.core().fluid(), topo, box + ".fpga" + std::to_string(i),
                subs[i % n_sub], PrepEngineKind::Fpga, engineRate,
                /*withEthernet=*/true));
            groupPreps[g].push_back(s.preps.back().get());
        }
        for (std::size_t i = 0; i < cfg.box.ssdsPerBox; ++i) {
            s.ssds.push_back(std::make_unique<NvmeSsd>(
                s.core().fluid(), topo, box + ".ssd" + std::to_string(i), top));
            groupSsds[g].push_back(s.ssds.back().get());
        }
    }

    // Prep-pool over Ethernet.
    std::size_t pool_size = 0;
    if (cfg.preset == ArchPreset::TrainBox) {
        pool_size = cfg.prepPoolFpgas >= 0
            ? static_cast<std::size_t>(cfg.prepPoolFpgas)
            : s.plan.poolFpgas;
    }
    if (pool_size > 0) {
        s.pool = std::make_unique<PrepPool>(s.core().fluid(), "pool");
        for (std::size_t i = 0; i < pool_size; ++i)
            s.pool->addFpga(engineRate);
    }

    for (std::size_t g = 0; g < nGroups; ++g)
        makeClusteredStages(g);
}

void
Builder::makeClusteredStages(std::size_t g)
{
    auto &topo = *s.topo;
    const workload::PrepDemand &d = s.demand;
    PrepGroup group;
    group.name = "tbox" + std::to_string(g);
    group.numAccelerators = groupAccs[g].size();
    group.preps = groupPreps[g];

    const auto &accs = groupAccs[g];
    const auto &ssds = groupSsds[g];
    const double acc_share = 1.0 / static_cast<double>(accs.size());
    const double ssd_share = 1.0 / static_cast<double>(ssds.size());

    using PrepVec = std::vector<PrepAccelerator *>;
    const PrepVec &all_preps = groupPreps[g];

    // Local SSD -> FPGA fetch demands (shared by local/offload chains).
    auto fetch_demands = [&](const PrepVec &preps) {
        const double prep_share = 1.0 / static_cast<double>(preps.size());
        DemandSet ds;
        for (auto *ssd : ssds) {
            ds.add(ssd->readDemand(d.ssdBytes * ssd_share).resource,
                   d.ssdBytes * ssd_share);
            for (auto *prep : preps)
                ds.add(topo.routeDemands(ssd->node(), prep->node(),
                                         d.ssdBytes * ssd_share *
                                             prep_share));
        }
        return ds;
    };
    // Local FPGA -> accelerator delivery demands.
    auto deliver_demands = [&](const PrepVec &preps) {
        const double prep_share = 1.0 / static_cast<double>(preps.size());
        DemandSet ds;
        for (auto *prep : preps)
            for (auto *acc : accs)
                ds.add(topo.routeDemands(prep->node(), acc->node(),
                                         d.preparedBytes * prep_share *
                                             acc_share));
        return ds;
    };

    // The in-box P2P chain striped over @p preps (all FPGAs for the
    // healthy template, the survivors for the degraded one).
    auto local_chain = [&](const PrepVec &preps) {
        const double prep_share = 1.0 / static_cast<double>(preps.size());
        std::vector<StageTemplate> stages;
        {
            StageTemplate st;
            st.name = "ssd_read";
            st.category = stageCategory(PrepStage::SsdRead);
            DemandSet ds = fetch_demands(preps);
            ds.add(s.cpu->resource(), kP2pControlCpu);
            st.corruptionHops =
                corruptionBit(CorruptionKind::SsdBitFlip) |
                corruptionBit(CorruptionKind::PcieLinkError);
            st.demandsPerSample = ds.build();
            stages.push_back(std::move(st));
        }
        if (integrityOn())
            stages.push_back(engineIntegrityStage("integrity_src", preps));
        {
            StageTemplate st;
            st.name = "formatting";
            st.category = stageCategory(PrepStage::Formatting);
            DemandSet ds;
            for (auto *prep : preps)
                ds.add(prep->engine(), prep_share);
            st.demandsPerSample = ds.build();
            st.corruptionHops = corruptionBit(CorruptionKind::FpgaUpset);
            stages.push_back(std::move(st));
        }
        {
            StageTemplate st;
            st.name = "data_load";
            st.category = stageCategory(PrepStage::DataLoad);
            st.demandsPerSample = deliver_demands(preps).build();
            st.corruptionHops =
                corruptionBit(CorruptionKind::PcieLinkError);
            stages.push_back(std::move(st));
        }
        if (integrityOn())
            stages.push_back(p2pSinkIntegrityStage());
        {
            StageTemplate st;
            st.name = "others";
            st.category = stageCategory(PrepStage::Others);
            DemandSet ds;
            ds.add(s.cpu->resource(), kP2pControlCpu);
            st.demandsPerSample = ds.build();
            st.rateCap = cpuCap(kP2pControlCpu);
            stages.push_back(std::move(st));
        }
        return stages;
    };

    // The prep-pool chain entering/leaving through @p preps' Ethernet.
    auto offload_chain = [&](const PrepVec &preps) {
        const double prep_share = 1.0 / static_cast<double>(preps.size());
        const auto &pool = s.pool->fpgas();
        const double pool_share = 1.0 / static_cast<double>(pool.size());
        std::vector<StageTemplate> stages;
        {
            StageTemplate st;
            st.name = "ssd_read";
            st.category = stageCategory(PrepStage::SsdRead);
            DemandSet ds = fetch_demands(preps);
            ds.add(s.cpu->resource(), kP2pControlCpu);
            st.corruptionHops =
                corruptionBit(CorruptionKind::SsdBitFlip) |
                corruptionBit(CorruptionKind::PcieLinkError);
            st.demandsPerSample = ds.build();
            stages.push_back(std::move(st));
        }
        if (integrityOn())
            stages.push_back(engineIntegrityStage("integrity_src", preps));
        {
            StageTemplate st;
            st.name = "pool_send";
            st.category = "data_copy";
            DemandSet ds;
            for (auto *prep : preps)
                ds.add(prep->ethernetPort(), d.ssdBytes * prep_share);
            ds.add(s.pool->fabric(), d.ssdBytes);
            for (const auto &f : pool)
                ds.add(f.port, d.ssdBytes * pool_share);
            st.demandsPerSample = ds.build();
            stages.push_back(std::move(st));
        }
        {
            StageTemplate st;
            st.name = "formatting";
            st.category = stageCategory(PrepStage::Formatting);
            DemandSet ds;
            for (const auto &f : pool)
                ds.add(f.engine, pool_share);
            st.demandsPerSample = ds.build();
            st.corruptionHops = corruptionBit(CorruptionKind::FpgaUpset);
            stages.push_back(std::move(st));
        }
        {
            StageTemplate st;
            st.name = "pool_recv";
            st.category = "data_copy";
            DemandSet ds;
            for (const auto &f : pool)
                ds.add(f.port, d.preparedBytes * pool_share);
            ds.add(s.pool->fabric(), d.preparedBytes);
            for (auto *prep : preps)
                ds.add(prep->ethernetPort(),
                       d.preparedBytes * prep_share);
            st.demandsPerSample = ds.build();
            stages.push_back(std::move(st));
        }
        {
            StageTemplate st;
            st.name = "data_load";
            st.category = stageCategory(PrepStage::DataLoad);
            st.demandsPerSample = deliver_demands(preps).build();
            st.corruptionHops =
                corruptionBit(CorruptionKind::PcieLinkError);
            stages.push_back(std::move(st));
        }
        if (integrityOn())
            stages.push_back(p2pSinkIntegrityStage());
        return stages;
    };

    // Host-memory fallback chain (P2P route lost): the box's data takes
    // the central presets' Step-1 staging path through host DRAM.
    auto host_chain = [&]() {
        const double prep_share =
            1.0 / static_cast<double>(all_preps.size());
        std::vector<StageTemplate> stages;
        {
            StageTemplate st;
            st.name = "ssd_read";
            st.category = stageCategory(PrepStage::SsdRead);
            DemandSet ds;
            for (auto *ssd : ssds) {
                ds.add(ssd->readDemand(d.ssdBytes * ssd_share).resource,
                       d.ssdBytes * ssd_share);
                ds.add(topo.hostRouteDemands(ssd->node(), false,
                                             d.ssdBytes * ssd_share));
            }
            ds.add(s.hostMem->resource(), d.ssdBytes);
            ds.add(s.cpu->resource(), kDmaSetupCpu);
            st.corruptionHops =
                corruptionBit(CorruptionKind::SsdBitFlip) |
                corruptionBit(CorruptionKind::PcieLinkError) |
                corruptionBit(CorruptionKind::HostDramFlip);
            st.demandsPerSample = ds.build();
            stages.push_back(std::move(st));
        }
        if (integrityOn())
            stages.push_back(hostIntegrityStage("integrity_src",
                                                d.ssdBytes, false));
        {
            StageTemplate st;
            st.name = "copy_to_prep";
            st.category = "data_copy";
            DemandSet ds;
            ds.add(s.hostMem->resource(), d.ssdBytes);
            ds.add(s.cpu->resource(), kDmaSetupCpu);
            for (auto *prep : all_preps)
                ds.add(topo.hostRouteDemands(prep->node(), true,
                                             d.ssdBytes * prep_share));
            st.corruptionHops =
                corruptionBit(CorruptionKind::PcieLinkError) |
                corruptionBit(CorruptionKind::HostDramFlip);
            st.demandsPerSample = ds.build();
            stages.push_back(std::move(st));
        }
        {
            StageTemplate st;
            st.name = "formatting";
            st.category = stageCategory(PrepStage::Formatting);
            DemandSet ds;
            for (auto *prep : all_preps)
                ds.add(prep->engine(), prep_share);
            st.demandsPerSample = ds.build();
            st.corruptionHops = corruptionBit(CorruptionKind::FpgaUpset);
            stages.push_back(std::move(st));
        }
        {
            StageTemplate st;
            st.name = "copy_from_prep";
            st.category = "data_copy";
            DemandSet ds;
            ds.add(s.hostMem->resource(), d.preparedBytes);
            ds.add(s.cpu->resource(), kDmaSetupCpu);
            for (auto *prep : all_preps)
                ds.add(topo.hostRouteDemands(prep->node(), false,
                                             d.preparedBytes *
                                                 prep_share));
            st.corruptionHops =
                corruptionBit(CorruptionKind::PcieLinkError) |
                corruptionBit(CorruptionKind::HostDramFlip);
            st.demandsPerSample = ds.build();
            stages.push_back(std::move(st));
        }
        {
            StageTemplate st;
            st.name = "data_load";
            st.category = stageCategory(PrepStage::DataLoad);
            DemandSet ds;
            ds.add(s.hostMem->resource(), d.preparedBytes);
            ds.add(s.cpu->resource(), kDmaSetupCpu);
            for (auto *acc : accs)
                ds.add(topo.hostRouteDemands(acc->node(), true,
                                             d.preparedBytes * acc_share));
            st.corruptionHops =
                corruptionBit(CorruptionKind::PcieLinkError) |
                corruptionBit(CorruptionKind::HostDramFlip);
            st.demandsPerSample = ds.build();
            stages.push_back(std::move(st));
        }
        if (integrityOn())
            stages.push_back(hostIntegrityStage("integrity_sink",
                                                d.preparedBytes, false));
        return stages;
    };

    // --- Local chain --------------------------------------------------
    group.stages = local_chain(all_preps);

    // --- Recovery templates (exercised only under fault injection) ----
    group.hostPathStages = host_chain();
    if (all_preps.size() > 1) {
        const PrepVec survivors(all_preps.begin(), all_preps.end() - 1);
        group.degradedStages = local_chain(survivors);
    }

    // --- Offload chain (prep-pool) -------------------------------------
    // Built whenever the pool exists — even at offloadFraction 0 — so
    // crash failover can lend pool capacity to a degraded box.
    if (s.pool) {
        group.offloadFraction = s.plan.offloadFraction;
        group.offloadStages = offload_chain(all_preps);
        if (all_preps.size() > 1) {
            const PrepVec survivors(all_preps.begin(),
                                    all_preps.end() - 1);
            group.degradedOffloadStages = offload_chain(survivors);
        }
    }

    // --- Checkpoint drain path (base unit: one byte) -------------------
    // Clustered boxes drain through their FPGAs to their *own* SSDs over
    // the box switch — the write direction opposes the read direction on
    // the switch links and never crosses the RC, so checkpoint traffic
    // costs the prep path far less than in the central designs.
    {
        const double prep_share =
            1.0 / static_cast<double>(all_preps.size());
        StageTemplate st;
        st.name = "ckpt_write";
        st.category = "checkpoint";
        // Same byte-vs-sample weight normalization as the central path.
        st.fairWeight = d.ssdBytes;
        DemandSet ds;
        for (auto *ssd : ssds) {
            ds.add(ssd->writeDemand(ssd_share).resource, ssd_share);
            ds.add(ssd->writeReadInterference(ssd_share).resource,
                   ssd_share * NvmeSsd::kWriteReadInterference);
            for (auto *prep : all_preps)
                ds.add(topo.routeDemands(prep->node(), ssd->node(),
                                         ssd_share * prep_share));
        }
        st.demandsPerSample = ds.build();
        group.checkpointWrite = std::move(st);
    }

    // --- Ingest shard-append path (base unit: one sample) --------------
    // Arrivals land in host DRAM (the ingest buffer fills from the host
    // NIC), so unlike checkpoint drains the shard appends *do* cross the
    // RC — but they target the box's own SSDs, and each appended byte
    // pays the shard write amplification plus the write->read
    // interference that slows this box's prep fetches.
    if (cfg.ingest.enabled) {
        StageTemplate st;
        st.name = "ingest_write";
        st.category = "ingest";
        DemandSet ds;
        ds.add(s.hostMem->resource(), d.ssdBytes);
        ds.add(s.cpu->resource(),
               kDmaSetupCpu + d.ssdBytes * kCrcCpuPerByte);
        for (auto *ssd : ssds) {
            const FlowDemand wr =
                ssd->shardWriteDemand(d.ssdBytes * ssd_share);
            const FlowDemand rd =
                ssd->shardWriteReadInterference(d.ssdBytes * ssd_share);
            ds.add(wr.resource, wr.weight);
            ds.add(rd.resource, rd.weight);
            ds.add(topo.hostRouteDemands(ssd->node(), true,
                                         d.ssdBytes * ssd_share));
        }
        st.demandsPerSample = ds.build();
        group.ingestWrite = std::move(st);
    }

    s.groups.push_back(std::move(group));
}

} // namespace

Server::Server(const ServerConfig &config)
    : Server(config, static_cast<SimulationCore *>(nullptr), std::string())
{
}

Server::Server(const ServerConfig &config, SimulationCore &core,
               std::string resourcePrefix)
    : Server(config, &core, std::move(resourcePrefix))
{
}

Server::Server(const ServerConfig &config, SimulationCore *core,
               std::string resourcePrefix)
    : ownedCore_(core ? nullptr : std::make_unique<SimulationCore>()),
      core_(core ? *core : *ownedCore_),
      prefix_(std::move(resourcePrefix)),
      cfg(config),
      model(workload::model(config.model)),
      demand(workload::prepDemand(model.input)),
      plan(planPreparation(config)),
      metrics(core_.metrics())
{
    // Attach before any resource exists so every device the builder
    // creates gets a utilization history. A disabled registry leaves
    // the network on the exact uninstrumented path. On a shared core
    // the registry stays enabled once any attached server asks for it.
    if (cfg.metricsEnabled)
        metrics.enable(true);
    core_.fluid().attachMetrics(&metrics);
}

void
Server::resetAccounting()
{
    core_.fluid().resetAccounting(resBegin_, resEnd_);
}

Time
Server::computeTime() const
{
    return workload::computeLatency(model, batchSize());
}

Time
Server::syncTime() const
{
    return sync::syncLatency(cfg.sync, cfg.numAccelerators,
                             model.modelBytes);
}

std::unique_ptr<Server>
buildServer(const ServerConfig &cfg)
{
    return buildServer(cfg, nullptr, std::string());
}

std::unique_ptr<Server>
buildServer(const ServerConfig &cfg, SimulationCore *core,
            const std::string &resourcePrefix)
{
    const std::string err = cfg.validate();
    fatal_if(!err.empty(), "invalid server config: %s", err.c_str());

    auto server = std::unique_ptr<Server>(
        new Server(cfg, core, resourcePrefix));
    FluidNetwork &net = server->core().fluid();

    // Namespace every resource this build creates under the server's
    // prefix, and remember the creation-order slice so per-server
    // accounting resets touch only this server's resources.
    net.setNamePrefix(server->resourcePrefix());
    server->resBegin_ = net.resources().size();

    server->topo = std::make_unique<pcie::Topology>(
        net, "pcie.rc", cfg.host.rcBandwidth);
    server->hostMem =
        std::make_unique<HostMemory>(net, cfg.host.memBandwidth);
    server->cpu = std::make_unique<CpuPool>(net, cfg.host.cpuCores);

    Builder builder(*server);
    if (presetUsesClustering(cfg.preset))
        builder.buildClustered();
    else
        builder.buildCentral();

    if (cfg.preset == ArchPreset::BaselineAccP2pGen4)
        server->topo->scaleLinkBandwidth(2.0);

    server->resEnd_ = net.resources().size();
    net.setNamePrefix(std::string());

    return server;
}

} // namespace tb
