/**
 * @file
 * Analytic host-resource demand model (§III-C, Figs 10/11).
 *
 * Fig 10 asks: how much host CPU / DRAM bandwidth / root-complex bandwidth
 * would the *baseline* need to sustain the aggregate throughput of n
 * accelerators? That is a closed-form product of the per-sample demand
 * model with the target throughput — the same methodology the paper uses
 * (profiled per-sample cost x target rate), so we compute it analytically
 * here; the DES measures what a *capacity-limited* host actually delivers.
 */

#ifndef TRAINBOX_TRAINBOX_RESOURCE_PROFILE_HH
#define TRAINBOX_TRAINBOX_RESOURCE_PROFILE_HH

#include <map>
#include <string>

#include "trainbox/server_config.hh"
#include "workload/cost_model.hh"

namespace tb {

/** Absolute host-resource demand with per-category decomposition. */
struct HostDemandBreakdown
{
    /** CPU cores needed (core-seconds per second). */
    double cpuCores = 0.0;

    /** Host DRAM bandwidth needed (bytes/s). */
    Rate memBw = 0.0;

    /** PCIe root-complex bandwidth needed (bytes/s). */
    Rate rcBw = 0.0;

    std::map<std::string, double> cpuByCategory;
    std::map<std::string, double> memByCategory;
    std::map<std::string, double> rcByCategory;
};

/** DGX-2 reference capacities used for normalization (§III-C). */
struct Dgx2Reference
{
    double cpuCores = 48.0;
    Rate memBw = 239.0e9;
    Rate rcBw = 64.0e9;
};

/**
 * Optional live-measured per-sample prep CPU cost (core-seconds), as
 * produced by `tb::prep::measurePrepThroughput()`. A field of 0 keeps
 * the corresponding Table I-derived constant (DESIGN.md §4). The
 * measured chain covers formatting + augmentation, so only those stage
 * costs are rescaled; SSD read / data load / framework overheads keep
 * their modeled values.
 */
struct PrepCostCalibration
{
    double imageCoreSecPerSample = 0.0;
    double audioCoreSecPerSample = 0.0;
};

/**
 * Host demand of the given preset's datapath when sustaining the target
 * throughput of @p n accelerators running @p m.
 */
HostDemandBreakdown requiredHostDemand(const workload::ModelInfo &m,
                                       ArchPreset preset, std::size_t n,
                                       const sync::SyncConfig &sync_cfg);

/** Same, with the prep CPU cost calibrated from a live measurement. */
HostDemandBreakdown requiredHostDemand(const workload::ModelInfo &m,
                                       ArchPreset preset, std::size_t n,
                                       const sync::SyncConfig &sync_cfg,
                                       const PrepCostCalibration &calib);

} // namespace tb

#endif // TRAINBOX_TRAINBOX_RESOURCE_PROFILE_HH
