/**
 * @file
 * Server architecture presets and configuration.
 *
 * The presets mirror the paper's evaluation series (Fig 19/21/22):
 *
 *   Baseline          — Fig 12: CPU data preparation, staging in host DRAM
 *   BaselineAccFpga   — Fig 13: + FPGA prep boxes (Step 1)
 *   BaselineAccGpu    — Step 1 with GPUs instead of FPGAs (Fig 21 series)
 *   BaselineAccP2p    — Fig 14: + peer-to-peer DMA, host DRAM bypassed
 *                       (Step 2; traffic still funnels through the RC)
 *   BaselineAccP2pGen4— Step 2 with doubled PCIe bandwidth
 *   TrainBoxNoPool    — Fig 15 without the Ethernet prep-pool
 *   TrainBox          — the full design (Steps 1+2+3 + prep-pool)
 */

#ifndef TRAINBOX_TRAINBOX_SERVER_CONFIG_HH
#define TRAINBOX_TRAINBOX_SERVER_CONFIG_HH

#include <cstddef>
#include <string>
#include <vector>

#include "sim/elastic_schedule.hh"
#include "sim/fault_injector.hh"
#include "sim/ingest.hh"
#include "sync/sync_model.hh"
#include "trainbox/checkpoint.hh"
#include "workload/model_zoo.hh"

namespace tb {

/** Architecture variant under evaluation. */
enum class ArchPreset
{
    Baseline,
    BaselineAccFpga,
    BaselineAccGpu,
    BaselineAccP2p,
    BaselineAccP2pGen4,
    TrainBoxNoPool,
    TrainBox,
};

/** Short display name ("B", "B+Acc", ..., "TrainBox"). */
const char *presetName(ArchPreset p);

/** Long description of the preset. */
const char *presetDescription(ArchPreset p);

/** All presets in Fig 19 order (GPU variant last). */
const std::vector<ArchPreset> &allPresets();

/** True when data preparation runs on offload engines (not host CPUs). */
bool presetUsesPrepAccelerators(ArchPreset p);

/** True when transfers bypass host DRAM (Step 2 applied). */
bool presetUsesP2p(ArchPreset p);

/** True when devices are clustered into train boxes (Step 3 applied). */
bool presetUsesClustering(ArchPreset p);

/** Host-side resource capacities (DGX-2-class reference, §III-B/C). */
struct HostConfig
{
    /** Two-socket Xeon: 48 physical cores. */
    double cpuCores = 48.0;

    /** DGX-2 DRAM bandwidth: 239 GB/s. */
    Rate memBandwidth = 239.0e9;

    /** Effective aggregate PCIe root-complex bandwidth. */
    Rate rcBandwidth = 64.0e9;
};

/** Physical structure constants (§V-D). */
struct BoxConfig
{
    /** NN accelerators per box (DGX-2 / Supermicro style). */
    std::size_t accPerBox = 8;

    /** Prep accelerators per 8-accelerator box (1 per 4 accs). */
    std::size_t prepPerBox = 2;

    /** NVMe SSDs per train box. */
    std::size_t ssdsPerBox = 2;

    /** SSDs per dedicated SSD box (non-clustered presets). */
    std::size_t ssdsPerSsdBox = 4;
};

/**
 * Everything needed to instantiate a simulated server.
 *
 * Two construction styles are supported. Named constructors plus
 * fluent chainable setters are the preferred API:
 *
 *   auto cfg = ServerConfig::trainBox()
 *                  .withModel("Resnet-50")
 *                  .withAccelerators(256)
 *                  .withMetrics();
 *
 * Direct field access keeps working for existing code and for knobs
 * without a dedicated setter.
 */
struct ServerConfig
{
    ArchPreset preset = ArchPreset::TrainBox;
    workload::ModelId model = workload::ModelId::Resnet50;

    /** Number of NN accelerators (the paper's target scale is 256). */
    std::size_t numAccelerators = 256;

    /** Per-accelerator batch size; 0 = the model's Table I batch. */
    std::size_t batchSize = 0;

    HostConfig host;
    BoxConfig box;
    sync::SyncConfig sync;

    /** Batches in flight per prep group (next-batch prefetch >= 2). */
    std::size_t prefetchDepth = 4;

    /**
     * Sub-chunks a group batch is split into while flowing through the
     * prep chain. Local and offloaded streams are always decoupled;
     * values > 1 additionally pipeline within a batch (finer-grained
     * events at higher simulation cost; throughput is insensitive to
     * this in steady state — see the ablation test).
     */
    std::size_t prepChunks = 1;

    /** Max CPU cores one batch's prep may use at once (sw pipelining). */
    double maxPrepParallelism = 48.0;

    /**
     * Prep-pool FPGAs. Negative = let the train initializer size the
     * pool; 0 = no pool; positive = fixed pool size.
     */
    int prepPoolFpgas = -1;

    /**
     * Fault-injection scenario + recovery policy (docs/ROBUSTNESS.md).
     * Disabled by default; when disabled the session takes exactly the
     * fault-free path (results are bit-identical to a build without
     * the fault subsystem).
     */
    FaultConfig faults;

    /**
     * Periodic checkpoint/restore scenario (docs/ROBUSTNESS.md,
     * "Checkpoint & restore"). Disabled by default; when disabled the
     * session takes exactly the checkpoint-free path (results are
     * bit-identical to a build without the subsystem).
     */
    CheckpointConfig checkpoint;

    /**
     * Elastic-capacity scenario: planned drains, spot-style
     * preemptions, and mid-session joins of train-box groups and prep
     * FPGAs (docs/ROBUSTNESS.md, "Elastic capacity & graceful
     * degradation"). Disabled by default; when disabled the session
     * takes exactly the fixed-membership path (results are
     * bit-identical to a build without the subsystem).
     */
    ElasticityConfig elasticity;

    /**
     * Streaming-ingest scenario: continuous sample arrival into a
     * bounded host-DRAM buffer, shard writes contending with training
     * reads, and the overload policy chain
     * (docs/ROBUSTNESS.md, "Streaming ingest & overload"). Disabled by
     * default; when disabled the session takes exactly the
     * resident-dataset path (results are bit-identical to a build
     * without the subsystem).
     */
    IngestConfig ingest;

    /**
     * Record metrics during the run: per-resource utilization
     * histograms in the fluid solver plus session compute/sync busy
     * counters, surfaced through SessionReport (docs/OBSERVABILITY.md).
     * Off by default; when off no instrument is ever allocated and the
     * simulation is bit-identical to a build without the subsystem.
     */
    bool metricsEnabled = false;

    // --- named constructors (paper's evaluation series) --------------

    /** A config for architecture preset @p p (defaults elsewhere). */
    static ServerConfig forPreset(ArchPreset p);

    /** Fig 12 baseline: CPU prep, host-DRAM staging. */
    static ServerConfig baseline();

    /** Step 1 (Fig 13): FPGA prep boxes, host-DRAM staging. */
    static ServerConfig accelerated();

    /** Step 1 with GPUs running DALI-style prep instead of FPGAs. */
    static ServerConfig acceleratedGpu();

    /** Steps 1-2 (Fig 14): FPGA prep + peer-to-peer DMA. */
    static ServerConfig p2p();

    /** Steps 1-2 with doubled (Gen4-class) PCIe link bandwidth. */
    static ServerConfig p2pGen4();

    /** Step 3 without the Ethernet prep-pool (Fig 15 minus pool). */
    static ServerConfig clustered();

    /** The full design: clustered train boxes + prep-pool (Fig 15). */
    static ServerConfig trainBox();

    // --- fluent chainable setters ------------------------------------

    ServerConfig &withPreset(ArchPreset p);
    ServerConfig &withModel(workload::ModelId id);
    /** Look the model up by its Table I name (fatal on unknown). */
    ServerConfig &withModel(const std::string &name);
    ServerConfig &withAccelerators(std::size_t n);
    ServerConfig &withBatchSize(std::size_t batch);
    ServerConfig &withPrefetchDepth(std::size_t depth);
    ServerConfig &withPrepChunks(std::size_t chunks);
    ServerConfig &withPrepPoolFpgas(int fpgas);
    ServerConfig &withHost(const HostConfig &h);
    ServerConfig &withBox(const BoxConfig &b);
    ServerConfig &withSync(const sync::SyncConfig &s);
    ServerConfig &withFaults(const FaultConfig &f);
    ServerConfig &withCheckpoint(const CheckpointConfig &c);
    ServerConfig &withElasticity(const ElasticityConfig &e);
    ServerConfig &withIngest(const IngestConfig &i);
    ServerConfig &withMetrics(bool on = true);

    /** Resolved per-accelerator batch size. */
    std::size_t effectiveBatchSize() const;

    /**
     * Sanity-check the configuration. Returns an empty string when the
     * config is buildable, else a description of the first problem
     * found. ServerBuilder fatal()s on a non-empty result; callers
     * constructing configs programmatically can check ahead of time.
     */
    std::string validate() const;
};

} // namespace tb

#endif // TRAINBOX_TRAINBOX_SERVER_CONFIG_HH
