#include "trainbox/train_initializer.hh"

#include <cmath>

#include "common/logging.hh"
#include "devices/prep_accelerator.hh"
#include "workload/cost_model.hh"

namespace tb {

PrepPlan
planPreparation(const ServerConfig &cfg)
{
    using namespace workload;

    const ModelInfo &m = model(cfg.model);
    const PrepDemand demand = prepDemand(m.input);
    const std::size_t n = cfg.numAccelerators;

    PrepPlan plan;

    // Step 1 of §V-A: measure the per-batch time and derive the required
    // preparation throughput (per accelerator, then per box).
    const Rate per_acc = cfg.batchSize == 0
        ? effectiveDeviceThroughput(m, n, cfg.sync)
        : effectiveDeviceThroughput(m, n, cfg.sync, cfg.batchSize);

    const std::size_t acc_per_box =
        std::min<std::size_t>(cfg.box.accPerBox, n);
    plan.perBoxDemand = static_cast<double>(acc_per_box) * per_acc;

    // Step 2: capability of the in-box prep accelerators (measured
    // offline; here the calibrated chain rate).
    const Rate engine = cfg.preset == ArchPreset::BaselineAccGpu
        ? demand.gpuChainRate
        : demand.fpgaChainRate;
    plan.perBoxLocalCapacity =
        static_cast<double>(cfg.box.prepPerBox) * engine;

    // Step 3: pool sizing when the local capacity is short.
    const Rate shortfall =
        std::max(0.0, plan.perBoxDemand - plan.perBoxLocalCapacity);
    plan.offloadFraction =
        plan.perBoxDemand > 0.0 ? shortfall / plan.perBoxDemand : 0.0;

    const std::size_t num_boxes =
        (n + cfg.box.accPerBox - 1) / cfg.box.accPerBox;
    plan.poolCapacityNeeded = shortfall * static_cast<double>(num_boxes);
    // A pool FPGA is limited by its engine *and* by its 100 Gbps port,
    // which carries the raw input in and the prepared tensor out.
    const Rate port_rate = PrepAccelerator::defaultEthernetBw /
                           (demand.ssdBytes + demand.preparedBytes);
    const Rate pool_fpga_rate = std::min(engine, port_rate);
    plan.poolFpgas = static_cast<std::size_t>(
        std::ceil(plan.poolCapacityNeeded / pool_fpga_rate));
    plan.poolOvercapacityRatio = plan.perBoxLocalCapacity > 0.0
        ? shortfall / plan.perBoxLocalCapacity
        : 0.0;

    // Ethernet feasibility: each in-box FPGA ships its share of the raw
    // input out and receives the prepared tensor back over its port.
    if (shortfall > 0.0 && cfg.box.prepPerBox > 0) {
        const Rate per_port_samples =
            shortfall / static_cast<double>(cfg.box.prepPerBox);
        plan.ethernetPerPort =
            per_port_samples * (demand.ssdBytes + demand.preparedBytes);
        plan.ethernetFeasible =
            plan.ethernetPerPort <= PrepAccelerator::defaultEthernetBw;
    }
    return plan;
}

} // namespace tb
