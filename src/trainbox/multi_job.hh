/**
 * @file
 * Multi-job rack planning (§V-D, third prep-pool realization; §II
 * footnote 2).
 *
 * When one TrainBox rack serves several training jobs, workloads demand
 * different amounts of preparation (Fig 10), so some train boxes have
 * idle FPGAs while others are oversubscribed. The planner partitions the
 * rack's train boxes among jobs and lends surplus in-box FPGAs — over
 * the prep-pool Ethernet, with partial reconfiguration to the borrower's
 * pipeline (§V-C) — before falling back to external pool FPGAs.
 */

#ifndef TRAINBOX_TRAINBOX_MULTI_JOB_HH
#define TRAINBOX_TRAINBOX_MULTI_JOB_HH

#include <cstddef>
#include <vector>

#include "trainbox/server_config.hh"

namespace tb {

/** One training job submitted to the rack. */
struct JobRequest
{
    workload::ModelId model;
    std::size_t numAccelerators;
};

/** Planning result for one job. */
struct JobAllocation
{
    JobRequest request;

    /** Train boxes assigned (ceil(numAccelerators / accPerBox)). */
    std::size_t boxes = 0;

    /** Required preparation throughput (samples/s). */
    Rate demand = 0.0;

    /** In-box FPGA capacity (samples/s). */
    Rate localCapacity = 0.0;

    /** Whole idle FPGAs this job can lend. */
    std::size_t surplusFpgas = 0;

    /** Pool-rate FPGAs this job still needs after local capacity. */
    std::size_t deficitFpgas = 0;

    /** Of the deficit, FPGAs covered by other jobs' surplus. */
    std::size_t borrowedFpgas = 0;

    /** Of the deficit, FPGAs that must come from an external pool. */
    std::size_t externalFpgas = 0;

    /** Fraction of each batch prepared off-box. */
    double offloadFraction = 0.0;
};

/** Planning result for the whole rack. */
struct RackPlan
{
    std::vector<JobAllocation> jobs;
    std::size_t boxesUsed = 0;
    std::size_t boxesAvailable = 0;

    /** Idle in-box FPGAs lent between jobs. */
    std::size_t fpgasLent = 0;

    /** External (disaggregated) pool FPGAs still required. */
    std::size_t externalPoolFpgas = 0;

    /** False when the rack has too few train boxes. */
    bool feasible = false;
};

/**
 * Plan a rack of @p totalBoxes train boxes for @p jobs. Jobs are placed
 * in order; lending matches the largest surpluses to the largest
 * deficits. Each job's synchronization spans only its own accelerators,
 * so smaller jobs see lower sync overhead (§II footnote 2).
 */
RackPlan planRack(const std::vector<JobRequest> &jobs,
                  std::size_t totalBoxes, const BoxConfig &box = {},
                  const sync::SyncConfig &sync_cfg = {});

/**
 * Re-plan prep lending for one job after a membership change: the
 * offload fraction planRack() would assign a single job running
 * @p activeAccs accelerators on @p activeBoxes surviving train boxes.
 * TrainingSession calls this on every elastic group join/leave so prep
 * offload tracks the *current* box count rather than the build-time
 * one. Returns 0 for a zero-capacity interval.
 */
double replanOffloadFraction(workload::ModelId model,
                             std::size_t activeAccs,
                             std::size_t activeBoxes,
                             const BoxConfig &box = {},
                             const sync::SyncConfig &sync_cfg = {});

} // namespace tb

#endif // TRAINBOX_TRAINBOX_MULTI_JOB_HH
