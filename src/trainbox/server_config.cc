#include "trainbox/server_config.hh"

#include <cstdio>

#include "common/logging.hh"

namespace tb {

const char *
presetName(ArchPreset p)
{
    switch (p) {
      case ArchPreset::Baseline:
        return "Baseline";
      case ArchPreset::BaselineAccFpga:
        return "B+Acc";
      case ArchPreset::BaselineAccGpu:
        return "B+Acc(GPU)";
      case ArchPreset::BaselineAccP2p:
        return "B+Acc+P2P";
      case ArchPreset::BaselineAccP2pGen4:
        return "B+Acc+P2P+Gen4";
      case ArchPreset::TrainBoxNoPool:
        return "TrainBox w/o pool";
      case ArchPreset::TrainBox:
        return "TrainBox";
    }
    return "?";
}

const char *
presetDescription(ArchPreset p)
{
    switch (p) {
      case ArchPreset::Baseline:
        return "CPU data preparation, host-DRAM staging (Fig 12)";
      case ArchPreset::BaselineAccFpga:
        return "FPGA prep boxes, host-DRAM staging (Fig 13, Step 1)";
      case ArchPreset::BaselineAccGpu:
        return "GPU prep (1 GPU per 4 accelerators), host-DRAM staging";
      case ArchPreset::BaselineAccP2p:
        return "FPGA prep + peer-to-peer DMA (Fig 14, Steps 1-2)";
      case ArchPreset::BaselineAccP2pGen4:
        return "Steps 1-2 with PCIe Gen4 links";
      case ArchPreset::TrainBoxNoPool:
        return "clustered train boxes, no prep-pool (Fig 15 minus pool)";
      case ArchPreset::TrainBox:
        return "clustered train boxes + Ethernet prep-pool (Fig 15)";
    }
    return "?";
}

const std::vector<ArchPreset> &
allPresets()
{
    static const std::vector<ArchPreset> presets = {
        ArchPreset::Baseline,        ArchPreset::BaselineAccFpga,
        ArchPreset::BaselineAccP2p,  ArchPreset::BaselineAccP2pGen4,
        ArchPreset::TrainBoxNoPool,  ArchPreset::TrainBox,
        ArchPreset::BaselineAccGpu,
    };
    return presets;
}

bool
presetUsesPrepAccelerators(ArchPreset p)
{
    return p != ArchPreset::Baseline;
}

bool
presetUsesP2p(ArchPreset p)
{
    switch (p) {
      case ArchPreset::BaselineAccP2p:
      case ArchPreset::BaselineAccP2pGen4:
      case ArchPreset::TrainBoxNoPool:
      case ArchPreset::TrainBox:
        return true;
      default:
        return false;
    }
}

bool
presetUsesClustering(ArchPreset p)
{
    return p == ArchPreset::TrainBoxNoPool || p == ArchPreset::TrainBox;
}

ServerConfig
ServerConfig::forPreset(ArchPreset p)
{
    ServerConfig cfg;
    cfg.preset = p;
    return cfg;
}

ServerConfig
ServerConfig::baseline()
{
    return forPreset(ArchPreset::Baseline);
}

ServerConfig
ServerConfig::accelerated()
{
    return forPreset(ArchPreset::BaselineAccFpga);
}

ServerConfig
ServerConfig::acceleratedGpu()
{
    return forPreset(ArchPreset::BaselineAccGpu);
}

ServerConfig
ServerConfig::p2p()
{
    return forPreset(ArchPreset::BaselineAccP2p);
}

ServerConfig
ServerConfig::p2pGen4()
{
    return forPreset(ArchPreset::BaselineAccP2pGen4);
}

ServerConfig
ServerConfig::clustered()
{
    return forPreset(ArchPreset::TrainBoxNoPool);
}

ServerConfig
ServerConfig::trainBox()
{
    return forPreset(ArchPreset::TrainBox);
}

ServerConfig &
ServerConfig::withPreset(ArchPreset p)
{
    preset = p;
    return *this;
}

ServerConfig &
ServerConfig::withModel(workload::ModelId id)
{
    model = id;
    return *this;
}

ServerConfig &
ServerConfig::withModel(const std::string &name)
{
    model = workload::modelByName(name).id;
    return *this;
}

ServerConfig &
ServerConfig::withAccelerators(std::size_t n)
{
    numAccelerators = n;
    return *this;
}

ServerConfig &
ServerConfig::withBatchSize(std::size_t batch)
{
    batchSize = batch;
    return *this;
}

ServerConfig &
ServerConfig::withPrefetchDepth(std::size_t depth)
{
    prefetchDepth = depth;
    return *this;
}

ServerConfig &
ServerConfig::withPrepChunks(std::size_t chunks)
{
    prepChunks = chunks;
    return *this;
}

ServerConfig &
ServerConfig::withPrepPoolFpgas(int fpgas)
{
    prepPoolFpgas = fpgas;
    return *this;
}

ServerConfig &
ServerConfig::withHost(const HostConfig &h)
{
    host = h;
    return *this;
}

ServerConfig &
ServerConfig::withBox(const BoxConfig &b)
{
    box = b;
    return *this;
}

ServerConfig &
ServerConfig::withSync(const sync::SyncConfig &s)
{
    sync = s;
    return *this;
}

ServerConfig &
ServerConfig::withFaults(const FaultConfig &f)
{
    faults = f;
    return *this;
}

ServerConfig &
ServerConfig::withCheckpoint(const CheckpointConfig &c)
{
    checkpoint = c;
    return *this;
}

ServerConfig &
ServerConfig::withElasticity(const ElasticityConfig &e)
{
    elasticity = e;
    return *this;
}

ServerConfig &
ServerConfig::withIngest(const IngestConfig &i)
{
    ingest = i;
    return *this;
}

ServerConfig &
ServerConfig::withMetrics(bool on)
{
    metricsEnabled = on;
    return *this;
}

std::size_t
ServerConfig::effectiveBatchSize() const
{
    if (batchSize != 0)
        return batchSize;
    return workload::model(model).batchSize;
}

namespace {

/** snprintf into a std::string (validation messages only). */
template <typename... Args>
std::string
fmt(const char *format, Args... args)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), format, args...);
    return buf;
}

/** Elastic leave classes: sane arrival rate and time-away length. */
std::string
checkElasticClass(const char *name, const ElasticClassConfig &cc)
{
    if (cc.ratePerSec < 0.0)
        return fmt("elasticity.%s.ratePerSec must be >= 0, got %g", name,
                   cc.ratePerSec);
    if (cc.ratePerSec > 0.0 && cc.absence < 0.0)
        return fmt("elasticity.%s.absence must be >= 0, got %g", name,
                   cc.absence);
    return "";
}

/** Ingest traffic classes: sane rates, batch sizes, priorities. */
std::string
checkIngestClass(const char *name, const IngestClassConfig &cc)
{
    if (cc.ratePerSec < 0.0)
        return fmt("ingest.%s.ratePerSec must be >= 0, got %g", name,
                   cc.ratePerSec);
    if (cc.ratePerSec > 0.0 && cc.samplesPerEvent <= 0.0)
        return fmt("ingest.%s.samplesPerEvent must be > 0, got %g", name,
                   cc.samplesPerEvent);
    return "";
}

/** Windowed-fault classes must have windows that end after they start. */
std::string
checkFaultClass(const char *name, const FaultClassConfig &cc)
{
    if (cc.ratePerSec < 0.0)
        return fmt("faults.%s.ratePerSec must be >= 0, got %g", name,
                   cc.ratePerSec);
    if (cc.ratePerSec > 0.0 && cc.duration <= 0.0)
        return fmt("faults.%s window ends at or before it starts "
                   "(duration %g <= 0)",
                   name, cc.duration);
    if (cc.magnitude < 0.0)
        return fmt("faults.%s.magnitude must be >= 0, got %g", name,
                   cc.magnitude);
    return "";
}

} // namespace

std::string
ServerConfig::validate() const
{
    if (numAccelerators == 0)
        return "a server needs at least one accelerator "
               "(numAccelerators == 0)";
    if (prefetchDepth < 2)
        return fmt("prefetchDepth must be >= 2 (next-batch prefetch), "
                   "got %zu",
                   prefetchDepth);
    if (prepChunks == 0)
        return "prepChunks must be > 0";
    if (maxPrepParallelism <= 0.0)
        return fmt("maxPrepParallelism must be > 0, got %g",
                   maxPrepParallelism);

    if (box.accPerBox == 0)
        return "box.accPerBox must be > 0";
    if (box.prepPerBox == 0)
        return "box.prepPerBox must be > 0";
    if (box.ssdsPerBox == 0)
        return "box.ssdsPerBox must be > 0";
    if (box.ssdsPerSsdBox == 0)
        return "box.ssdsPerSsdBox must be > 0";

    if (host.cpuCores <= 0.0)
        return fmt("host.cpuCores must be > 0, got %g", host.cpuCores);
    if (host.memBandwidth <= 0.0)
        return fmt("host.memBandwidth must be > 0, got %g",
                   host.memBandwidth);
    if (host.rcBandwidth <= 0.0)
        return fmt("host.rcBandwidth must be > 0, got %g",
                   host.rcBandwidth);

    if (faults.ssdReadFailureProb < 0.0 ||
        faults.ssdReadFailureProb >= 1.0)
        return fmt("faults.ssdReadFailureProb must be in [0, 1), got %g",
                   faults.ssdReadFailureProb);
    if (faults.stragglerProb < 0.0 || faults.stragglerProb > 1.0)
        return fmt("faults.stragglerProb must be in [0, 1], got %g",
                   faults.stragglerProb);
    if (faults.stragglerFactor < 1.0)
        return fmt("faults.stragglerFactor must be >= 1, got %g",
                   faults.stragglerFactor);
    std::string err;
    if (!(err = checkFaultClass("ssdDegrade", faults.ssdDegrade)).empty())
        return err;
    if (!(err = checkFaultClass("prepCrash", faults.prepCrash)).empty())
        return err;
    if (!(err = checkFaultClass("ethDegrade", faults.ethDegrade)).empty())
        return err;
    if (!(err = checkFaultClass("routeLoss", faults.routeLoss)).empty())
        return err;
    // fatalCrash is a point event: duration is ignored, only the rate
    // must be sane.
    if (faults.fatalCrash.ratePerSec < 0.0)
        return fmt("faults.fatalCrash.ratePerSec must be >= 0, got %g",
                   faults.fatalCrash.ratePerSec);

    const CorruptionConfig &corr = faults.corruption;
    for (std::size_t k = 0; k < kNumCorruptionKinds; ++k) {
        const auto kind = static_cast<CorruptionKind>(k);
        const double p = corr.probFor(kind);
        if (p < 0.0 || p >= 1.0)
            return fmt("faults.corruption probability for %s must be in "
                       "[0, 1), got %g",
                       corruptionKindName(kind), p);
    }
    if (corr.pcieReplayLatency < 0.0)
        return fmt("faults.corruption.pcieReplayLatency must be >= 0, "
                   "got %g",
                   corr.pcieReplayLatency);

    if (checkpoint.restartLatency < 0.0)
        return fmt("checkpoint.restartLatency must be >= 0, got %g",
                   checkpoint.restartLatency);
    if (checkpoint.enabled) {
        if (checkpoint.interval <= 0.0)
            return fmt("checkpoint.interval must be > 0, got %g",
                       checkpoint.interval);
        if (checkpoint.optimizerSlots < 0.0)
            return fmt("checkpoint.optimizerSlots must be >= 0, got %g",
                       checkpoint.optimizerSlots);
        if (checkpoint.snapshotBandwidth <= 0.0)
            return fmt("checkpoint.snapshotBandwidth must be > 0, got %g",
                       checkpoint.snapshotBandwidth);
    }

    if (elasticity.graceWindow < 0.0)
        return fmt("elasticity.graceWindow must be >= 0, got %g",
                   elasticity.graceWindow);
    if (elasticity.rejoinLatency < 0.0)
        return fmt("elasticity.rejoinLatency must be >= 0, got %g",
                   elasticity.rejoinLatency);
    if (elasticity.sloTargetSamplesPerSec < 0.0)
        return fmt("elasticity.sloTargetSamplesPerSec must be >= 0, "
                   "got %g",
                   elasticity.sloTargetSamplesPerSec);
    if (elasticity.scaleUpTime < 0.0)
        return fmt("elasticity.scaleUpTime must be >= 0, got %g",
                   elasticity.scaleUpTime);
    if (!(err = checkElasticClass("groupDrain", elasticity.groupDrain))
             .empty())
        return err;
    if (!(err = checkElasticClass("groupPreempt",
                                  elasticity.groupPreempt))
             .empty())
        return err;
    if (!(err = checkElasticClass("prepDrain", elasticity.prepDrain))
             .empty())
        return err;
    if (!(err = checkElasticClass("prepPreempt", elasticity.prepPreempt))
             .empty())
        return err;
    const std::size_t numGroups =
        (numAccelerators + box.accPerBox - 1) / box.accPerBox;
    if (elasticity.deferredJoinGroups > 0 &&
        elasticity.deferredJoinGroups >= numGroups)
        return fmt("elasticity.deferredJoinGroups (%zu) must leave at "
                   "least one of the %zu groups active at start",
                   elasticity.deferredJoinGroups, numGroups);
    Time prevAt = 0.0;
    for (std::size_t i = 0; i < elasticity.schedule.size(); ++i) {
        const ElasticEvent &ev = elasticity.schedule[i];
        if (ev.at < 0.0)
            return fmt("elasticity.schedule[%zu].at must be >= 0, got %g",
                       i, ev.at);
        if (ev.at < prevAt)
            return fmt("elasticity.schedule must be ordered by time: "
                       "event %zu at %g precedes event %zu at %g",
                       i, ev.at, i - 1, prevAt);
        prevAt = ev.at;
        if (ev.index >= numGroups)
            return fmt("elasticity.schedule[%zu] targets %s %zu but the "
                       "topology has only %zu groups",
                       i, elasticTargetKindName(ev.target), ev.index,
                       numGroups);
    }

    if (ingest.enabled) {
        if (!(err = checkIngestClass("steady", ingest.steady)).empty())
            return err;
        if (!(err = checkIngestClass("diurnal", ingest.diurnal)).empty())
            return err;
        if (!(err = checkIngestClass("burst", ingest.burst)).empty())
            return err;
        if (ingest.diurnalAmplitude < 0.0 || ingest.diurnalAmplitude > 1.0)
            return fmt("ingest.diurnalAmplitude must be in [0, 1], got %g",
                       ingest.diurnalAmplitude);
        if (ingest.diurnal.ratePerSec > 0.0 && ingest.diurnalPeriod <= 0.0)
            return fmt("ingest.diurnalPeriod must be > 0, got %g",
                       ingest.diurnalPeriod);
        if (ingest.bufferCapacity <= 0.0)
            return fmt("ingest.bufferCapacity must be > 0 samples, got %g",
                       ingest.bufferCapacity);
        if (ingest.lowWatermark < 0.0)
            return fmt("ingest.lowWatermark must be >= 0, got %g",
                       ingest.lowWatermark);
        if (!(ingest.lowWatermark < ingest.highWatermark &&
              ingest.highWatermark <= ingest.bufferCapacity))
            return fmt("ingest watermarks must be ordered low < high <= "
                       "capacity, got low %g, high %g, capacity %g",
                       ingest.lowWatermark, ingest.highWatermark,
                       ingest.bufferCapacity);
        if (ingest.policyChain.empty())
            return "ingest.policyChain must name at least one overload "
                   "policy";
        for (std::size_t i = 0; i < ingest.policyChain.size(); ++i)
            for (std::size_t j = i + 1; j < ingest.policyChain.size(); ++j)
                if (ingest.policyChain[i] == ingest.policyChain[j])
                    return fmt("ingest.policyChain lists %s twice "
                               "(positions %zu and %zu)",
                               ingestPolicyName(ingest.policyChain[i]), i,
                               j);
        if (ingest.throttleFactor < 0.0 || ingest.throttleFactor >= 1.0)
            return fmt("ingest.throttleFactor must be in [0, 1), got %g",
                       ingest.throttleFactor);
        if (ingest.echoFactor < 1.0)
            return fmt("ingest.echoFactor must be >= 1, got %g",
                       ingest.echoFactor);
        if (ingest.echoEfficiency < 0.0 || ingest.echoEfficiency > 1.0)
            return fmt("ingest.echoEfficiency must be in [0, 1], got %g",
                       ingest.echoEfficiency);
        if (ingest.stalenessSlo < 0.0)
            return fmt("ingest.stalenessSlo must be >= 0, got %g",
                       ingest.stalenessSlo);
        if (ingest.writeChunkSamples <= 0.0)
            return fmt("ingest.writeChunkSamples must be > 0, got %g",
                       ingest.writeChunkSamples);
        if (ingest.writeFailureProb < 0.0 || ingest.writeFailureProb >= 1.0)
            return fmt("ingest.writeFailureProb must be in [0, 1), got %g",
                       ingest.writeFailureProb);
        if (ingest.writeRetryBackoff < 0.0)
            return fmt("ingest.writeRetryBackoff must be >= 0, got %g",
                       ingest.writeRetryBackoff);
        prevAt = 0.0;
        for (std::size_t i = 0; i < ingest.schedule.size(); ++i) {
            const IngestArrival &ev = ingest.schedule[i];
            if (ev.at < 0.0)
                return fmt("ingest.schedule[%zu].at must be >= 0, got %g",
                           i, ev.at);
            if (ev.at < prevAt)
                return fmt("ingest.schedule must be ordered by time: "
                           "event %zu at %g precedes event %zu at %g",
                           i, ev.at, i - 1, prevAt);
            prevAt = ev.at;
            if (ev.samples < 0.0)
                return fmt("ingest.schedule[%zu].samples must be >= 0, "
                           "got %g",
                           i, ev.samples);
        }
    }
    return "";
}

} // namespace tb
