#include "trainbox/server_config.hh"

#include "common/logging.hh"

namespace tb {

const char *
presetName(ArchPreset p)
{
    switch (p) {
      case ArchPreset::Baseline:
        return "Baseline";
      case ArchPreset::BaselineAccFpga:
        return "B+Acc";
      case ArchPreset::BaselineAccGpu:
        return "B+Acc(GPU)";
      case ArchPreset::BaselineAccP2p:
        return "B+Acc+P2P";
      case ArchPreset::BaselineAccP2pGen4:
        return "B+Acc+P2P+Gen4";
      case ArchPreset::TrainBoxNoPool:
        return "TrainBox w/o pool";
      case ArchPreset::TrainBox:
        return "TrainBox";
    }
    return "?";
}

const char *
presetDescription(ArchPreset p)
{
    switch (p) {
      case ArchPreset::Baseline:
        return "CPU data preparation, host-DRAM staging (Fig 12)";
      case ArchPreset::BaselineAccFpga:
        return "FPGA prep boxes, host-DRAM staging (Fig 13, Step 1)";
      case ArchPreset::BaselineAccGpu:
        return "GPU prep (1 GPU per 4 accelerators), host-DRAM staging";
      case ArchPreset::BaselineAccP2p:
        return "FPGA prep + peer-to-peer DMA (Fig 14, Steps 1-2)";
      case ArchPreset::BaselineAccP2pGen4:
        return "Steps 1-2 with PCIe Gen4 links";
      case ArchPreset::TrainBoxNoPool:
        return "clustered train boxes, no prep-pool (Fig 15 minus pool)";
      case ArchPreset::TrainBox:
        return "clustered train boxes + Ethernet prep-pool (Fig 15)";
    }
    return "?";
}

const std::vector<ArchPreset> &
allPresets()
{
    static const std::vector<ArchPreset> presets = {
        ArchPreset::Baseline,        ArchPreset::BaselineAccFpga,
        ArchPreset::BaselineAccP2p,  ArchPreset::BaselineAccP2pGen4,
        ArchPreset::TrainBoxNoPool,  ArchPreset::TrainBox,
        ArchPreset::BaselineAccGpu,
    };
    return presets;
}

bool
presetUsesPrepAccelerators(ArchPreset p)
{
    return p != ArchPreset::Baseline;
}

bool
presetUsesP2p(ArchPreset p)
{
    switch (p) {
      case ArchPreset::BaselineAccP2p:
      case ArchPreset::BaselineAccP2pGen4:
      case ArchPreset::TrainBoxNoPool:
      case ArchPreset::TrainBox:
        return true;
      default:
        return false;
    }
}

bool
presetUsesClustering(ArchPreset p)
{
    return p == ArchPreset::TrainBoxNoPool || p == ArchPreset::TrainBox;
}

std::size_t
ServerConfig::effectiveBatchSize() const
{
    if (batchSize != 0)
        return batchSize;
    return workload::model(model).batchSize;
}

} // namespace tb
