/**
 * @file
 * Train initializer (§V-A).
 *
 * Before training starts, the initializer measures the per-batch execution
 * time of the model (here: the calibrated compute + sync models), derives
 * the preparation throughput each train box must sustain, and — when the
 * in-box FPGAs cannot keep up — sizes an allocation from the prep-pool by
 * dividing the shortfall by the per-accelerator preparation throughput.
 */

#ifndef TRAINBOX_TRAINBOX_TRAIN_INITIALIZER_HH
#define TRAINBOX_TRAINBOX_TRAIN_INITIALIZER_HH

#include <cstddef>

#include "trainbox/server_config.hh"

namespace tb {

/** Result of the initializer's resource-planning pass. */
struct PrepPlan
{
    /** Samples/s of prepared data each train box must deliver. */
    Rate perBoxDemand = 0.0;

    /** Samples/s the box's own prep accelerators can deliver. */
    Rate perBoxLocalCapacity = 0.0;

    /** Fraction of every batch forwarded to the prep-pool. */
    double offloadFraction = 0.0;

    /** Pool FPGAs to allocate across the whole server. */
    std::size_t poolFpgas = 0;

    /** Aggregate pool throughput required (samples/s). */
    Rate poolCapacityNeeded = 0.0;

    /** Extra prep capacity relative to local capacity (Fig 21's +54%). */
    double poolOvercapacityRatio = 0.0;

    /** Offload traffic per FPGA Ethernet port (bytes/s). */
    Rate ethernetPerPort = 0.0;

    /** True when the 100 Gbps ports can carry the offload traffic. */
    bool ethernetFeasible = true;
};

/**
 * Plan preparation resources for a configuration (§V-A). Meaningful for
 * the clustered presets; for others it reports the demand/capacity split
 * of the shared prep-device array.
 */
PrepPlan planPreparation(const ServerConfig &cfg);

} // namespace tb

#endif // TRAINBOX_TRAINBOX_TRAIN_INITIALIZER_HH
