#include "trainbox/multi_job.hh"

#include <algorithm>
#include <cmath>

#include "common/math_util.hh"
#include "devices/prep_accelerator.hh"
#include "workload/cost_model.hh"

namespace tb {

RackPlan
planRack(const std::vector<JobRequest> &jobs, std::size_t total_boxes,
         const BoxConfig &box, const sync::SyncConfig &sync_cfg)
{
    using namespace workload;

    RackPlan plan;
    plan.boxesAvailable = total_boxes;

    for (const auto &req : jobs) {
        JobAllocation alloc;
        alloc.request = req;
        alloc.boxes = divCeil(req.numAccelerators, box.accPerBox);
        plan.boxesUsed += alloc.boxes;

        const ModelInfo &m = model(req.model);
        const PrepDemand d = prepDemand(m.input);
        alloc.demand =
            targetThroughput(m, req.numAccelerators, sync_cfg);
        alloc.localCapacity = static_cast<double>(alloc.boxes) *
                              static_cast<double>(box.prepPerBox) *
                              d.fpgaChainRate;

        // A lent/borrowed FPGA works at the *borrower's* chain rate,
        // capped by its 100 Gbps pool port.
        const Rate pool_rate = std::min(
            d.fpgaChainRate,
            PrepAccelerator::defaultEthernetBw /
                (d.ssdBytes + d.preparedBytes));

        if (alloc.demand > alloc.localCapacity) {
            const Rate shortfall = alloc.demand - alloc.localCapacity;
            alloc.deficitFpgas = static_cast<std::size_t>(
                std::ceil(shortfall / pool_rate));
            alloc.offloadFraction = shortfall / alloc.demand;
        } else {
            // Whole FPGAs this job can give up and still meet demand.
            const Rate surplus = alloc.localCapacity - alloc.demand;
            alloc.surplusFpgas = static_cast<std::size_t>(
                std::floor(surplus / d.fpgaChainRate));
        }
        plan.jobs.push_back(alloc);
    }

    plan.feasible = plan.boxesUsed <= plan.boxesAvailable;

    // Greedy lending: biggest surplus feeds biggest deficit.
    std::vector<std::size_t> order(plan.jobs.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a,
                                              std::size_t b) {
        return plan.jobs[a].deficitFpgas > plan.jobs[b].deficitFpgas;
    });

    std::size_t available = 0;
    for (const auto &j : plan.jobs)
        available += j.surplusFpgas;

    for (std::size_t idx : order) {
        JobAllocation &j = plan.jobs[idx];
        if (j.deficitFpgas == 0)
            continue;
        const std::size_t take = std::min(j.deficitFpgas, available);
        j.borrowedFpgas = take;
        j.externalFpgas = j.deficitFpgas - take;
        available -= take;
        plan.fpgasLent += take;
        plan.externalPoolFpgas += j.externalFpgas;
    }
    return plan;
}

double
replanOffloadFraction(workload::ModelId model_id, std::size_t active_accs,
                      std::size_t active_boxes, const BoxConfig &box,
                      const sync::SyncConfig &sync_cfg)
{
    using namespace workload;

    if (active_accs == 0 || active_boxes == 0)
        return 0.0;

    // Same math as planRack(), but the box count is the surviving
    // membership rather than ceil(accs / accPerBox).
    const ModelInfo &m = model(model_id);
    const PrepDemand d = prepDemand(m.input);
    const Rate demand = targetThroughput(m, active_accs, sync_cfg);
    const Rate local = static_cast<double>(active_boxes) *
                       static_cast<double>(box.prepPerBox) *
                       d.fpgaChainRate;
    if (demand <= local || demand <= 0.0)
        return 0.0;
    return (demand - local) / demand;
}

} // namespace tb
