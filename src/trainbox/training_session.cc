#include "trainbox/training_session.hh"

#include <memory>

#include "common/logging.hh"

namespace tb {

double
SessionResult::cpuCoresUsed() const
{
    double total = 0.0;
    for (const auto &[cat, v] : cpuCoresByCategory)
        total += v;
    return total;
}

double
SessionResult::memBwUsed() const
{
    double total = 0.0;
    for (const auto &[cat, v] : memBwByCategory)
        total += v;
    return total;
}

double
SessionResult::rcBwUsed() const
{
    double total = 0.0;
    for (const auto &[cat, v] : rcBwByCategory)
        total += v;
    return total;
}

TrainingSession::TrainingSession(Server &server) : server_(server)
{
    groups_.resize(server_.groups.size());
    for (std::size_t g = 0; g < groups_.size(); ++g)
        groups_[g].spec = &server_.groups[g];
}

bool
TrainingSession::measuring() const
{
    return syncedSteps_ >= warmupSteps_ && !done_;
}

void
TrainingSession::runChain(const std::string &track,
                          const std::vector<StageTemplate> &stages,
                          double samples, std::size_t idx,
                          std::function<void()> done)
{
    if (idx >= stages.size()) {
        done();
        return;
    }
    const StageTemplate &st = stages[idx];
    const Time start = server_.eq.now();
    FlowSpec spec;
    spec.category = st.category;
    spec.size = samples;
    spec.rateCap = st.rateCap;
    spec.fairWeight = st.fairWeight;
    spec.demands = st.demandsPerSample;
    spec.onComplete = [this, track, &stages, samples, idx, start,
                       done = std::move(done)](Time now) {
        if (measuring()) {
            stageTimeSum_[stages[idx].name] += now - start;
            ++stageTimeCount_[stages[idx].name];
        }
        if (trace_)
            trace_->complete(track, stages[idx].name, start, now - start,
                             "prep");
        runChain(track, stages, samples, idx + 1, done);
    };
    server_.net.startFlow(std::move(spec));
}

std::size_t
TrainingSession::chunksPerBatch() const
{
    return std::max<std::size_t>(1, server_.cfg.prepChunks);
}

double
TrainingSession::groupBatchSamples(std::size_t g) const
{
    return static_cast<double>(server_.batchSize()) *
           static_cast<double>(groups_[g].spec->numAccelerators);
}

void
TrainingSession::launchPrep(std::size_t g)
{
    GroupState &gs = groups_[g];
    if (done_)
        return;
    const double batch = groupBatchSamples(g);
    const double chunk = batch / static_cast<double>(chunksPerBatch());
    const double f = gs.spec->offloadFraction;
    const double window =
        static_cast<double>(server_.cfg.prefetchDepth) * batch;

    // Launch chunk chains as window slots free up; the local and
    // offloaded streams are independent producers of prepared samples,
    // so a slow prep-pool round-trip never stalls completed local work.
    while (gs.readySamples + gs.inFlightSamples < window - 1e-6) {
        gs.inFlightSamples += chunk;
        const Time start = server_.eq.now();
        const double local = chunk * (1.0 - f);
        runChain(gs.spec->name, gs.spec->stages, local, 0,
                 [this, g, local, start] {
                     onChainDone(g, local, start);
                 });
        if (f > 0.0) {
            const double remote = chunk * f;
            runChain(gs.spec->name + ".offload", gs.spec->offloadStages,
                     remote, 0, [this, g, remote, start] {
                         onChainDone(g, remote, start);
                     });
        }
    }
}

void
TrainingSession::onChainDone(std::size_t g, double samples,
                             Time chain_start)
{
    GroupState &gs = groups_[g];
    gs.inFlightSamples -= samples;
    gs.readySamples += samples;
    if (measuring()) {
        prepLatencySum_ += server_.eq.now() - chain_start;
        ++prepLatencyCount_;
    }
    tryStartCompute(g);
    launchPrep(g);
}

void
TrainingSession::tryStartCompute(std::size_t g)
{
    GroupState &gs = groups_[g];
    if (done_ || gs.computing ||
        gs.readySamples + 1e-6 < groupBatchSamples(g) ||
        gs.stepsComputed != syncedSteps_)
        return;
    gs.readySamples -= groupBatchSamples(g);
    gs.computing = true;
    const Time start = server_.eq.now();
    server_.eq.scheduleIn(server_.computeTime(), [this, g, start] {
        if (trace_)
            trace_->complete(groups_[g].spec->name, "compute", start,
                             server_.eq.now() - start, "compute");
        onComputeDone(g);
    });
    launchPrep(g);
}

void
TrainingSession::onComputeDone(std::size_t g)
{
    GroupState &gs = groups_[g];
    gs.computing = false;
    ++gs.stepsComputed;
    if (++barrier_ == groups_.size()) {
        barrier_ = 0;
        const Time start = server_.eq.now();
        server_.eq.scheduleIn(server_.syncTime(), [this, start] {
            if (trace_)
                trace_->complete("sync", "ring_allreduce", start,
                                 server_.eq.now() - start, "sync");
            onSyncDone();
        });
    }
}

void
TrainingSession::onSyncDone()
{
    ++syncedSteps_;
    if (syncedSteps_ == warmupSteps_) {
        windowStart_ = server_.eq.now();
        server_.net.resetAccounting();
        stageTimeSum_.clear();
        stageTimeCount_.clear();
        prepLatencySum_ = 0.0;
        prepLatencyCount_ = 0;
    }
    if (syncedSteps_ >= totalSteps_) {
        windowEnd_ = server_.eq.now();
        done_ = true;
        return;
    }
    for (std::size_t g = 0; g < groups_.size(); ++g)
        tryStartCompute(g);
}

SessionResult
TrainingSession::run(std::size_t warmup, std::size_t measure)
{
    panic_if(measure == 0, "need at least one measured step");
    warmupSteps_ = warmup;
    totalSteps_ = warmup + measure;

    for (std::size_t g = 0; g < groups_.size(); ++g)
        launchPrep(g);

    while (!done_ && server_.eq.step()) {
    }
    panic_if(!done_,
             "training stalled: event queue drained after %zu/%zu steps",
             syncedSteps_, totalSteps_);

    SessionResult res;
    const Time elapsed = windowEnd_ - windowStart_;
    panic_if(elapsed <= 0.0, "empty measurement window");

    res.stepsMeasured = measure;
    res.stepTime = elapsed / static_cast<double>(measure);
    res.computeTime = server_.computeTime();
    res.syncTime = server_.syncTime();
    res.throughput = static_cast<double>(server_.cfg.numAccelerators) *
                     static_cast<double>(server_.batchSize()) *
                     static_cast<double>(measure) / elapsed;

    for (const auto &[name, sum] : stageTimeSum_)
        res.prepStageTime[name] =
            sum / static_cast<double>(stageTimeCount_[name]);
    if (prepLatencyCount_ > 0)
        res.prepLatency =
            prepLatencySum_ / static_cast<double>(prepLatencyCount_);

    auto collect = [elapsed](const FluidResource *r,
                             std::map<std::string, double> &out) {
        for (const auto &[cat, units] : r->servedByCategory())
            out[cat] = units / elapsed;
    };
    collect(server_.cpu->resource(), res.cpuCoresByCategory);
    collect(server_.hostMem->resource(), res.memBwByCategory);
    collect(server_.topo->rcResource(), res.rcBwByCategory);
    return res;
}

} // namespace tb
