#include "trainbox/training_session.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.hh"
#include "common/math_util.hh"
#include "trainbox/multi_job.hh"
#include "trainbox/report.hh"

namespace tb {

// The deprecated SessionResult accessors delegate to the canonical
// formulas on SessionReport so there is exactly one definition of each.

double
SessionResult::cpuCoresUsed() const
{
    return SessionReport::sumCategories(cpuCoresByCategory);
}

double
SessionResult::memBwUsed() const
{
    return SessionReport::sumCategories(memBwByCategory);
}

double
SessionResult::rcBwUsed() const
{
    return SessionReport::sumCategories(rcBwByCategory);
}

double
SessionResult::goodput(double fault_free_throughput) const
{
    return SessionReport::computeGoodput(throughput,
                                         fault_free_throughput);
}

double
SessionResult::efficiency() const
{
    return SessionReport::computeEfficiency(checkpoint, wallTime);
}

TrainingSession::TrainingSession(Server &server)
    : server_(server), eq_(server.core().events()),
      net_(server.core().fluid())
{
    groups_.resize(server_.groups.size());
    for (std::size_t g = 0; g < groups_.size(); ++g)
        groups_[g].spec = &server_.groups[g];
}

bool
TrainingSession::measuring() const
{
    return syncedSteps_ >= warmupSteps_ && !done_;
}

void
TrainingSession::runChain(const std::string &track,
                          const std::vector<StageTemplate> &stages,
                          double samples, std::size_t idx,
                          std::function<void()> done)
{
    if (idx >= stages.size()) {
        done();
        return;
    }
    const StageTemplate &st = stages[idx];
    const Time start = eq_.now();
    FlowSpec spec;
    spec.category = st.category;
    spec.size = samples;
    spec.rateCap = st.rateCap;
    spec.fairWeight = st.fairWeight;
    spec.demands = st.demandsPerSample;
    spec.onComplete = [this, track, &stages, samples, idx, start,
                       done = std::move(done)](Time now) {
        if (measuring()) {
            stageTimeSum_[stages[idx].name] += now - start;
            ++stageTimeCount_[stages[idx].name];
        }
        if (trace_)
            trace_->complete(track, stages[idx].name, start, now - start,
                             "prep");
        runChain(track, stages, samples, idx + 1, done);
    };
    net_.startFlow(std::move(spec));
}

std::size_t
TrainingSession::chunksPerBatch() const
{
    return std::max<std::size_t>(1, server_.cfg.prepChunks);
}

double
TrainingSession::groupBatchSamples(std::size_t g) const
{
    return static_cast<double>(server_.batchSize()) *
           static_cast<double>(groups_[g].spec->numAccelerators);
}

void
TrainingSession::launchPrep(std::size_t g)
{
    GroupState &gs = groups_[g];
    // Draining groups finish what is in flight but stop topping up the
    // window; detached/joining groups prep nothing.
    if (done_ || down_ || gs.membership != Membership::Active)
        return;
    const double batch = groupBatchSamples(g);
    const double chunk = batch / static_cast<double>(chunksPerBatch());
    const double f = gs.spec->offloadFraction;
    const double window =
        static_cast<double>(server_.cfg.prefetchDepth) * batch;

    // Launch chunk chains as window slots free up; the local and
    // offloaded streams are independent producers of prepared samples,
    // so a slow prep-pool round-trip never stalls completed local work.
    // All chains launch at one timestamp: batch them so the solver runs
    // once for the whole window instead of once per flow.
    FluidNetwork::FlowBatch launchBatch(net_);
    while (gs.readySamples + gs.inFlightSamples < window - 1e-6) {
        gs.inFlightSamples += chunk;
        if (fault_ || elastic_) {
            // Tracked chains so faults and membership changes can
            // cancel and re-dispatch them; a crashed or departed FPGA's
            // share shifts onto the prep-pool.
            const double fe = effectiveOffload(g);
            const double local = chunk * (1.0 - fe);
            if (local > 0.0)
                launchFaultChain(g, /*offload=*/false, local);
            if (fe > 0.0)
                launchFaultChain(g, /*offload=*/true, chunk * fe);
            continue;
        }
        const Time start = eq_.now();
        const double local = chunk * (1.0 - f);
        runChain(gs.spec->name, gs.spec->stages, local, 0,
                 [this, g, local, start] {
                     onChainDone(g, local, start);
                 });
        if (f > 0.0) {
            const double remote = chunk * f;
            runChain(gs.spec->name + ".offload", gs.spec->offloadStages,
                     remote, 0, [this, g, remote, start] {
                         onChainDone(g, remote, start);
                     });
        }
    }
}

void
TrainingSession::onChainDone(std::size_t g, double samples,
                             Time chain_start)
{
    GroupState &gs = groups_[g];
    gs.inFlightSamples -= samples;
    gs.readySamples += samples;
    samplesPrepared_ += samples;
    if (elastic_ && gs.membership == Membership::Draining)
        elasticStats_.samplesSavedByDrain += samples;
    if (measuring()) {
        prepLatencySum_ += eq_.now() - chain_start;
        ++prepLatencyCount_;
        if (chainsCtr_)
            chainsCtr_->inc();
    }
    tryStartCompute(g);
    launchPrep(g);
}

// --- fault-injection path ------------------------------------------------
//
// Under fault injection every prep chain is a tracked ChainRun so that an
// open fault window can cancel its current flow and re-dispatch it on a
// recovery template. The fault-free path above never allocates any of
// this.

/**
 * Is the group's last prep FPGA out of service for *routing* purposes?
 * A fault crash routes around it only under the poolFailover policy; an
 * elastic leave is known membership change and always routes around it.
 */
bool
TrainingSession::prepOut(const GroupState &gs) const
{
    return gs.prepElasticOut ||
           (gs.prepDegraded && fault_ && fault_->config().poolFailover);
}

const std::vector<StageTemplate> &
TrainingSession::selectStages(const ChainRun &run) const
{
    const GroupState &gs = groups_[run.group];
    const PrepGroup &spec = *gs.spec;
    if (run.offload) {
        if ((gs.prepDegraded || gs.prepElasticOut) &&
            !spec.degradedOffloadStages.empty())
            return spec.degradedOffloadStages;
        return spec.offloadStages;
    }
    if (gs.routeLost && fault_ && fault_->config().hostFallback &&
        !spec.hostPathStages.empty())
        return spec.hostPathStages;
    if (prepOut(gs) && !spec.degradedStages.empty())
        return spec.degradedStages;
    return spec.stages;
}

double
TrainingSession::effectiveOffload(std::size_t g) const
{
    const GroupState &gs = groups_[g];
    // A membership change re-plans the offload split (replanOffload());
    // the build-time fraction applies until the first change.
    const double f = gs.offloadOverride >= 0.0 ? gs.offloadOverride
                                               : gs.spec->offloadFraction;
    if (!prepOut(gs) || gs.spec->offloadStages.empty())
        return f;
    if (gs.spec->degradedStages.empty())
        return 1.0; // no surviving FPGA: the pool takes the whole chunk
    // The dead FPGA's share of the local fraction moves to the pool.
    const double share =
        1.0 / static_cast<double>(gs.spec->preps.size());
    return f + (1.0 - f) * share;
}

void
TrainingSession::launchFaultChain(std::size_t g, bool offload,
                                  double samples)
{
    const std::uint64_t cid = nextChainId_++;
    ChainRun run;
    run.group = g;
    run.offload = offload;
    run.samples = samples;
    run.start = eq_.now();
    run.track = groups_[g].spec->name + (offload ? ".offload" : "");
    auto [it, inserted] = chains_.emplace(cid, std::move(run));
    it->second.stages = &selectStages(it->second);
    startChainStage(cid, 0);
}

void
TrainingSession::startChainStage(std::uint64_t cid, std::size_t idx)
{
    auto cit = chains_.find(cid);
    if (cit == chains_.end())
        return;
    ChainRun &run = cit->second;
    const std::vector<StageTemplate> &stages = *run.stages;
    if (idx >= stages.size()) {
        const std::size_t g = run.group;
        const double samples = run.samples;
        const Time chain_start = run.start;
        chains_.erase(cit);
        onChainDone(g, samples, chain_start);
        return;
    }
    const StageTemplate &st = stages[idx];
    const Time start = eq_.now();
    const std::uint64_t epoch = run.epoch;
    FlowSpec spec;
    spec.category = st.category;
    spec.size = run.samples;
    spec.rateCap = st.rateCap;
    spec.fairWeight = st.fairWeight;
    spec.demands = st.demandsPerSample;
    spec.onComplete = [this, cid, idx, start, epoch](Time now) {
        auto it = chains_.find(cid);
        if (it == chains_.end() || it->second.epoch != epoch)
            return;
        ChainRun &run = it->second;
        run.flow = 0;
        const StageTemplate &done = (*run.stages)[idx];
        if (measuring()) {
            stageTimeSum_[done.name] += now - start;
            ++stageTimeCount_[done.name];
        }
        if (trace_)
            trace_->complete(run.track, done.name, start, now - start,
                             "prep");
        if (done.name == "ssd_read" && handleReadFailure(cid, idx))
            return;
        if ((done.corruptionHops != 0 || done.verifiesIntegrity) &&
            handleCorruption(cid, idx))
            return;
        startChainStage(cid, idx + 1);
    };
    run.flow = net_.startFlow(std::move(spec));
}

/**
 * Bounded-retry policy for SSD reads. Returns true when the read failed
 * and this function took over scheduling (retry after backoff, or chain
 * restart once the retry budget is exhausted).
 */
bool
TrainingSession::handleReadFailure(std::uint64_t cid, std::size_t idx)
{
    if (!fault_) // tracked chains exist under elasticity alone
        return false;
    ChainRun &run = chains_.find(cid)->second;
    const FaultConfig &fc = fault_->config();
    if (fc.ssdReadFailureProb <= 0.0 || !fault_->ssdReadAttemptFails()) {
        run.readAttempts = 0;
        return false;
    }
    const Time now = eq_.now();
    if (run.readAttempts < fc.maxReadRetries) {
        const Time backoff = fc.retryBackoffBase *
            static_cast<double>(std::uint64_t{1} << run.readAttempts);
        ++run.readAttempts;
        ++faultStats_.ssdRetries;
        if (trace_)
            trace_->instant(run.track, "read_retry", now, "fault");
        const std::uint64_t epoch = run.epoch;
        eq_.scheduleIn(backoff, [this, cid, idx, epoch] {
            auto it = chains_.find(cid);
            if (it == chains_.end() || it->second.epoch != epoch)
                return;
            startChainStage(cid, idx);
        });
        return true;
    }
    // Retry budget exhausted: abandon the chunk and restart the chain on
    // fresh data (the dataset is sharded; another replica serves it).
    ++faultStats_.chunksAbandoned;
    run.readAttempts = 0;
    run.pendingCorruptions = 0;
    run.recoveries = 0;
    run.stages = &selectStages(run);
    ++run.epoch;
    if (trace_)
        trace_->instant(run.track, "chunk_abandoned", now, "fault");
    startChainStage(cid, 0);
    return true;
}

/** Does any stage at @p idx or later on the chain verify the data? */
bool
TrainingSession::chainVerifiesFrom(const ChainRun &run, std::size_t idx)
{
    const std::vector<StageTemplate> &stages = *run.stages;
    for (std::size_t i = idx; i < stages.size(); ++i)
        if (stages[i].verifiesIntegrity)
            return true;
    return false;
}

/**
 * Corruption draws + detection policy, run as stage @p idx of chain
 * @p cid completes. Each hop class tagged on the stage draws once:
 *
 *  - PCIe link errors are always detected by the link LCRC and cost a
 *    replay stall before the next stage starts;
 *  - host-DRAM flips are always corrected by ECC at no modeled cost;
 *  - SSD / FPGA flips are silent: if a downstream stage verifies the
 *    data (an inserted checksum stage, or the baseline CPU formatting)
 *    the flip is *detected* and rides the chain until that stage
 *    triggers a bounded re-read; otherwise it *escapes* into training.
 *
 * Classification happens eagerly at draw time so the accounting
 * invariant injected == detected + escaped holds exactly regardless of
 * chain cancellations or chains still in flight at the end of the run.
 * Returns true when this function took over scheduling (replay stall
 * or verify-triggered recovery).
 */
bool
TrainingSession::handleCorruption(std::uint64_t cid, std::size_t idx)
{
    if (!fault_) // tracked chains exist under elasticity alone
        return false;
    ChainRun &run = chains_.find(cid)->second;
    const StageTemplate &st = (*run.stages)[idx];
    const FaultConfig &fc = fault_->config();
    const CorruptionConfig &cc = fc.corruption;
    const Time now = eq_.now();

    Time replay = 0.0;
    if (st.corruptionHops != 0 && cc.any()) {
        for (std::size_t k = 0; k < kNumCorruptionKinds; ++k) {
            const auto kind = static_cast<CorruptionKind>(k);
            if (!(st.corruptionHops & corruptionBit(kind)))
                continue;
            if (!fault_->corruptionStrikes(kind))
                continue;
            ++integrityStats_.injected;
            ++integrityStats_.injectedByKind[k];
            if (trace_)
                trace_->instant(run.track, corruptionKindName(kind), now,
                                "fault");
            switch (kind) {
              case CorruptionKind::PcieLinkError:
                ++integrityStats_.detected;
                ++integrityStats_.pcieReplays;
                replay += cc.pcieReplayLatency;
                break;
              case CorruptionKind::HostDramFlip:
                ++integrityStats_.detected;
                break;
              case CorruptionKind::SsdBitFlip:
              case CorruptionKind::FpgaUpset:
                if (chainVerifiesFrom(run, idx)) {
                    ++integrityStats_.detected;
                    ++run.pendingCorruptions;
                } else {
                    ++integrityStats_.escaped;
                }
                break;
            }
        }
    }

    if (st.verifiesIntegrity && run.pendingCorruptions > 0) {
        // The verify caught the pending flip(s): re-read the chunk,
        // bounded like the SSD retry policy, then quarantine.
        run.pendingCorruptions = 0;
        if (run.recoveries < fc.maxIntegrityRecoveries) {
            const Time backoff = fc.retryBackoffBase *
                static_cast<double>(std::uint64_t{1} << run.recoveries);
            ++run.recoveries;
            ++integrityStats_.recoveries;
            if (trace_)
                trace_->instant(run.track, "integrity_recover", now,
                                "fault");
            const std::uint64_t epoch = run.epoch;
            eq_.scheduleIn(backoff, [this, cid, epoch] {
                auto it = chains_.find(cid);
                if (it == chains_.end() || it->second.epoch != epoch)
                    return;
                startChainStage(cid, 0);
            });
            return true;
        }
        // Recovery budget exhausted: quarantine the chunk and restart
        // the chain on fresh data (chunksAbandoned semantics).
        ++integrityStats_.chunksQuarantined;
        run.recoveries = 0;
        run.readAttempts = 0;
        run.stages = &selectStages(run);
        ++run.epoch;
        if (trace_)
            trace_->instant(run.track, "chunk_quarantined", now, "fault");
        startChainStage(cid, 0);
        return true;
    }

    if (replay > 0.0) {
        const std::uint64_t epoch = run.epoch;
        eq_.scheduleIn(replay, [this, cid, idx, epoch] {
            auto it = chains_.find(cid);
            if (it == chains_.end() || it->second.epoch != epoch)
                return;
            startChainStage(cid, idx + 1);
        });
        return true;
    }
    return false;
}

std::size_t
TrainingSession::redispatchLocalChains(std::size_t g)
{
    std::size_t redispatched = 0;
    for (auto &[cid, run] : chains_) {
        if (run.group != g || run.offload)
            continue;
        if (run.flow != 0) {
            net_.cancelFlow(run.flow);
            run.flow = 0;
        }
        run.stages = &selectStages(run);
        run.readAttempts = 0;
        run.pendingCorruptions = 0;
        run.recoveries = 0;
        ++run.epoch;
        startChainStage(cid, 0);
        ++redispatched;
    }
    return redispatched;
}

void
TrainingSession::onFault(const FaultEvent &ev)
{
    // The injector's lazily chained schedule keeps firing on a shared
    // core after this session finishes; a finished session ignores it
    // (unreachable on a private core — the loop exits at done_).
    if (done_)
        return;
    if (activeFaultWindows_++ == 0)
        degradedStart_ = eq_.now();
    if (trace_)
        trace_->complete("faults", faultKindName(ev.kind), ev.start,
                         ev.duration, "fault");
    switch (ev.kind) {
      case FaultKind::SsdDegrade:
        server_.ssds[ev.target]->setReadBandwidthScale(ev.magnitude);
        break;
      case FaultKind::PrepCrash: {
        GroupState &gs = groups_[ev.target];
        if (gs.spec->preps.empty())
            break;
        gs.spec->preps.back()->setFailed(true);
        gs.prepDegraded = true;
        if (fault_->config().poolFailover) {
            ++faultStats_.prepFailovers;
            redispatchLocalChains(ev.target);
        }
        break;
      }
      case FaultKind::EthDegrade:
        if (server_.pool)
            server_.pool->setFabricBandwidthScale(ev.magnitude);
        break;
      case FaultKind::RouteLoss: {
        GroupState &gs = groups_[ev.target];
        gs.routeLost = true;
        if (fault_->config().hostFallback &&
            !gs.spec->hostPathStages.empty())
            redispatchLocalChains(ev.target);
        break;
      }
      case FaultKind::FatalCrash:
        onFatalCrash(ev);
        break;
    }
}

void
TrainingSession::onRepair(const FaultEvent &ev)
{
    // See onFault: post-completion repairs on a shared core are moot
    // (the degradation interval was closed by finalizeResult()), and
    // letting one through would underflow activeFaultWindows_.
    if (done_)
        return;
    switch (ev.kind) {
      case FaultKind::SsdDegrade:
        server_.ssds[ev.target]->setReadBandwidthScale(1.0);
        break;
      case FaultKind::PrepCrash: {
        GroupState &gs = groups_[ev.target];
        if (gs.spec->preps.empty())
            break;
        gs.prepDegraded = false;
        // The FPGA only powers back up when no elastic leave holds it
        // away and the group itself is attached (a detached group's
        // devices return at its join).
        if (!gs.prepElasticOut &&
            gs.membership != Membership::Detached &&
            gs.membership != Membership::Joining)
            gs.spec->preps.back()->setFailed(false);
        // In-flight degraded chains finish where they are; chains
        // launched from now on use the healthy templates again.
        break;
      }
      case FaultKind::EthDegrade:
        if (server_.pool)
            server_.pool->setFabricBandwidthScale(1.0);
        break;
      case FaultKind::RouteLoss:
        groups_[ev.target].routeLost = false;
        break;
      case FaultKind::FatalCrash:
        // Point event: recovery is driven by onFatalCrash's restart
        // timer, not by the zero-length repair window.
        break;
    }
    if (--activeFaultWindows_ == 0)
        degradedTime_ += eq_.now() - degradedStart_;
}

void
TrainingSession::onFatalCrash(const FaultEvent &)
{
    // A crash while already down (or after the run finished) changes
    // nothing: the machine is not running, so no extra state is lost.
    if (done_ || down_)
        return;
    const Time now = eq_.now();
    const std::size_t at_step = syncedSteps_;
    const std::size_t durable = ckpt_->crash(now, at_step);

    // Everything volatile dies with the process: in-flight prep chains,
    // buffered prepared samples, running compute, the pending sync.
    for (auto &[cid, run] : chains_)
        if (run.flow != 0)
            net_.cancelFlow(run.flow);
    chains_.clear();
    for (GroupState &gs : groups_) {
        if (gs.computeEv.valid())
            eq_.cancel(gs.computeEv);
        gs.computing = false;
        samplesDiscarded_ += gs.readySamples;
        gs.readySamples = 0.0;
        gs.inFlightSamples = 0.0;
        gs.stepsComputed = durable;
    }
    if (syncEv_.valid())
        eq_.cancel(syncEv_);
    stepSamples_ = 0.0;
    syncedSteps_ = durable;
    pausedForCkpt_ = false;
    down_ = true;
    if (trace_)
        trace_->instant("faults", "fatal_crash", now, "fault");

    eq_.scheduleIn(server_.cfg.checkpoint.restartLatency,
                          [this, now] {
        down_ = false;
        ckpt_->restarted(eq_.now());
        if (trace_)
            trace_->complete("faults", "rollback", now,
                             eq_.now() - now, "fault");
        for (std::size_t g = 0; g < groups_.size(); ++g)
            launchPrep(g);
    });
}

// --- elastic-capacity path -----------------------------------------------
//
// Membership changes arrive from the ElasticScheduler (plus the deferred
// scale-up joins). The state machine lives on GroupState::membership;
// transitions that no longer apply (e.g. a drain for a group a preempt
// already removed) are dropped here. Device capacity changes go through
// setFailed -> capacityChanged inside a FlowBatch, so the fluid re-solve
// stays component-local and runs once per transition.

void
TrainingSession::accrueCapacity()
{
    if (!elastic_)
        return;
    const Time now = eq_.now();
    const Time dt = now - lastCapacityMark_;
    lastCapacityMark_ = now;
    if (dt <= 0.0 || groups_.empty())
        return;
    activeFractionIntegral_ += dt * static_cast<double>(activeGroups_) /
                               static_cast<double>(groups_.size());
    if (activeGroups_ < groups_.size())
        elasticStats_.degradedCapacityTime += dt;
    if (activeGroups_ == 0)
        elasticStats_.zeroCapacityTime += dt;
}

void
TrainingSession::replanOffload()
{
    if (!elastic_ || !server_.cfg.elasticity.replanOffload ||
        !server_.pool)
        return;
    // Re-run the multi-job lending math for the surviving membership:
    // each attached group is one train box worth of local FPGA capacity.
    std::size_t accs = 0;
    std::size_t boxes = 0;
    for (const GroupState &gs : groups_) {
        if (gs.membership != Membership::Active &&
            gs.membership != Membership::Draining)
            continue;
        accs += gs.spec->numAccelerators;
        ++boxes;
    }
    const double f = replanOffloadFraction(
        server_.cfg.model, accs, boxes, server_.cfg.box, server_.cfg.sync);
    for (GroupState &gs : groups_)
        if (!gs.spec->offloadStages.empty())
            gs.offloadOverride = f;
}

void
TrainingSession::onElasticEvent(const ElasticEvent &ev)
{
    if (done_ || ev.index >= groups_.size())
        return;
    if (trace_)
        trace_->instant("elastic",
                        std::string(elasticTargetKindName(ev.target)) +
                            "_" + elasticActionName(ev.action),
                        eq_.now(), "elastic");
    if (ev.target == ElasticTargetKind::Group) {
        switch (ev.action) {
          case ElasticAction::Drain:
            beginGroupDrain(ev.index);
            break;
          case ElasticAction::Preempt:
            preemptGroup(ev.index);
            break;
          case ElasticAction::Join:
            beginGroupJoin(ev.index);
            break;
        }
    } else {
        switch (ev.action) {
          case ElasticAction::Drain:
            onPrepLeave(ev.index, /*planned=*/true);
            break;
          case ElasticAction::Preempt:
            onPrepLeave(ev.index, /*planned=*/false);
            break;
          case ElasticAction::Join:
            onPrepJoin(ev.index);
            break;
        }
    }
}

void
TrainingSession::beginGroupDrain(std::size_t g)
{
    GroupState &gs = groups_[g];
    if (gs.membership != Membership::Active)
        return;
    gs.membership = Membership::Draining;
    ++elasticStats_.drains;
    // Checkpoint-coordinated drain: durable state at the next step
    // boundary, so the detach loses buffered samples but never steps.
    if (ckpt_)
        ckpt_->requestCapture();
    gs.detachEv = eq_.scheduleIn(
        server_.cfg.elasticity.graceWindow, [this, g] {
            groups_[g].detachEv.invalidate();
            detachGroup(g, /*preempted=*/false);
        });
}

void
TrainingSession::preemptGroup(std::size_t g)
{
    GroupState &gs = groups_[g];
    switch (gs.membership) {
      case Membership::Detached:
        return; // already gone
      case Membership::Joining:
        // Preempted before the attach finished: the join is void.
        eq_.cancel(gs.joinEv);
        gs.joinEv.invalidate();
        gs.membership = Membership::Detached;
        ++elasticStats_.preemptions;
        return;
      case Membership::Draining:
        // Escalation: the grace window is cut short.
        eq_.cancel(gs.detachEv);
        gs.detachEv.invalidate();
        break;
      case Membership::Active:
        break;
    }
    ++elasticStats_.preemptions;
    detachGroup(g, /*preempted=*/true);
}

void
TrainingSession::detachGroup(std::size_t g, bool preempted)
{
    // A grace-window detach can land after the session finishes on a
    // shared core; the frozen result must not see the teardown.
    if (done_)
        return;
    GroupState &gs = groups_[g];
    if (gs.membership == Membership::Detached)
        return;
    {
        FluidNetwork::FlowBatch batch(net_);
        // In-flight prep chains die with the member.
        for (auto it = chains_.begin(); it != chains_.end();) {
            if (it->second.group != g) {
                ++it;
                continue;
            }
            if (it->second.flow != 0)
                net_.cancelFlow(it->second.flow);
            it = chains_.erase(it);
        }
        gs.inFlightSamples = 0.0;
        // Buffered prepared samples are discarded: the data shard moves
        // to the survivors, who re-read it from storage.
        samplesDiscarded_ += gs.readySamples;
        double lost = gs.readySamples;
        gs.readySamples = 0.0;
        if (gs.computeEv.valid()) {
            eq_.cancel(gs.computeEv);
            gs.computeEv.invalidate();
            lost += groupBatchSamples(g); // aborted mid-step batch
        }
        gs.computing = false;
        if (preempted)
            elasticStats_.samplesLostToPreemption += lost;
        else
            elasticStats_.samplesDroppedAtDrain += lost;
        for (PrepAccelerator *p : gs.spec->preps)
            p->setFailed(true);
    }
    accrueCapacity();
    gs.membership = Membership::Detached;
    --activeGroups_;
    replanOffload();
    // The detach may complete the step the survivors were waiting on.
    stepComplete();
}

void
TrainingSession::beginGroupJoin(std::size_t g)
{
    GroupState &gs = groups_[g];
    if (gs.membership == Membership::Draining) {
        // Capacity returns before the grace window ends: cancel the
        // drain and keep the member (nothing was torn down yet).
        eq_.cancel(gs.detachEv);
        gs.detachEv.invalidate();
        gs.membership = Membership::Active;
        launchPrep(g);
        return;
    }
    if (gs.membership != Membership::Detached)
        return; // already attached or attaching
    gs.membership = Membership::Joining;
    gs.joinEv = eq_.scheduleIn(
        server_.cfg.elasticity.rejoinLatency,
        [this, g] {
            groups_[g].joinEv.invalidate();
            completeJoin(g);
        });
}

void
TrainingSession::completeJoin(std::size_t g)
{
    if (done_)
        return;
    GroupState &gs = groups_[g];
    accrueCapacity();
    gs.membership = Membership::Active;
    ++activeGroups_;
    ++elasticStats_.joins;
    elasticStats_.rebalanceTime += server_.cfg.elasticity.rejoinLatency;
    // Data-shard rebalance: the joiner picks up at the current global
    // step (or the next one when its sync is already in flight).
    gs.stepsComputed = syncedSteps_ + (syncEv_.valid() ? 1 : 0);
    {
        FluidNetwork::FlowBatch batch(net_);
        // Its devices power back up — except the last FPGA while a
        // fault window or an elastic prep leave still holds it down.
        const auto &preps = gs.spec->preps;
        for (std::size_t i = 0; i < preps.size(); ++i) {
            const bool keep_failed = i + 1 == preps.size() &&
                                     (gs.prepDegraded || gs.prepElasticOut);
            preps[i]->setFailed(keep_failed);
        }
    }
    replanOffload();
    launchPrep(g);
    tryStartCompute(g);
}

void
TrainingSession::onPrepLeave(std::size_t g, bool planned)
{
    GroupState &gs = groups_[g];
    if (gs.spec->preps.empty() ||
        gs.membership == Membership::Detached ||
        gs.membership == Membership::Joining)
        return; // the whole group is away; its join restores the FPGA
    if (planned) {
        if (gs.prepElasticOut)
            return; // one elastic prep leave at a time per group
        gs.prepElasticOut = true;
        ++elasticStats_.drains;
        // Grace: new chains avoid the leaving FPGA immediately (the
        // degraded templates stripe over the survivors); work already
        // on it may finish until the detach instant.
        const std::uint64_t epoch = ++gs.prepEpoch;
        eq_.scheduleIn(server_.cfg.elasticity.graceWindow,
                              [this, g, epoch] {
            GroupState &gs = groups_[g];
            if (done_ || gs.prepEpoch != epoch || !gs.prepElasticOut ||
                gs.membership == Membership::Detached ||
                gs.membership == Membership::Joining)
                return;
            gs.spec->preps.back()->setFailed(true);
            elasticStats_.chainsRebalanced += redispatchLocalChains(g);
        });
        return;
    }
    // Hard preemption: gone now, in-flight work re-dispatches (the
    // same crash path a PrepCrash fault takes).
    ++gs.prepEpoch; // stales a pending drain detach, if any
    gs.prepElasticOut = true;
    ++elasticStats_.preemptions;
    gs.spec->preps.back()->setFailed(true);
    elasticStats_.chainsRebalanced += redispatchLocalChains(g);
}

void
TrainingSession::onPrepJoin(std::size_t g)
{
    GroupState &gs = groups_[g];
    if (gs.spec->preps.empty() || !gs.prepElasticOut)
        return;
    ++gs.prepEpoch; // stales a pending drain detach, if any
    gs.prepElasticOut = false;
    ++elasticStats_.joins;
    if (gs.membership == Membership::Detached ||
        gs.membership == Membership::Joining)
        return; // completeJoin powers the FPGA up with the group
    // Back in service unless a fault window still holds it down.
    if (!gs.prepDegraded)
        gs.spec->preps.back()->setFailed(false);
    // In-flight degraded chains finish where they are; new chains use
    // the healthy templates again.
}

// --- streaming-ingest path -----------------------------------------------
//
// Arrivals from the IngestScheduler land in a bounded host-DRAM buffer
// and drain onto the dataset shards through the per-group ingest_write
// template (round-robin over the groups), contending with prep reads
// via the SSD write→read interference. The overload policy chain
// engages in escalation order as the buffer level crosses its
// watermarks and disengages (all at once) at the low watermark. The
// ingest tier lives outside the training process: arrivals and shard
// writes keep flowing through fatal crashes and checkpoint pauses, and
// the write pump never depends on training progress — which is what
// makes the stall policy deadlock-free. None of this is reached when
// ingest is disabled (ingest_ stays null).

bool
TrainingSession::ingestPolicyEngaged(IngestPolicy p) const
{
    const auto &chain = server_.cfg.ingest.policyChain;
    for (std::size_t i = 0; i < chain.size(); ++i)
        if (chain[i] == p && (ingestEngaged_ & (std::uint64_t{1} << i)))
            return true;
    return false;
}

/** Buffer occupancy in samples (the in-flight chunk is still in DRAM). */
double
TrainingSession::ingestLevel() const
{
    return ingestBuffered_ + ingestWriting_;
}

/**
 * Recompute the engaged policy set from the buffer level. With a chain
 * of n policies, policy i engages once the level reaches
 *
 *   highWatermark + i * (bufferCapacity - highWatermark) / n
 *
 * (so a burst landing exactly at the high watermark trips policy 0),
 * and all engaged policies disengage together when the level falls back
 * to the low watermark — classic hysteresis, so policies never flap on
 * a level hovering at a threshold.
 */
void
TrainingSession::updateIngestOverload()
{
    const IngestConfig &ic = server_.cfg.ingest;
    const double level = ingestLevel();
    const Time now = eq_.now();
    if (ingestEngaged_ != 0 && level <= ic.lowWatermark + 1e-9) {
        ingestEngaged_ = 0;
        ingestStats_.overloadTime += now - ingestOverloadStart_;
        if (trace_)
            trace_->instant("ingest", "overload_clear", now, "ingest");
        if (ingestStalled_) {
            ingestStalled_ = false;
            ingestStats_.stallTime += now - ingestStallStart_;
            for (std::size_t g = 0; g < groups_.size(); ++g)
                tryStartCompute(g);
        }
        return;
    }
    const std::size_t n = ic.policyChain.size();
    if (n == 0 || level + 1e-9 < ic.highWatermark)
        return;
    const double span =
        std::max(0.0, ic.bufferCapacity - ic.highWatermark);
    const bool first_trip = ingestEngaged_ == 0;
    for (std::size_t i = 0; i < n; ++i) {
        const double threshold = ic.highWatermark +
            span * static_cast<double>(i) / static_cast<double>(n);
        const std::uint64_t bit = std::uint64_t{1} << i;
        if (level + 1e-9 < threshold || (ingestEngaged_ & bit))
            continue;
        ingestEngaged_ |= bit;
        if (trace_)
            trace_->instant("ingest",
                            std::string("engage_") +
                                ingestPolicyName(ic.policyChain[i]),
                            now, "ingest");
        if (ic.policyChain[i] == IngestPolicy::Stall && !ingestStalled_) {
            ingestStalled_ = true;
            ++ingestStats_.stalls;
            ingestStallStart_ = now;
        }
    }
    if (first_trip && ingestEngaged_ != 0) {
        ++ingestStats_.overloadTrips;
        ingestOverloadStart_ = now;
    }
}

void
TrainingSession::onIngestArrival(const IngestArrival &ev)
{
    if (done_)
        return;
    const IngestConfig &ic = server_.cfg.ingest;
    ++ingestStats_.arrivalEvents;
    ingestStats_.samplesArrived += ev.samples;
    double remaining = ev.samples;
    // Admission control, in escalation order: shed drops the whole
    // batch for the low-priority classes; throttle admits only a
    // fraction of everything else; the capacity clamp is uncondition-
    // ally last — arrivals beyond a full buffer always overflow.
    if (ingestPolicyEngaged(IngestPolicy::Shed) &&
        ev.priority <= ic.shedPriorityCutoff) {
        ingestStats_.samplesShedPolicy += remaining;
        remaining = 0.0;
    } else if (ingestPolicyEngaged(IngestPolicy::Throttle)) {
        const double rejected = remaining * (1.0 - ic.throttleFactor);
        ingestStats_.samplesThrottled += rejected;
        remaining -= rejected;
    }
    const double space = std::max(0.0, ic.bufferCapacity - ingestLevel());
    const double admit = std::min(remaining, space);
    ingestStats_.samplesOverflowDropped += remaining - admit;
    if (admit > 0.0) {
        ingestBuffered_ += admit;
        ingestQueue_.push_back({admit, eq_.now()});
        ingestStats_.peakBufferLevel =
            std::max(ingestStats_.peakBufferLevel, ingestLevel());
    }
    updateIngestOverload();
    pumpIngestWrites();
}

/**
 * Start the next shard-write chunk if the writer is idle. One chunk is
 * in flight at a time (the ingest tier's writer is a serial appender);
 * the cohorts making up the chunk are popped FIFO so freshness
 * accounting sees every sample's true arrival time.
 */
void
TrainingSession::pumpIngestWrites()
{
    if (done_ || ingestWriting_ > 0.0 || ingestBuffered_ <= 1e-9)
        return;
    const double chunk =
        std::min(ingestBuffered_, server_.cfg.ingest.writeChunkSamples);
    ingestBuffered_ -= chunk;
    ingestWriting_ = chunk;
    ingestWritingCohorts_.clear();
    double need = chunk;
    while (need > 1e-9 && !ingestQueue_.empty()) {
        IngestCohort &front = ingestQueue_.front();
        const double take = std::min(front.samples, need);
        ingestWritingCohorts_.push_back({take, front.arrivedAt});
        front.samples -= take;
        need -= take;
        if (front.samples <= 1e-9)
            ingestQueue_.pop_front();
    }
    startIngestWrite(0);
}

void
TrainingSession::startIngestWrite(std::size_t attempt)
{
    const StageTemplate &st =
        server_.groups[ingestWriteGroup_].ingestWrite;
    ++ingestStats_.writeFlows;
    const Time start = eq_.now();
    const std::uint64_t epoch = ingestWriteEpoch_;
    FlowSpec spec;
    spec.category = st.category;
    spec.size = ingestWriting_;
    spec.rateCap = st.rateCap;
    spec.fairWeight = st.fairWeight;
    spec.demands = st.demandsPerSample;
    spec.onComplete = [this, attempt, epoch, start](Time now) {
        if (epoch != ingestWriteEpoch_)
            return;
        if (trace_)
            trace_->complete("ingest", "ingest_write", start, now - start,
                             "ingest");
        onIngestWriteDone(attempt);
    };
    net_.startFlow(std::move(spec));
}

/**
 * A write chunk finished transferring. The failure draw happens here —
 * a failed attempt paid its full bandwidth (like a failed SSD read) —
 * and retries back off exponentially on the *same* shard target; once
 * the budget is out the chunk is abandoned (the arrival tier re-
 * requests it out of band) so a sick shard can never wedge the buffer.
 */
void
TrainingSession::onIngestWriteDone(std::size_t attempt)
{
    // A shard write in flight at completion lands after the ingest
    // ledger froze; ignore it (unreachable on a private core).
    if (done_)
        return;
    const IngestConfig &ic = server_.cfg.ingest;
    const Time now = eq_.now();
    if (ingest_->writeAttemptFails()) {
        if (attempt < ic.maxWriteRetries) {
            ++ingestStats_.writeRetries;
            if (trace_)
                trace_->instant("ingest", "write_retry", now, "ingest");
            const Time backoff = ic.writeRetryBackoff *
                static_cast<double>(std::uint64_t{1} << attempt);
            const std::uint64_t epoch = ingestWriteEpoch_;
            eq_.scheduleIn(backoff, [this, attempt, epoch] {
                if (done_ || epoch != ingestWriteEpoch_)
                    return;
                startIngestWrite(attempt + 1);
            });
            return;
        }
        ++ingestStats_.writeFailures;
        ingestStats_.samplesAbandonedWrites += ingestWriting_;
        if (trace_)
            trace_->instant("ingest", "write_abandoned", now, "ingest");
    } else {
        // Landed durably: commit the chunk and its freshness ledger.
        ingestStats_.samplesAdmitted += ingestWriting_;
        for (const IngestCohort &c : ingestWritingCohorts_) {
            const Time stale = now - c.arrivedAt;
            ingestStats_.stalenessSum += c.samples * stale;
            ingestStats_.stalenessMax =
                std::max(ingestStats_.stalenessMax, stale);
            if (ic.stalenessSlo <= 0.0 || stale <= ic.stalenessSlo)
                ingestStats_.samplesWithinSlo += c.samples;
        }
    }
    ingestWriting_ = 0.0;
    ingestWritingCohorts_.clear();
    ++ingestWriteEpoch_;
    ingestWriteGroup_ = (ingestWriteGroup_ + 1) % server_.groups.size();
    updateIngestOverload();
    pumpIngestWrites();
}

void
TrainingSession::tryStartCompute(std::size_t g)
{
    GroupState &gs = groups_[g];
    if (done_ || down_ || pausedForCkpt_ || ingestStalled_ ||
        gs.computing ||
        gs.membership == Membership::Detached ||
        gs.membership == Membership::Joining ||
        gs.stepsComputed != syncedSteps_)
        return;
    // Echo policy: under overload part of the batch reuses previously
    // prepped (stale) samples, so only the fresh fraction is consumed
    // from the ready window — cutting prep-side SSD read pressure while
    // the shard writes drain. The statistical-efficiency cost is
    // reported, not folded into throughput (steps still process full
    // hardware batches).
    double fresh = groupBatchSamples(g);
    if (ingest_ && ingestPolicyEngaged(IngestPolicy::Echo))
        fresh /= server_.cfg.ingest.echoFactor;
    if (gs.readySamples + 1e-6 < fresh)
        return;
    gs.readySamples -= fresh;
    samplesConsumed_ += fresh;
    if (ingest_)
        ingestStats_.samplesEchoed += groupBatchSamples(g) - fresh;
    gs.computing = true;
    const Time start = eq_.now();
    Time duration = server_.computeTime();
    if (fault_) {
        const double factor =
            fault_->stragglerFactor(g, gs.stepsComputed);
        if (factor > 1.0) {
            ++faultStats_.stragglerSteps;
            const Time nominal = duration;
            duration = nominal * factor;
            // Straggler-tolerant barrier: if waiting the straggler out
            // costs more than aborting at the timeout and re-running the
            // group's compute from scratch, re-dispatch.
            const double tf = fault_->config().stepTimeoutFactor;
            const Time timeout = nominal * tf;
            if (tf > 0.0 && timeout + nominal < duration) {
                duration = timeout + nominal;
                ++faultStats_.computeRedispatches;
                if (trace_)
                    trace_->instant(gs.spec->name, "compute_redispatch",
                                    start + timeout, "fault");
            }
        }
    }
    gs.computeEv = eq_.scheduleIn(duration, [this, g, start] {
        groups_[g].computeEv.invalidate();
        if (computeBusyCtr_ && measuring())
            computeBusyCtr_->add(eq_.now() - start);
        if (trace_)
            trace_->complete(groups_[g].spec->name, "compute", start,
                             eq_.now() - start, "compute");
        onComputeDone(g);
    });
    launchPrep(g);
}

void
TrainingSession::onComputeDone(std::size_t g)
{
    GroupState &gs = groups_[g];
    gs.computing = false;
    ++gs.stepsComputed;
    // Count the batch toward the step it synchronizes with; a joiner
    // finishing a step whose sync already fired contributes nothing
    // (it recomputes the current step with the re-sharded data).
    if (elastic_ && gs.stepsComputed == syncedSteps_ + 1)
        stepSamples_ += groupBatchSamples(g);
    stepComplete();
}

/**
 * The step barrier: fire the global sync once every attached
 * (Active/Draining) group has computed past syncedSteps_. With fixed
 * membership this is exactly the classic counting barrier — the last
 * compute of the step triggers the scan that passes — so results are
 * bit-identical. Under elasticity it additionally fires when a detach
 * removes the group the survivors were waiting on, and deliberately
 * never fires at zero capacity (the session parks until a join).
 */
void
TrainingSession::stepComplete()
{
    if (done_ || down_ || pausedForCkpt_ || syncEv_.valid())
        return;
    std::size_t attached = 0;
    for (const GroupState &gs : groups_) {
        if (gs.membership != Membership::Active &&
            gs.membership != Membership::Draining)
            continue;
        ++attached;
        if (gs.stepsComputed <= syncedSteps_)
            return;
    }
    if (attached == 0)
        return; // zero capacity: park until a join restores a group
    const Time start = eq_.now();
    syncEv_ = eq_.scheduleIn(server_.syncTime(), [this, start] {
        syncEv_.invalidate();
        if (syncBusyCtr_ && measuring())
            syncBusyCtr_->add(eq_.now() - start);
        if (trace_)
            trace_->complete("sync", "ring_allreduce", start,
                             eq_.now() - start, "sync");
        onSyncDone();
    });
}

void
TrainingSession::onSyncDone()
{
    ++syncedSteps_;
    if (elastic_) {
        // Commit each step index once: a crash rollback replays steps
        // the ledger already counted, so recommit nothing on replay.
        if (syncedSteps_ > maxSyncedStep_) {
            maxSyncedStep_ = syncedSteps_;
            if (syncedSteps_ > warmupSteps_)
                measuredSamples_ += stepSamples_;
        }
        stepSamples_ = 0.0;
    }
    if (stepsCtr_ && syncedSteps_ > warmupSteps_)
        stepsCtr_->inc();
    // The window opens at the *first* warmup crossing only: a crash
    // rollback may replay the crossing, and resetting again would
    // discard the crash's cost from the measurement.
    if (syncedSteps_ == warmupSteps_ && !windowOpen_) {
        windowOpen_ = true;
        windowStart_ = eq_.now();
        // Reset only this server's slice of the (possibly shared)
        // network: co-resident sessions own their measurement windows.
        server_.resetAccounting();
        stageTimeSum_.clear();
        stageTimeCount_.clear();
        prepLatencySum_ = 0.0;
        prepLatencyCount_ = 0;
    }
    if (syncedSteps_ >= totalSteps_) {
        windowEnd_ = eq_.now();
        done_ = true;
        // Freeze the result now: on a shared core other sessions keep
        // simulating, and this session's stray in-flight completions
        // must not leak into its numbers. Fire the completion hook
        // last so a fleet scheduler sees a fully finalized session.
        finalizeResult();
        if (doneCb_) {
            auto cb = std::move(doneCb_);
            doneCb_ = nullptr;
            cb();
        }
        return;
    }
    // Checkpoint decisions happen at step boundaries, where the model
    // is consistent across all accelerators.
    if (ckpt_ &&
        ckpt_->maybeBegin(syncedSteps_, [this] { onCheckpointResume(); })) {
        pausedForCkpt_ = true;
        return;
    }
    for (std::size_t g = 0; g < groups_.size(); ++g)
        tryStartCompute(g);
}

void
TrainingSession::onCheckpointResume()
{
    pausedForCkpt_ = false;
    if (done_ || down_)
        return;
    for (std::size_t g = 0; g < groups_.size(); ++g)
        tryStartCompute(g);
    // A membership change during the pause may have already completed
    // the step (no-op with fixed membership: some group is computing).
    stepComplete();
}

void
TrainingSession::start(std::size_t warmup, std::size_t measure)
{
    panic_if(started_, "session already started");
    started_ = true;
    panic_if(measure == 0, "need at least one measured step");
    warmupSteps_ = warmup;
    measureSteps_ = measure;
    totalSteps_ = warmup + measure;
    startNow_ = eq_.now();

    if (server_.metrics.enabled()) {
        MetricsRegistry &m = server_.metrics;
        // Session instruments share the server's resource namespace so
        // N sessions on one registry never collide ("" standalone).
        const std::string &p = server_.resourcePrefix();
        computeBusyCtr_ = m.counter(
            p + "session.compute_busy",
            "accelerator-group busy time over the window (group-sec)");
        syncBusyCtr_ = m.counter(
            p + "session.sync_busy",
            "ring-sync busy time over the window (sec)");
        stepsCtr_ = m.counter(p + "session.steps",
                              "global steps synchronized in the window");
        chainsCtr_ = m.counter(p + "session.chains_completed",
                               "prep chains finished in the window");
    }

    // Register this session's disturbance previews with the core: the
    // uniform ScheduleSource face over the three injector configs, so a
    // fleet driver can merge every job's schedule onto one timeline
    // (sim/schedule_source.hh). Previews are pure — registration never
    // perturbs the run.
    {
        ScheduleTargets stargets;
        stargets.numSsds = server_.ssds.size();
        stargets.numGroups = groups_.size();
        if (server_.cfg.faults.enabled)
            server_.core().addScheduleSource(
                std::make_unique<FaultScheduleSource>(server_.cfg.faults),
                stargets);
        if (server_.cfg.elasticity.enabled)
            server_.core().addScheduleSource(
                std::make_unique<ElasticScheduleSource>(
                    server_.cfg.elasticity),
                stargets);
        if (server_.cfg.ingest.enabled)
            server_.core().addScheduleSource(
                std::make_unique<IngestScheduleSource>(server_.cfg.ingest),
                stargets);
    }

    if (server_.cfg.faults.enabled) {
        FaultTargets targets;
        targets.numSsds = server_.ssds.size();
        targets.numGroups = groups_.size();
        fault_ = std::make_unique<FaultInjector>(server_.cfg.faults,
                                                 targets);
        fault_->arm(
            eq_, [this](const FaultEvent &ev) { onFault(ev); },
            [this](const FaultEvent &ev) { onRepair(ev); });
    }

    // The checkpointer exists whenever checkpoints are taken *or* fatal
    // crashes can arrive (then it only tracks lost work and rollbacks —
    // every crash rolls back to step 0).
    if (server_.cfg.checkpoint.enabled ||
        (server_.cfg.faults.enabled &&
         server_.cfg.faults.fatalCrash.ratePerSec > 0.0))
        ckpt_ = std::make_unique<Checkpointer>(server_, trace_);

    activeGroups_ = groups_.size();
    if (server_.cfg.elasticity.enabled) {
        ElasticTargets etargets;
        etargets.numGroups = groups_.size();
        elastic_ = std::make_unique<ElasticScheduler>(
            server_.cfg.elasticity, etargets);
        // Mid-session scale-up: the deferred groups start detached and
        // receive a Join event at scaleUpTime.
        std::size_t defer = server_.cfg.elasticity.deferredJoinGroups;
        if (!groups_.empty())
            defer = std::min(defer, groups_.size() - 1);
        for (std::size_t i = 0; i < defer; ++i) {
            GroupState &gs = groups_[groups_.size() - 1 - i];
            gs.membership = Membership::Detached;
            for (PrepAccelerator *p : gs.spec->preps)
                p->setFailed(true);
            --activeGroups_;
        }
        lastCapacityMark_ = eq_.now();
        if (defer > 0)
            replanOffload();
        elastic_->arm(eq_, [this](const ElasticEvent &ev) {
            onElasticEvent(ev);
        });
    }

    if (server_.cfg.ingest.enabled) {
        ingest_ = std::make_unique<IngestScheduler>(server_.cfg.ingest);
        ingestStats_.stalenessSloSec = server_.cfg.ingest.stalenessSlo;
        ingestStats_.echoEfficiency = server_.cfg.ingest.echoEfficiency;
        ingest_->arm(eq_, [this](const IngestArrival &ev) {
            onIngestArrival(ev);
        });
    }

    for (std::size_t g = 0; g < groups_.size(); ++g)
        launchPrep(g);
}

SessionResult
TrainingSession::run(std::size_t warmup, std::size_t measure)
{
    start(warmup, measure);
    while (!done_ && eq_.step()) {
    }
    panic_if(!done_,
             "training stalled: event queue drained after %zu/%zu steps",
             syncedSteps_, totalSteps_);
    return collect();
}

void
TrainingSession::finalizeResult(bool partial)
{
    // Extend the recorded utilization histories to the end of the run
    // (no-op — and in particular no accounting change — without metrics).
    net_.flushMetrics();

    SessionResult res;
    const Time elapsed = windowEnd_ - windowStart_;
    panic_if(!partial && elapsed <= 0.0, "empty measurement window");

    // A killed session may die before its measurement window opened
    // (or before anything synchronized inside it); a completed run
    // always has a positive window with every measured step in it.
    const bool window_valid = !partial || (windowOpen_ && elapsed > 0.0);
    const std::size_t measured =
        !partial ? measureSteps_
                 : (syncedSteps_ > warmupSteps_
                        ? std::min(syncedSteps_ - warmupSteps_,
                                   measureSteps_)
                        : 0);

    res.stepsMeasured = measured;
    res.computeTime = server_.computeTime();
    res.syncTime = server_.syncTime();
    if (window_valid && measured > 0) {
        res.stepTime = elapsed / static_cast<double>(measured);
        if (elastic_) {
            // Membership varied: count what detached-aware steps
            // actually synchronized (equals the closed form when no
            // event fired).
            res.throughput = measuredSamples_ / elapsed;
        } else {
            res.throughput =
                static_cast<double>(server_.cfg.numAccelerators) *
                static_cast<double>(server_.batchSize()) *
                static_cast<double>(measured) / elapsed;
        }
    }

    for (const auto &[name, sum] : stageTimeSum_)
        res.prepStageTime[name] =
            sum / static_cast<double>(stageTimeCount_[name]);
    if (prepLatencyCount_ > 0)
        res.prepLatency =
            prepLatencySum_ / static_cast<double>(prepLatencyCount_);

    auto collect = [elapsed](const FluidResource *r,
                             std::map<std::string, double> &out) {
        for (const auto &[cat, units] : r->servedByCategory())
            out[cat] = units / elapsed;
    };
    if (window_valid) {
        collect(server_.cpu->resource(), res.cpuCoresByCategory);
        collect(server_.hostMem->resource(), res.memBwByCategory);
        collect(server_.topo->rcResource(), res.rcBwByCategory);
    }

    if (fault_) {
        // Fault windows still open when the run ends never see their
        // repair event; close the degradation interval at the end time.
        if (activeFaultWindows_ > 0) {
            degradedTime_ += eq_.now() - degradedStart_;
            activeFaultWindows_ = 0;
        }
        res.faults = faultStats_;
        res.faults.faultsInjected = fault_->faultsInjected();
        res.faults.readFailures = fault_->readFailuresInjected();
        res.faults.degradedTime = degradedTime_;
        res.integrity = integrityStats_;
        panic_if(fault_->corruptionsInjected() != integrityStats_.injected,
                 "corruption accounting out of sync: injector %zu vs "
                 "session %zu",
                 fault_->corruptionsInjected(), integrityStats_.injected);
        panic_if(res.integrity.detected + res.integrity.escaped !=
                     res.integrity.injected,
                 "integrity invariant violated: %zu detected + %zu "
                 "escaped != %zu injected",
                 res.integrity.detected, res.integrity.escaped,
                 res.integrity.injected);
    }

    // Wall time is measured from when *this session* started: for the
    // historical standalone run startNow_ == 0 so this is bit-identical
    // to the old absolute-clock reading, while a fleet job admitted at
    // t > 0 reports its own duration, not the fleet clock.
    res.wallTime = windowEnd_ - startNow_;
    if (ckpt_)
        res.checkpoint = ckpt_->stats();

    // The sample ledger is always tracked; its conservation identity is
    // the chaos harness's backbone, so panic instead of misreporting.
    double cached = 0.0;
    for (const GroupState &gs : groups_)
        cached += gs.readySamples;
    elasticStats_.samplesPrepared = samplesPrepared_;
    elasticStats_.samplesConsumed = samplesConsumed_;
    elasticStats_.samplesCachedAtEnd = cached;
    elasticStats_.samplesDiscarded = samplesDiscarded_;
    const double ledger_gap =
        samplesPrepared_ - (samplesConsumed_ + cached + samplesDiscarded_);
    panic_if(std::fabs(ledger_gap) >
                 1e-6 * std::max(1.0, samplesPrepared_),
             "sample ledger violated: prepared %g != consumed %g + "
             "cached %g + discarded %g",
             samplesPrepared_, samplesConsumed_, cached,
             samplesDiscarded_);
    if (elastic_) {
        accrueCapacity();
        elasticStats_.events = elastic_->eventsDelivered();
        const Time total = eq_.now() - startNow_;
        elasticStats_.avgActiveFraction =
            total > 0.0 ? activeFractionIntegral_ / total : 1.0;
        elasticStats_.sloTargetSamplesPerSec =
            server_.cfg.elasticity.sloTargetSamplesPerSec;
    }
    res.elasticity = elasticStats_;

    if (ingest_) {
        // Close windows still open at run end, then check conservation:
        // every offered sample must be accounted for exactly once.
        const Time end = eq_.now();
        if (ingestEngaged_ != 0)
            ingestStats_.overloadTime += end - ingestOverloadStart_;
        if (ingestStalled_)
            ingestStats_.stallTime += end - ingestStallStart_;
        ingestStats_.samplesInFlightAtEnd =
            ingestBuffered_ + ingestWriting_;
        ingestStats_.samplesShed = ingestStats_.samplesThrottled +
                                   ingestStats_.samplesShedPolicy +
                                   ingestStats_.samplesOverflowDropped +
                                   ingestStats_.samplesAbandonedWrites;
        const double ingest_gap = ingestStats_.samplesArrived -
            (ingestStats_.samplesAdmitted + ingestStats_.samplesShed +
             ingestStats_.samplesInFlightAtEnd);
        panic_if(std::fabs(ingest_gap) >
                     1e-6 * std::max(1.0, ingestStats_.samplesArrived),
                 "ingest ledger violated: arrived %g != admitted %g + "
                 "shed %g + in-flight %g",
                 ingestStats_.samplesArrived,
                 ingestStats_.samplesAdmitted, ingestStats_.samplesShed,
                 ingestStats_.samplesInFlightAtEnd);
        res.ingest = ingestStats_;
    }

    result_ = std::move(res);
}

SessionResult
TrainingSession::collect()
{
    panic_if(!done_, "collect() before the session finished");
    // The trace writer is borrowed; drop it so a writer destroyed after
    // the run can never be reached through this session.
    trace_ = nullptr;
    return result_;
}

std::size_t
TrainingSession::lastDurableStep() const
{
    return ckpt_ ? ckpt_->lastDurableStep() : 0;
}

void
TrainingSession::kill()
{
    if (done_)
        return;
    panic_if(!started_, "kill() before start()");
    // The pending sync is the one scheduled callback without a done_
    // guard (it cannot fire after completion in a normal run); cancel
    // it so a dead session never advances its step count. Every other
    // stray callback lands in a guarded no-op once done_ is set.
    if (syncEv_.valid())
        eq_.cancel(syncEv_);
    // Everything volatile dies with the host, as in a fatal crash —
    // but terminally: cancel tracked chain flows and every per-group
    // compute/membership event so the dead job stops loading the
    // shared solver.
    for (auto &[cid, run] : chains_)
        if (run.flow != 0)
            net_.cancelFlow(run.flow);
    chains_.clear();
    for (GroupState &gs : groups_) {
        if (gs.computeEv.valid())
            eq_.cancel(gs.computeEv);
        if (gs.detachEv.valid())
            eq_.cancel(gs.detachEv);
        if (gs.joinEv.valid())
            eq_.cancel(gs.joinEv);
        gs.computing = false;
        // Buffered prepared samples are lost, not cached: the ledger
        // counts them discarded, keeping conservation exact.
        samplesDiscarded_ += gs.readySamples;
        gs.readySamples = 0.0;
        gs.inFlightSamples = 0.0;
    }
    windowEnd_ = eq_.now();
    done_ = true;
    // Termination is the caller's decision, not a completion: the
    // fleet already knows, so the completion hook must never fire.
    doneCb_ = nullptr;
    finalizeResult(/*partial=*/true);
    if (trace_)
        trace_->instant("session", "killed", windowEnd_, "fault");
}

SessionReport
TrainingSession::runReport(std::size_t warmup, std::size_t measure)
{
    return SessionReport::build(server_, run(warmup, measure));
}

} // namespace tb
