#include "trainbox/fleet.hh"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstring>
#include <sstream>

#include "common/logging.hh"
#include "common/math_util.hh"
#include "sim/schedule_source.hh"
#include "trainbox/train_initializer.hh"

namespace tb {

namespace {

std::string
fmt(const char *f, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, f);
    std::vsnprintf(buf, sizeof(buf), f, ap);
    va_end(ap);
    return std::string(buf);
}

/** Train-box slots a job's accelerators occupy (preset-independent). */
std::size_t
boxesFor(const FleetJobSpec &spec)
{
    return divCeil(std::max<std::size_t>(spec.config.numAccelerators, 1),
                   spec.config.box.accPerBox);
}

} // namespace

const char *
placementPolicyName(PlacementPolicy p)
{
    switch (p) {
    case PlacementPolicy::FirstFit:
        return "first_fit";
    case PlacementPolicy::Packed:
        return "packed";
    case PlacementPolicy::PrepPoolAware:
        return "pool_aware";
    }
    return "?";
}

bool
parsePlacementPolicy(const std::string &name, PlacementPolicy &out)
{
    if (name == "first_fit") {
        out = PlacementPolicy::FirstFit;
    } else if (name == "packed") {
        out = PlacementPolicy::Packed;
    } else if (name == "pool_aware") {
        out = PlacementPolicy::PrepPoolAware;
    } else {
        return false;
    }
    return true;
}

const char *
fleetJobStateName(FleetJobState s)
{
    switch (s) {
    case FleetJobState::Queued:
        return "queued";
    case FleetJobState::Running:
        return "running";
    case FleetJobState::Failed:
        return "failed";
    case FleetJobState::Requeued:
        return "requeued";
    case FleetJobState::Completed:
        return "completed";
    case FleetJobState::Abandoned:
        return "abandoned";
    }
    return "?";
}

std::string
FleetConfig::validate() const
{
    if (hosts.empty())
        return "no hosts configured";
    if (jobs.empty())
        return "empty job trace";
    if (horizon < 0.0)
        return fmt("negative horizon %g", horizon);

    std::size_t max_boxes = 0;
    for (const FleetHostSpec &h : hosts) {
        if (h.boxCapacity == 0)
            return fmt("host %s has zero capacity", h.name.c_str());
        max_boxes = std::max(max_boxes, h.boxCapacity);
    }

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const FleetJobSpec &spec = jobs[i];
        if (spec.name.empty())
            return fmt("job %zu has no name", i);
        if (spec.arrival < 0.0)
            return fmt("job %s arrives at %g < 0", spec.name.c_str(),
                       spec.arrival);
        if (spec.measureSteps == 0)
            return fmt("job %s has zero measured steps",
                       spec.name.c_str());
        for (std::size_t k = 0; k < i; ++k)
            if (jobs[k].name == spec.name)
                return fmt("duplicate job name %s", spec.name.c_str());
        const std::size_t need = boxesFor(spec);
        if (need > max_boxes)
            return fmt("job %s needs %zu boxes but the largest host "
                       "has %zu",
                       spec.name.c_str(), need, max_boxes);
    }

    if (!faults.enabled)
        return "";

    // --- retry policy ---------------------------------------------------
    constexpr std::size_t kMaxRetries = 64;
    if (faults.maxRetries > kMaxRetries)
        return fmt("faults.maxRetries %zu exceeds the cap %zu",
                   faults.maxRetries, kMaxRetries);
    if (faults.retryBackoffBase < 0.0)
        return fmt("faults.retryBackoffBase must be >= 0, got %g",
                   faults.retryBackoffBase);
    if (faults.retryBackoffFactor < 1.0)
        return fmt("faults.retryBackoffFactor must be >= 1, got %g",
                   faults.retryBackoffFactor);

    // --- seeded classes -------------------------------------------------
    struct NamedClass
    {
        const char *name;
        const FleetFaultClassConfig *cc;
    };
    const NamedClass classes[] = {
        {"hostOutage", &faults.hostOutage},
        {"boxLoss", &faults.boxLoss},
        {"poolPartition", &faults.poolPartition},
    };
    for (const NamedClass &nc : classes) {
        if (nc.cc->mtbf < 0.0)
            return fmt("faults.%s.mtbf must be >= 0, got %g", nc.name,
                       nc.cc->mtbf);
        if (nc.cc->mttr < 0.0)
            return fmt("faults.%s.mttr must be >= 0, got %g", nc.name,
                       nc.cc->mttr);
        if (nc.cc->mtbf > 0.0 && horizon <= 0.0)
            return fmt("faults.%s.mtbf %g needs a positive horizon "
                       "(seeded streams are enumerated over it)",
                       nc.name, nc.cc->mtbf);
    }
    if (faults.boxLoss.mtbf > 0.0 && faults.boxLossUnits == 0)
        return "faults.boxLossUnits must be >= 1 when boxLoss is active";
    if (faults.poolPartition.mtbf > 0.0 && faults.poolPartitionFpgas == 0)
        return "faults.poolPartitionFpgas must be >= 1 when "
               "poolPartition is active";

    // --- scripted schedule ----------------------------------------------
    for (std::size_t i = 0; i < faults.schedule.size(); ++i) {
        const FleetFaultEvent &ev = faults.schedule[i];
        if (ev.start < 0.0)
            return fmt("faults.schedule[%zu] starts at %g < 0", i,
                       ev.start);
        if (ev.duration < 0.0)
            return fmt("faults.schedule[%zu] has negative duration %g",
                       i, ev.duration);
        if (i > 0 && ev.start < faults.schedule[i - 1].start)
            return fmt("faults.schedule[%zu] starts at %g, before "
                       "schedule[%zu] at %g (must be sorted)",
                       i, ev.start, i - 1,
                       faults.schedule[i - 1].start);
        if (ev.kind != FleetFaultKind::PoolPartition &&
            ev.host >= hosts.size())
            return fmt("faults.schedule[%zu] targets host %zu but the "
                       "fleet has only %zu hosts",
                       i, ev.host, hosts.size());
        if (ev.kind != FleetFaultKind::HostOutage && ev.units == 0)
            return fmt("faults.schedule[%zu] (%s) has zero units", i,
                       fleetFaultKindName(ev.kind));
    }
    return "";
}

FleetSimulation::FleetSimulation(FleetConfig cfg)
    : cfg_(std::move(cfg))
{
    const std::string err = cfg_.validate();
    fatal_if(!err.empty(), "fleet: %s", err.c_str());

    for (const FleetHostSpec &h : cfg_.hosts) {
        Host host;
        host.spec = h;
        host.freeBoxes = h.boxCapacity;
        hosts_.push_back(std::move(host));
    }

    poolFree_ = cfg_.sharedPoolFpgas > 0
        ? static_cast<std::size_t>(cfg_.sharedPoolFpgas) : 0;

    jobs_.reserve(cfg_.jobs.size());
    for (std::size_t i = 0; i < cfg_.jobs.size(); ++i) {
        const FleetJobSpec &spec = cfg_.jobs[i];
        Job job;
        job.spec = spec;
        job.boxesNeeded = boxesFor(spec);
        job.result.job = spec.name;
        job.result.priority = spec.priority;
        job.result.arrival = spec.arrival;
        job.result.boxesUsed = job.boxesNeeded;
        jobs_.push_back(std::move(job));
    }
}

FleetSimulation::~FleetSimulation() = default;

std::size_t
FleetSimulation::poolRequest(const ServerConfig &cfg) const
{
    // The job's natural pool appetite: an explicit configured size wins;
    // otherwise the train initializer's plan (§V-A) sizes it.
    if (cfg.prepPoolFpgas >= 0)
        return static_cast<std::size_t>(cfg.prepPoolFpgas);
    return planPreparation(cfg).poolFpgas;
}

int
FleetSimulation::pickHost(const Job &job) const
{
    // available() excludes down hosts and slots fenced by open BoxLoss
    // windows; with fleet faults disabled it equals freeBoxes exactly.
    int best = -1;
    for (std::size_t h = 0; h < hosts_.size(); ++h) {
        if (hosts_[h].available() < job.boxesNeeded)
            continue;
        if (cfg_.policy == PlacementPolicy::FirstFit)
            return static_cast<int>(h);
        // Packed / PrepPoolAware: best-fit — the fullest host that
        // still fits, keeping large contiguous blocks free.
        if (best < 0 ||
            hosts_[h].available() <
                hosts_[static_cast<std::size_t>(best)].available())
            best = static_cast<int>(h);
    }
    return best;
}

bool
FleetSimulation::admit(std::size_t j, std::size_t host)
{
    Job &job = jobs_[j];
    ServerConfig config = job.spec.config;

    const std::size_t request = poolRequest(config);
    std::size_t granted = request;
    if (cfg_.sharedPoolFpgas >= 0) {
        granted = std::min(request, poolFree_);
        // Rewrite the config only when the grant actually cuts the
        // request: a full grant leaves the job's plan byte-identical
        // to a standalone run.
        if (granted != request)
            config.prepPoolFpgas = static_cast<int>(granted);
        poolFree_ -= granted;
        poolGranted_ += granted;
        checkPoolLedger();
    }

    job.result.host = hosts_[host].spec.name;
    if (job.attempts == 0) {
        job.result.started = core_.now();
        job.result.queueingDelay = core_.now() - job.spec.arrival;
    } else {
        // Re-placement after a failure: attribute the failure-to-
        // re-admission gap (backoff + any capacity wait).
        const Time gap = core_.now() - job.failedAt;
        job.result.replacementLatency += gap;
        replacementSum_ += gap;
        maxReplacement_ = std::max(maxReplacement_, gap);
        ++replacementCount_;
    }
    job.result.poolFpgasRequested = request;
    job.result.poolFpgasGranted = granted;
    job.result.poolConstrained = granted != request;
    job.result.admitted = true;
    job.result.state = FleetJobState::Running;

    hosts_[host].freeBoxes -= job.boxesNeeded;
    // Attempt 0 keeps the historical plain prefix (bit-identity with
    // PR 9 runs); retries get a distinct namespace so both attempts'
    // resources coexist on the shared registry. A retry restarts from
    // the job's last durable checkpoint: measured steps banked by
    // failed attempts are subtracted, so only the lost tail replays.
    const std::string prefix = job.attempts == 0
        ? job.spec.name + "."
        : job.spec.name + ".r" + std::to_string(job.attempts) + ".";
    const std::size_t measure = job.spec.measureSteps - job.measureDone;
    job.server = buildServer(config, &core_, prefix);
    job.session = std::make_unique<TrainingSession>(*job.server);
    job.session->onDone([this, j] { onJobDone(j); });
    job.session->start(job.spec.warmupSteps, measure);
    // A new job multiplies the live-event population; retune the
    // queue's tombstone-compaction threshold to match (behavior-neutral
    // — compaction never reorders live events).
    core_.autosizeCompaction();
    job.admitStamp = ++admitSeq_;
    ++job.attempts;
    job.running = true;
    job.waiting = false;
    return true;
}

void
FleetSimulation::tryAdmit()
{
    // Admission order: priority desc, then arrival, then trace index.
    // Re-sorted per round — the waiting set changes as jobs land.
    bool progress = true;
    while (progress) {
        progress = false;
        std::vector<std::size_t> order = waiting_;
        std::sort(order.begin(), order.end(),
                  [this](std::size_t a, std::size_t b) {
                      const FleetJobSpec &ja = jobs_[a].spec;
                      const FleetJobSpec &jb = jobs_[b].spec;
                      if (ja.priority != jb.priority)
                          return ja.priority > jb.priority;
                      if (ja.arrival != jb.arrival)
                          return ja.arrival < jb.arrival;
                      return a < b;
                  });
        for (std::size_t j : order) {
            Job &job = jobs_[j];
            const int host = pickHost(job);
            if (host < 0)
                continue;
            if (cfg_.policy == PlacementPolicy::PrepPoolAware &&
                cfg_.sharedPoolFpgas >= 0) {
                // Yield to a waiting job whose pool request fits whole:
                // a partial grant now would fragment the pool while a
                // clean grant is available.
                const std::size_t request = poolRequest(job.spec.config);
                if (request > poolFree_) {
                    bool betterFit = false;
                    for (std::size_t k : order) {
                        if (k == j || !jobs_[k].waiting)
                            continue;
                        const std::size_t rk =
                            poolRequest(jobs_[k].spec.config);
                        if (rk > 0 && rk <= poolFree_) {
                            betterFit = true;
                            break;
                        }
                    }
                    if (betterFit)
                        continue;
                }
            }
            admit(j, static_cast<std::size_t>(host));
            waiting_.erase(
                std::find(waiting_.begin(), waiting_.end(), j));
            progress = true;
        }
    }
}

void
FleetSimulation::onArrival(std::size_t j)
{
    jobs_[j].waiting = true;
    waiting_.push_back(j);
    tryAdmit();
}

void
FleetSimulation::onJobDone(std::size_t j)
{
    Job &job = jobs_[j];
    job.running = false;
    job.result.finished = core_.now();
    job.result.completed = true;
    job.result.state = FleetJobState::Completed;
    // Snapshot the report at the completion instant: the shared
    // utilization histograms keep advancing while other jobs run, and
    // post-done idle time must not dilute this job's averages.
    job.result.report =
        SessionReport::build(*job.server, job.session->collect());
    job.cumWall += job.result.report.wallTime();
    job.cumPreemptions += job.result.report.elasticity().preemptions;
    job.cumFaults += job.result.report.faults().faultsInjected;
    ++terminal_;

    // Release held capacity. The server itself stays alive: post-done
    // flows may still drain on the shared core (training_session.cc
    // guards make them no-ops).
    releaseCapacity(job);

    tryAdmit();
}

void
FleetSimulation::releaseCapacity(Job &job)
{
    for (Host &h : hosts_) {
        if (h.spec.name == job.result.host) {
            h.freeBoxes += job.boxesNeeded;
            break;
        }
    }
    if (cfg_.sharedPoolFpgas >= 0) {
        poolFree_ += job.result.poolFpgasGranted;
        poolGranted_ -= job.result.poolFpgasGranted;
        checkPoolLedger();
    }
}

void
FleetSimulation::checkPoolLedger() const
{
    if (cfg_.sharedPoolFpgas < 0)
        return;
    const std::size_t total =
        static_cast<std::size_t>(cfg_.sharedPoolFpgas);
    panic_if(poolGranted_ + poolFree_ + poolPartitioned_ != total,
             "pool grant ledger violated: granted %zu + free %zu + "
             "partitioned %zu != pool %zu",
             poolGranted_, poolFree_, poolPartitioned_, total);
}

void
FleetSimulation::freezeAttempt(std::size_t j)
{
    Job &job = jobs_[j];
    job.session->kill();
    // Snapshot the ledger-consistent partial report and fold the
    // attempt into the job's cumulative rollups — abnormal ends count
    // in fleet stats exactly like completions.
    job.result.report =
        SessionReport::build(*job.server, job.session->collect());
    job.cumWall += job.result.report.wallTime();
    job.cumPreemptions += job.result.report.elasticity().preemptions;
    job.cumFaults += job.result.report.faults().faultsInjected;
}

void
FleetSimulation::killJob(std::size_t j)
{
    Job &job = jobs_[j];
    panic_if(!job.running, "fleet: killJob on non-running job %s",
             job.spec.name.c_str());
    const Time now = core_.now();
    const std::size_t synced = job.session->stepsSynced();
    const std::size_t durable = job.session->lastDurableStep();
    // Remaining measured steps this attempt was running (its start()
    // argument) — banked progress from earlier failures is already off.
    const std::size_t attempt_measure =
        job.spec.measureSteps - job.measureDone;

    freezeAttempt(j);
    job.result.workLost += job.result.report.wallTime();
    job.result.stepsLost += synced > durable ? synced - durable : 0;
    // Bank the measured steps this attempt durably checkpointed: the
    // retry replays only from there (PR 3's restart machinery prices
    // the rollback; without checkpointing durable == 0 and the retry
    // starts from scratch). Strictly < attempt_measure — a fully
    // durable final step would have completed the job.
    const std::size_t banked =
        durable > job.spec.warmupSteps ? durable - job.spec.warmupSteps
                                       : 0;
    job.measureDone += std::min(banked, attempt_measure - 1);

    // The dead attempt's server/session must outlive it (stray flows
    // drain into guarded no-ops), but the job slot needs room for the
    // retry: retire the pair.
    retiredServers_.push_back(std::move(job.server));
    retiredSessions_.push_back(std::move(job.session));
    job.running = false;
    releaseCapacity(job);

    job.result.restarts += 1;
    job.failedAt = now;
    if (job.result.restarts > cfg_.faults.maxRetries) {
        job.result.state = FleetJobState::Abandoned;
        ++terminal_;
        return;
    }
    // Queued → ... → Failed → Requeued: exponential backoff, plus the
    // checkpoint restart latency when the job will actually restore.
    job.result.state = FleetJobState::Requeued;
    Time delay = cfg_.faults.retryBackoffBase *
        std::pow(cfg_.faults.retryBackoffFactor,
                 static_cast<double>(job.result.restarts - 1));
    if (job.spec.config.checkpoint.enabled)
        delay += job.spec.config.checkpoint.restartLatency;
    core_.events().scheduleIn(delay, [this, j] {
        jobs_[j].waiting = true;
        waiting_.push_back(j);
        tryAdmit();
    });
}

void
FleetSimulation::evictForLostBoxes(std::size_t host)
{
    Host &h = hosts_[host];
    // Fenced slots may overlap occupied ones: evict the most recently
    // admitted co-resident jobs (minimizing lost work) until the free
    // slots cover the fenced count. Each eviction releases capacity,
    // so the loop strictly progresses.
    while (h.freeBoxes < h.lostBoxes) {
        int victim = -1;
        std::uint64_t newest = 0;
        for (std::size_t j = 0; j < jobs_.size(); ++j) {
            const Job &job = jobs_[j];
            if (!job.running || job.result.host != h.spec.name)
                continue;
            if (victim < 0 || job.admitStamp > newest) {
                victim = static_cast<int>(j);
                newest = job.admitStamp;
            }
        }
        if (victim < 0)
            break;
        killJob(static_cast<std::size_t>(victim));
    }
}

void
FleetSimulation::onFleetFault(const FleetFaultEvent &ev, std::size_t idx)
{
    switch (ev.kind) {
    case FleetFaultKind::HostOutage: {
        Host &host = hosts_[ev.host];
        if (host.downDepth++ == 0)
            host.downSince = core_.now();
        // Failure detection: every co-resident session dies with the
        // host, and each killed job is requeued or abandoned on the
        // spot (its grant returns to the pool for immediate
        // re-lending).
        for (std::size_t j = 0; j < jobs_.size(); ++j)
            if (jobs_[j].running &&
                jobs_[j].result.host == host.spec.name)
                killJob(j);
        break;
    }
    case FleetFaultKind::BoxLoss: {
        Host &host = hosts_[ev.host];
        const std::size_t room = host.spec.boxCapacity - host.lostBoxes;
        const std::size_t applied = std::min(ev.units, room);
        faultApplied_[idx] = applied;
        host.lostBoxes += applied;
        if (!host.down())
            evictForLostBoxes(ev.host);
        break;
    }
    case FleetFaultKind::PoolPartition: {
        // The partition fences *free* FPGAs only: grants in use run on
        // the jobs' own fabric slices and ride out the window.
        if (cfg_.sharedPoolFpgas < 0)
            break;
        const std::size_t cut = std::min(ev.units, poolFree_);
        faultApplied_[idx] = cut;
        poolFree_ -= cut;
        poolPartitioned_ += cut;
        checkPoolLedger();
        break;
    }
    }
}

void
FleetSimulation::onFleetRepair(const FleetFaultEvent &ev, std::size_t idx)
{
    switch (ev.kind) {
    case FleetFaultKind::HostOutage: {
        Host &host = hosts_[ev.host];
        if (host.downDepth > 0 && --host.downDepth == 0) {
            host.downTime += core_.now() - host.downSince;
            tryAdmit();
        }
        break;
    }
    case FleetFaultKind::BoxLoss: {
        Host &host = hosts_[ev.host];
        host.lostBoxes -= std::min(host.lostBoxes, faultApplied_[idx]);
        tryAdmit();
        break;
    }
    case FleetFaultKind::PoolPartition: {
        if (cfg_.sharedPoolFpgas < 0)
            break;
        poolFree_ += faultApplied_[idx];
        poolPartitioned_ -= faultApplied_[idx];
        checkPoolLedger();
        tryAdmit();
        break;
    }
    }
}

bool
FleetSimulation::allDone() const
{
    return terminal_ == jobs_.size();
}

FleetReport
FleetSimulation::run()
{
    if (cfg_.overrideSolverMode)
        core_.fluid().setSolverMode(cfg_.solverMode);
    if (cfg_.parallelWorkers > 0)
        core_.fluid().setParallelWorkers(cfg_.parallelWorkers,
                                         /*minFlows=*/64);

    EventQueue &eq = core_.events();
    for (std::size_t j = 0; j < jobs_.size(); ++j)
        eq.schedule(jobs_[j].spec.arrival, [this, j] { onArrival(j); });
    if (cfg_.horizon > 0.0)
        eq.schedule(cfg_.horizon, [this] { horizonHit_ = true; });

    // Fleet fault injection: armed after arrivals/horizon so the
    // disabled path schedules zero events and every sequence number —
    // and therefore every pinned golden — stays bit-identical.
    if (cfg_.faults.enabled) {
        ScheduleTargets targets;
        targets.numHosts = hosts_.size();
        core_.addScheduleSource(
            std::make_unique<FleetFaultScheduleSource>(cfg_.faults),
            targets);
        fleetFaults_ = std::make_unique<FleetFaultInjector>(
            cfg_.faults, hosts_.size(), cfg_.horizon);
        faultApplied_.assign(fleetFaults_->events().size(), 0);
        fleetFaults_->arm(
            eq,
            [this](const FleetFaultEvent &ev, std::size_t i) {
                onFleetFault(ev, i);
            },
            [this](const FleetFaultEvent &ev, std::size_t i) {
                onFleetRepair(ev, i);
            });
    }

    // Injector streams self-rearm forever, so the queue never drains on
    // a disturbed run: stop on all-jobs-done (or the safety horizon).
    while (!allDone() && !horizonHit_ && eq.step()) {
    }
    panic_if(!allDone() && !horizonHit_,
             "fleet stalled: queue drained with %zu/%zu jobs terminal",
             terminal_, jobs_.size());

    // Freeze jobs cut off by the horizon: their ledger-consistent
    // partial reports enter the rollups, and the conservation ledger
    // counts them runningAtHorizon. Close still-open outage windows for
    // the host-down-time accounting.
    if (horizonHit_)
        for (std::size_t j = 0; j < jobs_.size(); ++j)
            if (jobs_[j].running) {
                freezeAttempt(j);
                jobs_[j].running = false;
            }
    for (Host &h : hosts_)
        if (h.down()) {
            h.downTime += core_.now() - h.downSince;
            h.downDepth = 0;
        }
    return buildReport();
}

FleetReport
FleetSimulation::buildReport()
{
    FleetReport r;
    r.policy = placementPolicyName(cfg_.policy);
    r.jobsTotal = jobs_.size();
    r.poolFpgasTotal = cfg_.sharedPoolFpgas > 0
        ? static_cast<std::size_t>(cfg_.sharedPoolFpgas) : 0;
    r.eventsExecuted = core_.events().numExecuted();

    double ratioSum = 0.0, ratioSqSum = 0.0;
    std::size_t nRatios = 0;
    std::vector<double> walls;
    Time delaySum = 0.0;
    std::size_t admitted = 0;
    std::size_t queuedAtEnd = 0;

    for (Job &job : jobs_) {
        const FleetJobResult &res = job.result;
        if (res.admitted) {
            ++admitted;
            delaySum += res.queueingDelay;
            r.maxQueueingDelay =
                std::max(r.maxQueueingDelay, res.queueingDelay);
            if (res.queueingDelay > 0.0)
                ++r.jobsQueued;
            r.poolFpgasRequestedTotal += res.poolFpgasRequested;
            r.poolFpgasGrantedTotal += res.poolFpgasGranted;
            if (res.poolConstrained)
                ++r.jobsPoolConstrained;
            if (res.poolFpgasRequested > 0) {
                const double ratio =
                    static_cast<double>(res.poolFpgasGranted) /
                    static_cast<double>(res.poolFpgasRequested);
                ratioSum += ratio;
                ratioSqSum += ratio * ratio;
                ++nRatios;
            }
            // Straggler/robustness rollups cover every *attempted*
            // job — failed and frozen attempts included via the
            // cumulative accumulators, so abnormal terminations are
            // never silently dropped from fleet stats. For a fully
            // completed fleet these equal the per-report sums exactly.
            walls.push_back(job.cumWall);
            r.preemptions += job.cumPreemptions;
            r.faultsInjected += job.cumFaults;
        }
        if (res.completed) {
            ++r.jobsCompleted;
            r.makespan = std::max(r.makespan, res.finished);
            r.aggregateThroughput += res.report.throughput();
        }
        switch (res.state) {
        case FleetJobState::Completed:
            break;
        case FleetJobState::Abandoned:
            ++r.jobsAbandoned;
            break;
        case FleetJobState::Running:
            ++r.jobsRunningAtHorizon;
            break;
        case FleetJobState::Queued:
        case FleetJobState::Requeued:
            ++queuedAtEnd;
            break;
        case FleetJobState::Failed:
            panic("fleet: job %s left in transient Failed state",
                  res.job.c_str());
        }
        r.restartsTotal += res.restarts;
        r.stepsLostTotal += res.stepsLost;
        r.workLostTime += res.workLost;
        r.jobs.push_back(std::move(job.result));
    }
    r.jobsQueuedAtHorizon = queuedAtEnd;

    // The fleet-wide conservation ledger: every submitted job is in
    // exactly one terminal-or-parked state when the run ends.
    panic_if(r.jobsCompleted + r.jobsAbandoned + r.jobsRunningAtHorizon +
                     queuedAtEnd !=
                 r.jobsTotal,
             "fleet job ledger violated: %zu completed + %zu abandoned "
             "+ %zu running + %zu queued != %zu submitted",
             r.jobsCompleted, r.jobsAbandoned, r.jobsRunningAtHorizon,
             queuedAtEnd, r.jobsTotal);

    if (replacementCount_ > 0)
        r.avgReplacementLatency =
            replacementSum_ / static_cast<double>(replacementCount_);
    r.maxReplacementLatency = maxReplacement_;
    r.fleetFaultsInjected = fleetFaults_ ? fleetFaults_->faultsInjected()
                                         : 0;
    for (const Host &h : hosts_)
        r.hostDownTime += h.downTime;
    std::size_t maxRestarts = 0;
    for (const FleetJobResult &res : r.jobs)
        maxRestarts = std::max(maxRestarts, res.restarts);
    r.retryHistogram.assign(maxRestarts + 1, 0);
    for (const FleetJobResult &res : r.jobs)
        ++r.retryHistogram[res.restarts];

    if (admitted > 0)
        r.avgQueueingDelay = delaySum / static_cast<double>(admitted);
    if (nRatios > 0 && ratioSqSum > 0.0)
        r.poolFairness = (ratioSum * ratioSum) /
            (static_cast<double>(nRatios) * ratioSqSum);
    if (!walls.empty()) {
        std::sort(walls.begin(), walls.end());
        const double median = walls[walls.size() / 2];
        if (median > 0.0)
            r.stragglerRatio = walls.back() / median;
    }
    return r;
}

FleetReport
runFleet(FleetConfig cfg)
{
    FleetSimulation fleet(std::move(cfg));
    return fleet.run();
}

// --- FleetReport exporters -----------------------------------------------

namespace {

/** JSON string escaping for names (conservative: quotes + backslash). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

std::string
FleetReport::toJson() const
{
    std::ostringstream out;
    char buf[256];
    out << "{\n";
    out << "  \"policy\": \"" << jsonEscape(policy) << "\",\n";
    std::snprintf(
        buf, sizeof(buf),
        "  \"jobs_total\": %zu,\n  \"jobs_completed\": %zu,\n"
        "  \"makespan_s\": %.6f,\n  \"aggregate_throughput\": %.6f,\n",
        jobsTotal, jobsCompleted, makespan, aggregateThroughput);
    out << buf;
    std::snprintf(
        buf, sizeof(buf),
        "  \"avg_queueing_delay_s\": %.6f,\n"
        "  \"max_queueing_delay_s\": %.6f,\n  \"jobs_queued\": %zu,\n",
        avgQueueingDelay, maxQueueingDelay, jobsQueued);
    out << buf;
    std::snprintf(
        buf, sizeof(buf),
        "  \"pool_fpgas_total\": %zu,\n"
        "  \"pool_fpgas_requested\": %zu,\n"
        "  \"pool_fpgas_granted\": %zu,\n"
        "  \"jobs_pool_constrained\": %zu,\n"
        "  \"pool_fairness\": %.6f,\n",
        poolFpgasTotal, poolFpgasRequestedTotal, poolFpgasGrantedTotal,
        jobsPoolConstrained, poolFairness);
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"straggler_ratio\": %.6f,\n"
                  "  \"preemptions\": %zu,\n"
                  "  \"faults_injected\": %zu,\n"
                  "  \"events_executed\": %llu,\n",
                  stragglerRatio, preemptions, faultsInjected,
                  static_cast<unsigned long long>(eventsExecuted));
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"jobs_abandoned\": %zu,\n"
                  "  \"jobs_running_at_horizon\": %zu,\n"
                  "  \"jobs_queued_at_horizon\": %zu,\n"
                  "  \"restarts_total\": %zu,\n"
                  "  \"steps_lost_total\": %zu,\n",
                  jobsAbandoned, jobsRunningAtHorizon,
                  jobsQueuedAtHorizon, restartsTotal, stepsLostTotal);
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"work_lost_s\": %.6f,\n"
                  "  \"avg_replacement_latency_s\": %.6f,\n"
                  "  \"max_replacement_latency_s\": %.6f,\n"
                  "  \"fleet_faults_injected\": %zu,\n"
                  "  \"host_down_time_s\": %.6f,\n",
                  workLostTime, avgReplacementLatency,
                  maxReplacementLatency, fleetFaultsInjected,
                  hostDownTime);
    out << buf;
    out << "  \"retry_histogram\": [";
    for (std::size_t i = 0; i < retryHistogram.size(); ++i)
        out << (i ? ", " : "") << retryHistogram[i];
    out << "],\n";
    out << "  \"jobs\": [\n";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const FleetJobResult &j = jobs[i];
        out << "    {\"name\": \"" << jsonEscape(j.job) << "\", "
            << "\"host\": \"" << jsonEscape(j.host) << "\", ";
        std::snprintf(
            buf, sizeof(buf),
            "\"priority\": %d, \"arrival_s\": %.6f, "
            "\"started_s\": %.6f, \"finished_s\": %.6f, "
            "\"queueing_delay_s\": %.6f, \"boxes\": %zu, ",
            j.priority, j.arrival, j.started, j.finished,
            j.queueingDelay, j.boxesUsed);
        out << buf;
        std::snprintf(
            buf, sizeof(buf),
            "\"pool_fpgas_requested\": %zu, \"pool_fpgas_granted\": %zu, "
            "\"pool_constrained\": %s, \"admitted\": %s, "
            "\"completed\": %s, \"throughput\": %.6f, "
            "\"wall_time_s\": %.6f, ",
            j.poolFpgasRequested, j.poolFpgasGranted,
            j.poolConstrained ? "true" : "false",
            j.admitted ? "true" : "false",
            j.completed ? "true" : "false",
            j.completed ? j.report.throughput() : 0.0,
            j.completed ? j.report.wallTime() : 0.0);
        out << buf;
        std::snprintf(
            buf, sizeof(buf),
            "\"state\": \"%s\", \"restarts\": %zu, "
            "\"steps_lost\": %zu, \"work_lost_s\": %.6f, "
            "\"replacement_latency_s\": %.6f}%s\n",
            fleetJobStateName(j.state), j.restarts, j.stepsLost,
            j.workLost, j.replacementLatency,
            i + 1 < jobs.size() ? "," : "");
        out << buf;
    }
    out << "  ]\n";
    out << "}\n";
    return out.str();
}

std::string
FleetReport::toCsv() const
{
    std::ostringstream out;
    char buf[192];
    out << "section,key,value\n";
    out << "fleet,policy," << policy << "\n";
    std::snprintf(buf, sizeof(buf),
                  "fleet,jobs_total,%zu\nfleet,jobs_completed,%zu\n"
                  "fleet,makespan_s,%.6f\n"
                  "fleet,aggregate_throughput,%.6f\n"
                  "fleet,avg_queueing_delay_s,%.6f\n"
                  "fleet,max_queueing_delay_s,%.6f\n",
                  jobsTotal, jobsCompleted, makespan,
                  aggregateThroughput, avgQueueingDelay,
                  maxQueueingDelay);
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  "fleet,pool_fpgas_total,%zu\n"
                  "fleet,pool_fpgas_requested,%zu\n"
                  "fleet,pool_fpgas_granted,%zu\n"
                  "fleet,pool_fairness,%.6f\n"
                  "fleet,straggler_ratio,%.6f\n"
                  "fleet,preemptions,%zu\n"
                  "fleet,events_executed,%llu\n",
                  poolFpgasTotal, poolFpgasRequestedTotal,
                  poolFpgasGrantedTotal, poolFairness, stragglerRatio,
                  preemptions,
                  static_cast<unsigned long long>(eventsExecuted));
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  "fleet,jobs_abandoned,%zu\n"
                  "fleet,jobs_running_at_horizon,%zu\n"
                  "fleet,jobs_queued_at_horizon,%zu\n"
                  "fleet,restarts_total,%zu\n"
                  "fleet,steps_lost_total,%zu\n"
                  "fleet,work_lost_s,%.6f\n",
                  jobsAbandoned, jobsRunningAtHorizon,
                  jobsQueuedAtHorizon, restartsTotal, stepsLostTotal,
                  workLostTime);
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  "fleet,avg_replacement_latency_s,%.6f\n"
                  "fleet,max_replacement_latency_s,%.6f\n"
                  "fleet,fleet_faults_injected,%zu\n"
                  "fleet,host_down_time_s,%.6f\n",
                  avgReplacementLatency, maxReplacementLatency,
                  fleetFaultsInjected, hostDownTime);
    out << buf;
    for (const FleetJobResult &j : jobs) {
        const std::string sec = "job." + j.job;
        out << sec << ",host," << j.host << "\n";
        std::snprintf(buf, sizeof(buf),
                      "%s,arrival_s,%.6f\n%s,queueing_delay_s,%.6f\n"
                      "%s,pool_fpgas_requested,%zu\n"
                      "%s,pool_fpgas_granted,%zu\n"
                      "%s,completed,%d\n",
                      sec.c_str(), j.arrival, sec.c_str(),
                      j.queueingDelay, sec.c_str(), j.poolFpgasRequested,
                      sec.c_str(), j.poolFpgasGranted, sec.c_str(),
                      j.completed ? 1 : 0);
        out << buf;
        std::snprintf(buf, sizeof(buf),
                      "%s,state,%s\n%s,restarts,%zu\n",
                      sec.c_str(), fleetJobStateName(j.state),
                      sec.c_str(), j.restarts);
        out << buf;
        if (j.completed) {
            std::snprintf(buf, sizeof(buf),
                          "%s,throughput,%.6f\n%s,wall_time_s,%.6f\n",
                          sec.c_str(), j.report.throughput(),
                          sec.c_str(), j.report.wallTime());
            out << buf;
        }
    }
    return out.str();
}

void
FleetReport::print(std::FILE *out) const
{
    std::fprintf(out, "=== Fleet report (%s) ===\n", policy.c_str());
    std::fprintf(out,
                 "jobs: %zu/%zu completed   makespan: %.3f s   "
                 "aggregate throughput: %.1f samples/s\n",
                 jobsCompleted, jobsTotal, makespan,
                 aggregateThroughput);
    std::fprintf(out,
                 "queueing: avg %.3f s, max %.3f s (%zu jobs waited)\n",
                 avgQueueingDelay, maxQueueingDelay, jobsQueued);
    if (poolFpgasTotal > 0)
        std::fprintf(out,
                     "prep pool: %zu FPGAs, %zu requested, %zu granted "
                     "(%zu jobs constrained), fairness %.3f\n",
                     poolFpgasTotal, poolFpgasRequestedTotal,
                     poolFpgasGrantedTotal, jobsPoolConstrained,
                     poolFairness);
    std::fprintf(out,
                 "straggler ratio: %.2f   preemptions: %zu   faults: "
                 "%zu   events: %llu\n",
                 stragglerRatio, preemptions, faultsInjected,
                 static_cast<unsigned long long>(eventsExecuted));
    if (fleetFaultsInjected > 0 || restartsTotal > 0 ||
        jobsAbandoned > 0)
        std::fprintf(out,
                     "fleet faults: %zu   restarts: %zu   abandoned: "
                     "%zu   work lost: %.3f s   steps lost: %zu   host "
                     "down: %.3f s   re-place avg/max: %.3f/%.3f s\n",
                     fleetFaultsInjected, restartsTotal, jobsAbandoned,
                     workLostTime, stepsLostTotal, hostDownTime,
                     avgReplacementLatency, maxReplacementLatency);
    std::fprintf(out, "%-12s %-10s %4s %10s %10s %10s %6s %6s %12s\n",
                 "job", "host", "prio", "arrival", "queued_s",
                 "wall_s", "pool", "grant", "samples/s");
    for (const FleetJobResult &j : jobs) {
        char note[48];
        if (j.completed && j.restarts > 0)
            std::snprintf(note, sizeof(note), "  (%zu restarts)",
                          j.restarts);
        else if (!j.completed)
            std::snprintf(note, sizeof(note), "  (%s)",
                          fleetJobStateName(j.state));
        else
            note[0] = '\0';
        std::fprintf(
            out, "%-12s %-10s %4d %10.3f %10.3f %10.3f %6zu %6zu %12.1f%s\n",
            j.job.c_str(), j.admitted ? j.host.c_str() : "-", j.priority,
            j.arrival, j.queueingDelay,
            j.completed ? j.report.wallTime() : 0.0,
            j.poolFpgasRequested, j.poolFpgasGranted,
            j.completed ? j.report.throughput() : 0.0,
            note);
    }
}

} // namespace tb
