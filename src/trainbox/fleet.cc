#include "trainbox/fleet.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "common/logging.hh"
#include "common/math_util.hh"
#include "trainbox/train_initializer.hh"

namespace tb {

const char *
placementPolicyName(PlacementPolicy p)
{
    switch (p) {
    case PlacementPolicy::FirstFit:
        return "first_fit";
    case PlacementPolicy::Packed:
        return "packed";
    case PlacementPolicy::PrepPoolAware:
        return "pool_aware";
    }
    return "?";
}

bool
parsePlacementPolicy(const std::string &name, PlacementPolicy &out)
{
    if (name == "first_fit") {
        out = PlacementPolicy::FirstFit;
    } else if (name == "packed") {
        out = PlacementPolicy::Packed;
    } else if (name == "pool_aware") {
        out = PlacementPolicy::PrepPoolAware;
    } else {
        return false;
    }
    return true;
}

FleetSimulation::FleetSimulation(FleetConfig cfg)
    : cfg_(std::move(cfg))
{
    fatal_if(cfg_.hosts.empty(), "fleet: no hosts configured");
    fatal_if(cfg_.jobs.empty(), "fleet: empty job trace");
    fatal_if(cfg_.horizon < 0.0, "fleet: negative horizon %g",
             cfg_.horizon);

    std::size_t maxBoxes = 0;
    for (const FleetHostSpec &h : cfg_.hosts) {
        fatal_if(h.boxCapacity == 0, "fleet: host %s has zero capacity",
                 h.name.c_str());
        hosts_.push_back({h, h.boxCapacity});
        maxBoxes = std::max(maxBoxes, h.boxCapacity);
    }

    poolFree_ = cfg_.sharedPoolFpgas > 0
        ? static_cast<std::size_t>(cfg_.sharedPoolFpgas) : 0;

    jobs_.reserve(cfg_.jobs.size());
    for (std::size_t i = 0; i < cfg_.jobs.size(); ++i) {
        const FleetJobSpec &spec = cfg_.jobs[i];
        fatal_if(spec.name.empty(), "fleet: job %zu has no name", i);
        fatal_if(spec.arrival < 0.0, "fleet: job %s arrives at %g < 0",
                 spec.name.c_str(), spec.arrival);
        fatal_if(spec.measureSteps == 0,
                 "fleet: job %s has zero measured steps",
                 spec.name.c_str());
        for (std::size_t k = 0; k < i; ++k)
            fatal_if(cfg_.jobs[k].name == spec.name,
                     "fleet: duplicate job name %s", spec.name.c_str());

        Job job;
        job.spec = spec;
        // Physical train-box slots the job's accelerators occupy,
        // preset-independent (central presets still rack their devices
        // in boxes).
        job.boxesNeeded = divCeil(
            std::max<std::size_t>(spec.config.numAccelerators, 1),
            spec.config.box.accPerBox);
        fatal_if(job.boxesNeeded > maxBoxes,
                 "fleet: job %s needs %zu boxes but the largest host "
                 "has %zu",
                 spec.name.c_str(), job.boxesNeeded, maxBoxes);
        job.result.job = spec.name;
        job.result.priority = spec.priority;
        job.result.arrival = spec.arrival;
        job.result.boxesUsed = job.boxesNeeded;
        jobs_.push_back(std::move(job));
    }
}

FleetSimulation::~FleetSimulation() = default;

std::size_t
FleetSimulation::poolRequest(const ServerConfig &cfg) const
{
    // The job's natural pool appetite: an explicit configured size wins;
    // otherwise the train initializer's plan (§V-A) sizes it.
    if (cfg.prepPoolFpgas >= 0)
        return static_cast<std::size_t>(cfg.prepPoolFpgas);
    return planPreparation(cfg).poolFpgas;
}

int
FleetSimulation::pickHost(const Job &job) const
{
    int best = -1;
    for (std::size_t h = 0; h < hosts_.size(); ++h) {
        if (hosts_[h].freeBoxes < job.boxesNeeded)
            continue;
        if (cfg_.policy == PlacementPolicy::FirstFit)
            return static_cast<int>(h);
        // Packed / PrepPoolAware: best-fit — the fullest host that
        // still fits, keeping large contiguous blocks free.
        if (best < 0 ||
            hosts_[h].freeBoxes <
                hosts_[static_cast<std::size_t>(best)].freeBoxes)
            best = static_cast<int>(h);
    }
    return best;
}

bool
FleetSimulation::admit(std::size_t j, std::size_t host)
{
    Job &job = jobs_[j];
    ServerConfig config = job.spec.config;

    const std::size_t request = poolRequest(config);
    std::size_t granted = request;
    if (cfg_.sharedPoolFpgas >= 0) {
        granted = std::min(request, poolFree_);
        // Rewrite the config only when the grant actually cuts the
        // request: a full grant leaves the job's plan byte-identical
        // to a standalone run.
        if (granted != request)
            config.prepPoolFpgas = static_cast<int>(granted);
        poolFree_ -= granted;
    }

    job.result.host = hosts_[host].spec.name;
    job.result.started = core_.now();
    job.result.queueingDelay = core_.now() - job.spec.arrival;
    job.result.poolFpgasRequested = request;
    job.result.poolFpgasGranted = granted;
    job.result.poolConstrained = granted != request;
    job.result.admitted = true;

    hosts_[host].freeBoxes -= job.boxesNeeded;
    job.server = buildServer(config, &core_, job.spec.name + ".");
    job.session = std::make_unique<TrainingSession>(*job.server);
    job.session->onDone([this, j] { onJobDone(j); });
    job.session->start(job.spec.warmupSteps, job.spec.measureSteps);
    // A new job multiplies the live-event population; retune the
    // queue's tombstone-compaction threshold to match (behavior-neutral
    // — compaction never reorders live events).
    core_.autosizeCompaction();
    job.running = true;
    job.waiting = false;
    return true;
}

void
FleetSimulation::tryAdmit()
{
    // Admission order: priority desc, then arrival, then trace index.
    // Re-sorted per round — the waiting set changes as jobs land.
    bool progress = true;
    while (progress) {
        progress = false;
        std::vector<std::size_t> order = waiting_;
        std::sort(order.begin(), order.end(),
                  [this](std::size_t a, std::size_t b) {
                      const FleetJobSpec &ja = jobs_[a].spec;
                      const FleetJobSpec &jb = jobs_[b].spec;
                      if (ja.priority != jb.priority)
                          return ja.priority > jb.priority;
                      if (ja.arrival != jb.arrival)
                          return ja.arrival < jb.arrival;
                      return a < b;
                  });
        for (std::size_t j : order) {
            Job &job = jobs_[j];
            const int host = pickHost(job);
            if (host < 0)
                continue;
            if (cfg_.policy == PlacementPolicy::PrepPoolAware &&
                cfg_.sharedPoolFpgas >= 0) {
                // Yield to a waiting job whose pool request fits whole:
                // a partial grant now would fragment the pool while a
                // clean grant is available.
                const std::size_t request = poolRequest(job.spec.config);
                if (request > poolFree_) {
                    bool betterFit = false;
                    for (std::size_t k : order) {
                        if (k == j || !jobs_[k].waiting)
                            continue;
                        const std::size_t rk =
                            poolRequest(jobs_[k].spec.config);
                        if (rk > 0 && rk <= poolFree_) {
                            betterFit = true;
                            break;
                        }
                    }
                    if (betterFit)
                        continue;
                }
            }
            admit(j, static_cast<std::size_t>(host));
            waiting_.erase(
                std::find(waiting_.begin(), waiting_.end(), j));
            progress = true;
        }
    }
}

void
FleetSimulation::onArrival(std::size_t j)
{
    jobs_[j].waiting = true;
    waiting_.push_back(j);
    tryAdmit();
}

void
FleetSimulation::onJobDone(std::size_t j)
{
    Job &job = jobs_[j];
    job.running = false;
    job.result.finished = core_.now();
    job.result.completed = true;
    // Snapshot the report at the completion instant: the shared
    // utilization histograms keep advancing while other jobs run, and
    // post-done idle time must not dilute this job's averages.
    job.result.report =
        SessionReport::build(*job.server, job.session->collect());
    ++finished_;

    // Release held capacity. The server itself stays alive: post-done
    // flows may still drain on the shared core (training_session.cc
    // guards make them no-ops).
    for (Host &h : hosts_) {
        if (h.spec.name == job.result.host) {
            h.freeBoxes += job.boxesNeeded;
            break;
        }
    }
    if (cfg_.sharedPoolFpgas >= 0)
        poolFree_ += job.result.poolFpgasGranted;

    tryAdmit();
}

bool
FleetSimulation::allDone() const
{
    return finished_ == jobs_.size();
}

FleetReport
FleetSimulation::run()
{
    if (cfg_.overrideSolverMode)
        core_.fluid().setSolverMode(cfg_.solverMode);
    if (cfg_.parallelWorkers > 0)
        core_.fluid().setParallelWorkers(cfg_.parallelWorkers,
                                         /*minFlows=*/64);

    EventQueue &eq = core_.events();
    for (std::size_t j = 0; j < jobs_.size(); ++j)
        eq.schedule(jobs_[j].spec.arrival, [this, j] { onArrival(j); });
    if (cfg_.horizon > 0.0)
        eq.schedule(cfg_.horizon, [this] { horizonHit_ = true; });

    // Injector streams self-rearm forever, so the queue never drains on
    // a disturbed run: stop on all-jobs-done (or the safety horizon).
    while (!allDone() && !horizonHit_ && eq.step()) {
    }
    panic_if(!allDone() && !horizonHit_,
             "fleet stalled: queue drained with %zu/%zu jobs finished",
             finished_, jobs_.size());
    return buildReport();
}

FleetReport
FleetSimulation::buildReport()
{
    FleetReport r;
    r.policy = placementPolicyName(cfg_.policy);
    r.jobsTotal = jobs_.size();
    r.poolFpgasTotal = cfg_.sharedPoolFpgas > 0
        ? static_cast<std::size_t>(cfg_.sharedPoolFpgas) : 0;
    r.eventsExecuted = core_.events().numExecuted();

    double ratioSum = 0.0, ratioSqSum = 0.0;
    std::size_t nRatios = 0;
    std::vector<double> walls;
    Time delaySum = 0.0;
    std::size_t admitted = 0;

    for (Job &job : jobs_) {
        const FleetJobResult &res = job.result;
        if (res.admitted) {
            ++admitted;
            delaySum += res.queueingDelay;
            r.maxQueueingDelay =
                std::max(r.maxQueueingDelay, res.queueingDelay);
            if (res.queueingDelay > 0.0)
                ++r.jobsQueued;
            r.poolFpgasRequestedTotal += res.poolFpgasRequested;
            r.poolFpgasGrantedTotal += res.poolFpgasGranted;
            if (res.poolConstrained)
                ++r.jobsPoolConstrained;
            if (res.poolFpgasRequested > 0) {
                const double ratio =
                    static_cast<double>(res.poolFpgasGranted) /
                    static_cast<double>(res.poolFpgasRequested);
                ratioSum += ratio;
                ratioSqSum += ratio * ratio;
                ++nRatios;
            }
        }
        if (res.completed) {
            ++r.jobsCompleted;
            r.makespan = std::max(r.makespan, res.finished);
            r.aggregateThroughput += res.report.throughput();
            walls.push_back(res.report.wallTime());
            r.preemptions += res.report.elasticity().preemptions;
            r.faultsInjected += res.report.faults().faultsInjected;
        }
        r.jobs.push_back(std::move(job.result));
    }

    if (admitted > 0)
        r.avgQueueingDelay = delaySum / static_cast<double>(admitted);
    if (nRatios > 0 && ratioSqSum > 0.0)
        r.poolFairness = (ratioSum * ratioSum) /
            (static_cast<double>(nRatios) * ratioSqSum);
    if (!walls.empty()) {
        std::sort(walls.begin(), walls.end());
        const double median = walls[walls.size() / 2];
        if (median > 0.0)
            r.stragglerRatio = walls.back() / median;
    }
    return r;
}

FleetReport
runFleet(FleetConfig cfg)
{
    FleetSimulation fleet(std::move(cfg));
    return fleet.run();
}

// --- FleetReport exporters -----------------------------------------------

namespace {

/** JSON string escaping for names (conservative: quotes + backslash). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

std::string
FleetReport::toJson() const
{
    std::ostringstream out;
    char buf[256];
    out << "{\n";
    out << "  \"policy\": \"" << jsonEscape(policy) << "\",\n";
    std::snprintf(
        buf, sizeof(buf),
        "  \"jobs_total\": %zu,\n  \"jobs_completed\": %zu,\n"
        "  \"makespan_s\": %.6f,\n  \"aggregate_throughput\": %.6f,\n",
        jobsTotal, jobsCompleted, makespan, aggregateThroughput);
    out << buf;
    std::snprintf(
        buf, sizeof(buf),
        "  \"avg_queueing_delay_s\": %.6f,\n"
        "  \"max_queueing_delay_s\": %.6f,\n  \"jobs_queued\": %zu,\n",
        avgQueueingDelay, maxQueueingDelay, jobsQueued);
    out << buf;
    std::snprintf(
        buf, sizeof(buf),
        "  \"pool_fpgas_total\": %zu,\n"
        "  \"pool_fpgas_requested\": %zu,\n"
        "  \"pool_fpgas_granted\": %zu,\n"
        "  \"jobs_pool_constrained\": %zu,\n"
        "  \"pool_fairness\": %.6f,\n",
        poolFpgasTotal, poolFpgasRequestedTotal, poolFpgasGrantedTotal,
        jobsPoolConstrained, poolFairness);
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  "  \"straggler_ratio\": %.6f,\n"
                  "  \"preemptions\": %zu,\n"
                  "  \"faults_injected\": %zu,\n"
                  "  \"events_executed\": %llu,\n",
                  stragglerRatio, preemptions, faultsInjected,
                  static_cast<unsigned long long>(eventsExecuted));
    out << buf;
    out << "  \"jobs\": [\n";
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const FleetJobResult &j = jobs[i];
        out << "    {\"name\": \"" << jsonEscape(j.job) << "\", "
            << "\"host\": \"" << jsonEscape(j.host) << "\", ";
        std::snprintf(
            buf, sizeof(buf),
            "\"priority\": %d, \"arrival_s\": %.6f, "
            "\"started_s\": %.6f, \"finished_s\": %.6f, "
            "\"queueing_delay_s\": %.6f, \"boxes\": %zu, ",
            j.priority, j.arrival, j.started, j.finished,
            j.queueingDelay, j.boxesUsed);
        out << buf;
        std::snprintf(
            buf, sizeof(buf),
            "\"pool_fpgas_requested\": %zu, \"pool_fpgas_granted\": %zu, "
            "\"pool_constrained\": %s, \"admitted\": %s, "
            "\"completed\": %s, \"throughput\": %.6f, "
            "\"wall_time_s\": %.6f}%s\n",
            j.poolFpgasRequested, j.poolFpgasGranted,
            j.poolConstrained ? "true" : "false",
            j.admitted ? "true" : "false",
            j.completed ? "true" : "false",
            j.completed ? j.report.throughput() : 0.0,
            j.completed ? j.report.wallTime() : 0.0,
            i + 1 < jobs.size() ? "," : "");
        out << buf;
    }
    out << "  ]\n";
    out << "}\n";
    return out.str();
}

std::string
FleetReport::toCsv() const
{
    std::ostringstream out;
    char buf[192];
    out << "section,key,value\n";
    out << "fleet,policy," << policy << "\n";
    std::snprintf(buf, sizeof(buf),
                  "fleet,jobs_total,%zu\nfleet,jobs_completed,%zu\n"
                  "fleet,makespan_s,%.6f\n"
                  "fleet,aggregate_throughput,%.6f\n"
                  "fleet,avg_queueing_delay_s,%.6f\n"
                  "fleet,max_queueing_delay_s,%.6f\n",
                  jobsTotal, jobsCompleted, makespan,
                  aggregateThroughput, avgQueueingDelay,
                  maxQueueingDelay);
    out << buf;
    std::snprintf(buf, sizeof(buf),
                  "fleet,pool_fpgas_total,%zu\n"
                  "fleet,pool_fpgas_requested,%zu\n"
                  "fleet,pool_fpgas_granted,%zu\n"
                  "fleet,pool_fairness,%.6f\n"
                  "fleet,straggler_ratio,%.6f\n"
                  "fleet,preemptions,%zu\n"
                  "fleet,events_executed,%llu\n",
                  poolFpgasTotal, poolFpgasRequestedTotal,
                  poolFpgasGrantedTotal, poolFairness, stragglerRatio,
                  preemptions,
                  static_cast<unsigned long long>(eventsExecuted));
    out << buf;
    for (const FleetJobResult &j : jobs) {
        const std::string sec = "job." + j.job;
        out << sec << ",host," << j.host << "\n";
        std::snprintf(buf, sizeof(buf),
                      "%s,arrival_s,%.6f\n%s,queueing_delay_s,%.6f\n"
                      "%s,pool_fpgas_requested,%zu\n"
                      "%s,pool_fpgas_granted,%zu\n"
                      "%s,completed,%d\n",
                      sec.c_str(), j.arrival, sec.c_str(),
                      j.queueingDelay, sec.c_str(), j.poolFpgasRequested,
                      sec.c_str(), j.poolFpgasGranted, sec.c_str(),
                      j.completed ? 1 : 0);
        out << buf;
        if (j.completed) {
            std::snprintf(buf, sizeof(buf),
                          "%s,throughput,%.6f\n%s,wall_time_s,%.6f\n",
                          sec.c_str(), j.report.throughput(),
                          sec.c_str(), j.report.wallTime());
            out << buf;
        }
    }
    return out.str();
}

void
FleetReport::print(std::FILE *out) const
{
    std::fprintf(out, "=== Fleet report (%s) ===\n", policy.c_str());
    std::fprintf(out,
                 "jobs: %zu/%zu completed   makespan: %.3f s   "
                 "aggregate throughput: %.1f samples/s\n",
                 jobsCompleted, jobsTotal, makespan,
                 aggregateThroughput);
    std::fprintf(out,
                 "queueing: avg %.3f s, max %.3f s (%zu jobs waited)\n",
                 avgQueueingDelay, maxQueueingDelay, jobsQueued);
    if (poolFpgasTotal > 0)
        std::fprintf(out,
                     "prep pool: %zu FPGAs, %zu requested, %zu granted "
                     "(%zu jobs constrained), fairness %.3f\n",
                     poolFpgasTotal, poolFpgasRequestedTotal,
                     poolFpgasGrantedTotal, jobsPoolConstrained,
                     poolFairness);
    std::fprintf(out,
                 "straggler ratio: %.2f   preemptions: %zu   faults: "
                 "%zu   events: %llu\n",
                 stragglerRatio, preemptions, faultsInjected,
                 static_cast<unsigned long long>(eventsExecuted));
    std::fprintf(out, "%-12s %-10s %4s %10s %10s %10s %6s %6s %12s\n",
                 "job", "host", "prio", "arrival", "queued_s",
                 "wall_s", "pool", "grant", "samples/s");
    for (const FleetJobResult &j : jobs) {
        std::fprintf(
            out, "%-12s %-10s %4d %10.3f %10.3f %10.3f %6zu %6zu %12.1f%s\n",
            j.job.c_str(), j.admitted ? j.host.c_str() : "-", j.priority,
            j.arrival, j.queueingDelay,
            j.completed ? j.report.wallTime() : 0.0,
            j.poolFpgasRequested, j.poolFpgasGranted,
            j.completed ? j.report.throughput() : 0.0,
            j.completed ? "" : "  (incomplete)");
    }
}

} // namespace tb
