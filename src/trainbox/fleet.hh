/**
 * @file
 * Fleet-scale multi-job simulation (§V-D, dynamic counterpart of the
 * static rack planner in multi_job.hh).
 *
 * A FleetSimulation runs N training jobs on one shared SimulationCore:
 * jobs arrive over a trace, a placement policy binds each to a logical
 * host with free train-box capacity, and admissions arbitrate the
 * fleet's shared Ethernet prep pool — the §V-C disaggregated FPGAs —
 * across jobs. Every admitted job builds its own fluid server under a
 * unique resource prefix, so jobs contend for the pool at the grant
 * level (integer FPGAs, held until the job finishes) while their fluid
 * networks stay disjoint; cross-job *bandwidth* interference inside the
 * pool fabric is out of scope here and covered by the per-job offload
 * stage templates.
 *
 * Exactness contract: a one-job fleet with capacity to spare, an
 * uncapped pool, and arrival 0 replays the bare
 * TrainingSession::run() event sequence bit-for-bit — the only extra
 * event is the arrival at t = 0, which shifts every sequence number by
 * one and changes no relative order. tests/test_fleet.cc pins this
 * against the chaos-harness goldens.
 *
 * See docs/FLEET.md for the placement policies, the pool-grant
 * semantics, and the FleetReport field reference.
 */

#ifndef TRAINBOX_TRAINBOX_FLEET_HH
#define TRAINBOX_TRAINBOX_FLEET_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sim/fault_injector.hh"
#include "sim/simulation_core.hh"
#include "trainbox/report.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/server_config.hh"
#include "trainbox/training_session.hh"

namespace tb {

/** How waiting jobs are bound to hosts (docs/FLEET.md). */
enum class PlacementPolicy
{
    /** First host (spec order) with enough free box capacity. */
    FirstFit,

    /**
     * Topology-aware packing: the *fullest* host that still fits
     * (best-fit), keeping large contiguous box blocks free for big
     * jobs.
     */
    Packed,

    /**
     * Packed, plus pool-aware admission ordering: a job whose pool
     * request cannot be met in full yields (within one admission
     * round) to a waiting job whose request fits the remaining pool,
     * avoiding fragmented partial grants when whole grants are
     * available.
     */
    PrepPoolAware,
};

const char *placementPolicyName(PlacementPolicy p);

/** Parse "first_fit" / "packed" / "pool_aware"; false on no match. */
bool parsePlacementPolicy(const std::string &name, PlacementPolicy &out);

/** One logical host: a rack position holding train-box slots. */
struct FleetHostSpec
{
    std::string name;

    /** Train-box slots (one 8-accelerator box per slot). */
    std::size_t boxCapacity = 4;
};

/** One job of the arrival trace. */
struct FleetJobSpec
{
    /** Unique job name; prefixes the job's resources ("<name>."). */
    std::string name;

    /** Arrival time on the fleet clock (seconds). */
    Time arrival = 0.0;

    /** Higher runs first when several jobs wait (ties: arrival, idx). */
    int priority = 0;

    /** The job's full server configuration (model, preset, faults...). */
    ServerConfig config;

    std::size_t warmupSteps = 4;
    std::size_t measureSteps = 8;
};

/**
 * Lifecycle of a fleet job (docs/ROBUSTNESS.md "Fleet fault
 * tolerance"). `Failed` is transient — a killed job transitions to
 * Requeued or Abandoned within the same event — so at report time
 * every job is in one of the other five states, and the conservation
 * ledger `submitted == completed + abandoned + runningAtHorizon +
 * queuedAtHorizon` is panic-checked over them.
 *
 *   Queued --admit--> Running --host death--> Failed
 *   Failed --retries left--> Requeued --backoff + admit--> Running
 *   Failed --retries exhausted--> Abandoned        (terminal)
 *   Running --final sync--> Completed              (terminal)
 */
enum class FleetJobState
{
    Queued,    ///< submitted, never admitted (or not yet arrived)
    Running,   ///< admitted and simulating (or frozen at the horizon)
    Failed,    ///< transient: killed by a fault, disposition pending
    Requeued,  ///< waiting for backoff + capacity after a failure
    Completed, ///< ran to its final sync
    Abandoned, ///< retry budget exhausted
};

const char *fleetJobStateName(FleetJobState s);

/** A fleet scenario: hosts + shared prep pool + job trace. */
struct FleetConfig
{
    std::vector<FleetHostSpec> hosts;
    std::vector<FleetJobSpec> jobs;
    PlacementPolicy policy = PlacementPolicy::FirstFit;

    /**
     * Fleet-wide Ethernet prep-pool FPGAs arbitrated across jobs.
     * Negative = uncapped: every job keeps its own configured/planned
     * pool size untouched (the exactness-contract setting). >= 0:
     * admission grants min(request, free) whole FPGAs and rewrites the
     * job's ServerConfig::prepPoolFpgas to the grant; the grant returns
     * to the pool when the job finishes.
     */
    int sharedPoolFpgas = -1;

    /**
     * Safety horizon (fleet-clock seconds; 0 = none). Injector streams
     * self-rearm forever, so the fleet stops on all-jobs-done, not on
     * queue exhaustion; the horizon bounds a run whose job stalls.
     * Jobs unfinished at the horizon report completed = false.
     */
    Time horizon = 0.0;

    /** Optional solver override for the shared fluid network. */
    bool overrideSolverMode = false;
    FluidNetwork::SolverMode solverMode =
        FluidNetwork::SolverMode::Incremental;

    /** Parallel solver workers (0 = leave the network's default). */
    unsigned parallelWorkers = 0;

    /**
     * Fleet-level fault injection + the retry/backoff re-admission
     * policy (sim/fault_injector.hh). Disabled by default; when
     * disabled the fleet schedules zero fault events, keeping the
     * event sequence — and therefore every pinned golden —
     * bit-identical. Seeded streams require horizon > 0 (they are
     * pre-enumerated over it); scripted windows work on unbounded
     * runs.
     */
    FleetFaultConfig faults;

    /**
     * Validate the scenario: "" when admissible, else a one-line
     * description of the first problem found (same contract as
     * ServerConfig::validate()). The FleetSimulation constructor
     * fatal()s on a non-empty answer.
     */
    std::string validate() const;
};

/** Outcome of one job in the fleet. */
struct FleetJobResult
{
    std::string job;
    std::string host;    ///< "" when never admitted
    int priority = 0;

    Time arrival = 0.0;
    Time started = 0.0;  ///< admission time (== arrival when no wait)
    Time finished = 0.0; ///< done-transition time (0 when incomplete)

    /** started - arrival: time spent waiting for capacity. */
    Time queueingDelay = 0.0;

    /** Train-box slots the job occupied on its host. */
    std::size_t boxesUsed = 0;

    /** Pool FPGAs the job asked for (its natural/configured size). */
    std::size_t poolFpgasRequested = 0;

    /** Pool FPGAs actually granted (== requested when uncapped). */
    std::size_t poolFpgasGranted = 0;

    /** Grant was cut below the request by pool contention. */
    bool poolConstrained = false;

    bool admitted = false;
    bool completed = false;

    /** Where the job ended up in the lifecycle state machine. */
    FleetJobState state = FleetJobState::Queued;

    /** Failed attempts (each one either requeued or abandoned the job). */
    std::size_t restarts = 0;

    /**
     * Steps whose work was lost to failures: synchronized beyond the
     * last durable checkpoint when the host died, summed over failed
     * attempts (the checkpoint-restart replay cost, in steps).
     */
    std::size_t stepsLost = 0;

    /** Wall time spent in attempts that did not complete. */
    Time workLost = 0.0;

    /** Total failure-to-re-admission latency, summed over restarts. */
    Time replacementLatency = 0.0;

    /**
     * Full per-job report: the completed run, or — for a job killed by
     * a fault or frozen at the horizon — the ledger-consistent partial
     * report of its last attempt.
     */
    SessionReport report;
};

/** Fleet-level rollup of per-job results (docs/FLEET.md). */
struct FleetReport
{
    std::string policy;
    std::vector<FleetJobResult> jobs;

    std::size_t jobsTotal = 0;
    std::size_t jobsCompleted = 0;

    /** Fleet-clock time of the last job completion. */
    Time makespan = 0.0;

    /** Sum of completed jobs' throughputs (samples/s). */
    double aggregateThroughput = 0.0;

    // --- queueing ------------------------------------------------------
    Time avgQueueingDelay = 0.0;
    Time maxQueueingDelay = 0.0;
    std::size_t jobsQueued = 0; ///< jobs with nonzero queueing delay

    // --- shared prep pool ----------------------------------------------
    /** Configured pool size (0 when uncapped — then grants are echoes). */
    std::size_t poolFpgasTotal = 0;
    std::size_t poolFpgasRequestedTotal = 0;
    std::size_t poolFpgasGrantedTotal = 0;
    std::size_t jobsPoolConstrained = 0;

    /**
     * Jain fairness index over per-job grant ratios
     * (granted/requested, jobs with requests only): 1 = equal
     * treatment, 1/n = one job took everything. 1 when nothing was
     * requested.
     */
    double poolFairness = 1.0;

    // --- stragglers / robustness rollup --------------------------------
    /**
     * Max / median completed-job wall time: 1 = perfectly balanced,
     * large = one job straggled far behind the fleet.
     */
    double stragglerRatio = 1.0;

    /** Elastic hard-preemptions summed over every attempt of every job. */
    std::size_t preemptions = 0;

    /** Per-job fault windows summed over every attempt of every job. */
    std::size_t faultsInjected = 0;

    // --- fleet fault tolerance -----------------------------------------
    /** Jobs whose retry budget ran out. */
    std::size_t jobsAbandoned = 0;

    /** Jobs still running when the horizon cut the run (frozen partial). */
    std::size_t jobsRunningAtHorizon = 0;

    /** Jobs still queued/requeued when the run ended. */
    std::size_t jobsQueuedAtHorizon = 0;

    /** Failed attempts summed over jobs. */
    std::size_t restartsTotal = 0;

    /** Steps of work lost to failures, summed over jobs. */
    std::size_t stepsLostTotal = 0;

    /** Wall time spent in attempts that did not complete, summed. */
    Time workLostTime = 0.0;

    /** Failure-to-re-admission latency over all restarts. */
    Time avgReplacementLatency = 0.0;
    Time maxReplacementLatency = 0.0;

    /**
     * retryHistogram[k] = jobs that failed exactly k times (index 0 =
     * never failed). Sized to the worst job; empty when no job ran.
     */
    std::vector<std::size_t> retryHistogram;

    /** Fleet-level fault windows injected (host/box/pool classes). */
    std::size_t fleetFaultsInjected = 0;

    /** Host-down wall time summed over hosts (outage windows). */
    Time hostDownTime = 0.0;

    /** Events executed on the shared core over the whole run. */
    std::uint64_t eventsExecuted = 0;

    /** Serialize as JSON (schema in docs/FLEET.md). */
    std::string toJson() const;

    /** Serialize as "section,key,value" CSV rows (per-job sections). */
    std::string toCsv() const;

    /** Human-readable summary (the tb_report --fleet default). */
    void print(std::FILE *out = stdout) const;
};

/**
 * A fleet run in progress. Construction validates the config and
 * fatal()s on an impossible scenario (a job too large for every host,
 * duplicate job names, an empty trace).
 */
class FleetSimulation
{
  public:
    explicit FleetSimulation(FleetConfig cfg);
    ~FleetSimulation();

    FleetSimulation(const FleetSimulation &) = delete;
    FleetSimulation &operator=(const FleetSimulation &) = delete;

    /** The shared core every job simulates on. */
    SimulationCore &core() { return core_; }

    /** Run the trace to completion (or the horizon); build the report. */
    FleetReport run();

  private:
    struct Host
    {
        FleetHostSpec spec;
        std::size_t freeBoxes = 0;

        /** Nested outage depth: the host is down while > 0. */
        std::size_t downDepth = 0;

        /** Box slots fenced by open BoxLoss windows. */
        std::size_t lostBoxes = 0;

        Time downSince = 0.0;
        Time downTime = 0.0; ///< accumulated outage wall time

        bool down() const { return downDepth > 0; }

        /** Slots a new job could take right now. */
        std::size_t available() const
        {
            if (down())
                return 0;
            return freeBoxes > lostBoxes ? freeBoxes - lostBoxes : 0;
        }
    };

    struct Job
    {
        FleetJobSpec spec;
        std::size_t boxesNeeded = 0;
        FleetJobResult result;
        // Admitted jobs own a server + session until the run ends:
        // post-done flows may still drain on the shared core, so
        // teardown mid-run would dangle callbacks. Retired attempt
        // pairs (failed, replaced by a retry) move to the graveyard
        // below for the same reason.
        std::unique_ptr<Server> server;
        std::unique_ptr<TrainingSession> session;
        bool waiting = false;
        bool running = false;

        /** Admissions so far (names the retry's resource prefix). */
        std::size_t attempts = 0;

        /** Measured steps durably banked by failed attempts. */
        std::size_t measureDone = 0;

        /** Admission order stamp (most recent evicted first). */
        std::uint64_t admitStamp = 0;

        Time failedAt = 0.0;

        // Attempt-cumulative rollups: every attempt (failed, frozen,
        // or completed) adds its share when it ends, so fleet stats
        // never silently drop abnormal terminations.
        std::size_t cumPreemptions = 0;
        std::size_t cumFaults = 0;
        Time cumWall = 0.0;
    };

    void onArrival(std::size_t j);
    void onJobDone(std::size_t j);
    void tryAdmit();
    bool admit(std::size_t j, std::size_t host);
    int pickHost(const Job &job) const;
    std::size_t poolRequest(const ServerConfig &cfg) const;
    bool allDone() const;
    FleetReport buildReport();

    // --- fault-tolerance path ---------------------------------------
    /** Freeze the attempt's partial report and accumulate rollups. */
    void freezeAttempt(std::size_t j);

    /** Kill a running job (host death / eviction) and disposition it. */
    void killJob(std::size_t j);

    /** Return the job's boxes and pool grant to the free sets. */
    void releaseCapacity(Job &job);

    void onFleetFault(const FleetFaultEvent &ev, std::size_t idx);
    void onFleetRepair(const FleetFaultEvent &ev, std::size_t idx);

    /** Kill running jobs on @p host until its freeBoxes >= lostBoxes. */
    void evictForLostBoxes(std::size_t host);

    /** Panic unless granted + free + partitioned == the pool size. */
    void checkPoolLedger() const;

    FleetConfig cfg_;
    SimulationCore core_;
    std::vector<Host> hosts_;
    std::vector<Job> jobs_;
    std::vector<std::size_t> waiting_; ///< arrival-order indices
    std::size_t poolFree_ = 0;
    std::size_t poolGranted_ = 0;     ///< held by running jobs
    std::size_t poolPartitioned_ = 0; ///< fenced by open partitions
    std::size_t terminal_ = 0;        ///< completed + abandoned jobs
    bool horizonHit_ = false;
    std::uint64_t admitSeq_ = 0;

    // Re-admission latency accounting (one sample per retry admit).
    Time replacementSum_ = 0.0;
    Time maxReplacement_ = 0.0;
    std::size_t replacementCount_ = 0;

    std::unique_ptr<FleetFaultInjector> fleetFaults_;

    /** Per fault event: the severity its handler actually applied. */
    std::vector<std::size_t> faultApplied_;

    /** Retired server/session pairs from failed attempts (see Job). */
    std::vector<std::unique_ptr<Server>> retiredServers_;
    std::vector<std::unique_ptr<TrainingSession>> retiredSessions_;
};

/** Convenience one-shot: build, run, report. */
FleetReport runFleet(FleetConfig cfg);

} // namespace tb

#endif // TRAINBOX_TRAINBOX_FLEET_HH
