/**
 * @file
 * Fleet-scale multi-job simulation (§V-D, dynamic counterpart of the
 * static rack planner in multi_job.hh).
 *
 * A FleetSimulation runs N training jobs on one shared SimulationCore:
 * jobs arrive over a trace, a placement policy binds each to a logical
 * host with free train-box capacity, and admissions arbitrate the
 * fleet's shared Ethernet prep pool — the §V-C disaggregated FPGAs —
 * across jobs. Every admitted job builds its own fluid server under a
 * unique resource prefix, so jobs contend for the pool at the grant
 * level (integer FPGAs, held until the job finishes) while their fluid
 * networks stay disjoint; cross-job *bandwidth* interference inside the
 * pool fabric is out of scope here and covered by the per-job offload
 * stage templates.
 *
 * Exactness contract: a one-job fleet with capacity to spare, an
 * uncapped pool, and arrival 0 replays the bare
 * TrainingSession::run() event sequence bit-for-bit — the only extra
 * event is the arrival at t = 0, which shifts every sequence number by
 * one and changes no relative order. tests/test_fleet.cc pins this
 * against the chaos-harness goldens.
 *
 * See docs/FLEET.md for the placement policies, the pool-grant
 * semantics, and the FleetReport field reference.
 */

#ifndef TRAINBOX_TRAINBOX_FLEET_HH
#define TRAINBOX_TRAINBOX_FLEET_HH

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulation_core.hh"
#include "trainbox/report.hh"
#include "trainbox/server_builder.hh"
#include "trainbox/server_config.hh"
#include "trainbox/training_session.hh"

namespace tb {

/** How waiting jobs are bound to hosts (docs/FLEET.md). */
enum class PlacementPolicy
{
    /** First host (spec order) with enough free box capacity. */
    FirstFit,

    /**
     * Topology-aware packing: the *fullest* host that still fits
     * (best-fit), keeping large contiguous box blocks free for big
     * jobs.
     */
    Packed,

    /**
     * Packed, plus pool-aware admission ordering: a job whose pool
     * request cannot be met in full yields (within one admission
     * round) to a waiting job whose request fits the remaining pool,
     * avoiding fragmented partial grants when whole grants are
     * available.
     */
    PrepPoolAware,
};

const char *placementPolicyName(PlacementPolicy p);

/** Parse "first_fit" / "packed" / "pool_aware"; false on no match. */
bool parsePlacementPolicy(const std::string &name, PlacementPolicy &out);

/** One logical host: a rack position holding train-box slots. */
struct FleetHostSpec
{
    std::string name;

    /** Train-box slots (one 8-accelerator box per slot). */
    std::size_t boxCapacity = 4;
};

/** One job of the arrival trace. */
struct FleetJobSpec
{
    /** Unique job name; prefixes the job's resources ("<name>."). */
    std::string name;

    /** Arrival time on the fleet clock (seconds). */
    Time arrival = 0.0;

    /** Higher runs first when several jobs wait (ties: arrival, idx). */
    int priority = 0;

    /** The job's full server configuration (model, preset, faults...). */
    ServerConfig config;

    std::size_t warmupSteps = 4;
    std::size_t measureSteps = 8;
};

/** A fleet scenario: hosts + shared prep pool + job trace. */
struct FleetConfig
{
    std::vector<FleetHostSpec> hosts;
    std::vector<FleetJobSpec> jobs;
    PlacementPolicy policy = PlacementPolicy::FirstFit;

    /**
     * Fleet-wide Ethernet prep-pool FPGAs arbitrated across jobs.
     * Negative = uncapped: every job keeps its own configured/planned
     * pool size untouched (the exactness-contract setting). >= 0:
     * admission grants min(request, free) whole FPGAs and rewrites the
     * job's ServerConfig::prepPoolFpgas to the grant; the grant returns
     * to the pool when the job finishes.
     */
    int sharedPoolFpgas = -1;

    /**
     * Safety horizon (fleet-clock seconds; 0 = none). Injector streams
     * self-rearm forever, so the fleet stops on all-jobs-done, not on
     * queue exhaustion; the horizon bounds a run whose job stalls.
     * Jobs unfinished at the horizon report completed = false.
     */
    Time horizon = 0.0;

    /** Optional solver override for the shared fluid network. */
    bool overrideSolverMode = false;
    FluidNetwork::SolverMode solverMode =
        FluidNetwork::SolverMode::Incremental;

    /** Parallel solver workers (0 = leave the network's default). */
    unsigned parallelWorkers = 0;
};

/** Outcome of one job in the fleet. */
struct FleetJobResult
{
    std::string job;
    std::string host;    ///< "" when never admitted
    int priority = 0;

    Time arrival = 0.0;
    Time started = 0.0;  ///< admission time (== arrival when no wait)
    Time finished = 0.0; ///< done-transition time (0 when incomplete)

    /** started - arrival: time spent waiting for capacity. */
    Time queueingDelay = 0.0;

    /** Train-box slots the job occupied on its host. */
    std::size_t boxesUsed = 0;

    /** Pool FPGAs the job asked for (its natural/configured size). */
    std::size_t poolFpgasRequested = 0;

    /** Pool FPGAs actually granted (== requested when uncapped). */
    std::size_t poolFpgasGranted = 0;

    /** Grant was cut below the request by pool contention. */
    bool poolConstrained = false;

    bool admitted = false;
    bool completed = false;

    /** Full per-job report (meaningful only when completed). */
    SessionReport report;
};

/** Fleet-level rollup of per-job results (docs/FLEET.md). */
struct FleetReport
{
    std::string policy;
    std::vector<FleetJobResult> jobs;

    std::size_t jobsTotal = 0;
    std::size_t jobsCompleted = 0;

    /** Fleet-clock time of the last job completion. */
    Time makespan = 0.0;

    /** Sum of completed jobs' throughputs (samples/s). */
    double aggregateThroughput = 0.0;

    // --- queueing ------------------------------------------------------
    Time avgQueueingDelay = 0.0;
    Time maxQueueingDelay = 0.0;
    std::size_t jobsQueued = 0; ///< jobs with nonzero queueing delay

    // --- shared prep pool ----------------------------------------------
    /** Configured pool size (0 when uncapped — then grants are echoes). */
    std::size_t poolFpgasTotal = 0;
    std::size_t poolFpgasRequestedTotal = 0;
    std::size_t poolFpgasGrantedTotal = 0;
    std::size_t jobsPoolConstrained = 0;

    /**
     * Jain fairness index over per-job grant ratios
     * (granted/requested, jobs with requests only): 1 = equal
     * treatment, 1/n = one job took everything. 1 when nothing was
     * requested.
     */
    double poolFairness = 1.0;

    // --- stragglers / robustness rollup --------------------------------
    /**
     * Max / median completed-job wall time: 1 = perfectly balanced,
     * large = one job straggled far behind the fleet.
     */
    double stragglerRatio = 1.0;

    /** Elastic hard-preemptions summed over completed jobs. */
    std::size_t preemptions = 0;

    /** Fault windows summed over completed jobs. */
    std::size_t faultsInjected = 0;

    /** Events executed on the shared core over the whole run. */
    std::uint64_t eventsExecuted = 0;

    /** Serialize as JSON (schema in docs/FLEET.md). */
    std::string toJson() const;

    /** Serialize as "section,key,value" CSV rows (per-job sections). */
    std::string toCsv() const;

    /** Human-readable summary (the tb_report --fleet default). */
    void print(std::FILE *out = stdout) const;
};

/**
 * A fleet run in progress. Construction validates the config and
 * fatal()s on an impossible scenario (a job too large for every host,
 * duplicate job names, an empty trace).
 */
class FleetSimulation
{
  public:
    explicit FleetSimulation(FleetConfig cfg);
    ~FleetSimulation();

    FleetSimulation(const FleetSimulation &) = delete;
    FleetSimulation &operator=(const FleetSimulation &) = delete;

    /** The shared core every job simulates on. */
    SimulationCore &core() { return core_; }

    /** Run the trace to completion (or the horizon); build the report. */
    FleetReport run();

  private:
    struct Host
    {
        FleetHostSpec spec;
        std::size_t freeBoxes = 0;
    };

    struct Job
    {
        FleetJobSpec spec;
        std::size_t boxesNeeded = 0;
        FleetJobResult result;
        // Admitted jobs own a server + session until the run ends:
        // post-done flows may still drain on the shared core, so
        // teardown mid-run would dangle callbacks.
        std::unique_ptr<Server> server;
        std::unique_ptr<TrainingSession> session;
        bool waiting = false;
        bool running = false;
    };

    void onArrival(std::size_t j);
    void onJobDone(std::size_t j);
    void tryAdmit();
    bool admit(std::size_t j, std::size_t host);
    int pickHost(const Job &job) const;
    std::size_t poolRequest(const ServerConfig &cfg) const;
    bool allDone() const;
    FleetReport buildReport();

    FleetConfig cfg_;
    SimulationCore core_;
    std::vector<Host> hosts_;
    std::vector<Job> jobs_;
    std::vector<std::size_t> waiting_; ///< arrival-order indices
    std::size_t poolFree_ = 0;
    std::size_t finished_ = 0;
    bool horizonHit_ = false;
};

/** Convenience one-shot: build, run, report. */
FleetReport runFleet(FleetConfig cfg);

} // namespace tb

#endif // TRAINBOX_TRAINBOX_FLEET_HH
