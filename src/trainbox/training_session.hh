/**
 * @file
 * Training-session driver.
 *
 * Executes synchronous data-parallel training on a built Server:
 * per prep group, batches flow through the group's stage chain as fluid
 * flows (with next-batch prefetching); compute starts on a group once its
 * batch is ready and the previous global step has synchronized; model
 * synchronization is a global barrier followed by the ring-sync latency.
 *
 * The session measures steady-state throughput over a measurement window
 * (after warmup), per-stage preparation latencies (Fig 9), and per-
 * category host-resource consumption (Figs 11/22) via the fluid
 * accounting.
 *
 * When ServerConfig::faults.enabled is set the session additionally
 * drives a FaultInjector and implements the recovery policies described
 * in docs/ROBUSTNESS.md: bounded SSD read retries with exponential
 * backoff, prep-FPGA crash failover onto the survivors and the prep
 * pool, host-memory fallback on P2P route loss, and a straggler-
 * tolerant sync barrier. With injection disabled (the default) the
 * fault path is never taken and results are bit-identical to a session
 * without the fault subsystem.
 *
 * When ServerConfig::checkpoint.enabled is set a Checkpointer
 * periodically snapshots the model + optimizer state to the train-box
 * SSDs (trainbox/checkpoint.hh); fatal-crash faults then roll training
 * back to the last durable checkpoint, replay the lost steps, and pay a
 * restart latency. The same bit-identical guarantee applies: with
 * checkpointing disabled the session never touches the subsystem.
 *
 * When ServerConfig::elasticity.enabled is set an ElasticScheduler
 * (sim/elastic_schedule.hh) drives a membership state machine over the
 * prep groups: planned drains get a grace window and a checkpoint-
 * coordinated detach, spot-style preemptions kill the member (and its
 * buffered samples) at the event instant, and joins re-shard the data
 * and re-plan prep lending through multi_job. The step barrier becomes
 * a scan over attached groups, so training proceeds at degraded
 * capacity and parks (without deadlock) at zero capacity. With
 * elasticity disabled the membership never changes and results are
 * bit-identical to a build without the subsystem.
 *
 * When ServerConfig::ingest.enabled is set an IngestScheduler
 * (sim/ingest.hh) streams sample arrivals into a bounded host-DRAM
 * ingest buffer; the session drains it through the per-group
 * ingest_write stage template (shard appends contending with prep
 * reads via the SSD write→read interference) with bounded
 * retry/backoff, and applies the configured overload policy chain
 * (throttle → shed → echo → stall) as the buffer crosses its
 * watermarks. The ingest conservation ledger
 *
 *   arrived == admitted + shed + inFlight
 *
 * is panic-checked at the end of every ingest-enabled run. With ingest
 * disabled no arrival, buffer, or write machinery is ever constructed
 * and results are bit-identical to a build without the subsystem.
 */

#ifndef TRAINBOX_TRAINBOX_TRAINING_SESSION_HH
#define TRAINBOX_TRAINBOX_TRAINING_SESSION_HH

#include <array>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/elastic_schedule.hh"
#include "sim/fault_injector.hh"
#include "sim/ingest.hh"
#include "sim/trace.hh"
#include "trainbox/checkpoint.hh"
#include "trainbox/server_builder.hh"

namespace tb {

class SessionReport;

/**
 * Raw measurements of a session run.
 *
 * SessionReport (trainbox/report.hh) is the single documented entry
 * point for consuming a run: it wraps this struct together with the
 * config echo, per-device utilization, and the ranked bottleneck
 * attribution, and owns the canonical goodput/efficiency formulas.
 * The accessors kept here delegate to it for compatibility.
 */
struct SessionResult
{
    /** Aggregate training throughput (samples/s). */
    double throughput = 0.0;

    /** Average time per global training step. */
    Time stepTime = 0.0;

    /** Batch compute time on one accelerator. */
    Time computeTime = 0.0;

    /** Ring-sync time per step. */
    Time syncTime = 0.0;

    /** Average wall time each prep stage took per group batch. */
    std::map<std::string, Time> prepStageTime;

    /** Average end-to-end prep latency per group batch. */
    Time prepLatency = 0.0;

    /** Steps included in the measurement window. */
    std::size_t stepsMeasured = 0;

    /** Host CPU demand by category (cores, i.e., core-sec per second). */
    std::map<std::string, double> cpuCoresByCategory;

    /** Host DRAM bandwidth by category (bytes/s). */
    std::map<std::string, double> memBwByCategory;

    /** PCIe root-complex bandwidth by category (bytes/s). */
    std::map<std::string, double> rcBwByCategory;

    /** Fault-injection and recovery counters (all zero when disabled). */
    struct FaultStats
    {
        std::size_t faultsInjected = 0;      ///< fault windows opened
        std::size_t readFailures = 0;        ///< failed SSD read attempts
        std::size_t ssdRetries = 0;          ///< reads retried after backoff
        std::size_t chunksAbandoned = 0;     ///< chunks restarted from scratch
        std::size_t prepFailovers = 0;       ///< crashes absorbed by failover
        std::size_t computeRedispatches = 0; ///< straggler timeouts fired
        std::size_t stragglerSteps = 0;      ///< group-steps that straggled
        Time degradedTime = 0.0; ///< wall time with >=1 open fault window
    };
    FaultStats faults;

    /**
     * Silent-corruption injection/detection counters (all zero when
     * corruption injection is disabled). The accounting invariant is
     * exact: injected == detected + escaped. "Detected" covers
     * link-level (PCIe LCRC) and ECC catches, checksum-verify catches,
     * and the baseline CPU path's software validation; "escaped" flips
     * reached training silently.
     */
    struct IntegrityStats
    {
        std::size_t injected = 0; ///< corruption strikes drawn
        std::size_t detected = 0; ///< caught before reaching training
        std::size_t escaped = 0;  ///< reached training silently

        /** Strikes per CorruptionKind (index = enum value). */
        std::array<std::size_t, kNumCorruptionKinds> injectedByKind{};

        std::size_t pcieReplays = 0;       ///< LCRC replay stalls paid
        std::size_t recoveries = 0;        ///< verify-triggered re-reads
        std::size_t chunksQuarantined = 0; ///< recovery budget exhausted

        /** Escaped fraction of injected (0 when nothing injected). */
        double escapeRate() const
        {
            return injected == 0
                ? 0.0
                : static_cast<double>(escaped) /
                      static_cast<double>(injected);
        }
    };
    IntegrityStats integrity;

    /** Checkpoint/restore counters (all zero when disabled). */
    CheckpointStats checkpoint;

    /**
     * Elastic-capacity counters plus the session-wide sample ledger.
     * The event counters are all zero when elasticity is disabled; the
     * ledger (samplesPrepared/Consumed/CachedAtEnd/Discarded) is always
     * tracked, and its conservation identity
     *
     *   prepared == consumed + cachedAtEnd + discarded
     *
     * is panic-checked at the end of every run (in-flight chains that
     * were cancelled never became "prepared", so they are outside the
     * ledger by construction).
     */
    struct ElasticityStats
    {
        std::size_t events = 0;      ///< elastic events delivered
        std::size_t drains = 0;      ///< planned-leave notices applied
        std::size_t preemptions = 0; ///< hard leaves applied
        std::size_t joins = 0;       ///< members (re)activated
        std::size_t chainsRebalanced = 0; ///< chains re-dispatched

        /** Ready + aborted-compute samples killed by hard preemption. */
        double samplesLostToPreemption = 0.0;

        /** Samples whose prep finished inside a drain grace window. */
        double samplesSavedByDrain = 0.0;

        /** Buffered samples discarded at a planned detach. */
        double samplesDroppedAtDrain = 0.0;

        Time degradedCapacityTime = 0.0; ///< wall time below full groups
        Time zeroCapacityTime = 0.0;     ///< wall time with zero groups
        Time rebalanceTime = 0.0;        ///< rejoin/shard-reassign time

        /** Time-weighted mean of activeGroups / totalGroups. */
        double avgActiveFraction = 1.0;

        /** Config echo (SessionReport::sloAttainment()). */
        double sloTargetSamplesPerSec = 0.0;

        // --- sample ledger (always tracked) --------------------------
        double samplesPrepared = 0.0;    ///< prep chains completed
        double samplesConsumed = 0.0;    ///< taken by compute starts
        double samplesCachedAtEnd = 0.0; ///< still buffered at run end
        double samplesDiscarded = 0.0;   ///< dropped (crash or detach)
    };
    ElasticityStats elasticity;

    /**
     * Streaming-ingest counters plus the ingest conservation ledger
     * (all zero when ingest is disabled). The ledger identity
     *
     *   arrived == admitted + shed + inFlightAtEnd
     *
     * with shed == throttled + shedPolicy + overflowDropped +
     * abandonedWrites is panic-checked at the end of every
     * ingest-enabled run.
     */
    struct IngestStats
    {
        std::size_t arrivalEvents = 0;  ///< arrival batches delivered
        std::size_t overloadTrips = 0;  ///< buffer reached high watermark
        std::size_t stalls = 0;         ///< stall-policy engagements
        std::size_t writeFlows = 0;     ///< shard-write flows started
        std::size_t writeRetries = 0;   ///< writes retried after backoff
        std::size_t writeFailures = 0;  ///< chunks abandoned (budget out)

        // --- conservation ledger (samples) ---------------------------
        double samplesArrived = 0.0;   ///< offered by the arrival process
        double samplesAdmitted = 0.0;  ///< durably landed on a shard
        double samplesShed = 0.0;      ///< total rejected/dropped
        double samplesThrottled = 0.0;       ///< throttle-policy rejects
        double samplesShedPolicy = 0.0;      ///< shed-policy drops
        double samplesOverflowDropped = 0.0; ///< buffer-full drops
        double samplesAbandonedWrites = 0.0; ///< retry budget exhausted
        double samplesInFlightAtEnd = 0.0;   ///< buffered or being written

        /** Stale batch-fraction reused by the echo policy (samples). */
        double samplesEchoed = 0.0;

        Time overloadTime = 0.0;     ///< wall time with >=1 policy engaged
        Time stallTime = 0.0;        ///< wall time with compute stalled
        double peakBufferLevel = 0.0; ///< max buffered+writing samples

        // --- freshness / staleness SLO -------------------------------
        double stalenessSum = 0.0; ///< sum of samples * (land - arrive)
        Time stalenessMax = 0.0;   ///< worst single-sample staleness
        double samplesWithinSlo = 0.0; ///< admitted within stalenessSlo

        /** Config echoes (SessionReport ingest ratios). */
        Time stalenessSloSec = 0.0;
        double echoEfficiency = 1.0;
    };
    IngestStats ingest;

    /** Total simulated wall time of the run (start to last sync). */
    Time wallTime = 0.0;

    /**
     * Goodput fraction: this run's throughput relative to a fault-free
     * reference throughput (same config with faults.enabled = false).
     * \deprecated Delegates to SessionReport::computeGoodput(); new
     * code should consume a SessionReport.
     */
    [[deprecated("use SessionReport::computeGoodput()")]]
    double goodput(double faultFreeThroughput) const;

    /**
     * Useful-time fraction: 1 - (checkpoint pauses + lost work +
     * restart downtime) / wallTime — the quantity the Young–Daly
     * interval maximizes. 1.0 for a run with no checkpoint overhead and
     * no crashes; 0 when wallTime is degenerate.
     * \deprecated Delegates to SessionReport::computeEfficiency(); new
     * code should consume a SessionReport.
     */
    [[deprecated("use SessionReport::computeEfficiency()")]]
    double efficiency() const;

    /**
     * Sums of the per-category maps.
     * \deprecated Delegate to SessionReport::sumCategories(); new code
     * should consume a SessionReport.
     */
    [[deprecated("use SessionReport::sumCategories()")]]
    double cpuCoresUsed() const;
    [[deprecated("use SessionReport::sumCategories()")]]
    double memBwUsed() const;
    [[deprecated("use SessionReport::sumCategories()")]]
    double rcBwUsed() const;
};

/**
 * Runs training steps on a Server and measures steady state.
 *
 * The session is a *client* of the server's SimulationCore: run() is a
 * thin shim that arms the session (start()), steps the core's event
 * queue until the session finishes, and returns collect(). A fleet
 * driver instead calls start() on many sessions sharing one core,
 * steps the core itself, and collect()s each session as it completes —
 * an N=1 fleet is bit-identical to run() (docs/FLEET.md).
 */
class TrainingSession
{
  public:
    explicit TrainingSession(Server &server);

    /**
     * Run @p warmup + @p measure global steps and report steady-state
     * metrics over the measurement window. Equivalent to start() +
     * stepping the core until done() + collect().
     */
    SessionResult run(std::size_t warmup = 4, std::size_t measure = 8);

    /**
     * Arm the session on its server's core without stepping the event
     * loop: registers instruments and schedule sources, arms the
     * fault/elastic/ingest injectors, and launches the initial prep
     * chains at the core's current time. The caller (run(), or a fleet
     * driver multiplexing several sessions) then steps the core.
     */
    void start(std::size_t warmup = 4, std::size_t measure = 8);

    /** Has the session synchronized its final step? */
    bool done() const { return done_; }

    /**
     * Invoked exactly once, at the instant the session finishes (after
     * its result is finalized) — the hook a fleet scheduler uses to
     * free capacity and start queued jobs on the shared timeline.
     */
    void onDone(std::function<void()> cb) { doneCb_ = std::move(cb); }

    /**
     * The finalized result. Callable any time after done(); the result
     * is frozen at the completion instant, so co-resident sessions
     * simulating past this session's end never perturb it.
     */
    SessionResult collect();

    /**
     * Terminate the session *now* — the fleet layer's host-failure
     * path (docs/ROBUSTNESS.md). Cancels the pending sync and every
     * per-group compute/membership event, cancels tracked prep-chain
     * flows, discards buffered prepared samples (counted in the
     * conservation ledger), and freezes a *partial* result over
     * whatever measurement window had elapsed: stepsMeasured is the
     * synchronized in-window step count, throughput/stepTime are 0
     * when nothing measured, and every ledger invariant still holds.
     * After kill() the session reports done() but the registered
     * onDone callback never fires — termination is the caller's
     * decision, not a completion. No-op on an already-done session.
     */
    void kill();

    /** Global steps synchronized so far (final count once done()). */
    std::size_t stepsSynced() const { return syncedSteps_; }

    /**
     * Last durably checkpointed step — what a restarted attempt can
     * resume from (0 when checkpointing is disabled: a restart then
     * replays from scratch). See trainbox/checkpoint.hh.
     */
    std::size_t lastDurableStep() const;

    /**
     * Run and assemble the full SessionReport (config echo, latency
     * breakdown, per-device utilization when cfg.metricsEnabled, and
     * ranked bottleneck attribution). The preferred entry point for
     * consuming a run; see trainbox/report.hh.
     */
    SessionReport runReport(std::size_t warmup = 4,
                            std::size_t measure = 8);

    /**
     * Record a Chrome-trace timeline (prep stages per group, compute
     * spans, sync spans, fault windows) into @p trace. Must be set
     * before run(); the writer is only dereferenced *during* run() and
     * the session drops the pointer when run() returns, so the writer
     * must outlive the run() call (not the session).
     */
    void setTrace(TraceWriter *trace) { trace_ = trace; }

  private:
    /**
     * Elastic membership of one prep group (docs/ROBUSTNESS.md). All
     * groups stay Active for the whole run unless elasticity is
     * enabled; the transitions are
     *
     *   Active --drain notice--> Draining --grace end--> Detached
     *   Active/Draining --preempt--> Detached
     *   Detached --join--> Joining --rejoinLatency--> Active
     *   Draining --join--> Active (drain cancelled)
     */
    enum class Membership
    {
        Active,   ///< computing and prepping normally
        Draining, ///< drain notice received; finishes, no new prep
        Detached, ///< out of the job; devices parked, barrier skips it
        Joining,  ///< attach in progress (rejoinLatency)
    };

    struct GroupState
    {
        const PrepGroup *spec;
        double readySamples = 0.0;    ///< prepared samples buffered
        double inFlightSamples = 0.0; ///< samples in running chains
        bool computing = false;
        std::size_t stepsComputed = 0;
        bool prepDegraded = false; ///< its prep FPGA is currently down
        bool routeLost = false;    ///< its P2P route is currently down
        EventId computeEv{};       ///< pending compute completion

        // --- elastic membership (Active forever when disabled) -------
        Membership membership = Membership::Active;
        bool prepElasticOut = false; ///< one FPGA elastically away
        std::uint64_t prepEpoch = 0; ///< stales pending prep detaches
        double offloadOverride = -1.0; ///< re-planned offload (<0: spec)
        EventId detachEv{};            ///< pending grace-window end
        EventId joinEv{};              ///< pending rejoin completion
        // Per in-flight chain bookkeeping is closure-captured
        // (fault-free) or held in ChainRun records (fault injection).
    };

    /** One in-flight prep chain (tracked under faults or elasticity). */
    struct ChainRun
    {
        std::size_t group = 0;
        bool offload = false;
        double samples = 0.0;
        Time start = 0.0;
        std::string track;

        /** Template in use; re-selected on every (re-)dispatch. */
        const std::vector<StageTemplate> *stages = nullptr;

        FlowId flow = 0;              ///< current stage's flow (0 = none)
        std::size_t readAttempts = 0; ///< failed reads of current chunk
        std::uint64_t epoch = 0;      ///< bumped on re-dispatch; stales
                                      ///< pending retry events

        /**
         * Silent flips riding the chunk that a downstream verify stage
         * will catch (already counted detected at draw time; this
         * drives the recovery behavior only).
         */
        std::size_t pendingCorruptions = 0;

        /** Verify-triggered re-reads of the current chunk. */
        std::size_t recoveries = 0;
    };

    void launchPrep(std::size_t g);
    void runChain(const std::string &track,
                  const std::vector<StageTemplate> &stages, double samples,
                  std::size_t idx, std::function<void()> done);
    void onChainDone(std::size_t g, double samples, Time chain_start);
    bool measuring() const;
    std::size_t chunksPerBatch() const;
    double groupBatchSamples(std::size_t g) const;
    void tryStartCompute(std::size_t g);
    void onComputeDone(std::size_t g);
    void stepComplete();
    void onSyncDone();

    // --- elastic-capacity path (never reached when elastic_ is null) -
    void onElasticEvent(const ElasticEvent &ev);
    void beginGroupDrain(std::size_t g);
    void preemptGroup(std::size_t g);
    void beginGroupJoin(std::size_t g);
    void completeJoin(std::size_t g);
    void detachGroup(std::size_t g, bool preempted);
    void onPrepLeave(std::size_t g, bool planned);
    void onPrepJoin(std::size_t g);
    void replanOffload();
    void accrueCapacity();

    // --- streaming-ingest path (never reached when ingest_ is null) --
    void onIngestArrival(const IngestArrival &ev);
    bool ingestPolicyEngaged(IngestPolicy p) const;
    double ingestLevel() const;
    void updateIngestOverload();
    void pumpIngestWrites();
    void startIngestWrite(std::size_t attempt);
    void onIngestWriteDone(std::size_t attempt);

    // --- fault-injection path (never reached when fault_ is null) ----
    void onFault(const FaultEvent &ev);
    void onRepair(const FaultEvent &ev);
    void onFatalCrash(const FaultEvent &ev);
    void onCheckpointResume();
    void launchFaultChain(std::size_t g, bool offload, double samples);
    void startChainStage(std::uint64_t cid, std::size_t idx);
    bool handleReadFailure(std::uint64_t cid, std::size_t idx);
    bool handleCorruption(std::uint64_t cid, std::size_t idx);
    static bool chainVerifiesFrom(const ChainRun &run, std::size_t idx);
    bool prepOut(const GroupState &gs) const;
    const std::vector<StageTemplate> &selectStages(const ChainRun &run)
        const;
    double effectiveOffload(std::size_t g) const;
    std::size_t redispatchLocalChains(std::size_t g);

    /**
     * Freeze the SessionResult at the completion instant (still inside
     * the final sync event). On a private core this is observably
     * identical to assembling the result after the event loop drains —
     * simulated time cannot advance in between — but on a shared core
     * it guards the result against co-resident sessions that keep
     * simulating past this session's end.
     *
     * @p partial relaxes the completed-run assumptions for kill():
     * the measurement window may be empty (no throughput/resource
     * collection then) and stepsMeasured counts only the steps that
     * actually synchronized inside it. The ledger panics stay armed
     * in both modes. A normal completion (partial = false) computes
     * byte-identical values to the historical code.
     */
    void finalizeResult(bool partial = false);

    Server &server_;
    EventQueue &eq_;    ///< the core's event queue (shared clock)
    FluidNetwork &net_; ///< the core's contention engine
    std::vector<GroupState> groups_;
    TraceWriter *trace_ = nullptr;

    // session-level instruments (nullptr whenever metrics are off, in
    // which case no instrumented statement executes)
    MetricCounter *computeBusyCtr_ = nullptr;
    MetricCounter *syncBusyCtr_ = nullptr;
    MetricCounter *stepsCtr_ = nullptr;
    MetricCounter *chainsCtr_ = nullptr;

    std::unique_ptr<FaultInjector> fault_;
    std::unique_ptr<Checkpointer> ckpt_;
    bool pausedForCkpt_ = false; ///< compute held for a capture
    bool down_ = false;          ///< machine restarting after a crash
    EventId syncEv_{};           ///< pending sync completion
    std::map<std::uint64_t, ChainRun> chains_;
    std::uint64_t nextChainId_ = 1;
    SessionResult::FaultStats faultStats_;
    SessionResult::IntegrityStats integrityStats_;
    std::size_t activeFaultWindows_ = 0;
    Time degradedStart_ = 0.0;
    Time degradedTime_ = 0.0;

    // --- elastic capacity --------------------------------------------
    std::unique_ptr<ElasticScheduler> elastic_;
    std::size_t activeGroups_ = 0; ///< Active + Draining groups
    SessionResult::ElasticityStats elasticStats_;
    Time lastCapacityMark_ = 0.0;
    double activeFractionIntegral_ = 0.0;

    // --- streaming ingest --------------------------------------------
    std::unique_ptr<IngestScheduler> ingest_;
    SessionResult::IngestStats ingestStats_;

    /** One admitted arrival batch awaiting its shard write (FIFO). */
    struct IngestCohort
    {
        double samples = 0.0;
        Time arrivedAt = 0.0;
    };
    std::deque<IngestCohort> ingestQueue_; ///< buffered, not yet writing
    std::vector<IngestCohort> ingestWritingCohorts_; ///< current chunk
    double ingestBuffered_ = 0.0; ///< samples buffered (excl. writing)
    double ingestWriting_ = 0.0;  ///< samples in the in-flight write
    std::size_t ingestWriteGroup_ = 0; ///< round-robin shard target
    std::uint64_t ingestEngaged_ = 0;  ///< bitmask over policyChain
    bool ingestStalled_ = false;       ///< stall policy holds compute
    Time ingestStallStart_ = 0.0;
    Time ingestOverloadStart_ = 0.0;
    std::uint64_t ingestWriteEpoch_ = 0; ///< stales pending retries

    // sample ledger (always tracked; conservation panic-checked)
    double samplesPrepared_ = 0.0;
    double samplesConsumed_ = 0.0;
    double samplesDiscarded_ = 0.0;

    // elastic throughput: per-step compute contributions, committed
    // once per distinct step index at sync (crash replays recommit
    // nothing). Unused when elasticity is disabled — then throughput
    // keeps the fixed-membership closed form, bit-identically.
    double stepSamples_ = 0.0;
    double measuredSamples_ = 0.0;
    std::size_t maxSyncedStep_ = 0;

    std::size_t syncedSteps_ = 0;
    std::size_t warmupSteps_ = 0;
    std::size_t measureSteps_ = 0;
    std::size_t totalSteps_ = 0;
    bool started_ = false;
    bool done_ = false;
    bool windowOpen_ = false; ///< measurement window reset already done
    Time startNow_ = 0.0; ///< core time at start() (0 when standalone)
    Time windowStart_ = 0.0;
    Time windowEnd_ = 0.0;

    /** Result frozen by finalizeResult() at the completion instant. */
    SessionResult result_;
    std::function<void()> doneCb_;

    // measurement accumulators
    std::map<std::string, Time> stageTimeSum_;
    std::map<std::string, std::size_t> stageTimeCount_;
    Time prepLatencySum_ = 0.0;
    std::size_t prepLatencyCount_ = 0;
};

} // namespace tb

#endif // TRAINBOX_TRAINBOX_TRAINING_SESSION_HH
