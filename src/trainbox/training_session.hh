/**
 * @file
 * Training-session driver.
 *
 * Executes synchronous data-parallel training on a built Server:
 * per prep group, batches flow through the group's stage chain as fluid
 * flows (with next-batch prefetching); compute starts on a group once its
 * batch is ready and the previous global step has synchronized; model
 * synchronization is a global barrier followed by the ring-sync latency.
 *
 * The session measures steady-state throughput over a measurement window
 * (after warmup), per-stage preparation latencies (Fig 9), and per-
 * category host-resource consumption (Figs 11/22) via the fluid
 * accounting.
 */

#ifndef TRAINBOX_TRAINBOX_TRAINING_SESSION_HH
#define TRAINBOX_TRAINBOX_TRAINING_SESSION_HH

#include <map>
#include <string>
#include <vector>

#include "sim/trace.hh"
#include "trainbox/server_builder.hh"

namespace tb {

/** Everything a session run reports. */
struct SessionResult
{
    /** Aggregate training throughput (samples/s). */
    double throughput = 0.0;

    /** Average time per global training step. */
    Time stepTime = 0.0;

    /** Batch compute time on one accelerator. */
    Time computeTime = 0.0;

    /** Ring-sync time per step. */
    Time syncTime = 0.0;

    /** Average wall time each prep stage took per group batch. */
    std::map<std::string, Time> prepStageTime;

    /** Average end-to-end prep latency per group batch. */
    Time prepLatency = 0.0;

    /** Steps included in the measurement window. */
    std::size_t stepsMeasured = 0;

    /** Host CPU demand by category (cores, i.e., core-sec per second). */
    std::map<std::string, double> cpuCoresByCategory;

    /** Host DRAM bandwidth by category (bytes/s). */
    std::map<std::string, double> memBwByCategory;

    /** PCIe root-complex bandwidth by category (bytes/s). */
    std::map<std::string, double> rcBwByCategory;

    /** Sums of the per-category maps. */
    double cpuCoresUsed() const;
    double memBwUsed() const;
    double rcBwUsed() const;
};

/** Runs training steps on a Server and measures steady state. */
class TrainingSession
{
  public:
    explicit TrainingSession(Server &server);

    /**
     * Run @p warmup + @p measure global steps and report steady-state
     * metrics over the measurement window.
     */
    SessionResult run(std::size_t warmup = 4, std::size_t measure = 8);

    /**
     * Record a Chrome-trace timeline (prep stages per group, compute
     * spans, sync spans) into @p trace. Must be set before run();
     * the writer must outlive the session.
     */
    void setTrace(TraceWriter *trace) { trace_ = trace; }

  private:
    struct GroupState
    {
        const PrepGroup *spec;
        double readySamples = 0.0;    ///< prepared samples buffered
        double inFlightSamples = 0.0; ///< samples in running chains
        bool computing = false;
        std::size_t stepsComputed = 0;
        // Per in-flight chain bookkeeping is closure-captured.
    };

    void launchPrep(std::size_t g);
    void runChain(const std::string &track,
                  const std::vector<StageTemplate> &stages, double samples,
                  std::size_t idx, std::function<void()> done);
    void onChainDone(std::size_t g, double samples, Time chain_start);
    bool measuring() const;
    std::size_t chunksPerBatch() const;
    double groupBatchSamples(std::size_t g) const;
    void tryStartCompute(std::size_t g);
    void onComputeDone(std::size_t g);
    void onSyncDone();

    Server &server_;
    std::vector<GroupState> groups_;
    TraceWriter *trace_ = nullptr;

    std::size_t barrier_ = 0;
    std::size_t syncedSteps_ = 0;
    std::size_t warmupSteps_ = 0;
    std::size_t totalSteps_ = 0;
    bool done_ = false;
    Time windowStart_ = 0.0;
    Time windowEnd_ = 0.0;

    // measurement accumulators
    std::map<std::string, Time> stageTimeSum_;
    std::map<std::string, std::size_t> stageTimeCount_;
    Time prepLatencySum_ = 0.0;
    std::size_t prepLatencyCount_ = 0;
};

} // namespace tb

#endif // TRAINBOX_TRAINBOX_TRAINING_SESSION_HH
