/**
 * @file
 * SessionReport: the consolidated result surface of a training run.
 *
 * A report bundles everything a run produces — the raw SessionResult,
 * a config echo, the per-stage latency breakdown of the paper's Fig 9,
 * the per-category host-resource decomposition of Figs 10/11/22, the
 * per-device utilization histories recorded by the metrics layer, and
 * a ranked bottleneck attribution — behind one documented API with
 * JSON / CSV / Chrome-trace exporters. It replaces the ad-hoc
 * accounting every bench used to hand-roll; SessionResult's scattered
 * accessors (goodput(), efficiency(), *Used()) now delegate here.
 *
 * Utilization and bottleneck data require the run's ServerConfig to
 * have metricsEnabled set; without metrics the report still carries
 * the latency and host-demand decompositions (hasMetrics == false and
 * the attribution falls back to host-axis demand shares).
 *
 * See docs/OBSERVABILITY.md for the metrics model and export schemas.
 */

#ifndef TRAINBOX_TRAINBOX_REPORT_HH
#define TRAINBOX_TRAINBOX_REPORT_HH

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "trainbox/server_builder.hh"
#include "trainbox/training_session.hh"

namespace tb {

class TraceWriter;

/** Utilization summary of one simulated resource over the window. */
struct ResourceUsage
{
    /** Fluid resource name ("host.cpu", "box0.ssd1.flash", ...). */
    std::string name;

    /** Device class ("cpu", "dram", "root_complex", "ssd_read", ...). */
    std::string kind;

    /** Time-averaged utilization in [0, 1] over the window. */
    double utilization = 0.0;

    /** Peak instantaneous utilization. */
    double peak = 0.0;

    /** Fraction of the window spent at >= 99.9% of capacity. */
    double saturatedFraction = 0.0;

    /** Largest accounting category on this resource ("" when idle). */
    std::string dominantCategory;

    /** That category's share of the resource's served units. */
    double dominantShare = 0.0;
};

/** One entry of the ranked bottleneck attribution. */
struct Bottleneck
{
    /** Device class this entry aggregates. */
    std::string kind;

    /** The class's most-utilized member resource. */
    std::string resource;

    double utilization = 0.0;
    double saturatedFraction = 0.0;

    /** Dominant accounting category on that resource (Fig 11 view). */
    std::string dominantCategory;
};

/**
 * The consolidated, structured report of one training-session run.
 * Build via TrainingSession::runReport() or SessionReport::build().
 */
class SessionReport
{
  public:
    /** Assemble the report for @p res measured on @p server. */
    static SessionReport build(const Server &server,
                               const SessionResult &res);

    // --- identity -----------------------------------------------------
    std::string preset;       ///< presetName() of the architecture
    std::string model;        ///< Table I model name
    std::size_t numAccelerators = 0;
    std::size_t batchSize = 0;

    /** Ideal (prep-unconstrained) throughput at this scale. */
    double targetThroughput = 0.0;

    /** The raw measurements (kept whole for compatibility). */
    SessionResult result;

    /** Per-resource utilization; empty unless hasMetrics. */
    std::vector<ResourceUsage> resources;

    /** True when the run recorded metrics (cfg.metricsEnabled). */
    bool hasMetrics = false;

    // --- headline accessors -------------------------------------------
    double throughput() const { return result.throughput; }
    Time stepTime() const { return result.stepTime; }
    Time computeTime() const { return result.computeTime; }
    Time syncTime() const { return result.syncTime; }
    Time prepLatency() const { return result.prepLatency; }
    Time wallTime() const { return result.wallTime; }
    std::size_t stepsMeasured() const { return result.stepsMeasured; }

    /** Fraction of the ideal target throughput achieved. */
    double targetFraction() const;

    // --- consolidated robustness accessors -----------------------------
    const SessionResult::FaultStats &faults() const
    {
        return result.faults;
    }
    const SessionResult::IntegrityStats &integrity() const
    {
        return result.integrity;
    }
    const CheckpointStats &checkpoint() const { return result.checkpoint; }
    const SessionResult::ElasticityStats &elasticity() const
    {
        return result.elasticity;
    }
    const SessionResult::IngestStats &ingest() const
    {
        return result.ingest;
    }

    // --- functional prep-executor quarantine ---------------------------
    /**
     * Quarantine outcome of a real PrepExecutor run attached to this
     * report (the simulator knows nothing about it; tools like
     * tb_report attach it explicitly). @p byReason maps quarantine
     * reason classes ("checksum_mismatch", "decode_error", ...) to item
     * counts — prep::quarantineByReason() builds it from the executor's
     * quarantined() list.
     */
    void attachPrepQuarantine(
        std::size_t itemsProcessed,
        const std::map<std::string, std::size_t> &byReason);

    /** Items the attached executor run processed (0 = none attached). */
    std::size_t prepItemsProcessed = 0;

    /** Quarantined-item count per reason class of the attached run. */
    std::map<std::string, std::size_t> prepQuarantineByReason;

    /** Total quarantined items of the attached run. */
    std::size_t prepItemsQuarantined() const;

    /** Throughput relative to a fault-free reference run, in [0, 1]. */
    double goodput(double referenceThroughput) const;

    /** Useful-time fraction under checkpoint/crash overheads. */
    double efficiency() const;

    /** Fraction of wall time with no fault window open. */
    double availability() const;

    /** Fraction of wall time at full group membership, in [0, 1]. */
    double capacityAvailability() const;

    /**
     * Achieved / target samples-per-sec under the configured SLO floor
     * (elasticity.sloTargetSamplesPerSec), capped at 1. 1.0 when no
     * target is set.
     */
    double sloAttainment() const;

    // --- streaming-ingest accessors (all clamped to [0, 1]) -------------
    /** Admitted / arrived; 1.0 when nothing arrived. */
    double ingestAdmitRate() const;

    /** Shed / arrived; 0.0 when nothing arrived. */
    double ingestShedRate() const;

    /** Mean arrival-to-shard latency of admitted samples (0 if none). */
    Time avgIngestStaleness() const;

    /**
     * Fraction of admitted samples landing within the staleness SLO
     * (ingest.stalenessSlo). 1.0 when no SLO is set or nothing was
     * admitted.
     */
    double freshnessSloAttainment() const;

    /**
     * Statistical-efficiency factor of the samples fed to training:
     * (fresh + echoEfficiency * echoed) / (fresh + echoed). 1.0 when
     * the echo policy never engaged (or nothing was consumed).
     */
    double echoEffectiveFactor() const;

    // --- Fig 9: per-batch latency breakdown ----------------------------
    struct LatencyBreakdown
    {
        Time transfer = 0.0;     ///< ssd_read + data_load + others
        Time formatting = 0.0;
        Time augmentation = 0.0;
        Time compute = 0.0;
        Time sync = 0.0;

        Time prepTotal() const
        {
            return transfer + formatting + augmentation;
        }
        Time total() const { return prepTotal() + compute + sync; }

        /** Share of @p part in the total (0 when degenerate). */
        double share(Time part) const;

        /** Preparation share of total batch latency (Fig 9's metric). */
        double prepShare() const { return share(prepTotal()); }
    };
    LatencyBreakdown latency() const;

    /** One prep stage's average wall time (0 when absent). */
    Time stageTime(const std::string &stage) const;

    // --- Figs 10/11/22: host-resource decomposition ---------------------
    double hostCpuCores() const;
    double hostMemBw() const;
    double hostRcBw() const;

    /** Category share of one host axis (e.g. cpuShare("formatting")). */
    double cpuShare(const std::string &category) const;
    double memShare(const std::string &category) const;
    double rcShare(const std::string &category) const;

    // --- bottleneck attribution ----------------------------------------
    /**
     * Device classes ranked most-bottlenecked first: by time-averaged
     * utilization, then saturated fraction, of each class's
     * most-utilized member. With metrics this covers every simulated
     * resource plus
     * the accelerators; without metrics it degrades to the three host
     * axes (demand / capacity) so the ranking is always available.
     */
    std::vector<Bottleneck> bottlenecks() const;

    // --- exporters ------------------------------------------------------
    /** Serialize the full report as JSON (schema in OBSERVABILITY.md). */
    std::string toJson() const;

    /** Serialize as "section,key,value" CSV rows. */
    std::string toCsv() const;

    /**
     * Emit utilization counter tracks and the bottleneck ranking into a
     * Chrome trace. Counters are window-averaged values sampled at the
     * window edges (a stepped band per resource in Perfetto).
     */
    void emitCounters(TraceWriter &trace) const;

    /** Human-readable summary (the tb_report default output). */
    void print(std::FILE *out = stdout) const;

    // --- canonical formulas (SessionResult delegates here) --------------
    static double computeGoodput(double throughput, double reference);
    static double computeEfficiency(const CheckpointStats &ckpt,
                                    Time wallTime);
    static double sumCategories(const std::map<std::string, double> &by);

  private:
    Time windowElapsed() const;

    // Configured host capacities (captured at build time) normalize the
    // metrics-free bottleneck fallback: demand / capacity per axis.
    double hostCpuCapacity_ = 0.0;
    double hostMemCapacity_ = 0.0;
    double hostRcCapacity_ = 0.0;
};

/**
 * Share of @p category in @p byCategory given the axis @p total
 * (0 when total is degenerate). The Fig 11/22 share helper.
 */
double categoryShare(const std::map<std::string, double> &byCategory,
                     const std::string &category, double total);

/** Device class of a fluid resource name ("cpu", "pcie_link", ...). */
std::string classifyResource(const std::string &name);

} // namespace tb

#endif // TRAINBOX_TRAINBOX_REPORT_HH
