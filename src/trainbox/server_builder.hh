/**
 * @file
 * Server assembly.
 *
 * buildServer() turns a ServerConfig into a fully wired simulation: the
 * PCIe tree with the preset's box structure, the host resources, the
 * device array, and — per prep group (one group == one 8-accelerator
 * box) — the chain of *stage templates* describing how a batch moves
 * through the machine under that preset. The TrainingSession executes the
 * templates as fluid flows.
 */

#ifndef TRAINBOX_TRAINBOX_SERVER_BUILDER_HH
#define TRAINBOX_TRAINBOX_SERVER_BUILDER_HH

#include <memory>
#include <string>
#include <vector>

#include "devices/ethernet.hh"
#include "devices/nn_accelerator.hh"
#include "devices/prep_accelerator.hh"
#include "devices/ssd.hh"
#include "memsys/cpu_pool.hh"
#include "memsys/host_memory.hh"
#include "pcie/topology.hh"
#include "sim/metrics.hh"
#include "sim/simulation_core.hh"
#include "trainbox/server_config.hh"
#include "trainbox/train_initializer.hh"
#include "workload/cost_model.hh"

namespace tb {

/** One serial step of a batch's journey (per prep group). */
struct StageTemplate
{
    /** Stage name for latency reporting ("ssd_read", "formatting", ...). */
    std::string name;

    /** Accounting category charged on every resource the stage touches. */
    std::string category;

    /** Demands per sample (bytes, core-seconds, engine-samples...). */
    std::vector<FlowDemand> demandsPerSample;

    /** Absolute rate cap in samples/s (0 = uncapped). */
    double rateCap = 0.0;

    /** Fair-share weight (see FlowSpec::fairWeight). */
    double fairWeight = 1.0;

    /**
     * Corruption hop classes the chunk traverses in this stage
     * (corruptionBit() mask). Inert unless fault injection is enabled
     * with nonzero corruption probabilities.
     */
    unsigned corruptionHops = 0;

    /**
     * Completing this stage verifies the chunk's data: an inserted
     * checksum-verify stage, or the baseline CPU formatting stage whose
     * software decode inherently validates every byte. Silent flips
     * pending on the chain are detected here (training_session.cc).
     */
    bool verifiesIntegrity = false;
};

/** A set of accelerators fed by one preparation pipeline. */
struct PrepGroup
{
    std::string name;

    /** Accelerators consuming this group's batches. */
    std::size_t numAccelerators = 0;

    /** Serial chain executed for the locally prepared fraction. */
    std::vector<StageTemplate> stages;

    /** Fraction of each batch prepared by the prep-pool (TrainBox). */
    double offloadFraction = 0.0;

    /** Serial chain for the offloaded fraction (runs in parallel). */
    std::vector<StageTemplate> offloadStages;

    /** Prep accelerators serving this group (builder-assigned order). */
    std::vector<PrepAccelerator *> preps;

    /**
     * Recovery-path templates (clustered presets; see
     * docs/ROBUSTNESS.md). The fault convention is that a prep-FPGA
     * crash kills preps.back(); the degraded chains stripe over the
     * survivors only. Empty when the group has no survivor (single
     * FPGA) — then only the prep-pool can absorb the load.
     */
    std::vector<StageTemplate> degradedStages;

    /** Offload chain avoiding the crashed FPGA's Ethernet port. */
    std::vector<StageTemplate> degradedOffloadStages;

    /**
     * Local chain staged through host memory — the fallback when the
     * switch-local P2P route is lost (route-loss faults).
     */
    std::vector<StageTemplate> hostPathStages;

    /**
     * Checkpoint drain path for this group's snapshot shard (base unit:
     * one byte). Clustered presets write to the box's own SSDs over the
     * box switch; central presets funnel through the RC to the SSD
     * boxes — contending with prep reads either way. Used only by the
     * Checkpointer; costs nothing when checkpointing is disabled.
     */
    StageTemplate checkpointWrite;

    /**
     * Ingest shard-append path for this group's dataset shards (base
     * unit: one *sample*, scaled by the model's per-sample SSD bytes).
     * Freshly arrived samples drain from the host-DRAM ingest buffer
     * onto the box's own SSDs (clustered) or through the RC to the SSD
     * boxes (central), paying the shard write-amplification and the
     * write→read interference that slows concurrent prep reads. Built
     * only when cfg.ingest.enabled; costs nothing otherwise.
     */
    StageTemplate ingestWrite;
};

/**
 * A fully assembled simulated server.
 *
 * A server is a *client* of a SimulationCore: the core owns the event
 * queue, clock, fluid network, and metrics registry; the server owns
 * the devices, topology, and stage templates wired onto them. The
 * single-argument constructor creates a private core (the historical
 * one-server-one-timeline shape, bit-identical to when the queue and
 * network were value members); the core-taking constructor attaches to
 * a shared core so N servers simulate on one timeline (see
 * docs/FLEET.md).
 */
class Server
{
    // The core (owned or borrowed) must precede the public reference
    // members below: member initialization follows declaration order,
    // and the references bind into the core.
    std::unique_ptr<SimulationCore> ownedCore_;
    SimulationCore &core_;
    std::string prefix_;

  public:
    /** Standalone server with a private simulation core. */
    explicit Server(const ServerConfig &cfg);

    /**
     * Server attached to a shared @p core. Every fluid resource the
     * builder creates is namespaced under @p resourcePrefix
     * ("job0." ...); pass "" only when no other server shares the core.
     */
    Server(const ServerConfig &cfg, SimulationCore &core,
           std::string resourcePrefix);

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    ServerConfig cfg;
    workload::ModelInfo model;
    workload::PrepDemand demand;
    PrepPlan plan;

    /** The simulation core this server is wired onto. */
    SimulationCore &core() const { return core_; }

    /** Prefix on this server's fluid-resource and session-metric names. */
    const std::string &resourcePrefix() const { return prefix_; }

    /**
     * Reset served/utilization accounting on this server's slice of
     * the fluid network only (the creation-order range captured during
     * build). For a standalone server the slice is the whole network,
     * so this matches the historical global reset exactly.
     */
    void resetAccounting();

    /**
     * Observability instruments (docs/OBSERVABILITY.md), owned by the
     * core and shared by every server on it. Enabled iff any attached
     * server sets cfg.metricsEnabled; while disabled it holds no
     * instruments and nothing in the simulation touches it.
     */
    MetricsRegistry &metrics;

    std::unique_ptr<pcie::Topology> topo;
    std::unique_ptr<HostMemory> hostMem;
    std::unique_ptr<CpuPool> cpu;

    std::vector<std::unique_ptr<NvmeSsd>> ssds;
    std::vector<std::unique_ptr<NnAccelerator>> accs;
    std::vector<std::unique_ptr<PrepAccelerator>> preps;
    std::unique_ptr<PrepPool> pool;

    std::vector<PrepGroup> groups;

    /** Per-accelerator batch size actually used. */
    std::size_t batchSize() const { return cfg.effectiveBatchSize(); }

    /** Compute time of one batch on one accelerator. */
    Time computeTime() const;

    /** Ring-sync time across all accelerators. */
    Time syncTime() const;

  private:
    friend std::unique_ptr<Server> buildServer(const ServerConfig &,
                                               SimulationCore *,
                                               const std::string &);

    /** Common tail of both public constructors (nullptr = own a core). */
    Server(const ServerConfig &cfg, SimulationCore *core,
           std::string resourcePrefix);

    /** This server's [begin, end) slice of core().fluid().resources(). */
    std::size_t resBegin_ = 0;
    std::size_t resEnd_ = 0;
};

/** Build a standalone server (private core). fatal()s when invalid. */
std::unique_ptr<Server> buildServer(const ServerConfig &cfg);

/**
 * Build a server onto a shared @p core (nullptr = private core), with
 * its fluid resources namespaced under @p resourcePrefix.
 */
std::unique_ptr<Server> buildServer(const ServerConfig &cfg,
                                    SimulationCore *core,
                                    const std::string &resourcePrefix);

} // namespace tb

#endif // TRAINBOX_TRAINBOX_SERVER_BUILDER_HH
