#include "trainbox/checkpoint.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/math_util.hh"
#include "sim/trace.hh"
#include "trainbox/server_builder.hh"

namespace tb {

const char *
checkpointModeName(CheckpointMode m)
{
    switch (m) {
      case CheckpointMode::Sync:
        return "sync";
      case CheckpointMode::Async:
        return "async";
    }
    return "?";
}

Time
youngDalyInterval(Time cost, Time mtbf)
{
    if (cost <= 0.0 || mtbf <= 0.0)
        return 0.0;
    return std::sqrt(2.0 * cost * mtbf);
}

Time
dalyInterval(Time cost, Time mtbf)
{
    if (cost <= 0.0 || mtbf <= 0.0)
        return 0.0;
    if (cost >= 2.0 * mtbf)
        return youngDalyInterval(cost, mtbf);
    const double x = cost / (2.0 * mtbf);
    return youngDalyInterval(cost, mtbf) *
               (1.0 + std::sqrt(x) / 3.0 + x) -
           cost;
}

double
checkpointEfficiencyModel(Time interval, Time cost, Time mtbf,
                          Time restart)
{
    if (interval <= 0.0 || mtbf <= 0.0)
        return 0.0;
    const double overhead = cost / (interval + cost) +
                            (interval / 2.0 + restart) / mtbf;
    return clamp(1.0 - overhead, 0.0, 1.0);
}

Checkpointer::Checkpointer(Server &server, TraceWriter *trace)
    : server_(server), trace_(trace)
{
    // Each prep group drains its accelerator-proportional shard of the
    // snapshot onto its own storage path (its box SSDs under
    // clustering; the shared SSD boxes through the RC otherwise).
    const Bytes total = totalBytes();
    const double n_acc =
        static_cast<double>(server_.cfg.numAccelerators);
    shardBytes_.reserve(server_.groups.size());
    for (const PrepGroup &g : server_.groups)
        shardBytes_.push_back(
            total * static_cast<double>(g.numAccelerators) / n_acc);
}

Checkpointer::~Checkpointer()
{
    // Abandon an unfinished drain (run ended mid-flight): suppress the
    // completions so they cannot reach a dead checkpointer.
    for (FlowId f : drainFlows_)
        server_.core().fluid().cancelFlow(f);
    if (snapshotEv_.valid())
        server_.core().events().cancel(snapshotEv_);
}

Bytes
Checkpointer::totalBytes() const
{
    return workload::checkpointBytes(
        server_.model, server_.cfg.checkpoint.optimizerSlots);
}

void
Checkpointer::accruePause(Time pause)
{
    stats_.pauseTime += pause;
    pauseSinceAnchor_ += pause;
}

bool
Checkpointer::maybeBegin(std::size_t step, std::function<void()> on_resume)
{
    const CheckpointConfig &cfg = server_.cfg.checkpoint;
    if (!cfg.enabled)
        return false;
    const Time now = server_.core().events().now();
    if (!force_ && now - lastResume_ < cfg.interval)
        return false;
    if (draining_) {
        // An async drain is still in flight; a second concurrent
        // snapshot would need a second buffer, so skip this boundary.
        // A forced request stays pending for the next boundary.
        ++stats_.skipped;
        return false;
    }

    force_ = false;
    draining_ = true;
    captureStep_ = step;
    captureTime_ = now;
    onResume_ = std::move(on_resume);

    if (cfg.mode == CheckpointMode::Sync) {
        drainStart_ = now;
        launchDrain();
        return true;
    }

    // Async: pause only for the device -> buffer snapshot, then drain
    // in the background.
    const Time snapshot = totalBytes() / cfg.snapshotBandwidth;
    snapshotEv_ = server_.core().events().scheduleIn(snapshot, [this] {
        snapshotEv_.invalidate();
        const Time end = server_.core().events().now();
        accruePause(end - captureTime_);
        if (trace_)
            trace_->complete("checkpoint", "ckpt_snapshot", captureTime_,
                             end - captureTime_, "checkpoint");
        lastResume_ = end;
        drainStart_ = end;
        launchDrain();
        auto resume = std::move(onResume_);
        onResume_ = nullptr;
        resume();
    });
    return true;
}

void
Checkpointer::launchDrain()
{
    panic_if(outstanding_ != 0, "checkpoint drain already in flight");
    for (std::size_t g = 0; g < server_.groups.size(); ++g) {
        if (shardBytes_[g] <= 0.0)
            continue;
        FlowSpec spec;
        spec.category = "checkpoint";
        spec.size = shardBytes_[g];
        spec.demands =
            server_.groups[g].checkpointWrite.demandsPerSample;
        spec.fairWeight = server_.groups[g].checkpointWrite.fairWeight;
        spec.onComplete = [this, g](Time now) {
            // Completed flows were never cancelled; forget the id.
            if (g < drainFlows_.size())
                drainFlows_[g] = 0;
            if (--outstanding_ == 0)
                onDrainComplete(now);
        };
        ++outstanding_;
        if (drainFlows_.size() <= g)
            drainFlows_.resize(g + 1, 0);
        drainFlows_[g] = server_.core().fluid().startFlow(std::move(spec));
    }
    panic_if(outstanding_ == 0,
             "checkpoint drain launched with no shards");
}

void
Checkpointer::onDrainComplete(Time now)
{
    const CheckpointConfig &cfg = server_.cfg.checkpoint;
    draining_ = false;
    drainFlows_.clear();
    ++stats_.committed;
    stats_.bytesWritten += totalBytes();
    costSum_ += now - captureTime_;
    durableStep_ = captureStep_;

    if (cfg.mode == CheckpointMode::Sync) {
        // The whole drain was a training pause; work committed from
        // here on is protected by this checkpoint.
        accruePause(now - captureTime_);
        if (trace_)
            trace_->complete("checkpoint", "ckpt_sync", captureTime_,
                             now - captureTime_, "checkpoint");
        lastResume_ = now;
        anchor_ = now;
        pauseSinceAnchor_ = 0.0;
        auto resume = std::move(onResume_);
        onResume_ = nullptr;
        resume();
    } else {
        // Async: training already resumed at snapshot end; everything
        // after that instant is at risk until the *next* commit.
        if (trace_)
            trace_->complete("checkpoint", "ckpt_drain", drainStart_,
                             now - drainStart_, "checkpoint");
        anchor_ = drainStart_;
        pauseSinceAnchor_ = 0.0;
    }
    if (trace_)
        trace_->counter("checkpoint", "durable_step", now,
                        static_cast<double>(durableStep_));
}

std::size_t
Checkpointer::crash(Time now, std::size_t current_step)
{
    ++stats_.fatalCrashes;
    stats_.stepsLost += current_step - durableStep_;

    // A partial checkpoint file is useless: abort the capture.
    if (snapshotEv_.valid())
        server_.core().events().cancel(snapshotEv_);
    for (FlowId f : drainFlows_)
        if (f != 0)
            server_.core().fluid().cancelFlow(f);
    drainFlows_.clear();
    outstanding_ = 0;
    draining_ = false;
    onResume_ = nullptr;

    // Work since the at-risk anchor is discarded; pauses inside that
    // window were already billed as checkpoint overhead.
    stats_.lostWorkTime +=
        std::max(0.0, (now - anchor_) - pauseSinceAnchor_);
    pauseSinceAnchor_ = 0.0;
    crashTime_ = now;
    return durableStep_;
}

void
Checkpointer::restarted(Time now)
{
    stats_.restartTime += now - crashTime_;
    anchor_ = now;
    lastResume_ = now; // protect the replay before checkpointing again
}

CheckpointStats
Checkpointer::stats() const
{
    CheckpointStats out = stats_;
    if (out.committed > 0)
        out.avgCost = costSum_ / static_cast<double>(out.committed);
    return out;
}

} // namespace tb
