/**
 * @file
 * Checkpoint/restore subsystem for the training simulator.
 *
 * Extreme-scale training survives component failures by periodically
 * making the model + optimizer state durable and, after a fatal crash,
 * rolling back to the last durable snapshot and replaying the lost
 * steps. In TrainBox the checkpoint writes land on the *same* clustered
 * NVMe SSDs and PCIe switches that feed the data-preparation path, so
 * checkpoint bandwidth directly competes with prep reads — a contention
 * the paper's balance argument makes worth modeling precisely.
 *
 * Two checkpoint modes are simulated (CheckpointConfig::mode):
 *
 *  - **Sync** — training pauses at a step boundary while the snapshot
 *    drains to the SSDs; the pause is the classic checkpoint cost C of
 *    the Young–Daly analysis.
 *  - **Async** — training pauses only for a short device-buffer
 *    snapshot (state copied into host/FPGA DRAM at
 *    `snapshotBandwidth`), then a background drain flow writes the
 *    buffer to the SSDs while training continues. The drain contends
 *    with prep reads on SSD media and fabric links; the checkpoint
 *    only becomes durable when the drain completes.
 *
 * The interval-selection problem is the classic one solved by Young
 * (1974) and refined by Daly (2006): checkpoint too often and the cost
 * C dominates; too rarely and the expected lost work W/2 per failure
 * dominates. youngDalyInterval() returns the first-order optimum
 * sqrt(2 C M); bench/checkpoint_sweep validates it against the
 * simulated optimum.
 *
 * See docs/ROBUSTNESS.md ("Checkpoint & restore").
 */

#ifndef TRAINBOX_TRAINBOX_CHECKPOINT_HH
#define TRAINBOX_TRAINBOX_CHECKPOINT_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "fluid/fluid.hh"

namespace tb {

class Server;
class TraceWriter;

/** How a checkpoint drains to durable storage. */
enum class CheckpointMode
{
    Sync,  ///< training pauses for the whole SSD drain
    Async, ///< short snapshot pause, background drain
};

/** Display name ("sync" / "async"). */
const char *checkpointModeName(CheckpointMode m);

/** Periodic-checkpoint scenario description (ServerConfig::checkpoint). */
struct CheckpointConfig
{
    /** Master switch. When false the checkpoint path costs nothing. */
    bool enabled = false;

    CheckpointMode mode = CheckpointMode::Sync;

    /**
     * Seconds of training between checkpoint captures (the Young–Daly
     * W). The clock restarts when training resumes after a capture, so
     * the interval measures useful work, not work + pause. Checkpoints
     * are taken at the first step boundary after the interval elapses.
     */
    Time interval = 30.0;

    /**
     * Optimizer state as a multiple of the parameter bytes (Adam keeps
     * two moment tensors => 2.0). Checkpoint size is
     * (1 + optimizerSlots) * modelBytes.
     */
    double optimizerSlots = 2.0;

    /**
     * Aggregate rate of the device -> host/FPGA buffer snapshot copy
     * (the async mode's only training pause; also bounds nothing in
     * sync mode, where the SSD drain is the pause).
     */
    Rate snapshotBandwidth = 100.0e9;

    /**
     * Wall time from a fatal crash to the machine accepting work again
     * (process relaunch, device reset, checkpoint reload). Applies to
     * fatal-crash recovery even when periodic checkpointing is
     * disabled (then every crash rolls back to step 0).
     */
    Time restartLatency = 10.0;
};

/**
 * Young's first-order optimal checkpoint interval: W = sqrt(2 C M) for
 * checkpoint cost @p cost and mean time between failures @p mtbf.
 * Returns 0 when either input is non-positive.
 */
Time youngDalyInterval(Time cost, Time mtbf);

/**
 * Daly's higher-order refinement
 * W = sqrt(2 C M) * (1 + sqrt(C/(2M))/3 + C/(2M)) - C, valid for
 * C < 2 M (falls back to the first-order form otherwise).
 */
Time dalyInterval(Time cost, Time mtbf);

/**
 * Predicted efficiency (useful time / wall time) of checkpointing every
 * @p interval seconds with cost @p cost, failures every @p mtbf on
 * average, and @p restart seconds of downtime per failure:
 * 1 - C/(W+C) - (W/2 + R)/M. Clamped to [0, 1]; 0 when inputs are
 * degenerate.
 */
double checkpointEfficiencyModel(Time interval, Time cost, Time mtbf,
                                 Time restart);

/** Everything a session reports about checkpoint/restore activity. */
struct CheckpointStats
{
    std::size_t committed = 0;    ///< checkpoints made durable
    std::size_t skipped = 0;      ///< due while a drain was in flight
    std::size_t fatalCrashes = 0; ///< rollbacks taken
    std::size_t stepsLost = 0;    ///< global steps rolled back (replayed)
    Bytes bytesWritten = 0.0;     ///< durable checkpoint bytes
    Time pauseTime = 0.0;         ///< training pauses (drains/snapshots)
    Time lostWorkTime = 0.0;      ///< at-risk work discarded by crashes
    Time restartTime = 0.0;       ///< downtime spent restarting
    Time avgCost = 0.0;           ///< mean capture -> durable latency
};

/**
 * Drives periodic checkpoints and crash rollback for one
 * TrainingSession run. The session calls maybeBegin() at every step
 * boundary and crash()/restarted() around fatal faults; the
 * checkpointer owns the drain flows (built from each PrepGroup's
 * checkpointWrite template), the durable-state bookkeeping, and the
 * wall-time ledger behind SessionResult::efficiency().
 */
class Checkpointer
{
  public:
    /**
     * @param trace optional Chrome-trace writer (borrowed; must outlive
     *              the run, same contract as TrainingSession::setTrace)
     */
    Checkpointer(Server &server, TraceWriter *trace);
    ~Checkpointer();

    Checkpointer(const Checkpointer &) = delete;
    Checkpointer &operator=(const Checkpointer &) = delete;

    /** Bytes of one full snapshot (model + optimizer state). */
    Bytes totalBytes() const;

    /**
     * Step-boundary hook: start a checkpoint of the state at @p step
     * when the interval has elapsed. Returns true when training must
     * pause; @p onResume then fires exactly once when compute may
     * restart (drain end in Sync mode, snapshot end in Async). Returns
     * false when no pause is needed (not yet due, disabled, or an
     * async drain is still in flight — counted as skipped).
     */
    bool maybeBegin(std::size_t step, std::function<void()> onResume);

    /**
     * Ask for a capture at the next step boundary regardless of the
     * interval clock (a drain notice wants durable state before the
     * member detaches). No-op when checkpointing is disabled; the
     * request persists until a capture actually begins.
     */
    void requestCapture() { force_ = true; }

    /**
     * A fatal crash at time @p now with @p currentStep steps
     * committed: aborts any in-flight capture (partial files are
     * useless), accounts the lost work, and returns the step to roll
     * back to (0 when nothing is durable yet).
     */
    std::size_t crash(Time now, std::size_t currentStep);

    /** The restart after the last crash() finished at time @p now. */
    void restarted(Time now);

    /** True while a capture or background drain is in flight. */
    bool draining() const { return draining_; }

    /**
     * Step of the last durable checkpoint (0 = none). Besides the
     * in-session crash/rollback path above, the fleet retry path
     * (trainbox/fleet.cc) reads this off a killed session to bank
     * durable progress across restart attempts, and charges the same
     * CheckpointConfig::restartLatency on top of the retry backoff
     * before the replacement attempt is queued.
     */
    std::size_t lastDurableStep() const { return durableStep_; }

    /** Finalized counters (avgCost computed over committed drains). */
    CheckpointStats stats() const;

  private:
    void launchDrain();
    void onDrainComplete(Time now);
    void accruePause(Time pause);

    Server &server_;
    TraceWriter *trace_;
    std::vector<Bytes> shardBytes_; ///< per-group snapshot shard

    // in-flight capture
    bool draining_ = false;
    std::size_t captureStep_ = 0;
    Time captureTime_ = 0.0;
    Time drainStart_ = 0.0;
    std::size_t outstanding_ = 0;
    std::vector<FlowId> drainFlows_;
    EventId snapshotEv_{};
    std::function<void()> onResume_;

    // durable state + the interval clock
    std::size_t durableStep_ = 0;
    Time lastResume_ = 0.0;
    bool force_ = false; ///< requestCapture() pending

    // wall-time ledger: work after anchor_ is lost if a crash arrives
    // before the next durable commit; pauses already billed inside the
    // at-risk window are subtracted so no second is counted twice.
    Time anchor_ = 0.0;
    Time pauseSinceAnchor_ = 0.0;
    Time crashTime_ = 0.0;

    Time costSum_ = 0.0;
    CheckpointStats stats_;
};

} // namespace tb

#endif // TRAINBOX_TRAINBOX_CHECKPOINT_HH
