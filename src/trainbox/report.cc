#include "trainbox/report.hh"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/logging.hh"
#include "common/math_util.hh"
#include "common/table.hh"
#include "sim/trace.hh"

namespace tb {

namespace {

/** Prep stages that move data (vs transform it) — the Fig 9 buckets. */
bool
isTransferStage(const std::string &name)
{
    static const char *const kTransfer[] = {
        "ssd_read",  "data_load", "others",    "copy_to_prep",
        "copy_from_prep", "pool_send", "pool_recv",
    };
    for (const char *t : kTransfer)
        if (name == t)
            return true;
    return false;
}

void
appendEscaped(std::string &out, const std::string &s)
{
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
}

std::string
jstr(const std::string &s)
{
    std::string out = "\"";
    appendEscaped(out, s);
    out += '"';
    return out;
}

std::string
jnum(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

/** Fixed-precision percent — keeps the golden-JSON test stable. */
std::string
jpct(double fraction)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.4f", 100.0 * fraction);
    return buf;
}

void
jsonMap(std::string &out, const std::map<std::string, double> &by)
{
    out += '{';
    bool first = true;
    for (const auto &[k, v] : by) {
        if (!first)
            out += ", ";
        first = false;
        out += jstr(k) + ": " + jnum(v);
    }
    out += '}';
}

} // namespace

double
categoryShare(const std::map<std::string, double> &by_category,
              const std::string &category, double total)
{
    if (total <= 0.0)
        return 0.0;
    auto it = by_category.find(category);
    return it == by_category.end() ? 0.0 : it->second / total;
}

std::string
classifyResource(const std::string &name)
{
    auto ends_with = [&name](const char *suffix) {
        const std::size_t n = std::strlen(suffix);
        return name.size() >= n &&
               name.compare(name.size() - n, n, suffix) == 0;
    };
    if (name == "host.cpu")
        return "cpu";
    if (name == "host.dram")
        return "dram";
    if (name == "pcie.rc")
        return "root_complex";
    if (ends_with(".flash"))
        return "ssd_read";
    if (ends_with(".write"))
        return "ssd_write";
    if (ends_with(".engine"))
        return name.rfind("pool.", 0) == 0 ? "pool_engine"
                                           : "prep_engine";
    if (ends_with(".eth") || ends_with(".fabric"))
        return "ethernet";
    if (ends_with(".up") || ends_with(".down"))
        return "pcie_link";
    return "other";
}

double
SessionReport::computeGoodput(double throughput, double reference)
{
    // Clamped: a degraded run can never report more than the reference,
    // and measurement noise must not push the fraction past 1.
    return reference > 0.0 ? clamp(throughput / reference, 0.0, 1.0)
                           : 0.0;
}

double
SessionReport::computeEfficiency(const CheckpointStats &ckpt,
                                 Time wall_time)
{
    if (wall_time <= 0.0)
        return 0.0;
    const Time overhead =
        ckpt.pauseTime + ckpt.lostWorkTime + ckpt.restartTime;
    return clamp(1.0 - overhead / wall_time, 0.0, 1.0);
}

double
SessionReport::sumCategories(const std::map<std::string, double> &by)
{
    double total = 0.0;
    for (const auto &[cat, v] : by)
        total += v;
    return total;
}

// @p res may be a *partial* result frozen by TrainingSession::kill()
// (fleet host faults / horizon freezes): stepsMeasured can be 0 and the
// measurement window degenerate. Every derived metric below and in the
// accessors guards its divisor (wallTime, windowElapsed, stepTime), so
// partial reports flow through build() and the exporters unchanged.
SessionReport
SessionReport::build(const Server &server, const SessionResult &res)
{
    SessionReport r;
    r.preset = presetName(server.cfg.preset);
    r.model = server.model.name;
    r.numAccelerators = server.cfg.numAccelerators;
    r.batchSize = server.batchSize();
    r.targetThroughput = workload::targetThroughput(
        server.model, server.cfg.numAccelerators, server.cfg.sync);
    r.result = res;
    r.hostCpuCapacity_ = server.cfg.host.cpuCores;
    r.hostMemCapacity_ = server.cfg.host.memBandwidth;
    r.hostRcCapacity_ = server.cfg.host.rcBandwidth;

    const MetricsRegistry &m = server.core().metrics();
    if (!m.enabled())
        return r;
    r.hasMetrics = true;

    // On a shared core the registry holds every co-resident server's
    // instruments; this server's are the ones under its resource prefix
    // ("" standalone — then the filter passes everything, as before).
    // Classification and display use the *unprefixed* name, so a report
    // for "job0." reads identically to a standalone one.
    const std::string kPrefix = "util." + server.resourcePrefix();
    const std::size_t prefix_len = kPrefix.size();
    for (const auto &entry : m.histograms()) {
        if (entry.name.rfind(kPrefix, 0) != 0)
            continue;
        const std::string res_name = entry.name.substr(prefix_len);
        ResourceUsage u;
        u.name = res_name;
        u.kind = classifyResource(res_name);
        u.utilization = entry.metric->timeAverage();
        u.peak = entry.metric->peak();
        u.saturatedFraction = entry.metric->saturatedFraction();
        if (const FluidResource *fr = server.core().fluid().findResource(
                server.resourcePrefix() + res_name)) {
            for (const auto &[cat, units] : fr->servedByCategory()) {
                if (units > u.dominantShare * fr->totalServed()) {
                    u.dominantCategory = cat;
                    u.dominantShare = fr->totalServed() > 0.0
                        ? units / fr->totalServed() : 0.0;
                }
            }
        }
        r.resources.push_back(std::move(u));
    }

    // The NN accelerators are events, not fluid flows; synthesize their
    // utilization from the session's busy counter.
    const MetricCounter *busy =
        m.findCounter(server.resourcePrefix() + "session.compute_busy");
    const Time elapsed = r.windowElapsed();
    if (busy && elapsed > 0.0 && !server.groups.empty()) {
        ResourceUsage u;
        u.name = "acc.compute";
        u.kind = "accelerator";
        u.utilization = clamp(
            busy->value() /
                (static_cast<double>(server.groups.size()) * elapsed),
            0.0, 1.0);
        u.peak = u.utilization > 0.0 ? 1.0 : 0.0;
        // A group computing back-to-back is a saturated accelerator.
        u.saturatedFraction =
            u.utilization >= TimeWeightedHistogram::kDefaultSaturation
                ? 1.0 : 0.0;
        u.dominantCategory = "compute";
        u.dominantShare = 1.0;
        r.resources.push_back(std::move(u));
    }
    return r;
}

Time
SessionReport::windowElapsed() const
{
    return result.stepTime * static_cast<double>(result.stepsMeasured);
}

double
SessionReport::targetFraction() const
{
    return targetThroughput > 0.0
        ? result.throughput / targetThroughput : 0.0;
}

double
SessionReport::goodput(double reference_throughput) const
{
    return computeGoodput(result.throughput, reference_throughput);
}

double
SessionReport::efficiency() const
{
    return computeEfficiency(result.checkpoint, result.wallTime);
}

void
SessionReport::attachPrepQuarantine(
    std::size_t items_processed,
    const std::map<std::string, std::size_t> &by_reason)
{
    prepItemsProcessed = items_processed;
    prepQuarantineByReason = by_reason;
}

std::size_t
SessionReport::prepItemsQuarantined() const
{
    std::size_t total = 0;
    for (const auto &[reason, n] : prepQuarantineByReason)
        total += n;
    return total;
}

double
SessionReport::availability() const
{
    if (result.wallTime <= 0.0)
        return 0.0;
    return clamp(1.0 - result.faults.degradedTime / result.wallTime,
                 0.0, 1.0);
}

double
SessionReport::capacityAvailability() const
{
    if (result.wallTime <= 0.0)
        return 0.0;
    return clamp(1.0 - result.elasticity.degradedCapacityTime /
                           result.wallTime,
                 0.0, 1.0);
}

double
SessionReport::sloAttainment() const
{
    const double target = result.elasticity.sloTargetSamplesPerSec;
    if (target <= 0.0)
        return 1.0;
    return clamp(result.throughput / target, 0.0, 1.0);
}

double
SessionReport::ingestAdmitRate() const
{
    const SessionResult::IngestStats &in = result.ingest;
    if (in.samplesArrived <= 0.0)
        return 1.0;
    return clamp(in.samplesAdmitted / in.samplesArrived, 0.0, 1.0);
}

double
SessionReport::ingestShedRate() const
{
    const SessionResult::IngestStats &in = result.ingest;
    if (in.samplesArrived <= 0.0)
        return 0.0;
    return clamp(in.samplesShed / in.samplesArrived, 0.0, 1.0);
}

Time
SessionReport::avgIngestStaleness() const
{
    const SessionResult::IngestStats &in = result.ingest;
    if (in.samplesAdmitted <= 0.0)
        return 0.0;
    return in.stalenessSum / in.samplesAdmitted;
}

double
SessionReport::freshnessSloAttainment() const
{
    const SessionResult::IngestStats &in = result.ingest;
    if (in.stalenessSloSec <= 0.0 || in.samplesAdmitted <= 0.0)
        return 1.0;
    return clamp(in.samplesWithinSlo / in.samplesAdmitted, 0.0, 1.0);
}

double
SessionReport::echoEffectiveFactor() const
{
    const SessionResult::IngestStats &in = result.ingest;
    const double fresh = result.elasticity.samplesConsumed;
    const double total = fresh + in.samplesEchoed;
    if (total <= 0.0 || in.samplesEchoed <= 0.0)
        return 1.0;
    return clamp((fresh + in.echoEfficiency * in.samplesEchoed) / total,
                 0.0, 1.0);
}

double
SessionReport::LatencyBreakdown::share(Time part) const
{
    const Time t = total();
    return t > 0.0 ? part / t : 0.0;
}

SessionReport::LatencyBreakdown
SessionReport::latency() const
{
    LatencyBreakdown b;
    for (const auto &[name, t] : result.prepStageTime) {
        if (name == "formatting")
            b.formatting += t;
        else if (name == "augmentation")
            b.augmentation += t;
        else if (isTransferStage(name))
            b.transfer += t;
        // ckpt_write and other non-prep stages are not batch latency
    }
    b.compute = result.computeTime;
    b.sync = result.syncTime;
    return b;
}

Time
SessionReport::stageTime(const std::string &stage) const
{
    auto it = result.prepStageTime.find(stage);
    return it == result.prepStageTime.end() ? 0.0 : it->second;
}

double
SessionReport::hostCpuCores() const
{
    return sumCategories(result.cpuCoresByCategory);
}

double
SessionReport::hostMemBw() const
{
    return sumCategories(result.memBwByCategory);
}

double
SessionReport::hostRcBw() const
{
    return sumCategories(result.rcBwByCategory);
}

double
SessionReport::cpuShare(const std::string &category) const
{
    return categoryShare(result.cpuCoresByCategory, category,
                         hostCpuCores());
}

double
SessionReport::memShare(const std::string &category) const
{
    return categoryShare(result.memBwByCategory, category, hostMemBw());
}

double
SessionReport::rcShare(const std::string &category) const
{
    return categoryShare(result.rcBwByCategory, category, hostRcBw());
}

std::vector<Bottleneck>
SessionReport::bottlenecks() const
{
    std::vector<Bottleneck> ranked;
    if (hasMetrics) {
        // Per device class, the bottleneck is its most-utilized member
        // (one saturated link stalls the pipeline regardless of its
        // siblings' slack).
        std::map<std::string, const ResourceUsage *> best;
        for (const ResourceUsage &u : resources) {
            auto [it, fresh] = best.emplace(u.kind, &u);
            if (!fresh && u.utilization > it->second->utilization)
                it->second = &u;
        }
        for (const auto &[kind, u] : best) {
            if (u->utilization <= 0.0)
                continue;
            ranked.push_back({kind, u->name, u->utilization,
                              u->saturatedFraction,
                              u->dominantCategory});
        }
    } else {
        // Metrics-free fallback: the three host axes from the fluid
        // accounting, normalized as demand / configured capacity so the
        // axes are comparable. Device-level attribution needs
        // cfg.metricsEnabled.
        const struct
        {
            const char *kind;
            const char *resource;
            double used;
            double capacity;
            const std::map<std::string, double> &by;
        } axes[] = {
            {"cpu", "host.cpu", hostCpuCores(), hostCpuCapacity_,
             result.cpuCoresByCategory},
            {"dram", "host.dram", hostMemBw(), hostMemCapacity_,
             result.memBwByCategory},
            {"root_complex", "pcie.rc", hostRcBw(), hostRcCapacity_,
             result.rcBwByCategory},
        };
        for (const auto &axis : axes) {
            Bottleneck b;
            b.kind = axis.kind;
            b.resource = axis.resource;
            b.utilization = axis.capacity > 0.0
                ? axis.used / axis.capacity : axis.used;
            for (const auto &[cat, v] : axis.by)
                if (b.dominantCategory.empty() ||
                    v > axis.by.at(b.dominantCategory))
                    b.dominantCategory = cat;
            ranked.push_back(std::move(b));
        }
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const Bottleneck &a, const Bottleneck &b) {
                  if (a.utilization != b.utilization)
                      return a.utilization > b.utilization;
                  if (a.saturatedFraction != b.saturatedFraction)
                      return a.saturatedFraction > b.saturatedFraction;
                  return a.kind < b.kind;
              });
    return ranked;
}

std::string
SessionReport::toJson() const
{
    const LatencyBreakdown lat = latency();
    std::string out = "{\n";

    out += "  \"config\": {\"preset\": " + jstr(preset) +
           ", \"model\": " + jstr(model) +
           ", \"accelerators\": " + jnum(double(numAccelerators)) +
           ", \"batch_size\": " + jnum(double(batchSize)) + "},\n";

    out += "  \"throughput\": {\"samples_per_sec\": " +
           jnum(result.throughput) +
           ", \"target_samples_per_sec\": " + jnum(targetThroughput) +
           ", \"target_fraction\": " + jnum(targetFraction()) +
           ", \"step_time_sec\": " + jnum(result.stepTime) +
           ", \"compute_time_sec\": " + jnum(result.computeTime) +
           ", \"sync_time_sec\": " + jnum(result.syncTime) +
           ", \"prep_latency_sec\": " + jnum(result.prepLatency) +
           ", \"steps_measured\": " +
           jnum(double(result.stepsMeasured)) + "},\n";

    out += "  \"latency_breakdown_pct\": {\"transfer\": " +
           jpct(lat.share(lat.transfer)) +
           ", \"formatting\": " + jpct(lat.share(lat.formatting)) +
           ", \"augmentation\": " + jpct(lat.share(lat.augmentation)) +
           ", \"compute\": " + jpct(lat.share(lat.compute)) +
           ", \"sync\": " + jpct(lat.share(lat.sync)) +
           ", \"prep_total\": " + jpct(lat.prepShare()) + "},\n";

    out += "  \"prep_stage_time_sec\": ";
    jsonMap(out, result.prepStageTime);
    out += ",\n";

    out += "  \"host_demand\": {\n";
    out += "    \"cpu_cores\": {\"total\": " + jnum(hostCpuCores()) +
           ", \"by_category\": ";
    jsonMap(out, result.cpuCoresByCategory);
    out += "},\n";
    out += "    \"mem_bw\": {\"total\": " + jnum(hostMemBw()) +
           ", \"by_category\": ";
    jsonMap(out, result.memBwByCategory);
    out += "},\n";
    out += "    \"rc_bw\": {\"total\": " + jnum(hostRcBw()) +
           ", \"by_category\": ";
    jsonMap(out, result.rcBwByCategory);
    out += "}\n  },\n";

    out += "  \"robustness\": {\"efficiency\": " + jnum(efficiency()) +
           ", \"availability\": " + jnum(availability()) +
           ", \"faults_injected\": " +
           jnum(double(result.faults.faultsInjected)) +
           ", \"checkpoints_committed\": " +
           jnum(double(result.checkpoint.committed)) +
           ", \"steps_lost\": " +
           jnum(double(result.checkpoint.stepsLost)) + "},\n";

    const SessionResult::ElasticityStats &el = result.elasticity;
    out += "  \"elasticity\": {\"events\": " + jnum(double(el.events)) +
           ", \"drains\": " + jnum(double(el.drains)) +
           ", \"preemptions\": " + jnum(double(el.preemptions)) +
           ", \"joins\": " + jnum(double(el.joins)) +
           ", \"chains_rebalanced\": " +
           jnum(double(el.chainsRebalanced)) +
           ", \"samples_lost_to_preemption\": " +
           jnum(el.samplesLostToPreemption) +
           ", \"samples_saved_by_drain\": " +
           jnum(el.samplesSavedByDrain) +
           ", \"samples_dropped_at_drain\": " +
           jnum(el.samplesDroppedAtDrain) +
           ", \"degraded_capacity_time_sec\": " +
           jnum(el.degradedCapacityTime) +
           ", \"zero_capacity_time_sec\": " + jnum(el.zeroCapacityTime) +
           ", \"rebalance_time_sec\": " + jnum(el.rebalanceTime) +
           ", \"avg_active_fraction\": " + jnum(el.avgActiveFraction) +
           ", \"capacity_availability\": " +
           jnum(capacityAvailability()) +
           ", \"slo_target_samples_per_sec\": " +
           jnum(el.sloTargetSamplesPerSec) +
           ", \"slo_attainment\": " + jnum(sloAttainment()) +
           ", \"ledger\": {\"prepared\": " + jnum(el.samplesPrepared) +
           ", \"consumed\": " + jnum(el.samplesConsumed) +
           ", \"cached_at_end\": " + jnum(el.samplesCachedAtEnd) +
           ", \"discarded\": " + jnum(el.samplesDiscarded) + "}},\n";

    const SessionResult::IngestStats &in = result.ingest;
    out += "  \"ingest\": {\"arrival_events\": " +
           jnum(double(in.arrivalEvents)) +
           ", \"overload_trips\": " + jnum(double(in.overloadTrips)) +
           ", \"stalls\": " + jnum(double(in.stalls)) +
           ", \"write_flows\": " + jnum(double(in.writeFlows)) +
           ", \"write_retries\": " + jnum(double(in.writeRetries)) +
           ", \"write_failures\": " + jnum(double(in.writeFailures)) +
           ", \"admit_rate\": " + jnum(ingestAdmitRate()) +
           ", \"shed_rate\": " + jnum(ingestShedRate()) +
           ", \"overload_time_sec\": " + jnum(in.overloadTime) +
           ", \"stall_time_sec\": " + jnum(in.stallTime) +
           ", \"peak_buffer_level\": " + jnum(in.peakBufferLevel) +
           ", \"samples_echoed\": " + jnum(in.samplesEchoed) +
           ", \"echo_effective_factor\": " + jnum(echoEffectiveFactor()) +
           ", \"avg_staleness_sec\": " + jnum(avgIngestStaleness()) +
           ", \"max_staleness_sec\": " + jnum(in.stalenessMax) +
           ", \"staleness_slo_sec\": " + jnum(in.stalenessSloSec) +
           ", \"freshness_slo_attainment\": " +
           jnum(freshnessSloAttainment()) +
           ", \"ledger\": {\"arrived\": " + jnum(in.samplesArrived) +
           ", \"admitted\": " + jnum(in.samplesAdmitted) +
           ", \"shed\": " + jnum(in.samplesShed) +
           ", \"throttled\": " + jnum(in.samplesThrottled) +
           ", \"shed_policy\": " + jnum(in.samplesShedPolicy) +
           ", \"overflow_dropped\": " + jnum(in.samplesOverflowDropped) +
           ", \"abandoned_writes\": " +
           jnum(in.samplesAbandonedWrites) +
           ", \"in_flight_at_end\": " +
           jnum(in.samplesInFlightAtEnd) + "}},\n";

    const SessionResult::IntegrityStats &integ = result.integrity;
    out += "  \"integrity\": {\"injected\": " +
           jnum(double(integ.injected)) +
           ", \"detected\": " + jnum(double(integ.detected)) +
           ", \"escaped\": " + jnum(double(integ.escaped)) +
           ", \"escape_rate\": " + jnum(integ.escapeRate()) +
           ", \"pcie_replays\": " + jnum(double(integ.pcieReplays)) +
           ", \"recoveries\": " + jnum(double(integ.recoveries)) +
           ", \"chunks_quarantined\": " +
           jnum(double(integ.chunksQuarantined)) + ", \"by_kind\": {";
    for (std::size_t k = 0; k < kNumCorruptionKinds; ++k) {
        if (k > 0)
            out += ", ";
        out += jstr(corruptionKindName(static_cast<CorruptionKind>(k))) +
               ": " + jnum(double(integ.injectedByKind[k]));
    }
    out += "}},\n";

    out += "  \"prep_quarantine\": {\"items_processed\": " +
           jnum(double(prepItemsProcessed)) + ", \"quarantined\": " +
           jnum(double(prepItemsQuarantined())) + ", \"by_reason\": {";
    {
        bool first_reason = true;
        for (const auto &[reason, n] : prepQuarantineByReason) {
            if (!first_reason)
                out += ", ";
            first_reason = false;
            out += jstr(reason) + ": " + jnum(double(n));
        }
    }
    out += "}},\n";

    out += "  \"has_metrics\": ";
    out += hasMetrics ? "true" : "false";
    out += ",\n  \"utilization\": [";
    bool first = true;
    for (const ResourceUsage &u : resources) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    {\"resource\": " + jstr(u.name) +
               ", \"kind\": " + jstr(u.kind) +
               ", \"utilization\": " + jnum(u.utilization) +
               ", \"peak\": " + jnum(u.peak) +
               ", \"saturated_fraction\": " + jnum(u.saturatedFraction) +
               ", \"dominant_category\": " + jstr(u.dominantCategory) +
               "}";
    }
    out += first ? "],\n" : "\n  ],\n";

    out += "  \"bottlenecks\": [";
    first = true;
    std::size_t rank = 1;
    for (const Bottleneck &b : bottlenecks()) {
        out += first ? "\n" : ",\n";
        first = false;
        out += "    {\"rank\": " + jnum(double(rank++)) +
               ", \"kind\": " + jstr(b.kind) +
               ", \"resource\": " + jstr(b.resource) +
               ", \"utilization\": " + jnum(b.utilization) +
               ", \"saturated_fraction\": " + jnum(b.saturatedFraction) +
               ", \"dominant_category\": " + jstr(b.dominantCategory) +
               "}";
    }
    out += first ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

std::string
SessionReport::toCsv() const
{
    const LatencyBreakdown lat = latency();
    std::string out = "section,key,value\n";
    auto row = [&out](const std::string &section, const std::string &key,
                      const std::string &value) {
        out += section + "," + key + "," + value + "\n";
    };
    row("config", "preset", preset);
    row("config", "model", model);
    row("config", "accelerators", jnum(double(numAccelerators)));
    row("config", "batch_size", jnum(double(batchSize)));
    row("throughput", "samples_per_sec", jnum(result.throughput));
    row("throughput", "target_samples_per_sec", jnum(targetThroughput));
    row("throughput", "step_time_sec", jnum(result.stepTime));
    row("throughput", "compute_time_sec", jnum(result.computeTime));
    row("throughput", "sync_time_sec", jnum(result.syncTime));
    row("throughput", "prep_latency_sec", jnum(result.prepLatency));
    row("latency_pct", "transfer", jpct(lat.share(lat.transfer)));
    row("latency_pct", "formatting", jpct(lat.share(lat.formatting)));
    row("latency_pct", "augmentation",
        jpct(lat.share(lat.augmentation)));
    row("latency_pct", "compute", jpct(lat.share(lat.compute)));
    row("latency_pct", "sync", jpct(lat.share(lat.sync)));
    row("latency_pct", "prep_total", jpct(lat.prepShare()));
    for (const auto &[name, t] : result.prepStageTime)
        row("prep_stage_time_sec", name, jnum(t));
    row("host_demand", "cpu_cores", jnum(hostCpuCores()));
    row("host_demand", "mem_bw", jnum(hostMemBw()));
    row("host_demand", "rc_bw", jnum(hostRcBw()));
    for (const auto &[cat, v] : result.cpuCoresByCategory)
        row("cpu_by_category", cat, jnum(v));
    for (const auto &[cat, v] : result.memBwByCategory)
        row("mem_by_category", cat, jnum(v));
    for (const auto &[cat, v] : result.rcBwByCategory)
        row("rc_by_category", cat, jnum(v));
    row("robustness", "efficiency", jnum(efficiency()));
    row("robustness", "availability", jnum(availability()));
    row("elasticity", "events", jnum(double(result.elasticity.events)));
    row("elasticity", "drains", jnum(double(result.elasticity.drains)));
    row("elasticity", "preemptions",
        jnum(double(result.elasticity.preemptions)));
    row("elasticity", "joins", jnum(double(result.elasticity.joins)));
    row("elasticity", "chains_rebalanced",
        jnum(double(result.elasticity.chainsRebalanced)));
    row("elasticity", "samples_lost_to_preemption",
        jnum(result.elasticity.samplesLostToPreemption));
    row("elasticity", "samples_saved_by_drain",
        jnum(result.elasticity.samplesSavedByDrain));
    row("elasticity", "samples_dropped_at_drain",
        jnum(result.elasticity.samplesDroppedAtDrain));
    row("elasticity", "degraded_capacity_time_sec",
        jnum(result.elasticity.degradedCapacityTime));
    row("elasticity", "zero_capacity_time_sec",
        jnum(result.elasticity.zeroCapacityTime));
    row("elasticity", "rebalance_time_sec",
        jnum(result.elasticity.rebalanceTime));
    row("elasticity", "avg_active_fraction",
        jnum(result.elasticity.avgActiveFraction));
    row("elasticity", "capacity_availability",
        jnum(capacityAvailability()));
    row("elasticity", "slo_target_samples_per_sec",
        jnum(result.elasticity.sloTargetSamplesPerSec));
    row("elasticity", "slo_attainment", jnum(sloAttainment()));
    row("sample_ledger", "prepared",
        jnum(result.elasticity.samplesPrepared));
    row("sample_ledger", "consumed",
        jnum(result.elasticity.samplesConsumed));
    row("sample_ledger", "cached_at_end",
        jnum(result.elasticity.samplesCachedAtEnd));
    row("sample_ledger", "discarded",
        jnum(result.elasticity.samplesDiscarded));
    row("ingest", "arrival_events",
        jnum(double(result.ingest.arrivalEvents)));
    row("ingest", "overload_trips",
        jnum(double(result.ingest.overloadTrips)));
    row("ingest", "stalls", jnum(double(result.ingest.stalls)));
    row("ingest", "write_flows", jnum(double(result.ingest.writeFlows)));
    row("ingest", "write_retries",
        jnum(double(result.ingest.writeRetries)));
    row("ingest", "write_failures",
        jnum(double(result.ingest.writeFailures)));
    row("ingest", "admit_rate", jnum(ingestAdmitRate()));
    row("ingest", "shed_rate", jnum(ingestShedRate()));
    row("ingest", "overload_time_sec", jnum(result.ingest.overloadTime));
    row("ingest", "stall_time_sec", jnum(result.ingest.stallTime));
    row("ingest", "peak_buffer_level",
        jnum(result.ingest.peakBufferLevel));
    row("ingest", "samples_echoed", jnum(result.ingest.samplesEchoed));
    row("ingest", "echo_effective_factor", jnum(echoEffectiveFactor()));
    row("ingest", "avg_staleness_sec", jnum(avgIngestStaleness()));
    row("ingest", "max_staleness_sec", jnum(result.ingest.stalenessMax));
    row("ingest", "freshness_slo_attainment",
        jnum(freshnessSloAttainment()));
    row("ingest_ledger", "arrived", jnum(result.ingest.samplesArrived));
    row("ingest_ledger", "admitted",
        jnum(result.ingest.samplesAdmitted));
    row("ingest_ledger", "shed", jnum(result.ingest.samplesShed));
    row("ingest_ledger", "throttled",
        jnum(result.ingest.samplesThrottled));
    row("ingest_ledger", "shed_policy",
        jnum(result.ingest.samplesShedPolicy));
    row("ingest_ledger", "overflow_dropped",
        jnum(result.ingest.samplesOverflowDropped));
    row("ingest_ledger", "abandoned_writes",
        jnum(result.ingest.samplesAbandonedWrites));
    row("ingest_ledger", "in_flight_at_end",
        jnum(result.ingest.samplesInFlightAtEnd));
    row("integrity", "injected", jnum(double(result.integrity.injected)));
    row("integrity", "detected", jnum(double(result.integrity.detected)));
    row("integrity", "escaped", jnum(double(result.integrity.escaped)));
    row("integrity", "escape_rate", jnum(result.integrity.escapeRate()));
    row("integrity", "pcie_replays",
        jnum(double(result.integrity.pcieReplays)));
    row("integrity", "recoveries",
        jnum(double(result.integrity.recoveries)));
    row("integrity", "chunks_quarantined",
        jnum(double(result.integrity.chunksQuarantined)));
    row("prep_quarantine", "items_processed",
        jnum(double(prepItemsProcessed)));
    row("prep_quarantine", "quarantined",
        jnum(double(prepItemsQuarantined())));
    for (const auto &[reason, n] : prepQuarantineByReason)
        row("prep_quarantine_by_reason", reason, jnum(double(n)));
    for (const ResourceUsage &u : resources) {
        row("utilization", u.name, jnum(u.utilization));
        row("saturated_fraction", u.name, jnum(u.saturatedFraction));
    }
    std::size_t rank = 1;
    for (const Bottleneck &b : bottlenecks())
        row("bottleneck", std::to_string(rank++) + ":" + b.kind,
            jnum(b.utilization));
    return out;
}

void
SessionReport::emitCounters(TraceWriter &trace) const
{
    const Time end = result.wallTime;
    const Time start = std::max(0.0, end - windowElapsed());
    for (const ResourceUsage &u : resources) {
        trace.counter("util." + u.kind, u.name, start,
                      100.0 * u.utilization);
        trace.counter("util." + u.kind, u.name, end,
                      100.0 * u.utilization);
    }
    std::size_t rank = 1;
    for (const Bottleneck &b : bottlenecks()) {
        if (rank > 3)
            break;
        trace.instant("report",
                      "bottleneck#" + std::to_string(rank++) + " " +
                          b.kind + " (" + b.resource + ")",
                      end, "report");
    }
}

void
SessionReport::print(std::FILE *out) const
{
    const LatencyBreakdown lat = latency();
    std::fprintf(out, "=== SessionReport: %s | %s | %zu accelerators "
                      "(batch %zu) ===\n",
                 preset.c_str(), model.c_str(), numAccelerators,
                 batchSize);
    std::fprintf(out,
                 "throughput  %.1f samples/s (%.1f%% of target %.1f)\n",
                 result.throughput, 100.0 * targetFraction(),
                 targetThroughput);
    std::fprintf(out,
                 "step time   %.3f ms (compute %.3f ms, sync %.3f ms), "
                 "prep latency %.3f ms\n",
                 result.stepTime * 1e3, result.computeTime * 1e3,
                 result.syncTime * 1e3, result.prepLatency * 1e3);
    std::fprintf(out,
                 "latency     transfer %.1f%% | formatting %.1f%% | "
                 "augmentation %.1f%% | compute %.1f%% | sync %.1f%% "
                 "(prep total %.1f%%)\n",
                 100.0 * lat.share(lat.transfer),
                 100.0 * lat.share(lat.formatting),
                 100.0 * lat.share(lat.augmentation),
                 100.0 * lat.share(lat.compute),
                 100.0 * lat.share(lat.sync), 100.0 * lat.prepShare());
    std::fprintf(out,
                 "host demand cpu %.1f cores | dram %.2f GB/s | "
                 "rc %.2f GB/s\n",
                 hostCpuCores(), hostMemBw() / 1e9, hostRcBw() / 1e9);
    if (result.faults.faultsInjected > 0 ||
        result.checkpoint.committed > 0)
        std::fprintf(out,
                     "robustness  efficiency %.4f | availability %.4f | "
                     "faults %zu | checkpoints %zu\n",
                     efficiency(), availability(),
                     result.faults.faultsInjected,
                     result.checkpoint.committed);
    if (result.elasticity.events > 0)
        std::fprintf(out,
                     "elasticity  events %zu (drains %zu, preemptions "
                     "%zu, joins %zu) | capacity availability %.4f | "
                     "avg active %.2f%% | slo attainment %.4f\n"
                     "            samples lost %.0f, saved by drain "
                     "%.0f, dropped at drain %.0f | rebalance %.2f s | "
                     "zero-capacity %.2f s\n",
                     result.elasticity.events, result.elasticity.drains,
                     result.elasticity.preemptions,
                     result.elasticity.joins, capacityAvailability(),
                     100.0 * result.elasticity.avgActiveFraction,
                     sloAttainment(),
                     result.elasticity.samplesLostToPreemption,
                     result.elasticity.samplesSavedByDrain,
                     result.elasticity.samplesDroppedAtDrain,
                     result.elasticity.rebalanceTime,
                     result.elasticity.zeroCapacityTime);
    if (result.ingest.arrivalEvents > 0)
        std::fprintf(out,
                     "ingest      arrived %.0f | admitted %.0f (rate "
                     "%.4f) | shed %.0f | echoed %.0f | overload trips "
                     "%zu (%.2f s) | stalls %zu (%.2f s)\n"
                     "            avg staleness %.3f s (max %.3f s) | "
                     "freshness SLO attainment %.4f | echo factor %.4f\n",
                     result.ingest.samplesArrived,
                     result.ingest.samplesAdmitted, ingestAdmitRate(),
                     result.ingest.samplesShed,
                     result.ingest.samplesEchoed,
                     result.ingest.overloadTrips,
                     result.ingest.overloadTime, result.ingest.stalls,
                     result.ingest.stallTime, avgIngestStaleness(),
                     result.ingest.stalenessMax,
                     freshnessSloAttainment(), echoEffectiveFactor());
    if (result.integrity.injected > 0)
        std::fprintf(out,
                     "integrity   injected %zu | detected %zu | escaped "
                     "%zu (rate %.2e) | replays %zu | recoveries %zu | "
                     "quarantined %zu\n",
                     result.integrity.injected, result.integrity.detected,
                     result.integrity.escaped,
                     result.integrity.escapeRate(),
                     result.integrity.pcieReplays,
                     result.integrity.recoveries,
                     result.integrity.chunksQuarantined);
    if (prepItemsProcessed > 0) {
        std::fprintf(out, "prep items  %zu processed | %zu quarantined",
                     prepItemsProcessed, prepItemsQuarantined());
        for (const auto &[reason, n] : prepQuarantineByReason)
            std::fprintf(out, " | %s %zu", reason.c_str(), n);
        std::fprintf(out, "\n");
    }

    const std::vector<Bottleneck> ranked = bottlenecks();
    if (ranked.empty())
        return;
    if (!hasMetrics) {
        std::fprintf(out, "\nbottleneck attribution (host axes; run "
                          "with metrics for device-level ranking):\n");
        Table t({"rank", "axis", "demand / capacity %",
                 "dominant category"});
        std::size_t rank = 1;
        for (const Bottleneck &b : ranked)
            t.row()
                .add(rank++)
                .add(b.kind + " (" + b.resource + ")")
                .add(100.0 * b.utilization, 1)
                .add(b.dominantCategory.empty() ? "-"
                                                : b.dominantCategory);
        t.print(out);
        return;
    }
    std::fprintf(out, "\nbottleneck attribution:\n");
    Table t({"rank", "class", "resource", "util %", "saturated %",
             "dominant category"});
    std::size_t rank = 1;
    for (const Bottleneck &b : ranked)
        t.row()
            .add(rank++)
            .add(b.kind)
            .add(b.resource)
            .add(100.0 * b.utilization, 1)
            .add(100.0 * b.saturatedFraction, 1)
            .add(b.dominantCategory.empty() ? "-" : b.dominantCategory);
    t.print(out);
}

} // namespace tb
