#include "trainbox/resource_profile.hh"

#include "common/logging.hh"

namespace tb {

using workload::PrepStage;
using workload::stageCategory;

namespace {

/**
 * Rescale the formatting + augmentation stage CPU costs so their sum
 * matches the live-measured per-sample cost (the executor measures
 * exactly that slice of the chain); 0 keeps the modeled constants.
 */
void
applyCalibration(workload::PrepDemand &d, workload::InputType input,
                 const PrepCostCalibration &calib)
{
    const double measured = input == workload::InputType::Image
        ? calib.imageCoreSecPerSample
        : calib.audioCoreSecPerSample;
    if (measured <= 0.0)
        return;

    double modeled = 0.0;
    for (PrepStage st : {PrepStage::Formatting, PrepStage::Augmentation}) {
        auto it = d.cpuByStage.find(st);
        if (it != d.cpuByStage.end())
            modeled += it->second;
    }
    if (modeled <= 0.0)
        return;

    const double scale = measured / modeled;
    for (PrepStage st : {PrepStage::Formatting, PrepStage::Augmentation}) {
        auto it = d.cpuByStage.find(st);
        if (it == d.cpuByStage.end())
            continue;
        d.cpuCoreSec += it->second * (scale - 1.0);
        it->second *= scale;
    }
}

} // namespace

HostDemandBreakdown
requiredHostDemand(const workload::ModelInfo &m, ArchPreset preset,
                   std::size_t n, const sync::SyncConfig &sync_cfg)
{
    return requiredHostDemand(m, preset, n, sync_cfg,
                              PrepCostCalibration{});
}

HostDemandBreakdown
requiredHostDemand(const workload::ModelInfo &m, ArchPreset preset,
                   std::size_t n, const sync::SyncConfig &sync_cfg,
                   const PrepCostCalibration &calib)
{
    workload::PrepDemand d = workload::prepDemand(m.input);
    applyCalibration(d, m.input, calib);
    const Rate target = workload::targetThroughput(m, n, sync_cfg);

    HostDemandBreakdown out;
    auto add_cpu = [&](const std::string &cat, double core_sec) {
        if (core_sec <= 0.0)
            return;
        out.cpuByCategory[cat] += core_sec * target;
        out.cpuCores += core_sec * target;
    };
    auto add_mem = [&](const std::string &cat, Bytes bytes) {
        if (bytes <= 0.0)
            return;
        out.memByCategory[cat] += bytes * target;
        out.memBw += bytes * target;
    };
    auto add_rc = [&](const std::string &cat, Bytes bytes) {
        if (bytes <= 0.0)
            return;
        out.rcByCategory[cat] += bytes * target;
        out.rcBw += bytes * target;
    };

    // Same per-sample control costs as the server builder.
    constexpr double dma_setup_cpu = 1.0e-5;
    constexpr double p2p_control_cpu = 5.0e-6;

    auto stage_cpu = [&](PrepStage st) {
        auto it = d.cpuByStage.find(st);
        return it == d.cpuByStage.end() ? 0.0 : it->second;
    };
    auto stage_mem = [&](PrepStage st) {
        auto it = d.memByStage.find(st);
        return it == d.memByStage.end() ? 0.0 : it->second;
    };

    switch (preset) {
      case ArchPreset::Baseline:
        // CPU runs the full chain out of host DRAM; RC carries the
        // compressed input in and the prepared tensor out.
        for (PrepStage st :
             {PrepStage::SsdRead, PrepStage::Formatting,
              PrepStage::Augmentation, PrepStage::DataLoad,
              PrepStage::Others}) {
            add_cpu(stageCategory(st), stage_cpu(st));
            add_mem(stageCategory(st), stage_mem(st));
        }
        add_rc(stageCategory(PrepStage::SsdRead), d.ssdBytes);
        add_rc(stageCategory(PrepStage::DataLoad), d.preparedBytes);
        break;

      case ArchPreset::BaselineAccFpga:
      case ArchPreset::BaselineAccGpu:
        // Offloaded compute, but every transfer stages through host
        // DRAM: RC pressure doubles (§IV-D).
        add_cpu(stageCategory(PrepStage::SsdRead),
                stage_cpu(PrepStage::SsdRead));
        add_cpu("data_copy", 2.0 * dma_setup_cpu);
        add_cpu(stageCategory(PrepStage::DataLoad), dma_setup_cpu);
        add_cpu(stageCategory(PrepStage::Others),
                stage_cpu(PrepStage::Others));
        add_mem(stageCategory(PrepStage::SsdRead), d.ssdBytes);
        add_mem("data_copy", d.ssdBytes + d.preparedBytes);
        add_mem(stageCategory(PrepStage::DataLoad), d.preparedBytes);
        add_rc(stageCategory(PrepStage::SsdRead), d.ssdBytes);
        add_rc("data_copy", d.ssdBytes + d.preparedBytes);
        add_rc(stageCategory(PrepStage::DataLoad), d.preparedBytes);
        break;

      case ArchPreset::BaselineAccP2p:
      case ArchPreset::BaselineAccP2pGen4:
        // P2P frees DRAM and the CPU, but inter-box routes still hop
        // up-and-over the RC (2x per transfer) — total RC bytes match
        // the staged variant.
        add_cpu(stageCategory(PrepStage::Others), 3.0 * p2p_control_cpu);
        add_rc(stageCategory(PrepStage::SsdRead), 2.0 * d.ssdBytes);
        add_rc(stageCategory(PrepStage::DataLoad), 2.0 * d.preparedBytes);
        break;

      case ArchPreset::TrainBoxNoPool:
      case ArchPreset::TrainBox:
        // Clustering localizes every transfer inside a train box.
        add_cpu(stageCategory(PrepStage::Others), 2.0 * p2p_control_cpu);
        break;
    }
    return out;
}

} // namespace tb
