/**
 * @file
 * The shared simulation core: one timeline, one contention engine.
 *
 * Historically every TrainingSession privately owned its event queue,
 * clock, fluid network, and metrics registry (as value members of
 * Server), so N sessions could never share one simulated timeline.
 * SimulationCore extracts that trio into a first-class object:
 *
 *   - the EventQueue (and with it the simulated clock),
 *   - the FluidNetwork contention engine attached to that queue,
 *   - the MetricsRegistry both of them report into,
 *   - the registered ScheduleSource previews (fault/elastic/ingest
 *     disturbance timelines) of every client session.
 *
 * A standalone Server still constructs a private core, so the
 * single-session API is a thin shim with unchanged semantics; a fleet
 * constructs one core and passes it to every server it builds, giving
 * all jobs one clock, one solver, and one merged disturbance timeline.
 *
 * Header-only: the core is pure composition (the heavy lifting lives in
 * EventQueue/FluidNetwork), and keeping it out of libtb_sim avoids a
 * dependency cycle (tb_fluid already links tb_sim).
 */

#ifndef TRAINBOX_SIM_SIMULATION_CORE_HH
#define TRAINBOX_SIM_SIMULATION_CORE_HH

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "fluid/fluid.hh"
#include "sim/event_queue.hh"
#include "sim/metrics.hh"
#include "sim/schedule_source.hh"

namespace tb {

/**
 * Owns the discrete-event timeline and the resources every client
 * shares: event queue, fluid network, metrics registry, and the
 * disturbance-schedule previews registered by client sessions.
 */
class SimulationCore
{
  public:
    SimulationCore() : net_(eq_) {}

    SimulationCore(const SimulationCore &) = delete;
    SimulationCore &operator=(const SimulationCore &) = delete;

    /** The shared event queue / simulation clock. */
    EventQueue &events() { return eq_; }
    const EventQueue &events() const { return eq_; }

    /** The shared fluid-flow contention engine. */
    FluidNetwork &fluid() { return net_; }
    const FluidNetwork &fluid() const { return net_; }

    /** The shared metrics registry. */
    MetricsRegistry &metrics() { return metrics_; }
    const MetricsRegistry &metrics() const { return metrics_; }

    /** Current simulated time in seconds. */
    Time now() const { return eq_.now(); }

    /**
     * Resize the event queue's tombstone-compaction threshold from the
     * current live-event count. One session keeps the stock threshold;
     * a fleet calls this after each job starts so compaction sweeps
     * stay amortized against the (much larger) live set instead of
     * thrashing at the single-session default. Behavior-neutral: sweeps
     * never reorder live events.
     */
    void
    autosizeCompaction()
    {
        eq_.setCompactionThreshold(
            std::max<std::size_t>(64, 4 * eq_.size()));
    }

    /**
     * Register one client's disturbance-schedule preview (fault,
     * elastic, or ingest). The core owns the source; @p targets records
     * the victim space the client's injector draws from.
     */
    void
    addScheduleSource(std::unique_ptr<ScheduleSource> source,
                      const ScheduleTargets &targets)
    {
        if (source)
            sources_.push_back(Registered{std::move(source), targets});
    }

    /** Registered sources, in registration order. */
    std::size_t numScheduleSources() const { return sources_.size(); }

    /**
     * Merge every registered source's preview into one time-sorted
     * timeline over [0, horizon). Pure: never perturbs the run.
     */
    std::vector<SchedulePreviewEntry>
    schedulePreview(Time horizon) const
    {
        std::vector<SchedulePreviewEntry> out;
        for (const Registered &reg : sources_) {
            if (!reg.source->enabled())
                continue;
            auto entries = reg.source->preview(reg.targets, horizon);
            out.insert(out.end(), std::make_move_iterator(entries.begin()),
                       std::make_move_iterator(entries.end()));
        }
        std::stable_sort(out.begin(), out.end(),
                         [](const SchedulePreviewEntry &a,
                            const SchedulePreviewEntry &b) {
                             return a.at < b.at;
                         });
        return out;
    }

  private:
    struct Registered
    {
        std::unique_ptr<ScheduleSource> source;
        ScheduleTargets targets;
    };

    EventQueue eq_;
    FluidNetwork net_;
    MetricsRegistry metrics_;
    std::vector<Registered> sources_;
};

} // namespace tb

#endif // TRAINBOX_SIM_SIMULATION_CORE_HH
