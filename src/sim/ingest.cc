#include "sim/ingest.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace tb {

namespace {

/** splitmix64 finalizer — derives unrelated streams from one seed. */
std::uint64_t
mix64(std::uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Per-class stream tags (keep stable: they define the traces). */
constexpr std::uint64_t kIngestStream = 0x494e474553ull;
constexpr std::uint64_t kWriteFailStream = 0x494e475746ull;

std::uint64_t
classStreamTag(IngestTrafficKind kind)
{
    return kIngestStream + static_cast<std::uint64_t>(kind);
}

constexpr double kTwoPi = 6.283185307179586476925286766559;

} // namespace

const char *
ingestTrafficKindName(IngestTrafficKind kind)
{
    switch (kind) {
      case IngestTrafficKind::Steady:
        return "steady";
      case IngestTrafficKind::Diurnal:
        return "diurnal";
      case IngestTrafficKind::Burst:
        return "burst";
    }
    return "unknown";
}

const char *
ingestPolicyName(IngestPolicy policy)
{
    switch (policy) {
      case IngestPolicy::Throttle:
        return "throttle";
      case IngestPolicy::Shed:
        return "shed";
      case IngestPolicy::Echo:
        return "echo";
      case IngestPolicy::Stall:
        return "stall";
    }
    return "unknown";
}

IngestScheduler::IngestScheduler(const IngestConfig &cfg)
    : cfg_(cfg), classes_(makeClasses(cfg)),
      writeFailRng_(mix64(cfg.seed ^ kWriteFailStream))
{
    panic_if(cfg_.bufferCapacity < 0.0,
             "ingest.bufferCapacity must be >= 0, got %g",
             cfg_.bufferCapacity);
    panic_if(cfg_.diurnalPeriod <= 0.0 && cfg_.diurnal.ratePerSec > 0.0,
             "ingest.diurnalPeriod must be > 0, got %g",
             cfg_.diurnalPeriod);
}

std::vector<IngestScheduler::ClassState>
IngestScheduler::makeClasses(const IngestConfig &cfg)
{
    std::vector<ClassState> classes;
    auto add = [&](IngestTrafficKind kind, const IngestClassConfig &cc,
                   double amplitude, Time period) {
        if (cc.ratePerSec <= 0.0 || cc.samplesPerEvent <= 0.0)
            return;
        ClassState cs{kind,
                      cc,
                      amplitude,
                      period,
                      Rng(mix64(cfg.seed ^ classStreamTag(kind))),
                      0.0};
        classes.push_back(std::move(cs));
    };
    add(IngestTrafficKind::Steady, cfg.steady, 0.0, 1.0);
    add(IngestTrafficKind::Diurnal, cfg.diurnal, cfg.diurnalAmplitude,
        cfg.diurnalPeriod);
    add(IngestTrafficKind::Burst, cfg.burst, 0.0, 1.0);
    return classes;
}

IngestArrival
IngestScheduler::nextArrival(ClassState &cs)
{
    // Exponential inter-event gap at the class's event rate, so the
    // class delivers its mean sample rate in batch-sized lumps.
    const double event_rate = cs.cfg.ratePerSec / cs.cfg.samplesPerEvent;
    const double u = cs.rng.uniform();
    const Time gap = -std::log(1.0 - u) / event_rate;

    IngestArrival ev;
    ev.kind = cs.kind;
    ev.priority = cs.cfg.priority;
    ev.at = cs.prevAt + gap;
    // Diurnal traffic modulates the batch *volume* at a fixed event
    // rate: rate(t) = mean * (1 + A sin(2*pi*t/period)), clamped at 0.
    double scale = 1.0;
    if (cs.amplitude > 0.0)
        scale = std::max(
            0.0, 1.0 + cs.amplitude * std::sin(kTwoPi * ev.at / cs.period));
    ev.samples = cs.cfg.samplesPerEvent * scale;
    cs.prevAt = ev.at;
    return ev;
}

void
IngestScheduler::deliver(const IngestArrival &ev)
{
    ++delivered_;
    if (handler_)
        handler_(ev);
}

void
IngestScheduler::scheduleClass(EventQueue &eq, std::size_t idx)
{
    ClassState &cs = classes_[idx];
    const IngestArrival ev = nextArrival(cs);
    eq.schedule(origin_ + ev.at, [this, &eq, idx, ev] {
        deliver(ev);
        // Chain the class's next arrival (drawn lazily so the trace
        // extends as far as the simulation runs).
        scheduleClass(eq, idx);
    });
}

void
IngestScheduler::arm(EventQueue &eq, Handler handler)
{
    handler_ = std::move(handler);
    // Anchor the job-relative schedule at the current clock (0 for the
    // historical standalone run, so x + 0.0 leaves every time exact).
    origin_ = eq.now();
    for (const IngestArrival &ev : cfg_.schedule)
        eq.schedule(origin_ + ev.at, [this, ev] { deliver(ev); });
    for (std::size_t i = 0; i < classes_.size(); ++i)
        scheduleClass(eq, i);
}

bool
IngestScheduler::writeAttemptFails()
{
    if (cfg_.writeFailureProb <= 0.0)
        return false;
    return writeFailRng_.uniform() < cfg_.writeFailureProb;
}

std::vector<IngestArrival>
IngestScheduler::schedule(const IngestConfig &cfg, Time horizon)
{
    std::vector<IngestArrival> events;
    for (const IngestArrival &ev : cfg.schedule)
        if (ev.at < horizon)
            events.push_back(ev);
    for (ClassState &cs : makeClasses(cfg)) {
        while (true) {
            const IngestArrival ev = nextArrival(cs);
            if (ev.at >= horizon)
                break;
            events.push_back(ev);
        }
    }
    // Merge into global time order (stable for identical timestamps:
    // explicit schedule first, then class declaration order).
    std::stable_sort(events.begin(), events.end(),
                     [](const IngestArrival &a, const IngestArrival &b) {
                         return a.at < b.at;
                     });
    return events;
}

} // namespace tb
