#include "sim/event_queue.hh"

#include "common/logging.hh"

namespace tb {

EventId
EventQueue::schedule(Time when, Callback cb, int priority)
{
    panic_if(when < now_, "scheduling event in the past (%g < %g)",
             when, now_);
    const Key key{when, priority, nextSeq_++};
    events_.emplace(key, std::move(cb));
    bySeq_.emplace(key.seq, key);
    return EventId{key.seq};
}

EventId
EventQueue::scheduleIn(Time delay, Callback cb, int priority)
{
    panic_if(delay < 0.0, "negative event delay %g", delay);
    return schedule(now_ + delay, std::move(cb), priority);
}

bool
EventQueue::cancel(EventId &id)
{
    if (!id.valid())
        return false;
    auto it = bySeq_.find(id.seq);
    id.invalidate();
    if (it == bySeq_.end())
        return false;
    events_.erase(it->second);
    bySeq_.erase(it);
    return true;
}

Time
EventQueue::nextTime() const
{
    panic_if(events_.empty(), "nextTime() on empty event queue");
    return events_.begin()->first.when;
}

bool
EventQueue::step()
{
    if (events_.empty())
        return false;
    auto it = events_.begin();
    const Key key = it->first;
    Callback cb = std::move(it->second);
    events_.erase(it);
    bySeq_.erase(key.seq);
    now_ = key.when;
    ++numExecuted_;
    cb();
    return true;
}

void
EventQueue::run(Time until)
{
    while (!events_.empty()) {
        if (until >= 0.0 && events_.begin()->first.when > until) {
            now_ = until;
            return;
        }
        step();
    }
    if (until >= 0.0 && now_ < until)
        now_ = until;
}

} // namespace tb
