#include "sim/event_queue.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tb {

EventId
EventQueue::schedule(Time when, Callback cb, int priority)
{
    panic_if(when < now_, "scheduling event in the past (%g < %g)",
             when, now_);
    const Key key{when, priority, nextSeq_++};
    heap_.push_back(Entry{key, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), EntryAfter{});
    pending_.insert(key.seq);
    return EventId{key.seq};
}

EventId
EventQueue::scheduleIn(Time delay, Callback cb, int priority)
{
    panic_if(delay < 0.0, "negative event delay %g", delay);
    return schedule(now_ + delay, std::move(cb), priority);
}

std::vector<EventId>
EventQueue::scheduleBatch(std::vector<std::pair<Time, Callback>> items,
                          int priority)
{
    std::vector<EventId> ids;
    ids.reserve(items.size());
    // A batch larger than the live set re-heapifies once; smaller
    // batches sift entries in individually.
    const bool rebuild = items.size() > heap_.size();
    heap_.reserve(heap_.size() + items.size());
    for (auto &[when, cb] : items) {
        panic_if(when < now_, "scheduling event in the past (%g < %g)",
                 when, now_);
        const Key key{when, priority, nextSeq_++};
        heap_.push_back(Entry{key, std::move(cb)});
        if (!rebuild)
            std::push_heap(heap_.begin(), heap_.end(), EntryAfter{});
        pending_.insert(key.seq);
        ids.push_back(EventId{key.seq});
    }
    if (rebuild)
        std::make_heap(heap_.begin(), heap_.end(), EntryAfter{});
    return ids;
}

bool
EventQueue::cancel(EventId &id)
{
    if (!id.valid())
        return false;
    const bool live = pending_.erase(id.seq) > 0;
    id.invalidate();
    // The heap entry stays behind as a tombstone; sweep when tombstones
    // dominate so cancel-heavy workloads stay O(1) amortized.
    if (live && heap_.size() >= compactMinHeap_ &&
        heap_.size() > 2 * pending_.size())
        compact();
    return live;
}

void
EventQueue::purgeTop() const
{
    while (!heap_.empty() &&
           pending_.find(heap_.front().key.seq) == pending_.end()) {
        std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
        heap_.pop_back();
    }
}

void
EventQueue::compact()
{
    std::erase_if(heap_, [this](const Entry &e) {
        return pending_.find(e.key.seq) == pending_.end();
    });
    std::make_heap(heap_.begin(), heap_.end(), EntryAfter{});
}

Time
EventQueue::nextTime() const
{
    panic_if(pending_.empty(), "nextTime() on empty event queue");
    purgeTop();
    return heap_.front().key.when;
}

bool
EventQueue::step()
{
    if (pending_.empty())
        return false;
    purgeTop();
    std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
    Entry entry = std::move(heap_.back());
    heap_.pop_back();
    pending_.erase(entry.key.seq);
    now_ = entry.key.when;
    ++numExecuted_;
    entry.cb();
    return true;
}

void
EventQueue::run(Time until)
{
    while (!pending_.empty()) {
        purgeTop();
        if (until >= 0.0 && heap_.front().key.when > until) {
            now_ = until;
            return;
        }
        step();
    }
    if (until >= 0.0 && now_ < until)
        now_ = until;
}

} // namespace tb
