/**
 * @file
 * Discrete-event simulation core.
 *
 * The queue holds (time, priority, sequence) ordered callbacks. Components
 * schedule std::function callbacks; scheduled events can be cancelled via
 * the EventId handle. Time is continuous (seconds, double).
 *
 * Storage is a binary min-heap with *lazy deletion*: cancel() only drops
 * the event's sequence number from the pending set (O(1)); the heap entry
 * becomes a tombstone that is discarded when it surfaces at the top, or
 * swept out when tombstones outnumber live events (see docs/PERFORMANCE.md,
 * "Event-queue batching"). Execution order is the same strict total order
 * as before — (when, priority, seq) — so a heap rebuild never reorders
 * live events.
 */

#ifndef TRAINBOX_SIM_EVENT_QUEUE_HH
#define TRAINBOX_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/units.hh"

namespace tb {

/** Handle identifying a scheduled event; usable for cancellation. */
struct EventId
{
    std::uint64_t seq = 0;

    bool valid() const { return seq != 0; }
    void invalidate() { seq = 0; }
};

/**
 * The event queue / simulation clock.
 *
 * Events at equal timestamps run in (priority, insertion) order; lower
 * priority values run first.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Default priority for ordinary events. */
    static constexpr int defaultPriority = 100;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in seconds. */
    Time now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @return a handle usable with cancel().
     */
    EventId schedule(Time when, Callback cb, int priority = defaultPriority);

    /** Schedule @p cb to run @p delay seconds from now. */
    EventId scheduleIn(Time delay, Callback cb,
                       int priority = defaultPriority);

    /**
     * Bulk insert: schedule every (when, callback) pair of @p items at
     * @p priority. Handles are returned in input order, and ties between
     * batch members keep input order (each entry draws the next sequence
     * number, exactly as repeated schedule() calls would). When the batch
     * is large relative to the pending set the heap is rebuilt in one
     * O(n + k) pass instead of k O(log n) sifts.
     */
    std::vector<EventId>
    scheduleBatch(std::vector<std::pair<Time, Callback>> items,
                  int priority = defaultPriority);

    /** Cancel a pending event. Returns false if already fired/cancelled. */
    bool cancel(EventId &id);

    /** True when no live events remain (tombstones don't count). */
    bool empty() const { return pending_.empty(); }

    /** Number of pending (live) events. */
    std::size_t size() const { return pending_.size(); }

    /** Time of the next pending event; panics when empty. */
    Time nextTime() const;

    /** Run a single event. Returns false when the queue is empty. */
    bool step();

    /** Run until the queue is empty or @p until is reached (inclusive). */
    void run(Time until = -1.0);

    /** Total number of events executed so far. */
    std::uint64_t numExecuted() const { return numExecuted_; }

    /**
     * Minimum heap size before cancel() considers a tombstone sweep.
     * Below the threshold compaction is skipped entirely; above it a
     * sweep still requires tombstones to outnumber live events 2:1.
     * Compaction never reorders live events, so retuning the threshold
     * at any point is behavior-neutral — it only shifts when the
     * amortized O(n) sweeps happen. Long-lived multi-session cores size
     * this from the live-event count (see SimulationCore) so fleet-scale
     * churn doesn't thrash rebuilds.
     */
    void setCompactionThreshold(std::size_t minHeap)
    {
        compactMinHeap_ = minHeap;
    }

    /** Current compaction threshold (heap entries, tombstones included). */
    std::size_t compactionThreshold() const { return compactMinHeap_; }

  private:
    struct Key
    {
        Time when;
        int priority;
        std::uint64_t seq;

        bool
        operator<(const Key &o) const
        {
            if (when != o.when)
                return when < o.when;
            if (priority != o.priority)
                return priority < o.priority;
            return seq < o.seq;
        }
    };

    struct Entry
    {
        Key key;
        Callback cb;
    };

    /** Min-heap comparator (std heap primitives build a max-heap). */
    struct EntryAfter
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            return b.key < a.key;
        }
    };

    /** Drop cancelled entries sitting at the top of the heap. */
    void purgeTop() const;

    /** Sweep all tombstones and re-heapify (amortized by cancel()). */
    void compact();

    /** Default compaction threshold; small queues never sweep. */
    static constexpr std::size_t kDefaultCompactMinHeap = 64;

    Time now_ = 0.0;
    std::size_t compactMinHeap_ = kDefaultCompactMinHeap;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t numExecuted_ = 0;

    // mutable so the const observers (nextTime) can discard tombstones;
    // purging never changes observable state.
    mutable std::vector<Entry> heap_;
    std::unordered_set<std::uint64_t> pending_;
};

} // namespace tb

#endif // TRAINBOX_SIM_EVENT_QUEUE_HH
