/**
 * @file
 * Discrete-event simulation core.
 *
 * The queue holds (time, priority, sequence) ordered callbacks. Components
 * schedule std::function callbacks; scheduled events can be cancelled via
 * the EventId handle. Time is continuous (seconds, double).
 */

#ifndef TRAINBOX_SIM_EVENT_QUEUE_HH
#define TRAINBOX_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <map>

#include "common/units.hh"

namespace tb {

/** Handle identifying a scheduled event; usable for cancellation. */
struct EventId
{
    std::uint64_t seq = 0;

    bool valid() const { return seq != 0; }
    void invalidate() { seq = 0; }
};

/**
 * The event queue / simulation clock.
 *
 * Events at equal timestamps run in (priority, insertion) order; lower
 * priority values run first.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Default priority for ordinary events. */
    static constexpr int defaultPriority = 100;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time in seconds. */
    Time now() const { return now_; }

    /**
     * Schedule @p cb to run at absolute time @p when.
     * @return a handle usable with cancel().
     */
    EventId schedule(Time when, Callback cb, int priority = defaultPriority);

    /** Schedule @p cb to run @p delay seconds from now. */
    EventId scheduleIn(Time delay, Callback cb,
                       int priority = defaultPriority);

    /** Cancel a pending event. Returns false if already fired/cancelled. */
    bool cancel(EventId &id);

    /** True when no events remain. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    std::size_t size() const { return events_.size(); }

    /** Time of the next pending event; panics when empty. */
    Time nextTime() const;

    /** Run a single event. Returns false when the queue is empty. */
    bool step();

    /** Run until the queue is empty or @p until is reached (inclusive). */
    void run(Time until = -1.0);

    /** Total number of events executed so far. */
    std::uint64_t numExecuted() const { return numExecuted_; }

  private:
    struct Key
    {
        Time when;
        int priority;
        std::uint64_t seq;

        bool
        operator<(const Key &o) const
        {
            if (when != o.when)
                return when < o.when;
            if (priority != o.priority)
                return priority < o.priority;
            return seq < o.seq;
        }
    };

    Time now_ = 0.0;
    std::uint64_t nextSeq_ = 1;
    std::uint64_t numExecuted_ = 0;
    std::map<Key, Callback> events_;
    std::map<std::uint64_t, Key> bySeq_;
};

} // namespace tb

#endif // TRAINBOX_SIM_EVENT_QUEUE_HH
