/**
 * @file
 * Deterministic elasticity (capacity join/leave) scheduling.
 *
 * Production fleets do not keep the paper's fixed complement of NN
 * accelerators and prep FPGAs for a whole session: spot instances are
 * preempted, boxes are drained for maintenance, and capacity is added
 * mid-run. The scheduler turns an ElasticityConfig into a
 * *reproducible* stream of membership events, exactly like
 * sim/fault_injector.hh turns a FaultConfig into a fault schedule:
 * every decision is drawn from seed-derived tb::Rng streams, so two
 * runs with the same config see the same membership timeline.
 *
 * Two leave flavors are modeled per target kind:
 *
 *  - **planned drains** — the scheduler delivers a drain *notice*; the
 *    session then has ElasticityConfig::graceWindow seconds to finish
 *    in-flight work (and coordinate a checkpoint) before the member
 *    detaches;
 *  - **hard preemptions** — spot-style: the member is gone at the event
 *    instant, in-flight work on it is lost (the session reuses its
 *    crash machinery).
 *
 * Every generated leave is paired with a Join event after the class's
 * configured absence, so randomized schedules always return capacity
 * eventually (a run can still hit zero capacity in between — the
 * session must park, not deadlock). Mid-session scale-up is modeled by
 * deferredJoinGroups: that many groups start detached and join at
 * scaleUpTime. The membership *policy* (state machine, rebalancing,
 * SLO accounting) lives in TrainingSession; see docs/ROBUSTNESS.md,
 * "Elastic capacity & graceful degradation".
 */

#ifndef TRAINBOX_SIM_ELASTIC_SCHEDULE_HH
#define TRAINBOX_SIM_ELASTIC_SCHEDULE_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.hh"
#include "sim/event_queue.hh"

namespace tb {

/** What kind of member an elastic event targets. */
enum class ElasticTargetKind
{
    Group, ///< a whole train box: its NN accelerators + prep FPGAs
    Prep,  ///< one prep FPGA of a group (the group keeps training)
};

/** What happens to the target at the event instant. */
enum class ElasticAction
{
    Drain,   ///< planned-leave notice; detach after the grace window
    Preempt, ///< spot-style hard leave, effective immediately
    Join,    ///< the member (re)attaches; active after rejoinLatency
};

/** Display names ("group"/"prep", "drain"/"preempt"/"join"). */
const char *elasticTargetKindName(ElasticTargetKind kind);
const char *elasticActionName(ElasticAction action);

/** One scheduled membership event. */
struct ElasticEvent
{
    ElasticTargetKind target = ElasticTargetKind::Group;
    ElasticAction action = ElasticAction::Drain;

    /** Victim prep-group index (for Prep: the group owning the FPGA). */
    std::size_t index = 0;

    Time at = 0.0;
};

/** One randomized leave class: arrival rate and time-away length. */
struct ElasticClassConfig
{
    /** Mean leave arrivals per simulated second (0 = disabled). */
    double ratePerSec = 0.0;

    /**
     * Time between the member detaching and its Join event. For
     * planned drains the absence clock starts at the end of the grace
     * window; for preemptions at the leave instant.
     */
    Time absence = 10.0;
};

/** Full elasticity scenario (ServerConfig::elasticity). */
struct ElasticityConfig
{
    /** Master switch. When false the elastic path costs nothing. */
    bool enabled = false;

    /** Seed for every schedule stream (timelines are reproducible). */
    std::uint64_t seed = 0x656c617374ull;

    /** Notice-to-detach window of a planned drain. */
    Time graceWindow = 5.0;

    /** Join-to-active latency (attach, reconfigure, shard reassign). */
    Time rejoinLatency = 2.0;

    /**
     * SLO floor in samples/s; 0 = no target. Reported as
     * SessionReport::sloAttainment() (achieved / target, capped at 1).
     */
    double sloTargetSamplesPerSec = 0.0;

    /**
     * Re-plan prep lending through multi_job on every group membership
     * change: the offload fraction of each active group is recomputed
     * for the surviving box count (replanOffloadFraction()).
     */
    bool replanOffload = true;

    /**
     * Mid-session scale-up: this many groups (taken from the end of
     * the group list) start detached and receive a Join at
     * scaleUpTime. Must leave at least one group active at the start.
     */
    std::size_t deferredJoinGroups = 0;
    Time scaleUpTime = 0.0;

    // --- randomized leave classes ------------------------------------
    ElasticClassConfig groupDrain;   ///< planned whole-box drains
    ElasticClassConfig groupPreempt; ///< spot-style whole-box kills
    ElasticClassConfig prepDrain;    ///< planned single-FPGA drains
    ElasticClassConfig prepPreempt;  ///< spot-style single-FPGA kills

    /**
     * Explicit extra events, merged with the generated streams. Must
     * be ordered by `at` (validate() checks); joins the session cannot
     * match to a detached member are ignored.
     */
    std::vector<ElasticEvent> schedule;

    /** True when any event source is live. */
    bool anyEvents() const
    {
        return groupDrain.ratePerSec > 0.0 ||
               groupPreempt.ratePerSec > 0.0 ||
               prepDrain.ratePerSec > 0.0 ||
               prepPreempt.ratePerSec > 0.0 ||
               deferredJoinGroups > 0 || !schedule.empty();
    }
};

/** Target-space size the scheduler picks victims from. */
struct ElasticTargets
{
    std::size_t numGroups = 0;
};

/**
 * Draws the membership timeline for one run. Construct one per
 * session; arm() plays the same events schedule() previews.
 */
class ElasticScheduler
{
  public:
    ElasticScheduler(const ElasticityConfig &cfg,
                     const ElasticTargets &targets);

    const ElasticityConfig &config() const { return cfg_; }

    using Handler = std::function<void(const ElasticEvent &)>;

    /**
     * Play the membership schedule onto @p eq. Leaves of one class
     * never overlap (the next leave is drawn from the previous join);
     * different classes may race on one target — the session's state
     * machine drops transitions that no longer apply. Event times are
     * job-relative, anchored at the clock reading when arm() is called
     * (0 for the historical standalone run).
     */
    void arm(EventQueue &eq, Handler handler);

    /**
     * Deterministically enumerate the events in [0, horizon) without
     * an event queue — what arm() will play, in time order.
     */
    static std::vector<ElasticEvent>
    schedule(const ElasticityConfig &cfg, const ElasticTargets &targets,
             Time horizon);

    /** Events delivered so far (after arm()). */
    std::size_t eventsDelivered() const { return delivered_; }

  private:
    /** Lazy per-class leave/join pair generator state. */
    struct ClassState
    {
        ElasticTargetKind target;
        bool planned = false; ///< Drain (with grace) vs Preempt
        ElasticClassConfig cfg;
        std::size_t numTargets = 0;
        Time grace = 0.0;
        Rng rng;
        Time prevEnd = 0.0;
    };

    static std::vector<ClassState>
    makeClasses(const ElasticityConfig &cfg,
                const ElasticTargets &targets);

    /** Draw the class's next leave + paired join. */
    static std::pair<ElasticEvent, ElasticEvent>
    nextPair(ClassState &cs);

    /** Scale-up joins + explicit schedule (non-random event sources). */
    static std::vector<ElasticEvent>
    fixedEvents(const ElasticityConfig &cfg,
                const ElasticTargets &targets);

    void scheduleClass(EventQueue &eq, std::size_t idx);
    void deliver(const ElasticEvent &ev);

    ElasticityConfig cfg_;
    ElasticTargets targets_;
    std::vector<ClassState> classes_;
    Handler handler_;
    std::size_t delivered_ = 0;
    /** Clock at arm(): schedules are job-relative, the queue absolute. */
    Time origin_ = 0.0;
};

} // namespace tb

#endif // TRAINBOX_SIM_ELASTIC_SCHEDULE_HH
