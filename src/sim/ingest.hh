/**
 * @file
 * Deterministic streaming-ingest arrival scheduling.
 *
 * The paper's servers train from a dataset fully resident on SSD. The
 * millions-of-users mode replaces that with continuous sample arrival:
 * user traffic lands in a bounded host-DRAM ingest buffer, is prepped,
 * and is appended to the SSD dataset shards *while training reads
 * them* — the shard writes contend with prep reads through the same
 * NvmeSsd write→read interference the checkpoint path models.
 *
 * This header is the arrival side: an IngestConfig describes a traffic
 * trace as three seeded classes (steady base load, a diurnally
 * modulated swing, and low-priority bursts) plus an optional explicit
 * schedule, and IngestScheduler turns it into a *reproducible* stream
 * of arrival events, exactly like sim/fault_injector.hh and
 * sim/elastic_schedule.hh turn their configs into schedules: every
 * decision is drawn from seed-derived tb::Rng streams, so two runs
 * with the same config see the same traffic timeline.
 *
 * The overload *policy* — watermarks, admission control, the
 * throttle→shed→echo→stall chain, the conservation ledger — lives in
 * TrainingSession; see docs/ROBUSTNESS.md, "Streaming ingest &
 * overload".
 */

#ifndef TRAINBOX_SIM_INGEST_HH
#define TRAINBOX_SIM_INGEST_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.hh"
#include "sim/event_queue.hh"

namespace tb {

/** Which traffic class an arrival event belongs to. */
enum class IngestTrafficKind
{
    Steady,  ///< constant-mean base load
    Diurnal, ///< sinusoidally modulated swing (time-of-day traffic)
    Burst,   ///< low-priority bursts (bulk uploads, backfills)
};

/** Display name ("steady"/"diurnal"/"burst"). */
const char *ingestTrafficKindName(IngestTrafficKind kind);

/**
 * Overload policies, applied in the configured chain order as the
 * buffer climbs past the high watermark (docs/ROBUSTNESS.md).
 */
enum class IngestPolicy
{
    Throttle, ///< admit only throttleFactor of each arriving batch
    Shed,     ///< drop arrivals at or below the priority cutoff
    Echo,     ///< training reuses prepped batches (fewer fresh reads)
    Stall,    ///< training stops consuming until the buffer drains
};

/** Display name ("throttle"/"shed"/"echo"/"stall"). */
const char *ingestPolicyName(IngestPolicy policy);

/** One scheduled arrival: a batch of samples at an instant. */
struct IngestArrival
{
    IngestTrafficKind kind = IngestTrafficKind::Steady;

    /** Samples delivered by this event. */
    double samples = 0.0;

    /** Shed order: lower is dropped first (IngestConfig priorities). */
    int priority = 0;

    Time at = 0.0;
};

/** One randomized traffic class: mean rate and batch granularity. */
struct IngestClassConfig
{
    /** Mean samples per simulated second (0 = class disabled). */
    double ratePerSec = 0.0;

    /**
     * Samples per arrival event. The event rate is
     * ratePerSec / samplesPerEvent with exponential inter-arrivals, so
     * the class delivers its mean rate in batch-sized lumps.
     */
    double samplesPerEvent = 64.0;

    /** Shed priority; lower-priority classes are shed first. */
    int priority = 0;
};

/** Full streaming-ingest scenario (ServerConfig::ingest). */
struct IngestConfig
{
    /** Master switch. When false the ingest path costs nothing. */
    bool enabled = false;

    /** Seed for every arrival stream (traces are reproducible). */
    std::uint64_t seed = 0x696e67657374ull;

    // --- traffic classes --------------------------------------------

    IngestClassConfig steady{0.0, 64.0, 2};  ///< base load
    IngestClassConfig diurnal{0.0, 64.0, 1}; ///< modulated swing
    IngestClassConfig burst{0.0, 256.0, 0};  ///< low-priority bursts

    /** Peak-to-mean swing of the diurnal class, in [0, 1]. */
    double diurnalAmplitude = 0.8;

    /** Period of the diurnal modulation in simulated seconds. */
    Time diurnalPeriod = 20.0;

    /**
     * Explicit extra arrivals, merged with the generated streams. Must
     * be ordered by `at` (validate() checks).
     */
    std::vector<IngestArrival> schedule;

    // --- ingest buffer ----------------------------------------------

    /** Host-DRAM ingest buffer capacity in samples. */
    double bufferCapacity = 8192.0;

    /** Overload clears when the buffer drains back to this level. */
    double lowWatermark = 2048.0;

    /** Overload trips when the buffer reaches this level. */
    double highWatermark = 6144.0;

    // --- overload policy chain --------------------------------------

    /**
     * Escalation order. Policy i engages when the buffer reaches
     * highWatermark + i * (bufferCapacity - highWatermark) / size();
     * all engaged policies disengage together at the low watermark.
     * Arrivals beyond bufferCapacity are always dropped (overflow).
     */
    std::vector<IngestPolicy> policyChain{
        IngestPolicy::Throttle, IngestPolicy::Shed, IngestPolicy::Echo};

    /** Fraction of each batch admitted while Throttle is engaged. */
    double throttleFactor = 0.5;

    /** Shed drops arrivals with priority <= this while engaged. */
    int shedPriorityCutoff = 0;

    /**
     * Batch reuse count while Echo is engaged: each training step
     * consumes batch/echoFactor fresh samples and echoes the rest
     * ("Faster Neural Network Training with Data Echoing").
     */
    double echoFactor = 2.0;

    /**
     * Statistical efficiency of an echoed sample relative to a fresh
     * one, in [0, 1]; reported as the echo efficiency loss.
     */
    double echoEfficiency = 0.7;

    // --- freshness SLO ----------------------------------------------

    /**
     * Staleness target in seconds (arrival → landed on shard); 0 = no
     * target. Reported as SessionReport::freshnessSloAttainment().
     */
    Time stalenessSlo = 0.0;

    // --- shard writes -----------------------------------------------

    /** Samples drained per shard-write flow. */
    double writeChunkSamples = 256.0;

    /** Probability one shard-write attempt transiently fails. */
    double writeFailureProb = 0.0;

    /** Write retries per chunk before its samples are abandoned. */
    std::size_t maxWriteRetries = 3;

    /** First retry backoff; doubles per subsequent attempt. */
    Time writeRetryBackoff = 1e-3;

    /** True when any arrival source is live. */
    bool anyArrivals() const
    {
        return steady.ratePerSec > 0.0 || diurnal.ratePerSec > 0.0 ||
               burst.ratePerSec > 0.0 || !schedule.empty();
    }
};

/**
 * Draws the traffic timeline for one run. Construct one per session;
 * arm() plays the same arrivals schedule() previews.
 */
class IngestScheduler
{
  public:
    explicit IngestScheduler(const IngestConfig &cfg);

    const IngestConfig &config() const { return cfg_; }

    using Handler = std::function<void(const IngestArrival &)>;

    /**
     * Play the arrival schedule onto @p eq. Each class chains its next
     * event lazily, so the trace extends as far as the run does. Event
     * times are job-relative, anchored at the clock reading when arm()
     * is called (0 for the historical standalone run).
     */
    void arm(EventQueue &eq, Handler handler);

    /**
     * Deterministically enumerate the arrivals in [0, horizon) without
     * an event queue — what arm() will play, in time order.
     */
    static std::vector<IngestArrival> schedule(const IngestConfig &cfg,
                                               Time horizon);

    /** Arrival events delivered so far (after arm()). */
    std::size_t eventsDelivered() const { return delivered_; }

    /** Does the next shard-write attempt fail? (consumes the stream) */
    bool writeAttemptFails();

  private:
    /** Lazy per-class arrival generator state. */
    struct ClassState
    {
        IngestTrafficKind kind;
        IngestClassConfig cfg;
        double amplitude = 0.0;
        Time period = 1.0;
        Rng rng;
        Time prevAt = 0.0;
    };

    static std::vector<ClassState> makeClasses(const IngestConfig &cfg);

    /** Draw the class's next arrival. */
    static IngestArrival nextArrival(ClassState &cs);

    void scheduleClass(EventQueue &eq, std::size_t idx);
    void deliver(const IngestArrival &ev);

    IngestConfig cfg_;
    std::vector<ClassState> classes_;
    Rng writeFailRng_;
    Handler handler_;
    std::size_t delivered_ = 0;
    /** Clock at arm(): schedules are job-relative, the queue absolute. */
    Time origin_ = 0.0;
};

} // namespace tb

#endif // TRAINBOX_SIM_INGEST_HH
