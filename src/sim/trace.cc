#include "sim/trace.hh"

#include <cstdio>

namespace tb {

namespace {

/** Escape a string for JSON (we only expect simple identifiers). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        if (static_cast<unsigned char>(c) < 0x20)
            continue;
        out.push_back(c);
    }
    return out;
}

} // namespace

int
TraceWriter::trackId(const std::string &track)
{
    auto it = tracks_.find(track);
    if (it != tracks_.end())
        return it->second;
    const int id = static_cast<int>(tracks_.size()) + 1;
    tracks_.emplace(track, id);
    return id;
}

void
TraceWriter::complete(const std::string &track, const std::string &name,
                      Time start, Time duration,
                      const std::string &category)
{
    events_.push_back(
        {'X', name, category, trackId(track), start, duration});
}

void
TraceWriter::instant(const std::string &track, const std::string &name,
                     Time when, const std::string &category)
{
    events_.push_back({'i', name, category, trackId(track), when, 0.0});
}

void
TraceWriter::counter(const std::string &track, const std::string &name,
                     Time when, double value)
{
    events_.push_back({'C', name, "sim", trackId(track), when, value});
}

std::string
TraceWriter::toJson() const
{
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    char buf[256];

    // Thread-name metadata so tracks show readable labels.
    for (const auto &[name, id] : tracks_) {
        std::snprintf(buf, sizeof(buf),
                      "%s{\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
                      "\"name\":\"thread_name\",\"args\":{\"name\":"
                      "\"%s\"}}",
                      first ? "" : ",", id, jsonEscape(name).c_str());
        out += buf;
        first = false;
    }

    for (const auto &e : events_) {
        if (e.phase == 'X') {
            std::snprintf(buf, sizeof(buf),
                          "%s{\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
                          "\"name\":\"%s\",\"cat\":\"%s\","
                          "\"ts\":%.3f,\"dur\":%.3f}",
                          first ? "" : ",", e.track,
                          jsonEscape(e.name).c_str(),
                          jsonEscape(e.category).c_str(), e.start * 1e6,
                          e.duration * 1e6);
        } else if (e.phase == 'C') {
            std::snprintf(buf, sizeof(buf),
                          "%s{\"ph\":\"C\",\"pid\":1,\"tid\":%d,"
                          "\"name\":\"%s\",\"ts\":%.3f,"
                          "\"args\":{\"value\":%g}}",
                          first ? "" : ",", e.track,
                          jsonEscape(e.name).c_str(), e.start * 1e6,
                          e.duration);
        } else {
            std::snprintf(buf, sizeof(buf),
                          "%s{\"ph\":\"i\",\"pid\":1,\"tid\":%d,"
                          "\"name\":\"%s\",\"cat\":\"%s\","
                          "\"ts\":%.3f,\"s\":\"t\"}",
                          first ? "" : ",", e.track,
                          jsonEscape(e.name).c_str(),
                          jsonEscape(e.category).c_str(), e.start * 1e6);
        }
        out += buf;
        first = false;
    }
    out += "]}";
    return out;
}

bool
TraceWriter::writeFile(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    const std::string json = toJson();
    const bool ok =
        std::fwrite(json.data(), 1, json.size(), f) == json.size();
    std::fclose(f);
    return ok;
}

void
TraceWriter::clear()
{
    events_.clear();
    tracks_.clear();
}

} // namespace tb
