#include "sim/schedule_source.hh"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace tb {

namespace {

std::string
formatLabel(const char *fmt, ...)
{
    char buf[160];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    return std::string(buf);
}

} // namespace

std::vector<SchedulePreviewEntry>
FaultScheduleSource::schedule(const FaultConfig &cfg,
                              const ScheduleTargets &targets, Time horizon)
{
    std::vector<SchedulePreviewEntry> out;
    if (!cfg.enabled)
        return out;
    const FaultTargets ft{targets.numSsds, targets.numGroups};
    for (const FaultEvent &ev : FaultInjector::schedule(cfg, ft, horizon)) {
        out.push_back(SchedulePreviewEntry{
            ev.start, "fault",
            formatLabel("%s target=%zu for %.3gs x%.3g",
                        faultKindName(ev.kind), ev.target, ev.duration,
                        ev.magnitude)});
    }
    return out;
}

std::vector<SchedulePreviewEntry>
FaultScheduleSource::preview(const ScheduleTargets &targets,
                             Time horizon) const
{
    return schedule(cfg_, targets, horizon);
}

std::vector<SchedulePreviewEntry>
ElasticScheduleSource::schedule(const ElasticityConfig &cfg,
                                const ScheduleTargets &targets, Time horizon)
{
    std::vector<SchedulePreviewEntry> out;
    if (!cfg.enabled)
        return out;
    const ElasticTargets et{targets.numGroups};
    for (const ElasticEvent &ev :
         ElasticScheduler::schedule(cfg, et, horizon)) {
        out.push_back(SchedulePreviewEntry{
            ev.at, "elastic",
            formatLabel("%s %s%zu", elasticActionName(ev.action),
                        elasticTargetKindName(ev.target), ev.index)});
    }
    return out;
}

std::vector<SchedulePreviewEntry>
ElasticScheduleSource::preview(const ScheduleTargets &targets,
                               Time horizon) const
{
    return schedule(cfg_, targets, horizon);
}

std::vector<SchedulePreviewEntry>
IngestScheduleSource::schedule(const IngestConfig &cfg,
                               const ScheduleTargets & /*targets*/,
                               Time horizon)
{
    std::vector<SchedulePreviewEntry> out;
    if (!cfg.enabled)
        return out;
    for (const IngestArrival &ev : IngestScheduler::schedule(cfg, horizon)) {
        out.push_back(SchedulePreviewEntry{
            ev.at, "ingest",
            formatLabel("%s %.0f samples prio=%d",
                        ingestTrafficKindName(ev.kind), ev.samples,
                        ev.priority)});
    }
    return out;
}

std::vector<SchedulePreviewEntry>
IngestScheduleSource::preview(const ScheduleTargets &targets,
                              Time horizon) const
{
    return schedule(cfg_, targets, horizon);
}

std::vector<SchedulePreviewEntry>
FleetFaultScheduleSource::schedule(const FleetFaultConfig &cfg,
                                   const ScheduleTargets &targets,
                                   Time horizon)
{
    std::vector<SchedulePreviewEntry> out;
    if (!cfg.enabled)
        return out;
    for (const FleetFaultEvent &ev :
         FleetFaultInjector::schedule(cfg, targets.numHosts, horizon)) {
        out.push_back(SchedulePreviewEntry{
            ev.start, "fleet",
            formatLabel("%s host=%zu for %.3gs units=%zu",
                        fleetFaultKindName(ev.kind), ev.host, ev.duration,
                        ev.units)});
    }
    return out;
}

std::vector<SchedulePreviewEntry>
FleetFaultScheduleSource::preview(const ScheduleTargets &targets,
                                  Time horizon) const
{
    return schedule(cfg_, targets, horizon);
}

std::vector<SchedulePreviewEntry>
mergedSchedule(const std::vector<const ScheduleSource *> &sources,
               const ScheduleTargets &targets, Time horizon)
{
    std::vector<SchedulePreviewEntry> out;
    for (const ScheduleSource *src : sources) {
        if (!src || !src->enabled())
            continue;
        auto entries = src->preview(targets, horizon);
        out.insert(out.end(), std::make_move_iterator(entries.begin()),
                   std::make_move_iterator(entries.end()));
    }
    std::stable_sort(out.begin(), out.end(),
                     [](const SchedulePreviewEntry &a,
                        const SchedulePreviewEntry &b) { return a.at < b.at; });
    return out;
}

std::vector<SchedulePreviewEntry>
mergedSchedule(const FaultConfig &faults, const ElasticityConfig &elastic,
               const IngestConfig &ingest, const ScheduleTargets &targets,
               Time horizon)
{
    const FaultScheduleSource f(faults);
    const ElasticScheduleSource e(elastic);
    const IngestScheduleSource i(ingest);
    return mergedSchedule({&f, &e, &i}, targets, horizon);
}

} // namespace tb
