/**
 * @file
 * Lightweight statistics collection (a nod to gem5's stats package).
 *
 * Stats are plain value objects registered into a StatGroup by name so a
 * component can dump all of its counters at once.
 */

#ifndef TRAINBOX_SIM_STATS_HH
#define TRAINBOX_SIM_STATS_HH

#include <cstdio>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace tb {
namespace stats {

/** A scalar accumulator (count or sum). */
class Scalar
{
  public:
    void operator+=(double v) { value_ += v; }
    void operator++() { value_ += 1.0; }
    void operator++(int) { value_ += 1.0; }
    void set(double v) { value_ = v; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Mean / min / max / stddev over samples. */
class Distribution
{
  public:
    void sample(double v);

    std::size_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double minimum() const { return count_ ? min_ : 0.0; }
    double maximum() const { return count_ ? max_ : 0.0; }
    /** Population standard deviation. */
    double stddev() const;
    void reset();

  private:
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Named collection of stats owned by a component. Holds non-owning
 * pointers; the registering component must outlive the group.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void registerScalar(const std::string &name, Scalar *stat,
                        const std::string &desc = "");
    void registerDistribution(const std::string &name, Distribution *stat,
                              const std::string &desc = "");

    /** Dump all registered stats as "group.name value # desc" lines. */
    void dump(std::FILE *out = stdout) const;

    /** Reset every registered stat. */
    void resetAll();

    const std::string &name() const { return name_; }

  private:
    struct ScalarEntry { std::string name; Scalar *stat; std::string desc; };
    struct DistEntry
    {
        std::string name;
        Distribution *stat;
        std::string desc;
    };

    std::string name_;
    std::vector<ScalarEntry> scalars_;
    std::vector<DistEntry> dists_;
};

} // namespace stats
} // namespace tb

#endif // TRAINBOX_SIM_STATS_HH
