/**
 * @file
 * Unified metrics layer: counters, gauges, and time-weighted
 * utilization histograms behind a MetricsRegistry.
 *
 * The registry is the collection point for everything the observability
 * layer records during a run: the fluid solver samples per-resource
 * utilization between rate changes (rates are piecewise constant, so
 * each inter-event interval is one exact time-weighted sample), and the
 * training session counts compute/sync busy time and step/chain
 * completions. SessionReport (trainbox/report.hh) turns the registry's
 * contents into the ranked bottleneck attribution of the paper's
 * Figs 9-11.
 *
 * Zero-cost contract: a registry is created *disabled*. While disabled,
 * every factory method returns nullptr and allocates nothing, so
 * instrumented components guard on the returned pointer and the
 * simulation takes exactly the uninstrumented path. Enabling metrics
 * only ever *reads* simulation state (rates, durations); it never
 * schedules events or adds flows, so even an instrumented run is
 * bit-identical to an uninstrumented one.
 */

#ifndef TRAINBOX_SIM_METRICS_HH
#define TRAINBOX_SIM_METRICS_HH

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/units.hh"

namespace tb {

/** Monotonically increasing event/quantity counter. */
class MetricCounter
{
  public:
    void add(double v) { value_ += v; }
    void inc() { value_ += 1.0; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Last-value-wins instantaneous measurement. */
class MetricGauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/**
 * Histogram of a piecewise-constant signal weighted by the *time* it
 * held each value — the natural summary of a fluid resource's
 * utilization, which only changes when flows arrive or depart.
 *
 * record(u, dt) states "the signal held value u for dt seconds". The
 * histogram tracks the exact time-average and peak, the exact time
 * spent at or above the saturation threshold, and a bucketed
 * distribution over [lo, hi] for export.
 */
class TimeWeightedHistogram
{
  public:
    /** Default saturation threshold (fraction of capacity). */
    static constexpr double kDefaultSaturation = 0.999;

    explicit TimeWeightedHistogram(std::size_t numBuckets = 10,
                                   double lo = 0.0, double hi = 1.0,
                                   double saturation = kDefaultSaturation);

    /** Record @p value held for @p duration seconds. */
    void record(double value, Time duration);

    /** Total recorded time. */
    Time totalTime() const { return totalTime_; }

    /** Time-weighted mean value (0 when nothing recorded). */
    double timeAverage() const;

    /** Largest value recorded (0 when nothing recorded). */
    double peak() const { return peak_; }

    /** Time spent at or above the saturation threshold. */
    Time saturatedTime() const { return saturatedTime_; }

    /** Fraction of recorded time at or above saturation (0 if empty). */
    double saturatedFraction() const;

    std::size_t numBuckets() const { return buckets_.size(); }
    Time bucketTime(std::size_t i) const { return buckets_[i]; }
    double bucketLow(std::size_t i) const;
    double bucketHigh(std::size_t i) const;

    /** Forget everything (measurement-window reset). */
    void reset();

  private:
    std::vector<Time> buckets_;
    double lo_;
    double hi_;
    double saturation_;
    Time totalTime_ = 0.0;
    double weightedSum_ = 0.0;
    double peak_ = 0.0;
    Time saturatedTime_ = 0.0;
};

/**
 * Named collection of metrics. Components obtain their instruments from
 * the registry by name; asking twice for the same name returns the same
 * instrument, so producers and readers need not coordinate creation
 * order.
 *
 * A registry starts disabled: every factory returns nullptr and the
 * registry allocates nothing (see the file comment for the zero-cost
 * contract). Call enable() before wiring instrumentation.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    void enable(bool on = true) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /**
     * Find-or-create an instrument. Returns nullptr while the registry
     * is disabled. Pointers remain valid for the registry's lifetime.
     */
    MetricCounter *counter(const std::string &name,
                           const std::string &desc = "");
    MetricGauge *gauge(const std::string &name,
                       const std::string &desc = "");
    TimeWeightedHistogram *histogram(const std::string &name,
                                     const std::string &desc = "",
                                     std::size_t numBuckets = 10,
                                     double lo = 0.0, double hi = 1.0);

    /** Lookup without creation (nullptr when absent or disabled). */
    const MetricCounter *findCounter(const std::string &name) const;
    const MetricGauge *findGauge(const std::string &name) const;
    const TimeWeightedHistogram *
    findHistogram(const std::string &name) const;

    template <typename T> struct Entry
    {
        std::string name;
        std::string desc;
        std::unique_ptr<T> metric;
    };

    /** Iteration in creation order (empty while disabled). */
    const std::vector<Entry<MetricCounter>> &counters() const
    {
        return counters_;
    }
    const std::vector<Entry<MetricGauge>> &gauges() const
    {
        return gauges_;
    }
    const std::vector<Entry<TimeWeightedHistogram>> &histograms() const
    {
        return histograms_;
    }

    /** Total number of registered instruments. */
    std::size_t size() const
    {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

    /** Reset every instrument (measurement-window reset). */
    void resetAll();

  private:
    bool enabled_ = false;
    std::vector<Entry<MetricCounter>> counters_;
    std::vector<Entry<MetricGauge>> gauges_;
    std::vector<Entry<TimeWeightedHistogram>> histograms_;
    std::map<std::string, std::size_t> counterIndex_;
    std::map<std::string, std::size_t> gaugeIndex_;
    std::map<std::string, std::size_t> histogramIndex_;
};

} // namespace tb

#endif // TRAINBOX_SIM_METRICS_HH
