/**
 * @file
 * Deterministic fault injection for the server simulator.
 *
 * At 256 accelerators the interesting property of the clustered design
 * (§V) is not peak throughput but how gracefully it degrades: an SSD
 * that starts throwing read errors, a prep FPGA that dies, an Ethernet
 * link that drops to a fraction of line rate, an accelerator that
 * straggles. The injector turns a FaultConfig into a *reproducible*
 * stream of such events: every decision is drawn from seed-derived
 * tb::Rng streams, so two runs with the same config produce the same
 * fault schedule and the same degradation curve.
 *
 * Two kinds of faults are modeled:
 *
 *  - **per-attempt faults** queried synchronously by the training
 *    session (does this SSD read attempt fail? is this group's compute
 *    a straggler this step?);
 *  - **windowed faults** (SSD latency spike, prep-FPGA crash, Ethernet
 *    degradation, loss of a switch-local P2P route) generated as
 *    non-overlapping (per class) windows with exponential inter-arrival
 *    times and played onto the EventQueue by arm().
 *
 * Recovery *policy* knobs (retry budgets, backoff, failover switches)
 * also live in FaultConfig so a whole scenario is one struct; the
 * policies themselves are implemented by the TrainingSession. See
 * docs/ROBUSTNESS.md.
 */

#ifndef TRAINBOX_SIM_FAULT_INJECTOR_HH
#define TRAINBOX_SIM_FAULT_INJECTOR_HH

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.hh"
#include "sim/event_queue.hh"

namespace tb {

/** Classes of windowed faults the injector can schedule. */
enum class FaultKind
{
    SsdDegrade,  ///< one SSD's read path slows (latency spike window)
    PrepCrash,   ///< one group's prep FPGA dies until repaired
    EthDegrade,  ///< the prep-pool Ethernet fabric loses capacity
    RouteLoss,   ///< one group loses its switch-local P2P route
    FatalCrash,  ///< whole-machine crash: rollback to last checkpoint
};

/** Display name of a fault kind ("ssd_degrade", ...). */
const char *faultKindName(FaultKind kind);

/**
 * Classes of silent data corruption on the sample path. Unlike the
 * windowed availability faults these are per-chunk, per-hop Bernoulli
 * draws made as each prep-chain stage completes: the P2P path
 * (SSD→FPGA→accelerator) never lands in host DRAM, so it bypasses the
 * host's ECC and the framework loader's software validation — a bit
 * flipped on an NVMe read, a PCIe hop, or inside a prep FPGA reaches
 * training silently unless a checksum stage catches it.
 */
enum class CorruptionKind
{
    SsdBitFlip = 0,    ///< NVMe media / controller flip on a chunk read
    PcieLinkError = 1, ///< PCIe lane error — LCRC detects, replay costs
    FpgaUpset = 2,     ///< logic upset inside a prep engine
    HostDramFlip = 3,  ///< DRAM flip on the host staging path (ECC'd)
};

/** Number of CorruptionKind values (array sizing). */
constexpr std::size_t kNumCorruptionKinds = 4;

/** Display name of a corruption kind ("ssd_bit_flip", ...). */
const char *corruptionKindName(CorruptionKind kind);

/** Bit for @p kind in a stage template's corruption-hop mask. */
constexpr unsigned
corruptionBit(CorruptionKind kind)
{
    return 1u << static_cast<unsigned>(kind);
}

/**
 * Per-chunk corruption probabilities for each hop class. A probability
 * applies once per traversal of a hop of that class (a chunk crossing
 * two PCIe hops draws twice). PCIe link errors are always detected by
 * the link-level LCRC and cost a replay delay; host-DRAM flips are
 * always corrected by ECC; SSD and FPGA flips are *silent* — they
 * escape unless a downstream stage verifies the data.
 */
struct CorruptionConfig
{
    double ssdBitFlipProb = 0.0;
    double pcieErrorProb = 0.0;
    double fpgaUpsetProb = 0.0;
    double hostDramFlipProb = 0.0;

    /** Link stall paid per detected PCIe error (LCRC replay). */
    Time pcieReplayLatency = 2.0e-6;

    /** The probability for one kind. */
    double probFor(CorruptionKind kind) const
    {
        switch (kind) {
          case CorruptionKind::SsdBitFlip:
            return ssdBitFlipProb;
          case CorruptionKind::PcieLinkError:
            return pcieErrorProb;
          case CorruptionKind::FpgaUpset:
            return fpgaUpsetProb;
          case CorruptionKind::HostDramFlip:
            return hostDramFlipProb;
        }
        return 0.0;
    }

    /** True when any class can strike. */
    bool any() const
    {
        return ssdBitFlipProb > 0.0 || pcieErrorProb > 0.0 ||
               fpgaUpsetProb > 0.0 || hostDramFlipProb > 0.0;
    }
};

/** One windowed-fault class: arrival rate, outage length, severity. */
struct FaultClassConfig
{
    /** Mean arrivals per simulated second (0 = class disabled). */
    double ratePerSec = 0.0;

    /** Length of each fault window in simulated seconds. */
    Time duration = 0.0;

    /**
     * Severity while the window is open. For capacity faults this is
     * the factor the resource capacity is scaled by (0.1 = 10% left);
     * unused for PrepCrash/RouteLoss which are binary.
     */
    double magnitude = 0.1;
};

/** Full fault-injection + recovery-policy scenario description. */
struct FaultConfig
{
    /** Master switch. When false the fault path costs nothing. */
    bool enabled = false;

    /** Seed for every injection stream (schedules are reproducible). */
    std::uint64_t seed = 0x7472626f78666c74ull;

    // --- per-attempt faults -----------------------------------------

    /** Probability one chunk's SSD read attempt returns bad data. */
    double ssdReadFailureProb = 0.0;

    /** Probability a group's compute straggles on a given step. */
    double stragglerProb = 0.0;

    /** Compute-time multiplier of a straggling step. */
    double stragglerFactor = 4.0;

    // --- windowed faults --------------------------------------------

    FaultClassConfig ssdDegrade;
    FaultClassConfig prepCrash;
    FaultClassConfig ethDegrade;
    FaultClassConfig routeLoss;

    /**
     * Whole-machine fatal crashes (training process dies, state is
     * lost). Point events: `duration` and `magnitude` are ignored and
     * the window machinery schedules an instantaneous fault+repair
     * pair. The mean time between failures is 1 / ratePerSec — the
     * MTBF the Young–Daly interval analysis consumes
     * (trainbox/checkpoint.hh). Recovery — rollback to the last
     * durable checkpoint, replay, restart latency — is implemented by
     * TrainingSession + Checkpointer.
     */
    FaultClassConfig fatalCrash;

    // --- data corruption --------------------------------------------

    /** Silent-corruption hop probabilities (all 0 = no corruption). */
    CorruptionConfig corruption;

    /**
     * Insert checksum generate/verify stages into every prep chain
     * (server_builder.cc). The checks cost modeled compute/bandwidth
     * even when no corruption strikes, so the integrity tax is itself
     * measurable; with them enabled every silent flip is caught at the
     * next verify stage instead of escaping into training.
     */
    bool integrityChecks = false;

    /**
     * Verify-triggered re-reads of one chunk before it is quarantined
     * and replaced with fresh data (bounded so a hot corruption source
     * cannot livelock a chain; backoff reuses retryBackoffBase).
     */
    std::size_t maxIntegrityRecoveries = 3;

    // --- recovery policy --------------------------------------------

    /** Read retries per chunk before it is abandoned and re-dispatched. */
    std::size_t maxReadRetries = 3;

    /** First retry backoff; doubles per subsequent attempt. */
    Time retryBackoffBase = 50e-6;

    /**
     * Straggler-tolerant barrier: when a step's compute exceeds
     * stepTimeoutFactor x the nominal compute time, the group's chain
     * is re-dispatched (fresh compute from the timeout instant).
     * 0 disables the timeout (the barrier waits the straggler out).
     */
    double stepTimeoutFactor = 1.5;

    /** Fail a dead FPGA's load over to survivors / the prep-pool. */
    bool poolFailover = true;

    /** Fall back to the host-memory path on P2P route loss. */
    bool hostFallback = true;
};

/** Target-space sizes the injector picks victims from. */
struct FaultTargets
{
    std::size_t numSsds = 0;
    std::size_t numGroups = 0;
};

/** One scheduled windowed fault. */
struct FaultEvent
{
    FaultKind kind = FaultKind::SsdDegrade;

    /** Victim index (SSD index or prep-group index, per kind). */
    std::size_t target = 0;

    Time start = 0.0;
    Time duration = 0.0;
    double magnitude = 1.0;
};

/**
 * Draws every fault decision for one simulation run. Construct one per
 * session; per-attempt streams are consumed in simulation order, which
 * is itself deterministic, so runs reproduce exactly.
 */
class FaultInjector
{
  public:
    FaultInjector(const FaultConfig &cfg, const FaultTargets &targets);

    const FaultConfig &config() const { return cfg_; }

    /** Does the next SSD read attempt fail? (consumes the stream) */
    bool ssdReadAttemptFails();

    /**
     * Does a corruption of @p kind strike the hop being traversed?
     * Consumes the kind's stream (only when its probability is > 0, so
     * corruption-free scenarios are unperturbed) and counts strikes.
     */
    bool corruptionStrikes(CorruptionKind kind);

    /** Total corruptions injected so far, across all kinds. */
    std::size_t corruptionsInjected() const;

    /** Corruptions injected so far, per kind. */
    const std::array<std::size_t, kNumCorruptionKinds> &
    corruptionsByKind() const
    {
        return corruptions_;
    }

    /**
     * Compute-time multiplier for (group, step); 1.0 = healthy.
     * Pure hash of (seed, group, step) — order-independent.
     */
    double stragglerFactor(std::size_t group, std::size_t step) const;

    using FaultHandler = std::function<void(const FaultEvent &)>;

    /**
     * Play the windowed-fault schedule onto @p eq: @p onFault fires at
     * each window's start, @p onRepair at its end. Windows of one class
     * never overlap; the schedule is a pure function of (config,
     * targets) and is exactly what schedule() previews, shifted by the
     * clock reading at arm() time — a fleet job armed at t > 0 replays
     * the same job-relative schedule on its own offset timeline.
     */
    void arm(EventQueue &eq, FaultHandler onFault, FaultHandler onRepair);

    /**
     * Deterministically enumerate the windowed events in [0, horizon)
     * for a scenario, without an event queue — what arm() will play.
     */
    static std::vector<FaultEvent> schedule(const FaultConfig &cfg,
                                            const FaultTargets &targets,
                                            Time horizon);

    /** Windowed faults injected so far (after arm()). */
    std::size_t faultsInjected() const { return faultsInjected_; }

    /** SSD read-attempt failures injected so far. */
    std::size_t readFailuresInjected() const { return readFailures_; }

  private:
    /** Lazy per-class arrival generator state. */
    struct ClassState
    {
        FaultKind kind;
        FaultClassConfig cfg;
        std::size_t numTargets = 0;
        Rng rng;
        Time prevEnd = 0.0;
    };

    static std::vector<ClassState> makeClasses(const FaultConfig &cfg,
                                               const FaultTargets &targets);

    /** Draw the class's next window (start measured from prevEnd). */
    static FaultEvent nextEvent(ClassState &cs);

    void scheduleClass(EventQueue &eq, std::size_t idx);

    FaultConfig cfg_;
    FaultTargets targets_;
    Rng readFailRng_;
    std::array<Rng, kNumCorruptionKinds> corruptionRngs_;
    std::array<std::size_t, kNumCorruptionKinds> corruptions_{};
    std::vector<ClassState> classes_;
    FaultHandler onFault_;
    FaultHandler onRepair_;
    /** Clock at arm(): schedules are job-relative, the queue absolute. */
    Time origin_ = 0.0;
    std::size_t faultsInjected_ = 0;
    std::size_t readFailures_ = 0;
};

// --- fleet-level faults -------------------------------------------------
//
// The classes above strike *inside* one training server; the fleet layer
// (trainbox/fleet.hh) additionally models failures of the hosts the
// servers run on and of the shared prep-pool fabric between them. The
// same determinism rules apply: a FleetFaultConfig is a pure description,
// FleetFaultInjector::schedule() enumerates the exact windows arm() will
// play, and same-seed runs reproduce bit-for-bit.

/** Classes of fleet-level faults. */
enum class FleetFaultKind
{
    HostOutage,    ///< a whole host dies; every co-resident job is killed
    BoxLoss,       ///< a host loses train-box slots for a window
    PoolPartition, ///< pool fabric partition fences free shared-pool FPGAs
};

/** Display name of a fleet fault kind ("host_outage", ...). */
const char *fleetFaultKindName(FleetFaultKind kind);

/** One windowed fleet-fault class, parameterized MTBF/MTTR style. */
struct FleetFaultClassConfig
{
    /**
     * Mean time between failures *per target* in simulated seconds
     * (0 = class disabled). Host classes draw a uniform victim, so the
     * aggregate arrival rate is numHosts / mtbf.
     */
    double mtbf = 0.0;

    /** Mean time to repair: the deterministic outage window length. */
    Time mttr = 0.0;
};

/** One scheduled (or scripted) fleet-level fault window. */
struct FleetFaultEvent
{
    FleetFaultKind kind = FleetFaultKind::HostOutage;

    /** Victim host index (ignored for PoolPartition). */
    std::size_t host = 0;

    Time start = 0.0;
    Time duration = 0.0;

    /** Severity: boxes lost (BoxLoss) / pool FPGAs fenced (PoolPartition). */
    std::size_t units = 1;
};

/**
 * Fleet-level fault scenario + the re-admission policy the fleet applies
 * to jobs those faults kill. Random streams need a finite
 * FleetConfig::horizon (they are pre-enumerated over it); the scripted
 * schedule works on unbounded runs too.
 */
struct FleetFaultConfig
{
    /** Master switch. When false the fleet schedules zero fault events. */
    bool enabled = false;

    /** Seed for the windowed streams (schedules are reproducible). */
    std::uint64_t seed = 0x666c656574666c74ull;

    // --- seeded windowed classes ------------------------------------

    FleetFaultClassConfig hostOutage;
    FleetFaultClassConfig boxLoss;
    FleetFaultClassConfig poolPartition;

    /** Boxes lost per seeded BoxLoss window. */
    std::size_t boxLossUnits = 1;

    /** Free-pool FPGAs fenced per seeded PoolPartition window. */
    std::size_t poolPartitionFpgas = 1;

    // --- scripted windows -------------------------------------------

    /** Hand-written fault windows (must be sorted by start time). */
    std::vector<FleetFaultEvent> schedule;

    // --- re-admission policy ----------------------------------------

    /** Re-admissions allowed per job before it is abandoned. */
    std::size_t maxRetries = 3;

    /** Backoff before the first re-admission attempt. */
    Time retryBackoffBase = 0.05;

    /** Backoff multiplier per subsequent failure (>= 1). */
    double retryBackoffFactor = 2.0;
};

/**
 * Plays a FleetFaultConfig onto the fleet's event queue. Unlike the
 * per-session FaultInjector the whole schedule is pre-enumerated (fleet
 * runs are horizon-bounded when random streams are active), so handlers
 * additionally receive the event's index into schedule() — the fleet
 * uses it to pair each repair with exactly the severity its fault
 * actually applied (clamped box counts, partial pool fences).
 */
class FleetFaultInjector
{
  public:
    FleetFaultInjector(const FleetFaultConfig &cfg, std::size_t numHosts,
                       Time horizon);

    using Handler =
        std::function<void(const FleetFaultEvent &, std::size_t idx)>;

    /**
     * Schedule every fault/repair pair onto @p eq, offset by the clock
     * reading at arm() time. @p onFault fires at each window's start,
     * @p onRepair at its end (repairs of zero-length windows fire in
     * schedule order after the fault).
     */
    void arm(EventQueue &eq, Handler onFault, Handler onRepair);

    /** The pre-enumerated schedule arm() plays. */
    const std::vector<FleetFaultEvent> &events() const { return events_; }

    /** Fleet faults injected so far (after arm()). */
    std::size_t faultsInjected() const { return faultsInjected_; }

    /**
     * Deterministically enumerate the fleet-fault windows in
     * [0, horizon): the scripted schedule merged with the seeded
     * exponential streams (per-class windows never overlap), sorted by
     * start time with scripted-before-seeded tie-breaking.
     */
    static std::vector<FleetFaultEvent>
    schedule(const FleetFaultConfig &cfg, std::size_t numHosts,
             Time horizon);

  private:
    std::vector<FleetFaultEvent> events_;
    Handler onFault_;
    Handler onRepair_;
    std::size_t faultsInjected_ = 0;
};

} // namespace tb

#endif // TRAINBOX_SIM_FAULT_INJECTOR_HH
