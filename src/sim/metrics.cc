#include "sim/metrics.hh"

#include <algorithm>

#include "common/logging.hh"

namespace tb {

TimeWeightedHistogram::TimeWeightedHistogram(std::size_t num_buckets,
                                             double lo, double hi,
                                             double saturation)
    : buckets_(std::max<std::size_t>(1, num_buckets), 0.0), lo_(lo),
      hi_(hi), saturation_(saturation)
{
    panic_if(hi <= lo, "histogram range [%g, %g) is empty", lo, hi);
}

void
TimeWeightedHistogram::record(double value, Time duration)
{
    if (duration <= 0.0)
        return;
    totalTime_ += duration;
    weightedSum_ += value * duration;
    peak_ = std::max(peak_, value);
    if (value >= saturation_)
        saturatedTime_ += duration;

    const double span = hi_ - lo_;
    const double pos = (value - lo_) / span *
                       static_cast<double>(buckets_.size());
    const std::size_t idx = static_cast<std::size_t>(
        std::clamp(pos, 0.0, static_cast<double>(buckets_.size() - 1)));
    buckets_[idx] += duration;
}

double
TimeWeightedHistogram::timeAverage() const
{
    return totalTime_ > 0.0 ? weightedSum_ / totalTime_ : 0.0;
}

double
TimeWeightedHistogram::saturatedFraction() const
{
    return totalTime_ > 0.0 ? saturatedTime_ / totalTime_ : 0.0;
}

double
TimeWeightedHistogram::bucketLow(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(buckets_.size());
}

double
TimeWeightedHistogram::bucketHigh(std::size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i + 1) /
                     static_cast<double>(buckets_.size());
}

void
TimeWeightedHistogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0.0);
    totalTime_ = 0.0;
    weightedSum_ = 0.0;
    peak_ = 0.0;
    saturatedTime_ = 0.0;
}

namespace {

template <typename T>
T *
findOrCreate(std::vector<MetricsRegistry::Entry<T>> &entries,
             std::map<std::string, std::size_t> &index,
             const std::string &name, const std::string &desc,
             std::unique_ptr<T> fresh)
{
    auto it = index.find(name);
    if (it != index.end())
        return entries[it->second].metric.get();
    index.emplace(name, entries.size());
    entries.push_back({name, desc, std::move(fresh)});
    return entries.back().metric.get();
}

template <typename T>
const T *
find(const std::vector<MetricsRegistry::Entry<T>> &entries,
     const std::map<std::string, std::size_t> &index,
     const std::string &name)
{
    auto it = index.find(name);
    return it == index.end() ? nullptr : entries[it->second].metric.get();
}

} // namespace

MetricCounter *
MetricsRegistry::counter(const std::string &name, const std::string &desc)
{
    if (!enabled_)
        return nullptr;
    return findOrCreate(counters_, counterIndex_, name, desc,
                        std::make_unique<MetricCounter>());
}

MetricGauge *
MetricsRegistry::gauge(const std::string &name, const std::string &desc)
{
    if (!enabled_)
        return nullptr;
    return findOrCreate(gauges_, gaugeIndex_, name, desc,
                        std::make_unique<MetricGauge>());
}

TimeWeightedHistogram *
MetricsRegistry::histogram(const std::string &name,
                           const std::string &desc,
                           std::size_t num_buckets, double lo, double hi)
{
    if (!enabled_)
        return nullptr;
    return findOrCreate(
        histograms_, histogramIndex_, name, desc,
        std::make_unique<TimeWeightedHistogram>(num_buckets, lo, hi));
}

const MetricCounter *
MetricsRegistry::findCounter(const std::string &name) const
{
    return find(counters_, counterIndex_, name);
}

const MetricGauge *
MetricsRegistry::findGauge(const std::string &name) const
{
    return find(gauges_, gaugeIndex_, name);
}

const TimeWeightedHistogram *
MetricsRegistry::findHistogram(const std::string &name) const
{
    return find(histograms_, histogramIndex_, name);
}

void
MetricsRegistry::resetAll()
{
    for (auto &e : counters_)
        e.metric->reset();
    for (auto &e : gauges_)
        e.metric->reset();
    for (auto &e : histograms_)
        e.metric->reset();
}

} // namespace tb
